// Benchmarks regenerating the repository's experiments E1..E10 (one per
// "table/figure"; see DESIGN.md) at benchmark-friendly sizes, plus
// micro-benchmarks of the coding hot paths. The experiment benchmarks
// report the quantity each theorem bounds (rounds, ratios, stall
// fractions) via b.ReportMetric, so `go test -bench=.` both times the
// kernels and re-checks the shapes.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/central"
	"repro/internal/cluster"
	"repro/internal/count"
	"repro/internal/derand"
	"repro/internal/dissem"
	"repro/internal/dynnet"
	"repro/internal/exp"
	"repro/internal/forwarding"
	"repro/internal/gf"
	"repro/internal/graph"
	"repro/internal/rlnc"
	"repro/internal/sim"
	"repro/internal/stable"
	"repro/internal/stream"
	"repro/internal/token"
	"repro/internal/wire"
)

// BenchmarkE1IndexedBroadcast times one Lemma 5.3 run (n = k = 64) and
// reports rounds-to-decode; the theorem predicts Theta(n + k).
func BenchmarkE1IndexedBroadcast(b *testing.B) {
	b.ReportAllocs()
	const n, d = 64, 8
	rounds := 0
	for i := 0; i < b.N; i++ {
		adv := adversary.NewRandomConnected(n, n/2, int64(i))
		r, err := exp.RunIndexedUntilDecoded(n, n, d, adv, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = r
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(rounds)/float64(2*64), "rounds/(n+k)")
}

// BenchmarkE2SmallTokens times the E2 pair (forwarding vs coding at
// n = k = 64) and reports the round ratio; Theorem 2.3 says it grows
// with n.
func BenchmarkE2SmallTokens(b *testing.B) {
	b.ReportAllocs()
	const n, d, budget = 64, 8, 512
	var fwd, cod int
	for i := 0; i < b.N; i++ {
		dist := token.OnePerNode(n, d, rand.New(rand.NewSource(int64(i))))
		f, err := forwarding.RunPipelinedFlood(dist, n, budget, d, adversary.NewRandomConnected(n, n/2, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := dissem.GreedyForward(dist, dissem.Params{B: budget, D: d, Seed: int64(i)},
			adversary.NewRandomConnected(n, n/2, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		fwd, cod = f, res.Rounds
	}
	b.ReportMetric(float64(fwd), "fwd-rounds")
	b.ReportMetric(float64(cod), "coded-rounds")
	b.ReportMetric(float64(fwd)/float64(cod), "fwd/coded")
}

// BenchmarkE3MessageSize times greedy-forward at two budgets (n = k =
// 64) and reports the round ratio across a 2x budget step; Theorem 2.3
// predicts ~4x while the quadratic term dominates.
func BenchmarkE3MessageSize(b *testing.B) {
	b.ReportAllocs()
	const n, d = 64, 8
	var r96, r192 int
	for i := 0; i < b.N; i++ {
		for _, cfg := range []struct {
			budget int
			out    *int
		}{{96, &r96}, {192, &r192}} {
			dist := token.OnePerNode(n, d, rand.New(rand.NewSource(int64(i))))
			res, err := dissem.GreedyForward(dist, dissem.Params{B: cfg.budget, D: d, Seed: int64(i)},
				adversary.NewRandomConnected(n, n/2, int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			*cfg.out = res.Rounds
		}
	}
	b.ReportMetric(float64(r96), "rounds-b96")
	b.ReportMetric(float64(r192), "rounds-b192")
	b.ReportMetric(float64(r96)/float64(r192), "speedup-2x-b")
}

// BenchmarkE4GreedyVsPriority times both Section 7 algorithms at
// n = k = 48, b = 256.
func BenchmarkE4GreedyVsPriority(b *testing.B) {
	b.ReportAllocs()
	const n, d, budget = 48, 8, 256
	var g, p int
	for i := 0; i < b.N; i++ {
		dist := token.OnePerNode(n, d, rand.New(rand.NewSource(int64(i))))
		gr, err := dissem.GreedyForward(dist, dissem.Params{B: budget, D: d, Seed: int64(i)},
			adversary.NewRandomConnected(n, n/2, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		pr, err := dissem.PriorityForward(dist, dissem.Params{B: budget, D: d, Seed: int64(i)},
			adversary.NewRandomConnected(n, n/2, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		g, p = gr.Rounds, pr.Rounds
	}
	b.ReportMetric(float64(g), "greedy-rounds")
	b.ReportMetric(float64(p), "priority-rounds")
}

// BenchmarkE5TStable times the E5 throughput kernel at T = 96 (n = 48):
// one full share-pass-share coded broadcast from a single source, with
// the per-window geometry of Lemma 8.1 (blocks, payload ~ T), against
// the batched forwarding baseline on a matched token workload. Reported
// metrics are bits delivered per round for both.
func BenchmarkE5TStable(b *testing.B) {
	b.ReportAllocs()
	const (
		n, budget, T = 48, 160, 96
		chunkBits    = 32
		blocks       = T / 8
		payload      = 3 * T / 8
		kFwd, d      = 64, 8
	)
	geo := stable.Geometry{
		D: 1, ChunkBits: chunkBits,
		Chunks: (blocks + payload + chunkBits - 1) / chunkBits,
		Blocks: blocks, Payload: payload, BuildBudget: T / 2,
	}
	var codThroughput, fwdThroughput float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		initial := make([][]rlnc.Coded, n)
		for j := 0; j < blocks; j++ {
			initial[0] = append(initial[0], rlnc.Encode(j, blocks, gf.RandomBitVec(payload, rng.Uint64)))
		}
		rngs := make([]*rand.Rand, n)
		for j := range rngs {
			rngs[j] = rand.New(rand.NewSource(int64(i*1000 + j)))
		}
		tadv := adversary.NewTStable(adversary.NewRandomConnected(n, n, int64(i)), T)
		s := dynnet.NewSession(n, tadv, dynnet.Config{BitBudget: budget})
		if _, err := stable.Broadcast(s, tadv, geo, initial, rngs, 0); err != nil {
			b.Fatal(err)
		}
		codThroughput = float64(blocks*payload) / float64(s.Metrics().Rounds)

		dist := token.AtOne(n, kFwd, d, rand.New(rand.NewSource(int64(i))))
		f, err := stable.RunFlood(dist, kFwd, budget, d, T,
			adversary.NewTStable(adversary.NewRandomConnected(n, n, int64(i)), T))
		if err != nil {
			b.Fatal(err)
		}
		fwdThroughput = float64(kFwd*(token.UIDBits+d)) / float64(f)
	}
	b.ReportMetric(codThroughput, "coded-bits/round")
	b.ReportMetric(fwdThroughput, "fwd-bits/round")
}

// BenchmarkE6Gathering times the random-forward primitive (n = k = 64)
// and reports the gathered count against Lemma 7.2's sqrt(ck).
func BenchmarkE6Gathering(b *testing.B) {
	b.ReportAllocs()
	const n, d, c = 64, 8, 4
	gathered := 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		dist := token.OnePerNode(n, d, rng)
		sets := make([]*token.Set, n)
		rngs := make([]*rand.Rand, n)
		for j := range sets {
			sets[j] = token.NewSet()
			for _, tk := range dist[j] {
				sets[j].Add(tk)
			}
			rngs[j] = rand.New(rand.NewSource(int64(i*1000 + j)))
		}
		s := dynnet.NewSession(n, adversary.NewRandomConnected(n, n, int64(i)), dynnet.Config{})
		res, err := forwarding.RandomForward(s, sets, nil, c, 4*n, rngs)
		if err != nil {
			b.Fatal(err)
		}
		gathered = res.Count
	}
	b.ReportMetric(float64(gathered), "gathered")
	b.ReportMetric(16 /* sqrt(4*64) */, "lemma7.2-bound")
}

// BenchmarkE7Counting times the counting application at n = 32.
func BenchmarkE7Counting(b *testing.B) {
	b.ReportAllocs()
	const n, budget = 32, 1024
	var res count.Result
	for i := 0; i < b.N; i++ {
		r, err := count.Run(n, budget, adversary.NewRandomConnected(n, n/2, int64(i)), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.TotalRounds), "total-rounds")
	b.ReportMetric(float64(res.TotalRounds)/float64(res.FinalPhaseRounds), "total/final")
}

// BenchmarkE8FieldSize times the omniscient-adversary kernel over GF(2)
// and F_257 and reports both stall fractions (Theorem 6.1's separation).
func BenchmarkE8FieldSize(b *testing.B) {
	b.ReportAllocs()
	const n, pe = 12, 4
	var frac2, fracBig float64
	for i := 0; i < b.N; i++ {
		_, s2, r2, err := derand.RunOmniscientBroadcast(gf.GF2{}, n, pe, 20*n, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		_, sB, rB, err := derand.RunOmniscientBroadcast(gf.MustPrime(257), n, pe, 20*n, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		frac2 = float64(s2) / float64(crossingRounds(r2))
		fracBig = float64(sB) / float64(crossingRounds(rB))
	}
	b.ReportMetric(frac2, "stall-frac-GF2")
	b.ReportMetric(fracBig, "stall-frac-F257")
}

// crossingRounds guards against division by zero when the adversary
// never needed a crossing edge.
func crossingRounds(r int) int {
	if r < 1 {
		return 1
	}
	return r
}

// BenchmarkE9EndGame times the Section 5.2 end-game decode at k = 256.
func BenchmarkE9EndGame(b *testing.B) {
	b.ReportAllocs()
	const k, d = 256, 8
	for i := 0; i < b.N; i++ {
		if !exp.EndgameCodedDecodes(k, d, int64(i)) {
			b.Fatal("end-game decode failed")
		}
	}
	b.ReportMetric(1, "coded-rounds")
	b.ReportMetric(float64(k)/2, "fwd-expected-rounds")
}

// BenchmarkE10Centralized times the Corollary 2.6 centralized coding
// run (b = d = 8, n = k = 64) and reports rounds/n (predicted O(1)).
func BenchmarkE10Centralized(b *testing.B) {
	b.ReportAllocs()
	const n, d = 64, 8
	rounds := 0
	for i := 0; i < b.N; i++ {
		r, err := central.Run(n, n, d, adversary.NewRandomConnected(n, n/2, int64(i)), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		rounds = r
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(rounds)/n, "rounds/n")
}

// BenchmarkE11GossipUnderLoss times one lockstep cluster trial pair
// (coded vs store-and-forward gossip, n = k = 24, 30% loss) and reports
// both tick counts; the coded runtime must stay well ahead (E11).
func BenchmarkE11GossipUnderLoss(b *testing.B) {
	b.ReportAllocs()
	const n, k, d, loss = 24, 24, 64, 0.3
	ctx := context.Background()
	var codedTicks, fwdTicks int
	for i := 0; i < b.N; i++ {
		toks := token.RandomSet(k, d, rand.New(rand.NewSource(int64(i))))
		for _, cfg := range []struct {
			mode cluster.Mode
			out  *int
		}{{cluster.Coded, &codedTicks}, {cluster.Forward, &fwdTicks}} {
			tr := cluster.WithLoss(cluster.NewChanTransport(n, cluster.InboxBuffer(n, 2)), loss, int64(i)+77)
			res, err := cluster.Run(ctx, cluster.Config{
				N: n, Fanout: 2, Mode: cfg.mode, Seed: int64(i), Transport: tr, Lockstep: true,
			}, toks)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatalf("%v gossip incomplete", cfg.mode)
			}
			*cfg.out = res.Ticks
		}
	}
	b.ReportMetric(float64(codedTicks), "coded-ticks")
	b.ReportMetric(float64(fwdTicks), "fwd-ticks")
	b.ReportMetric(float64(fwdTicks)/float64(codedTicks), "fwd/coded")
}

// BenchmarkE12StreamWindows regenerates the E12 separation at
// benchmark size: the same lossy token stream at W = 1 (sequential)
// and W = 4 (pipelined), reporting sustained tokens/tick for both.
func BenchmarkE12StreamWindows(b *testing.B) {
	b.ReportAllocs()
	const n, k, d, gens, loss = 16, 8, 64, 8, 0.3
	ctx := context.Background()
	var seqTicks, pipeTicks int
	for i := 0; i < b.N; i++ {
		for _, cfg := range []struct {
			window int
			out    *int
		}{{1, &seqTicks}, {4, &pipeTicks}} {
			tr := cluster.WithLoss(cluster.NewChanTransport(n, stream.InboxBuffer(n, 2)), loss, int64(i)+77)
			res, err := stream.Run(ctx, stream.Config{
				N: n, K: k, PayloadBits: d, Window: cfg.window, Generations: gens,
				Seed: int64(i), Transport: tr, Lockstep: true, MaxTicks: 500000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatalf("W=%d stream incomplete", cfg.window)
			}
			*cfg.out = res.Ticks
		}
	}
	tokens := float64(k * gens)
	b.ReportMetric(tokens/float64(seqTicks), "seq-tok/tick")
	b.ReportMetric(tokens/float64(pipeTicks), "pipe-tok/tick")
	b.ReportMetric(float64(seqTicks)/float64(pipeTicks), "pipe/seq-speedup")
}

// BenchmarkChurnSteadyState times the membership-aware cluster runtime
// end to end: a lockstep coded gossip run through a full churn
// schedule — crash, two joins, a graceful leave, a persisted restart —
// under 20% loss, with every live node decode-verified. It is the
// allocation gate for the dynamic-membership layer: views, hello
// traffic and the churn drivers must not reintroduce steady-state
// allocations into the emission pipeline.
func BenchmarkChurnSteadyState(b *testing.B) {
	b.ReportAllocs()
	const n, k, d, loss = 16, 16, 64, 0.2
	sched, err := cluster.ParseChurn("crash:8:1,join:10:2,leave:16:1,restart:22:1")
	if err != nil {
		b.Fatal(err)
	}
	maxN := n + sched.Joins()
	ctx := context.Background()
	var ticks, live int
	for i := 0; i < b.N; i++ {
		tr := cluster.WithLoss(cluster.NewChanTransport(maxN, cluster.InboxBuffer(maxN, 3)), loss, int64(i)+77)
		res, err := cluster.Run(ctx, cluster.Config{
			N: n, Fanout: 2, Seed: int64(i), Transport: tr, Lockstep: true,
			MaxTicks: 200000, Churn: sched,
		}, token.RandomSet(k, d, rand.New(rand.NewSource(int64(i)))))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("churn gossip incomplete")
		}
		ticks = res.Ticks
		live = res.FinalLive
	}
	b.ReportMetric(float64(ticks), "ticks")
	b.ReportMetric(float64(live), "live-nodes")
}

// BenchmarkStreamSustained times the pipelined streaming runtime end to
// end (lockstep, lossless) and reports the three sustained-throughput
// figures the streaming layer is accountable for: wall-clock tokens
// per second, protocol bits per delivered stream token, and peak span
// memory held per node.
func BenchmarkStreamSustained(b *testing.B) {
	b.ReportAllocs()
	const n, k, d, gens, w = 16, 16, 128, 8, 4
	ctx := context.Background()
	var ticks int
	var bitsPerTok, spanPeak float64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := stream.Run(ctx, stream.Config{
			N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
			Seed: int64(i), Lockstep: true, MaxTicks: 500000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("stream incomplete")
		}
		ticks = res.Ticks
		bitsPerTok = float64(res.BitsOut) / float64(k*gens)
		spanPeak = float64(res.MaxSpanBytes)
	}
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(float64(k*gens*b.N)/elapsed, "tokens/sec")
	b.ReportMetric(float64(k*gens)/float64(ticks), "tokens/tick")
	b.ReportMetric(bitsPerTok, "bits/token")
	b.ReportMetric(spanPeak, "span-bytes/node")
}

// BenchmarkStreamWindowSweep exposes the window axis as b.Run
// sub-benchmarks so each window's allocation budget is guarded
// separately: benchguard keys entries by the /-qualified name
// (e.g. BenchmarkStreamWindowSweep/W=4), stripping only the trailing
// GOMAXPROCS suffix. W=1 is the sequential baseline, W=4 the
// pipelined configuration the streaming layer is accountable for.
func BenchmarkStreamWindowSweep(b *testing.B) {
	const n, k, d, gens = 8, 8, 64, 4
	ctx := context.Background()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := stream.Run(ctx, stream.Config{
					N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
					Seed: int64(i), Lockstep: true, MaxTicks: 500000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal("stream incomplete")
				}
			}
		})
	}
}

// BenchmarkLockstepSharded exposes the shard-count axis of the
// deterministic cluster engine as b.Run sub-benchmarks, so the serial
// fast path (shards=1, exactly the pre-sharding driver) and the
// sharded exchange-barrier path (shards=4) are guarded separately by
// benchguard. Transcripts are bit-identical across the axis; the
// sub-benchmarks exist to catch cost regressions in either path — the
// outbox capture/replay overhead at shards>1, and any creep in the
// inline path at shards=1.
func BenchmarkLockstepSharded(b *testing.B) {
	const n, k, d = 64, 16, 64
	ctx := context.Background()
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var ticks int
			for i := 0; i < b.N; i++ {
				toks := token.RandomSet(k, d, rand.New(rand.NewSource(int64(i))))
				res, err := cluster.Run(ctx, cluster.Config{
					N: n, Fanout: 2, Mode: cluster.Coded, Seed: int64(i),
					Lockstep: true, Shards: shards, MaxTicks: 200000,
				}, toks)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal("cluster incomplete")
				}
				ticks = res.Ticks
			}
			b.ReportMetric(float64(ticks), "ticks")
		})
	}
}

// BenchmarkWireRoundTrip times the codec on a cluster-sized coded
// packet (k = 32, 192-bit vectors including the coded UIDs), on the
// steady-state hot path the gossip runtimes use: AppendTo into a reused
// buffer, UnmarshalInto into a reused scratch Packet. Zero allocs/op is
// the contract.
func BenchmarkWireRoundTrip(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(8))
	p := wire.NewCoded(3, 9, rlnc.Encode(5, 32, gf.RandomBitVec(160, rng.Uint64)))
	var scratch wire.Packet
	buf := p.Marshal()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendTo(buf[:0])
		if err := wire.UnmarshalInto(&scratch, buf); err != nil {
			b.Fatal(err)
		}
		p = scratch
	}
}

// BenchmarkEmitInsertSteadyState times one full hop of the pooled
// gossip pipeline — random recombination of a full-rank span into a
// scratch packet, marshal into a reused wire buffer, decode into a
// scratch packet, insert into a receiving span — with the receiving
// span Reset (slab-reusing) every time it reaches full rank. This is
// the emission→wire→insert loop the cluster and stream runtimes run
// millions of times; the contract is 0 allocs/op in steady state.
func BenchmarkEmitInsertSteadyState(b *testing.B) {
	b.ReportAllocs()
	const k, d = 32, 160
	rng := rand.New(rand.NewSource(14))
	src := rlnc.NewSpan(k, d)
	for i := 0; i < k; i++ {
		src.Add(rlnc.Encode(i, k, gf.RandomBitVec(d, rng.Uint64)))
	}
	sink := rlnc.NewSpan(k, d)
	var tx, rx wire.Packet
	var buf []byte
	// Warm the scratches and grow the sink's slab to full rank once.
	for sink.Rank() < k {
		if !src.RandomCombinationInto(&tx.Coded, rng) {
			b.Fatal("empty source span")
		}
		tx.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeCoded, Sender: 1, Epoch: 0}
		buf = tx.AppendTo(buf[:0])
		if err := wire.UnmarshalInto(&rx, buf); err != nil {
			b.Fatal(err)
		}
		sink.Add(rx.Coded)
	}
	sink.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !src.RandomCombinationInto(&tx.Coded, rng) {
			b.Fatal("empty source span")
		}
		tx.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeCoded, Sender: 1, Epoch: uint32(i)}
		buf = tx.AppendTo(buf[:0])
		if err := wire.UnmarshalInto(&rx, buf); err != nil {
			b.Fatal(err)
		}
		sink.Add(rx.Coded)
		if sink.Rank() == k {
			sink.Reset()
		}
	}
}

// BenchmarkAblationSecondShare measures the DESIGN.md meta-round
// ablation: total rounds to full decode with the paper's
// share-pass-share versus the fused share-pass pipeline.
func BenchmarkAblationSecondShare(b *testing.B) {
	b.ReportAllocs()
	g := graphPath24()
	const d, blocks, payload, chunkBits = 2, 4, 16, 64
	var with, without int
	for i := 0; i < b.N; i++ {
		w, err := stable.AblationMetaRounds(g, d, blocks, payload, chunkBits, true, int64(i), 200)
		if err != nil {
			b.Fatal(err)
		}
		wo, err := stable.AblationMetaRounds(g, d, blocks, payload, chunkBits, false, int64(i), 400)
		if err != nil {
			b.Fatal(err)
		}
		with, without = w, wo
	}
	b.ReportMetric(float64(with), "rounds-share-pass-share")
	b.ReportMetric(float64(without), "rounds-share-pass")
}

func graphPath24() *graph.Graph { return graph.Path(24) }

// e1Kernel is the seeded E1 trial used by the sweep-engine benchmarks.
func e1Kernel(seed int64) (float64, error) {
	const n, d = 48, 8
	adv := adversary.NewRandomConnected(n, n/2, seed)
	r, err := exp.RunIndexedUntilDecoded(n, n, d, adv, seed)
	return float64(r), err
}

// BenchmarkTrialSweepSerial times an 8-seed E1 sweep through the serial
// sim.Trials path; BenchmarkTrialSweepParallel runs the identical sweep
// through sim.ParallelTrials on all cores. Both produce bit-identical
// Summaries; the ratio of their ns/op is the experiment-engine speedup.
func BenchmarkTrialSweepSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Trials(8, e1Kernel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialSweepParallel(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ParallelTrials(ctx, sim.ParallelConfig{}, 8, e1Kernel); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkSpanInsertGF2(b *testing.B) {
	b.ReportAllocs()
	const k, d = 256, 256
	rng := rand.New(rand.NewSource(1))
	vecs := make([]rlnc.Coded, 512)
	for i := range vecs {
		v := gf.RandomBitVec(k+d, rng.Uint64)
		vecs[i] = rlnc.Coded{K: k, Vec: v}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span := rlnc.NewSpan(k, d)
		for _, v := range vecs {
			span.Add(v)
		}
	}
}

func BenchmarkSpanDecodeGF2(b *testing.B) {
	b.ReportAllocs()
	const k, d = 128, 128
	rng := rand.New(rand.NewSource(2))
	span := rlnc.NewSpan(k, d)
	for i := 0; i < k; i++ {
		span.Add(rlnc.Encode(i, k, gf.RandomBitVec(d, rng.Uint64)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := span.Clone().Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpanDecodableCount measures the early-decoding progress query
// used by traces and experiment loops: a near-full-rank span (k = d =
// 128, rank k-1) asked how many tokens are currently recoverable.
func BenchmarkSpanDecodableCount(b *testing.B) {
	b.ReportAllocs()
	const k, d = 128, 128
	rng := rand.New(rand.NewSource(5))
	span := rlnc.NewSpan(k, d)
	src := make([]rlnc.Coded, k)
	for i := range src {
		src[i] = rlnc.Encode(i, k, gf.RandomBitVec(d, rng.Uint64))
	}
	for span.Rank() < k-1 {
		mix := gf.NewBitVec(k + d)
		for i := range src {
			if rng.Intn(2) == 1 {
				mix.Xor(src[i].Vec)
			}
		}
		span.Add(rlnc.Coded{K: k, Vec: mix})
	}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		count = span.DecodableCount()
	}
	b.ReportMetric(float64(count), "decodable")
}

// BenchmarkBitMatrixInsert measures raw echelon-insert throughput: 256
// random 512-bit vectors inserted into a fresh matrix per iteration.
func BenchmarkBitMatrixInsert(b *testing.B) {
	b.ReportAllocs()
	const cols, nvecs = 512, 256
	rng := rand.New(rand.NewSource(6))
	vecs := make([]gf.BitVec, nvecs)
	for i := range vecs {
		vecs[i] = gf.RandomBitVec(cols, rng.Uint64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := gf.NewBitMatrix(cols)
		for _, v := range vecs {
			m.Insert(v)
		}
	}
}

func BenchmarkBitVecXor(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(3))
	x := gf.RandomBitVec(4096, rng.Uint64)
	y := gf.RandomBitVec(4096, rng.Uint64)
	b.SetBytes(4096 / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Xor(y)
	}
}

func BenchmarkGF2e8Mul(b *testing.B) {
	b.ReportAllocs()
	f := gf.MustGF2e(8)
	acc := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, uint64(i)&0xff|1)
	}
	_ = acc
}

func BenchmarkPrimeInv(b *testing.B) {
	b.ReportAllocs()
	f := gf.MustPrime(65537)
	acc := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += f.Inv(uint64(i)%65536 + 1)
	}
	_ = acc
}

func BenchmarkEngineRound(b *testing.B) {
	b.ReportAllocs()
	const n = 128
	nodes := make([]dynnet.Node, n)
	rng := rand.New(rand.NewSource(4))
	for i := range nodes {
		nrng := rand.New(rand.NewSource(int64(i)))
		nodes[i] = rlnc.NewBroadcastNode(n, 8, 1<<30,
			[]rlnc.Coded{rlnc.Encode(i, n, gf.RandomBitVec(8, rng.Uint64))}, nrng)
	}
	e := dynnet.NewEngine(nodes, adversary.NewRandomConnected(n, n/2, 5), dynnet.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// Command benchguard parses `go test -bench` output and guards the
// repository's allocation budget: it compares allocs/op (and records
// ns/op alongside) against a committed JSON baseline and fails when a
// guarded benchmark regresses beyond a threshold.
//
// Two modes:
//
//	go test -run xxx -bench . -benchtime 1x -benchmem ./... |
//	    benchguard -write -out BENCH_PR5.json
//	        # regenerate the committed baseline from a bench run
//
//	go test -run xxx -bench . -benchtime 1x -benchmem ./... |
//	    benchguard -baseline BENCH_PR5.json -max-regress 0.20 \
//	        -guard BenchmarkEngineRound,BenchmarkWireRoundTrip,...
//	        # CI gate: exit 1 on a >20% allocs/op regression
//
// Only benchmarks that report allocations (b.ReportAllocs or
// -benchmem) appear in the parse. Comparison is by base benchmark name
// with the -N cpu suffix stripped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded figures.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Baseline is the committed BENCH_*.json document.
type Baseline struct {
	// Note documents how the numbers were produced.
	Note       string           `json:"note"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\w+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
var metricRe = regexp.MustCompile(`([0-9.]+) (B/op|allocs/op)`)

func parse(r *bufio.Scanner) (map[string]Entry, error) {
	out := map[string]Entry{}
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		e := Entry{}
		e.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		hasAllocs := false
		for _, mm := range metricRe.FindAllStringSubmatch(m[3], -1) {
			v, _ := strconv.ParseFloat(mm[1], 64)
			switch mm[2] {
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
				hasAllocs = true
			}
		}
		if hasAllocs {
			out[m[1]] = e
		}
	}
	return out, r.Err()
}

func main() {
	write := flag.Bool("write", false, "emit a baseline JSON from the bench output instead of comparing")
	out := flag.String("out", "BENCH_PR5.json", "baseline file to write in -write mode")
	note := flag.String("note", "go test -run xxx -bench . -benchtime 1x -benchmem ./... (see scripts/bench.sh)", "provenance note stored in the baseline")
	baselinePath := flag.String("baseline", "BENCH_PR5.json", "committed baseline to compare against")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional allocs/op growth before failing")
	guard := flag.String("guard", "BenchmarkEngineRound,BenchmarkWireRoundTrip,BenchmarkStreamSustained,BenchmarkEmitInsertSteadyState,BenchmarkChurnSteadyState",
		"comma-separated benchmarks the gate enforces")
	flag.Parse()

	cur, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: reading bench output:", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines with allocs/op found on stdin")
		os.Exit(2)
	}

	if *write {
		doc := Baseline{Note: *note, Benchmarks: cur}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(cur), *out)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: parsing baseline:", err)
		os.Exit(2)
	}

	failed := false
	for _, name := range strings.Split(*guard, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, okB := base.Benchmarks[name]
		c, okC := cur[name]
		if !okB {
			fmt.Printf("benchguard: FAIL %s: missing from baseline %s\n", name, *baselinePath)
			failed = true
			continue
		}
		if !okC {
			fmt.Printf("benchguard: FAIL %s: missing from current bench output\n", name)
			failed = true
			continue
		}
		// An allowance of +1 alloc absorbs integer jitter around tiny
		// baselines (a 0-alloc benchmark may legitimately warm a lazily
		// initialized runtime structure once under -benchtime 1x).
		limit := b.AllocsPerOp*(1+*maxRegress) + 1
		status := "ok"
		if c.AllocsPerOp > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %-4s %-34s allocs/op %10.1f -> %10.1f (limit %.1f)  ns/op %12.0f -> %12.0f\n",
			status, name, b.AllocsPerOp, c.AllocsPerOp, limit, b.NsPerOp, c.NsPerOp)
	}
	if failed {
		os.Exit(1)
	}
}

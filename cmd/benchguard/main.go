// Command benchguard parses `go test -bench` output and guards the
// repository's allocation budget: it compares allocs/op (and records
// ns/op alongside) against a committed JSON baseline and fails when a
// guarded benchmark regresses beyond a threshold.
//
// Two modes:
//
//	go test -run xxx -bench . -benchtime 1x -benchmem ./... |
//	    benchguard -write
//	        # regenerate the committed baseline from a bench run
//
//	go test -run xxx -bench . -benchtime 1x -benchmem ./... |
//	    benchguard -max-regress 0.20 \
//	        -guard BenchmarkEngineRound,BenchmarkWireRoundTrip,...
//	        # CI gate: exit 1 on a >20% allocs/op regression
//
// The baseline defaults to the newest committed BENCH_PR<n>.json in
// the current directory (highest n), resolved by
// benchfmt.LatestBaseline — rotating the baseline means committing one
// new file, with no flag or script edits. -baseline/-out override it.
//
// Only benchmarks that report allocations (b.ReportAllocs or
// -benchmem) appear in the parse; `/`-qualified sub-benchmark names
// (b.Run) are kept, with only the trailing -N cpu suffix stripped.
// Exit status: 1 on a gate failure, 2 on unusable input (unreadable
// baseline, garbled bench line, no benchmarks on stdin).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		write      = fs.Bool("write", false, "emit a baseline JSON from the bench output instead of comparing")
		out        = fs.String("out", "", "baseline file to write in -write mode (default: the resolved current baseline)")
		note       = fs.String("note", "go test -run xxx -bench . -benchtime 1x -benchmem ./... (see scripts/bench.sh)", "provenance note stored in the baseline")
		baseline   = fs.String("baseline", "", "committed baseline to compare against (default: newest BENCH_PR*.json)")
		maxRegress = fs.Float64("max-regress", 0.20, "allowed fractional allocs/op growth before failing")
		guard      = fs.String("guard", "BenchmarkEngineRound,BenchmarkWireRoundTrip,BenchmarkStreamSustained,BenchmarkEmitInsertSteadyState,BenchmarkChurnSteadyState,BenchmarkStreamWindowSweep/W=4,BenchmarkLockstepSharded/shards=1,BenchmarkLockstepSharded/shards=4",
			"comma-separated benchmarks the gate enforces")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cur, err := benchfmt.Parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchguard: reading bench output:", err)
		return 2
	}
	if len(cur) == 0 {
		fmt.Fprintln(stderr, "benchguard: no benchmark lines with allocs/op found on stdin")
		return 2
	}

	if *write {
		path := *out
		if path == "" {
			if path, err = benchfmt.LatestBaseline("."); err != nil {
				fmt.Fprintln(stderr, "benchguard:", err)
				return 2
			}
		}
		if err := benchfmt.WriteBaseline(path, &benchfmt.Baseline{Note: *note, Benchmarks: cur}); err != nil {
			fmt.Fprintln(stderr, "benchguard:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchguard: wrote %d benchmarks to %s\n", len(cur), path)
		return 0
	}

	path := *baseline
	if path == "" {
		if path, err = benchfmt.LatestBaseline("."); err != nil {
			fmt.Fprintln(stderr, "benchguard:", err)
			return 2
		}
	}
	base, err := benchfmt.ReadBaseline(path)
	if err != nil {
		fmt.Fprintln(stderr, "benchguard:", err)
		return 2
	}

	comps, ok := benchfmt.Compare(base.Benchmarks, cur, strings.Split(*guard, ","), *maxRegress)
	for _, c := range comps {
		switch {
		case c.MissingBaseline:
			fmt.Fprintf(stdout, "benchguard: FAIL %s: missing from baseline %s\n", c.Name, path)
		case c.MissingCurrent:
			fmt.Fprintf(stdout, "benchguard: FAIL %s: missing from current bench output\n", c.Name)
		default:
			status := "ok"
			if !c.OK {
				status = "FAIL"
			}
			fmt.Fprintf(stdout, "benchguard: %-4s %-34s allocs/op %10.1f -> %10.1f (limit %.1f)  ns/op %12.0f -> %12.0f\n",
				status, c.Name, c.Base.AllocsPerOp, c.Cur.AllocsPerOp, c.Limit, c.Base.NsPerOp, c.Cur.NsPerOp)
		}
	}
	if !ok {
		return 1
	}
	return 0
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
BenchmarkEngineRound-8   	 1	 101048 ns/op	 45192 B/op	 883 allocs/op
BenchmarkStream/W=4-8    	 1	 5335233 ns/op	 735528 B/op	 8618 allocs/op
PASS
`

// exec runs the CLI with stdin text and returns exit code + output.
func exec(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestWriteThenGateSubBenchmark drives the full CLI loop: regenerate a
// baseline containing a parameterized sub-benchmark, gate the same
// output against it (pass), then gate a regressed run (fail, exit 1).
func TestWriteThenGateSubBenchmark(t *testing.T) {
	t.Chdir(t.TempDir())
	code, out, errOut := exec(t, []string{"-write", "-out", "BENCH_PR6.json"}, benchOutput)
	if code != 0 {
		t.Fatalf("write exited %d: %s%s", code, out, errOut)
	}
	raw, err := os.ReadFile("BENCH_PR6.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "BenchmarkStream/W=4") {
		t.Fatalf("sub-benchmark missing from written baseline:\n%s", raw)
	}

	guard := []string{"-guard", "BenchmarkEngineRound,BenchmarkStream/W=4"}
	if code, out, _ := exec(t, guard, benchOutput); code != 0 {
		t.Fatalf("identical run failed the gate (exit %d):\n%s", code, out)
	}

	regressed := strings.Replace(benchOutput, "8618 allocs/op", "99999 allocs/op", 1)
	code, out, _ = exec(t, guard, regressed)
	if code != 1 {
		t.Fatalf("regressed sub-benchmark exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "BenchmarkStream/W=4") {
		t.Errorf("failure output does not name the regressed sub-benchmark:\n%s", out)
	}
}

// TestAutoResolvesNewestBaseline pins the glob resolution: with PR5
// and PR7 baselines present and no -baseline flag, the gate compares
// against PR7.
func TestAutoResolvesNewestBaseline(t *testing.T) {
	t.Chdir(t.TempDir())
	// PR5 would pass; PR7 has a tighter (lower) baseline that fails.
	old := `{"benchmarks":{"BenchmarkEngineRound":{"allocs_per_op":100000}}}`
	cur := `{"benchmarks":{"BenchmarkEngineRound":{"allocs_per_op":10}}}`
	if err := os.WriteFile("BENCH_PR5.json", []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR7.json", []byte(cur), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := exec(t, []string{"-guard", "BenchmarkEngineRound"}, benchOutput)
	if code != 1 {
		t.Fatalf("gate against auto-resolved PR7 exited %d, want 1:\n%s", code, out)
	}
}

func TestGarbledLineExits2(t *testing.T) {
	t.Chdir(t.TempDir())
	garbled := "BenchmarkFoo-8  1  1.2.3 ns/op  0 B/op  1 allocs/op\n"
	code, _, errOut := exec(t, nil, garbled)
	if code != 2 {
		t.Fatalf("garbled input exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "BenchmarkFoo") {
		t.Errorf("stderr does not quote the offending line: %s", errOut)
	}
}

func TestNoBenchmarksExits2(t *testing.T) {
	t.Chdir(t.TempDir())
	if code, _, _ := exec(t, nil, "PASS\n"); code != 2 {
		t.Errorf("empty bench input exited %d, want 2", code)
	}
}

func TestMissingBaselineDirExits2(t *testing.T) {
	t.Chdir(t.TempDir())
	code, _, errOut := exec(t, nil, benchOutput)
	if code != 2 || !strings.Contains(errOut, "BENCH_PR") {
		t.Errorf("no baseline present: exit %d, stderr %q; want 2 naming the glob", code, errOut)
	}
}

func TestExplicitBaselineFlagStillWins(t *testing.T) {
	dir := t.TempDir()
	t.Chdir(dir)
	pass := `{"benchmarks":{"BenchmarkEngineRound":{"allocs_per_op":900}}}`
	path := filepath.Join(dir, "custom.json")
	if err := os.WriteFile(path, []byte(pass), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := exec(t, []string{"-baseline", path, "-guard", "BenchmarkEngineRound"}, benchOutput)
	if code != 0 {
		t.Errorf("explicit -baseline gate exited %d:\n%s", code, out)
	}
}

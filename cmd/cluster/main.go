// Command cluster disseminates k tokens across an n-node asynchronous
// gossip cluster (goroutine per node, serialized packets over an
// in-process transport) and reports completion-time and overhead
// tables. It is the interactive surface of internal/cluster, the
// asynchronous counterpart of the synchronous dynnet simulator; see
// DESIGN.md ("Async cluster runtime", "Dynamic membership & churn")
// for the architecture and wire format.
//
// Quick start:
//
//	go run ./cmd/cluster -n 64 -k 32 -loss 0.2          # lossy async coded gossip
//	go run ./cmd/cluster -mode forward -loss 0.2        # store-and-forward baseline
//	go run ./cmd/cluster -transport lockstep -seed 7    # deterministic, tick-counted
//	go run ./cmd/cluster -n 32 -delay 2ms -reorder 0.3  # hostile-network middlewares
//	go run ./cmd/cluster -transport lockstep -churn "crash:20:1,join:30:1"
//	                                                    # dynamic membership
//	go run ./cmd/cluster -transport lockstep -adversary adaptive -churn "crashmax:30:1,restart:60:1"
//	                                                    # adversarial topology + targeted crashes
//	go run ./cmd/cluster -mutate "dup:0.05,stale:0.05,flip:0.02"
//	                                                    # hostile-packet injection
//
// Transports: "chan" (default) runs the concurrent runtime on buffered
// channels with wall-clock metrics; "lockstep" runs the deterministic
// single-threaded driver, whose runs are a pure function of -seed and
// report ticks instead of milliseconds.
//
// Churn: -churn takes a comma-separated kind:tick:count schedule
// (join, leave, crash, restart, rejoin); ticks map to At×-interval
// wall offsets under the async transport. Completion then means every
// node live at the end holds all k tokens.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/token"
)

func main() {
	var (
		n        = flag.Int("n", 64, "number of nodes")
		k        = flag.Int("k", 32, "number of tokens")
		payload  = flag.Int("payload", 128, "token payload size in bits")
		loss     = flag.Float64("loss", 0, "packet loss rate in [0,1)")
		fanout   = flag.Int("fanout", 2, "peers contacted per emission")
		shards   = flag.Int("shards", 1, "lockstep worker shards (bit-identical to serial at any count)")
		mode     = flag.String("mode", "coded", "gossip mode: coded | forward")
		tp       = flag.String("transport", "chan", "transport: chan (async) | lockstep (deterministic)")
		seed     = flag.Int64("seed", 1, "random seed (lockstep runs are a pure function of it)")
		interval = flag.Duration("interval", 500*time.Microsecond, "async emission pacing")
		timeout  = flag.Duration("timeout", 30*time.Second, "async wall-clock cap")
		delay    = flag.Duration("delay", 0, "async per-packet latency upper bound (uniform in [delay/10, delay])")
		reorder  = flag.Float64("reorder", 0, "packet reordering rate in [0,1)")
		buffer   = flag.Int("buffer", 0, "per-node inbox buffer (0 = auto)")
		maxTicks = flag.Int("maxticks", 0, "lockstep tick cap (0 = default)")
		churn    = flag.String("churn", "", `membership schedule, e.g. "join:500:2,crash:1000:1" (kinds: join|leave|crash|restart|rejoin|crashmax|crashfrontier)`)
		adv      = flag.String("adversary", "", `topology adversary name[:params] (random | rotating-path | static-<topology> | tstable:<T> | tinterval:<T> | adaptive | trace:<file>)`)
		mutate   = flag.String("mutate", "", `hostile-packet mutation spec, e.g. "dup:0.05,stale:0.1" (ops: dup|stale|trunc|flip|xgen|all)`)
		trace    = flag.String("trace", "", "trace the run and render cluster-{telemetry.txt,heatmap.svg,timeline.svg,packetflow.svg} into this directory")
		telem    = flag.String("telemetry", "", "trace the run and write the telemetry v1 text export to this file")
	)
	flag.Parse()
	if err := run(os.Stdout, *n, *k, *payload, *loss, *fanout, *shards, *mode, *tp, *seed,
		*interval, *timeout, *delay, *reorder, *buffer, *maxTicks, *churn, *adv, *mutate, *trace, *telem); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, n, k, payload int, loss float64, fanout, shards int, modeName, tp string, seed int64,
	interval, timeout, delay time.Duration, reorder float64, buffer, maxTicks int, churnSpec, advSpec, mutateSpec, traceDir, traceFile string) error {
	if err := cliutil.ValidateGossip(n, k, payload, fanout, loss, reorder); err != nil {
		return err
	}
	if err := cliutil.ValidateShards(shards, n); err != nil {
		return err
	}
	if err := cliutil.ValidateBuffer(buffer); err != nil {
		return err
	}
	var mode cluster.Mode
	switch modeName {
	case "coded":
		mode = cluster.Coded
	case "forward":
		mode = cluster.Forward
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	lockstep, err := cliutil.ParseTransport(tp)
	if err != nil {
		return err
	}
	if shards > 1 && !lockstep {
		return fmt.Errorf("-shards needs the deterministic driver (the async runtime is already concurrent); use -transport lockstep")
	}
	sched, err := cliutil.ParseChurnFlag(churnSpec)
	if err != nil {
		return err
	}
	maxN := n + sched.Joins()
	if buffer == 0 {
		buffer = 4 * maxN * (fanout + 1)
	}
	tr, err := cliutil.BuildTransport(maxN, buffer, lockstep, delay, reorder, loss, seed)
	if err != nil {
		return err
	}

	// The recorder must exist before the adversarial wrap: the adaptive
	// adversary reads its rank scoreboard.
	var rec *telemetry.Recorder
	if traceDir != "" || traceFile != "" || cliutil.AdversaryNeedsTelemetry(advSpec) {
		rec = telemetry.New(telemetry.Config{Nodes: maxN})
		rec.SetMeta("driver", "cluster")
		rec.SetMeta("mode", modeName)
		rec.SetMeta("n", fmt.Sprint(n))
		rec.SetMeta("k", fmt.Sprint(k))
		rec.SetMeta("loss", fmt.Sprint(loss))
		rec.SetMeta("transport", tp)
		rec.SetMeta("seed", fmt.Sprint(seed))
	}
	advInterval := time.Duration(0)
	if !lockstep {
		advInterval = interval
	}
	tr, err = cliutil.WrapAdversarial(tr, advSpec, mutateSpec, maxN, seed, advInterval, rec)
	if err != nil {
		return err
	}

	toks := token.RandomSet(k, payload, rand.New(rand.NewSource(seed)))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := cluster.Run(ctx, cluster.Config{
		N: n, Fanout: fanout, Mode: mode, Seed: seed, Transport: tr,
		Interval: interval, Timeout: timeout, Lockstep: lockstep, Shards: shards,
		MaxTicks: maxTicks, Churn: sched, Telemetry: rec,
	}, toks)
	if err != nil {
		return err
	}
	if err := cliutil.ExportTelemetry(rec, traceDir, traceFile, "cluster", false); err != nil {
		return err
	}

	t := &sim.Table{
		Caption: fmt.Sprintf("cluster: %s gossip, n=%d k=%d payload=%d bits, loss=%.2f transport=%s seed=%d",
			mode, n, k, payload, loss, tp, seed),
		Header: []string{"metric", "value"},
	}
	t.AddRow("completed", fmt.Sprintf("%v", res.Completed))
	if lockstep {
		t.AddRow("ticks", sim.I(res.Ticks))
		if s := sim.Summarize(res.DoneTicks()); s.N > 0 {
			t.AddRow("ticks-to-rank-k min/mean/max", fmt.Sprintf("%s / %s / %s", sim.F(s.Min), sim.F(s.Mean), sim.F(s.Max)))
		}
	} else {
		t.AddRow("elapsed", res.Elapsed.Round(time.Millisecond).String())
		if s := sim.Summarize(res.DoneTimes()); s.N > 0 {
			t.AddRow("time-to-rank-k min/mean/max", fmt.Sprintf("%.1fms / %.1fms / %.1fms", 1e3*s.Min, 1e3*s.Mean, 1e3*s.Max))
		}
	}
	t.AddRow("packets sent", sim.I(int(res.PacketsOut)))
	t.AddRow("packets received", sim.I(int(res.PacketsIn)))
	t.AddRow("packets dropped", sim.I(int(res.Dropped)))
	t.AddRow("protocol bits sent", sim.I(int(res.BitsOut)))
	if sched != nil {
		spawned, hellos := 0, int64(0)
		for _, m := range res.Nodes {
			if m.Spawned {
				spawned++
			}
			hellos += m.HellosOut
		}
		t.AddRow("churn schedule", sched.String())
		t.AddRow("nodes spawned / live at end", fmt.Sprintf("%d / %d", spawned, res.FinalLive))
		t.AddRow("hellos sent", sim.I(int(hellos)))
	}
	// Dissemination work per node-token, over the nodes that finished:
	// a timed-out run must not pretend all n nodes were served.
	done := 0
	for _, m := range res.Nodes {
		if m.Done {
			done++
		}
	}
	if done > 0 {
		t.AddRow("packets per done-node-token", sim.F(float64(res.PacketsOut)/float64(done*k)))
	}
	if res.Completed {
		t.AddNote("all %d live nodes reached rank %d; decoded tokens verified against the originals", res.FinalLive, k)
	} else {
		t.AddNote("run did NOT complete (timeout/tick cap); counters cover the partial run, per-node summaries cover only nodes that finished")
	}
	fmt.Fprint(w, t.String())
	if !res.Completed {
		return fmt.Errorf("dissemination incomplete")
	}
	return nil
}

package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runArgs calls run with defaults, overridden per case, so the tests
// exercise exactly the code path main dispatches to.
type runArgs struct {
	n, k, payload   int
	loss            float64
	fanout, shards  int
	mode, tp        string
	seed            int64
	delay           time.Duration
	reorder         float64
	buffer, maxTick int
	churn           string
	adv, mutate     string
	trace, telem    string
}

func defaults() runArgs {
	return runArgs{n: 8, k: 4, payload: 32, fanout: 2, shards: 1, mode: "coded", tp: "lockstep", seed: 1}
}

func (a runArgs) run(w io.Writer) error {
	if w == nil {
		w = io.Discard
	}
	return run(w, a.n, a.k, a.payload, a.loss, a.fanout, a.shards, a.mode, a.tp, a.seed,
		500*time.Microsecond, 30*time.Second, a.delay, a.reorder, a.buffer, a.maxTick, a.churn,
		a.adv, a.mutate, a.trace, a.telem)
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*runArgs)
		want string
	}{
		{"n too small", func(a *runArgs) { a.n = 1 }, "-n"},
		{"n negative", func(a *runArgs) { a.n = -3 }, "-n"},
		{"k zero", func(a *runArgs) { a.k = 0 }, "-k"},
		{"payload zero", func(a *runArgs) { a.payload = 0 }, "-payload"},
		{"fanout zero", func(a *runArgs) { a.fanout = 0 }, "-fanout"},
		{"fanout at n", func(a *runArgs) { a.fanout = 8 }, "-fanout"},
		{"fanout above n", func(a *runArgs) { a.fanout = 100 }, "-fanout"},
		{"shards zero", func(a *runArgs) { a.shards = 0 }, "-shards"},
		{"shards negative", func(a *runArgs) { a.shards = -4 }, "-shards"},
		{"shards above n", func(a *runArgs) { a.shards = 9 }, "-shards"},
		{"shards on async transport", func(a *runArgs) { a.shards = 2; a.tp = "chan" }, "-shards"},
		{"buffer negative", func(a *runArgs) { a.buffer = -2 }, "-buffer"},
		{"loss negative", func(a *runArgs) { a.loss = -0.1 }, "-loss"},
		{"loss one", func(a *runArgs) { a.loss = 1.0 }, "-loss"},
		{"reorder negative", func(a *runArgs) { a.reorder = -0.5 }, "-reorder"},
		{"reorder one", func(a *runArgs) { a.reorder = 1.5 }, "-reorder"},
		{"delay negative", func(a *runArgs) { a.delay = -time.Millisecond }, "-delay"},
		{"unknown mode", func(a *runArgs) { a.mode = "telepathy" }, "mode"},
		{"unknown transport", func(a *runArgs) { a.tp = "carrier-pigeon" }, "transport"},
		{"bad churn kind", func(a *runArgs) { a.churn = "meteor:10:1" }, "-churn"},
		{"bad churn shape", func(a *runArgs) { a.churn = "join:10" }, "-churn"},
		{"bad churn tick", func(a *runArgs) { a.churn = "join:0:1" }, "-churn"},
		{"unknown adversary", func(a *runArgs) { a.adv = "omniscient" }, "-adversary"},
		{"bad mutate op", func(a *runArgs) { a.mutate = "melt:0.1" }, "-mutate"},
		{"bad mutate rate", func(a *runArgs) { a.mutate = "dup:1.5" }, "-mutate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := defaults()
			tc.mut(&a)
			err := a.run(nil)
			if err == nil {
				t.Fatalf("bad flags accepted: %+v", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestRunLockstepSmallCompletes(t *testing.T) {
	if err := defaults().run(nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardedMatchesSerial drives the sharded engine through the
// CLI path and pins its bit-identity at the surface: same seed, same
// printed report.
func TestRunShardedMatchesSerial(t *testing.T) {
	var serial, sharded strings.Builder
	if err := defaults().run(&serial); err != nil {
		t.Fatal(err)
	}
	a := defaults()
	a.shards = 4
	if err := a.run(&sharded); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Errorf("sharded CLI output diverges from serial:\n--- serial ---\n%s--- shards=4 ---\n%s",
			serial.String(), sharded.String())
	}
}

// TestRunAdversarialLockstepCompletes drives the full adversarial
// surface — adaptive topology, targeted crash with restart, hostile
// packets — through the exact path main dispatches to.
func TestRunAdversarialLockstepCompletes(t *testing.T) {
	a := defaults()
	a.adv = "adaptive"
	a.mutate = "dup:0.05,stale:0.05,trunc:0.02"
	a.churn = "crashmax:10:1,restart:25:1"
	a.loss = 0.05
	if err := a.run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunLockstepChurnCompletes(t *testing.T) {
	a := defaults()
	a.churn = "crash:5:1,join:8:1"
	a.loss = 0.1
	var out strings.Builder
	if err := a.run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"churn schedule", "nodes spawned / live at end", "hellos sent"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("churn run output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunIncompleteOutputIsSane pins the timed-out-run reporting: a
// run that hits the tick cap must say Completed false, return the
// "incomplete" error, and print no vacuous aggregates (no NaN/Inf from
// empty-slice summary math).
func TestRunIncompleteOutputIsSane(t *testing.T) {
	a := defaults()
	a.loss = 0.98
	a.maxTick = 5
	var out strings.Builder
	err := a.run(&out)
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("capped run returned %v, want incomplete error", err)
	}
	s := out.String()
	if !strings.Contains(s, "completed") || !strings.Contains(s, "false") {
		t.Errorf("output does not report completed=false:\n%s", s)
	}
	for _, bad := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
		if strings.Contains(s, bad) {
			t.Errorf("vacuous aggregate %q in incomplete-run output:\n%s", bad, s)
		}
	}
	if !strings.Contains(s, "did NOT complete") {
		t.Errorf("output does not flag the partial run:\n%s", s)
	}
}

// TestRunTraceExportsArtifacts drives run with both telemetry flags
// set and checks the full artifact set lands: the standard rendered
// file set in -trace's directory and the bare v1 text export at
// -telemetry's path, all non-empty and schema-framed.
func TestRunTraceExportsArtifacts(t *testing.T) {
	dir := t.TempDir()
	a := defaults()
	a.trace = dir
	a.telem = filepath.Join(dir, "export.txt")
	if err := a.run(nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cluster-telemetry.txt", "cluster-heatmap.svg",
		"cluster-timeline.svg", "cluster-packetflow.svg", "export.txt",
	} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing artifact: %v", err)
			continue
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", name)
		}
		if strings.HasSuffix(name, ".txt") && !strings.HasPrefix(string(b), "telemetry v1\n") {
			t.Errorf("%s does not start with the v1 schema header", name)
		}
	}
}

// Command dissem runs k-token dissemination instances and prints their
// cost, for interactive exploration of the algorithm/adversary space.
// With -trials > 1 it sweeps seeds on a worker pool and prints summary
// statistics instead of a single run.
//
// Usage:
//
//	dissem -algo greedy -n 64 -k 64 -b 512 -d 8 -adv random -dist one-per-node
//	dissem -algo tstable -T 192 -n 32 -k 128 -dist at-one
//	dissem -algo forward -n 64 -k 64
//	dissem -algo greedy -n 64 -trials 20 -workers 0
//
// Algorithms: forward (Thm 2.1 baseline), naive (Cor 7.1), greedy
// (Thm 7.3), priority (Thm 7.5), tstable (Thm 2.4), stable-forward
// (batched baseline for T-stable networks).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/adversary"
	"repro/internal/dissem"
	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/sim"
	"repro/internal/stable"
	"repro/internal/token"
)

func main() {
	var (
		algo    = flag.String("algo", "greedy", "forward | naive | greedy | priority | tstable | stable-forward")
		n       = flag.Int("n", 32, "number of nodes")
		k       = flag.Int("k", 32, "number of tokens")
		b       = flag.Int("b", 512, "message budget in bits")
		d       = flag.Int("d", 8, "token payload size in bits")
		tt      = flag.Int("T", 1, "stability parameter (tstable and stable-forward)")
		adv     = flag.String("adv", "random", "adversary: random | rotating-path | static-<topology>")
		dist    = flag.String("dist", "one-per-node", "initial distribution: one-per-node | spread | at-one")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 1, "seeded trials; > 1 prints summary statistics")
		workers = flag.Int("workers", 0, "trial worker pool width (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	if err := run(*algo, *n, *k, *b, *d, *tt, *adv, *dist, *seed, *trials, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "dissem:", err)
		os.Exit(1)
	}
}

// runOnce executes one dissemination instance at the given seed.
func runOnce(algo string, n, k, b, d, t int, advName, distName string, seed int64) (dissem.Result, error) {
	rng := rand.New(rand.NewSource(seed))
	distribution, err := token.NamedDistribution(distName, n, k, d, rng)
	if err != nil {
		return dissem.Result{}, err
	}
	mkAdv := func() (dynnet.Adversary, error) { return adversary.Named(advName, n, seed+1) }
	params := dissem.Params{B: b, D: d, Seed: seed}

	var res dissem.Result
	switch algo {
	case "forward":
		a, err := mkAdv()
		if err != nil {
			return res, err
		}
		rounds, err := forwarding.RunPipelinedFlood(distribution, k, b, d, a)
		if err != nil {
			return res, err
		}
		res = dissem.Result{Rounds: rounds, Iterations: 1}
	case "stable-forward":
		a, err := mkAdv()
		if err != nil {
			return res, err
		}
		rounds, err := stable.RunFlood(distribution, k, b, d, t, adversary.NewTStable(a, t))
		if err != nil {
			return res, err
		}
		res = dissem.Result{Rounds: rounds, Iterations: 1}
	case "naive":
		a, err := mkAdv()
		if err != nil {
			return res, err
		}
		if res, err = dissem.Naive(distribution, params, a); err != nil {
			return res, err
		}
	case "greedy":
		a, err := mkAdv()
		if err != nil {
			return res, err
		}
		if res, err = dissem.GreedyForward(distribution, params, a); err != nil {
			return res, err
		}
	case "priority":
		a, err := mkAdv()
		if err != nil {
			return res, err
		}
		if res, err = dissem.PriorityForward(distribution, params, a); err != nil {
			return res, err
		}
	case "tstable":
		a, err := mkAdv()
		if err != nil {
			return res, err
		}
		if res, err = dissem.TStableDisseminate(distribution, params, t, a); err != nil {
			return res, err
		}
	default:
		return res, fmt.Errorf("unknown algorithm %q", algo)
	}
	return res, nil
}

func run(algo string, n, k, b, d, t int, advName, distName string, seed int64, trials, workers int) error {
	fmt.Printf("algo=%s n=%d k=%d b=%d d=%d T=%d adv=%s dist=%s seed=%d\n", algo, n, k, b, d, t, advName, distName, seed)
	if trials > 1 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		sum, err := sim.ParallelTrials(ctx, sim.ParallelConfig{Workers: workers}, trials,
			func(trialSeed int64) (float64, error) {
				res, err := runOnce(algo, n, k, b, d, t, advName, distName, seed+trialSeed)
				return float64(res.Rounds), err
			})
		if err != nil {
			return err
		}
		fmt.Printf("trials=%d rounds mean=%.1f median=%.1f min=%.0f max=%.0f\n",
			sum.N, sum.Mean, sum.Median, sum.Min, sum.Max)
		fmt.Println("all nodes decoded all tokens in every trial: verified")
		return nil
	}
	res, err := runOnce(algo, n, k, b, d, t, advName, distName, seed)
	if err != nil {
		return err
	}
	if res.Messages > 0 {
		fmt.Printf("rounds=%d iterations=%d messages=%d bits=%d\n", res.Rounds, res.Iterations, res.Messages, res.Bits)
	} else {
		// The forwarding baselines report rounds only.
		fmt.Printf("rounds=%d\n", res.Rounds)
	}
	fmt.Println("all nodes decoded all tokens: verified")
	return nil
}

// Command dissem runs one k-token dissemination instance and prints its
// cost, for interactive exploration of the algorithm/adversary space.
//
// Usage:
//
//	dissem -algo greedy -n 64 -k 64 -b 512 -d 8 -adv random -dist one-per-node
//	dissem -algo tstable -T 192 -n 32 -k 128 -dist at-one
//	dissem -algo forward -n 64 -k 64
//
// Algorithms: forward (Thm 2.1 baseline), naive (Cor 7.1), greedy
// (Thm 7.3), priority (Thm 7.5), tstable (Thm 2.4), stable-forward
// (batched baseline for T-stable networks).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/adversary"
	"repro/internal/dissem"
	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/stable"
	"repro/internal/token"
)

func main() {
	var (
		algo = flag.String("algo", "greedy", "forward | naive | greedy | priority | tstable | stable-forward")
		n    = flag.Int("n", 32, "number of nodes")
		k    = flag.Int("k", 32, "number of tokens")
		b    = flag.Int("b", 512, "message budget in bits")
		d    = flag.Int("d", 8, "token payload size in bits")
		tt   = flag.Int("T", 1, "stability parameter (tstable and stable-forward)")
		adv  = flag.String("adv", "random", "adversary: random | rotating-path | static-<topology>")
		dist = flag.String("dist", "one-per-node", "initial distribution: one-per-node | spread | at-one")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*algo, *n, *k, *b, *d, *tt, *adv, *dist, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dissem:", err)
		os.Exit(1)
	}
}

func run(algo string, n, k, b, d, t int, advName, distName string, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	distribution, err := token.NamedDistribution(distName, n, k, d, rng)
	if err != nil {
		return err
	}
	mkAdv := func() (dynnet.Adversary, error) { return adversary.Named(advName, n, seed+1) }
	params := dissem.Params{B: b, D: d, Seed: seed}

	var res dissem.Result
	switch algo {
	case "forward":
		a, err := mkAdv()
		if err != nil {
			return err
		}
		rounds, err := forwarding.RunPipelinedFlood(distribution, k, b, d, a)
		if err != nil {
			return err
		}
		res = dissem.Result{Rounds: rounds, Iterations: 1}
	case "stable-forward":
		a, err := mkAdv()
		if err != nil {
			return err
		}
		rounds, err := stable.RunFlood(distribution, k, b, d, t, adversary.NewTStable(a, t))
		if err != nil {
			return err
		}
		res = dissem.Result{Rounds: rounds, Iterations: 1}
	case "naive":
		a, err := mkAdv()
		if err != nil {
			return err
		}
		if res, err = dissem.Naive(distribution, params, a); err != nil {
			return err
		}
	case "greedy":
		a, err := mkAdv()
		if err != nil {
			return err
		}
		if res, err = dissem.GreedyForward(distribution, params, a); err != nil {
			return err
		}
	case "priority":
		a, err := mkAdv()
		if err != nil {
			return err
		}
		if res, err = dissem.PriorityForward(distribution, params, a); err != nil {
			return err
		}
	case "tstable":
		a, err := mkAdv()
		if err != nil {
			return err
		}
		if res, err = dissem.TStableDisseminate(distribution, params, t, a); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	fmt.Printf("algo=%s n=%d k=%d b=%d d=%d T=%d adv=%s dist=%s\n", algo, n, k, b, d, t, advName, distName)
	if res.Messages > 0 {
		fmt.Printf("rounds=%d iterations=%d messages=%d bits=%d\n", res.Rounds, res.Iterations, res.Messages, res.Bits)
	} else {
		// The forwarding baselines report rounds only.
		fmt.Printf("rounds=%d\n", res.Rounds)
	}
	fmt.Println("all nodes decoded all tokens: verified")
	return nil
}

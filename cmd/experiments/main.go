// Command experiments regenerates the repository's experiment tables
// E1..E9 — the measured counterparts of the paper's theorems (see
// DESIGN.md for the index and EXPERIMENTS.md for recorded outcomes).
//
// Usage:
//
//	experiments [-run E3] [-trials 5] [-quick] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		run    = flag.String("run", "", "run a single experiment by ID (e.g. E3); default all")
		trials = flag.Int("trials", 0, "trials per data point (0 = experiment default)")
		quick  = flag.Bool("quick", false, "shrink sweeps to quick sizes")
		seed   = flag.Int64("seed", 1, "base random seed")
		asJSON = flag.Bool("json", false, "emit results as a JSON array instead of tables")
	)
	flag.Parse()
	if err := realMain(*run, *trials, *quick, *seed, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(run string, trials int, quick bool, seed int64, asJSON bool) error {
	cfg := exp.Config{Trials: trials, Quick: quick, Seed: seed}
	suite := exp.All()
	if run != "" {
		e, err := exp.Find(run)
		if err != nil {
			return err
		}
		suite = []exp.Experiment{e}
	}
	var jsonOut []map[string]any
	for _, e := range suite {
		if !asJSON {
			fmt.Printf("== %s: %s\n", e.ID, e.Title)
		}
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if asJSON {
			m := tbl.MarshalTable()
			m["id"] = e.ID
			m["title"] = e.Title
			jsonOut = append(jsonOut, m)
			continue
		}
		fmt.Println(tbl.String())
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOut)
	}
	return nil
}

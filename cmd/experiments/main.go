// Command experiments regenerates the repository's experiment tables
// E1..E14 — the measured counterparts of the paper's theorems (see
// DESIGN.md for the index).
//
// Trials within each sweep run on a worker pool; results are
// bit-identical at every worker count. Ctrl-C cancels cleanly.
//
// Usage:
//
//	experiments [-run E3] [-trials 5] [-quick] [-seed 1] [-workers 0] [-progress]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/exp"
)

func main() {
	var (
		run      = flag.String("run", "", "run a single experiment by ID (e.g. E3); default all")
		trials   = flag.Int("trials", 0, "trials per data point (0 = experiment default)")
		quick    = flag.Bool("quick", false, "shrink sweeps to quick sizes")
		seed     = flag.Int64("seed", 1, "base random seed")
		asJSON   = flag.Bool("json", false, "emit results as a JSON array instead of tables")
		workers  = flag.Int("workers", 0, "trial worker pool width (0 = GOMAXPROCS, 1 = serial)")
		progress = flag.Bool("progress", false, "print per-sweep trial progress to stderr")
	)
	flag.Parse()
	if err := realMain(*run, *trials, *quick, *seed, *asJSON, *workers, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(run string, trials int, quick bool, seed int64, asJSON bool, workers int, progress bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := exp.Config{Trials: trials, Quick: quick, Seed: seed, Workers: workers, Ctx: ctx}
	if progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	suite := exp.All()
	if run != "" {
		e, err := exp.Find(run)
		if err != nil {
			return err
		}
		suite = []exp.Experiment{e}
	}
	var jsonOut []map[string]any
	for _, e := range suite {
		if !asJSON {
			fmt.Printf("== %s: %s\n", e.ID, e.Title)
		}
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if asJSON {
			m := tbl.MarshalTable()
			m["id"] = e.ID
			m["title"] = e.Title
			jsonOut = append(jsonOut, m)
			continue
		}
		fmt.Println(tbl.String())
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOut)
	}
	return nil
}

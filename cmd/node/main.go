// Command node runs ONE gossip node as its own OS process over a real
// UDP socket — the multi-process counterpart of cmd/cluster and
// cmd/stream, whose runtimes spawn all n nodes as goroutines. A
// cluster is then n of these processes: every process derives the same
// token set (or stream source) from the shared -seed, discovers its
// peers' socket addresses from one -bootstrap peer, gossips until its
// own rank-k decode verifies, and lingers so slower peers can finish.
// scripts/localnet.sh spins up n of them on the loopback and collects
// the per-node metric files; see DESIGN.md ("Socket transport &
// multi-process runtime").
//
// Quick start:
//
//	go run ./cmd/node -id 0 -n 3 -addr 127.0.0.1:9000 &
//	go run ./cmd/node -id 1 -n 3 -addr 127.0.0.1:9001 -bootstrap 127.0.0.1:9000 &
//	go run ./cmd/node -id 2 -n 3 -addr 127.0.0.1:9002 -bootstrap 127.0.0.1:9000
//
// Every process prints a LISTEN line at bind time and a DONE line at
// completion; -metrics writes a key=value file with the node's gossip
// and socket counters. -mode stream runs the windowed streaming
// runtime instead of one-shot dissemination. The -loss/-delay/-reorder
// fault-injection middlewares stack above the socket exactly as they
// do above the in-process transports, so hostile-network experiments
// compose with real packet loss; -adversary and -mutate stack the
// internal/hostile layers on top of those:
//
//	go run ./cmd/node -id 0 -n 3 -addr 127.0.0.1:9000 -mutate "dup:0.05,trunc:0.02"
//	go run ./cmd/node -id 0 -n 3 -addr 127.0.0.1:9000 -adversary rotating-path
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -debug-addr
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/token"
	"repro/internal/udpnet"
)

// options carries every flag so tests drive run() without a process.
type options struct {
	addr      string
	bootstrap string
	id        int
	n         int
	mode      string

	k       int
	payload int
	fanout  int
	seed    int64

	window      int
	generations int

	interval time.Duration
	timeout  time.Duration
	linger   time.Duration

	loss      float64
	delay     time.Duration
	reorder   float64
	adversary string
	mutate    string

	metrics string

	trace     string
	telem     string
	debugAddr string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:0", "UDP address to bind (host:port; port 0 = ephemeral)")
	flag.StringVar(&o.bootstrap, "bootstrap", "", "a peer's UDP address to learn the membership from (empty = this IS the bootstrap node)")
	flag.IntVar(&o.id, "id", 0, "this node's id in [0, n)")
	flag.IntVar(&o.n, "n", 2, "total number of node processes")
	flag.StringVar(&o.mode, "mode", "cluster", "runtime: cluster (one-shot dissemination) | stream (windowed generations)")
	flag.IntVar(&o.k, "k", 32, "tokens to disseminate (cluster) or generation size (stream)")
	flag.IntVar(&o.payload, "payload", 128, "token payload size in bits")
	flag.IntVar(&o.fanout, "fanout", 2, "peers contacted per emission")
	flag.Int64Var(&o.seed, "seed", 1, "shared seed; all processes must agree (tokens derive from it)")
	flag.IntVar(&o.window, "window", 4, "stream: maximum concurrent generations")
	flag.IntVar(&o.generations, "generations", 8, "stream: number of generations")
	flag.DurationVar(&o.interval, "interval", 2*time.Millisecond, "emission pacing")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "wall-clock cap for bootstrap and for the run")
	flag.DurationVar(&o.linger, "linger", 2*time.Second, "keep gossiping this long after local completion")
	flag.Float64Var(&o.loss, "loss", 0, "injected packet loss rate in [0,1), above the socket")
	flag.DurationVar(&o.delay, "delay", 0, "injected per-packet latency upper bound")
	flag.Float64Var(&o.reorder, "reorder", 0, "injected packet reordering rate in [0,1)")
	flag.StringVar(&o.adversary, "adversary", "", `topology adversary name[:params] (random | rotating-path | static-<topology> | tstable:<T> | tinterval:<T> | adaptive | trace:<file>)`)
	flag.StringVar(&o.mutate, "mutate", "", `hostile-packet mutation spec, e.g. "dup:0.05,stale:0.1" (ops: dup|stale|trunc|flip|xgen|all)`)
	flag.StringVar(&o.metrics, "metrics", "", "write key=value metrics to this file")
	flag.StringVar(&o.trace, "trace", "", "trace the run and render node<id>-{telemetry.txt,heatmap.svg,timeline.svg,packetflow.svg} into this directory")
	flag.StringVar(&o.telem, "telemetry", "", "trace the run and write the telemetry v1 text export to this file")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve /debug/pprof and /debug/vars on this address (host:port; port 0 = ephemeral)")
	flag.Parse()
	// SIGTERM joins SIGINT so a `kill` (what launchers and CI send)
	// drains through the same cancellation path and still flushes the
	// metrics file.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "node %d: %v\n", o.id, err)
		os.Exit(1)
	}
}

// run is the whole process body behind the flag surface, testable
// without forking: validate, bind, bootstrap, gossip, report.
func run(ctx context.Context, w io.Writer, o options) error {
	streamMode, err := cliutil.ParseMode(o.mode)
	if err != nil {
		return err
	}
	if err := cliutil.ValidateHostPort("-addr", o.addr); err != nil {
		return err
	}
	if o.bootstrap != "" {
		if err := cliutil.ValidateHostPort("-bootstrap", o.bootstrap); err != nil {
			return err
		}
	}
	if err := cliutil.ValidateNodeID(o.id, o.n); err != nil {
		return err
	}
	if err := cliutil.ValidateGossip(o.n, o.k, o.payload, o.fanout, o.loss, o.reorder); err != nil {
		return err
	}

	tr, err := udpnet.Dial(udpnet.Config{ID: o.id, Nodes: o.n, Addr: o.addr, Bootstrap: o.bootstrap})
	if err != nil {
		return err
	}
	defer tr.Close()
	fmt.Fprintf(w, "LISTEN id=%d addr=%s\n", o.id, tr.LocalAddr())

	// The recorder must exist before the adversarial wrap: the adaptive
	// adversary reads its rank scoreboard.
	var rec *telemetry.Recorder
	if o.trace != "" || o.telem != "" || cliutil.AdversaryNeedsTelemetry(o.adversary) {
		rec = telemetry.New(telemetry.Config{Nodes: o.n})
		rec.SetMeta("driver", "node")
		rec.SetMeta("id", fmt.Sprint(o.id))
		rec.SetMeta("n", fmt.Sprint(o.n))
		rec.SetMeta("mode", o.mode)
		rec.SetMeta("k", fmt.Sprint(o.k))
		rec.SetMeta("seed", fmt.Sprint(o.seed))
	}

	if o.debugAddr != "" {
		ln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return err
		}
		publishDebugVars()
		curTransport.Store(tr)
		curRecorder.Store(rec)
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(w, "DEBUG id=%d addr=%s\n", o.id, ln.Addr())
	}

	// The metrics file and telemetry exports flush on EVERY exit path —
	// signal, timeout, bootstrap failure, verification error — so a
	// killed node still leaves its partial counters for the launcher to
	// aggregate. The deferred flush is the crash path; the success path
	// flushes explicitly so write errors surface as run errors.
	kv := [][2]string{}
	add := func(key string, val any) { kv = append(kv, [2]string{key, fmt.Sprint(val)}) }
	stopSampler := func() {}
	flushed := false
	flush := func() error {
		flushed = true
		stopSampler() // exports must see a quiet recorder
		s := tr.Stats()
		add("udp_datagrams", s.Datagrams)
		add("udp_gossip", s.Gossip)
		add("udp_announces", s.Announces)
		add("udp_drop_oversize", s.DropOversize)
		add("udp_drop_truncated", s.DropTruncated)
		add("udp_drop_version", s.DropVersion)
		add("udp_drop_type", s.DropType)
		add("udp_drop_malformed", s.DropMalformed)
		add("udp_drop_inbox_full", s.DropInboxFull)
		add("udp_drop_unknown_peer", s.DropUnknownPeer)
		add("udp_write_errors", s.WriteErrors)
		if o.metrics != "" {
			if err := writeMetrics(o.metrics, o.id, kv); err != nil {
				return err
			}
		}
		return cliutil.ExportTelemetry(rec, o.trace, o.telem, fmt.Sprintf("node%d", o.id), streamMode)
	}
	defer func() {
		if !flushed {
			flush() // crash path: best-effort, the run's own error wins
		}
	}()

	// Wrap before bootstrapping so a bad middleware knob fails fast.
	// The middlewares hide the socket transport's Known method, which is
	// why the routability gate is captured from tr, not wrapped.
	wrapped, err := cliutil.WrapHostile(tr, o.delay, o.reorder, o.loss, o.seed)
	if err != nil {
		return err
	}
	// The hostile layers stack outermost; their tick clock derives from
	// the emission interval (no lockstep driver feeds them ticks here).
	wrapped, err = cliutil.WrapAdversarial(wrapped, o.adversary, o.mutate, o.n, o.seed, o.interval, rec)
	if err != nil {
		return err
	}

	// Fill the address book before gossiping: joiners pull it from the
	// bootstrap peer; the bootstrap node itself learns each joiner from
	// the pings it answers. The retry period scales with the emission
	// interval (which the launcher scales with n): n-1 joiners hammering
	// one bootstrap peer every 50ms was a measured livelock at n=1024 on
	// one core — the ping storm starved the processes it was probing.
	bootCtx, cancelBoot := context.WithTimeout(ctx, o.timeout)
	defer cancelBoot()
	if o.bootstrap != "" {
		bootEvery := 10 * o.interval
		if bootEvery < 50*time.Millisecond {
			bootEvery = 50 * time.Millisecond
		}
		go tr.BootstrapLoop(bootCtx, bootEvery)
	}
	// Wait in slices so a slow bootstrap is visible in the logs: a
	// 1k-process run that stalls with every node silent is
	// undiagnosable; one that stalls printing "known=37/1024" is not.
	for {
		wctx, cancelWait := context.WithTimeout(bootCtx, 5*time.Second)
		err := tr.WaitReady(wctx)
		cancelWait()
		if err == nil {
			break
		}
		if bootCtx.Err() != nil {
			return fmt.Errorf("bootstrap: %w", err)
		}
		fmt.Fprintf(w, "BOOT id=%d known=%d/%d\n", o.id, tr.BookSize(), o.n)
	}

	// One sampling loop per process feeds the socket accounting series;
	// flush joins it (via stopSampler) so the exports see a quiet
	// recorder.
	if rec != nil {
		start := time.Now()
		sctx, scancel := context.WithCancel(ctx)
		samplerDone := make(chan struct{})
		var stopOnce sync.Once
		stopSampler = func() {
			stopOnce.Do(func() {
				scancel()
				<-samplerDone
			})
		}
		go func() {
			defer close(samplerDone)
			every := 10 * o.interval
			if every < 10*time.Millisecond {
				every = 10 * time.Millisecond
			}
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-sctx.Done():
					return
				case <-tick.C:
					s := tr.Stats()
					rec.SampleNet(time.Since(start).Milliseconds(), telemetry.NetCounters{
						Datagrams: s.Datagrams, Gossip: s.Gossip, Announces: s.Announces,
						DropOversize: s.DropOversize, DropTruncated: s.DropTruncated,
						DropVersion: s.DropVersion, DropType: s.DropType,
						DropMalformed: s.DropMalformed, DropInboxFull: s.DropInboxFull,
						DropUnknownPeer: s.DropUnknownPeer, WriteErrors: s.WriteErrors,
					})
				}
			}
		}()
		defer stopSampler()
	}

	var done bool
	if streamMode {
		m, err := stream.RunSingle(ctx, stream.SingleConfig{
			ID: o.id, N: o.n, K: o.k, PayloadBits: o.payload,
			Window: o.window, Generations: o.generations,
			Fanout: o.fanout, Seed: o.seed,
			Transport: wrapped, Known: tr.Known,
			Interval: o.interval, Timeout: o.timeout, Linger: o.linger,
			Telemetry: rec,
		})
		if err != nil {
			return err
		}
		done = m.Done
		add("done", m.Done)
		add("done_at_ms", m.DoneAt.Milliseconds())
		add("delivered", m.Delivered)
		add("packets_out", m.PacketsOut)
		add("packets_in", m.PacketsIn)
		add("acks_out", m.AcksOut)
		add("acks_in", m.AcksIn)
		add("bits_out", m.BitsOut)
		add("dropped", m.Dropped)
		add("innovative", m.Innovative)
		add("stale", m.Stale)
		fmt.Fprintf(w, "DONE id=%d ok=%v delivered=%d packets_out=%d\n", o.id, m.Done, m.Delivered, m.PacketsOut)
	} else {
		toks := token.RandomSet(o.k, o.payload, rand.New(rand.NewSource(o.seed)))
		m, err := cluster.RunSingle(ctx, cluster.SingleConfig{
			ID: o.id, N: o.n, Fanout: o.fanout, Mode: cluster.Coded, Seed: o.seed,
			Transport: wrapped, Known: tr.Known,
			Interval: o.interval, Timeout: o.timeout, Linger: o.linger,
			Telemetry: rec,
		}, toks)
		if err != nil {
			return err
		}
		done = m.Done
		add("done", m.Done)
		add("done_at_ms", m.DoneAt.Milliseconds())
		add("packets_out", m.PacketsOut)
		add("packets_in", m.PacketsIn)
		add("bits_out", m.BitsOut)
		add("dropped", m.Dropped)
		add("innovative", m.Innovative)
		fmt.Fprintf(w, "DONE id=%d ok=%v innovative=%d packets_out=%d\n", o.id, m.Done, m.Innovative, m.PacketsOut)
	}
	if err := flush(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("did not complete within %v", o.timeout)
	}
	return nil
}

// The expvar surface is published once per process (expvar.Publish
// panics on duplicates, and tests drive run() repeatedly); the Funcs
// indirect through atomic holders so each run swaps in its own live
// sources. Only race-safe snapshots are exposed: udpnet.Stats reads
// atomics, Recorder.Counters is the recorder's concurrent surface.
var (
	publishOnce  sync.Once
	curTransport atomic.Pointer[udpnet.Transport]
	curRecorder  atomic.Pointer[telemetry.Recorder]
)

func publishDebugVars() {
	publishOnce.Do(func() {
		expvar.Publish("udpnet", expvar.Func(func() any {
			if tr := curTransport.Load(); tr != nil {
				return tr.Stats()
			}
			return nil
		}))
		expvar.Publish("telemetry", expvar.Func(func() any {
			return curRecorder.Load().Counters() // nil recorder → nil map
		}))
	})
}

// writeMetrics dumps the node's counters as sorted key=value lines —
// greppable, awk-able, and diff-stable for CI artifacts.
func writeMetrics(path string, id int, kv [][2]string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%d\n", id)
	sorted := append([][2]string(nil), kv...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	for _, e := range sorted {
		fmt.Fprintf(&b, "%s=%s\n", e[0], e[1])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

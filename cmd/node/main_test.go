package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func validOptions() options {
	return options{
		addr: "127.0.0.1:0", id: 0, n: 2, mode: "cluster",
		k: 4, payload: 32, fanout: 1, seed: 1,
		window: 2, generations: 3,
		interval: time.Millisecond, timeout: 20 * time.Second, linger: 500 * time.Millisecond,
	}
}

// TestRunValidation drives every flag check through the extracted
// process body: each rejection must happen before a socket is bound
// and must name the offending flag.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(o options) options
		want string
	}{
		{"bad mode", func(o options) options { o.mode = "both"; return o }, "-mode"},
		{"empty addr", func(o options) options { o.addr = ""; return o }, "-addr"},
		{"addr without port", func(o options) options { o.addr = "127.0.0.1"; return o }, "-addr"},
		{"bad bootstrap", func(o options) options { o.bootstrap = "nonsense"; return o }, "-bootstrap"},
		{"negative id", func(o options) options { o.id = -1; return o }, "-id"},
		{"id at n", func(o options) options { o.id = 2; return o }, "-id"},
		{"single node", func(o options) options { o.n = 1; o.id = 0; return o }, "-n"},
		{"zero k", func(o options) options { o.k = 0; return o }, "-k"},
		{"zero payload", func(o options) options { o.payload = 0; return o }, "-payload"},
		{"fanout at n", func(o options) options { o.fanout = 2; return o }, "-fanout"},
		{"loss out of range", func(o options) options { o.loss = 1; return o }, "-loss"},
		{"reorder out of range", func(o options) options { o.reorder = -0.1; return o }, "-reorder"},
	}
	for _, tc := range cases {
		err := run(context.Background(), io.Discard, tc.mut(validOptions()))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestRunRejectsNegativeDelay pins that the middleware knobs are
// validated even though they live behind WrapHostile: a negative
// -delay must fail the run, not silently mean "no delay".
func TestRunRejectsNegativeDelay(t *testing.T) {
	o := validOptions()
	o.delay = -time.Millisecond
	if err := run(context.Background(), io.Discard, o); err == nil || !strings.Contains(err.Error(), "-delay") {
		t.Errorf("negative delay: err %v does not name -delay", err)
	}
}

// freeAddrs reserves n distinct loopback UDP ports by binding and
// releasing them, so the two-process smoke tests can exchange a known
// bootstrap address.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := range addrs {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// smoke runs a full 2-process-shaped cluster (two run() bodies, each
// owning its own socket) in the given mode and returns the per-node
// outputs and metric files.
func smoke(t *testing.T, mode string) (outs []bytes.Buffer, metrics []string) {
	t.Helper()
	addrs := freeAddrs(t, 2)
	dir := t.TempDir()
	outs = make([]bytes.Buffer, 2)
	metrics = []string{filepath.Join(dir, "node0.metrics"), filepath.Join(dir, "node1.metrics")}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		o := validOptions()
		o.id, o.mode, o.addr, o.metrics = id, mode, addrs[id], metrics[id]
		if id > 0 {
			o.bootstrap = addrs[0]
		}
		wg.Add(1)
		go func(id int, o options) {
			defer wg.Done()
			errs[id] = run(context.Background(), &outs[id], o)
		}(id, o)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\n%s", id, err, outs[id].String())
		}
	}
	return outs, metrics
}

// TestTwoNodeClusterSmoke is the end-to-end cmd/node path: two process
// bodies bootstrap over loopback sockets, disseminate, verify, and
// write their metric files.
func TestTwoNodeClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	outs, metrics := smoke(t, "cluster")
	for id := range outs {
		got := outs[id].String()
		if !strings.Contains(got, "LISTEN id=") {
			t.Errorf("node %d printed no LISTEN line:\n%s", id, got)
		}
		if !strings.Contains(got, "DONE id=") || !strings.Contains(got, "ok=true") {
			t.Errorf("node %d printed no successful DONE line:\n%s", id, got)
		}
		raw, err := os.ReadFile(metrics[id])
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"done=true", "udp_datagrams=", "packets_out="} {
			if !strings.Contains(string(raw), key) {
				t.Errorf("node %d metrics file lacks %q:\n%s", id, key, raw)
			}
		}
	}
}

// TestTwoNodeStreamSmoke drives -mode stream through the same path.
func TestTwoNodeStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	outs, _ := smoke(t, "stream")
	for id := range outs {
		if got := outs[id].String(); !strings.Contains(got, "ok=true") || !strings.Contains(got, "delivered=3") {
			t.Errorf("node %d did not deliver the full stream:\n%s", id, got)
		}
	}
}

// TestMetricsFlushOnCancel pins satellite behavior: a node killed
// mid-run (context cancellation stands in for SIGINT/SIGTERM, which
// main routes through the same NotifyContext) must still leave its
// metrics file with the socket counters, plus its telemetry export.
func TestMetricsFlushOnCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	dir := t.TempDir()
	o := validOptions()
	o.metrics = filepath.Join(dir, "node0.metrics")
	o.telem = filepath.Join(dir, "node0.telemetry")
	// No peer ever answers: the node blocks (in bootstrap or the run
	// loop) until killed.
	o.timeout = 20 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(300*time.Millisecond, cancel)
	err := run(ctx, io.Discard, o)
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	raw, rerr := os.ReadFile(o.metrics)
	if rerr != nil {
		t.Fatalf("canceled run left no metrics file: %v", rerr)
	}
	for _, key := range []string{"id=0\n", "udp_datagrams="} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("flushed metrics lack %q:\n%s", key, raw)
		}
	}
	if tel, rerr := os.ReadFile(o.telem); rerr != nil {
		t.Errorf("canceled run left no telemetry export: %v", rerr)
	} else if !strings.HasPrefix(string(tel), "telemetry v1\n") {
		t.Errorf("telemetry export lacks the v1 header:\n%.80s", tel)
	}
}

// TestMetricsFlushOnBootstrapFailure covers the crash path before the
// gossip loop even starts: a node whose bootstrap peer never exists
// must error out AND still flush the socket counters it did record.
func TestMetricsFlushOnBootstrapFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	addrs := freeAddrs(t, 1)
	dir := t.TempDir()
	o := validOptions()
	o.bootstrap = addrs[0] // reserved then released: nobody listens
	o.id = 1
	o.metrics = filepath.Join(dir, "node1.metrics")
	o.timeout = 400 * time.Millisecond
	err := run(context.Background(), io.Discard, o)
	if err == nil || !strings.Contains(err.Error(), "bootstrap") {
		t.Fatalf("bootstrap against a dead peer returned %v", err)
	}
	raw, rerr := os.ReadFile(o.metrics)
	if rerr != nil {
		t.Fatalf("failed bootstrap left no metrics file: %v", rerr)
	}
	if !strings.Contains(string(raw), "udp_datagrams=") {
		t.Errorf("flushed metrics lack socket counters:\n%s", raw)
	}
}

// TestDebugEndpointsServe pins the -debug-addr surface: the process
// prints the bound DEBUG address and serves both the pprof index and
// the expvar JSON (including the published udpnet and telemetry vars)
// while the run is live; run() being driven twice must not re-panic
// expvar.Publish.
func TestDebugEndpointsServe(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	for round := 0; round < 2; round++ {
		addrs := freeAddrs(t, 2)
		dir := t.TempDir()
		var out lockedBuffer
		o := validOptions()
		o.addr = addrs[0]
		o.debugAddr = "127.0.0.1:0"
		o.trace = dir
		o.metrics = filepath.Join(dir, "node0.metrics")
		o.timeout = 20 * time.Second

		debugUp := make(chan string, 1)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- run(ctx, &out, o) }()
		go func() {
			for i := 0; i < 100; i++ {
				if line := out.String(); strings.Contains(line, "DEBUG id=0 addr=") {
					f := strings.Fields(line[strings.Index(line, "DEBUG"):])
					debugUp <- strings.TrimPrefix(f[2], "addr=")
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			debugUp <- ""
		}()
		addr := <-debugUp
		if addr == "" {
			cancel()
			t.Fatalf("round %d: no DEBUG line:\n%s", round, out.String())
		}
		for path, want := range map[string]string{
			"/debug/pprof/": "goroutine",
			"/debug/vars":   "udpnet",
		} {
			body, err := httpGet("http://" + addr + path)
			if err != nil {
				t.Fatalf("round %d: GET %s: %v", round, path, err)
			}
			if !strings.Contains(body, want) {
				t.Errorf("round %d: %s response lacks %q:\n%.200s", round, path, want, body)
			}
		}
		if body, err := httpGet("http://" + addr + "/debug/vars"); err != nil {
			t.Fatal(err)
		} else if !strings.Contains(body, "telemetry") {
			t.Errorf("round %d: expvar lacks the telemetry var:\n%.200s", round, body)
		}
		cancel()
		if err := <-done; err == nil {
			t.Fatalf("round %d: canceled run reported success", round)
		}
		// The traced, canceled run still rendered its artifact set.
		if _, err := os.Stat(filepath.Join(dir, "node0-heatmap.svg")); err != nil {
			t.Errorf("round %d: traced run left no heatmap: %v", round, err)
		}
	}
}

// lockedBuffer lets the test poll run()'s output while run is still
// writing it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func validOptions() options {
	return options{
		addr: "127.0.0.1:0", id: 0, n: 2, mode: "cluster",
		k: 4, payload: 32, fanout: 1, seed: 1,
		window: 2, generations: 3,
		interval: time.Millisecond, timeout: 20 * time.Second, linger: 500 * time.Millisecond,
	}
}

// TestRunValidation drives every flag check through the extracted
// process body: each rejection must happen before a socket is bound
// and must name the offending flag.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(o options) options
		want string
	}{
		{"bad mode", func(o options) options { o.mode = "both"; return o }, "-mode"},
		{"empty addr", func(o options) options { o.addr = ""; return o }, "-addr"},
		{"addr without port", func(o options) options { o.addr = "127.0.0.1"; return o }, "-addr"},
		{"bad bootstrap", func(o options) options { o.bootstrap = "nonsense"; return o }, "-bootstrap"},
		{"negative id", func(o options) options { o.id = -1; return o }, "-id"},
		{"id at n", func(o options) options { o.id = 2; return o }, "-id"},
		{"single node", func(o options) options { o.n = 1; o.id = 0; return o }, "-n"},
		{"zero k", func(o options) options { o.k = 0; return o }, "-k"},
		{"zero payload", func(o options) options { o.payload = 0; return o }, "-payload"},
		{"fanout at n", func(o options) options { o.fanout = 2; return o }, "-fanout"},
		{"loss out of range", func(o options) options { o.loss = 1; return o }, "-loss"},
		{"reorder out of range", func(o options) options { o.reorder = -0.1; return o }, "-reorder"},
	}
	for _, tc := range cases {
		err := run(context.Background(), io.Discard, tc.mut(validOptions()))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestRunRejectsNegativeDelay pins that the middleware knobs are
// validated even though they live behind WrapHostile: a negative
// -delay must fail the run, not silently mean "no delay".
func TestRunRejectsNegativeDelay(t *testing.T) {
	o := validOptions()
	o.delay = -time.Millisecond
	if err := run(context.Background(), io.Discard, o); err == nil || !strings.Contains(err.Error(), "-delay") {
		t.Errorf("negative delay: err %v does not name -delay", err)
	}
}

// freeAddrs reserves n distinct loopback UDP ports by binding and
// releasing them, so the two-process smoke tests can exchange a known
// bootstrap address.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := range addrs {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// smoke runs a full 2-process-shaped cluster (two run() bodies, each
// owning its own socket) in the given mode and returns the per-node
// outputs and metric files.
func smoke(t *testing.T, mode string) (outs []bytes.Buffer, metrics []string) {
	t.Helper()
	addrs := freeAddrs(t, 2)
	dir := t.TempDir()
	outs = make([]bytes.Buffer, 2)
	metrics = []string{filepath.Join(dir, "node0.metrics"), filepath.Join(dir, "node1.metrics")}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		o := validOptions()
		o.id, o.mode, o.addr, o.metrics = id, mode, addrs[id], metrics[id]
		if id > 0 {
			o.bootstrap = addrs[0]
		}
		wg.Add(1)
		go func(id int, o options) {
			defer wg.Done()
			errs[id] = run(context.Background(), &outs[id], o)
		}(id, o)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\n%s", id, err, outs[id].String())
		}
	}
	return outs, metrics
}

// TestTwoNodeClusterSmoke is the end-to-end cmd/node path: two process
// bodies bootstrap over loopback sockets, disseminate, verify, and
// write their metric files.
func TestTwoNodeClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	outs, metrics := smoke(t, "cluster")
	for id := range outs {
		got := outs[id].String()
		if !strings.Contains(got, "LISTEN id=") {
			t.Errorf("node %d printed no LISTEN line:\n%s", id, got)
		}
		if !strings.Contains(got, "DONE id=") || !strings.Contains(got, "ok=true") {
			t.Errorf("node %d printed no successful DONE line:\n%s", id, got)
		}
		raw, err := os.ReadFile(metrics[id])
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"done=true", "udp_datagrams=", "packets_out="} {
			if !strings.Contains(string(raw), key) {
				t.Errorf("node %d metrics file lacks %q:\n%s", id, key, raw)
			}
		}
	}
}

// TestTwoNodeStreamSmoke drives -mode stream through the same path.
func TestTwoNodeStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	outs, _ := smoke(t, "stream")
	for id := range outs {
		if got := outs[id].String(); !strings.Contains(got, "ok=true") || !strings.Contains(got, "delivered=3") {
			t.Errorf("node %d did not deliver the full stream:\n%s", id, got)
		}
	}
}

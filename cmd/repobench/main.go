// Command repobench is the repository's performance observatory: a
// two-mode sweep-to-SVG harness in the spirit of reposurgeon's
// repobench (generate and display are separate so the expensive
// generate result can be kept around for repeated visualization).
//
// Generate mode (the default) sweeps one parameter through a lockstep
// driver, measures each point (wall runtime, allocations, allocated
// bytes, heap high-water via runtime.ReadMemStats, delivered
// tokens/tick) and appends one row per point to a datafile named after
// the current git revision under -datadir. Because every lockstep run
// is a pure function of the seed, the curves are reproducible
// measurements: re-running a sweep at the same revision appends
// identical rows, and differences between revision files are code.
//
//	repobench -driver cluster -sweep n=8:8:32 -k 16 -loss 0.2
//	repobench -driver stream  -sweep window=1:1:6 -generations 8
//	repobench -driver stream  -sweep loss=0:0.1:0.4
//	repobench -driver cluster -sweep churn=0:1:3   # crash/join pairs
//	repobench -driver cluster -sweep shards=1:1:4  # sharded lockstep scaling
//	repobench -driver engine  -sweep k=16:16:96    # synchronous engine
//
// Sweep grammar: -sweep param=min:step:max with param one of
// n | k | loss | window | fanout | churn | shards. The remaining
// parameters are fixed by their flags.
//
// Display mode renders SVG line charts (pure Go, no gnuplot):
//
//	repobench -display sweep -param n -stat runtime -o sweep.svg
//	    # one curve per git revision datafile: per-parameter scaling
//	    # and per-commit regressions from the same chart
//	repobench -display history -stat allocs -o history.svg
//	    # folds the committed BENCH_PR*.json baselines into a
//	    # per-commit trajectory, one curve per guarded benchmark
//
// Stats: runtime (ms; history: ns/op), allocs, bytes, heap
// (generate-mode datafiles only), tokens (tokens/tick, generate-mode
// only).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/svgplot"

	"repro/internal/adversary"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fixed are the non-swept run parameters.
type fixed struct {
	n, k, payload, window, gens, fanout, shards int
	loss                                        float64
	seed                                        int64
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sweep    = fs.String("sweep", "", "generate mode: param=min:step:max with param n|k|loss|window|fanout|churn|shards")
		driver   = fs.String("driver", "cluster", "generate mode: cluster | stream | engine (lockstep/synchronous drivers)")
		display  = fs.String("display", "", "display mode: sweep (benchdata curves per revision) | history (BENCH_PR*.json trajectory)")
		stat     = fs.String("stat", "runtime", "statistic to chart: runtime | allocs | bytes | heap | tokens")
		param    = fs.String("param", "n", "display sweep: which swept parameter to chart")
		outPath  = fs.String("o", "", "display mode: output SVG file (default stdout)")
		datadir  = fs.String("datadir", "benchdata", "datafile directory")
		benchDir = fs.String("benchdir", ".", "directory holding the committed BENCH_PR*.json baselines")
		rev      = fs.String("rev", "", "revision key for the datafile name (default: git rev-parse --short HEAD)")
		guard    = fs.String("guard", "BenchmarkEngineRound,BenchmarkWireRoundTrip,BenchmarkStreamSustained,BenchmarkEmitInsertSteadyState,BenchmarkChurnSteadyState,BenchmarkStreamWindowSweep/W=4,BenchmarkLockstepSharded/shards=1,BenchmarkLockstepSharded/shards=4",
			"display history: comma-separated benchmarks to chart")

		n       = fs.Int("n", 16, "nodes")
		k       = fs.Int("k", 16, "tokens per run / per generation")
		payload = fs.Int("payload", 128, "token payload bits")
		window  = fs.Int("window", 4, "stream window (stream driver)")
		gens    = fs.Int("generations", 8, "stream length (stream driver)")
		fanout  = fs.Int("fanout", 2, "peers per emission")
		shards  = fs.Int("shards", 1, "lockstep worker shards (cluster/stream drivers)")
		loss    = fs.Float64("loss", 0, "packet loss rate in [0,1)")
		seed    = fs.Int64("seed", 1, "base seed (runs are pure functions of it)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fx := fixed{n: *n, k: *k, payload: *payload, window: *window, gens: *gens,
		fanout: *fanout, shards: *shards, loss: *loss, seed: *seed}

	var err error
	switch {
	case *display != "" && *sweep != "":
		err = fmt.Errorf("-sweep and -display are mutually exclusive")
	case *display == "sweep":
		err = withOut(*outPath, stdout, func(w io.Writer) error {
			return displaySweep(w, *datadir, *param, *stat)
		})
	case *display == "history":
		err = withOut(*outPath, stdout, func(w io.Writer) error {
			return displayHistory(w, *benchDir, strings.Split(*guard, ","), *stat)
		})
	case *display != "":
		err = fmt.Errorf("unknown -display mode %q (want sweep or history)", *display)
	case *sweep == "":
		err = fmt.Errorf("nothing to do: pass -sweep (generate) or -display (render)")
	default:
		err = generate(stdout, *datadir, *rev, *driver, *sweep, fx)
	}
	if err != nil {
		fmt.Fprintln(stderr, "repobench:", err)
		return 1
	}
	return 0
}

// withOut routes display output to a file or stdout.
func withOut(path string, stdout io.Writer, fn func(io.Writer) error) error {
	if path == "" {
		return fn(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- generate mode ---

// row is one measured sweep point, as stored in the datafile.
type row struct {
	driver, param string
	value         float64
	runtimeNs     int64
	allocs, bytes uint64
	heapHighWater uint64
	tokensPerTick float64
}

const fileHeader = `# repobench datafile v1 — one row per measured lockstep run
# driver param value runtime_ns allocs bytes heap_highwater tokens_per_tick
`

func (r row) format() string {
	return fmt.Sprintf("%s %s %g %d %d %d %d %g\n",
		r.driver, r.param, r.value, r.runtimeNs, r.allocs, r.bytes, r.heapHighWater, r.tokensPerTick)
}

func parseRow(line string) (row, error) {
	f := strings.Fields(line)
	if len(f) != 8 {
		return row{}, fmt.Errorf("datafile row has %d fields, want 8: %q", len(f), line)
	}
	var r row
	r.driver, r.param = f[0], f[1]
	var err error
	ints := []struct {
		dst *uint64
		s   string
	}{{&r.allocs, f[4]}, {&r.bytes, f[5]}, {&r.heapHighWater, f[6]}}
	if r.value, err = strconv.ParseFloat(f[2], 64); err != nil {
		return row{}, fmt.Errorf("bad value in row %q: %w", line, err)
	}
	if r.runtimeNs, err = strconv.ParseInt(f[3], 10, 64); err != nil {
		return row{}, fmt.Errorf("bad runtime_ns in row %q: %w", line, err)
	}
	for _, iv := range ints {
		if *iv.dst, err = strconv.ParseUint(iv.s, 10, 64); err != nil {
			return row{}, fmt.Errorf("bad counter in row %q: %w", line, err)
		}
	}
	if r.tokensPerTick, err = strconv.ParseFloat(f[7], 64); err != nil {
		return row{}, fmt.Errorf("bad tokens_per_tick in row %q: %w", line, err)
	}
	return r, nil
}

var sweepRe = regexp.MustCompile(`^(n|k|loss|window|fanout|churn|shards)=([^:]+):([^:]+):([^:]+)$`)

// parseSweep parses the param=min:step:max grammar.
func parseSweep(s string) (param string, min, step, max float64, err error) {
	m := sweepRe.FindStringSubmatch(s)
	if m == nil {
		return "", 0, 0, 0, fmt.Errorf("bad -sweep %q: want param=min:step:max with param n|k|loss|window|fanout|churn|shards", s)
	}
	vals := make([]float64, 3)
	for i, f := range m[2:5] {
		if vals[i], err = strconv.ParseFloat(f, 64); err != nil {
			return "", 0, 0, 0, fmt.Errorf("bad -sweep bound %q: %w", f, err)
		}
	}
	min, step, max = vals[0], vals[1], vals[2]
	if step <= 0 {
		return "", 0, 0, 0, fmt.Errorf("-sweep step must be positive, got %g", step)
	}
	if max < min {
		return "", 0, 0, 0, fmt.Errorf("-sweep max %g below min %g", max, min)
	}
	return m[1], min, step, max, nil
}

// gitRev resolves the datafile key: the short git revision of the
// working tree, overridable with -rev (used by tests and by sweeps of
// historical checkouts built elsewhere).
func gitRev(override string) (string, error) {
	if override != "" {
		return override, nil
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "", fmt.Errorf("resolving git revision (pass -rev to override): %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

func generate(stdout io.Writer, datadir, revOverride, driver, sweepSpec string, fx fixed) error {
	param, min, step, max, err := parseSweep(sweepSpec)
	if err != nil {
		return err
	}
	rev, err := gitRev(revOverride)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(datadir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(datadir, rev+".dat")
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if os.IsNotExist(statErr) {
		if _, err := f.WriteString(fileHeader); err != nil {
			return err
		}
	}

	// Walk the grid by index, not by float accumulation: v = min + i*step
	// has one rounding error per point instead of i accumulated ones, so
	// endpoints land exactly (the accumulating loop's half-step tolerance
	// silently dropped max for integer grids like shards=1:1:4, where
	// drift pushed the last point past max+step/2). The epsilon absorbs
	// representation error in (max-min)/step for fractional steps like
	// 0:0.1:0.4; rounding to 9 decimals keeps values like
	// 0.30000000000000004 out of datafiles and labels.
	nsteps := int(math.Floor((max-min)/step + 1e-9))
	for i := 0; i <= nsteps; i++ {
		v := math.Round((min+float64(i)*step)*1e9) / 1e9
		r, err := measure(driver, param, v, fx)
		if err != nil {
			return fmt.Errorf("%s sweep %s=%g: %w", driver, param, v, err)
		}
		if _, err := f.WriteString(r.format()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "repobench: %s %s=%g runtime=%.1fms allocs=%d heap=%dB tokens/tick=%.3f\n",
			driver, param, v, float64(r.runtimeNs)/1e6, r.allocs, r.heapHighWater, r.tokensPerTick)
	}
	fmt.Fprintf(stdout, "repobench: appended to %s\n", path)
	return nil
}

// churnSchedule builds the swept churn workload: `pairs` crash/join
// pairs spread over the run, one shared grammar with the CLIs.
func churnSchedule(pairs int) (*cluster.ChurnSchedule, error) {
	if pairs == 0 {
		return nil, nil
	}
	var parts []string
	for i := 0; i < pairs; i++ {
		parts = append(parts, fmt.Sprintf("crash:%d:1,join:%d:1", 15+20*i, 25+20*i))
	}
	return cluster.ParseChurn(strings.Join(parts, ","))
}

// measure runs one sweep point through the selected driver under
// sim.Measure and converts the outcome to a datafile row.
func measure(driver, param string, v float64, fx fixed) (row, error) {
	iv := int(math.Round(v))
	r := row{driver: driver, param: param, value: v}

	apply := func(dst *int) error { *dst = iv; return nil }
	setInt := map[string]*int{"n": &fx.n, "k": &fx.k, "window": &fx.window, "fanout": &fx.fanout, "shards": &fx.shards}

	churnPairs := 0
	switch param {
	case "loss":
		if v < 0 || v >= 1 {
			return row{}, fmt.Errorf("swept loss %g outside [0,1)", v)
		}
		fx.loss = v
	case "churn":
		churnPairs = iv
	default:
		if err := apply(setInt[param]); err != nil {
			return row{}, err
		}
	}
	churn, err := churnSchedule(churnPairs)
	if err != nil {
		return row{}, err
	}

	var tokens float64
	var ticks int
	m, err := sim.Measure(func() error {
		switch driver {
		case "cluster":
			res, err := cluster.SweepRun(cluster.SweepParams{
				N: fx.n, K: fx.k, PayloadBits: fx.payload, Fanout: fx.fanout,
				Loss: fx.loss, Churn: churn, Seed: fx.seed, Shards: fx.shards,
			})
			if err != nil {
				return err
			}
			if !res.Completed {
				return fmt.Errorf("cluster run incomplete at tick cap")
			}
			done := 0
			for _, nm := range res.Nodes {
				if nm.Done {
					done++
				}
			}
			tokens, ticks = float64(done*fx.k), res.Ticks
		case "stream":
			res, err := stream.SweepRun(stream.SweepParams{
				N: fx.n, K: fx.k, PayloadBits: fx.payload, Window: fx.window,
				Generations: fx.gens, Fanout: fx.fanout, Loss: fx.loss,
				Churn: churn, Seed: fx.seed, Shards: fx.shards,
			})
			if err != nil {
				return err
			}
			if !res.Completed {
				return fmt.Errorf("stream run incomplete at tick cap")
			}
			tokens, ticks = float64(res.TokensDelivered), res.Ticks
		case "engine":
			if fx.loss > 0 || churn != nil {
				return fmt.Errorf("the synchronous engine driver has no loss/churn axes")
			}
			if param == "shards" || fx.shards > 1 {
				return fmt.Errorf("the synchronous engine driver has no shards axis (use -driver cluster or stream)")
			}
			if fx.k > fx.n {
				return fmt.Errorf("engine driver needs k <= n (one source token per node), got k=%d n=%d", fx.k, fx.n)
			}
			adv := adversary.NewRandomConnected(fx.n, fx.n/2, fx.seed)
			rounds, err := exp.RunIndexedUntilDecoded(fx.n, fx.k, fx.payload, adv, fx.seed)
			if err != nil {
				return err
			}
			tokens, ticks = float64(fx.n*fx.k), rounds
		default:
			return fmt.Errorf("unknown -driver %q (want cluster, stream or engine)", driver)
		}
		return nil
	})
	if err != nil {
		return row{}, err
	}
	r.runtimeNs = m.Runtime.Nanoseconds()
	r.allocs, r.bytes, r.heapHighWater = m.Allocs, m.Bytes, m.HeapHighWater
	if ticks > 0 {
		r.tokensPerTick = tokens / float64(ticks)
	}
	return r, nil
}

// --- display mode ---

// statOf extracts the charted statistic from a datafile row.
func statOf(r row, stat string) (float64, error) {
	switch stat {
	case "runtime":
		return float64(r.runtimeNs) / 1e6, nil
	case "allocs":
		return float64(r.allocs), nil
	case "bytes":
		return float64(r.bytes), nil
	case "heap":
		return float64(r.heapHighWater), nil
	case "tokens":
		return r.tokensPerTick, nil
	}
	return 0, fmt.Errorf("unknown -stat %q (want runtime, allocs, bytes, heap or tokens)", stat)
}

func statLabel(stat string) string {
	switch stat {
	case "runtime":
		return "runtime (ms)"
	case "allocs":
		return "allocations"
	case "bytes":
		return "allocated bytes"
	case "heap":
		return "heap high-water (B)"
	case "tokens":
		return "tokens/tick"
	}
	return stat
}

// readDatafile parses one revision's rows; comment and blank lines are
// skipped.
func readDatafile(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []row
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := parseRow(line)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		rows = append(rows, r)
	}
	return rows, sc.Err()
}

// displaySweep charts one swept parameter: X the parameter value, one
// curve per (revision, driver) that measured it.
func displaySweep(w io.Writer, datadir, param, stat string) error {
	if _, err := statOf(row{}, stat); err != nil {
		return err
	}
	paths, err := filepath.Glob(filepath.Join(datadir, "*.dat"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no datafiles under %s (run a -sweep first)", datadir)
	}
	sort.Strings(paths)
	series := map[string]*svgplot.Series{}
	var order []string
	for _, path := range paths {
		rows, err := readDatafile(path)
		if err != nil {
			return err
		}
		rev := strings.TrimSuffix(filepath.Base(path), ".dat")
		for _, r := range rows {
			if r.param != param {
				continue
			}
			key := rev + "/" + r.driver
			s, ok := series[key]
			if !ok {
				s = &svgplot.Series{Name: key}
				series[key] = s
				order = append(order, key)
			}
			y, _ := statOf(r, stat)
			s.X = append(s.X, r.value)
			s.Y = append(s.Y, y)
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("no rows sweeping %q in %s", param, datadir)
	}
	c := svgplot.Chart{
		Title:  fmt.Sprintf("%s vs %s", statLabel(stat), param),
		XLabel: param, YLabel: statLabel(stat),
	}
	for _, key := range order {
		c.Series = append(c.Series, *series[key])
	}
	_, err = io.WriteString(w, c.SVG())
	return err
}

var prNum = regexp.MustCompile(`BENCH_PR(\d+)\.json$`)

// displayHistory folds the committed BENCH_PR*.json baselines into a
// per-commit trajectory chart: X the PR number, one curve per guarded
// benchmark.
func displayHistory(w io.Writer, benchdir string, guard []string, stat string) error {
	var field func(benchfmt.Entry) float64
	switch stat {
	case "runtime":
		field = func(e benchfmt.Entry) float64 { return e.NsPerOp }
	case "allocs":
		field = func(e benchfmt.Entry) float64 { return e.AllocsPerOp }
	case "bytes":
		field = func(e benchfmt.Entry) float64 { return e.BytesPerOp }
	default:
		return fmt.Errorf("history charts support -stat runtime, allocs or bytes, not %q", stat)
	}
	paths, err := benchfmt.Baselines(benchdir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_PR*.json baselines in %s", benchdir)
	}
	c := svgplot.Chart{
		Title:  fmt.Sprintf("committed baseline trajectory: %s per op", stat),
		XLabel: "PR", YLabel: statLabel(stat),
	}
	bySeries := map[string]*svgplot.Series{}
	for _, name := range guard {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		bySeries[name] = &svgplot.Series{Name: strings.TrimPrefix(name, "Benchmark")}
	}
	for _, path := range paths {
		base, err := benchfmt.ReadBaseline(path)
		if err != nil {
			return err
		}
		m := prNum.FindStringSubmatch(path)
		if m == nil {
			continue
		}
		pr, _ := strconv.Atoi(m[1])
		for name, s := range bySeries {
			if e, ok := base.Benchmarks[name]; ok {
				s.X = append(s.X, float64(pr))
				s.Y = append(s.Y, field(e))
			}
		}
	}
	// Series in guard order, dropping benchmarks no baseline recorded.
	for _, name := range guard {
		name = strings.TrimSpace(name)
		if s, ok := bySeries[name]; ok && len(s.X) > 0 {
			c.Series = append(c.Series, *s)
		}
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("none of the guarded benchmarks appear in the baselines under %s", benchdir)
	}
	_, err = io.WriteString(w, c.SVG())
	return err
}

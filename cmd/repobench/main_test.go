package main

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the CLI and returns exit code + captured output.
func execCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func mustXML(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, s)
		}
	}
}

// TestSweepAppendsRevisionKeyedRows drives generate mode end to end:
// a cluster n-sweep writes a datafile named by the revision, appends
// on re-run, and every row carries the measured figures.
func TestSweepAppendsRevisionKeyedRows(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-driver", "cluster", "-sweep", "n=4:2:8", "-k", "4",
		"-payload", "32", "-datadir", dir, "-rev", "abc1234", "-seed", "3"}
	code, out, errOut := execCLI(t, args...)
	if code != 0 {
		t.Fatalf("sweep exited %d: %s%s", code, out, errOut)
	}
	path := filepath.Join(dir, "abc1234.dat")
	rows, err := readDatafile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("sweep n=4:2:8 wrote %d rows, want 3:\n%+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.driver != "cluster" || r.param != "n" {
			t.Errorf("row mislabeled: %+v", r)
		}
		if r.runtimeNs <= 0 || r.allocs == 0 || r.heapHighWater == 0 || r.tokensPerTick <= 0 {
			t.Errorf("row missing measurements: %+v", r)
		}
	}
	if rows[0].value != 4 || rows[1].value != 6 || rows[2].value != 8 {
		t.Errorf("swept values %g %g %g, want 4 6 8", rows[0].value, rows[1].value, rows[2].value)
	}

	// Appending: a second sweep lands in the same revision file.
	if code, _, errOut := execCLI(t, args...); code != 0 {
		t.Fatalf("second sweep exited %d: %s", code, errOut)
	}
	rows, err = readDatafile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("re-run appended to %d rows, want 6", len(rows))
	}
	// The header comment must appear exactly once.
	raw, _ := os.ReadFile(path)
	if n := strings.Count(string(raw), "repobench datafile"); n != 1 {
		t.Errorf("header written %d times, want 1:\n%s", n, raw)
	}
}

// TestLossSweepKeepsEndpoint pins the float-accumulation guard: a
// 0:0.1:0.4 sweep must include 0.4.
func TestLossSweepKeepsEndpoint(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := execCLI(t, "-driver", "cluster", "-sweep", "loss=0:0.2:0.4",
		"-n", "6", "-k", "4", "-payload", "32", "-datadir", dir, "-rev", "r1")
	if code != 0 {
		t.Fatalf("loss sweep exited %d: %s", code, errOut)
	}
	rows, err := readDatafile(filepath.Join(dir, "r1.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2].value < 0.39 {
		t.Errorf("loss sweep rows %+v, want 3 ending at 0.4", rows)
	}
}

func TestStreamAndEngineDrivers(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := execCLI(t, "-driver", "stream", "-sweep", "window=1:1:2",
		"-n", "6", "-k", "4", "-payload", "32", "-generations", "3", "-datadir", dir, "-rev", "r1")
	if code != 0 {
		t.Fatalf("stream sweep exited %d: %s", code, errOut)
	}
	code, _, errOut = execCLI(t, "-driver", "engine", "-sweep", "k=4:4:8",
		"-n", "12", "-payload", "8", "-datadir", dir, "-rev", "r1")
	if code != 0 {
		t.Fatalf("engine sweep exited %d: %s", code, errOut)
	}
	rows, err := readDatafile(filepath.Join(dir, "r1.dat"))
	if err != nil {
		t.Fatal(err)
	}
	var drivers []string
	for _, r := range rows {
		drivers = append(drivers, r.driver)
	}
	if len(rows) != 4 || rows[0].driver != "stream" || rows[3].driver != "engine" {
		t.Errorf("drivers %v, want stream,stream,engine,engine", drivers)
	}
}

// TestDisplaySweepSVG renders a sweep chart from two revision
// datafiles and checks the markup: well-formed XML, one curve per
// revision, the swept axis labeled.
func TestDisplaySweepSVG(t *testing.T) {
	dir := t.TempDir()
	for _, rev := range []string{"aaa1111", "bbb2222"} {
		code, _, errOut := execCLI(t, "-driver", "cluster", "-sweep", "n=4:2:6", "-k", "4",
			"-payload", "32", "-datadir", dir, "-rev", rev)
		if code != 0 {
			t.Fatalf("sweep %s exited %d: %s", rev, code, errOut)
		}
	}
	out := filepath.Join(dir, "sweep.svg")
	code, _, errOut := execCLI(t, "-display", "sweep", "-param", "n", "-stat", "runtime",
		"-datadir", dir, "-o", out)
	if code != 0 {
		t.Fatalf("display exited %d: %s", code, errOut)
	}
	svg, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	mustXML(t, string(svg))
	for _, want := range []string{"aaa1111/cluster", "bbb2222/cluster", "<polyline", "runtime (ms)"} {
		if !strings.Contains(string(svg), want) {
			t.Errorf("sweep SVG missing %q", want)
		}
	}
}

// TestDisplayHistorySVG folds committed BENCH_PR*.json baselines into
// the trajectory chart.
func TestDisplayHistorySVG(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"BENCH_PR4.json": `{"benchmarks":{"BenchmarkEngineRound":{"ns_per_op":900,"allocs_per_op":1295},
			"BenchmarkWireRoundTrip":{"ns_per_op":1000,"allocs_per_op":3}}}`,
		"BENCH_PR5.json": `{"benchmarks":{"BenchmarkEngineRound":{"ns_per_op":880,"allocs_per_op":883},
			"BenchmarkWireRoundTrip":{"ns_per_op":600,"allocs_per_op":1}}}`,
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	code := run([]string{"-display", "history", "-stat", "allocs", "-benchdir", dir}, &out, os.Stderr)
	if code != 0 {
		t.Fatalf("history display exited %d", code)
	}
	svg := out.String()
	mustXML(t, svg)
	for _, want := range []string{"EngineRound", "WireRoundTrip", "trajectory", "allocations"} {
		if !strings.Contains(svg, want) {
			t.Errorf("history SVG missing %q", want)
		}
	}
	// Benchmarks the baselines never recorded are dropped, not drawn as
	// empty series.
	if strings.Contains(svg, "StreamSustained") {
		t.Error("history SVG charts a benchmark absent from every baseline")
	}
}

func TestSweepGrammarErrors(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"unknown param", "zeta=1:1:3"},
		{"missing range", "n=1:2"},
		{"zero step", "n=1:0:5"},
		{"negative step", "n=5:-1:1"},
		{"max below min", "n=5:1:2"},
		{"not numbers", "n=a:b:c"},
	}
	for _, tc := range cases {
		if _, _, _, _, err := parseSweep(tc.spec); err == nil {
			t.Errorf("%s: parseSweep(%q) accepted", tc.name, tc.spec)
		}
	}
	// Errors reach the CLI as exit 1.
	if code, _, errOut := execCLI(t, "-sweep", "zeta=1:1:3", "-datadir", t.TempDir(), "-rev", "x"); code != 1 || !strings.Contains(errOut, "-sweep") {
		t.Errorf("bad sweep spec: exit %d stderr %q", code, errOut)
	}
}

func TestModeValidation(t *testing.T) {
	if code, _, _ := execCLI(t); code != 1 {
		t.Error("no mode selected must fail")
	}
	if code, _, _ := execCLI(t, "-sweep", "n=1:1:2", "-display", "sweep"); code != 1 {
		t.Error("both modes at once must fail")
	}
	if code, _, _ := execCLI(t, "-display", "interpretive-dance"); code != 1 {
		t.Error("unknown display mode must fail")
	}
	if code, _, errOut := execCLI(t, "-driver", "engine", "-sweep", "loss=0:0.1:0.2",
		"-datadir", t.TempDir(), "-rev", "x"); code != 1 || !strings.Contains(errOut, "engine") {
		t.Errorf("engine loss sweep: exit %d, stderr %q; want rejection", code, errOut)
	}
}

// TestShardsSweepKeepsIntegerEndpoints is the regression test for the
// endpoint bug the index-based grid fixed: the accumulating float loop
// dropped max on integer grids (shards=1:1:4 lost 4) while emitting a
// phantom point past max on strided ones (1:2:4 emitted 5). The grid
// must be exactly {min + i*step} clipped to max.
func TestShardsSweepKeepsIntegerEndpoints(t *testing.T) {
	cases := []struct {
		spec string
		want []float64
	}{
		{"shards=1:1:4", []float64{1, 2, 3, 4}},
		{"shards=1:2:4", []float64{1, 3}},
	}
	for _, tc := range cases {
		dir := t.TempDir()
		code, _, errOut := execCLI(t, "-driver", "cluster", "-sweep", tc.spec,
			"-n", "8", "-k", "4", "-payload", "32", "-datadir", dir, "-rev", "r1")
		if code != 0 {
			t.Fatalf("%s exited %d: %s", tc.spec, code, errOut)
		}
		rows, err := readDatafile(filepath.Join(dir, "r1.dat"))
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		for _, r := range rows {
			got = append(got, r.value)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s swept %v, want %v", tc.spec, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s swept %v, want %v", tc.spec, got, tc.want)
			}
		}
	}
}

// TestShardsSweepMatchesSerial pins transcript invariance through the
// observatory: every point of a shards sweep is the same run, so
// tokens/tick must be identical across the whole curve.
func TestShardsSweepMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := execCLI(t, "-driver", "stream", "-sweep", "shards=1:1:3",
		"-n", "6", "-k", "4", "-payload", "32", "-generations", "3", "-datadir", dir, "-rev", "r1")
	if code != 0 {
		t.Fatalf("shards sweep exited %d: %s", code, errOut)
	}
	rows, err := readDatafile(filepath.Join(dir, "r1.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("shards sweep rows %+v, want 3", rows)
	}
	for _, r := range rows[1:] {
		if r.tokensPerTick != rows[0].tokensPerTick {
			t.Errorf("tokens/tick varies across shard counts: %+v", rows)
		}
	}
}

// TestEngineShardsRejected mirrors the loss/churn rejection: the
// synchronous engine driver has no shards axis, swept or fixed.
func TestEngineShardsRejected(t *testing.T) {
	if code, _, errOut := execCLI(t, "-driver", "engine", "-sweep", "shards=1:1:2",
		"-datadir", t.TempDir(), "-rev", "x"); code != 1 || !strings.Contains(errOut, "engine") {
		t.Errorf("engine shards sweep: exit %d, stderr %q; want rejection", code, errOut)
	}
	if code, _, errOut := execCLI(t, "-driver", "engine", "-sweep", "k=4:4:8", "-shards", "2",
		"-n", "12", "-payload", "8", "-datadir", t.TempDir(), "-rev", "x"); code != 1 || !strings.Contains(errOut, "engine") {
		t.Errorf("engine fixed -shards 2: exit %d, stderr %q; want rejection", code, errOut)
	}
}

func TestChurnSweep(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := execCLI(t, "-driver", "cluster", "-sweep", "churn=0:1:2",
		"-n", "8", "-k", "4", "-payload", "32", "-datadir", dir, "-rev", "r1")
	if code != 0 {
		t.Fatalf("churn sweep exited %d: %s", code, errOut)
	}
	rows, err := readDatafile(filepath.Join(dir, "r1.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("churn sweep rows %+v, want 3", rows)
	}
}

// Command spread visualizes how information spreads through a dynamic
// network round by round: it runs a coded indexed broadcast with a trace
// recorder attached and prints the knowledge and innovation curves as
// terminal sparklines — the Section 5.2 "wasted broadcasts" shape made
// visible.
//
// Usage:
//
//	spread -n 64 -adv rotating-path
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 32, "number of nodes (k = n tokens)")
		d       = flag.Int("d", 8, "token payload bits")
		advName = flag.String("adv", "random", "adversary: random | rotating-path | static-<topology>")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*n, *d, *advName, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "spread:", err)
		os.Exit(1)
	}
}

func run(n, d int, advName string, seed int64) error {
	adv, err := adversary.Named(advName, n, seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]dynnet.Node, n)
	schedule := rlnc.DefaultSchedule(n, n)
	for i := 0; i < n; i++ {
		nrng := rand.New(rand.NewSource(seed + int64(i)*101 + 7))
		nodes[i] = rlnc.NewBroadcastNode(n, d, schedule,
			[]rlnc.Coded{rlnc.Encode(i, n, gf.RandomBitVec(d, rng.Uint64))}, nrng)
	}
	rec := trace.NewRecorder(n)
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{BitBudget: n + d, Observer: rec})
	if _, err := e.Run(); err != nil {
		return err
	}
	fmt.Printf("coded indexed broadcast, n = k = %d, d = %d, adversary = %s, seed = %d\n\n", n, d, advName, seed)
	fmt.Print(rec.Report())
	// The early-decoding onset makes the Section 5.2 shape concrete:
	// ranks grow from round one, but tokens beyond a node's own initial
	// one (mean >= 2) surface only once spans close in on full rank.
	for _, s := range rec.Samples() {
		if s.MeanDecodable >= 2 {
			fmt.Printf("first round decoding a non-initial token (mean >= 2): %d\n", s.Round)
			break
		}
	}
	return nil
}

// Command stream disseminates an unbounded token stream — generations
// of k tokens, a sliding window of them in flight at once — across an
// n-node gossip cluster and reports sustained-throughput and memory
// tables. It is the interactive surface of internal/stream, the
// pipelined counterpart of the one-shot cmd/cluster; see DESIGN.md
// ("Streaming layer", "Dynamic membership & churn") for the
// architecture, generation/window lifecycle and ack wire format.
//
// Quick start:
//
//	go run ./cmd/stream -n 32 -k 16 -generations 16 -loss 0.2   # pipelined lossy streaming
//	go run ./cmd/stream -window 1                               # sequential baseline (no pipelining)
//	go run ./cmd/stream -transport lockstep -seed 7             # deterministic, tick-counted
//	go run ./cmd/stream -n 16 -delay 2ms -reorder 0.3           # hostile-network middlewares
//	go run ./cmd/stream -transport lockstep -loss 0.2 -churn "crash:30:1,join:60:1"
//	                                                            # churn: mid-stream joiner catch-up
//	go run ./cmd/stream -transport lockstep -adversary adaptive -churn "crashfrontier:40:1,restart:80:1"
//	                                                            # adversarial topology + frontier-targeted crashes
//	go run ./cmd/stream -mutate "stale:0.1,xgen:0.05"           # stale-epoch replay + cross-generation reordering
//
// Transports: "chan" (default) runs the concurrent runtime on buffered
// channels with wall-clock metrics; "lockstep" runs the deterministic
// single-threaded driver, whose runs are a pure function of -seed and
// report ticks instead of milliseconds.
//
// Churn: -churn takes a comma-separated kind:tick:count schedule
// (join, leave, crash, restart, rejoin). A mid-stream joiner learns
// the retirement frontier from watermark gossip and delivers from
// there; the table reports its time-to-catch-up.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/cliutil"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

func main() {
	var (
		n        = flag.Int("n", 32, "number of nodes")
		k        = flag.Int("k", 16, "tokens per generation")
		payload  = flag.Int("payload", 128, "token payload size in bits")
		window   = flag.Int("window", 4, "generations gossiped concurrently (1 = sequential)")
		gens     = flag.Int("generations", 16, "stream length in generations")
		loss     = flag.Float64("loss", 0, "packet loss rate in [0,1)")
		fanout   = flag.Int("fanout", 2, "peers contacted per emission")
		shards   = flag.Int("shards", 1, "lockstep worker shards (bit-identical to serial at any count)")
		tp       = flag.String("transport", "chan", "transport: chan (async) | lockstep (deterministic)")
		seed     = flag.Int64("seed", 1, "random seed (lockstep runs are a pure function of it)")
		interval = flag.Duration("interval", 500*time.Microsecond, "async emission pacing")
		timeout  = flag.Duration("timeout", 30*time.Second, "async wall-clock cap")
		delay    = flag.Duration("delay", 0, "async per-packet latency upper bound (uniform in [delay/10, delay])")
		reorder  = flag.Float64("reorder", 0, "packet reordering rate in [0,1)")
		buffer   = flag.Int("buffer", 0, "per-node inbox buffer (0 = auto)")
		maxTicks = flag.Int("maxticks", 0, "lockstep tick cap (0 = default)")
		churn    = flag.String("churn", "", `membership schedule, e.g. "crash:30:1,join:60:1" (kinds: join|leave|crash|restart|rejoin|crashmax|crashfrontier)`)
		adv      = flag.String("adversary", "", `topology adversary name[:params] (random | rotating-path | static-<topology> | tstable:<T> | tinterval:<T> | adaptive | trace:<file>)`)
		mutate   = flag.String("mutate", "", `hostile-packet mutation spec, e.g. "stale:0.1,xgen:0.05" (ops: dup|stale|trunc|flip|xgen|all)`)
		trace    = flag.String("trace", "", "trace the run and render stream-{telemetry.txt,heatmap.svg,timeline.svg,packetflow.svg} into this directory")
		telem    = flag.String("telemetry", "", "trace the run and write the telemetry v1 text export to this file")
	)
	flag.Parse()
	if err := run(os.Stdout, *n, *k, *payload, *window, *gens, *loss, *fanout, *shards, *tp, *seed,
		*interval, *timeout, *delay, *reorder, *buffer, *maxTicks, *churn, *adv, *mutate, *trace, *telem); err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(1)
	}
}

// validate applies the shared gossip checks plus the stream-only
// window/generations flags.
func validate(n, k, payload, window, gens, fanout, shards, buffer int, loss, reorder float64) error {
	if err := cliutil.ValidateGossip(n, k, payload, fanout, loss, reorder); err != nil {
		return err
	}
	if err := cliutil.ValidateShards(shards, n); err != nil {
		return err
	}
	if err := cliutil.ValidateBuffer(buffer); err != nil {
		return err
	}
	switch {
	case window < 1:
		return fmt.Errorf("-window must be at least 1, got %d", window)
	case gens < 1:
		return fmt.Errorf("-generations must be at least 1, got %d", gens)
	}
	return nil
}

func run(w io.Writer, n, k, payload, window, gens int, loss float64, fanout, shards int, tp string, seed int64,
	interval, timeout, delay time.Duration, reorder float64, buffer, maxTicks int, churnSpec, advSpec, mutateSpec, traceDir, traceFile string) error {
	if err := validate(n, k, payload, window, gens, fanout, shards, buffer, loss, reorder); err != nil {
		return err
	}
	lockstep, err := cliutil.ParseTransport(tp)
	if err != nil {
		return err
	}
	if shards > 1 && !lockstep {
		return fmt.Errorf("-shards needs the deterministic driver (the async runtime is already concurrent); use -transport lockstep")
	}
	sched, err := cliutil.ParseChurnFlag(churnSpec)
	if err != nil {
		return err
	}
	maxN := n + sched.Joins()
	if buffer == 0 {
		buffer = 4 * stream.InboxBuffer(maxN, fanout+1)
	}
	tr, err := cliutil.BuildTransport(maxN, buffer, lockstep, delay, reorder, loss, seed)
	if err != nil {
		return err
	}

	// The recorder must exist before the adversarial wrap: the adaptive
	// adversary reads its rank scoreboard.
	var rec *telemetry.Recorder
	if traceDir != "" || traceFile != "" || cliutil.AdversaryNeedsTelemetry(advSpec) {
		rec = telemetry.New(telemetry.Config{Nodes: maxN})
		rec.SetMeta("driver", "stream")
		rec.SetMeta("n", fmt.Sprint(n))
		rec.SetMeta("k", fmt.Sprint(k))
		rec.SetMeta("window", fmt.Sprint(window))
		rec.SetMeta("generations", fmt.Sprint(gens))
		rec.SetMeta("loss", fmt.Sprint(loss))
		rec.SetMeta("transport", tp)
		rec.SetMeta("seed", fmt.Sprint(seed))
	}
	advInterval := time.Duration(0)
	if !lockstep {
		advInterval = interval
	}
	tr, err = cliutil.WrapAdversarial(tr, advSpec, mutateSpec, maxN, seed, advInterval, rec)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := stream.Run(ctx, stream.Config{
		N: n, K: k, PayloadBits: payload, Window: window, Generations: gens, Fanout: fanout,
		Seed: seed, Transport: tr, Lockstep: lockstep, Shards: shards, MaxTicks: maxTicks,
		Interval: interval, Timeout: timeout, Churn: sched, Telemetry: rec,
	})
	if err != nil {
		return err
	}
	if err := cliutil.ExportTelemetry(rec, traceDir, traceFile, "stream", true); err != nil {
		return err
	}

	// All throughput figures are computed from the tokens actually
	// delivered by the nodes still live, not the configured stream
	// length: a timed-out run must not report a sustained rate it never
	// sustained, and a churned-out node's deliveries must not inflate
	// the per-node mean (with churn, joiners also legitimately deliver
	// less than the full stream).
	liveNodes := res.FinalLive
	if liveNodes == 0 {
		liveNodes = 1
	}
	var liveTokens int64
	for _, m := range res.Nodes {
		if m.Live {
			liveTokens += int64(m.Delivered) * int64(k)
		}
	}
	deliveredPerNode := float64(liveTokens) / float64(liveNodes)
	t := &sim.Table{
		Caption: fmt.Sprintf("stream: n=%d k=%d payload=%d bits, window=%d, %d generations, loss=%.2f transport=%s seed=%d",
			n, k, payload, window, gens, loss, tp, seed),
		Header: []string{"metric", "value"},
	}
	t.AddRow("completed", fmt.Sprintf("%v", res.Completed))
	if lockstep {
		t.AddRow("ticks", sim.I(res.Ticks))
		if res.Ticks > 0 && deliveredPerNode > 0 {
			t.AddRow("sustained tokens/tick", sim.F(deliveredPerNode/float64(res.Ticks)))
		}
		if s := sim.Summarize(res.DoneTicks()); s.N > 0 {
			t.AddRow("ticks-to-stream-end min/mean/max", fmt.Sprintf("%s / %s / %s", sim.F(s.Min), sim.F(s.Mean), sim.F(s.Max)))
		}
	} else {
		t.AddRow("elapsed", res.Elapsed.Round(time.Millisecond).String())
		if secs := res.Elapsed.Seconds(); secs > 0 && deliveredPerNode > 0 {
			t.AddRow("sustained tokens/sec", sim.F(deliveredPerNode/secs))
		}
		if s := sim.Summarize(res.DoneTimes()); s.N > 0 {
			t.AddRow("time-to-stream-end min/mean/max", fmt.Sprintf("%.1fms / %.1fms / %.1fms", 1e3*s.Min, 1e3*s.Mean, 1e3*s.Max))
		}
	}
	t.AddRow("tokens delivered (all nodes)", sim.I(int(res.TokensDelivered)))
	t.AddRow("data packets sent", sim.I(int(res.PacketsOut)))
	t.AddRow("acks sent", sim.I(int(res.AcksOut)))
	t.AddRow("packets dropped", sim.I(int(res.Dropped)))
	t.AddRow("protocol bits sent", sim.I(int(res.BitsOut)))
	if deliveredPerNode > 0 {
		t.AddRow("bits per delivered token", sim.F(float64(res.BitsOut)/deliveredPerNode))
	}
	t.AddRow("peak span memory per node", fmt.Sprintf("%d B", res.MaxSpanBytes))
	if sched != nil {
		t.AddRow("churn schedule", sched.String())
		t.AddRow("nodes live at end", sim.I(res.FinalLive))
		for id, m := range res.Nodes {
			if !m.Spawned || m.StartGen == 0 {
				continue
			}
			if lockstep && m.CaughtUpTick > 0 {
				t.AddRow(fmt.Sprintf("node %d joined@%d, start gen %d", id, m.JoinTick, m.StartGen),
					fmt.Sprintf("caught up in %d ticks", m.CaughtUpTick-m.JoinTick))
			} else if !lockstep && m.CaughtUpAt > 0 {
				t.AddRow(fmt.Sprintf("node %d joined@%v, start gen %d", id, m.JoinAt.Round(time.Millisecond), m.StartGen),
					fmt.Sprintf("caught up in %v", (m.CaughtUpAt-m.JoinAt).Round(time.Millisecond)))
			}
		}
	}
	if res.Completed {
		t.AddNote("all %d live nodes decoded and delivered the stream in order; deliveries verified against the source", res.FinalLive)
	} else {
		t.AddNote("run did NOT complete (timeout/tick cap); counters cover the partial run, throughput covers only delivered tokens")
	}
	fmt.Fprint(w, t.String())
	if !res.Completed {
		return fmt.Errorf("stream incomplete")
	}
	return nil
}

package main

import (
	"strings"
	"testing"
	"time"
)

// runArgs calls run with defaults, overridden per case, so the tests
// exercise exactly the code path main dispatches to.
type runArgs struct {
	n, k, payload, window, gens int
	loss                        float64
	fanout                      int
	tp                          string
	seed                        int64
	reorder                     float64
	buffer, maxTick             int
}

func defaults() runArgs {
	return runArgs{n: 8, k: 4, payload: 32, window: 2, gens: 3, fanout: 2, tp: "lockstep", seed: 1}
}

func (a runArgs) run() error {
	return run(a.n, a.k, a.payload, a.window, a.gens, a.loss, a.fanout, a.tp, a.seed,
		500*time.Microsecond, 30*time.Second, 0, a.reorder, a.buffer, a.maxTick)
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*runArgs)
		want string
	}{
		{"n too small", func(a *runArgs) { a.n = 1 }, "-n"},
		{"n negative", func(a *runArgs) { a.n = -3 }, "-n"},
		{"k zero", func(a *runArgs) { a.k = 0 }, "-k"},
		{"payload zero", func(a *runArgs) { a.payload = 0 }, "-payload"},
		{"window zero", func(a *runArgs) { a.window = 0 }, "-window"},
		{"generations zero", func(a *runArgs) { a.gens = 0 }, "-generations"},
		{"fanout zero", func(a *runArgs) { a.fanout = 0 }, "-fanout"},
		{"loss negative", func(a *runArgs) { a.loss = -0.1 }, "-loss"},
		{"loss one", func(a *runArgs) { a.loss = 1.0 }, "-loss"},
		{"reorder negative", func(a *runArgs) { a.reorder = -0.5 }, "-reorder"},
		{"reorder one", func(a *runArgs) { a.reorder = 1.5 }, "-reorder"},
		{"unknown transport", func(a *runArgs) { a.tp = "carrier-pigeon" }, "transport"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := defaults()
			tc.mut(&a)
			err := a.run()
			if err == nil {
				t.Fatalf("bad flags accepted: %+v", a)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestRunLockstepSmallCompletes(t *testing.T) {
	if err := defaults().run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSequentialWindowCompletes(t *testing.T) {
	a := defaults()
	a.window = 1
	a.loss = 0.2
	if err := a.run(); err != nil {
		t.Fatal(err)
	}
}

// Package repro is a from-scratch Go reproduction of "Faster Information
// Dissemination in Dynamic Networks via Network Coding" (Haeupler &
// Karger, PODC 2011). The implementation lives under internal/: the
// dynamic network model of Kuhn, Lynch and Oshman (internal/dynnet,
// internal/adversary), hand-rolled finite-field linear algebra
// (internal/gf), random linear network coding and indexed broadcast
// (internal/rlnc), the token-forwarding baselines (internal/forwarding),
// the k-token dissemination algorithms of Section 7 (internal/dissem),
// the T-stable machinery of Section 8 (internal/stable), the
// derandomization results of Section 6 (internal/derand), the counting
// application (internal/count), and the experiment harness
// (internal/sim, internal/exp).
//
// Beside the synchronous simulator sits an asynchronous execution
// model: internal/wire (binary packet codec, fuzz-tested to round-trip
// exactly), internal/cluster (goroutine-per-node recoding gossip over
// pluggable transports with loss/delay/reorder/partition middlewares,
// plus a deterministic lockstep mode), and internal/stream (pipelined
// multi-generation streaming: an unbounded token stream chunked into
// generations, a sliding window of them gossiped concurrently, acks
// retiring decoded generations so memory stays bounded). Try them with
//
//	go run ./cmd/cluster -n 64 -k 32 -loss 0.2
//	go run ./cmd/cluster -transport lockstep -seed 7
//	go run ./cmd/stream -n 32 -k 16 -generations 16 -loss 0.2
//	go run ./cmd/stream -window 1 -transport lockstep    # sequential baseline
//	go run ./cmd/stream -transport lockstep -loss 0.2 -churn "crash:30:1,join:60:1"
//	go run ./cmd/cluster -transport lockstep -n 100000 -k 32 -shards 8
//
// The -shards flag runs the deterministic lockstep drivers sharded
// across cores (internal/shard): nodes are partitioned into contiguous
// ranges, per-node phases run in parallel against private outboxes,
// and a serial barrier replays emissions in node-id order — so the
// transcript is bit-identical to -shards 1 at any shard count, and one
// 100k-node run fits CI-class memory. See DESIGN.md "Sharded lockstep
// engine" for the phase diagram and the ordering rules.
//
// and see experiments E11 (DESIGN.md "Async cluster runtime") for
// coded vs store-and-forward gossip under loss and E12 (DESIGN.md
// "Streaming layer") for what window pipelining buys.
//
// Both gossip runtimes handle dynamic membership: a -churn schedule
// (kind:tick:count grammar — join, leave, crash, restart, rejoin)
// scripts nodes crashing, joining and restarting mid-run. Membership
// views spread via wire.TypeHello announcements, emission samples the
// current view, the stream's retirement frontier drops silent nodes
// instead of deadlocking, and a mid-stream joiner catches up from the
// watermark frontier it learns from gossip. Lockstep churn runs stay
// a pure function of the seed; experiment E13 (DESIGN.md "Dynamic
// membership & churn") measures coding's edge under churn × loss.
//
// The emission→wire→insert hot path is allocation-free in steady
// state: gf.BitMatrix keeps its echelon rows in one contiguous slab,
// rlnc offers CombineInto/RandomCombinationInto writing into
// caller-owned vectors, wire offers AppendTo/UnmarshalInto reusing one
// buffer and one scratch packet per round trip, and the runtimes
// recycle wire buffers through per-node rings (cluster.BufRing). The
// allocating Marshal/Unmarshal/Combine remain as thin wrappers; see
// DESIGN.md "Hot-path memory layout" for the slab layout, the buffer
// ownership rules and the before/after allocation table.
//
// The benchmark suite in bench_test.go regenerates every experiment
// with b.ReportAllocs throughout; the newest committed BENCH_PR*.json
// is the allocation baseline that CI's cmd/benchguard gate enforces
// (see scripts/bench.sh; parsing and comparison live in
// internal/benchfmt, which keeps /-qualified sub-benchmark names).
//
// cmd/repobench is the performance observatory on top of all this:
// generate mode sweeps one parameter through the deterministic
// drivers and appends measurements to a datafile keyed by git
// revision, display mode renders pure-Go SVG charts
// (internal/svgplot) — per-parameter scaling curves with one curve
// per revision, or the committed BENCH_PR*.json baselines as a
// per-commit trajectory:
//
//	go run ./cmd/repobench -driver stream -sweep loss=0:0.1:0.4 -n 8 -k 8 -generations 4
//	go run ./cmd/repobench -driver cluster -sweep n=8:8:64 -k 16
//	go run ./cmd/repobench -display sweep -param loss -stat tokens -o loss.svg
//	go run ./cmd/repobench -display history -stat allocs -o history.svg
//
// See DESIGN.md "Performance observatory" for the datafile schema and
// sweep grammar. See DESIGN.md for the experiment index and
// implementation notes, and CHANGES.md for the per-change measurement
// log.
package repro

// Adversarial: how much adversary strength costs, and when field size
// buys it back (Sections 4-6).
//
// Three adversaries face the same coded indexed broadcast:
//
//  1. an oblivious random rewirer (easy),
//  2. the adaptive "isolate the informed" bottleneck, which inspects
//     node state and allows only one informative edge per round, and
//  3. the omniscient staller of Theorem 6.1, which sees every message
//     before wiring the graph. Over GF(2) it blocks almost every round;
//     over F_65537 blocking messages essentially never exist — the
//     quantitative heart of the derandomization section.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/derand"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
)

const (
	n = 16 // nodes, one token each
	d = 8  // payload bits
)

func main() {
	fmt.Println("coded indexed broadcast vs adversaries (n = k = 16)")
	fmt.Println()

	r1 := mustRounds(runUntilDecoded(adversary.NewRandomConnected(n, n/2, 1)))
	fmt.Printf("oblivious random adversary:   decoded after %3d rounds\n", r1)

	iso := adversary.NewIsolateInformed(n, 2, func(i int, nodes []dynnet.Node) bool {
		bn, ok := nodes[i].(*rlnc.BroadcastNode)
		return ok && bn.Span().Rank() > 1
	})
	r2 := mustRounds(runUntilDecoded(iso))
	fmt.Printf("adaptive isolation adversary: decoded after %3d rounds (one useful edge per round)\n", r2)

	fmt.Println()
	fmt.Println("omniscient staller (sees messages before wiring; Theorem 6.1):")
	for _, f := range []gf.Field{gf.GF2{}, gf.MustGF2e(8), gf.MustPrime(65537)} {
		ok, stalls, rounds, err := derand.RunOmniscientBroadcast(f, n, d, 20*n, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s blocked %3d of %3d crossing rounds; decoded in 20n rounds: %v\n",
			f.String(), stalls, rounds, ok)
	}
	fmt.Println()
	fmt.Println("small fields fall to omniscient adversaries; q >> n restores the guarantee,")
	fmt.Println("at a coefficient-header cost of k*lg(q) bits (Corollary 6.2)")
}

func runUntilDecoded(adv dynnet.Adversary) (int, error) {
	rng := rand.New(rand.NewSource(9))
	nodes := make([]dynnet.Node, n)
	impls := make([]*rlnc.BroadcastNode, n)
	const capRounds = 64 * 2 * n
	for i := 0; i < n; i++ {
		payload := gf.RandomBitVec(d, rng.Uint64)
		nrng := rand.New(rand.NewSource(int64(100 + i)))
		impls[i] = rlnc.NewBroadcastNode(n, d, capRounds, []rlnc.Coded{rlnc.Encode(i, n, payload)}, nrng)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{BitBudget: n + d})
	for r := 1; r <= capRounds; r++ {
		if err := e.Step(); err != nil {
			return 0, err
		}
		done := true
		for _, impl := range impls {
			if !impl.Span().CanDecode() {
				done = false
				break
			}
		}
		if done {
			return r, nil
		}
	}
	return 0, fmt.Errorf("not decoded in %d rounds", capRounds)
}

func mustRounds(r int, err error) int {
	if err != nil {
		log.Fatal(err)
	}
	return r
}

// Counting: determine the size of a dynamic network of unknown size.
//
// The paper motivates k-token dissemination as "universal": any function
// of distributed inputs can be computed by disseminating them. The
// canonical instance is counting (Section 4.1): nodes start knowing only
// their own IDs and an initial size estimate of 2; each phase runs an
// ID-dissemination schedule sized to the current estimate and doubles on
// failure. The geometric schedule makes the total cost at most about
// twice the final successful phase.
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/count"
)

func main() {
	const b = 1024 // message budget in bits

	fmt.Println("counting dynamic networks by estimate doubling (Section 4.1)")
	fmt.Println()
	fmt.Printf("%6s %9s %7s %13s %13s %7s\n", "true n", "estimate", "phases", "total rounds", "final phase", "ratio")
	for _, n := range []int{5, 10, 20, 40, 80} {
		res, err := count.Run(n, b, adversary.NewRandomConnected(n, n/2, int64(n)), int64(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %9d %7d %13d %13d %7.2f\n",
			res.N, res.Estimate, res.Phases, res.TotalRounds, res.FinalPhaseRounds,
			float64(res.TotalRounds)/float64(res.FinalPhaseRounds))
	}
	fmt.Println()
	fmt.Println("the total/final ratio stays near 2: failed phases form a geometric sum")
}

// Quickstart: network coding beats token forwarding on a dynamic
// network.
//
// Sixty-four nodes each hold one 8-bit token. An adversary rewires the
// (connected) topology every round. We disseminate all 64 tokens to all
// nodes twice — once with the Theorem 2.1 token-forwarding baseline and
// once with the paper's network-coded greedy-forward — and print the
// round counts (the coding advantage grows with n; the crossover sits
// near n = 48 at these parameters), then demonstrate the Section 5.2
// end-game: a node missing one unknown token out of k is finished by a
// single XOR.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dissem"
	"repro/internal/exp"
	"repro/internal/forwarding"
	"repro/internal/token"
)

func main() {
	const (
		n    = 64  // nodes
		d    = 8   // token payload bits
		b    = 512 // message budget bits
		seed = 42
	)

	// Every node starts with one token: the canonical n-token
	// dissemination instance (k = n).
	dist := token.OnePerNode(n, d, rand.New(rand.NewSource(seed)))

	// The adversary picks a fresh random connected topology every round.
	fwdRounds, err := forwarding.RunPipelinedFlood(dist, n, b, d,
		adversary.NewRandomConnected(n, n/2, seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token forwarding (Thm 2.1 baseline): %4d rounds\n", fwdRounds)

	res, err := dissem.GreedyForward(dist, dissem.Params{B: b, D: d, Seed: seed},
		adversary.NewRandomConnected(n, n/2, seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network coding (greedy-forward):     %4d rounds, %d broadcast iteration(s)\n",
		res.Rounds, res.Iterations)

	// Section 5.2 end-game: node B has 63 of A's 64 tokens; A does not
	// know which one is missing. One XOR of everything finishes B.
	const k = 64
	if exp.EndgameCodedDecodes(k, d, seed) {
		fmt.Printf("end-game (k = %d): one XOR message completed the missing token "+
			"(forwarding needs ~%d rounds in expectation)\n", k, k/2)
	}
}

// Stable: the T-stability machinery of Section 8.
//
// A T-stable network changes its topology only every T rounds. The
// paper's share-pass-share algorithm patches each stable topology into
// Theta(T/log n)-radius districts (a distributed Luby MIS on the powered
// graph) and pipelines large coded vectors through them, so one
// broadcast ships Blocks x Payload bits whose product — the per-window
// information capacity — grows quadratically in T, while token
// forwarding can only exploit stability linearly (Theorem 2.1 is tight
// for knowledge-based forwarding).
//
// This example runs one full coded broadcast per T from a single source
// and prints the delivered bits, the rounds, and the capacity the full
// window geometry would support. The asymptotic T^2-vs-T crossover lies
// in the paper's bT^2 <~ n regime (see DESIGN.md, E5); what is
// visible at laptop scale is the quadratically growing capacity and the
// whp-correct pipeline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/stable"
)

func main() {
	const (
		n         = 48  // nodes
		b         = 160 // message budget bits
		chunkBits = 32  // b minus pipeline chunk headers
	)

	fmt.Printf("T-stable coded broadcast from one source (n = %d, b = %d)\n\n", n, b)
	fmt.Printf("%5s %12s %14s %12s %22s\n", "T", "shipped bits", "rounds", "bits/round", "full window capacity")
	for _, T := range []int{48, 96, 192} {
		blocks, payload := T/8, 3*T/8
		geo := stable.Geometry{
			D:           maxInt(1, T/96),
			ChunkBits:   chunkBits,
			Chunks:      (blocks + payload + chunkBits - 1) / chunkBits,
			Blocks:      blocks,
			Payload:     payload,
			BuildBudget: T / 2,
		}

		rng := rand.New(rand.NewSource(int64(T)))
		initial := make([][]rlnc.Coded, n)
		for j := 0; j < blocks; j++ {
			initial[0] = append(initial[0], rlnc.Encode(j, blocks, gf.RandomBitVec(payload, rng.Uint64)))
		}
		rngs := make([]*rand.Rand, n)
		for i := range rngs {
			rngs[i] = rand.New(rand.NewSource(int64(T*1000 + i)))
		}
		tadv := adversary.NewTStable(adversary.NewRandomConnected(n, n, int64(T)), T)
		s := dynnet.NewSession(n, tadv, dynnet.Config{BitBudget: b})
		if _, err := stable.Broadcast(s, tadv, geo, initial, rngs, 0); err != nil {
			log.Fatal(err)
		}

		full, err := stable.PlanGeometry(n, b, T)
		if err != nil {
			log.Fatal(err)
		}
		rounds := s.Metrics().Rounds
		fmt.Printf("%5d %12d %14d %12.2f %17d bits\n",
			T, blocks*payload, rounds, float64(blocks*payload)/float64(rounds), full.Capacity())
	}
	fmt.Println()
	fmt.Println("capacity grows ~4x per T doubling (the (bT)^2 mechanism of Lemma 8.1);")
	fmt.Println("every broadcast decoded at all nodes despite per-window topology changes")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package adversary provides the topology schedulers that play the
// adversary role of the dynamic network model: oblivious random rewiring,
// fixed topologies, T-stable wrappers, rotating worst-case permutations,
// and the adaptive "isolate the informed" strategy that realizes the
// hard instances behind the paper's lower-bound discussion.
package adversary

import (
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/graph"
)

// Func adapts a plain function to dynnet.Adversary.
type Func func(round int, nodes []dynnet.Node) *graph.Graph

// Graph implements dynnet.Adversary.
func (f Func) Graph(round int, nodes []dynnet.Node) *graph.Graph {
	return f(round, nodes)
}

// Static serves the same fixed graph every round (the fully static
// special case of the model).
type Static struct {
	g *graph.Graph
}

var _ dynnet.Adversary = (*Static)(nil)

// NewStatic returns an adversary that always serves g.
func NewStatic(g *graph.Graph) *Static { return &Static{g: g} }

// Graph returns the fixed topology.
func (s *Static) Graph(int, []dynnet.Node) *graph.Graph { return s.g }

// RandomConnected serves a fresh random connected topology every round:
// a random spanning tree plus Extra random edges. It is oblivious (it
// never inspects node state) but fully dynamic, and is the default
// "churn" adversary of the experiments.
//
// The adversary owns one scratch graph that it rebuilds in place on
// every query, so per-round topology churn is allocation-free in steady
// state. Consumers therefore must not hold the returned graph across
// Graph calls — the dynnet engine and its observers already obey this
// (a round's graph is only used within the round), and TStable queries
// the inner adversary exactly once per stability window.
type RandomConnected struct {
	n       int
	extra   int
	rng     *rand.Rand
	scratch *graph.Graph
}

var _ dynnet.Adversary = (*RandomConnected)(nil)

// NewRandomConnected returns a random-rewiring adversary over n nodes
// adding extra edges beyond the spanning tree, seeded deterministically.
func NewRandomConnected(n, extra int, seed int64) *RandomConnected {
	return &RandomConnected{n: n, extra: extra, rng: rand.New(rand.NewSource(seed)), scratch: graph.New(n)}
}

// Graph returns the round's random connected topology, valid until the
// next Graph call.
func (a *RandomConnected) Graph(int, []dynnet.Node) *graph.Graph {
	graph.RandomConnectedInto(a.scratch, a.n, a.extra, a.rng)
	return a.scratch
}

// TStable wraps an inner adversary and re-queries it only every T rounds,
// producing the T-stable dynamics of Section 8 ("the entire network
// changes only every T steps").
type TStable struct {
	inner dynnet.Adversary
	t     int
	cur   *graph.Graph
	until int
}

var _ dynnet.Adversary = (*TStable)(nil)

// NewTStable wraps inner so its topology is held fixed for windows of t
// rounds. t must be >= 1.
func NewTStable(inner dynnet.Adversary, t int) *TStable {
	if t < 1 {
		panic("adversary: T must be >= 1")
	}
	return &TStable{inner: inner, t: t}
}

// T returns the stability parameter.
func (a *TStable) T() int { return a.t }

// Current returns the topology of the window in force, or nil before the
// first query. Drivers use it to validate patch invariants; protocol
// nodes never see it.
func (a *TStable) Current() *graph.Graph { return a.cur }

// Graph returns the current window's topology, advancing the window when
// the round crosses a multiple of T.
func (a *TStable) Graph(round int, nodes []dynnet.Node) *graph.Graph {
	if a.cur == nil || round >= a.until {
		a.cur = a.inner.Graph(round, nodes)
		a.until = round - round%a.t + a.t
	}
	return a.cur
}

// TInterval realizes the paper's T-interval connectivity (the Kuhn et
// al. stability notion the conclusion hopes to extend Section 8 to): in
// every window of T rounds a random spanning tree persists, while the
// remaining edges are re-randomized every round. This is strictly
// weaker than T-stability — only a spanning subgraph is stable — and
// the patch-based coded algorithms do not (yet) apply to it; the
// forwarding baselines do.
type TInterval struct {
	n     int
	t     int
	extra int
	rng   *rand.Rand
	tree  *graph.Graph
	until int
}

var _ dynnet.Adversary = (*TInterval)(nil)

// NewTInterval returns a T-interval-connected adversary over n nodes
// with extra churning edges per round.
func NewTInterval(n, t, extra int, seed int64) *TInterval {
	if t < 1 {
		panic("adversary: T must be >= 1")
	}
	return &TInterval{n: n, t: t, extra: extra, rng: rand.New(rand.NewSource(seed))}
}

// T returns the interval length.
func (a *TInterval) T() int { return a.t }

// Graph returns the window's stable spanning tree plus fresh random
// edges for the round.
func (a *TInterval) Graph(round int, _ []dynnet.Node) *graph.Graph {
	if a.tree == nil || round >= a.until {
		a.tree = graph.RandomTree(a.n, a.rng)
		a.until = round - round%a.t + a.t
	}
	g := a.tree.Clone()
	for i := 0; i < a.extra; i++ {
		g.AddEdge(a.rng.Intn(a.n), a.rng.Intn(a.n))
	}
	return g
}

// RotatingPath serves a path whose vertex order is re-randomized every
// round. This is the classic hard instance for token forwarding: a node's
// neighbours change completely each round, so it cannot know which token
// its next neighbour is missing.
type RotatingPath struct {
	n   int
	rng *rand.Rand
}

var _ dynnet.Adversary = (*RotatingPath)(nil)

// NewRotatingPath returns a rotating-path adversary over n nodes.
func NewRotatingPath(n int, seed int64) *RotatingPath {
	return &RotatingPath{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Graph returns a path over a fresh random permutation of the vertices.
func (a *RotatingPath) Graph(int, []dynnet.Node) *graph.Graph {
	perm := a.rng.Perm(a.n)
	g := graph.New(a.n)
	for i := 0; i+1 < a.n; i++ {
		g.AddEdge(perm[i], perm[i+1])
	}
	return g
}

// IsolateInformed is the adaptive adversary sketch behind the paper's
// lower-bound intuition: given a predicate identifying "informed" nodes,
// it serves a topology with the minimum legal contact between informed
// and uninformed nodes — a path of uninformed nodes attached by a single
// edge to a path of informed nodes. Information can cross only one edge
// per round, forcing Omega(n) spreading time.
type IsolateInformed struct {
	n        int
	informed func(i int, nodes []dynnet.Node) bool
	rng      *rand.Rand
}

var _ dynnet.Adversary = (*IsolateInformed)(nil)

// NewIsolateInformed returns the bottleneck adversary. The informed
// predicate inspects node i's state each round.
func NewIsolateInformed(n int, seed int64, informed func(i int, nodes []dynnet.Node) bool) *IsolateInformed {
	return &IsolateInformed{n: n, informed: informed, rng: rand.New(rand.NewSource(seed))}
}

// Graph builds the two-path bottleneck topology for the round. The order
// within each side is shuffled every round so no forwarding schedule can
// exploit stability.
func (a *IsolateInformed) Graph(round int, nodes []dynnet.Node) *graph.Graph {
	var in, out []int
	for i := 0; i < a.n; i++ {
		if a.informed(i, nodes) {
			in = append(in, i)
		} else {
			out = append(out, i)
		}
	}
	a.rng.Shuffle(len(in), func(i, j int) { in[i], in[j] = in[j], in[i] })
	a.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	g := graph.New(a.n)
	chain := func(vs []int) {
		for i := 0; i+1 < len(vs); i++ {
			g.AddEdge(vs[i], vs[i+1])
		}
	}
	chain(in)
	chain(out)
	// Exactly one crossing edge keeps the graph connected, as the model
	// requires, while minimizing information flow.
	if len(in) > 0 && len(out) > 0 {
		g.AddEdge(in[len(in)-1], out[0])
	}
	return g
}

// Named constructs a seeded adversary by name for the CLI tools.
// Supported: random, rotating-path, static-<topology> (e.g. static-path).
func Named(name string, n int, seed int64) (dynnet.Adversary, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "random":
		return NewRandomConnected(n, n/2, seed), nil
	case "rotating-path":
		return NewRotatingPath(n, seed), nil
	default:
		const prefix = "static-"
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			g, err := graph.Named(name[len(prefix):], n, rng)
			if err != nil {
				return nil, err
			}
			return NewStatic(g), nil
		}
		return nil, errUnknown(name)
	}
}

func errUnknown(name string) error {
	return &unknownError{name: name}
}

type unknownError struct{ name string }

func (e *unknownError) Error() string {
	return "adversary: unknown adversary " + e.name + " (want random, rotating-path or static-<topology>)"
}

package adversary

import (
	"testing"

	"repro/internal/dynnet"
	"repro/internal/graph"
)

func TestStatic(t *testing.T) {
	g := graph.Path(5)
	a := NewStatic(g)
	if got := a.Graph(0, nil); got != g {
		t.Error("static adversary did not return the fixed graph")
	}
	if got := a.Graph(99, nil); got != g {
		t.Error("static adversary changed graphs")
	}
}

func TestRandomConnectedAlwaysConnected(t *testing.T) {
	a := NewRandomConnected(20, 5, 1)
	// The adversary reuses one scratch graph across queries, so compare
	// edge snapshots rather than retained graphs.
	prev := a.Graph(0, nil).Edges()
	changed := false
	for r := 1; r < 50; r++ {
		g := a.Graph(r, nil)
		if !g.IsConnected() {
			t.Fatalf("round %d: disconnected graph", r)
		}
		if g.N() != 20 {
			t.Fatalf("round %d: n = %d", r, g.N())
		}
		cur := g.Edges()
		if !sameEdges(cur, prev) {
			changed = true
		}
		prev = cur
	}
	if !changed {
		t.Error("random adversary never changed the topology in 50 rounds")
	}
}

func sameEdges(ea, eb [][2]int) bool {
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestTStableHoldsWindows(t *testing.T) {
	const T = 5
	inner := NewRandomConnected(10, 3, 2)
	a := NewTStable(inner, T)
	var window [][2]int
	for r := 0; r < 4*T; r++ {
		g := a.Graph(r, nil)
		if r%T == 0 {
			window = g.Edges()
			continue
		}
		if !sameEdges(g.Edges(), window) {
			t.Fatalf("round %d: topology changed inside a stability window", r)
		}
	}
	if a.T() != T {
		t.Errorf("T() = %d", a.T())
	}
}

func TestTStablePanicsOnBadT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("T=0 did not panic")
		}
	}()
	NewTStable(NewRandomConnected(4, 0, 1), 0)
}

func TestTIntervalKeepsSpanningTree(t *testing.T) {
	const n, T = 12, 4
	a := NewTInterval(n, T, 3, 6)
	var tree *graph.Graph
	for r := 0; r < 3*T; r++ {
		g := a.Graph(r, nil)
		if !g.IsConnected() {
			t.Fatalf("round %d: disconnected", r)
		}
		if r%T == 0 {
			// Reconstruct the window's tree from the first round of the
			// window: it is a subgraph of every round in the window.
			tree = g
			continue
		}
		// The window's spanning tree is a subgraph of every round in the
		// window, so the intersection with the window's first graph must
		// still contain a connected spanning subgraph.
		inter := intersect(tree, g)
		if !inter.IsConnected() {
			t.Fatalf("round %d: no stable connected spanning subgraph", r)
		}
	}
	if a.T() != T {
		t.Errorf("T() = %d", a.T())
	}
}

func intersect(a, b *graph.Graph) *graph.Graph {
	out := graph.New(a.N())
	for _, e := range a.Edges() {
		if b.HasEdge(e[0], e[1]) {
			out.AddEdge(e[0], e[1])
		}
	}
	return out
}

func TestTIntervalPanicsOnBadT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("T=0 did not panic")
		}
	}()
	NewTInterval(4, 0, 0, 1)
}

func TestRotatingPath(t *testing.T) {
	a := NewRotatingPath(12, 3)
	for r := 0; r < 20; r++ {
		g := a.Graph(r, nil)
		if !g.IsConnected() {
			t.Fatalf("round %d: disconnected", r)
		}
		if g.M() != 11 {
			t.Fatalf("round %d: %d edges, want 11", r, g.M())
		}
		// A path has exactly two degree-1 vertices.
		deg1 := 0
		for v := 0; v < 12; v++ {
			if g.Degree(v) == 1 {
				deg1++
			}
		}
		if deg1 != 2 {
			t.Fatalf("round %d: %d endpoints, want 2", r, deg1)
		}
	}
}

func TestIsolateInformedBottleneck(t *testing.T) {
	informed := map[int]bool{0: true, 1: true, 2: true}
	a := NewIsolateInformed(9, 4, func(i int, _ []dynnet.Node) bool { return informed[i] })
	for r := 0; r < 10; r++ {
		g := a.Graph(r, nil)
		if !g.IsConnected() {
			t.Fatalf("round %d: disconnected", r)
		}
		// Exactly one edge may cross the informed/uninformed cut.
		crossings := 0
		for _, e := range g.Edges() {
			if informed[e[0]] != informed[e[1]] {
				crossings++
			}
		}
		if crossings != 1 {
			t.Fatalf("round %d: %d crossing edges, want 1", r, crossings)
		}
	}
}

func TestIsolateInformedAllInformed(t *testing.T) {
	a := NewIsolateInformed(5, 5, func(int, []dynnet.Node) bool { return true })
	g := a.Graph(0, nil)
	if !g.IsConnected() {
		t.Error("disconnected when everyone is informed")
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"random", "rotating-path", "static-path", "static-complete"} {
		a, err := Named(name, 8, 7)
		if err != nil {
			t.Errorf("Named(%q): %v", name, err)
			continue
		}
		g := a.Graph(0, nil)
		if g.N() != 8 || !g.IsConnected() {
			t.Errorf("Named(%q): bad graph", name)
		}
	}
	if _, err := Named("bogus", 8, 7); err == nil {
		t.Error("Named(bogus) should fail")
	}
	if _, err := Named("static-bogus", 8, 7); err == nil {
		t.Error("Named(static-bogus) should fail")
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	var a dynnet.Adversary = Func(func(round int, nodes []dynnet.Node) *graph.Graph {
		called = true
		return graph.Path(2)
	})
	a.Graph(0, nil)
	if !called {
		t.Error("Func adapter did not invoke the function")
	}
}

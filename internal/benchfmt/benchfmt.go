// Package benchfmt parses `go test -bench` output and compares it
// against committed JSON baselines. It is the shared engine behind
// cmd/benchguard (the CI allocation gate) and cmd/repobench (the
// performance observatory): one parser, one baseline format, one
// baseline-resolution rule, so the gate and the trajectory tooling
// cannot drift apart.
//
// Baselines are the committed BENCH_PR<n>.json documents; the newest
// one (highest <n>) is the current baseline, resolved in exactly one
// place (LatestBaseline) so a baseline rotation touches no tooling.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded figures.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Baseline is a committed BENCH_*.json document.
type Baseline struct {
	// Note documents how the numbers were produced.
	Note       string           `json:"note"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output. The
// name part is any non-space run starting with "Benchmark" so that
// `/`-qualified sub-benchmarks (b.Run names like BenchmarkFoo/W=4-8)
// are kept; only the trailing -N GOMAXPROCS suffix is stripped, and
// only by cpuSuffix below — a digit run inside the name survives.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.eE+-]+) ns/op(.*)$`)
var cpuSuffix = regexp.MustCompile(`-\d+$`)
var metricRe = regexp.MustCompile(`([0-9.eE+-]+) (B/op|allocs/op)`)

// Parse reads `go test -bench` output and returns the figures of every
// benchmark that reported allocations (b.ReportAllocs or -benchmem),
// keyed by benchmark name with the -N cpu suffix stripped. A line that
// looks like a benchmark result but carries an unparseable number is
// an error naming the line — a garbled number must fail loudly, not
// silently enter a baseline as 0 and loosen the gate.
func Parse(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{}
		var err error
		if e.NsPerOp, err = strconv.ParseFloat(m[2], 64); err != nil {
			return nil, fmt.Errorf("unparseable ns/op %q in line %q", m[2], line)
		}
		hasAllocs := false
		for _, mm := range metricRe.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("unparseable %s %q in line %q", mm[2], mm[1], line)
			}
			switch mm[2] {
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
				hasAllocs = true
			}
		}
		if hasAllocs {
			out[cpuSuffix.ReplaceAllString(m[1], "")] = e
		}
	}
	return out, sc.Err()
}

// ReadBaseline loads a committed baseline document.
func ReadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline marshals a baseline document to path (trailing
// newline, stable key order via encoding/json map sorting).
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baselineName extracts the PR number from a BENCH_PR<n>.json file
// name, or -1.
var baselineName = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// LatestBaseline resolves the current committed baseline in dir: the
// BENCH_PR<n>.json with the highest n. Every tool that needs "the
// baseline" goes through this, so rotating the baseline means
// committing one new file — no flag defaults or script edits.
func LatestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := baselineName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = e.Name(), n
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR*.json baseline found in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

// Baselines lists every BENCH_PR<n>.json in dir in ascending PR
// order — the per-commit trajectory the observatory folds into its
// history charts.
func Baselines(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type rev struct {
		name string
		n    int
	}
	var revs []rev
	for _, e := range entries {
		m := baselineName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		revs = append(revs, rev{e.Name(), n})
	}
	sort.Slice(revs, func(i, j int) bool { return revs[i].n < revs[j].n })
	out := make([]string, len(revs))
	for i, r := range revs {
		out[i] = filepath.Join(dir, r.name)
	}
	return out, nil
}

// Comparison is one guarded benchmark's verdict.
type Comparison struct {
	Name      string
	Base, Cur Entry
	// Limit is the allocs/op ceiling: Base×(1+maxRegress)+1. The +1
	// allowance absorbs integer jitter around tiny baselines (a 0-alloc
	// benchmark may legitimately warm a lazily initialized runtime
	// structure once under -benchtime 1x).
	Limit float64
	// MissingBaseline / MissingCurrent flag a guard name absent from
	// one side; both are failures.
	MissingBaseline bool
	MissingCurrent  bool
	// OK is false on a regression beyond Limit or a missing side.
	OK bool
}

// Compare checks each guarded benchmark's current allocs/op against
// the baseline. It returns one Comparison per guard name (empty names
// skipped) and whether all passed.
func Compare(base, cur map[string]Entry, guard []string, maxRegress float64) ([]Comparison, bool) {
	var out []Comparison
	ok := true
	for _, name := range guard {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c := Comparison{Name: name}
		var okB, okC bool
		c.Base, okB = base[name]
		c.Cur, okC = cur[name]
		switch {
		case !okB:
			c.MissingBaseline = true
		case !okC:
			c.MissingCurrent = true
		default:
			c.Limit = c.Base.AllocsPerOp*(1+maxRegress) + 1
			c.OK = c.Cur.AllocsPerOp <= c.Limit
		}
		if !c.OK {
			ok = false
		}
		out = append(out, c)
	}
	return out, ok
}

package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// realOutput is verbatim `go test -bench -benchmem` output: headers,
// metric-only lines, a plain benchmark, a /-qualified sub-benchmark
// family (b.Run), and a benchmark without -benchmem figures.
const realOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkEngineRound-8   	       1	    101048 ns/op	   45192 B/op	     883 allocs/op
BenchmarkSweep/W=1-8     	       1	   7193155 ns/op	  968224 B/op	   10944 allocs/op
BenchmarkSweep/W=4-8     	       1	   5335233 ns/op	  735528 B/op	    8618 allocs/op
BenchmarkSweep/loss=0.2-8	       1	   6000000 ns/op	  800000 B/op	    9000 allocs/op
BenchmarkNoMem-8         	       1	       500 ns/op
PASS
ok  	repro	1.234s
`

func TestParseKeepsSubBenchmarks(t *testing.T) {
	got, err := Parse(strings.NewReader(realOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Entry{
		"BenchmarkEngineRound":    {NsPerOp: 101048, BytesPerOp: 45192, AllocsPerOp: 883},
		"BenchmarkSweep/W=1":      {NsPerOp: 7193155, BytesPerOp: 968224, AllocsPerOp: 10944},
		"BenchmarkSweep/W=4":      {NsPerOp: 5335233, BytesPerOp: 735528, AllocsPerOp: 8618},
		"BenchmarkSweep/loss=0.2": {NsPerOp: 6000000, BytesPerOp: 800000, AllocsPerOp: 9000},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %+v, want %+v", name, got[name], w)
		}
	}
	if _, ok := got["BenchmarkNoMem"]; ok {
		t.Error("benchmark without allocs/op entered the parse")
	}
}

func TestParseStripsOnlyCPUSuffix(t *testing.T) {
	// A sub-benchmark name legitimately ending in a -digits run: only
	// the final GOMAXPROCS suffix may be stripped.
	const line = "BenchmarkFoo/n-16-8   	 1	 100 ns/op	 0 B/op	 2 allocs/op\n"
	got, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkFoo/n-16"]; !ok {
		t.Errorf("want key BenchmarkFoo/n-16, got %+v", got)
	}
}

func TestParseSurfacesMalformedNumbers(t *testing.T) {
	cases := []struct{ name, line string }{
		{"bad ns/op", "BenchmarkFoo-8  1  1.2.3 ns/op  0 B/op  1 allocs/op"},
		{"bad allocs", "BenchmarkFoo-8  1  100 ns/op  0 B/op  1..2 allocs/op"},
		{"bad bytes", "BenchmarkFoo-8  1  100 ns/op  3e+e4 B/op  1 allocs/op"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.line))
		if err == nil {
			t.Errorf("%s: malformed line parsed silently: %q", tc.name, tc.line)
			continue
		}
		if !strings.Contains(err.Error(), "BenchmarkFoo") {
			t.Errorf("%s: error %q does not quote the offending line", tc.name, err)
		}
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok repro 0.1s\n--- garbage 1.2.3 ---\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("non-bench lines produced entries: %+v", got)
	}
}

func TestCompareBoundary(t *testing.T) {
	base := map[string]Entry{"BenchmarkA": {AllocsPerOp: 100}, "BenchmarkZero": {AllocsPerOp: 0}}
	cases := []struct {
		name   string
		allocs float64
		bench  string
		wantOK bool
	}{
		// limit = 100*1.2+1 = 121: at the limit passes, above fails.
		{"at limit", 121, "BenchmarkA", true},
		{"just above", 121.5, "BenchmarkA", false},
		{"regressed", 200, "BenchmarkA", false},
		// limit = 0*1.2+1 = 1: the +1 allowance admits one alloc of
		// jitter on a zero baseline, no more.
		{"zero base jitter", 1, "BenchmarkZero", true},
		{"zero base regressed", 2, "BenchmarkZero", false},
	}
	for _, tc := range cases {
		cur := map[string]Entry{tc.bench: {AllocsPerOp: tc.allocs}}
		got, ok := Compare(base, cur, []string{tc.bench}, 0.20)
		if len(got) != 1 || ok != tc.wantOK || got[0].OK != tc.wantOK {
			t.Errorf("%s: Compare -> %+v ok=%v, want ok=%v", tc.name, got, ok, tc.wantOK)
		}
	}
}

func TestCompareMissingSides(t *testing.T) {
	base := map[string]Entry{"BenchmarkA": {AllocsPerOp: 10}}
	cur := map[string]Entry{"BenchmarkB": {AllocsPerOp: 10}}
	got, ok := Compare(base, cur, []string{"BenchmarkA", "BenchmarkB", " ", ""}, 0.20)
	if ok {
		t.Error("missing benchmarks passed the gate")
	}
	if len(got) != 2 {
		t.Fatalf("got %d comparisons, want 2 (blank guard names skipped): %+v", len(got), got)
	}
	if !got[0].MissingCurrent || got[0].OK {
		t.Errorf("BenchmarkA: %+v, want MissingCurrent and not OK", got[0])
	}
	if !got[1].MissingBaseline || got[1].OK {
		t.Errorf("BenchmarkB: %+v, want MissingBaseline and not OK", got[1])
	}
}

// TestSubBenchmarkGuardEndToEnd is the regression test for the
// dropped-sub-benchmark bug: a /-qualified benchmark must survive the
// write-baseline round trip and then fail the gate when its allocs/op
// regress.
func TestSubBenchmarkGuardEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cur, err := Parse(strings.NewReader(realOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_PR6.json")
	if err := WriteBaseline(path, &Baseline{Note: "test", Benchmarks: cur}); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := base.Benchmarks["BenchmarkSweep/W=4"]; !ok {
		t.Fatal("sub-benchmark missing from regenerated baseline")
	}

	// Same output, W=4 allocs/op regressed 8618 -> 20000: the gate
	// must fail on exactly that guard.
	regressed := strings.Replace(realOutput, "8618 allocs/op", "20000 allocs/op", 1)
	cur2, err := Parse(strings.NewReader(regressed))
	if err != nil {
		t.Fatal(err)
	}
	guard := []string{"BenchmarkEngineRound", "BenchmarkSweep/W=4"}
	got, ok := Compare(base.Benchmarks, cur2, guard, 0.20)
	if ok {
		t.Fatal("regressed sub-benchmark passed the gate")
	}
	if !got[0].OK {
		t.Errorf("unregressed benchmark failed: %+v", got[0])
	}
	if got[1].OK || got[1].Name != "BenchmarkSweep/W=4" {
		t.Errorf("regressed sub-benchmark not caught: %+v", got[1])
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR4.json", "BENCH_PR5.json", "BENCH_PR12.json", "BENCH_PRx.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric, not lexicographic: PR12 beats PR5.
	if filepath.Base(got) != "BENCH_PR12.json" {
		t.Errorf("LatestBaseline = %s, want BENCH_PR12.json", got)
	}
	all, err := Baselines(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || filepath.Base(all[0]) != "BENCH_PR4.json" || filepath.Base(all[2]) != "BENCH_PR12.json" {
		t.Errorf("Baselines = %v, want PR4,PR5,PR12 in order", all)
	}
	if _, err := LatestBaseline(t.TempDir()); err == nil {
		t.Error("empty dir resolved a baseline")
	}
}

// Package central implements the centralized network-coding algorithms
// of Corollary 2.6. A centralized algorithm may give every node
// knowledge of past topologies and a source of shared randomness; under
// those powers the coefficient header of a coded message is redundant —
// every receiver can reconstruct the coefficients by replaying the
// shared randomness against the known topology history — so messages
// cost only their d payload bits. This removes the header overhead that
// throttles distributed coding at small b and yields the corollary's
// order-optimal Theta(n) dissemination with b = d.
package central

import (
	"fmt"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
)

// Message is a coded broadcast whose coefficients travel out of band
// (reconstructed from shared randomness and topology history). Only the
// payload is charged against the budget.
type Message struct {
	// Coded is the full vector; its coefficient prefix is carried for
	// simulation fidelity but not charged.
	Coded rlnc.Coded
}

// Bits charges the payload only.
func (m Message) Bits() int { return m.Coded.PayloadBits() }

// Node is the centralized counterpart of rlnc.BroadcastNode: identical
// coding state, header-free messages.
type Node struct {
	span     *rlnc.Span
	rng      *rand.Rand
	schedule int
	elapsed  int
}

var _ dynnet.Node = (*Node)(nil)

// NewNode returns a centralized coding node. The rng models the shared
// randomness source: the driver seeds all nodes from one stream.
func NewNode(k, payloadBits, schedule int, initial []rlnc.Coded, rng *rand.Rand) *Node {
	n := &Node{span: rlnc.NewSpan(k, payloadBits), rng: rng, schedule: schedule}
	for _, c := range initial {
		n.span.Add(c)
	}
	return n
}

// Span exposes the coding state.
func (n *Node) Span() *rlnc.Span { return n.span }

// Send broadcasts a random combination, header-free.
func (n *Node) Send(int) dynnet.Message {
	c, ok := n.span.Combine(n.rng)
	if !ok {
		return nil
	}
	return Message{Coded: c}
}

// Receive inserts every heard combination.
func (n *Node) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		if cm, ok := m.(Message); ok {
			n.span.Add(cm.Coded)
		}
	}
	n.elapsed++
}

// Done reports whether the schedule elapsed.
func (n *Node) Done() bool { return n.elapsed >= n.schedule }

// Run executes Corollary 2.6's randomized centralized k-indexed
// broadcast: one token per node for i < k, message budget exactly d
// bits, schedule Theta(n + k). It returns the rounds executed and
// verifies every node decoded every payload.
func Run(n, k, d int, adv dynnet.Adversary, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	payloads := make([]gf.BitVec, k)
	nodes := make([]dynnet.Node, n)
	impls := make([]*Node, n)
	schedule := rlnc.DefaultSchedule(n, k)
	for i := 0; i < n; i++ {
		var initial []rlnc.Coded
		if i < k {
			payloads[i] = gf.RandomBitVec(d, rng.Uint64)
			initial = []rlnc.Coded{rlnc.Encode(i, k, payloads[i])}
		}
		nrng := rand.New(rand.NewSource(seed + 7919*int64(i+1)))
		impls[i] = NewNode(k, d, schedule, initial, nrng)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{BitBudget: d})
	rounds, err := e.Run()
	if err != nil {
		return rounds, err
	}
	for i, impl := range impls {
		got, err := impl.Span().Decode()
		if err != nil {
			return rounds, fmt.Errorf("central: node %d: %w", i, err)
		}
		for j := range payloads {
			if !got[j].Equal(payloads[j]) {
				return rounds, fmt.Errorf("central: node %d decoded token %d incorrectly", i, j)
			}
		}
	}
	return rounds, nil
}

package central

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
)

// TestCentralizedLinearTimeWithTinyMessages is the Corollary 2.6 claim:
// with b = d (no room for any coefficient header), the centralized
// algorithm still disseminates n tokens in O(n) rounds — a regime where
// Theorem 2.2 rules out linear-time token forwarding entirely.
func TestCentralizedLinearTimeWithTinyMessages(t *testing.T) {
	const d = 8
	for _, n := range []int{8, 16, 32} {
		rounds, err := Run(n, n, d, adversary.NewRandomConnected(n, n/2, int64(n)), int64(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds > 8*(2*n)+16 {
			t.Errorf("n=%d: %d rounds, expected O(n)", n, rounds)
		}
	}
}

// TestDistributedCannotMatchBudget confirms the contrast: the
// distributed coded broadcast needs k + d bits per message and trips the
// d-bit budget immediately.
func TestDistributedCannotMatchBudget(t *testing.T) {
	const n, d = 8, 8
	rng := rand.New(rand.NewSource(1))
	initial := make([][]rlnc.Coded, n)
	for i := range initial {
		initial[i] = []rlnc.Coded{rlnc.Encode(i, n, gf.RandomBitVec(d, rng.Uint64))}
	}
	_, _, err := rlnc.RunIndexedBroadcast(initial, n, d, rlnc.DefaultSchedule(n, n),
		adversary.NewRandomConnected(n, 2, 2), d /* budget too small for headers */, 3)
	if !errors.Is(err, dynnet.ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestCentralizedUnderRotatingPath(t *testing.T) {
	const n, d = 12, 16
	rounds, err := Run(n, n, d, adversary.NewRotatingPath(n, 4), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Error("no rounds recorded")
	}
}

func TestMessageBitsChargePayloadOnly(t *testing.T) {
	c := rlnc.Encode(0, 100, gf.NewBitVec(8))
	m := Message{Coded: c}
	if m.Bits() != 8 {
		t.Errorf("Bits = %d, want 8 (payload only)", m.Bits())
	}
}

func TestNodeSilentWhenEmpty(t *testing.T) {
	n := NewNode(4, 4, 3, nil, rand.New(rand.NewSource(6)))
	if n.Send(0) != nil {
		t.Error("empty node should stay silent")
	}
}

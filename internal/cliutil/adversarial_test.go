package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func TestParseAdversaryFlagAccepts(t *testing.T) {
	rec := telemetry.New(telemetry.Config{Nodes: 8})
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "mob.trace")
	if err := os.WriteFile(traceFile, []byte("5 0 1 down\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		spec string
		rec  *telemetry.Recorder
	}{
		{"", nil},
		{"random", nil},
		{"rotating-path", nil},
		{"static-complete", nil},
		{"tstable:4", nil},
		{"tinterval:3", nil},
		{"adaptive", rec},
		{"trace:" + traceFile, nil},
	}
	for _, tc := range cases {
		adv, err := ParseAdversaryFlag(tc.spec, 8, 1, tc.rec)
		if err != nil {
			t.Errorf("ParseAdversaryFlag(%q): %v", tc.spec, err)
			continue
		}
		if (adv == nil) != (tc.spec == "") {
			t.Errorf("ParseAdversaryFlag(%q) = %v, nil only for the empty spec", tc.spec, adv)
		}
	}
}

// TestParseAdversaryFlagUnknownListsValidNames is the discoverability
// gate: a typo'd -adversary must come back with every name the flag
// accepts, both the adversary-package names and the hostile extensions.
func TestParseAdversaryFlagUnknownListsValidNames(t *testing.T) {
	_, err := ParseAdversaryFlag("omniscient", 8, 1, nil)
	if err == nil {
		t.Fatal("unknown adversary accepted")
	}
	for _, want := range []string{
		"omniscient", "random", "rotating-path", "static-<topology>",
		"tstable:<T>", "tinterval:<T>", "adaptive", "trace:<file>",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-adversary error %q does not mention %q", err, want)
		}
	}
}

func TestParseAdversaryFlagRejects(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"tstable:0", "positive integer"},
		{"tstable:x", "positive integer"},
		{"tinterval:-1", "positive integer"},
		{"adaptive:3", "takes no parameter"},
		{"adaptive", "telemetry"}, // nil recorder
		{"trace:", "trace:<file>"},
		{"trace:/does/not/exist", "no such file"},
		{"random:7", "takes no parameter"},
	}
	for _, tc := range cases {
		if _, err := ParseAdversaryFlag(tc.spec, 8, 1, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseAdversaryFlag(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestAdversaryNeedsTelemetry(t *testing.T) {
	if !AdversaryNeedsTelemetry("adaptive") || !AdversaryNeedsTelemetry(" adaptive ") {
		t.Error("adaptive not flagged as needing telemetry")
	}
	for _, spec := range []string{"", "random", "rotating-path", "trace:x"} {
		if AdversaryNeedsTelemetry(spec) {
			t.Errorf("%q flagged as needing telemetry", spec)
		}
	}
}

func TestParseMutateFlagNamesFlag(t *testing.T) {
	if _, err := ParseMutateFlag("melt:0.5"); err == nil || !strings.Contains(err.Error(), "-mutate") {
		t.Errorf("bad -mutate error %v does not name the flag", err)
	}
	ms, err := ParseMutateFlag("dup:0.25")
	if err != nil || ms.Dup != 0.25 {
		t.Errorf("ParseMutateFlag(dup:0.25) = %+v, %v", ms, err)
	}
}

// TestWrapAdversarialEmptyIsIdentity pins the golden-transcript
// guarantee: with both specs empty the transport comes back untouched —
// no layer, no rng draw, nothing a seed-pinned run could observe.
func TestWrapAdversarialEmptyIsIdentity(t *testing.T) {
	var base cluster.Transport = cluster.NewChanTransport(2, 1)
	defer base.Close()
	tr, err := WrapAdversarial(base, "", "", 2, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr != base {
		t.Error("empty adversarial specs wrapped the transport anyway")
	}
}

func TestWrapAdversarialStacks(t *testing.T) {
	var base cluster.Transport = cluster.NewChanTransport(4, 8)
	defer base.Close()
	tr, err := WrapAdversarial(base, "rotating-path", "dup:0.1", 4, 1, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr == base {
		t.Fatal("adversarial specs did not wrap the transport")
	}
	if _, ok := tr.(cluster.TickObserver); !ok {
		t.Error("outermost adversarial layer does not observe ticks")
	}
	// Bad specs surface with the flag name.
	if _, err := WrapAdversarial(base, "omniscient", "", 4, 1, 0, nil); err == nil || !strings.Contains(err.Error(), "-adversary") {
		t.Errorf("bad -adversary error %v does not name the flag", err)
	}
	if _, err := WrapAdversarial(base, "", "melt:0.5", 4, 1, 0, nil); err == nil || !strings.Contains(err.Error(), "-mutate") {
		t.Errorf("bad -mutate error %v does not name the flag", err)
	}
}

// Package cliutil holds the flag validation and transport assembly
// shared by the gossip CLIs (cmd/cluster and cmd/stream), so the two
// surfaces cannot drift: one validator, one transport parser, one
// middleware stacking order.
package cliutil

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/cluster"
	"repro/internal/dynnet"
	"repro/internal/hostile"
	"repro/internal/telemetry"
)

// ValidateGossip rejects the flag values common to every gossip CLI
// that would panic, hang, or silently misbehave deeper in the stack.
func ValidateGossip(n, k, payload, fanout int, loss, reorder float64) error {
	switch {
	case n < 2:
		return fmt.Errorf("-n must be at least 2 (gossip needs a peer), got %d", n)
	case k < 1:
		return fmt.Errorf("-k must be at least 1, got %d", k)
	case payload < 1:
		return fmt.Errorf("-payload must be at least 1 bit, got %d", payload)
	case fanout < 1:
		return fmt.Errorf("-fanout must be at least 1, got %d", fanout)
	case fanout >= n:
		// Emissions sample peers with replacement; a fanout at or above
		// n silently oversamples the same peers instead of reaching more
		// of them, which every experiment table would misread as extra
		// reach.
		return fmt.Errorf("-fanout must be below -n (only %d other peers exist), got %d", n-1, fanout)
	case loss < 0 || loss >= 1:
		return fmt.Errorf("-loss must be in [0,1), got %g", loss)
	case reorder < 0 || reorder >= 1:
		return fmt.Errorf("-reorder must be in [0,1), got %g", reorder)
	}
	return nil
}

// ValidateShards rejects -shards values the sharded lockstep engine
// cannot partition sensibly: shard counts below 1, and counts above n
// (a shard per node is already maximal parallelism; asking for more is
// a typo, not a request for empty shards).
func ValidateShards(shards, n int) error {
	switch {
	case shards < 1:
		return fmt.Errorf("-shards must be at least 1, got %d", shards)
	case shards > n:
		return fmt.Errorf("-shards must not exceed -n (%d nodes cannot fill %d shards), got %d", n, shards, shards)
	}
	return nil
}

// ValidateBuffer rejects negative explicit inbox buffers (0 means
// auto-size).
func ValidateBuffer(buffer int) error {
	if buffer < 0 {
		return fmt.Errorf("-buffer must be non-negative (0 = auto), got %d", buffer)
	}
	return nil
}

// ParseChurnFlag parses the -churn flag through the shared
// cluster.ParseChurn grammar, naming the flag in errors. An empty
// string means no churn (nil schedule).
func ParseChurnFlag(s string) (*cluster.ChurnSchedule, error) {
	sched, err := cluster.ParseChurn(s)
	if err != nil {
		return nil, fmt.Errorf("-churn: %w", err)
	}
	return sched, nil
}

// ValidateHostPort rejects flag values that are not host:port (the
// only address shape the socket transport binds or dials), naming the
// flag in the error. Empty host or port are allowed by the net parser
// ("[::]:0", ":9000") and therefore allowed here.
func ValidateHostPort(flagName, v string) error {
	if v == "" {
		return fmt.Errorf("%s must be host:port, got an empty string", flagName)
	}
	if _, _, err := net.SplitHostPort(v); err != nil {
		return fmt.Errorf("%s must be host:port: %v", flagName, err)
	}
	return nil
}

// ValidateNodeID rejects ids outside the [0, n) range every transport
// and runtime indexes by.
func ValidateNodeID(id, n int) error {
	switch {
	case id < 0:
		return fmt.Errorf("-id must be non-negative, got %d", id)
	case id >= n:
		return fmt.Errorf("-id must be below -n (%d), got %d", n, id)
	}
	return nil
}

// ParseMode maps the cmd/node -mode flag to the runtime selector.
func ParseMode(name string) (stream bool, err error) {
	switch name {
	case "cluster":
		return false, nil
	case "stream":
		return true, nil
	default:
		return false, fmt.Errorf("-mode must be cluster or stream, got %q", name)
	}
}

// ParseTransport maps the -transport flag to the lockstep switch.
func ParseTransport(name string) (lockstep bool, err error) {
	switch name {
	case "chan":
		return false, nil
	case "lockstep":
		return true, nil
	default:
		return false, fmt.Errorf("unknown transport %q", name)
	}
}

// BuildTransport assembles the CLI middleware stack over a fresh
// ChanTransport in the canonical order — loss over reorder over delay —
// with the per-middleware seed offsets every CLI uses. Delay needs wall
// -clock time, so it is rejected under the lockstep driver.
func BuildTransport(n, buffer int, lockstep bool, delay time.Duration, reorder, loss float64, seed int64) (cluster.Transport, error) {
	if delay < 0 {
		return nil, fmt.Errorf("-delay must be non-negative, got %v", delay)
	}
	if delay > 0 && lockstep {
		return nil, fmt.Errorf("-delay needs wall-clock time; use -transport chan")
	}
	return WrapHostile(cluster.NewChanTransport(n, buffer), delay, reorder, loss, seed)
}

// WrapHostile stacks the fault-injection middlewares over an existing
// transport — in-process channels or real sockets alike — in the
// canonical order (loss over reorder over delay) with the shared
// per-middleware seed offsets. Zero-valued knobs add no layer, so the
// bare transport passes through untouched; note that any wrapping hides
// optional interfaces like cluster.AddressedTransport, so callers that
// need Known must capture it before wrapping.
func WrapHostile(tr cluster.Transport, delay time.Duration, reorder, loss float64, seed int64) (cluster.Transport, error) {
	switch {
	case delay < 0:
		return nil, fmt.Errorf("-delay must be non-negative, got %v", delay)
	case reorder < 0 || reorder >= 1:
		return nil, fmt.Errorf("-reorder must be in [0,1), got %g", reorder)
	case loss < 0 || loss >= 1:
		return nil, fmt.Errorf("-loss must be in [0,1), got %g", loss)
	}
	if delay > 0 {
		tr = cluster.WithDelay(tr, delay/10, delay, seed+101)
	}
	if reorder > 0 {
		tr = cluster.WithReorder(tr, reorder, seed+102)
	}
	if loss > 0 {
		tr = cluster.WithLoss(tr, loss, seed+103)
	}
	return tr, nil
}

// AdversaryNeedsTelemetry reports whether the -adversary spec requires
// a telemetry recorder: the adaptive adversary reads the recorder's
// rank scoreboard, so the CLIs create a recorder for it even when no
// tracing flag asked for one.
func AdversaryNeedsTelemetry(spec string) bool { return strings.TrimSpace(spec) == "adaptive" }

// ParseAdversaryFlag parses the shared -adversary grammar,
// name[:params], into a topology adversary over an id space of n:
//
//	random | rotating-path | static-<topology>   (adversary.Named)
//	tstable:<T>     T-stable random rewiring (adversary.TStable)
//	tinterval:<T>   T-interval connectivity (adversary.TInterval)
//	adaptive        telemetry-rank worst case (hostile.Adaptive)
//	trace:<file>    recorded mobility trace (hostile.TraceAdversary)
//
// An empty spec returns nil (no adversary). rec is only required for
// adaptive (see AdversaryNeedsTelemetry).
func ParseAdversaryFlag(spec string, n int, seed int64, rec *telemetry.Recorder) (dynnet.Adversary, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	name, param, hasParam := strings.Cut(spec, ":")
	parseT := func() (int, error) {
		t, err := strconv.Atoi(param)
		if err != nil || t < 1 {
			return 0, fmt.Errorf("-adversary %s: T must be a positive integer, got %q", name, param)
		}
		return t, nil
	}
	switch name {
	case "tstable":
		t, err := parseT()
		if err != nil {
			return nil, err
		}
		return adversary.NewTStable(adversary.NewRandomConnected(n, n/2, seed), t), nil
	case "tinterval":
		t, err := parseT()
		if err != nil {
			return nil, err
		}
		return adversary.NewTInterval(n, t, n/2, seed), nil
	case "adaptive":
		if hasParam {
			return nil, fmt.Errorf("-adversary adaptive takes no parameter, got %q", param)
		}
		if rec == nil {
			return nil, fmt.Errorf("-adversary adaptive needs a telemetry recorder (see AdversaryNeedsTelemetry)")
		}
		return hostile.NewAdaptive(n, seed, rec), nil
	case "trace":
		if !hasParam || param == "" {
			return nil, fmt.Errorf("-adversary trace needs a file: trace:<file>")
		}
		return hostile.ParseTraceFile(param, n)
	default:
		if hasParam {
			return nil, fmt.Errorf("-adversary %s takes no parameter, got %q", name, param)
		}
		adv, err := adversary.Named(name, n, seed)
		if err != nil {
			return nil, fmt.Errorf("-adversary: %w (or tstable:<T>, tinterval:<T>, adaptive, trace:<file>)", err)
		}
		return adv, nil
	}
}

// ParseMutateFlag parses the shared -mutate grammar (op:rate pairs;
// see hostile.ParseMutations), naming the flag in errors.
func ParseMutateFlag(spec string) (hostile.MutationSpec, error) {
	ms, err := hostile.ParseMutations(spec)
	if err != nil {
		return ms, fmt.Errorf("-mutate: %w", err)
	}
	return ms, nil
}

// WrapAdversarial stacks the fault-injection layers of internal/hostile
// over an already-built transport, outermost in the canonical CLI
// order: adversarial topology over packet mutation over whatever tr
// already stacks (WrapHostile's loss/reorder/delay). The hostile
// layers run on the sender's goroutine and forward lockstep ticks down
// the stack, which is why they must wrap last. n is the run's full id
// space (N plus churn joins); interval > 0 switches the adversary's
// clock to wall time for the async and multi-process runtimes. Empty
// specs add no layer.
func WrapAdversarial(tr cluster.Transport, advSpec, mutateSpec string, n int, seed int64, interval time.Duration, rec *telemetry.Recorder) (cluster.Transport, error) {
	ms, err := ParseMutateFlag(mutateSpec)
	if err != nil {
		return nil, err
	}
	adv, err := ParseAdversaryFlag(advSpec, n, seed+104, rec)
	if err != nil {
		return nil, err
	}
	tr = hostile.WithMutator(tr, ms, seed+105, rec)
	tr = hostile.WithAdversary(tr, adv, hostile.TopoConfig{Interval: interval, Telemetry: rec})
	return tr, nil
}

// ExportTelemetry writes a traced run's artifacts from the shared
// -trace / -telemetry CLI flags: dir gets the standard rendered file
// set (text export, heatmap, timeline, packet flow) under prefix, and
// file gets just the v1 text export. A nil recorder (tracing off) is a
// no-op, so callers can invoke it unconditionally.
func ExportTelemetry(rec *telemetry.Recorder, dir, file, prefix string, watermark bool) error {
	if rec == nil {
		return nil
	}
	if file != "" {
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		if err := rec.WriteText(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if dir != "" {
		if err := rec.WriteFiles(dir, prefix, watermark); err != nil {
			return err
		}
	}
	return nil
}

// Package cliutil holds the flag validation and transport assembly
// shared by the gossip CLIs (cmd/cluster and cmd/stream), so the two
// surfaces cannot drift: one validator, one transport parser, one
// middleware stacking order.
package cliutil

import (
	"fmt"
	"time"

	"repro/internal/cluster"
)

// ValidateGossip rejects the flag values common to every gossip CLI
// that would panic, hang, or silently misbehave deeper in the stack.
func ValidateGossip(n, k, payload, fanout int, loss, reorder float64) error {
	switch {
	case n < 2:
		return fmt.Errorf("-n must be at least 2 (gossip needs a peer), got %d", n)
	case k < 1:
		return fmt.Errorf("-k must be at least 1, got %d", k)
	case payload < 1:
		return fmt.Errorf("-payload must be at least 1 bit, got %d", payload)
	case fanout < 1:
		return fmt.Errorf("-fanout must be at least 1, got %d", fanout)
	case fanout >= n:
		// Emissions sample peers with replacement; a fanout at or above
		// n silently oversamples the same peers instead of reaching more
		// of them, which every experiment table would misread as extra
		// reach.
		return fmt.Errorf("-fanout must be below -n (only %d other peers exist), got %d", n-1, fanout)
	case loss < 0 || loss >= 1:
		return fmt.Errorf("-loss must be in [0,1), got %g", loss)
	case reorder < 0 || reorder >= 1:
		return fmt.Errorf("-reorder must be in [0,1), got %g", reorder)
	}
	return nil
}

// ValidateBuffer rejects negative explicit inbox buffers (0 means
// auto-size).
func ValidateBuffer(buffer int) error {
	if buffer < 0 {
		return fmt.Errorf("-buffer must be non-negative (0 = auto), got %d", buffer)
	}
	return nil
}

// ParseChurnFlag parses the -churn flag through the shared
// cluster.ParseChurn grammar, naming the flag in errors. An empty
// string means no churn (nil schedule).
func ParseChurnFlag(s string) (*cluster.ChurnSchedule, error) {
	sched, err := cluster.ParseChurn(s)
	if err != nil {
		return nil, fmt.Errorf("-churn: %w", err)
	}
	return sched, nil
}

// ParseTransport maps the -transport flag to the lockstep switch.
func ParseTransport(name string) (lockstep bool, err error) {
	switch name {
	case "chan":
		return false, nil
	case "lockstep":
		return true, nil
	default:
		return false, fmt.Errorf("unknown transport %q", name)
	}
}

// BuildTransport assembles the CLI middleware stack over a fresh
// ChanTransport in the canonical order — loss over reorder over delay —
// with the per-middleware seed offsets every CLI uses. Delay needs wall
// -clock time, so it is rejected under the lockstep driver.
func BuildTransport(n, buffer int, lockstep bool, delay time.Duration, reorder, loss float64, seed int64) (cluster.Transport, error) {
	if delay < 0 {
		return nil, fmt.Errorf("-delay must be non-negative, got %v", delay)
	}
	var tr cluster.Transport = cluster.NewChanTransport(n, buffer)
	if delay > 0 {
		if lockstep {
			return nil, fmt.Errorf("-delay needs wall-clock time; use -transport chan")
		}
		tr = cluster.WithDelay(tr, delay/10, delay, seed+101)
	}
	if reorder > 0 {
		tr = cluster.WithReorder(tr, reorder, seed+102)
	}
	if loss > 0 {
		tr = cluster.WithLoss(tr, loss, seed+103)
	}
	return tr, nil
}

package cliutil

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestValidateGossip(t *testing.T) {
	if err := ValidateGossip(2, 1, 1, 1, 0, 0); err != nil {
		t.Fatalf("minimal valid flags rejected: %v", err)
	}
	cases := []struct {
		name                  string
		n, k, payload, fanout int
		loss, reorder         float64
		want                  string
	}{
		{"n", 1, 4, 32, 2, 0, 0, "-n"},
		{"k", 8, 0, 32, 2, 0, 0, "-k"},
		{"payload", 8, 4, 0, 2, 0, 0, "-payload"},
		{"fanout", 8, 4, 32, 0, 0, 0, "-fanout"},
		{"fanout equals n", 8, 4, 32, 8, 0, 0, "-fanout"},
		{"fanout above n", 4, 4, 32, 9, 0, 0, "-fanout"},
		{"loss low", 8, 4, 32, 2, -0.1, 0, "-loss"},
		{"loss high", 8, 4, 32, 2, 1, 0, "-loss"},
		{"reorder low", 8, 4, 32, 2, 0, -1, "-reorder"},
		{"reorder high", 8, 4, 32, 2, 0, 1.2, "-reorder"},
	}
	for _, tc := range cases {
		err := ValidateGossip(tc.n, tc.k, tc.payload, tc.fanout, tc.loss, tc.reorder)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v does not name %q", tc.name, err, tc.want)
		}
	}
}

func TestParseTransport(t *testing.T) {
	if ls, err := ParseTransport("chan"); err != nil || ls {
		t.Errorf("chan -> %v, %v", ls, err)
	}
	if ls, err := ParseTransport("lockstep"); err != nil || !ls {
		t.Errorf("lockstep -> %v, %v", ls, err)
	}
	if _, err := ParseTransport("smoke-signals"); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestValidateGossipFanoutBoundary(t *testing.T) {
	// fanout = n-1 is the largest sensible value and must pass.
	if err := ValidateGossip(8, 4, 32, 7, 0, 0); err != nil {
		t.Errorf("fanout n-1 rejected: %v", err)
	}
}

func TestValidateBuffer(t *testing.T) {
	if err := ValidateBuffer(0); err != nil {
		t.Errorf("auto buffer rejected: %v", err)
	}
	if err := ValidateBuffer(64); err != nil {
		t.Errorf("explicit buffer rejected: %v", err)
	}
	if err := ValidateBuffer(-1); err == nil || !strings.Contains(err.Error(), "-buffer") {
		t.Errorf("negative buffer: err %v does not name -buffer", err)
	}
}

func TestValidateShards(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		if err := ValidateShards(shards, 8); err != nil {
			t.Errorf("shards=%d n=8 rejected: %v", shards, err)
		}
	}
	for _, shards := range []int{0, -1, 9, 100} {
		if err := ValidateShards(shards, 8); err == nil || !strings.Contains(err.Error(), "-shards") {
			t.Errorf("shards=%d n=8: err %v does not name -shards", shards, err)
		}
	}
}

func TestParseChurnFlag(t *testing.T) {
	sched, err := ParseChurnFlag("join:10:1,crash:20:1")
	if err != nil || sched == nil || len(sched.Events) != 2 {
		t.Fatalf("valid churn flag -> %+v, %v", sched, err)
	}
	if sched, err := ParseChurnFlag(""); sched != nil || err != nil {
		t.Errorf("empty churn flag -> %v, %v; want nil, nil", sched, err)
	}
	if _, err := ParseChurnFlag("meteor:10:1"); err == nil || !strings.Contains(err.Error(), "-churn") {
		t.Errorf("bad churn flag: err %v does not name -churn", err)
	}
}

func TestValidateHostPort(t *testing.T) {
	for _, v := range []string{"127.0.0.1:9000", "localhost:0", ":9000", "[::1]:80"} {
		if err := ValidateHostPort("-addr", v); err != nil {
			t.Errorf("%q rejected: %v", v, err)
		}
	}
	for _, v := range []string{"", "127.0.0.1", "nonsense", "host:port:extra", "[::1]"} {
		err := ValidateHostPort("-bootstrap", v)
		if err == nil || !strings.Contains(err.Error(), "-bootstrap") {
			t.Errorf("%q: err %v does not name -bootstrap", v, err)
		}
	}
}

func TestValidateNodeID(t *testing.T) {
	if err := ValidateNodeID(0, 4); err != nil {
		t.Errorf("id 0 rejected: %v", err)
	}
	if err := ValidateNodeID(3, 4); err != nil {
		t.Errorf("id n-1 rejected: %v", err)
	}
	for _, id := range []int{-1, 4, 100} {
		err := ValidateNodeID(id, 4)
		if err == nil || !strings.Contains(err.Error(), "-id") {
			t.Errorf("id %d: err %v does not name -id", id, err)
		}
	}
}

func TestParseMode(t *testing.T) {
	if stream, err := ParseMode("cluster"); err != nil || stream {
		t.Errorf("cluster -> %v, %v", stream, err)
	}
	if stream, err := ParseMode("stream"); err != nil || !stream {
		t.Errorf("stream -> %v, %v", stream, err)
	}
	for _, v := range []string{"", "Cluster", "both"} {
		if _, err := ParseMode(v); err == nil || !strings.Contains(err.Error(), "-mode") {
			t.Errorf("%q: err %v does not name -mode", v, err)
		}
	}
}

func TestWrapHostileValidation(t *testing.T) {
	cases := []struct {
		name    string
		delay   time.Duration
		reorder float64
		loss    float64
		want    string
	}{
		{"negative delay", -time.Millisecond, 0, 0, "-delay"},
		{"reorder high", 0, 1, 0, "-reorder"},
		{"loss high", 0, 0, 1.5, "-loss"},
	}
	for _, tc := range cases {
		if _, err := WrapHostile(nil, tc.delay, tc.reorder, tc.loss, 1); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v does not name %q", tc.name, err, tc.want)
		}
	}
	// Zero knobs must pass the transport through untouched.
	var base cluster.Transport = cluster.NewChanTransport(2, 1)
	defer base.Close()
	tr, err := WrapHostile(base, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr != base {
		t.Error("zero-knob WrapHostile wrapped the transport anyway")
	}
}

func TestBuildTransportRejectsLockstepDelay(t *testing.T) {
	if _, err := BuildTransport(4, 8, true, time.Millisecond, 0, 0, 1); err == nil {
		t.Error("delay under lockstep accepted")
	}
	tr, err := BuildTransport(4, 8, true, 0, 0.2, 0.3, 1)
	if err != nil || tr == nil {
		t.Fatalf("valid lockstep stack rejected: %v", err)
	}
	tr.Close()
}

func TestBuildTransportRejectsNegativeDelay(t *testing.T) {
	// Rejected under both drivers: a negative -delay was silently
	// treated as "no delay" before, unlike every other flag.
	for _, lockstep := range []bool{false, true} {
		_, err := BuildTransport(4, 8, lockstep, -time.Millisecond, 0, 0, 1)
		if err == nil || !strings.Contains(err.Error(), "-delay") {
			t.Errorf("lockstep=%v: negative delay -> err %v, want one naming -delay", lockstep, err)
		}
	}
}

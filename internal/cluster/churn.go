package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// ChurnKind is one membership event type in a ChurnSchedule.
type ChurnKind int

const (
	// ChurnJoin adds a brand-new node (fresh id, empty state) to the
	// cluster. Joiners bootstrap from a contact list of the nodes live
	// at join time and announce themselves with a wire.TypeHello.
	ChurnJoin ChurnKind = iota
	// ChurnLeave removes a live node gracefully: it broadcasts a leave
	// announcement to its view before going silent.
	ChurnLeave
	// ChurnCrash removes a live node abruptly: no announcement, peers
	// only ever find out by its silence.
	ChurnCrash
	// ChurnRestart revives a crashed node with its span/token state
	// persisted (a crash-restart that kept its disk).
	ChurnRestart
	// ChurnRejoin revives a crashed node with wiped state (a restart
	// that lost its disk): same id, but it bootstraps like a joiner.
	ChurnRejoin
	// ChurnCrashMax is the targeted-crash adversary: it kills the live
	// node with the highest rank (most decoding progress) instead of a
	// uniform victim, maximizing the knowledge the cluster loses. With
	// no rank oracle installed (Churner.SetRank) it degrades to a
	// uniform crash. Resolved operations surface as ChurnCrash, so the
	// drivers need no targeted-specific handling.
	ChurnCrashMax
	// ChurnCrashFrontier kills the live node with the LOWEST rank — for
	// the stream runtime, whose rank oracle is the delivery watermark,
	// that is exactly the straggler the retirement frontier is waiting
	// on, so each crash re-tests frontier recovery via suspicion.
	ChurnCrashFrontier
)

// String returns the kind's schedule-grammar name.
func (k ChurnKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnLeave:
		return "leave"
	case ChurnCrash:
		return "crash"
	case ChurnRestart:
		return "restart"
	case ChurnRejoin:
		return "rejoin"
	case ChurnCrashMax:
		return "crashmax"
	case ChurnCrashFrontier:
		return "crashfrontier"
	}
	return fmt.Sprintf("ChurnKind(%d)", int(k))
}

// ChurnEvent schedules Count membership events of one kind at one
// instant. At is a lockstep tick; the async drivers convert it to a
// wall-clock offset of At × Config.Interval after the run starts, so
// one schedule reads the same against both drivers.
type ChurnEvent struct {
	Kind  ChurnKind
	At    int
	Count int
}

// ChurnSchedule is a deterministic membership script for a run: which
// kinds of events fire when, with victims drawn from the run's seeded
// randomness (so lockstep churn runs stay a pure function of the
// seed). The zero schedule (or a nil *ChurnSchedule in Config) means
// fixed, always-alive membership.
type ChurnSchedule struct {
	// Events, sorted by At (Parse sorts; hand-built schedules must be
	// pre-sorted, validated by Validate).
	Events []ChurnEvent
}

// ParseChurn parses the CLI churn grammar: a comma-separated list of
// kind:tick:count triples, e.g. "join:500:2,crash:1000:1". Kinds are
// join, leave, crash, restart (crashed node revives with persisted
// state) and rejoin (revives with wiped state). Events are sorted by
// tick; same-tick events apply in the listed order.
func ParseChurn(s string) (*ChurnSchedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	sched := &ChurnSchedule{}
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("churn event %q: want kind:tick:count", part)
		}
		var kind ChurnKind
		switch fields[0] {
		case "join":
			kind = ChurnJoin
		case "leave":
			kind = ChurnLeave
		case "crash":
			kind = ChurnCrash
		case "restart":
			kind = ChurnRestart
		case "rejoin":
			kind = ChurnRejoin
		case "crashmax":
			kind = ChurnCrashMax
		case "crashfrontier":
			kind = ChurnCrashFrontier
		default:
			return nil, fmt.Errorf("churn event %q: unknown kind %q (want join|leave|crash|restart|rejoin|crashmax|crashfrontier)", part, fields[0])
		}
		at, err := strconv.Atoi(fields[1])
		if err != nil || at < 1 {
			return nil, fmt.Errorf("churn event %q: tick must be a positive integer", part)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil || count < 1 {
			return nil, fmt.Errorf("churn event %q: count must be a positive integer", part)
		}
		sched.Events = append(sched.Events, ChurnEvent{Kind: kind, At: at, Count: count})
	}
	sort.SliceStable(sched.Events, func(i, j int) bool { return sched.Events[i].At < sched.Events[j].At })
	return sched, nil
}

// String renders the schedule back in the ParseChurn grammar.
func (s *ChurnSchedule) String() string {
	if s == nil || len(s.Events) == 0 {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = fmt.Sprintf("%s:%d:%d", e.Kind, e.At, e.Count)
	}
	return strings.Join(parts, ",")
}

// Joins is the number of fresh node ids the schedule can create — the
// amount by which a run's node id space (and transport sizing) must
// exceed Config.N.
func (s *ChurnSchedule) Joins() int {
	if s == nil {
		return 0
	}
	total := 0
	for _, e := range s.Events {
		if e.Kind == ChurnJoin {
			total += e.Count
		}
	}
	return total
}

// HasTargeted reports whether the schedule contains any rank-targeted
// event (crashmax, crashfrontier) — the drivers use it to decide
// whether to maintain the rank oracle the Churner needs.
func (s *ChurnSchedule) HasTargeted() bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == ChurnCrashMax || e.Kind == ChurnCrashFrontier {
			return true
		}
	}
	return false
}

// Validate rejects schedules the drivers cannot run.
func (s *ChurnSchedule) Validate() error {
	if s == nil {
		return nil
	}
	lastAt := 0
	for i, e := range s.Events {
		switch e.Kind {
		case ChurnJoin, ChurnLeave, ChurnCrash, ChurnRestart, ChurnRejoin,
			ChurnCrashMax, ChurnCrashFrontier:
		default:
			return fmt.Errorf("churn event %d: unknown kind %d", i, int(e.Kind))
		}
		if e.At < 1 {
			return fmt.Errorf("churn event %d: tick %d must be positive", i, e.At)
		}
		if e.At < lastAt {
			return fmt.Errorf("churn event %d: events not sorted by tick (%d after %d)", i, e.At, lastAt)
		}
		if e.Count < 1 {
			return fmt.Errorf("churn event %d: count %d must be positive", i, e.Count)
		}
		lastAt = e.At
	}
	return nil
}

// View is one node's membership view: the set of peers it believes
// live, with a last-heard stamp per peer for optional silence-based
// suspicion. Each View is owned by exactly one node (the goroutine or
// lockstep slot driving it), like the node's BufRing.
//
// Stamps are in driver units — ticks under the lockstep drivers,
// nanoseconds since run start under the async ones — and suspicion
// compares them against SuspectAfter in the same units. SuspectAfter
// zero disables suspicion entirely (the cluster runtime's default: a
// crashed peer then simply keeps absorbing wasted sends as transport
// drops; the stream runtime enables suspicion because its retirement
// frontier would otherwise deadlock on a dead node's stale watermark).
// A View starts in a compact dense representation — the common case
// is "everyone 0..n-1 is live", which a full-membership run never
// leaves — storing only the count and one shared last-heard stamp, so
// a churnless n=100k cluster holds O(1) view state per node instead
// of O(n). The first operation the dense form cannot represent
// exactly (a mid-range removal, an out-of-order join, a per-peer
// stamp deviation that suspicion would read) materializes the full
// per-id live/heard arrays and continues with identical semantics.
//
// The shared dense stamp is exact while every mark uses one homogeneous
// timestamp (how runs initialize views). When suspicion is off
// (SuspectAfter == 0) stamps are never read, so the dense form also
// tolerates heterogeneous marks; consequently SuspectAfter must be set
// before marks deviate — the stream runtime sets it immediately after
// construction — or materialized stamps inherit the running maximum.
type View struct {
	self  int
	maxN  int
	n     int
	stamp int64
	// live/heard are nil in dense mode; materialize() allocates them.
	live  []bool
	heard []int64
	// SuspectAfter is the silence threshold beyond which a live peer
	// stops being eligible for sampling and frontier membership. Zero
	// means never suspect.
	SuspectAfter int64
}

// NewView returns an empty view for a node in an id space of maxN.
func NewView(self, maxN int) *View {
	return &View{self: self, maxN: maxN}
}

// materialize switches from the dense {0..n-1} form to explicit
// per-id arrays, stamping every live peer with the shared stamp.
func (v *View) materialize() {
	v.live = make([]bool, v.maxN)
	v.heard = make([]int64, v.maxN)
	for id := 0; id < v.n; id++ {
		v.live[id] = true
		v.heard[id] = v.stamp
	}
}

// Fill marks ids 0..n-1 live with the given stamp — the initial
// membership of a run, or a joiner's contact list prefix.
func (v *View) Fill(n int, now int64) {
	for id := 0; id < n && id < v.maxN; id++ {
		v.Mark(id, now)
	}
}

// Mark adds id to the view (if absent) and refreshes its last-heard
// stamp. Marking the view's own node is allowed and keeps it live.
func (v *View) Mark(id int, now int64) {
	if id < 0 || id >= v.maxN {
		return
	}
	if v.live == nil {
		if v.denseMark(id, now) {
			return
		}
		v.materialize()
	}
	if !v.live[id] {
		v.live[id] = true
		v.n++
	}
	if now > v.heard[id] {
		v.heard[id] = now
	}
}

// denseMark applies Mark in the dense form when the result is still
// representable there, reporting whether it did. Refusals (id beyond
// the dense prefix, or a stamp deviation that suspicion would read)
// make the caller materialize and retry on the explicit arrays.
func (v *View) denseMark(id int, now int64) bool {
	switch {
	case id < v.n: // already live: refresh the shared stamp
		if now <= v.stamp {
			return true
		}
		if v.SuspectAfter == 0 {
			v.stamp = now
			return true
		}
		return false // per-peer stamps now diverge and are read
	case id == v.n: // extends the dense prefix by exactly one
		if v.SuspectAfter == 0 || v.n == 0 || now == v.stamp {
			v.n++
			if now > v.stamp {
				v.stamp = now
			}
			return true
		}
		return false
	default:
		return false
	}
}

// Introduce adds id to the view with a fresh stamp only if it is
// absent; a known peer's last-heard stamp is left untouched. This is
// the merge rule for third-party peer lists (hello bodies): a hello is
// first-hand evidence of its *sender* being alive, not of everyone the
// sender still believes in — refreshing known peers' stamps from
// relayed lists would let one chatty node keep a crashed peer
// unsuspected forever, deadlocking the stream's retirement frontier.
func (v *View) Introduce(id int, now int64) {
	if id < 0 || id >= v.maxN {
		return
	}
	if v.live == nil {
		if id < v.n {
			return // known peer: stamp untouched
		}
		if v.denseMark(id, now) {
			return
		}
		v.materialize()
	}
	if !v.live[id] {
		v.live[id] = true
		v.n++
		if now > v.heard[id] {
			v.heard[id] = now
		}
	}
}

// Remove drops id from the view (a leave announcement, or local
// bookkeeping by a driver).
func (v *View) Remove(id int) {
	if id < 0 || id >= v.maxN {
		return
	}
	if v.live == nil {
		if id >= v.n {
			return
		}
		if id == v.n-1 { // shrinking the dense prefix stays dense
			v.n--
			return
		}
		v.materialize()
	}
	if v.live[id] {
		v.live[id] = false
		v.n--
	}
}

// Live reports whether id is in the view.
func (v *View) Live(id int) bool {
	if id < 0 || id >= v.maxN {
		return false
	}
	if v.live == nil {
		return id < v.n
	}
	return v.live[id]
}

// LiveCount is the number of nodes in the view, including self.
func (v *View) LiveCount() int { return v.n }

// Eligible reports whether id is in the view and not suspected at the
// given instant. The view's own node is always eligible.
func (v *View) Eligible(id int, now int64) bool {
	if !v.Live(id) {
		return false
	}
	if id == v.self || v.SuspectAfter == 0 {
		return true
	}
	heard := v.stamp
	if v.heard != nil {
		heard = v.heard[id]
	}
	return now-heard <= v.SuspectAfter
}

// Pick draws a uniformly random live peer other than self, or -1 when
// there is none. With a full view of n nodes it draws exactly one
// rng.Intn(n-1) and maps it exactly as the static runtimes' `peer :=
// rng.Intn(n-1); if peer >= id { peer++ }` did, so churnless runs
// reproduce their pre-membership transcripts bit for bit.
//
// Deliberately, suspicion does NOT filter sampling — only Remove
// (leave announcements) does. Excluding suspected peers from sampling
// is an absorbing death spiral: a node everyone suspects receives
// nothing, so it sends nothing, so it stays suspected forever — and if
// it meanwhile suspects everyone (its own clock jumped while it was
// descheduled), the isolation is mutual and permanent. Sending to a
// silent peer is exactly what revives it: any packet it receives makes
// it answer, and its answer refreshes its stamp everywhere. A crashed
// peer costs wasted sends (transport drops), which is the documented
// price; suspicion exists only to keep dead nodes out of the stream's
// retirement frontier.
func (v *View) Pick(rng *rand.Rand, _ int64) int {
	peers := v.n
	if v.Live(v.self) {
		peers--
	}
	if peers <= 0 {
		return -1
	}
	r := rng.Intn(peers)
	if v.live == nil {
		// Dense: live ids are 0..n-1 ascending; skipping self is the
		// static mapping in closed form, O(1) instead of a scan.
		if v.self < v.n && r >= v.self {
			r++
		}
		return r
	}
	for id := range v.live {
		if id != v.self && v.live[id] {
			if r == 0 {
				return id
			}
			r--
		}
	}
	return -1 // unreachable
}

// AppendPeers appends the view's live ids (including self) to dst for
// a hello body, reusing dst's capacity.
func (v *View) AppendPeers(dst []uint32) []uint32 {
	if v.live == nil {
		for id := 0; id < v.n; id++ {
			dst = append(dst, uint32(id))
		}
		return dst
	}
	for id, l := range v.live {
		if l {
			dst = append(dst, uint32(id))
		}
	}
	return dst
}

// ChurnOp is one concrete membership operation: an event kind bound
// to the node id the churner selected for it.
type ChurnOp struct {
	Kind ChurnKind
	ID   int
}

// Churner turns a ChurnSchedule into concrete operations, selecting
// crash/leave victims and restart candidates from its own seeded rng
// so that under the lockstep drivers the whole membership history is a
// pure function of the run seed. One churner serves one run; both
// drivers consume events in At order, so victim draws replay
// identically for identical seeds.
type Churner struct {
	events  []ChurnEvent
	next    int
	rng     *rand.Rand
	nextID  int   // next fresh id for joins
	maxID   int   // id space bound
	crashed []int // ids available for restart/rejoin, in crash order
	ops     []ChurnOp
	// rank is the oracle for the targeted crash kinds (crashmax,
	// crashfrontier): the current decoding progress / delivery
	// watermark of a live node. Nil degrades targeted kinds to uniform
	// crashes. See SetRank.
	rank func(id int) int
}

// churnSeed offsets the victim-selection stream away from the node rngs.
const churnSeed = 7717

func NewChurner(s *ChurnSchedule, n, maxN int, seed int64) *Churner {
	if s == nil || len(s.Events) == 0 {
		return nil
	}
	return &Churner{
		events: s.Events,
		rng:    rand.New(rand.NewSource(seed + churnSeed)),
		nextID: n,
		maxID:  maxN,
	}
}

// SetRank installs the rank oracle the targeted crash kinds select
// victims with. The drivers call it once at run start when the
// schedule HasTargeted; fn must be callable at PopUntil time for every
// live id (the async churn controller calls it from its own goroutine,
// so implementations back it with atomics). A nil churner or nil fn is
// a no-op / oracle removal.
func (c *Churner) SetRank(fn func(id int) int) {
	if c != nil {
		c.rank = fn
	}
}

// NextAt returns the tick of the next unapplied event, if any.
func (c *Churner) NextAt() (int, bool) {
	if c == nil || c.next >= len(c.events) {
		return 0, false
	}
	return c.events[c.next].At, true
}

// PendingAdds reports whether any membership-adding event (join,
// restart, rejoin) has not yet been applied. A run cannot complete
// while one is pending: the node it adds still has catching up to do.
func (c *Churner) PendingAdds() bool {
	if c == nil {
		return false
	}
	for _, e := range c.events[c.next:] {
		switch e.Kind {
		case ChurnJoin, ChurnRestart, ChurnRejoin:
			return true
		}
	}
	return false
}

// PopUntil applies every event with At <= tick against the live set
// and returns the concrete operations, reusing the internal scratch
// slice. live is indexed by node id; the churner never selects a
// victim that would empty the cluster.
func (c *Churner) PopUntil(tick int, live []bool) []ChurnOp {
	if c == nil {
		return nil
	}
	c.ops = c.ops[:0]
	for c.next < len(c.events) && c.events[c.next].At <= tick {
		e := c.events[c.next]
		c.next++
		for i := 0; i < e.Count; i++ {
			switch e.Kind {
			case ChurnJoin:
				if c.nextID >= c.maxID {
					continue // id space exhausted (schedule bug); no-op
				}
				id := c.nextID
				c.nextID++
				c.ops = append(c.ops, ChurnOp{ChurnJoin, id})
				live[id] = true
			case ChurnLeave, ChurnCrash:
				id := c.pickLive(live)
				if id < 0 {
					continue // refusing to kill the last node
				}
				c.ops = append(c.ops, ChurnOp{e.Kind, id})
				live[id] = false
				if e.Kind == ChurnCrash {
					c.crashed = append(c.crashed, id)
				}
			case ChurnCrashMax, ChurnCrashFrontier:
				id := c.pickTargeted(live, e.Kind == ChurnCrashMax)
				if id < 0 {
					continue // refusing to kill the last node
				}
				// Resolve to a plain crash: drivers see only ChurnCrash
				// ops, the targeting lives entirely in victim selection.
				c.ops = append(c.ops, ChurnOp{ChurnCrash, id})
				live[id] = false
				c.crashed = append(c.crashed, id)
			case ChurnRestart, ChurnRejoin:
				if len(c.crashed) == 0 {
					continue // nothing to revive; no-op
				}
				r := c.rng.Intn(len(c.crashed))
				id := c.crashed[r]
				c.crashed = append(c.crashed[:r], c.crashed[r+1:]...)
				c.ops = append(c.ops, ChurnOp{e.Kind, id})
				live[id] = true
			}
		}
	}
	return c.ops
}

// pickTargeted selects the live node with the extreme rank — the
// maximum for crashmax (kill the best-informed node), the minimum for
// crashfrontier (kill the straggler the stream frontier waits on) —
// breaking ties toward the lowest id so the choice is deterministic.
// Without a rank oracle it falls back to a uniform draw; like
// pickLive it refuses to reduce the cluster below two live nodes.
func (c *Churner) pickTargeted(live []bool, max bool) int {
	if c.rank == nil {
		return c.pickLive(live)
	}
	count, victim, best := 0, -1, 0
	for id, l := range live {
		if !l {
			continue
		}
		count++
		r := c.rank(id)
		if victim < 0 || (max && r > best) || (!max && r < best) {
			victim, best = id, r
		}
	}
	if count < 2 {
		return -1
	}
	return victim
}

// pickLive draws a uniform victim among live nodes, or -1 when fewer
// than two are live (a schedule may not empty the cluster).
func (c *Churner) pickLive(live []bool) int {
	count := 0
	for _, l := range live {
		if l {
			count++
		}
	}
	if count < 2 {
		return -1
	}
	r := c.rng.Intn(count)
	for id, l := range live {
		if l {
			if r == 0 {
				return id
			}
			r--
		}
	}
	return -1
}

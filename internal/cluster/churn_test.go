package cluster

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseChurn(t *testing.T) {
	s, err := ParseChurn("join:500:2,crash:1000:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []ChurnEvent{{ChurnJoin, 500, 2}, {ChurnCrash, 1000, 1}}
	if !reflect.DeepEqual(s.Events, want) {
		t.Errorf("events %+v, want %+v", s.Events, want)
	}
	if s.Joins() != 2 {
		t.Errorf("Joins() = %d, want 2", s.Joins())
	}
	if got := s.String(); got != "join:500:2,crash:1000:1" {
		t.Errorf("String() = %q", got)
	}

	// Out-of-order input is sorted by tick.
	s, err = ParseChurn(" rejoin:40:1, crash:10:1 ,restart:30:1,leave:20:1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].At {
			t.Fatalf("events not sorted: %+v", s.Events)
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("sorted parse does not validate: %v", err)
	}

	if s, err := ParseChurn(""); s != nil || err != nil {
		t.Errorf("empty schedule -> %v, %v; want nil, nil", s, err)
	}

	bad := []string{
		"join:500",          // missing count
		"meteor:10:1",       // unknown kind
		"join:0:1",          // tick must be positive
		"join:-5:1",         // negative tick
		"join:10:0",         // zero count
		"join:ten:1",        // non-numeric tick
		"join:10:1,,",       // empty event
		"crash:10:1;join:1", // wrong separator
	}
	for _, in := range bad {
		if _, err := ParseChurn(in); err == nil {
			t.Errorf("ParseChurn(%q) accepted", in)
		}
	}
}

func TestChurnScheduleValidate(t *testing.T) {
	if err := (&ChurnSchedule{Events: []ChurnEvent{{ChurnCrash, 20, 1}, {ChurnJoin, 10, 1}}}).Validate(); err == nil {
		t.Error("unsorted schedule validated")
	}
	if err := (&ChurnSchedule{Events: []ChurnEvent{{ChurnKind(9), 10, 1}}}).Validate(); err == nil {
		t.Error("unknown kind validated")
	}
	var nilSched *ChurnSchedule
	if err := nilSched.Validate(); err != nil {
		t.Errorf("nil schedule: %v", err)
	}
}

func TestViewPickMatchesStaticSampling(t *testing.T) {
	// The membership view's uniform peer pick must reproduce the static
	// runtimes' draw exactly when the view is full: one Intn(n-1), with
	// r >= self mapping to r+1. This is what keeps churnless transcripts
	// bit-identical to the pre-membership pipeline.
	const n, self = 9, 4
	v := NewView(self, n)
	v.Fill(n, 0)
	a, b := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		want := a.Intn(n - 1)
		if want >= self {
			want++
		}
		if got := v.Pick(b, 0); got != want {
			t.Fatalf("draw %d: Pick %d, static mapping %d", i, got, want)
		}
	}
}

func TestViewSuspicion(t *testing.T) {
	v := NewView(0, 4)
	v.Fill(4, 10)
	v.SuspectAfter = 5
	if !v.Eligible(2, 15) {
		t.Error("peer heard at 10 suspected at 15 with threshold 5")
	}
	if v.Eligible(2, 16) {
		t.Error("peer heard at 10 still eligible at 16 with threshold 5")
	}
	if !v.Eligible(0, 1000) {
		t.Error("self suspected")
	}
	v.Mark(2, 20) // heard again: reinstated
	if !v.Eligible(2, 24) {
		t.Error("reinstated peer still suspected")
	}
	v.Remove(2)
	if v.Eligible(2, 21) || v.Live(2) {
		t.Error("removed peer still in view")
	}
	if v.LiveCount() != 3 {
		t.Errorf("LiveCount = %d, want 3", v.LiveCount())
	}
}

// churnRun is the canonical seeded lockstep churn run shared by the
// determinism and completion tests: joins, a graceful leave, a crash
// and a persisted restart, under loss.
func churnRun(t *testing.T, seed int64, schedule string, mode Mode) *Result {
	t.Helper()
	sched, err := ParseChurn(schedule)
	if err != nil {
		t.Fatal(err)
	}
	const n, k, d = 10, 10, 48
	maxN := n + sched.Joins()
	tr := WithLoss(NewChanTransport(maxN, InboxBuffer(maxN, 3)), 0.2, seed*17+1)
	res, err := Run(context.Background(), Config{
		N: n, Seed: seed, Mode: mode, Lockstep: true, Transport: tr, Churn: sched, MaxTicks: 100000,
	}, testTokens(k, d, 7))
	if err != nil {
		t.Fatal(err)
	}
	res.Elapsed = 0 // wall clock is the one legitimately impure field
	return res
}

// TestLockstepChurnDeterministic is the acceptance-criteria property:
// a lockstep churn run — joins, leaves, crashes, restarts, loss — is a
// pure function of the seed, bit for bit across every node's metrics.
func TestLockstepChurnDeterministic(t *testing.T) {
	const schedule = "join:5:1,crash:8:1,leave:12:1,restart:15:1,join:18:2,rejoin:25:1"
	pure := func(s uint16, coded bool) bool {
		seed := int64(s) + 1
		mode := Forward
		if coded {
			mode = Coded
		}
		a := churnRun(t, seed, schedule, mode)
		b := churnRun(t, seed, schedule, mode)
		return reflect.DeepEqual(a, b)
	}
	cfg := &quick.Config{MaxCount: 6, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(pure, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLockstepChurnCompletesAndVerifies drives every churn kind
// through the lockstep driver under loss and checks the membership
// bookkeeping: the run completes, crashed/left nodes are excluded,
// joiners caught up (Run decode-verified every live node before
// returning).
func TestLockstepChurnCompletesAndVerifies(t *testing.T) {
	for _, mode := range []Mode{Coded, Forward} {
		res := churnRun(t, 3, "join:5:1,crash:8:1,leave:12:1,restart:15:1,join:18:2", mode)
		if !res.Completed {
			t.Fatalf("%v churn run incomplete after %d ticks", mode, res.Ticks)
		}
		spawned, live := 0, 0
		for id, m := range res.Nodes {
			if m.Spawned {
				spawned++
			}
			if m.Live {
				live++
				if !m.Done {
					t.Errorf("%v: live node %d not done on a completed run", mode, id)
				}
			}
			if m.Spawned && m.JoinTick > 0 && m.Live && m.DoneTick < m.JoinTick {
				t.Errorf("%v: node %d done at tick %d before joining at %d", mode, id, m.DoneTick, m.JoinTick)
			}
		}
		if spawned != 13 { // 10 initial + 3 joins
			t.Errorf("%v: %d nodes spawned, want 13", mode, spawned)
		}
		// One crash (restarted), one leave, one crash... schedule: crash@8
		// restarts@15, leave@12 stays gone: 13 spawned - 1 leaver = 12,
		// unless the restart found no crashed node (impossible here).
		if live != 12 || res.FinalLive != 12 {
			t.Errorf("%v: %d live at end (FinalLive %d), want 12", mode, live, res.FinalLive)
		}
		if res.Ticks <= 18 {
			t.Errorf("%v: run completed at tick %d, before the last join at 18", mode, res.Ticks)
		}
		hellos := int64(0)
		for _, m := range res.Nodes {
			hellos += m.HellosOut
		}
		if hellos == 0 {
			t.Errorf("%v: no membership announcements sent in a churn run", mode)
		}
	}
}

// TestChurnlessRunsUnchanged pins that a nil churn schedule leaves the
// static-membership pipeline untouched: no hellos, all nodes live, and
// (via TestLockstepGoldenTranscripts) bit-identical transcripts.
func TestChurnlessRunsUnchanged(t *testing.T) {
	res, err := Run(context.Background(), Config{N: 8, Seed: 1, Lockstep: true}, testTokens(8, 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.FinalLive != 8 {
		t.Errorf("FinalLive = %d, want 8", res.FinalLive)
	}
	for id, m := range res.Nodes {
		if !m.Spawned || !m.Live || m.HellosOut != 0 || m.JoinTick != 0 {
			t.Errorf("node %d: churn fields touched without churn: %+v", id, m)
		}
	}
}

// TestAsyncChurnCrashJoinCompletes is the async churn integration
// test: a node crashes mid-run, a fresh node joins, and the run must
// still complete with every live node decode-verified (Run verifies
// before returning) — under loss, with goroutines starting and
// stopping mid-run. It is the -race workout for the redesigned
// completion accounting and is skipped under -short.
func TestAsyncChurnCrashJoinCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test skipped with -short")
	}
	const n, k, d = 12, 12, 64
	sched, err := ParseChurn("crash:20:1,join:30:1,leave:45:1,restart:60:1")
	if err != nil {
		t.Fatal(err)
	}
	maxN := n + sched.Joins()
	var tr Transport = NewChanTransport(maxN, InboxBuffer(maxN, 3))
	tr = WithLoss(tr, 0.1, 12)
	res, err := Run(context.Background(), Config{
		N: n, Seed: 6, Transport: tr, Churn: sched, Timeout: 20 * time.Second,
		Interval: 200 * time.Microsecond,
	}, testTokens(k, d, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("async churn run did not complete")
	}
	if res.FinalLive != n {
		// 12 initial - crash + join - leave + restart = 12.
		t.Errorf("FinalLive = %d, want %d", res.FinalLive, n)
	}
	joiner := &res.Nodes[n]
	if !joiner.Spawned || !joiner.Live || !joiner.Done {
		t.Errorf("joiner: %+v", joiner)
	}
	if joiner.JoinAt <= 0 || joiner.DoneAt < joiner.JoinAt {
		t.Errorf("joiner done at %v before joining at %v", joiner.DoneAt, joiner.JoinAt)
	}
	left := 0
	for _, m := range res.Nodes {
		if m.Spawned && !m.Live {
			left++
		}
	}
	if left != 1 {
		t.Errorf("%d departed nodes at end, want 1 (the leaver; crash was restarted)", left)
	}
}

// TestChurnRejectsBadSchedule covers Run's schedule validation.
func TestChurnRejectsBadSchedule(t *testing.T) {
	bad := &ChurnSchedule{Events: []ChurnEvent{{ChurnJoin, -1, 1}}}
	if _, err := Run(context.Background(), Config{N: 4, Lockstep: true, Churn: bad}, testTokens(4, 8, 1)); err == nil {
		t.Error("invalid schedule accepted")
	} else if !strings.Contains(err.Error(), "tick") {
		t.Errorf("error %v does not explain the invalid tick", err)
	}
}

// TestLockstepChurnGridCompletes sweeps churn schedules × seeds × modes
// through the lockstep cluster driver and requires completion: the
// one-shot runtime keeps recoding until every live node (including late
// joiners) holds everything, so no schedule that leaves two nodes alive
// may stall it.
func TestLockstepChurnGridCompletes(t *testing.T) {
	schedules := []string{
		"crash:15:1",
		"crash:12:1,leave:20:1,join:25:1",
		"join:5:2,crash:18:1,restart:40:1",
		"leave:8:1,crash:16:1,rejoin:45:1",
	}
	for _, schedule := range schedules {
		for seed := int64(1); seed <= 3; seed++ {
			for _, mode := range []Mode{Coded, Forward} {
				res := churnRun(t, seed, schedule, mode)
				if !res.Completed {
					t.Errorf("schedule %q seed %d %v stalled after %d ticks", schedule, seed, mode, res.Ticks)
				}
			}
		}
	}
}

// TestLockstepChurnAggregateMetrics pins the Result aggregate math
// across a churned run: every aggregate equals the sum over the
// per-node slots with each id counted exactly once. Leavers and
// crashers keep their final counters in the sum, restarts and rejoins
// reuse their id's slot rather than adding one (so their pre-outage
// traffic is never double-counted), unspawned ids stay zero, and
// FinalLive matches the Live flags.
func TestLockstepChurnAggregateMetrics(t *testing.T) {
	const schedule = "join:5:1,crash:8:1,leave:12:1,restart:15:1,join:18:2,rejoin:25:1"
	sched, err := ParseChurn(schedule)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Coded, Forward} {
		res := churnRun(t, 11, schedule, mode)
		if !res.Completed {
			t.Fatalf("%v churn run incomplete after %d ticks", mode, res.Ticks)
		}
		// One slot per id over the whole id space: a restart or rejoin
		// must reuse its node's slot, not append a fresh one.
		if want := 10 + sched.Joins(); len(res.Nodes) != want {
			t.Fatalf("%v: %d node slots, want %d (restart/rejoin must reuse slots)", mode, len(res.Nodes), want)
		}
		var out, in, bits, dropped int64
		live, departed := 0, 0
		for id, m := range res.Nodes {
			if !m.Spawned {
				if m.PacketsOut != 0 || m.PacketsIn != 0 || m.BitsOut != 0 || m.Dropped != 0 || m.Live {
					t.Errorf("%v: unspawned id %d has nonzero metrics %+v", mode, id, m)
				}
				continue
			}
			out += m.PacketsOut
			in += m.PacketsIn
			bits += m.BitsOut
			dropped += m.Dropped
			if m.Live {
				live++
			} else if m.PacketsOut > 0 {
				departed++ // leaver/crasher whose traffic stays counted
			}
		}
		if res.PacketsOut != out || res.PacketsIn != in || res.BitsOut != bits || res.Dropped != dropped {
			t.Errorf("%v: aggregates (%d,%d,%d,%d) != per-node sums (%d,%d,%d,%d)",
				mode, res.PacketsOut, res.PacketsIn, res.BitsOut, res.Dropped, out, in, bits, dropped)
		}
		if res.FinalLive != live {
			t.Errorf("%v: FinalLive = %d, want %d live flags", mode, res.FinalLive, live)
		}
		if departed == 0 {
			t.Errorf("%v: schedule has a leave and a crash but no departed node kept its counters", mode)
		}
	}
}

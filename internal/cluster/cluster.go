// Package cluster is the asynchronous counterpart of the synchronous
// dynnet engine: each node is a goroutine running a recoding RLNC
// gossip loop — receive a packet, fold it into the span (rlnc.Span.Add),
// push fresh random combinations of the whole span
// (rlnc.Span.RandomCombination) to random peers — over a pluggable
// Transport that serializes every message through the internal/wire
// codec. There are no rounds and no global coordination; loss, delay,
// reordering and partitions are composable transport middlewares.
//
// Two execution modes share the node logic:
//
//   - Async (default): goroutine per node, pacing by ticker plus
//     push-on-innovation, wall-clock metrics. This is the "production"
//     shape: concurrent, lossy, timing-dependent.
//
//   - Lockstep (Config.Lockstep): a single-threaded driver alternates
//     drain and emit phases over the same Transport and node state, so
//     a run is a pure function of Config.Seed — reproducible trials for
//     tests and for experiment E11.
//
// Mode Forward swaps the coded gossiper for a store-and-forward one
// (random known token per packet), the baseline E11 compares against.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/token"
	"repro/internal/wire"
)

// Mode selects the gossip payload discipline.
type Mode int

const (
	// Coded nodes exchange random linear combinations of their span and
	// finish when the span reaches full coefficient rank.
	Coded Mode = iota
	// Forward nodes exchange raw tokens (store-and-forward gossip) and
	// finish when they hold all k tokens.
	Forward
)

// String returns the mode's CLI name.
func (m Mode) String() string {
	if m == Forward {
		return "forward"
	}
	return "coded"
}

// Config parameterizes a cluster run.
type Config struct {
	// N is the number of nodes.
	N int
	// Fanout is the number of peers contacted per emission (default 2).
	Fanout int
	// Mode selects coded or store-and-forward gossip.
	Mode Mode
	// Seed derives all node randomness (coding coins, peer choice). In
	// lockstep mode it fully determines the run.
	Seed int64
	// Transport carries the packets; nil means a fresh ChanTransport
	// sized so buffer overflow cannot occur in lockstep mode. Run closes
	// the transport before returning.
	Transport Transport
	// Interval paces each node's ticker emissions in async mode
	// (default 500µs).
	Interval time.Duration
	// Timeout caps the async run's wall clock (default 30s).
	Timeout time.Duration
	// Lockstep runs the deterministic single-threaded driver instead of
	// goroutines.
	Lockstep bool
	// MaxTicks caps a lockstep run (default 20000).
	MaxTicks int
}

func (c Config) fanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	return 2
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 500 * time.Microsecond
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c Config) maxTicks() int {
	if c.MaxTicks > 0 {
		return c.MaxTicks
	}
	return 20000
}

// NodeMetrics are one node's counters. In async mode DoneAt is the wall
// time from start to full knowledge; in lockstep mode DoneTick is the
// tick at which the node completed (0-based first tick is 1).
type NodeMetrics struct {
	PacketsOut int64
	PacketsIn  int64
	// BitsOut is protocol bits sent under the simulator's Bits()
	// accounting (wire framing excluded), comparable with
	// dynnet.Metrics.Bits.
	BitsOut int64
	// Dropped counts Sends the transport reported undelivered.
	Dropped int64
	// Innovative counts received packets that grew this node's
	// knowledge.
	Innovative int64
	Done       bool
	DoneAt     time.Duration
	DoneTick   int
}

// Result reports a finished run.
type Result struct {
	// Completed is true when every node reached full knowledge before
	// the timeout / tick cap.
	Completed bool
	// Elapsed is the async wall clock (also set, informationally, for
	// lockstep runs).
	Elapsed time.Duration
	// Ticks is the lockstep tick count at completion (0 for async).
	Ticks int
	Nodes []NodeMetrics

	// Aggregates over Nodes.
	PacketsOut int64
	PacketsIn  int64
	BitsOut    int64
	Dropped    int64
}

// DoneTicks returns each completed node's DoneTick as float64s, for
// summary statistics.
func (r *Result) DoneTicks() []float64 {
	out := make([]float64, 0, len(r.Nodes))
	for _, m := range r.Nodes {
		if m.Done {
			out = append(out, float64(m.DoneTick))
		}
	}
	return out
}

// DoneTimes returns each completed node's DoneAt in seconds.
func (r *Result) DoneTimes() []float64 {
	out := make([]float64, 0, len(r.Nodes))
	for _, m := range r.Nodes {
		if m.Done {
			out = append(out, m.DoneAt.Seconds())
		}
	}
	return out
}

// InboxBuffer returns the per-node inbox size at which backpressure
// drops are impossible in lockstep mode: one tick's worst case is every
// node targeting the same inbox with fanout packets each. Callers that
// pre-build a ChanTransport (to wrap middlewares around it) should size
// it with the same fanout they pass to Run.
func InboxBuffer(n, fanout int) int { return n*fanout + 1 }

// gossiper is the per-node protocol state shared by both modes.
type gossiper interface {
	// absorb ingests one packet, reporting whether it was innovative.
	// The packet is the caller's reused scratch: implementations must
	// copy anything they retain past the call.
	absorb(p *wire.Packet) bool
	// emitInto draws one fresh packet to push into the caller-owned
	// scratch, or reports false if the node has nothing to say yet.
	emitInto(p *wire.Packet, epoch int) bool
	// complete reports whether the node holds all k tokens.
	complete() bool
	// verify checks the node's final state against the originals.
	verify(toks []token.Token) error
}

// TokenVec flattens a token to the bit vector coded gossip codes over:
// 64 UID bits (LSB-first) followed by the payload. Coding the UID
// alongside the payload keeps the coded and forward modes
// information-equivalent, so their Bits() costs are honestly
// comparable. It is shared node plumbing: internal/stream codes every
// generation with the same flattening so stream and cluster packets are
// byte-compatible.
func TokenVec(t token.Token) gf.BitVec {
	v := gf.NewBitVec(token.UIDBits + t.D())
	u := uint64(t.UID)
	for b := 0; b < token.UIDBits; b++ {
		if u>>uint(b)&1 == 1 {
			v.Set(b, true)
		}
	}
	t.Payload.CopyInto(v, token.UIDBits)
	return v
}

// VecToken inverts TokenVec.
func VecToken(v gf.BitVec) token.Token {
	var u uint64
	for b := 0; b < token.UIDBits; b++ {
		if v.Bit(b) {
			u |= 1 << uint(b)
		}
	}
	return token.Token{UID: token.UID(u), Payload: v.Slice(token.UIDBits, v.Len())}
}

// codedNode gossips random linear combinations of its span.
type codedNode struct {
	id   int
	span *rlnc.Span
	rng  *rand.Rand
}

func (c *codedNode) absorb(p *wire.Packet) bool {
	if p.Env.Type != wire.TypeCoded {
		return false
	}
	cd := p.Coded
	if cd.K != c.span.K() || cd.Vec.Len() != c.span.K()+c.span.PayloadBits() {
		return false
	}
	// Span.Add copies the vector into the basis slab, so handing it the
	// caller's scratch is safe.
	return c.span.Add(cd)
}

func (c *codedNode) emitInto(p *wire.Packet, epoch int) bool {
	if !c.span.RandomCombinationInto(&p.Coded, c.rng) {
		return false
	}
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeCoded, Sender: uint32(c.id), Epoch: uint32(epoch)}
	return true
}

func (c *codedNode) complete() bool { return c.span.CanDecode() }

func (c *codedNode) verify(toks []token.Token) error {
	vecs, err := c.span.Decode()
	if err != nil {
		return fmt.Errorf("node %d: %w", c.id, err)
	}
	for i, v := range vecs {
		if got := VecToken(v); !got.Equal(toks[i]) {
			return fmt.Errorf("node %d: token %d decoded to %v, want %v", c.id, i, got.UID, toks[i].UID)
		}
	}
	return nil
}

// forwardNode gossips raw tokens, one random known token per packet.
type forwardNode struct {
	id  int
	k   int
	set *token.Set
	rng *rand.Rand
}

func (f *forwardNode) absorb(p *wire.Packet) bool {
	if p.Env.Type != wire.TypeToken {
		return false
	}
	if f.set.Has(p.Token.UID) {
		return false
	}
	// The payload aliases the caller's scratch packet; clone before
	// retaining. Novel tokens are bounded by k per node, so this is the
	// one permitted steady-state-exempt allocation.
	return f.set.Add(token.Token{UID: p.Token.UID, Payload: p.Token.Payload.Clone()})
}

func (f *forwardNode) emitInto(p *wire.Packet, epoch int) bool {
	toks := f.set.Tokens()
	if len(toks) == 0 {
		return false
	}
	// The emitted payload aliases set storage; AppendTo copies it onto
	// the wire before the packet scratch is reused.
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeToken, Sender: uint32(f.id), Epoch: uint32(epoch)}
	p.Token = toks[f.rng.Intn(len(toks))]
	return true
}

func (f *forwardNode) complete() bool { return f.set.Len() >= f.k }

func (f *forwardNode) verify(toks []token.Token) error {
	for _, want := range toks {
		got, ok := f.set.Get(want.UID)
		if !ok || !got.Equal(want) {
			return fmt.Errorf("node %d: token %v missing or corrupted", f.id, want.UID)
		}
	}
	return nil
}

// Run disseminates toks across an n-node cluster until every node holds
// all of them (coded: full span rank; forward: full token set), the
// context is canceled, the timeout expires, or the lockstep tick cap is
// hit. Token i starts at node i mod n. All token payloads must have the
// same bit length. On a completed run every node's final state is
// verified against the originals before Run returns.
func Run(ctx context.Context, cfg Config, toks []token.Token) (*Result, error) {
	k := len(toks)
	if cfg.N < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.N)
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 token")
	}
	d := toks[0].D()
	for i, t := range toks {
		if t.D() != d {
			return nil, fmt.Errorf("cluster: token %d has %d payload bits, token 0 has %d", i, t.D(), d)
		}
	}

	fanout := cfg.fanout()
	tr := cfg.Transport
	if tr == nil {
		tr = NewChanTransport(cfg.N, InboxBuffer(cfg.N, fanout))
	}
	defer tr.Close()

	nodes := make([]gossiper, cfg.N)
	rngs := make([]*rand.Rand, cfg.N)
	for i := 0; i < cfg.N; i++ {
		rngs[i] = rand.New(rand.NewSource(cfg.Seed + 7919*int64(i) + 1))
		switch cfg.Mode {
		case Coded:
			span := rlnc.NewSpan(k, token.UIDBits+d)
			for j := i; j < k; j += cfg.N {
				span.Add(rlnc.Encode(j, k, TokenVec(toks[j])))
			}
			nodes[i] = &codedNode{id: i, span: span, rng: rngs[i]}
		case Forward:
			set := token.NewSet()
			for j := i; j < k; j += cfg.N {
				set.Add(toks[j])
			}
			nodes[i] = &forwardNode{id: i, k: k, set: set, rng: rngs[i]}
		default:
			return nil, fmt.Errorf("cluster: unknown mode %d", cfg.Mode)
		}
	}

	res := &Result{Nodes: make([]NodeMetrics, cfg.N)}
	start := time.Now()
	if cfg.Lockstep {
		runLockstep(ctx, cfg, tr, nodes, rngs, res)
	} else {
		runAsync(ctx, cfg, tr, nodes, rngs, res, start)
	}
	res.Elapsed = time.Since(start)

	for _, m := range res.Nodes {
		res.PacketsOut += m.PacketsOut
		res.PacketsIn += m.PacketsIn
		res.BitsOut += m.BitsOut
		res.Dropped += m.Dropped
	}
	if res.Completed {
		for _, n := range nodes {
			if err := n.verify(toks); err != nil {
				return res, fmt.Errorf("cluster: verification failed: %w", err)
			}
		}
	}
	return res, nil
}

// nodeIO is one node's reusable packet plumbing: a tx scratch fed by
// emitInto, an rx scratch fed by UnmarshalInto, and the buffer ring
// that recycles wire buffers between the node's receive and send sides.
// Each nodeIO is owned by exactly one goroutine (see BufRing).
type nodeIO struct {
	tx   wire.Packet
	rx   wire.Packet
	ring *BufRing
}

func newNodeIOs(n int) []nodeIO {
	ios := make([]nodeIO, n)
	for i := range ios {
		ios[i].ring = NewBufRing(DefaultRingCap)
	}
	return ios
}

// recv decodes one drained inbox buffer into the rx scratch, feeds it
// to the gossiper, and recycles the buffer. It reports innovation.
func (io *nodeIO) recv(node gossiper, raw []byte) bool {
	return DecodeRecycle(&io.rx, io.ring, raw) && node.absorb(&io.rx)
}

// sendFresh pushes fanout fresh packets from node id to random peers,
// updating its metrics. It is the shared emission step of both modes:
// emitInto fills the node's tx scratch, AppendTo marshals it into a
// recycled buffer, and a dropped Send returns the buffer to the ring —
// the steady-state path touches the allocator not at all.
func sendFresh(tr Transport, nodes []gossiper, rng *rand.Rand, m *NodeMetrics, id, n, fanout int, io *nodeIO) {
	for f := 0; f < fanout; f++ {
		if !nodes[id].emitInto(&io.tx, int(m.PacketsOut)) {
			return
		}
		peer := rng.Intn(n - 1)
		if peer >= id {
			peer++
		}
		m.PacketsOut++
		m.BitsOut += int64(io.tx.Bits())
		buf := io.tx.AppendTo(io.ring.Get()[:0])
		if !tr.Send(id, peer, buf) {
			m.Dropped++
			io.ring.Put(buf)
		}
	}
}

// runAsync is the goroutine-per-node execution: ticker-paced emission
// plus an immediate push after every innovative receipt.
func runAsync(ctx context.Context, cfg Config, tr Transport, nodes []gossiper, rngs []*rand.Rand, res *Result, start time.Time) {
	ctx, cancel := context.WithTimeout(ctx, cfg.timeout())
	defer cancel()

	var remaining atomic.Int64
	remaining.Store(int64(cfg.N))
	allDone := make(chan struct{})

	ios := newNodeIOs(cfg.N)
	var wg sync.WaitGroup
	for id := 0; id < cfg.N; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			node, m, rng, nio := nodes[id], &res.Nodes[id], rngs[id], &ios[id]
			markDone := func() {
				if m.Done || !node.complete() {
					return
				}
				m.Done = true
				m.DoneAt = time.Since(start)
				if remaining.Add(-1) == 0 {
					close(allDone)
				}
			}
			markDone() // n == 1 or a node seeded with everything
			emit := func() {
				if cfg.N > 1 {
					sendFresh(tr, nodes, rng, m, id, cfg.N, cfg.fanout(), nio)
				}
			}
			ticker := time.NewTicker(cfg.interval())
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case raw := <-tr.Recv(id):
					m.PacketsIn++
					if nio.recv(node, raw) {
						m.Innovative++
						markDone()
						emit()
					}
				case <-ticker.C:
					emit()
				}
			}
		}(id)
	}

	select {
	case <-allDone:
		res.Completed = true
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
}

// runLockstep is the deterministic driver: per tick, every node drains
// its inbox in id order, completion is recorded, then every node emits.
// With a seeded Config the whole run — including middleware coin flips —
// is a pure function of the seed; context cancellation (checked once
// per tick) only ever cuts a run short, it cannot change the ticks that
// did execute.
func runLockstep(ctx context.Context, cfg Config, tr Transport, nodes []gossiper, rngs []*rand.Rand, res *Result) {
	fanout := cfg.fanout()
	ios := newNodeIOs(cfg.N)
	complete := func(tick int) bool {
		all := true
		for id := range nodes {
			m := &res.Nodes[id]
			if !m.Done && nodes[id].complete() {
				m.Done = true
				m.DoneTick = tick
			}
			all = all && m.Done
		}
		return all
	}
	if complete(0) {
		res.Completed = true
		return
	}
	for tick := 1; tick <= cfg.maxTicks(); tick++ {
		select {
		case <-ctx.Done():
			res.Ticks = tick - 1
			return
		default:
		}
		for id := range nodes {
			m := &res.Nodes[id]
			inbox := tr.Recv(id)
			for drained := false; !drained; {
				select {
				case raw := <-inbox:
					m.PacketsIn++
					if ios[id].recv(nodes[id], raw) {
						m.Innovative++
					}
				default:
					drained = true
				}
			}
		}
		if complete(tick) {
			res.Completed = true
			res.Ticks = tick
			return
		}
		for id := range nodes {
			if cfg.N > 1 {
				sendFresh(tr, nodes, rngs[id], &res.Nodes[id], id, cfg.N, fanout, &ios[id])
			}
		}
	}
	res.Ticks = cfg.maxTicks()
}

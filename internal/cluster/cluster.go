// Package cluster is the asynchronous counterpart of the synchronous
// dynnet engine: each node is a goroutine running a recoding RLNC
// gossip loop — receive a packet, fold it into the span (rlnc.Span.Add),
// push fresh random combinations of the whole span
// (rlnc.Span.RandomCombination) to random peers — over a pluggable
// Transport that serializes every message through the internal/wire
// codec. There are no rounds and no global coordination; loss, delay,
// reordering and partitions are composable transport middlewares.
//
// Two execution modes share the node logic:
//
//   - Async (default): goroutine per node, pacing by ticker plus
//     push-on-innovation, wall-clock metrics. This is the "production"
//     shape: concurrent, lossy, timing-dependent.
//
//   - Lockstep (Config.Lockstep): a single-threaded driver alternates
//     drain and emit phases over the same Transport and node state, so
//     a run is a pure function of Config.Seed — reproducible trials for
//     tests and for experiment E11.
//
// Mode Forward swaps the coded gossiper for a store-and-forward one
// (random known token per packet), the baseline E11 compares against.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/token"
	"repro/internal/wire"
)

// Mode selects the gossip payload discipline.
type Mode int

const (
	// Coded nodes exchange random linear combinations of their span and
	// finish when the span reaches full coefficient rank.
	Coded Mode = iota
	// Forward nodes exchange raw tokens (store-and-forward gossip) and
	// finish when they hold all k tokens.
	Forward
)

// String returns the mode's CLI name.
func (m Mode) String() string {
	if m == Forward {
		return "forward"
	}
	return "coded"
}

// Config parameterizes a cluster run.
type Config struct {
	// N is the number of nodes.
	N int
	// Fanout is the number of peers contacted per emission (default 2).
	Fanout int
	// Mode selects coded or store-and-forward gossip.
	Mode Mode
	// Seed derives all node randomness (coding coins, peer choice). In
	// lockstep mode it fully determines the run.
	Seed int64
	// Transport carries the packets; nil means a fresh ChanTransport
	// sized so buffer overflow cannot occur in lockstep mode. Run closes
	// the transport before returning.
	Transport Transport
	// Interval paces each node's ticker emissions in async mode
	// (default 500µs).
	Interval time.Duration
	// Timeout caps the async run's wall clock (default 30s).
	Timeout time.Duration
	// Lockstep runs the deterministic single-threaded driver instead of
	// goroutines.
	Lockstep bool
	// Shards splits the lockstep driver's per-node phases (sample,
	// drain, emit) across that many worker goroutines over contiguous
	// node-id ranges, with a serial exchange barrier replaying each
	// shard's emissions in id order so the transcript stays bit-identical
	// to the serial driver for every shard count (see outbox.go and
	// DESIGN.md "Sharded lockstep engine"). 0 and 1 both mean the serial
	// engine; >1 requires Lockstep — the async driver is already
	// concurrent.
	Shards int
	// MaxTicks caps a lockstep run (default 20000).
	MaxTicks int
	// Churn optionally scripts dynamic membership: node joins, graceful
	// leaves, crashes and restarts (see ChurnSchedule / ParseChurn). Nil
	// means the fixed always-alive membership. Event ticks map to
	// lockstep ticks directly and to At×Interval wall offsets in async
	// mode. With churn, the node id space is N + Churn.Joins(); a
	// caller-supplied Transport must be sized for it (the default
	// transport is).
	Churn *ChurnSchedule
	// Telemetry optionally traces the run (nil = disabled, zero
	// overhead). Size it for maxNodes (N + Churn.Joins()); events for
	// ids beyond the recorder's space are discarded. Recording only
	// observes — a traced lockstep run produces the same transcript as
	// an untraced one.
	Telemetry *telemetry.Recorder
}

// maxNodes is the run's node id space: the initial membership plus
// every id the churn schedule can create.
func (c Config) maxNodes() int { return c.N + c.Churn.Joins() }

func (c Config) fanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	return 2
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 500 * time.Microsecond
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c Config) shards() int {
	if c.Shards > 1 {
		return c.Shards
	}
	return 1
}

func (c Config) maxTicks() int {
	if c.MaxTicks > 0 {
		return c.MaxTicks
	}
	return 20000
}

// NodeMetrics are one node's counters. In async mode DoneAt is the wall
// time from start to full knowledge; in lockstep mode DoneTick is the
// tick at which the node completed (0-based first tick is 1).
type NodeMetrics struct {
	PacketsOut int64
	PacketsIn  int64
	// HellosOut counts membership announcements sent (their bits are
	// included in BitsOut). Always zero without churn.
	HellosOut int64
	// BitsOut is protocol bits sent under the simulator's Bits()
	// accounting (wire framing excluded), comparable with
	// dynnet.Metrics.Bits.
	BitsOut int64
	// Dropped counts Sends the transport reported undelivered.
	Dropped int64
	// Innovative counts received packets that grew this node's
	// knowledge.
	Innovative int64
	Done       bool
	DoneAt     time.Duration
	DoneTick   int
	// Spawned marks ids that actually entered the run: the initial
	// members and every applied join. Metrics of unspawned ids stay
	// zero.
	Spawned bool
	// Live is the node's membership at the end of the run; false for
	// nodes that crashed or left (and for unspawned ids). Completion
	// and verification cover live nodes only.
	Live bool
	// JoinTick / JoinAt stamp the node's latest (re)entry into the run:
	// zero for initial members, the churn event's lockstep tick or
	// async wall offset otherwise.
	JoinTick int
	JoinAt   time.Duration
}

// Result reports a finished run.
type Result struct {
	// Completed is true when every live node reached full knowledge
	// (and every scheduled join/restart was applied) before the
	// timeout / tick cap.
	Completed bool
	// Elapsed is the async wall clock (also set, informationally, for
	// lockstep runs).
	Elapsed time.Duration
	// Ticks is the lockstep tick count at completion (0 for async).
	Ticks int
	// Nodes is indexed by node id over the whole id space
	// (Config.N + Churn.Joins()); check Spawned/Live per entry.
	Nodes []NodeMetrics

	// FinalLive counts the nodes live at the end of the run.
	FinalLive int

	// Aggregates over Nodes.
	PacketsOut int64
	PacketsIn  int64
	BitsOut    int64
	Dropped    int64
}

// DoneTicks returns each completed node's DoneTick as float64s, for
// summary statistics.
func (r *Result) DoneTicks() []float64 {
	out := make([]float64, 0, len(r.Nodes))
	for _, m := range r.Nodes {
		if m.Done {
			out = append(out, float64(m.DoneTick))
		}
	}
	return out
}

// DoneTimes returns each completed node's DoneAt in seconds.
func (r *Result) DoneTimes() []float64 {
	out := make([]float64, 0, len(r.Nodes))
	for _, m := range r.Nodes {
		if m.Done {
			out = append(out, m.DoneAt.Seconds())
		}
	}
	return out
}

// InboxBuffer returns the per-node inbox size at which backpressure
// drops are impossible in lockstep mode: one tick's worst case is every
// node targeting the same inbox with fanout packets each. Callers that
// pre-build a ChanTransport (to wrap middlewares around it) should size
// it with the same fanout they pass to Run — and, under churn, pass
// Config.maxNodes-many nodes and one extra fanout slot, since every
// member may additionally address one hello to the same inbox in a
// tick (join/leave bursts and the nothing-to-say announcement).
func InboxBuffer(n, fanout int) int { return n*fanout + 1 }

// LargeClusterNodes is the id-space size above which the drivers stop
// sizing default inboxes by the overflow-proof InboxBuffer bound: that
// bound is O(n) slots per node — O(n²) total — which at n=100k would
// cost hundreds of gigabytes for buffers that are virtually all empty.
const LargeClusterNodes = 4096

// DefaultInboxBuffer is the inbox sizing the drivers (and the CLIs'
// buffer auto-sizing) use when no explicit buffer is given: the exact
// InboxBuffer bound below LargeClusterNodes, capped at a constant slot
// count above it. Past the cap an overflow is possible in principle
// but the per-tick arrivals at one inbox are Binomial(n·fanout, 1/n) —
// mean fanout — so the tail beyond 64·(fanout+1) slots is vanishingly
// small; if it ever hits, it is a deterministic, counted Dropped, not
// an error.
func DefaultInboxBuffer(n, fanout int) int {
	full := InboxBuffer(n, fanout)
	if capped := 64 * (fanout + 1); n >= LargeClusterNodes && capped < full {
		return capped
	}
	return full
}

// gossiper is the per-node protocol state shared by both modes.
type gossiper interface {
	// absorb ingests one packet, reporting whether it was innovative.
	// The packet is the caller's reused scratch: implementations must
	// copy anything they retain past the call.
	absorb(p *wire.Packet) bool
	// emitInto draws one fresh packet to push into the caller-owned
	// scratch, or reports false if the node has nothing to say yet.
	emitInto(p *wire.Packet, epoch int) bool
	// complete reports whether the node holds all k tokens.
	complete() bool
	// progress is the node's decoding progress (span rank, or token
	// count in forward mode) — the telemetry time series' rank column.
	progress() int
	// verify checks the node's final state against the originals.
	verify(toks []token.Token) error
}

// TokenVec flattens a token to the bit vector coded gossip codes over:
// 64 UID bits (LSB-first) followed by the payload. Coding the UID
// alongside the payload keeps the coded and forward modes
// information-equivalent, so their Bits() costs are honestly
// comparable. It is shared node plumbing: internal/stream codes every
// generation with the same flattening so stream and cluster packets are
// byte-compatible.
func TokenVec(t token.Token) gf.BitVec {
	v := gf.NewBitVec(token.UIDBits + t.D())
	u := uint64(t.UID)
	for b := 0; b < token.UIDBits; b++ {
		if u>>uint(b)&1 == 1 {
			v.Set(b, true)
		}
	}
	t.Payload.CopyInto(v, token.UIDBits)
	return v
}

// VecToken inverts TokenVec.
func VecToken(v gf.BitVec) token.Token {
	var u uint64
	for b := 0; b < token.UIDBits; b++ {
		if v.Bit(b) {
			u |= 1 << uint(b)
		}
	}
	return token.Token{UID: token.UID(u), Payload: v.Slice(token.UIDBits, v.Len())}
}

// codedNode gossips random linear combinations of its span.
type codedNode struct {
	id   int
	span *rlnc.Span
	rng  *rand.Rand
}

func (c *codedNode) absorb(p *wire.Packet) bool {
	if p.Env.Type != wire.TypeCoded {
		return false
	}
	cd := p.Coded
	if cd.K != c.span.K() || cd.Vec.Len() != c.span.K()+c.span.PayloadBits() {
		return false
	}
	// Span.Add copies the vector into the basis slab, so handing it the
	// caller's scratch is safe.
	return c.span.Add(cd)
}

func (c *codedNode) emitInto(p *wire.Packet, epoch int) bool {
	if !c.span.RandomCombinationInto(&p.Coded, c.rng) {
		return false
	}
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeCoded, Sender: uint32(c.id), Epoch: uint32(epoch)}
	return true
}

func (c *codedNode) complete() bool { return c.span.CanDecode() }

func (c *codedNode) progress() int { return c.span.Rank() }

func (c *codedNode) verify(toks []token.Token) error {
	vecs, err := c.span.Decode()
	if err != nil {
		return fmt.Errorf("node %d: %w", c.id, err)
	}
	for i, v := range vecs {
		if got := VecToken(v); !got.Equal(toks[i]) {
			return fmt.Errorf("node %d: token %d decoded to %v, want %v", c.id, i, got.UID, toks[i].UID)
		}
	}
	return nil
}

// forwardNode gossips raw tokens, one random known token per packet.
type forwardNode struct {
	id  int
	k   int
	set *token.Set
	rng *rand.Rand
}

func (f *forwardNode) absorb(p *wire.Packet) bool {
	if p.Env.Type != wire.TypeToken {
		return false
	}
	if f.set.Has(p.Token.UID) {
		return false
	}
	// The payload aliases the caller's scratch packet; clone before
	// retaining. Novel tokens are bounded by k per node, so this is the
	// one permitted steady-state-exempt allocation.
	return f.set.Add(token.Token{UID: p.Token.UID, Payload: p.Token.Payload.Clone()})
}

func (f *forwardNode) emitInto(p *wire.Packet, epoch int) bool {
	toks := f.set.Tokens()
	if len(toks) == 0 {
		return false
	}
	// The emitted payload aliases set storage; AppendTo copies it onto
	// the wire before the packet scratch is reused.
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeToken, Sender: uint32(f.id), Epoch: uint32(epoch)}
	p.Token = toks[f.rng.Intn(len(toks))]
	return true
}

func (f *forwardNode) complete() bool { return f.set.Len() >= f.k }

func (f *forwardNode) progress() int { return f.set.Len() }

func (f *forwardNode) verify(toks []token.Token) error {
	for _, want := range toks {
		got, ok := f.set.Get(want.UID)
		if !ok || !got.Equal(want) {
			return fmt.Errorf("node %d: token %v missing or corrupted", f.id, want.UID)
		}
	}
	return nil
}

// Run disseminates toks across an n-node cluster until every live node
// holds all of them (coded: full span rank; forward: full token set),
// the context is canceled, the timeout expires, or the lockstep tick
// cap is hit. Token i starts at node i mod n. All token payloads must
// have the same bit length. On a completed run every live node's final
// state is verified against the originals before Run returns.
//
// With a Churn schedule the membership is dynamic: joiners start empty
// and bootstrap from a contact list of the nodes live at join time,
// announcing themselves with wire.TypeHello; leavers announce their
// departure; crashed nodes just go silent (their unclaimed inbox
// absorbs wasted sends as drops). A run does not complete before every
// scheduled join/restart has been applied and caught up.
func Run(ctx context.Context, cfg Config, toks []token.Token) (*Result, error) {
	k := len(toks)
	if cfg.N < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.N)
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 token")
	}
	d := toks[0].D()
	for i, t := range toks {
		if t.D() != d {
			return nil, fmt.Errorf("cluster: token %d has %d payload bits, token 0 has %d", i, t.D(), d)
		}
	}
	if cfg.Mode != Coded && cfg.Mode != Forward {
		return nil, fmt.Errorf("cluster: unknown mode %d", cfg.Mode)
	}
	if err := cfg.Churn.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Shards > 1 && !cfg.Lockstep {
		return nil, fmt.Errorf("cluster: Shards=%d requires Lockstep (the async driver is already concurrent)", cfg.Shards)
	}

	maxN := cfg.maxNodes()
	fanout := cfg.fanout()
	tr := cfg.Transport
	if tr == nil {
		extra := 0
		if cfg.Churn != nil {
			extra = 1 // hello headroom; see InboxBuffer
		}
		tr = NewChanTransport(maxN, DefaultInboxBuffer(maxN, fanout+extra))
	}
	defer tr.Close()

	res := &Result{Nodes: make([]NodeMetrics, maxN)}
	cr := &clusterRun{
		cfg:     cfg,
		toks:    toks,
		tr:      tr,
		res:     res,
		maxN:    maxN,
		fanout:  fanout,
		members: make([]*member, maxN),
		live:    make([]bool, maxN),
		ch:      NewChurner(cfg.Churn, cfg.N, maxN, cfg.Seed),
	}
	if cfg.Churn.HasTargeted() {
		cr.ranks = make([]atomic.Int64, maxN)
		cr.ch.SetRank(func(id int) int { return int(cr.ranks[id].Load()) })
	}
	if cfg.Lockstep {
		cr.exec = shard.New(maxN, cfg.shards())
		if cr.exec.Shards() > 1 {
			cr.outs = make([]*Outbox, cr.exec.Shards())
			for i := range cr.outs {
				cr.outs[i] = &Outbox{}
			}
		}
	}
	for i := 0; i < cfg.N; i++ {
		cr.live[i] = true
	}
	for i := 0; i < cfg.N; i++ {
		cr.spawn(i, true, 0)
	}

	start := time.Now()
	if cfg.Lockstep {
		cr.runLockstep(ctx)
	} else {
		cr.runAsync(ctx, start)
	}
	res.Elapsed = time.Since(start)

	for id := range res.Nodes {
		m := &res.Nodes[id]
		res.PacketsOut += m.PacketsOut
		res.PacketsIn += m.PacketsIn
		res.BitsOut += m.BitsOut
		res.Dropped += m.Dropped
		if m.Live {
			res.FinalLive++
		}
	}
	if res.Completed {
		for id, mb := range cr.members {
			if mb == nil || !res.Nodes[id].Live {
				continue
			}
			if err := mb.g.verify(toks); err != nil {
				return res, fmt.Errorf("cluster: verification failed: %w", err)
			}
		}
	}
	return res, nil
}

// nodeIO is one node's reusable packet plumbing: a tx scratch fed by
// emitInto, an rx scratch fed by UnmarshalInto, and the buffer ring
// that recycles wire buffers between the node's receive and send sides.
// Each nodeIO is owned by exactly one goroutine (see BufRing).
type nodeIO struct {
	tx   wire.Packet
	rx   wire.Packet
	ring *BufRing
}

// member bundles one node's whole runtime: the protocol gossiper, its
// membership view, randomness, metrics and packet plumbing. Like the
// nodeIO it wraps, a member is only ever touched by the goroutine (or
// lockstep slot) currently driving the node, which is what keeps churn
// restarts race-free: the old goroutine fully exits before the state
// is handed to the next incarnation.
type member struct {
	id   int
	g    gossiper
	view *View
	rng  *rand.Rand
	io   nodeIO
	m    *NodeMetrics
	// tel traces the node's protocol events; nil is the disabled state
	// (every recording call is a nil-receiver no-op). Owned by the same
	// goroutine/lockstep slot as the rest of the member.
	tel *telemetry.Recorder
	// known optionally gates peer sampling on routability: a transport
	// with an address book (udpnet) may know fewer peers than the view
	// believes live, and pushing to an unroutable peer only burns the
	// emission. Nil (every in-process run) means one Pick draw exactly,
	// which is what keeps the lockstep golden transcripts byte-stable.
	known func(int) bool
	// rank, when non-nil, publishes the node's decoding progress for
	// the targeted-crash oracle after every innovative receipt.
	rank *atomic.Int64
	// out, when non-nil, routes this node's emissions into its shard's
	// private outbox instead of the transport; the sharded lockstep
	// barrier replays them serially (see outbox.go). Nil on the async
	// and shards=1 paths, which send inline.
	out *Outbox
}

// pick samples a live peer for an emission. With a known gate it
// redraws a bounded number of times to land on a routable peer,
// returning -1 when the book is still too empty; without one it is
// exactly one View.Pick draw.
func (mb *member) pick(now int64) int {
	peer := mb.view.Pick(mb.rng, now)
	if mb.known == nil {
		return peer
	}
	for tries := 0; tries < 4 && peer >= 0 && !mb.known(peer); tries++ {
		peer = mb.view.Pick(mb.rng, now)
	}
	if peer >= 0 && !mb.known(peer) {
		return -1
	}
	return peer
}

// clusterRun is the shared run state of both drivers: the member table
// (indexed by node id, nil until spawned), the live set, and the
// churner applying the membership script.
type clusterRun struct {
	cfg     Config
	toks    []token.Token
	tr      Transport
	res     *Result
	maxN    int
	fanout  int
	members []*member
	live    []bool
	ch      *Churner
	// ranks backs the targeted-crash rank oracle (ChurnCrashMax /
	// ChurnCrashFrontier): each member publishes its decoding progress
	// here on every innovative receipt, and the churner reads it when
	// selecting victims — atomically, because the async churn
	// controller runs on its own goroutine. Nil unless the schedule
	// HasTargeted, so untargeted runs pay nothing.
	ranks []atomic.Int64
	// exec partitions the id space for the lockstep driver's parallel
	// phases (nil in async mode); outs holds one private outbox per
	// shard, nil when exec has a single shard (serial engine, inline
	// sends).
	exec *shard.Executor
	outs []*Outbox
}

// newMember builds one node's full runtime state independent of any
// driver: the gossiper (seeded with its stride-n share of the tokens
// when seedTokens), a view marking every id flagged in live, the
// node's seeded rng, and the buffer-ring packet plumbing. Both the
// in-process drivers (via spawn) and the multi-process single-node
// runtime (RunSingle) construct nodes through here, so the state —
// including the rng derivation that the lockstep golden transcripts
// pin — cannot drift between them.
func newMember(mode Mode, seed int64, toks []token.Token, id, n, maxN int, seedTokens bool, live []bool, now int64, m *NodeMetrics, tel *telemetry.Recorder) *member {
	k := len(toks)
	d := toks[0].D()
	rng := rand.New(rand.NewSource(seed + 7919*int64(id) + 1))
	var g gossiper
	switch mode {
	case Coded:
		span := rlnc.NewSpan(k, token.UIDBits+d)
		if seedTokens {
			for j := id; j < k; j += n {
				span.Add(rlnc.Encode(j, k, TokenVec(toks[j])))
			}
		}
		g = &codedNode{id: id, span: span, rng: rng}
	case Forward:
		set := token.NewSet()
		if seedTokens {
			for j := id; j < k; j += n {
				set.Add(toks[j])
			}
		}
		g = &forwardNode{id: id, k: k, set: set, rng: rng}
	}
	view := NewView(id, maxN)
	for pid, l := range live {
		if l {
			view.Mark(pid, now)
		}
	}
	mb := &member{id: id, g: g, view: view, rng: rng, m: m, tel: tel}
	mb.io.ring = NewBufRing(DefaultRingCap)
	mb.m.Spawned = true
	mb.m.Live = true
	return mb
}

// spawn builds (or wipes) the member for id. Initial members seed
// their share of the tokens; joiners start empty. The view is a
// snapshot of the nodes currently live — a joiner's contact list.
func (cr *clusterRun) spawn(id int, seedTokens bool, now int64) *member {
	mb := newMember(cr.cfg.Mode, cr.cfg.Seed, cr.toks, id, cr.cfg.N, cr.maxN, seedTokens, cr.live, now, &cr.res.Nodes[id], cr.cfg.Telemetry)
	if cr.ranks != nil {
		mb.rank = &cr.ranks[id]
		mb.rank.Store(int64(mb.g.progress()))
	}
	if cr.outs != nil {
		mb.out = cr.outs[cr.exec.ShardOf(id)]
	}
	cr.members[id] = mb
	return mb
}

// recv decodes one drained inbox buffer into the member's rx scratch,
// folds membership information out of it (every packet proves its
// sender live; hellos carry views and leave announcements), and feeds
// gossip packets to the gossiper. It reports innovation. PacketsIn
// counts gossip payload packets only — hellos are control traffic,
// visible in the metrics as HellosOut plus their BitsOut, so the
// in/out packet counters reconcile under churn.
func (mb *member) recv(raw []byte, now int64) bool {
	if !DecodeRecycle(&mb.io.rx, mb.io.ring, raw) {
		return false
	}
	p := &mb.io.rx
	sender := int(p.Env.Sender)
	if p.Env.Type == wire.TypeHello {
		if p.Hello.Leaving {
			mb.tel.Event(mb.id, now, telemetry.KindRecvHello, int64(sender), 1, 0)
			mb.view.Remove(sender)
			return false
		}
		mb.tel.Event(mb.id, now, telemetry.KindRecvHello, int64(sender), 0, 0)
		mb.view.Mark(sender, now)
		for _, pid := range p.Hello.Peers {
			// Third-party introductions never refresh a known peer's
			// stamp (see View.Introduce).
			mb.view.Introduce(int(pid), now)
		}
		return false
	}
	mb.m.PacketsIn++
	mb.view.Mark(sender, now)
	innovative := mb.g.absorb(p)
	if innovative && mb.rank != nil {
		mb.rank.Store(int64(mb.g.progress()))
	}
	if mb.tel != nil { // progress() is only worth computing when tracing
		mb.tel.Event(mb.id, now, telemetry.KindRecv, int64(sender), int64(p.Env.Epoch), 0)
		c := int64(0)
		if innovative {
			c = 1
		}
		mb.tel.Event(mb.id, now, telemetry.KindInsert, int64(p.Env.Epoch), int64(mb.g.progress()), c)
	}
	return innovative
}

// emit pushes up to fanout fresh packets to random view peers: emitInto
// fills the tx scratch, AppendTo marshals it into a recycled buffer,
// and a dropped Send returns the buffer to the ring — the steady-state
// path touches the allocator not at all. A member with nothing to
// gossip yet (a joiner before its first packet) instead announces
// itself to one random peer when churn is on, so peers learn to push
// to it even if its join-time hello burst was lost.
func (mb *member) emit(tr Transport, fanout int, now int64, churn bool) {
	if mb.view.LiveCount() < 2 {
		return
	}
	for f := 0; f < fanout; f++ {
		if !mb.g.emitInto(&mb.io.tx, int(mb.m.PacketsOut)) {
			if f == 0 && churn {
				if peer := mb.pick(now); peer >= 0 {
					mb.buildHello(false)
					mb.sendHello(tr, peer, now)
				}
			}
			return
		}
		peer := mb.pick(now)
		if peer < 0 {
			return
		}
		mb.m.PacketsOut++
		bits := int64(mb.io.tx.Bits())
		mb.m.BitsOut += bits
		buf := mb.io.tx.AppendTo(mb.io.ring.Get()[:0])
		if mb.out != nil {
			// Sharded emit phase: counters and bytes are per-node state,
			// captured here in parallel; the Send and its telemetry happen
			// at the serial barrier, in the serial driver's order.
			mb.out.Add(OutEntry{From: mb.id, To: peer, Kind: OutData,
				Arg: int64(mb.io.tx.Env.Epoch), Bits: bits, Buf: buf})
			continue
		}
		mb.tel.Event(mb.id, now, telemetry.KindSend, int64(peer), int64(mb.io.tx.Env.Epoch), bits)
		if !tr.Send(mb.id, peer, buf) {
			mb.m.Dropped++
			mb.tel.Event(mb.id, now, telemetry.KindDrop, int64(peer), 0, 0)
			mb.io.ring.Put(buf)
		}
	}
}

// sample records one telemetry time-series point for the node: rank
// progress, inbox backlog, live-view size. A no-op without a recorder.
func (mb *member) sample(tr Transport, now int64) {
	if mb.tel == nil {
		return
	}
	mb.tel.Sample(mb.id, now, mb.g.progress(), 0, len(tr.Recv(mb.id)), mb.view.LiveCount())
}

// buildHello fills the tx scratch with a membership announcement
// carrying the member's current live view.
func (mb *member) buildHello(leaving bool) {
	tx := &mb.io.tx
	tx.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeHello, Sender: uint32(mb.id), Epoch: 0}
	tx.Hello.Leaving = leaving
	tx.Hello.Peers = mb.view.AppendPeers(tx.Hello.Peers[:0])
}

// sendHello marshals the tx scratch (a hello built by buildHello) to
// one peer, with the usual ring-buffer recycling.
func (mb *member) sendHello(tr Transport, peer int, now int64) {
	mb.m.HellosOut++
	mb.m.BitsOut += int64(mb.io.tx.Bits())
	leaving := int64(0)
	if mb.io.tx.Hello.Leaving {
		leaving = 1
	}
	buf := mb.io.tx.AppendTo(mb.io.ring.Get()[:0])
	if mb.out != nil {
		mb.out.Add(OutEntry{From: mb.id, To: peer, Kind: OutHello, Arg: leaving, Buf: buf})
		return
	}
	mb.tel.Event(mb.id, now, telemetry.KindSendHello, int64(peer), leaving, 0)
	if !tr.Send(mb.id, peer, buf) {
		mb.m.Dropped++
		mb.tel.Event(mb.id, now, telemetry.KindDrop, int64(peer), 0, 0)
		mb.io.ring.Put(buf)
	}
}

// helloAll announces to every peer currently in the view: the
// join/restart introduction burst, or the graceful-leave goodbye.
//
// It always sends inline, even on a sharded run: helloAll only runs
// from the serial churn phase (lockstep) or the async drivers, and the
// serial engine delivers churn-phase hellos to inboxes drained the
// same tick — routing them through the shard outbox would defer them
// past the drain and change the transcript.
func (mb *member) helloAll(tr Transport, leaving bool, now int64) {
	out := mb.out
	mb.out = nil
	defer func() { mb.out = out }()
	mb.buildHello(leaving)
	for _, pid := range mb.io.tx.Hello.Peers {
		if int(pid) != mb.id {
			mb.sendHello(tr, int(pid), now)
		}
	}
}

// applyLockstep executes one churn operation under the lockstep
// driver. The churner has already flipped cr.live.
func (cr *clusterRun) applyLockstep(op ChurnOp, tick int) {
	m := &cr.res.Nodes[op.ID]
	tel := cr.cfg.Telemetry
	switch op.Kind {
	case ChurnJoin, ChurnRejoin:
		mb := cr.spawn(op.ID, false, int64(tick))
		m.Done = false
		m.DoneTick = 0
		m.JoinTick = tick
		tel.Event(op.ID, int64(tick), telemetry.KindJoin, 0, 0, 0)
		mb.helloAll(cr.tr, false, int64(tick))
	case ChurnRestart:
		mb := cr.members[op.ID]
		m.Live = true
		m.JoinTick = tick
		tel.Event(op.ID, int64(tick), telemetry.KindRestart, 0, 0, 0)
		mb.helloAll(cr.tr, false, int64(tick))
	case ChurnLeave:
		tel.Event(op.ID, int64(tick), telemetry.KindLeave, 0, 0, 0)
		cr.members[op.ID].helloAll(cr.tr, true, int64(tick))
		m.Live = false
	case ChurnCrash:
		tel.Event(op.ID, int64(tick), telemetry.KindCrash, 0, 0, 0)
		m.Live = false
	}
}

// runLockstep is the deterministic driver: per tick, churn events
// apply, every live node drains its inbox in id order, completion is
// recorded, then every live node emits. With a seeded Config the whole
// run — middleware coin flips, churn victims, everything — is a pure
// function of the seed; context cancellation (checked once per tick)
// only ever cuts a run short, it cannot change the ticks that did
// execute.
//
// With Config.Shards > 1 the per-node phases (telemetry sampling,
// inbox drain, emission) fan out across cr.exec's workers — each
// touches only state owned by its id range — while everything
// order-sensitive stays serial at the barriers: tick observation,
// churn, the completion scan, and the outbox replay that performs the
// actual Sends in ascending id order (see outbox.go). The phase
// boundaries are identical at every shard count, which is what the
// bit-equality property tests pin.
func (cr *clusterRun) runLockstep(ctx context.Context) {
	cfg, res := cr.cfg, cr.res
	complete := func(tick int) bool {
		all := true
		for id, mb := range cr.members {
			if mb == nil {
				continue
			}
			m := &res.Nodes[id]
			if !m.Done && mb.g.complete() {
				m.Done = true
				m.DoneTick = tick
			}
			if cr.live[id] {
				all = all && m.Done
			}
		}
		return all && !cr.ch.PendingAdds()
	}
	if complete(0) {
		res.Completed = true
		return
	}
	for tick := 1; tick <= cfg.maxTicks(); tick++ {
		select {
		case <-ctx.Done():
			res.Ticks = tick - 1
			return
		default:
		}
		ObserveTick(cr.tr, int64(tick))
		for _, op := range cr.ch.PopUntil(tick, cr.live) {
			cr.applyLockstep(op, tick)
		}
		cr.exec.Run(func(_, lo, hi int) {
			if cr.cfg.Telemetry != nil {
				// Sample before the drain so inbox depth shows the backlog
				// queued by the previous emit phase.
				for id := lo; id < hi; id++ {
					if mb := cr.members[id]; mb != nil && cr.live[id] {
						cr.cfg.Telemetry.SampleTick(id, int64(tick),
							mb.g.progress(), 0, len(cr.tr.Recv(id)), mb.view.LiveCount())
					}
				}
			}
			for id := lo; id < hi; id++ {
				mb := cr.members[id]
				if mb == nil || !cr.live[id] {
					continue
				}
				m := &res.Nodes[id]
				inbox := cr.tr.Recv(id)
				for drained := false; !drained; {
					select {
					case raw := <-inbox:
						if mb.recv(raw, int64(tick)) {
							m.Innovative++
						}
					default:
						drained = true
					}
				}
			}
		})
		if complete(tick) {
			res.Completed = true
			res.Ticks = tick
			return
		}
		cr.exec.Run(func(_, lo, hi int) {
			for id := lo; id < hi; id++ {
				if mb := cr.members[id]; mb != nil && cr.live[id] {
					mb.emit(cr.tr, cr.fanout, int64(tick), cr.ch != nil)
				}
			}
		})
		cr.flushOutboxes(int64(tick))
	}
	res.Ticks = cfg.maxTicks()
}

// flushOutboxes is the exchange barrier of a sharded tick: it replays
// every shard's deferred emissions against the real transport in
// (shard, node id, emission order) order — ascending node id, exactly
// the serial driver's send order — performing the middleware-visible
// Send, the send/drop telemetry, and the drop accounting that could
// not run in parallel. A no-op on the serial engine (outs is nil).
func (cr *clusterRun) flushOutboxes(now int64) {
	for _, ob := range cr.outs {
		for _, e := range ob.Entries() {
			mb := cr.members[e.From]
			switch e.Kind {
			case OutData:
				mb.tel.Event(e.From, now, telemetry.KindSend, int64(e.To), e.Arg, e.Bits)
			case OutHello:
				mb.tel.Event(e.From, now, telemetry.KindSendHello, int64(e.To), e.Arg, 0)
			}
			if !cr.tr.Send(e.From, e.To, e.Buf) {
				mb.m.Dropped++
				mb.tel.Event(e.From, now, telemetry.KindDrop, int64(e.To), 0, 0)
				mb.io.ring.Put(e.Buf)
			}
		}
		ob.Reset()
	}
}

// batchAdds reports whether a popped churn batch contains any
// membership-adding operation (join, restart, rejoin).
func batchAdds(ops []ChurnOp) bool {
	for _, op := range ops {
		switch op.Kind {
		case ChurnJoin, ChurnRestart, ChurnRejoin:
			return true
		}
	}
	return false
}

// tracker is the async drivers' completion accounting, redesigned for
// a changing population: instead of a fixed countdown it re-evaluates
// "is every live node done, with no membership additions pending"
// under one mutex, which node goroutines update on completion and the
// churn controller updates on every membership change.
type tracker struct {
	mu          sync.Mutex
	res         *Result
	live        []bool
	addsPending bool
	allDone     chan struct{}
	closed      bool
}

func (t *tracker) markDone(id int, g gossiper, at time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := &t.res.Nodes[id]
	if m.Done || !g.complete() {
		return
	}
	m.Done = true
	m.DoneAt = at
	t.check()
}

// check closes allDone when the run is complete. Callers hold mu.
func (t *tracker) check() {
	if t.closed || t.addsPending {
		return
	}
	for id, l := range t.live {
		if l && !t.res.Nodes[id].Done {
			return
		}
	}
	t.closed = true
	close(t.allDone)
}

// runAsync is the goroutine-per-node execution: ticker-paced emission
// plus an immediate push after every innovative receipt, with a churn
// controller goroutine applying membership events at At×Interval wall
// offsets — canceling crashed/leaving nodes (and joining on their
// exit before flipping liveness, so member state never has two
// owners) and spawning joiners.
func (cr *clusterRun) runAsync(ctx context.Context, start time.Time) {
	cfg := cr.cfg
	ctx, cancel := context.WithTimeout(ctx, cfg.timeout())
	defer cancel()

	tk := &tracker{res: cr.res, live: cr.live, addsPending: cr.ch.PendingAdds(), allDone: make(chan struct{})}
	cancels := make([]context.CancelFunc, cr.maxN)
	exited := make([]chan struct{}, cr.maxN)
	var leaving []atomic.Bool
	if cr.ch != nil {
		leaving = make([]atomic.Bool, cr.maxN)
	}

	var wg sync.WaitGroup
	spawnNode := func(id int, announce bool) {
		nodeCtx, nodeCancel := context.WithCancel(ctx)
		cancels[id] = nodeCancel
		stop := make(chan struct{})
		exited[id] = stop
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(stop)
			mb := cr.members[id]
			m := mb.m
			now := func() int64 { return int64(time.Since(start)) }
			if announce {
				mb.helloAll(cr.tr, false, now())
			}
			markDone := func() { tk.markDone(id, mb.g, time.Since(start)) }
			markDone() // n == 1 or a node seeded with everything
			emit := func() { mb.emit(cr.tr, cr.fanout, now(), cr.ch != nil) }
			ticker := time.NewTicker(cfg.interval())
			defer ticker.Stop()
			for {
				select {
				case <-nodeCtx.Done():
					if leaving != nil && leaving[id].Load() {
						mb.helloAll(cr.tr, true, now())
					}
					return
				case raw := <-cr.tr.Recv(id):
					if mb.recv(raw, now()) {
						m.Innovative++
						markDone()
						emit()
					}
				case <-ticker.C:
					mb.sample(cr.tr, now())
					emit()
				}
			}
		}()
	}
	for id := 0; id < cfg.N; id++ {
		spawnNode(id, false)
	}

	if cr.ch != nil {
		wg.Add(1)
		go func() { // churn controller
			defer wg.Done()
			for {
				at, ok := cr.ch.NextAt()
				if !ok {
					return
				}
				timer := time.NewTimer(time.Until(start.Add(time.Duration(at) * cfg.interval())))
				select {
				case <-ctx.Done():
					timer.Stop()
					return
				case <-timer.C:
				}
				tk.mu.Lock()
				ops := append([]ChurnOp(nil), cr.ch.PopUntil(at, tk.live)...)
				// Completion stays blocked until this batch's adds are
				// applied too: PopUntil already flipped liveness, but a
				// restart/rejoin below must reset its node's stale Done
				// before any check() may trust the live set.
				tk.addsPending = cr.ch.PendingAdds() || batchAdds(ops)
				tk.mu.Unlock()
				for _, op := range ops {
					m := &cr.res.Nodes[op.ID]
					// Churn events are recorded here, where the node's
					// goroutine is provably not running (after its exit, or
					// before its spawn), preserving single-owner rings.
					tel := cr.cfg.Telemetry
					switch op.Kind {
					case ChurnCrash, ChurnLeave:
						if op.Kind == ChurnLeave {
							leaving[op.ID].Store(true)
						}
						cancels[op.ID]()
						<-exited[op.ID]
						leaving[op.ID].Store(false)
						if op.Kind == ChurnLeave {
							tel.Event(op.ID, int64(time.Since(start)), telemetry.KindLeave, 0, 0, 0)
						} else {
							tel.Event(op.ID, int64(time.Since(start)), telemetry.KindCrash, 0, 0, 0)
						}
						tk.mu.Lock()
						m.Live = false
						tk.check()
						tk.mu.Unlock()
					case ChurnJoin, ChurnRejoin:
						tk.mu.Lock()
						cr.spawn(op.ID, false, int64(time.Since(start)))
						m.Done = false
						m.JoinAt = time.Since(start)
						tk.mu.Unlock()
						tel.Event(op.ID, int64(time.Since(start)), telemetry.KindJoin, 0, 0, 0)
						spawnNode(op.ID, true)
					case ChurnRestart:
						tk.mu.Lock()
						m.Live = true
						m.JoinAt = time.Since(start)
						tk.mu.Unlock()
						tel.Event(op.ID, int64(time.Since(start)), telemetry.KindRestart, 0, 0, 0)
						spawnNode(op.ID, true)
					}
				}
				tk.mu.Lock()
				tk.addsPending = cr.ch.PendingAdds()
				tk.check() // e.g. a restarted already-done node closes the run
				tk.mu.Unlock()
			}
		}()
	}

	select {
	case <-tk.allDone:
		cr.res.Completed = true
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
}

package cluster

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/token"
)

func testTokens(k, d int, seed int64) []token.Token {
	return token.RandomSet(k, d, rand.New(rand.NewSource(seed)))
}

func TestLockstepCodedCompletesUnderLoss(t *testing.T) {
	const n, k, d = 16, 16, 64
	toks := testTokens(k, d, 1)
	tr := WithLoss(NewChanTransport(n, n*2+1), 0.3, 99)
	res, err := Run(context.Background(), Config{N: n, Seed: 5, Lockstep: true, Transport: tr}, toks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not completed in %d ticks", res.Ticks)
	}
	if res.Dropped == 0 {
		t.Error("loss middleware dropped nothing at rate 0.3")
	}
	if res.PacketsOut == 0 || res.BitsOut == 0 {
		t.Error("metrics not recorded")
	}
	for id, m := range res.Nodes {
		if !m.Done || m.DoneTick < 1 || m.DoneTick > res.Ticks {
			t.Errorf("node %d: done=%v tick=%d (run ticks %d)", id, m.Done, m.DoneTick, res.Ticks)
		}
	}
}

func TestLockstepForwardCompletes(t *testing.T) {
	const n, k, d = 12, 12, 32
	res, err := Run(context.Background(), Config{N: n, Seed: 3, Mode: Forward, Lockstep: true}, testTokens(k, d, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("forward gossip not completed in %d ticks", res.Ticks)
	}
}

// TestLockstepDeterministic is the reproducibility contract: identical
// seeds give identical runs, tick for tick and counter for counter.
func TestLockstepDeterministic(t *testing.T) {
	run := func(seed int64) *Result {
		const n, k, d = 10, 10, 48
		tr := WithLoss(NewChanTransport(n, n*2+1), 0.25, seed*17+1)
		res, err := Run(context.Background(), Config{N: n, Seed: seed, Lockstep: true, Transport: tr}, testTokens(k, d, 7))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("run did not complete")
		}
		return res
	}
	a, b := run(4), run(4)
	if a.Ticks != b.Ticks || a.PacketsOut != b.PacketsOut || a.PacketsIn != b.PacketsIn ||
		a.BitsOut != b.BitsOut || a.Dropped != b.Dropped {
		t.Fatalf("same seed, different aggregates: %+v vs %+v", a, b)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("same seed, node %d differs: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
	if c := run(5); c.Ticks == a.Ticks && c.PacketsOut == a.PacketsOut && c.Dropped == a.Dropped {
		t.Log("different seed produced identical aggregates (possible but unlikely)")
	}
}

func TestAsyncCodedSmall(t *testing.T) {
	const n, k, d = 8, 8, 64
	res, err := Run(context.Background(), Config{N: n, Seed: 2, Timeout: 10 * time.Second}, testTokens(k, d, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("async run did not complete")
	}
	for id, m := range res.Nodes {
		if !m.Done || m.DoneAt <= 0 {
			t.Errorf("node %d: done=%v at %v", id, m.Done, m.DoneAt)
		}
	}
}

// TestAsyncUnderHostileTransport drives the full middleware stack —
// loss, delay and reordering — concurrently; it is the -race workout
// for the whole runtime and is skipped under -short to keep tier-1
// fast.
func TestAsyncUnderHostileTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test skipped with -short")
	}
	const n, k, d = 24, 16, 128
	var tr Transport = NewChanTransport(n, 4*n)
	tr = WithDelay(tr, 50*time.Microsecond, 2*time.Millisecond, 10)
	tr = WithReorder(tr, 0.3, 11)
	tr = WithLoss(tr, 0.2, 12)
	res, err := Run(context.Background(), Config{N: n, Seed: 6, Transport: tr, Timeout: 20 * time.Second},
		testTokens(k, d, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete under loss+delay+reorder")
	}
	if res.Dropped == 0 {
		t.Error("no drops recorded at loss 0.2")
	}
}

func TestAsyncForwardCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test skipped with -short")
	}
	const n, k, d = 12, 12, 32
	res, err := Run(context.Background(), Config{N: n, Seed: 9, Mode: Forward, Timeout: 10 * time.Second},
		testTokens(k, d, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("async forward run did not complete")
	}
}

// TestPartitionBlocksThenHeals splits the cluster in two halves holding
// disjoint token sets: while the cut is up no node can finish; healing
// it lets the run complete.
func TestPartitionBlocksThenHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test skipped with -short")
	}
	const n, k, d = 8, 8, 64
	cut := func(from, to int) bool { return (from < n/2) != (to < n/2) }

	// Permanent partition: must time out incomplete.
	tr := WithPartition(NewChanTransport(n, 4*n), cut)
	res, err := Run(context.Background(), Config{N: n, Seed: 1, Transport: tr, Timeout: 300 * time.Millisecond},
		testTokens(k, d, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("completed across a permanent partition")
	}

	// Healed partition: an atomic flag drops the cut mid-run.
	var partitioned atomic.Bool
	partitioned.Store(true)
	tr = WithPartition(NewChanTransport(n, 4*n), func(from, to int) bool {
		return partitioned.Load() && cut(from, to)
	})
	heal := time.AfterFunc(100*time.Millisecond, func() { partitioned.Store(false) })
	defer heal.Stop()
	res, err = Run(context.Background(), Config{N: n, Seed: 1, Transport: tr, Timeout: 15 * time.Second},
		testTokens(k, d, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete after the partition healed")
	}
}

// TestFullMiddlewareStackThenHeal composes all four transport
// middlewares at once — WithLoss ∘ WithDelay ∘ WithReorder ∘
// WithPartition — over a cluster split into halves holding disjoint
// tokens. While the cut is up no run can complete; once the blocked
// predicate flips to false, dissemination must finish through the full
// hostile stack.
func TestFullMiddlewareStackThenHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test skipped with -short")
	}
	const n, k, d = 12, 12, 64
	cut := func(from, to int) bool { return (from < n/2) != (to < n/2) }
	var partitioned atomic.Bool

	stack := func() Transport {
		var tr Transport = NewChanTransport(n, 8*n)
		tr = WithPartition(tr, func(from, to int) bool {
			return partitioned.Load() && cut(from, to)
		})
		tr = WithReorder(tr, 0.3, 31)
		tr = WithDelay(tr, 50*time.Microsecond, time.Millisecond, 32)
		tr = WithLoss(tr, 0.15, 33)
		return tr
	}

	// Permanent partition under the full stack: must time out incomplete.
	partitioned.Store(true)
	res, err := Run(context.Background(), Config{N: n, Seed: 2, Transport: stack(), Timeout: 400 * time.Millisecond},
		testTokens(k, d, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("completed across a permanent partition")
	}

	// Heal mid-run: the same stack must then deliver everything.
	partitioned.Store(true)
	heal := time.AfterFunc(100*time.Millisecond, func() { partitioned.Store(false) })
	defer heal.Stop()
	res, err = Run(context.Background(), Config{N: n, Seed: 2, Transport: stack(), Timeout: 20 * time.Second},
		testTokens(k, d, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete after the partition healed under loss+delay+reorder")
	}
	if res.Dropped == 0 {
		t.Error("no drops recorded with loss 0.15 plus a temporary partition")
	}
}

// TestStackedMiddlewaresDeliver checks the composed stack at the
// transport level, without the runtime: a blocked partition stops every
// packet no matter what loss/delay/reorder do above it, and once
// blocked is false every packet the stack accepts arrives intact at its
// addressee, exactly once (delay and reorder never lose or duplicate
// accepted packets).
func TestStackedMiddlewaresDeliver(t *testing.T) {
	const sends = 400
	stack := func(blocked *atomic.Bool) (Transport, *ChanTransport) {
		inner := NewChanTransport(2, sends+1)
		var tr Transport = WithPartition(inner, func(from, to int) bool { return blocked.Load() })
		tr = WithReorder(tr, 0.4, 41)
		tr = WithDelay(tr, 0, 2*time.Millisecond, 42)
		tr = WithLoss(tr, 0.25, 43)
		return tr, inner
	}

	// Blocked cut: nothing may reach the inbox, however long we wait for
	// the delay/reorder layers to flush.
	var blocked atomic.Bool
	blocked.Store(true)
	cutTr, cutInner := stack(&blocked)
	for i := 0; i < 50; i++ {
		cutTr.Send(0, 1, []byte{byte(i)})
	}
	time.Sleep(20 * time.Millisecond)
	select {
	case p := <-cutInner.Recv(1):
		t.Fatalf("packet %d delivered across a blocked partition", p[0])
	default:
	}

	// Healed cut: the stack delivers what it accepts, without duplicates.
	var healed atomic.Bool
	tr, _ := stack(&healed)
	accepted := 0
	for i := 0; i < sends; i++ {
		if tr.Send(0, 1, []byte{byte(i)}) {
			accepted++
		}
	}
	deadline := time.After(2 * time.Second)
	var got []byte
	for len(got) < accepted-1 { // reorder may park one packet forever
		select {
		case p := <-tr.Recv(1):
			got = append(got, p[0])
		case <-deadline:
			t.Fatalf("only %d of %d accepted packets arrived", len(got), accepted)
		}
	}
	frac := float64(accepted) / sends
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("accepted fraction %.2f at loss 0.25, want ~0.75", frac)
	}
	counts := make(map[byte]int)
	for _, b := range got {
		counts[b]++
	}
	for b, c := range counts {
		// Packet payloads repeat every 256 sends; with 400 sends a byte
		// value may legitimately arrive twice, never three times.
		if c > 2 {
			t.Fatalf("packet %d delivered %d times through the stack", b, c)
		}
	}
}

func TestChanTransportDropsOnFullInbox(t *testing.T) {
	tr := NewChanTransport(2, 1)
	if !tr.Send(0, 1, []byte{1}) {
		t.Fatal("first send dropped")
	}
	if tr.Send(0, 1, []byte{2}) {
		t.Error("send into a full inbox accepted")
	}
	if tr.Send(0, 5, []byte{3}) {
		t.Error("send to an out-of-range node accepted")
	}
	tr.Close()
	tr.Close() // idempotent
	if tr.Send(0, 1, []byte{4}) {
		t.Error("send after Close accepted")
	}
}

// TestChanTransportRecvOutOfRange pins the bounds contract on the
// receive side: an id outside [0, n) must yield a nil (forever-
// blocking) channel, not an index panic, mirroring Send's drop
// behavior. Regression test for the one transport method that indexed
// without a bounds check.
func TestChanTransportRecvOutOfRange(t *testing.T) {
	tr := NewChanTransport(2, 1)
	defer tr.Close()
	for _, id := range []int{-1, 2, 100} {
		if ch := tr.Recv(id); ch != nil {
			t.Errorf("Recv(%d) returned a live channel for an out-of-range id", id)
		}
	}
	if ch := tr.Recv(1); ch == nil {
		t.Error("Recv(1) returned nil for an in-range id")
	}
	// The nil channel must compose with select-based receive loops: a
	// receive from it blocks rather than panicking or yielding.
	select {
	case <-tr.Recv(7):
		t.Error("receive on out-of-range inbox yielded a value")
	default:
	}
}

func TestWithLossRate(t *testing.T) {
	const sends = 10000
	tr := WithLoss(NewChanTransport(2, sends), 0.3, 1)
	delivered := 0
	for i := 0; i < sends; i++ {
		if tr.Send(0, 1, []byte{0}) {
			delivered++
		}
	}
	frac := float64(delivered) / sends
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("delivered fraction %.3f at loss 0.3, want ~0.7", frac)
	}
	if same := WithLoss(tr, 0, 1); same != tr {
		t.Error("zero loss rate should be the identity decorator")
	}
}

func TestWithReorderDeliversAllOutOfOrder(t *testing.T) {
	const msgs = 200
	inner := NewChanTransport(2, msgs+1)
	tr := WithReorder(inner, 0.5, 2)
	for i := 0; i < msgs; i++ {
		tr.Send(0, 1, []byte{byte(i)})
	}
	var got []byte
drain:
	for {
		select {
		case p := <-tr.Recv(1):
			got = append(got, p[0])
		default:
			break drain
		}
	}
	// At most one packet may still be parked in the hold-back slot.
	if len(got) < msgs-1 {
		t.Fatalf("only %d of %d packets delivered", len(got), msgs)
	}
	seen := make(map[byte]bool)
	inOrder := true
	for i, b := range got {
		if seen[b] {
			t.Fatalf("packet %d duplicated", b)
		}
		seen[b] = true
		if i > 0 && got[i-1] > b {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("no reordering observed at rate 0.5")
	}
}

func TestWithDelayDeliversLater(t *testing.T) {
	inner := NewChanTransport(2, 4)
	tr := WithDelay(inner, 5*time.Millisecond, 10*time.Millisecond, 3)
	start := time.Now()
	tr.Send(0, 1, []byte{7})
	select {
	case <-tr.Recv(1):
		if since := time.Since(start); since < 4*time.Millisecond {
			t.Errorf("packet arrived after %v, want >= ~5ms", since)
		}
	case <-time.After(time.Second):
		t.Fatal("delayed packet never arrived")
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	toks := testTokens(4, 8, 1)
	if _, err := Run(ctx, Config{N: 0, Lockstep: true}, toks); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(ctx, Config{N: 4, Lockstep: true}, nil); err == nil {
		t.Error("no tokens accepted")
	}
	mixed := append(testTokens(2, 8, 1), testTokens(1, 16, 2)...)
	if _, err := Run(ctx, Config{N: 4, Lockstep: true}, mixed); err == nil {
		t.Error("mixed payload sizes accepted")
	}
	if _, err := Run(ctx, Config{N: 4, Mode: Mode(9), Lockstep: true}, toks); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestSingleNodeCompletesImmediately covers the degenerate cluster.
func TestSingleNodeCompletesImmediately(t *testing.T) {
	for _, mode := range []Mode{Coded, Forward} {
		res, err := Run(context.Background(), Config{N: 1, Mode: mode, Lockstep: true}, testTokens(3, 8, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || res.Ticks != 0 {
			t.Errorf("mode %v: completed=%v ticks=%d", mode, res.Completed, res.Ticks)
		}
	}
}

// TestLockstepCapReportsIncomplete pins the MaxTicks behaviour: hitting
// the cap yields Completed == false, not an error.
func TestLockstepCapReportsIncomplete(t *testing.T) {
	const n = 8
	tr := WithLoss(NewChanTransport(n, 4*n), 0.999, 1)
	res, err := Run(context.Background(), Config{N: n, Seed: 1, Lockstep: true, Transport: tr, MaxTicks: 20},
		testTokens(n, 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("completed at 99.9% loss in 20 ticks")
	}
	if res.Ticks != 20 {
		t.Errorf("ticks = %d, want the 20-tick cap", res.Ticks)
	}
}

// TestLockstepObservesContext pins the cancellation contract the
// deterministic driver shares with the async one: a canceled context
// cuts the run short instead of grinding to the tick cap.
func TestLockstepObservesContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 8
	tr := WithLoss(NewChanTransport(n, 4*n), 0.999, 1)
	res, err := Run(ctx, Config{N: n, Seed: 1, Lockstep: true, Transport: tr, MaxTicks: 1 << 20},
		testTokens(n, 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("completed under a pre-canceled context at 99.9% loss")
	}
	if res.Ticks != 0 {
		t.Errorf("ticks = %d, want 0 for a pre-canceled context", res.Ticks)
	}
}

// TestLockstepGoldenTranscripts pins exact lockstep run fingerprints
// for both modes under loss. The values were produced by the
// pre-pooling (allocating) pipeline, so this test is the proof that the
// zero-allocation emission path — CombineInto/AppendTo/UnmarshalInto
// feeding per-node buffer rings — is bit-identical to it: any divergence
// in coin draws, emission order or buffer corruption shifts these
// counters.
func TestLockstepGoldenTranscripts(t *testing.T) {
	ctx := context.Background()
	type golden struct {
		seed                    int64
		ticks                   int
		out, in, bits, drop     int64
		fticks                  int
		fout, fin, fbits, fdrop int64
	}
	goldens := []golden{
		{1, 12, 220, 164, 23760, 56, 44, 860, 654, 82560, 206},
		{2, 12, 220, 171, 23760, 49, 64, 1260, 952, 120960, 308},
		{3, 13, 240, 181, 25920, 59, 43, 840, 635, 80640, 205},
		{4, 13, 240, 174, 25920, 66, 43, 840, 640, 80640, 200},
		{5, 16, 300, 231, 32400, 69, 70, 1380, 1058, 132480, 322},
	}
	for _, g := range goldens {
		toks := token.RandomSet(12, 32, rand.New(rand.NewSource(g.seed)))
		for _, mode := range []Mode{Coded, Forward} {
			// Each transcript is pinned with telemetry both off and on:
			// tracing only observes, so it must not shift a single coin
			// draw or counter.
			for _, traced := range []bool{false, true} {
				var rec *telemetry.Recorder
				if traced {
					rec = telemetry.New(telemetry.Config{Nodes: 10})
				}
				tr := WithLoss(NewChanTransport(10, InboxBuffer(10, 2)), 0.25, g.seed+77)
				res, err := Run(ctx, Config{N: 10, Fanout: 2, Mode: mode, Seed: g.seed, Transport: tr, Lockstep: true, Telemetry: rec}, toks)
				if err != nil {
					t.Fatalf("seed %d %v traced=%v: %v", g.seed, mode, traced, err)
				}
				if !res.Completed {
					t.Fatalf("seed %d %v traced=%v: incomplete", g.seed, mode, traced)
				}
				want := [5]int64{int64(g.ticks), g.out, g.in, g.bits, g.drop}
				if mode == Forward {
					want = [5]int64{int64(g.fticks), g.fout, g.fin, g.fbits, g.fdrop}
				}
				got := [5]int64{int64(res.Ticks), res.PacketsOut, res.PacketsIn, res.BitsOut, res.Dropped}
				if got != want {
					t.Errorf("seed %d %v traced=%v: transcript diverged from allocating pipeline: got %v, want %v", g.seed, mode, traced, got, want)
				}
				if traced {
					// The trace must reconcile with the pinned counters: every
					// send and every undelivered send was recorded.
					c := rec.Counters()
					if c["events_send"] != res.PacketsOut {
						t.Errorf("seed %d %v: traced %d sends, metrics say %d", g.seed, mode, c["events_send"], res.PacketsOut)
					}
					if c["events_drop"] != res.Dropped {
						t.Errorf("seed %d %v: traced %d drops, metrics say %d", g.seed, mode, c["events_drop"], res.Dropped)
					}
					if c["samples"] == 0 {
						t.Errorf("seed %d %v: traced run recorded no samples", g.seed, mode)
					}
				}
			}
		}
	}
}

package cluster

// The sharded lockstep engine splits every tick into parallel
// per-node phases and serial barrier phases (see runLockstep and
// DESIGN.md "Sharded lockstep engine"). Emission is the phase that
// cannot run concurrently as-is: transport middlewares (loss, reorder,
// mutators, adversaries) draw from their own seeded rngs in Send-call
// order, so Sends racing across shards would consume coins in a
// nondeterministic order and change the transcript. Instead each
// shard's workers emit into a private Outbox — per-node counters and
// the marshaled bytes are captured in parallel, since they are
// functions of per-node state only — and the serial exchange barrier
// replays the entries against the real transport in (shard, node id,
// emission order) order, which is exactly the ascending-id order the
// serial driver sends in. Everything order-sensitive (middleware
// draws, drop accounting, send/drop telemetry events) happens at
// replay time.
//
// A nil *Outbox on a node means "send inline": the async drivers and
// the shards=1 lockstep engine keep the pre-sharding path untouched.

// OutKind classifies a deferred emission so the barrier replay can
// reconstruct the kind-specific telemetry event.
type OutKind uint8

const (
	// OutData is a gossip payload packet (telemetry.KindSend).
	OutData OutKind = iota
	// OutAck is a stream cumulative ack (telemetry.KindSendAck).
	OutAck
	// OutHello is a membership announcement (telemetry.KindSendHello).
	OutHello
)

// OutEntry is one deferred Send: the marshaled packet plus what the
// serial replay needs to reproduce the inline path's side effects.
type OutEntry struct {
	From, To int
	Kind     OutKind
	// Arg is the kind-specific telemetry argument: the data epoch for
	// OutData, the acked watermark for OutAck, 1 for a leaving hello.
	Arg int64
	// Bits is the packet's Bits() accounting, replayed as the KindSend
	// event's bits argument (zero for acks and hellos, whose events
	// carry no bits column).
	Bits int64
	// Buf is the marshaled wire bytes, drawn from the emitting node's
	// BufRing; ownership passes to the replay, which returns it to that
	// ring if the transport refuses the Send.
	Buf []byte
}

// Outbox collects one shard's deferred emissions for a tick. Each
// Outbox is written by exactly one shard worker during the emit phase
// and drained by the serial barrier; it is reused across ticks.
type Outbox struct {
	entries []OutEntry
}

// Add appends one deferred emission in the node's send order.
func (o *Outbox) Add(e OutEntry) { o.entries = append(o.entries, e) }

// Entries returns the pending emissions in insertion order.
func (o *Outbox) Entries() []OutEntry { return o.entries }

// Reset empties the outbox, keeping its capacity for the next tick.
// Buf pointers are dropped so a retained entry slab cannot pin packet
// buffers past the tick that owned them.
func (o *Outbox) Reset() {
	for i := range o.entries {
		o.entries[i].Buf = nil
	}
	o.entries = o.entries[:0]
}

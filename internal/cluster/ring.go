package cluster

import "repro/internal/wire"

// BufRing is a per-node ring of reusable packet buffers — the explicit,
// sync.Pool-free recycling scheme of the zero-allocation gossip hot
// path. Ownership follows the packet flow, which is what makes reuse
// safe without locks or reference counting:
//
//   - An emitter Gets a buffer, marshals into it and hands it to
//     Transport.Send. A true return transfers ownership to the
//     transport (the buffer travels through channels, delay lines or
//     reorder holds untouched); a false return means the packet was
//     dropped before delivery and the sender Puts the buffer straight
//     back.
//   - A receiver that has fully consumed a buffer drained from its
//     inbox (decoded it into a scratch Packet, absorbed the contents)
//     Puts it into its *own* ring.
//
// Every ring is therefore touched by exactly one goroutine — the node
// that owns it — in both the lockstep and the async drivers: no locks,
// no cross-goroutine races, and under the single-threaded lockstep
// driver the recycling is fully deterministic (buffer identity never
// influences protocol decisions, so transcripts are bit-identical to
// the allocating path either way). Buffers migrate between nodes with
// the packets that carried them; in steady-state gossip every node
// receives about as many packets as it sends, so rings stay stocked and
// the emission pipeline stops allocating. A node that momentarily sends
// more than it receives falls back to fresh allocations (Get returns
// nil); one that receives more than it sends lets the surplus go to the
// GC (Put over capacity discards).
type BufRing struct {
	bufs [][]byte
}

// DefaultRingCap is the per-node ring capacity the drivers use: enough
// to cover several ticks of fanout emissions plus acks, small enough
// that a node's parked buffer memory stays trivial.
const DefaultRingCap = 64

// NewBufRing returns a ring holding at most capacity buffers.
func NewBufRing(capacity int) *BufRing {
	if capacity < 1 {
		capacity = 1
	}
	return &BufRing{bufs: make([][]byte, 0, capacity)}
}

// Get pops a recycled buffer, or returns nil when the ring is empty
// (append will then allocate, exactly as the pre-ring path did).
func (r *BufRing) Get() []byte {
	if n := len(r.bufs); n > 0 {
		b := r.bufs[n-1]
		r.bufs[n-1] = nil
		r.bufs = r.bufs[:n-1]
		return b
	}
	return nil
}

// Put recycles a buffer; over capacity it is discarded to the GC. nil
// is ignored so callers can Put unconditionally.
func (r *BufRing) Put(b []byte) {
	if b == nil || len(r.bufs) == cap(r.bufs) {
		return
	}
	r.bufs = append(r.bufs, b)
}

// DecodeRecycle is the receive half of the ring protocol, shared by the
// cluster and stream runtimes so the buffer-ownership rule lives in one
// place: decode a drained inbox buffer into the caller's scratch packet
// and recycle the buffer into the caller's own ring, reporting whether
// the decode succeeded. Recycling before the caller consumes rx is safe
// — wire.UnmarshalInto copies everything it keeps out of raw — and a
// buffer is recycled whether or not it parsed (a malformed packet's
// buffer is still a perfectly good buffer).
func DecodeRecycle(rx *wire.Packet, ring *BufRing, raw []byte) bool {
	err := wire.UnmarshalInto(rx, raw)
	ring.Put(raw)
	return err == nil
}

package cluster

// Bit-equality of the sharded lockstep engine against the serial
// driver: the tentpole property of the sharding refactor. A sharded
// run must be indistinguishable from a serial one in everything
// observable — ticks, every per-node counter, every telemetry tally —
// at every shard count, under churn and loss, for arbitrary seeds.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

// shardedClusterFingerprint runs one seeded churn×loss lockstep run at
// the given shard count and flattens everything observable into a
// string: the run aggregates, every node's full metrics struct, and
// every telemetry counter.
func shardedClusterFingerprint(t *testing.T, seed int64, shards int, mode Mode) string {
	t.Helper()
	const n, k, d = 12, 8, 48
	sched, err := ParseChurn("crash:6:1,join:9:1,leave:13:1,restart:17:1")
	if err != nil {
		t.Fatal(err)
	}
	maxN := n + sched.Joins()
	rec := telemetry.New(telemetry.Config{Nodes: maxN})
	tr := WithLoss(NewChanTransport(maxN, InboxBuffer(maxN, 3)), 0.15, seed+103)
	res, err := Run(context.Background(), Config{
		N: n, Fanout: 2, Mode: mode, Seed: seed, Transport: tr,
		Lockstep: true, Shards: shards, MaxTicks: 100000, Churn: sched, Telemetry: rec,
	}, testTokens(k, d, seed))
	if err != nil {
		t.Fatalf("seed %d shards %d: %v", seed, shards, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v ticks=%d live=%d out=%d in=%d bits=%d dropped=%d\n",
		res.Completed, res.Ticks, res.FinalLive, res.PacketsOut, res.PacketsIn, res.BitsOut, res.Dropped)
	for id, m := range res.Nodes {
		fmt.Fprintf(&b, "node %d: out=%d in=%d hellos=%d bits=%d dropped=%d innov=%d done=%v@%d spawned=%v live=%v join=%d\n",
			id, m.PacketsOut, m.PacketsIn, m.HellosOut, m.BitsOut, m.Dropped,
			m.Innovative, m.Done, m.DoneTick, m.Spawned, m.Live, m.JoinTick)
	}
	c := rec.Counters()
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, c[k])
	}
	return b.String()
}

// TestShardedLockstepBitIdentical is the quick.Check property from the
// issue: for arbitrary seeds, the sharded engine at shards 4 and
// GOMAXPROCS (and an uneven 3, which exercises ragged ranges) produces
// byte-identical transcripts to the serial driver, with churn and loss
// engaged.
func TestShardedLockstepBitIdentical(t *testing.T) {
	counts := []int{3, 4, runtime.GOMAXPROCS(0)}
	prop := func(rawSeed int64) bool {
		seed := rawSeed%10000 + 1
		serial := shardedClusterFingerprint(t, seed, 1, Coded)
		for _, shards := range counts {
			if sharded := shardedClusterFingerprint(t, seed, shards, Coded); sharded != serial {
				t.Logf("seed %d shards %d diverges:\n--- serial ---\n%s--- shards=%d ---\n%s",
					seed, shards, serial, shards, sharded)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShardedLockstepForwardMode covers the store-and-forward gossiper
// at a fixed seed: sharding lives below the gossiper interface, so
// both protocol disciplines must replay identically.
func TestShardedLockstepForwardMode(t *testing.T) {
	serial := shardedClusterFingerprint(t, 21, 1, Forward)
	for _, shards := range []int{2, 5} {
		if got := shardedClusterFingerprint(t, 21, shards, Forward); got != serial {
			t.Fatalf("forward mode diverges at shards=%d", shards)
		}
	}
}

// TestShardsRequireLockstep pins the library-level validation: the
// async driver is already concurrent, so Shards>1 without Lockstep is
// a configuration error, not a silent fallback.
func TestShardsRequireLockstep(t *testing.T) {
	_, err := Run(context.Background(), Config{N: 4, Shards: 2}, testTokens(2, 16, 1))
	if err == nil || !strings.Contains(err.Error(), "Lockstep") {
		t.Fatalf("async Shards=2 accepted: %v", err)
	}
}

package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/telemetry"
	"repro/internal/token"
)

// AddressedTransport is implemented by transports that route by an
// address book (udpnet) rather than a node-indexed table, and can
// therefore say which peers are reachable right now. RunSingle uses it
// to gate peer sampling so emissions are not burned on peers whose
// address is still unknown. Middleware decorators embed the Transport
// interface and so hide this method; callers wrapping an addressed
// transport in middlewares should pass SingleConfig.Known explicitly.
type AddressedTransport interface {
	Transport
	// Known reports whether the transport can currently route to id.
	Known(id int) bool
}

// SingleConfig parameterizes one node of a multi-process cluster run.
// Unlike Config there is no driver to spawn peers: the other N-1 nodes
// are separate processes reachable only through the Transport.
type SingleConfig struct {
	// ID is this node's id in [0, N).
	ID int
	// N is the cluster size; token i is seeded at node i mod N, so every
	// process must agree on N and on the token set (derived from the
	// shared seed) for dissemination to verify.
	N int
	// Fanout is the number of peers contacted per emission (default 2).
	Fanout int
	// Mode selects coded or store-and-forward gossip.
	Mode Mode
	// Seed derives the node's randomness with the same per-id stream
	// derivation the in-process drivers use.
	Seed int64
	// Transport carries the packets (required). RunSingle does NOT close
	// it: in the multi-process shape the transport is the process's
	// socket, owned by the caller, and typically outlives the gossip run
	// (the linger phase and metric scraping still use its counters).
	Transport Transport
	// Known optionally gates peer sampling on routability. Nil falls
	// back to the Transport's own AddressedTransport.Known when it has
	// one, else sampling is ungated.
	Known func(id int) bool
	// Interval paces ticker emissions (default 500µs; multi-hundred
	// -process runs on few cores want this much larger).
	Interval time.Duration
	// Timeout caps the whole run including linger (default 30s).
	Timeout time.Duration
	// Linger keeps the node gossiping after its own completion so that
	// slower peers still receive combinations — the multi-process
	// equivalent of the in-process run ending only when every node is
	// done (default 2s; the launcher usually kills lingering nodes once
	// all have reported DONE).
	Linger time.Duration
	// Telemetry optionally traces this node's run (nil = disabled). In
	// the multi-process shape each process records only its own id's
	// ring; per-node storage stays lazily allocated for the rest of the
	// id space.
	Telemetry *telemetry.Recorder
}

func (c SingleConfig) fanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	return 2
}

func (c SingleConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 500 * time.Microsecond
}

func (c SingleConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c SingleConfig) linger() time.Duration {
	if c.Linger > 0 {
		return c.Linger
	}
	return 2 * time.Second
}

// RunSingle runs ONE node of an N-node cluster dissemination: the
// cmd/node process body. It seeds the node's stride-N share of toks,
// gossips over cfg.Transport until the node holds all of them (then
// verifies the decoded tokens against the originals), keeps emitting
// for the linger window so peers can finish too, and returns the
// node's metrics. A timeout or context cancellation before completion
// returns with Done == false and a nil error — the caller decides
// whether an incomplete run is a failure. The returned error is
// reserved for misconfiguration and verification failures.
func RunSingle(ctx context.Context, cfg SingleConfig, toks []token.Token) (NodeMetrics, error) {
	var m NodeMetrics
	k := len(toks)
	if cfg.N < 1 {
		return m, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.N)
	}
	if cfg.ID < 0 || cfg.ID >= cfg.N {
		return m, fmt.Errorf("cluster: node id %d outside [0, %d)", cfg.ID, cfg.N)
	}
	if k < 1 {
		return m, fmt.Errorf("cluster: need at least 1 token")
	}
	d := toks[0].D()
	for i, t := range toks {
		if t.D() != d {
			return m, fmt.Errorf("cluster: token %d has %d payload bits, token 0 has %d", i, t.D(), d)
		}
	}
	if cfg.Mode != Coded && cfg.Mode != Forward {
		return m, fmt.Errorf("cluster: unknown mode %d", cfg.Mode)
	}
	if cfg.Transport == nil {
		return m, fmt.Errorf("cluster: RunSingle needs a Transport (the process's socket)")
	}

	// Every peer starts presumed-live: membership here is static (the
	// launcher starts all N processes); what is dynamic is routability,
	// which the known gate covers as the address book fills.
	live := make([]bool, cfg.N)
	for i := range live {
		live[i] = true
	}
	mb := newMember(cfg.Mode, cfg.Seed, toks, cfg.ID, cfg.N, cfg.N, true, live, 0, &m, cfg.Telemetry)
	mb.known = cfg.Known
	if mb.known == nil {
		if at, ok := cfg.Transport.(AddressedTransport); ok {
			mb.known = at.Known
		}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.timeout())
	defer cancel()

	start := time.Now()
	now := func() int64 { return int64(time.Since(start)) }
	emit := func() { mb.emit(cfg.Transport, cfg.fanout(), now(), false) }
	markDone := func() bool {
		if !m.Done && mb.g.complete() {
			m.Done = true
			m.DoneAt = time.Since(start)
		}
		return m.Done
	}

	var lingerC <-chan time.Time
	if markDone() { // n == 1, or this node seeded everything
		if err := mb.g.verify(toks); err != nil {
			return m, fmt.Errorf("cluster: verification failed: %w", err)
		}
		lt := time.NewTimer(cfg.linger())
		defer lt.Stop()
		lingerC = lt.C
	}

	inbox := cfg.Transport.Recv(cfg.ID)
	ticker := time.NewTicker(cfg.interval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return m, nil
		case <-lingerC:
			return m, nil
		case raw := <-inbox:
			if mb.recv(raw, now()) {
				m.Innovative++
				if markDone() && lingerC == nil {
					// Verify at the completion edge, before lingering:
					// a corrupt decode should fail loudly, not gossip on.
					if err := mb.g.verify(toks); err != nil {
						return m, fmt.Errorf("cluster: verification failed: %w", err)
					}
					lt := time.NewTimer(cfg.linger())
					defer lt.Stop()
					lingerC = lt.C
				}
				emit()
			}
		case <-ticker.C:
			mb.sample(cfg.Transport, now())
			emit()
		}
	}
}

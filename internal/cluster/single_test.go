package cluster

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestRunSingleCrossProcessEquivalent runs N independent RunSingle
// bodies — the cmd/node process shape — over one shared ChanTransport
// and requires every node to decode and verify all k tokens, proving
// the single-node runtime interoperates without the in-process drivers'
// shared run state.
func TestRunSingleCrossProcessEquivalent(t *testing.T) {
	const n, k, d = 5, 10, 64
	toks := testTokens(k, d, 11)
	tr := NewChanTransport(n, InboxBuffer(n, 2))
	defer tr.Close()

	var wg sync.WaitGroup
	results := make([]NodeMetrics, n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = RunSingle(context.Background(), SingleConfig{
				ID: id, N: n, Seed: 21, Transport: tr,
				Timeout: 20 * time.Second, Linger: 500 * time.Millisecond,
			}, toks)
		}(id)
	}
	wg.Wait()
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("node %d: %v", id, errs[id])
		}
		if !results[id].Done {
			t.Errorf("node %d did not complete (innovative %d, in %d)",
				id, results[id].Innovative, results[id].PacketsIn)
		}
	}
}

// TestRunSingleForwardMode exercises the store-and-forward gossiper
// through the single-node runtime.
func TestRunSingleForwardMode(t *testing.T) {
	const n, k, d = 3, 6, 32
	toks := testTokens(k, d, 5)
	tr := NewChanTransport(n, InboxBuffer(n, 2))
	defer tr.Close()

	var wg sync.WaitGroup
	results := make([]NodeMetrics, n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = RunSingle(context.Background(), SingleConfig{
				ID: id, N: n, Mode: Forward, Seed: 9, Transport: tr,
				Timeout: 20 * time.Second, Linger: 500 * time.Millisecond,
			}, toks)
		}(id)
	}
	wg.Wait()
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("node %d: %v", id, errs[id])
		}
		if !results[id].Done {
			t.Errorf("node %d did not complete", id)
		}
	}
}

// TestRunSingleValidation pins the misconfiguration errors.
func TestRunSingleValidation(t *testing.T) {
	toks := testTokens(2, 8, 1)
	tr := NewChanTransport(2, 1)
	defer tr.Close()
	cases := []struct {
		name string
		cfg  SingleConfig
	}{
		{"no transport", SingleConfig{ID: 0, N: 2}},
		{"id out of range", SingleConfig{ID: 2, N: 2, Transport: tr}},
		{"negative id", SingleConfig{ID: -1, N: 2, Transport: tr}},
		{"bad mode", SingleConfig{ID: 0, N: 2, Mode: 7, Transport: tr}},
	}
	for _, tc := range cases {
		if _, err := RunSingle(context.Background(), tc.cfg, toks); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := RunSingle(context.Background(), SingleConfig{ID: 0, N: 2, Transport: tr}, nil); err == nil {
		t.Error("empty token set: no error")
	}
}

// TestRunSingleTimeoutIncomplete pins the partition behavior: a node
// whose peers never show up times out with Done == false and no error
// (the caller decides whether that is a failure).
func TestRunSingleTimeoutIncomplete(t *testing.T) {
	toks := testTokens(4, 16, 3)
	tr := NewChanTransport(2, 4)
	defer tr.Close()
	m, err := RunSingle(context.Background(), SingleConfig{
		ID: 0, N: 2, Seed: 1, Transport: tr,
		Timeout: 50 * time.Millisecond, Interval: time.Millisecond,
	}, toks)
	if err != nil {
		t.Fatalf("timeout run errored: %v", err)
	}
	if m.Done {
		t.Error("node completed without its peer's tokens")
	}
}

// TestRunSingleKnownGate verifies that a Known predicate confines
// emissions to routable peers: with only the self entry known, nothing
// is ever sent.
func TestRunSingleKnownGate(t *testing.T) {
	toks := testTokens(4, 16, 3)
	tr := NewChanTransport(3, 4)
	defer tr.Close()
	m, err := RunSingle(context.Background(), SingleConfig{
		ID: 0, N: 3, Seed: 1, Transport: tr,
		Known:   func(id int) bool { return id == 0 },
		Timeout: 50 * time.Millisecond, Interval: time.Millisecond,
	}, toks)
	if err != nil {
		t.Fatalf("gated run errored: %v", err)
	}
	if m.PacketsOut != 0 {
		t.Errorf("node emitted %d packets with an empty address book", m.PacketsOut)
	}
}

package cluster

import (
	"context"
	"math/rand"

	"repro/internal/token"
)

// SweepParams is one lockstep measurement point for the performance
// observatory (cmd/repobench): enough of Config to sweep the
// interesting axes, with the transport stack assembled internally so
// the sweeping tool and the CLIs cannot drift on middleware order or
// buffer sizing.
type SweepParams struct {
	N, K, PayloadBits, Fanout int
	Loss                      float64
	Churn                     *ChurnSchedule
	Seed                      int64
	// MaxTicks caps the run (default 200000 — sweeps visit hostile
	// corners the default one-shot cap is too tight for).
	MaxTicks int
	// Shards is the sharded-lockstep worker count (0/1 = serial engine).
	// Transcripts are shard-count invariant, so this is a pure
	// performance axis.
	Shards int
}

// SweepRun executes one deterministic lockstep cluster run for a sweep
// point and returns its Result. The run is a pure function of the
// params, so repeated sweeps at the same git revision append identical
// rows — curve differences between revisions are code, not noise.
func SweepRun(p SweepParams) (*Result, error) {
	maxN := p.N + p.Churn.Joins()
	var tr Transport = NewChanTransport(maxN, InboxBuffer(maxN, p.Fanout+1))
	if p.Loss > 0 {
		tr = WithLoss(tr, p.Loss, p.Seed+103)
	}
	maxTicks := p.MaxTicks
	if maxTicks == 0 {
		maxTicks = 200000
	}
	toks := token.RandomSet(p.K, p.PayloadBits, rand.New(rand.NewSource(p.Seed)))
	return Run(context.Background(), Config{
		N: p.N, Fanout: p.Fanout, Mode: Coded, Seed: p.Seed,
		Transport: tr, Lockstep: true, Shards: p.Shards,
		MaxTicks: maxTicks, Churn: p.Churn,
	}, toks)
}

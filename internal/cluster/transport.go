package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Transport moves serialized packets between cluster nodes. The runtime
// only ever talks to this interface, so tests and experiments can slide
// loss, delay, reordering and partitions between the gossip loops and
// the underlying delivery without the loops noticing.
//
// Implementations must make Send safe for concurrent use and
// non-blocking: gossip loops fire and forget. A false return means the
// packet was dropped (lossy decorator, partition, full inbox, closed
// transport); UDP-style semantics, no retransmission.
type Transport interface {
	// Send attempts to deliver pkt to node to's inbox, reporting whether
	// it was accepted for (eventual) delivery.
	Send(from, to int, pkt []byte) bool
	// Recv returns node id's inbox channel. The channel is never closed;
	// receivers stop via their context.
	Recv(id int) <-chan []byte
	// Close stops delivery: subsequent (and in-flight delayed) Sends are
	// dropped. Close is idempotent.
	Close()
}

// TickObserver is an optional Transport facet: the lockstep drivers
// (cluster and stream) call ObserveTick on Config.Transport at the
// start of every tick, so tick-aware middleware — the adversarial
// topology and packet-mutation layers in internal/hostile — advances
// its clock in sync with the driver instead of guessing from wall time.
// A middleware that implements it should forward the call to its inner
// transport when that transport also implements TickObserver, so a
// whole stack advances together. Transports without the facet are
// simply not called.
type TickObserver interface {
	ObserveTick(tick int64)
}

// ObserveTick type-asserts and forwards one driver tick; the shared
// helper keeps both lockstep drivers' call sites identical.
func ObserveTick(t Transport, tick int64) {
	if ob, ok := t.(TickObserver); ok {
		ob.ObserveTick(tick)
	}
}

// ChanTransport is the in-process transport: one buffered channel per
// node. A Send to a full inbox drops the packet — backpressure shows up
// as loss, exactly as on a saturated datagram socket.
type ChanTransport struct {
	inboxes []chan []byte
	done    chan struct{}
	once    sync.Once
}

// NewChanTransport returns a transport for n nodes with the given
// per-inbox buffer (minimum 1).
func NewChanTransport(n, buffer int) *ChanTransport {
	if buffer < 1 {
		buffer = 1
	}
	t := &ChanTransport{inboxes: make([]chan []byte, n), done: make(chan struct{})}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan []byte, buffer)
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(from, to int, pkt []byte) bool {
	if to < 0 || to >= len(t.inboxes) {
		return false
	}
	select {
	case <-t.done:
		return false
	default:
	}
	select {
	case t.inboxes[to] <- pkt:
		return true
	default:
		return false
	}
}

// Recv implements Transport. An id outside [0, n) returns a nil
// channel — which blocks forever on receive, the UDP-equivalent of
// listening on an address nobody sends to — mirroring the bounds
// behavior of Send (which drops) instead of panicking.
func (t *ChanTransport) Recv(id int) <-chan []byte {
	if id < 0 || id >= len(t.inboxes) {
		return nil
	}
	return t.inboxes[id]
}

// Close implements Transport.
func (t *ChanTransport) Close() { t.once.Do(func() { close(t.done) }) }

// lossTransport drops each packet independently with fixed probability.
type lossTransport struct {
	Transport
	rate float64
	mu   sync.Mutex
	rng  *rand.Rand
}

// WithLoss decorates t so each Send is dropped with probability rate.
// The coin sequence is seeded, so under a single-threaded driver
// (lockstep mode) losses are fully reproducible.
func WithLoss(t Transport, rate float64, seed int64) Transport {
	if rate <= 0 {
		return t
	}
	return &lossTransport{Transport: t, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

func (l *lossTransport) Send(from, to int, pkt []byte) bool {
	l.mu.Lock()
	drop := l.rng.Float64() < l.rate
	l.mu.Unlock()
	if drop {
		return false
	}
	return l.Transport.Send(from, to, pkt)
}

// delayTransport holds each packet for a random latency before passing
// it on. Only meaningful in async mode; lockstep runs do not use it.
type delayTransport struct {
	Transport
	min, max time.Duration
	mu       sync.Mutex
	rng      *rand.Rand
}

// WithDelay decorates t so each packet is delivered after a uniform
// random latency in [min, max]. Send reports true optimistically; a
// delayed packet that arrives after Close is dropped by the inner
// transport.
func WithDelay(t Transport, min, max time.Duration, seed int64) Transport {
	if max <= 0 {
		return t
	}
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	return &delayTransport{Transport: t, min: min, max: max, rng: rand.New(rand.NewSource(seed))}
}

func (d *delayTransport) Send(from, to int, pkt []byte) bool {
	d.mu.Lock()
	lat := d.min
	if d.max > d.min {
		lat += time.Duration(d.rng.Int63n(int64(d.max - d.min + 1)))
	}
	d.mu.Unlock()
	time.AfterFunc(lat, func() { d.Transport.Send(from, to, pkt) })
	return true
}

// reorderTransport swaps selected packets past later traffic using a
// one-slot hold-back buffer: a packet chosen for reordering waits until
// the next chosen packet arrives and is delivered in its place.
type reorderTransport struct {
	Transport
	rate float64
	mu   sync.Mutex
	rng  *rand.Rand
	held *heldPkt
}

type heldPkt struct {
	from, to int
	pkt      []byte
}

// WithReorder decorates t so each packet is, with probability rate,
// parked and released only when the next parked packet replaces it —
// out-of-order delivery without loss (at most one packet is parked at
// Close). Like WithDelay, Send reports true optimistically for a
// parked packet: its eventual fate belongs to a later delivery and is
// not attributed back to any sender.
func WithReorder(t Transport, rate float64, seed int64) Transport {
	if rate <= 0 {
		return t
	}
	return &reorderTransport{Transport: t, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

func (r *reorderTransport) Send(from, to int, pkt []byte) bool {
	r.mu.Lock()
	if r.rng.Float64() >= r.rate {
		r.mu.Unlock()
		return r.Transport.Send(from, to, pkt)
	}
	release := r.held
	r.held = &heldPkt{from: from, to: to, pkt: pkt}
	r.mu.Unlock()
	if release != nil {
		r.Transport.Send(release.from, release.to, release.pkt)
	}
	return true
}

// partitionTransport blocks traffic across a caller-defined cut.
type partitionTransport struct {
	Transport
	blocked func(from, to int) bool
}

// WithPartition decorates t so Sends for which blocked(from, to)
// returns true are dropped. The predicate is consulted on every Send
// and must be safe for concurrent use; flipping it heals or splits the
// cluster mid-run.
func WithPartition(t Transport, blocked func(from, to int) bool) Transport {
	return &partitionTransport{Transport: t, blocked: blocked}
}

func (p *partitionTransport) Send(from, to int, pkt []byte) bool {
	if p.blocked(from, to) {
		return false
	}
	return p.Transport.Send(from, to, pkt)
}

package count

import (
	"fmt"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// RunCoded is the counting application built on Corollary 7.1's coded
// dissemination instead of pure flooding: each phase floods the m
// smallest IDs to establish an indexing (as Run does) and then confirms
// them with a network-coded indexed broadcast whose payloads are the
// IDs themselves. For log-sized tokens the indexing flood dominates, so
// coded counting costs the same order as flooding-based counting — the
// paper's observation that Corollary 7.1 "cannot lead to any
// improvement" when the tokens are themselves O(log n) bits. The
// function exists to measure exactly that, and as a second full client
// of the coding stack.
func RunCoded(n, b int, adv dynnet.Adversary, seed int64) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("count: n must be >= 1")
	}
	perMsg := (b - token.CountBits) / token.UIDBits
	if perMsg < 1 {
		return Result{}, fmt.Errorf("count: budget b=%d cannot carry a node ID", b)
	}
	s := dynnet.NewSession(n, adv, dynnet.Config{BitBudget: b})

	known := make([]map[uint64]bool, n)
	own := make([][]uint64, n)
	for i := range known {
		known[i] = map[uint64]bool{uint64(i) + 1: true}
	}

	res := Result{}
	for m := 2; ; m *= 2 {
		res.Phases++
		if res.Phases > 64 {
			return Result{}, fmt.Errorf("count: estimate overflow")
		}
		phaseStart := s.Metrics().Rounds

		// Indexing: flood the m smallest known IDs (the Corollary 7.1
		// bottleneck).
		for i := range own {
			own[i] = own[i][:0]
			for id := range known[i] {
				own[i] = append(own[i], id)
			}
		}
		ids, err := forwarding.FloodSmallestMulti(s, own, m, perMsg, token.UIDBits, m)
		if err != nil {
			continue // too-small estimate: flooding disagreed; double
		}
		// The ID coefficient header must fit alongside the 64-bit
		// payload.
		if len(ids) > 0 && len(ids)+token.UIDBits <= b {
			// Coded confirmation broadcast: index i carries ID ids[i].
			kDims := len(ids)
			schedule := rlnc.DefaultSchedule(2*m, kDims)
			nodes := make([]dynnet.Node, n)
			impls := make([]*rlnc.BroadcastNode, n)
			for i := range nodes {
				var initial []rlnc.Coded
				for idx, id := range ids {
					if known[i][id] {
						payload := gf.NewBitVec(token.UIDBits)
						writeBits(payload, id)
						initial = append(initial, rlnc.Encode(idx, kDims, payload))
					}
				}
				rng := rand.New(rand.NewSource(seed + int64(i)*271 + 5))
				impls[i] = rlnc.NewBroadcastNode(kDims, token.UIDBits, schedule, initial, rng)
				nodes[i] = impls[i]
			}
			if err := s.RunFixed(nodes, schedule); err != nil {
				return Result{}, err
			}
			// Nodes that decode merge the confirmed IDs; with m >= n the
			// schedule guarantees this whp.
			for i, impl := range impls {
				payloads, err := impl.Span().Decode()
				if err != nil {
					continue // counts as a failed phase below
				}
				for _, p := range payloads {
					known[i][readBits(p)] = true
				}
			}
		}

		// Verification sub-phase, as in Run.
		counts := make([]int, n)
		for i := range known {
			counts[i] = len(known[i])
		}
		verify := make([]dynnet.Node, n)
		impls := make([]*forwarding.MaxFloodNode, n)
		for i := range verify {
			impls[i] = forwarding.NewMaxFloodNode(uint64(counts[i]), 32, m)
			verify[i] = impls[i]
		}
		if err := s.RunFixed(verify, m); err != nil {
			return Result{}, err
		}
		failed := false
		for i := range known {
			if len(known[i]) != n || int(impls[i].Best()) != len(known[i]) || len(known[i]) > m {
				failed = true
				break
			}
		}
		if !failed {
			res.N = n
			res.Estimate = m
			res.FinalPhaseRounds = s.Metrics().Rounds - phaseStart
			res.TotalRounds = s.Metrics().Rounds
			return res, nil
		}
	}
}

func writeBits(v gf.BitVec, x uint64) {
	for i := 0; i < v.Len() && i < 64; i++ {
		v.Set(i, x>>uint(i)&1 == 1)
	}
}

func readBits(v gf.BitVec) uint64 {
	var x uint64
	for i := 0; i < v.Len() && i < 64; i++ {
		if v.Bit(i) {
			x |= 1 << uint(i)
		}
	}
	return x
}

// Package count implements the counting application the paper motivates
// k-token dissemination with (Section 4.1): determine the number of
// nodes in a dynamic network of unknown size by estimate doubling. Each
// node owns one ID token; for estimates m = 2, 4, 8, ... the nodes run
// an m-sized dissemination schedule of all IDs and a verification
// sub-phase, doubling on failure. Because schedules grow geometrically,
// the total cost is dominated by the final (successful) phase — the
// "factor of two" remark of Section 4.1 that experiment E7 measures.
package count

import (
	"fmt"

	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/token"
)

// Result reports a counting run.
type Result struct {
	// N is the agreed node count.
	N int
	// Estimate is the final (successful) size estimate m >= N.
	Estimate int
	// TotalRounds is the cost of the whole run including failed phases.
	TotalRounds int
	// FinalPhaseRounds is the cost of the successful phase alone.
	FinalPhaseRounds int
	// Phases is the number of estimates tried.
	Phases int
}

// Run counts an n-node network with b-bit messages. Nodes do not use n
// except through the engine; the dissemination schedule in each phase
// depends only on the current estimate m. Failure of a phase (some node
// would not have terminated consistently) is detected by the harness
// standing in for the paper's deferred detection mechanism, and the
// verification rounds the mechanism would cost are charged.
func Run(n, b int, adv dynnet.Adversary, seed int64) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("count: n must be >= 1")
	}
	perMsg := (b - token.CountBits) / token.UIDBits
	if perMsg < 1 {
		return Result{}, fmt.Errorf("count: budget b=%d cannot carry a node ID", b)
	}
	s := dynnet.NewSession(n, adv, dynnet.Config{BitBudget: b})

	// Every node's knowledge starts as its own ID and persists across
	// phases (restarting from scratch would only change constants).
	known := make([]map[uint64]bool, n)
	own := make([][]uint64, n)
	for i := range known {
		known[i] = map[uint64]bool{uint64(i) + 1: true} // IDs 1..n; 0 is reserved
	}

	res := Result{}
	for m := 2; ; m *= 2 {
		res.Phases++
		if res.Phases > 64 {
			return Result{}, fmt.Errorf("count: estimate overflow")
		}
		phaseStart := s.Metrics().Rounds

		// Dissemination schedule for estimate m: flood the m smallest
		// IDs in sub-phases of m rounds each. With m >= n this floods
		// every ID to every node.
		for i := range own {
			own[i] = own[i][:0]
			for id := range known[i] {
				own[i] = append(own[i], id)
			}
		}
		ids, err := forwarding.FloodSmallestMulti(s, own, m, perMsg, token.UIDBits, m)
		if err != nil {
			// Sub-phase disagreement is exactly a failed phase when the
			// estimate is too small; charge it and double.
			continue
		}
		// Merge what the flood taught each node. (FloodSmallestMulti
		// returns the agreed global list; per-node merges below model
		// each node retaining everything it heard.)
		for i := range known {
			for _, id := range ids {
				known[i][id] = true
			}
		}

		// Verification sub-phase: m rounds of count flooding. A node
		// that sees a higher count than its own knows the estimate
		// failed; the harness also fails the phase when some node's
		// knowledge is incomplete (the paper's full detection mechanism
		// is deferred to its full version).
		counts := make([]int, n)
		for i := range known {
			counts[i] = len(known[i])
		}
		verify := make([]dynnet.Node, n)
		impls := make([]*forwarding.MaxFloodNode, n)
		for i := range verify {
			impls[i] = forwarding.NewMaxFloodNode(uint64(counts[i]), 32, m)
			verify[i] = impls[i]
		}
		if err := s.RunFixed(verify, m); err != nil {
			return Result{}, err
		}

		failed := false
		for i := range known {
			if len(known[i]) != n || int(impls[i].Best()) != len(known[i]) || len(known[i]) > m {
				failed = true
				break
			}
		}
		if !failed {
			res.N = n
			res.Estimate = m
			res.FinalPhaseRounds = s.Metrics().Rounds - phaseStart
			res.TotalRounds = s.Metrics().Rounds
			return res, nil
		}
	}
}

package count

import (
	"testing"

	"repro/internal/adversary"
)

func TestCountAgrees(t *testing.T) {
	const b = 1024
	for _, n := range []int{1, 2, 3, 5, 8, 13, 20} {
		res, err := Run(n, b, adversary.NewRandomConnected(n, n/2, int64(n)), int64(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.N != n {
			t.Errorf("n=%d: counted %d", n, res.N)
		}
		if res.Estimate < n {
			t.Errorf("n=%d: final estimate %d < n", n, res.Estimate)
		}
		if res.Estimate >= 4*n && n > 1 {
			t.Errorf("n=%d: final estimate %d overshoots doubling", n, res.Estimate)
		}
	}
}

// TestCountGeometricOverhead is E7's claim: total rounds are within a
// constant factor (the geometric-sum argument says about 2x) of the
// final phase alone.
func TestCountGeometricOverhead(t *testing.T) {
	const n, b = 24, 1024
	res, err := Run(n, b, adversary.NewRandomConnected(n, n, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPhaseRounds <= 0 {
		t.Fatal("final phase rounds not recorded")
	}
	ratio := float64(res.TotalRounds) / float64(res.FinalPhaseRounds)
	if ratio > 3.0 {
		t.Errorf("total/final ratio %.2f, geometric schedule predicts <= ~2", ratio)
	}
}

func TestCountUnderRotatingPath(t *testing.T) {
	const n, b = 10, 1024
	res, err := Run(n, b, adversary.NewRotatingPath(n, 5), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != n {
		t.Errorf("counted %d, want %d", res.N, n)
	}
}

func TestCodedCountAgrees(t *testing.T) {
	const b = 1024
	for _, n := range []int{1, 4, 9, 17} {
		res, err := RunCoded(n, b, adversary.NewRandomConnected(n, n/2, int64(n+50)), int64(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.N != n {
			t.Errorf("n=%d: counted %d", n, res.N)
		}
	}
}

// TestCodedCountNoImprovementForSmallTokens is the Corollary 7.1
// observation: for O(log n)-size tokens the flooding-based indexing
// dominates, so coded counting is not materially cheaper than pure
// flooding-based counting.
func TestCodedCountNoImprovementForSmallTokens(t *testing.T) {
	const n, b = 24, 1024
	flood, err := Run(n, b, adversary.NewRandomConnected(n, n/2, 7), 8)
	if err != nil {
		t.Fatal(err)
	}
	coded, err := RunCoded(n, b, adversary.NewRandomConnected(n, n/2, 7), 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flooding: %d rounds; coded: %d rounds", flood.TotalRounds, coded.TotalRounds)
	if coded.TotalRounds < flood.TotalRounds/2 {
		t.Errorf("coded counting 2x faster than flooding (%d vs %d) — contradicts Cor 7.1's small-token observation",
			coded.TotalRounds, flood.TotalRounds)
	}
}

func TestCodedCountRejectsTinyBudget(t *testing.T) {
	if _, err := RunCoded(4, 32, adversary.NewRandomConnected(4, 1, 1), 1); err == nil {
		t.Error("tiny budget accepted")
	}
}

func TestCountRejectsTinyBudget(t *testing.T) {
	if _, err := Run(4, 32, adversary.NewRandomConnected(4, 1, 1), 1); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := Run(0, 1024, adversary.NewRandomConnected(1, 0, 1), 1); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestCountGolden pins full Result values for small deterministic
// inputs (seeded adversaries make the whole run reproducible): the
// doubling schedule must land on the same estimate, phase count and
// round totals every time.
func TestCountGolden(t *testing.T) {
	cases := []struct {
		name string
		run  func() (Result, error)
		want Result
	}{
		{
			"flood n=6 random",
			func() (Result, error) { return Run(6, 1024, adversary.NewRandomConnected(6, 3, 42), 42) },
			Result{N: 6, Estimate: 8, TotalRounds: 26, FinalPhaseRounds: 16, Phases: 3},
		},
		{
			"coded n=6 random",
			func() (Result, error) { return RunCoded(6, 1024, adversary.NewRandomConnected(6, 3, 42), 42) },
			Result{N: 6, Estimate: 8, TotalRounds: 194, FinalPhaseRounds: 120, Phases: 3},
		},
		{
			"flood n=10 rotating-path",
			func() (Result, error) { return Run(10, 1024, adversary.NewRotatingPath(10, 5), 6) },
			Result{N: 10, Estimate: 16, TotalRounds: 58, FinalPhaseRounds: 32, Phases: 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("result %+v, want %+v", got, tc.want)
			}
		})
	}
}

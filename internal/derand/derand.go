// Package derand implements Section 6 of the paper: random linear
// network coding is not inherently randomized. It provides
//
//   - the witness-counting arithmetic behind Theorem 6.1's union bound
//     (how large the field must be before the q^{-n} failure probability
//     beats the exp(nk log n) count of compact adversary witnesses);
//   - an omniscient adversary that sees every message before choosing
//     the topology and steers connectivity to stall the spread of a
//     target coefficient direction — the adversary model Theorem 6.1
//     defends against; and
//   - deterministic coefficient schedules (the "advice matrix" of
//     Corollary 6.2) for the scheduled broadcast nodes in package rlnc.
package derand

import (
	"math"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/graph"
	"repro/internal/rlnc"
)

// WitnessBits returns the size in bits of the canonical witness space of
// Theorem 6.1: each of n nodes has at most k learning events, each
// specified by a time in [rounds] and a sender in [n], so a witness
// costs about n*k*(lg rounds + lg n) bits.
func WitnessBits(n, k, rounds int) float64 {
	if n < 1 || k < 1 || rounds < 1 {
		return 0
	}
	return float64(n) * float64(k) * (math.Log2(float64(rounds)) + math.Log2(float64(n)))
}

// FailureExponentBits returns lg(1/p) for the per-witness failure bound
// p = q^{-n}.
func FailureExponentBits(n int, q uint64) float64 {
	return float64(n) * math.Log2(float64(q))
}

// UnionBoundHolds reports whether the Theorem 6.1 union bound closes:
// the number of witnesses times the per-witness failure probability is
// below 2^{-margin}.
func UnionBoundHolds(n, k, rounds int, q uint64, margin float64) bool {
	return FailureExponentBits(n, q) >= WitnessBits(n, k, rounds)+margin
}

// RequiredFieldBits returns the minimal lg q for which the union bound
// closes with the given margin — the paper's q = n^{Omega(k)}, i.e.
// lg q = Omega(k log n), which is why derandomization costs a k^2 log n
// coefficient overhead instead of k.
func RequiredFieldBits(n, k, rounds int, margin float64) float64 {
	return (WitnessBits(n, k, rounds) + margin) / float64(n)
}

// StallAdversary is an omniscient adversary (it sees the round's fixed
// messages before wiring the graph) that tries to prevent one target
// coefficient direction mu from being sensed by new nodes: it keeps the
// nodes that already sense mu in one chain, the rest in another, and
// joins them through a sensing node whose current message happens to be
// orthogonal to mu — which exists with probability about 1 - (1-1/q)^s
// when s nodes sense mu. Over GF(2) that approaches certainty as soon as
// a few nodes sense the target, so the omniscient adversary stalls the
// spread almost completely; over a field with q >> n it almost never
// finds a blocking message. This is the quantitative content of
// Theorem 6.1: defeating an omniscient adversary requires a large field.
type StallAdversary struct {
	mu  gf.Vec
	f   gf.Field
	rng *rand.Rand

	// Stalls counts rounds in which a blocking crossing edge existed.
	Stalls int
	// Rounds counts rounds in which a crossing edge was needed at all.
	Rounds int
}

var _ dynnet.OmniscientAdversary = (*StallAdversary)(nil)

// NewStallAdversary targets direction mu over field f.
func NewStallAdversary(f gf.Field, mu gf.Vec, seed int64) *StallAdversary {
	return &StallAdversary{mu: mu, f: f, rng: rand.New(rand.NewSource(seed))}
}

// Graph implements the non-omniscient path for completeness: without
// message knowledge it behaves like a random bottleneck.
func (a *StallAdversary) Graph(round int, nodes []dynnet.Node) *graph.Graph {
	return a.GraphAfterMessages(round, nodes, make([]dynnet.Message, len(nodes)))
}

// GraphAfterMessages wires the round's topology with full knowledge of
// the chosen messages.
func (a *StallAdversary) GraphAfterMessages(_ int, nodes []dynnet.Node, msgs []dynnet.Message) *graph.Graph {
	n := len(nodes)
	var sensing, dark []int
	for i, nd := range nodes {
		gb, ok := nd.(*rlnc.GBroadcastNode)
		if ok && gb.Span().Senses(a.mu) {
			sensing = append(sensing, i)
		} else {
			dark = append(dark, i)
		}
	}
	g := graph.New(n)
	chain := func(vs []int) {
		for i := 0; i+1 < len(vs); i++ {
			g.AddEdge(vs[i], vs[i+1])
		}
	}
	a.rng.Shuffle(len(sensing), func(i, j int) { sensing[i], sensing[j] = sensing[j], sensing[i] })
	a.rng.Shuffle(len(dark), func(i, j int) { dark[i], dark[j] = dark[j], dark[i] })
	chain(sensing)
	chain(dark)
	if len(sensing) == 0 || len(dark) == 0 {
		return g
	}
	a.Rounds++
	// Prefer a crossing endpoint whose fixed message is orthogonal to mu
	// (or silent): then this round transfers no sensing of mu.
	bridge := sensing[len(sensing)-1]
	stalled := false
	for _, s := range sensing {
		m, ok := msgs[s].(rlnc.GCoded)
		if !ok || gf.Vec(m.Vec[:len(a.mu)]).Dot(a.f, a.mu) == 0 {
			bridge = s
			stalled = true
			break
		}
	}
	if stalled {
		a.Stalls++
	}
	g.AddEdge(bridge, dark[0])
	return g
}

// AdviceSchedule returns a deterministic coefficient schedule derived by
// hashing (node, round, row) — the stand-in for the Corollary 6.2 advice
// matrix, which exists by the probabilistic argument of Theorem 6.1 and
// is shared by all nodes. The same (seed, field) always yields the same
// schedule.
func AdviceSchedule(f gf.Field, seed int64) func(node, round, row int) uint64 {
	q := f.Q()
	return func(node, round, row int) uint64 {
		x := uint64(seed) ^ uint64(node)*0x9e3779b97f4a7c15 ^ uint64(round)*0xbf58476d1ce4e5b9 ^ uint64(row)*0x94d049bb133111eb
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x % q
	}
}

// RunOmniscientBroadcast runs the Lemma 5.3 indexed broadcast against a
// stalling omniscient adversary over field f, with one token per node,
// and reports whether every node decoded within the schedule plus the
// adversary's stall statistics. This is the E8 experiment kernel: over
// GF(2) the adversary blocks nearly every round, so an O(n) schedule
// fails to decode; over large fields blocking messages essentially never
// exist and the broadcast completes on schedule.
func RunOmniscientBroadcast(f gf.Field, n, payloadElems, schedule int, seed int64) (decodedAll bool, stalls, rounds int, err error) {
	rng := rand.New(rand.NewSource(seed))
	mu := gf.NewVec(n)
	mu[0] = 1 // target: the direction of token 0
	adv := NewStallAdversary(f, mu, seed+1)

	nodes := make([]dynnet.Node, n)
	impls := make([]*rlnc.GBroadcastNode, n)
	for i := 0; i < n; i++ {
		payload := gf.RandomVec(f, payloadElems, rng.Uint64)
		nrng := rand.New(rand.NewSource(seed + 1000 + int64(i)))
		impls[i] = rlnc.NewGBroadcastNode(f, n, payloadElems, schedule, []rlnc.GCoded{rlnc.GEncode(f, i, n, payload)}, nrng)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{})
	if _, err := e.Run(); err != nil {
		return false, adv.Stalls, adv.Rounds, err
	}
	decodedAll = true
	for _, impl := range impls {
		if !impl.Span().CanDecode() {
			decodedAll = false
			break
		}
	}
	return decodedAll, adv.Stalls, adv.Rounds, nil
}

package derand

import (
	"math/rand"
	"testing"

	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
)

func TestWitnessArithmetic(t *testing.T) {
	// Witness space grows with n, k and the horizon.
	if WitnessBits(16, 16, 64) >= WitnessBits(32, 32, 64) {
		t.Error("witness bits must grow with n and k")
	}
	if WitnessBits(0, 5, 5) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
	// Failure exponent grows with q.
	if FailureExponentBits(16, 2) >= FailureExponentBits(16, 1<<16) {
		t.Error("failure exponent must grow with q")
	}
}

func TestUnionBoundThreshold(t *testing.T) {
	const n, k, rounds = 32, 32, 256
	// GF(2) can never close the Theorem 6.1 union bound at this size.
	if UnionBoundHolds(n, k, rounds, 2, 1) {
		t.Error("union bound should fail at q=2")
	}
	// A field with lg q >= RequiredFieldBits closes it.
	need := RequiredFieldBits(n, k, rounds, 1)
	bigQ := uint64(1) << uint(need+1)
	if need+1 < 63 && !UnionBoundHolds(n, k, rounds, bigQ, 1) {
		t.Error("union bound should hold at the required field size")
	}
	// The required size is Omega(k log n) bits: quadratic total header.
	if need < float64(k) {
		t.Errorf("required field bits %.1f implausibly small for k=%d", need, k)
	}
}

// TestStallAdversaryStallsGF2MoreThanLargeField is the Theorem 6.1
// separation: the omniscient adversary finds a blocking message in
// roughly half the rounds over GF(2) but almost never over F_257.
func TestStallAdversaryStallsGF2MoreThanLargeField(t *testing.T) {
	const n, pe = 12, 4
	schedule := 12 * n

	_, stalls2, rounds2, err := RunOmniscientBroadcast(gf.GF2{}, n, pe, schedule, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, stallsBig, roundsBig, err := RunOmniscientBroadcast(gf.MustPrime(257), n, pe, schedule, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rounds2 == 0 || roundsBig == 0 {
		t.Fatal("adversary never needed a crossing edge")
	}
	frac2 := float64(stalls2) / float64(rounds2)
	fracBig := float64(stallsBig) / float64(roundsBig)
	if frac2 < 0.2 {
		t.Errorf("GF(2) stall fraction %.2f, expected ~0.5", frac2)
	}
	if fracBig > 0.2 {
		t.Errorf("F_257 stall fraction %.2f, expected near 0", fracBig)
	}
	if frac2 <= fracBig {
		t.Errorf("no separation: GF(2) %.2f vs F_257 %.2f", frac2, fracBig)
	}
}

// TestOmniscientSeparation is the Theorem 6.1 reproduction: against an
// omniscient adversary, GF(2) coding fails to complete in O(n) rounds
// (once a few nodes sense the target, a blocking message exists almost
// every round), while a field with q >> n completes on schedule.
func TestOmniscientSeparation(t *testing.T) {
	const n, pe = 10, 3
	schedule := 20 * n
	decoded2, _, _, err := RunOmniscientBroadcast(gf.GF2{}, n, pe, schedule, 2)
	if err != nil {
		t.Fatal(err)
	}
	if decoded2 {
		t.Error("GF(2) decoded against the omniscient adversary; expected a stall (Theorem 6.1)")
	}
	decodedBig, _, _, err := RunOmniscientBroadcast(gf.MustPrime(65537), n, pe, schedule, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !decodedBig {
		t.Error("F_65537 failed to decode against the omniscient adversary")
	}
}

func TestAdviceScheduleDeterministicAndInField(t *testing.T) {
	f := gf.MustPrime(65537)
	s1 := AdviceSchedule(f, 7)
	s2 := AdviceSchedule(f, 7)
	s3 := AdviceSchedule(f, 8)
	same, diff := true, false
	for node := 0; node < 4; node++ {
		for round := 0; round < 8; round++ {
			for row := 0; row < 4; row++ {
				a, b, c := s1(node, round, row), s2(node, round, row), s3(node, round, row)
				if a >= f.Q() {
					t.Fatalf("coefficient %d out of field", a)
				}
				if a != b {
					same = false
				}
				if a != c {
					diff = true
				}
			}
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
}

// TestDeterministicScheduleDecodesAgainstStaller runs the Corollary 6.2
// deterministic algorithm (advice schedule, large field) against the
// omniscient staller and requires full decoding — randomness-free
// network coding in the regime the theorem promises.
func TestDeterministicScheduleDecodesAgainstStaller(t *testing.T) {
	f := gf.MustPrime(65537)
	const n, pe = 8, 3
	schedule := 16 * n
	mu := gf.NewVec(n)
	mu[0] = 1
	adv := NewStallAdversary(f, mu, 3)
	coeff := AdviceSchedule(f, 11)

	rng := rand.New(rand.NewSource(9))
	nodes := make([]dynnet.Node, n)
	impls := make([]*rlnc.GBroadcastNode, n)
	for i := 0; i < n; i++ {
		payload := gf.RandomVec(f, pe, rng.Uint64)
		node := i
		impls[i] = rlnc.NewScheduledBroadcastNode(f, n, pe, schedule,
			[]rlnc.GCoded{rlnc.GEncode(f, i, n, payload)},
			func(round, row int) uint64 { return coeff(node, round, row) })
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, impl := range impls {
		if !impl.Span().CanDecode() {
			t.Errorf("node %d cannot decode (rank %d of %d)", i, impl.Span().Rank(), n)
		}
	}
}

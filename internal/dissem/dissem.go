// Package dissem implements the paper's k-token dissemination algorithms
// (Section 7), which bridge from the indexed-broadcast primitive of
// Lemma 5.3 to the full problem where tokens start unindexed and
// scattered:
//
//   - Naive (Corollary 7.1): flood the smallest token UIDs to establish
//     an indexing, then network-code those tokens; O((log n / d)·nkd/b).
//   - GreedyForward (Theorem 7.3): gather tokens at one node with
//     random-forward, then code b^2/d tokens per O(n)-round phase;
//     O(nkd/b^2 + nb).
//   - PriorityForward (Theorem 7.5): when gathering stalls, group tokens
//     into blocks, select Theta(b) random blocks by flooding the lowest
//     random priorities, and code the selected blocks.
//
// All drivers run as phases over a shared dynnet.Session so the round
// and bit costs accumulate across the whole execution, and all of them
// verify at the end that every node decoded every token.
package dissem

import (
	"fmt"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// Params configures a dissemination run.
type Params struct {
	// B is the message budget in bits (b in the paper).
	B int
	// D is the token payload size in bits (d in the paper).
	D int
	// Seed feeds all node randomness deterministically.
	Seed int64
	// MaxIterations caps driver loops as a safety net; 0 means a
	// generous default derived from k.
	MaxIterations int
}

// Result reports the cost of a dissemination run.
type Result struct {
	// Rounds is the total rounds across all phases.
	Rounds int
	// Bits is the total bits broadcast.
	Bits int64
	// Messages is the number of broadcasts.
	Messages int
	// Iterations is the number of outer-loop iterations the driver ran.
	Iterations int
}

// state is the shared per-run bookkeeping: each node's token knowledge
// plus the set of tokens already disseminated. Because every broadcast
// phase delivers the same decoded tokens to every node, the broadcast
// set is common knowledge and is kept once.
type state struct {
	sets        []*token.Set
	broadcasted map[token.UID]bool
	k           int
	rngs        []*rand.Rand
}

func newState(dist token.Distribution, seed int64) *state {
	st := &state{
		sets:        make([]*token.Set, len(dist)),
		broadcasted: make(map[token.UID]bool),
		k:           dist.K(),
		rngs:        make([]*rand.Rand, len(dist)),
	}
	for i, ts := range dist {
		st.sets[i] = token.NewSet()
		for _, t := range ts {
			st.sets[i].Add(t)
		}
		st.rngs[i] = rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9 + 7))
	}
	return st
}

func (st *state) eligible(u token.UID) bool { return !st.broadcasted[u] }

func (st *state) remaining() int { return st.k - len(st.broadcasted) }

// deliver records that tokens were decoded by every node: they join
// every knowledge set and the broadcast set.
func (st *state) deliver(ts []token.Token) {
	for _, t := range ts {
		st.broadcasted[t.UID] = true
		for _, set := range st.sets {
			set.Add(t)
		}
	}
}

// verify checks that every node knows every token of the distribution.
func (st *state) verify(dist token.Distribution) error {
	want := dist.All()
	for i, set := range st.sets {
		for _, t := range want {
			got, ok := set.Get(t.UID)
			if !ok {
				return fmt.Errorf("dissem: node %d missing token %v", i, t.UID)
			}
			if !got.Equal(t) {
				return fmt.Errorf("dissem: node %d has corrupted token %v", i, t.UID)
			}
		}
	}
	return nil
}

func (p Params) maxIterations(k int) int {
	if p.MaxIterations > 0 {
		return p.MaxIterations
	}
	return 20*k + 200
}

// codedBroadcast runs one Lemma 5.3 indexed-broadcast phase over the
// session: node i injects initial[i], everyone mixes for the schedule,
// and each node's decoded payloads are returned (they are identical
// whenever decoding succeeds, which the phase requires of node 0 and
// spot-checks elsewhere).
func codedBroadcast(
	s *dynnet.Session,
	st *state,
	kDims, payloadBits int,
	initial [][]rlnc.Coded,
) ([]gf.BitVec, error) {
	n := s.N()
	schedule := rlnc.DefaultSchedule(n, kDims)
	nodes := make([]dynnet.Node, n)
	impls := make([]*rlnc.BroadcastNode, n)
	for i := range nodes {
		impls[i] = rlnc.NewBroadcastNode(kDims, payloadBits, schedule, initial[i], st.rngs[i])
		nodes[i] = impls[i]
	}
	if err := s.RunFixed(nodes, schedule); err != nil {
		return nil, err
	}
	// Node 0's payloads are the phase output; the other nodes only need
	// the full-coefficient-rank check (CanDecode guarantees Decode
	// succeeds), which avoids materializing n*k payload copies.
	payloads, err := impls[0].Span().Decode()
	if err != nil {
		return nil, fmt.Errorf("dissem: coded broadcast: node 0 failed to decode: %w", err)
	}
	for i := 1; i < len(impls); i++ {
		if !impls[i].Span().CanDecode() {
			return nil, fmt.Errorf("dissem: coded broadcast: node %d failed to decode: rank %d of %d",
				i, impls[i].Span().Rank(), kDims)
		}
	}
	return payloads, nil
}

package dissem

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/token"
)

type algo struct {
	name string
	run  func(token.Distribution, Params, dynnet.Adversary) (Result, error)
}

func algorithms() []algo {
	return []algo{
		{"naive", Naive},
		{"greedy", GreedyForward},
		{"priority", PriorityForward},
	}
}

// TestAllAlgorithmsDisseminate runs every dissemination algorithm over a
// grid of distributions and adversaries; the drivers self-verify that
// every node decoded every token.
func TestAllAlgorithmsDisseminate(t *testing.T) {
	const n, d = 12, 8
	const b = 512
	dists := []struct {
		name string
		dist token.Distribution
	}{
		{"one-per-node", token.OnePerNode(n, d, rand.New(rand.NewSource(1)))},
		{"spread", token.Spread(n, 20, d, rand.New(rand.NewSource(2)))},
		{"at-one", token.AtOne(n, 9, d, rand.New(rand.NewSource(3)))},
	}
	advs := []struct {
		name string
		mk   func() dynnet.Adversary
	}{
		{"random", func() dynnet.Adversary { return adversary.NewRandomConnected(n, n/2, 5) }},
		{"rotating-path", func() dynnet.Adversary { return adversary.NewRotatingPath(n, 6) }},
	}
	for _, a := range algorithms() {
		for _, dd := range dists {
			for _, av := range advs {
				t.Run(a.name+"/"+dd.name+"/"+av.name, func(t *testing.T) {
					res, err := a.run(dd.dist, Params{B: b, D: d, Seed: 42}, av.mk())
					if err != nil {
						t.Fatal(err)
					}
					if res.Rounds <= 0 || res.Iterations <= 0 {
						t.Errorf("implausible result %+v", res)
					}
				})
			}
		}
	}
}

// TestGreedySingleIterationWhenCapacityLarge checks that with b^2/d >= k
// the greedy algorithm finishes in one broadcast iteration.
func TestGreedySingleIterationWhenCapacityLarge(t *testing.T) {
	const n, d, k = 10, 8, 6
	dist := token.AtOne(n, k, d, rand.New(rand.NewSource(7)))
	res, err := GreedyForward(dist, Params{B: 1024, D: d, Seed: 1}, adversary.NewRandomConnected(n, n, 8))
	if err != nil {
		t.Fatal(err)
	}
	// One productive iteration plus the final empty check.
	if res.Iterations > 2 {
		t.Errorf("iterations = %d, want <= 2", res.Iterations)
	}
}

// TestGreedyBeatsForwardingShape is the headline qualitative claim
// (E2/E3 shape at a single point): with moderate k and b, greedy-forward
// uses fewer rounds than the Theorem 2.1 pipelined flooding baseline.
func TestGreedyBeatsForwardingShape(t *testing.T) {
	const n, d = 16, 8
	const b = 1024
	dist := token.OnePerNode(n, d, rand.New(rand.NewSource(9)))
	res, err := GreedyForward(dist, Params{B: b, D: d, Seed: 2}, adversary.NewRandomConnected(n, n/2, 10))
	if err != nil {
		t.Fatal(err)
	}
	// The baseline would take ceil(k/c)*n rounds with c = b/(d+64)
	// tokens per message; at b=1024, c=11, that is n=16 rounds minimum
	// but greedy pays gathering overhead at this tiny scale. The claim
	// worth locking in at unit-test scale is correct dissemination with
	// bounded iterations; the quantitative separation is measured by the
	// benchmarks at larger n.
	if res.Iterations > 3 {
		t.Errorf("iterations = %d, want <= 3 at this scale", res.Iterations)
	}
}

func TestPlanBlocks(t *testing.T) {
	tests := []struct {
		b, d    int
		wantErr bool
	}{
		{1024, 8, false},
		{256, 8, false},
		{89, 8, false},
		{88, 8, true}, // 16 + 72 bits for one block leaves no coefficient room
		{32, 8, true},
	}
	for _, tt := range tests {
		plan, err := planBlocks(tt.b, tt.d)
		if (err != nil) != tt.wantErr {
			t.Errorf("planBlocks(%d,%d): err=%v, wantErr=%v", tt.b, tt.d, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if plan.m < 1 || plan.numBlocks < 1 {
			t.Errorf("planBlocks(%d,%d) = %+v", tt.b, tt.d, plan)
		}
		if plan.numBlocks+plan.blockBits > tt.b {
			t.Errorf("planBlocks(%d,%d): message %d bits exceeds budget", tt.b, tt.d, plan.numBlocks+plan.blockBits)
		}
	}
}

// TestPlanCapacityGrowsQuadratically spot-checks the b^2 scaling of the
// per-iteration throughput that Theorem 7.3 relies on.
func TestPlanCapacityGrowsQuadratically(t *testing.T) {
	const d = 8
	p1, err := planBlocks(1024, d)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := planBlocks(2048, d)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(p2.capacity()) / float64(p1.capacity())
	if ratio < 3.0 {
		t.Errorf("capacity ratio for 2x budget = %.2f, want ~4 (quadratic)", ratio)
	}
}

func TestNaiveBudgetTooSmall(t *testing.T) {
	dist := token.OnePerNode(4, 8, rand.New(rand.NewSource(11)))
	_, err := Naive(dist, Params{B: 60, D: 8, Seed: 1}, adversary.NewRandomConnected(4, 1, 1))
	if err == nil {
		t.Error("tiny budget accepted")
	}
}

func TestPriorityValueRoundTrip(t *testing.T) {
	for _, tt := range []struct{ owner, idx int }{{0, 0}, {5, 9}, {1023, 4000}} {
		v := priorityValue(0xabcdef, tt.owner, tt.idx)
		o, i := priorityOwnerIdx(v)
		if o != tt.owner || i != tt.idx {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", tt.owner, tt.idx, o, i)
		}
	}
}

func TestPriorityValueOrderIsRandomFirst(t *testing.T) {
	// Lower priority always sorts first regardless of owner/idx.
	lo := priorityValue(1, 9999 /* owner */, 100000)
	hi := priorityValue(2, 0, 0)
	if lo >= hi {
		t.Error("priority must dominate owner and index in ordering")
	}
}

// TestDeterministicGivenSeed: same seed, same adversary seed => same
// round count, for reproducible experiments.
func TestDeterministicGivenSeed(t *testing.T) {
	const n, d, b = 10, 8, 512
	run := func() Result {
		dist := token.OnePerNode(n, d, rand.New(rand.NewSource(21)))
		res, err := GreedyForward(dist, Params{B: b, D: d, Seed: 5}, adversary.NewRandomConnected(n, 3, 22))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

// TestStateDeliverIdempotent checks duplicate delivery doesn't corrupt
// accounting.
func TestStateDeliverIdempotent(t *testing.T) {
	dist := token.OnePerNode(4, 8, rand.New(rand.NewSource(23)))
	st := newState(dist, 1)
	ts := dist.All()
	st.deliver(ts[:2])
	st.deliver(ts[:2])
	if got := st.remaining(); got != 2 {
		t.Errorf("remaining = %d, want 2", got)
	}
}

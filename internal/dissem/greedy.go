package dissem

import (
	"fmt"

	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// blockPlan fixes the block geometry Section 7 uses to beat the
// coefficient overhead: tokens are grouped into blocks of roughly b/2
// bits so that a message carries one coded block plus one coefficient
// per block, i.e. numBlocks + blockBits <= b. The per-iteration
// throughput is then m*numBlocks ~ b^2/d tokens.
type blockPlan struct {
	// m is the token capacity of one block.
	m int
	// blockBits is the wire size of one (padded) block.
	blockBits int
	// numBlocks is the number of blocks coded together per broadcast,
	// which is also the coefficient dimension.
	numBlocks int
}

// capacity returns the tokens deliverable per coded broadcast.
func (bp blockPlan) capacity() int { return bp.m * bp.numBlocks }

// planBlocks computes the geometry for budget b and token size d.
func planBlocks(b, d int) (blockPlan, error) {
	m := token.TokensPerBlock(b/2, d)
	if m < 1 {
		m = 1
	}
	bits := token.BlockBits(m, d)
	numBlocks := b - bits
	if numBlocks < 1 {
		return blockPlan{}, fmt.Errorf("dissem: budget b=%d too small to code even one d=%d block (needs %d bits + coefficients)", b, d, bits)
	}
	return blockPlan{m: m, blockBits: bits, numBlocks: numBlocks}, nil
}

// usedBlocks returns the coefficient dimension for broadcasting count
// gathered tokens: enough blocks to hold them, capped at the budget's
// block space. All nodes can compute it because the gathered count is
// flooded during identification.
func (bp blockPlan) usedBlocks(count int) int {
	if count > bp.capacity() {
		count = bp.capacity()
	}
	blocks := (count + bp.m - 1) / bp.m
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// packLeaderBlocks packs up to blocks*plan.m of the leader's eligible
// tokens into exactly blocks blocks (padding the tail with empty blocks
// so the coefficient dimension is fixed and known to everyone).
func packLeaderBlocks(leader *token.Set, st *state, plan blockPlan, blocks int) ([]rlnc.Coded, []token.Token, error) {
	var chosen []token.Token
	for _, t := range leader.Tokens() {
		if st.eligible(t.UID) {
			chosen = append(chosen, t)
			if len(chosen) == blocks*plan.m {
				break
			}
		}
	}
	initial := make([]rlnc.Coded, blocks)
	for blk := 0; blk < blocks; blk++ {
		lo := blk * plan.m
		hi := lo + plan.m
		if lo > len(chosen) {
			lo = len(chosen)
		}
		if hi > len(chosen) {
			hi = len(chosen)
		}
		packed, err := token.PackBlock(chosen[lo:hi], plan.m, st.d())
		if err != nil {
			return nil, nil, err
		}
		initial[blk] = rlnc.Encode(blk, blocks, packed)
	}
	return initial, chosen, nil
}

// d returns the payload size of the tokens in the run (uniform by
// construction of the distributions).
func (st *state) d() int {
	for _, set := range st.sets {
		for _, t := range set.Tokens() {
			return t.D()
		}
	}
	return 0
}

// GreedyForward is the Theorem 7.3 algorithm: while tokens remain,
// gather with random-forward (O(n) rounds), identify a node with the
// maximum count of unbroadcast tokens (n rounds), and let it broadcast
// up to b^2/d of them in one O(n)-round network-coded indexed broadcast.
// Total: O(nkd/b^2 + nb) rounds.
func GreedyForward(dist token.Distribution, p Params, adv dynnet.Adversary) (Result, error) {
	n := len(dist)
	st := newState(dist, p.Seed)
	s := dynnet.NewSession(n, adv, dynnet.Config{BitBudget: p.B})

	plan, err := planBlocks(p.B, p.D)
	if err != nil {
		return Result{}, err
	}
	c, err := forwarding.TokensPerMessage(p.B, p.D)
	if err != nil {
		return Result{}, err
	}

	iters := 0
	for st.remaining() > 0 {
		if iters++; iters > p.maxIterations(st.k) {
			return Result{}, fmt.Errorf("dissem: greedy exceeded %d iterations", p.maxIterations(st.k))
		}
		res, err := forwarding.RandomForward(s, st.sets, st.eligible, c, 2*n, st.rngs)
		if err != nil {
			return Result{}, err
		}
		if res.Count == 0 {
			break
		}
		blocks := plan.usedBlocks(res.Count)
		initial := make([][]rlnc.Coded, n)
		leaderInit, _, err := packLeaderBlocks(st.sets[res.Identified], st, plan, blocks)
		if err != nil {
			return Result{}, err
		}
		initial[res.Identified] = leaderInit
		if err := broadcastAndDeliver(s, st, plan, blocks, p.D, initial); err != nil {
			return Result{}, err
		}
	}

	if err := st.verify(dist); err != nil {
		return Result{}, err
	}
	m := s.Metrics()
	return Result{Rounds: m.Rounds, Bits: m.Bits, Messages: m.Messages, Iterations: iters}, nil
}

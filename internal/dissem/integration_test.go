package dissem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/token"
)

// TestIntegrationAllAlgorithmsAllAdversaries is the cross-module sweep:
// every dissemination algorithm against every adversary family the
// repository implements, including T-interval connectivity (where only
// a spanning subgraph is stable). The drivers self-verify full
// dissemination, so a pass means end-to-end correctness of engine,
// adversary, coding, forwarding and driver logic together.
func TestIntegrationAllAlgorithmsAllAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped with -short")
	}
	const n, d, b = 10, 8, 512
	advs := []struct {
		name string
		mk   func(seed int64) dynnet.Adversary
	}{
		{"random", func(s int64) dynnet.Adversary { return adversary.NewRandomConnected(n, n/2, s) }},
		{"rotating-path", func(s int64) dynnet.Adversary { return adversary.NewRotatingPath(n, s) }},
		{"t-interval", func(s int64) dynnet.Adversary { return adversary.NewTInterval(n, 4, 2, s) }},
		{"t-stable", func(s int64) dynnet.Adversary {
			return adversary.NewTStable(adversary.NewRandomConnected(n, 3, s), 8)
		}},
	}
	for _, a := range algorithms() {
		for _, av := range advs {
			t.Run(a.name+"/"+av.name, func(t *testing.T) {
				dist := token.Spread(n, 14, d, rand.New(rand.NewSource(3)))
				res, err := a.run(dist, Params{B: b, D: d, Seed: 4}, av.mk(5))
				if err != nil {
					t.Fatal(err)
				}
				if res.Rounds <= 0 {
					t.Error("no rounds recorded")
				}
			})
		}
	}
}

// TestPropertyRandomInstances fuzzes the full pipeline: random (n, k,
// b, d, distribution, adversary) instances must all disseminate and
// self-verify or fail with a clean budget/geometry error.
func TestPropertyRandomInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped with -short")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		k := 1 + rng.Intn(n)
		d := 1 + rng.Intn(32)
		b := 128 + rng.Intn(512)
		dist := token.Spread(n, k, d, rng)
		var adv dynnet.Adversary
		if seed%2 == 0 {
			adv = adversary.NewRandomConnected(n, rng.Intn(n), seed)
		} else {
			adv = adversary.NewRotatingPath(n, seed)
		}
		res, err := GreedyForward(dist, Params{B: b, D: d, Seed: seed}, adv)
		if err != nil {
			// Budget/geometry rejections are legitimate for tiny b.
			return b < token.CountBits+token.UIDBits+d+32
		}
		return res.Rounds > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestIntegrationAgainstIsolation runs greedy-forward against the
// adaptive adversary that inspects forwarding knowledge and throttles
// the informed/uninformed cut to one edge. Network coding still
// completes (each crossing carries new information with probability
// 1/2), demonstrating the robustness claim that motivates the paper.
func TestIntegrationAgainstIsolation(t *testing.T) {
	const n, d, b = 8, 8, 512
	dist := token.OnePerNode(n, d, rand.New(rand.NewSource(9)))
	// A fixed bipartition bottleneck: only one edge ever crosses between
	// the two halves, so all information must squeeze through it.
	adv := adversary.NewIsolateInformed(n, 11, func(i int, _ []dynnet.Node) bool {
		return i < n/2
	})
	res, err := GreedyForward(dist, Params{B: b, D: d, Seed: 12}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Error("no rounds recorded")
	}
}

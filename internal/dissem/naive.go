package dissem

import (
	"fmt"

	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// Naive is the Corollary 7.1 algorithm: nodes repeatedly flood the
// smallest Omega(b / log n) UIDs of not-yet-broadcast tokens they know
// (n rounds), index those tokens by their UID order, and broadcast them
// with network-coded indexed broadcast (O(n) rounds). It needs
// O(k log(n)/b) iterations, giving O((log n / d) · nkd/b) total — only a
// log(n)/d factor better than forwarding, which is why Section 7 then
// develops the gathering-based algorithms.
func Naive(dist token.Distribution, p Params, adv dynnet.Adversary) (Result, error) {
	n := len(dist)
	st := newState(dist, p.Seed)
	s := dynnet.NewSession(n, adv, dynnet.Config{BitBudget: p.B})

	// g UIDs of UIDBits each per message, and g coefficients + d payload
	// must also fit one message in the broadcast step.
	g := (p.B - token.CountBits) / token.UIDBits
	if g > p.B-p.D {
		g = p.B - p.D
	}
	if g < 1 {
		return Result{}, fmt.Errorf("dissem: budget b=%d too small for naive indexing with d=%d", p.B, p.D)
	}

	iters := 0
	for st.remaining() > 0 {
		if iters++; iters > p.maxIterations(st.k) {
			return Result{}, fmt.Errorf("dissem: naive exceeded %d iterations", p.maxIterations(st.k))
		}

		// Phase 1: flood the g smallest eligible UIDs for n rounds.
		nodes := make([]dynnet.Node, n)
		impls := make([]*forwarding.SmallestFloodNode, n)
		for i := range nodes {
			var own []uint64
			for _, t := range st.sets[i].Tokens() {
				if st.eligible(t.UID) {
					own = append(own, uint64(t.UID))
				}
			}
			impls[i] = forwarding.NewSmallestFloodNode(own, g, g, token.UIDBits, n)
			nodes[i] = impls[i]
		}
		if err := s.RunFixed(nodes, n); err != nil {
			return Result{}, err
		}
		chosen := impls[0].Smallest()
		for i := 1; i < n; i++ {
			other := impls[i].Smallest()
			if len(other) != len(chosen) {
				return Result{}, fmt.Errorf("dissem: naive: nodes disagree on chosen UID count")
			}
			for j := range chosen {
				if other[j] != chosen[j] {
					return Result{}, fmt.Errorf("dissem: naive: nodes disagree on chosen UIDs")
				}
			}
		}
		if len(chosen) == 0 {
			break
		}

		// Phase 2: coded indexed broadcast of the chosen tokens, indexed
		// by their position in the (shared, sorted) chosen list.
		kDims := len(chosen)
		initial := make([][]rlnc.Coded, n)
		for i := range initial {
			for idx, u := range chosen {
				if t, ok := st.sets[i].Get(token.UID(u)); ok {
					initial[i] = append(initial[i], rlnc.Encode(idx, kDims, t.Payload))
				}
			}
		}
		payloads, err := codedBroadcast(s, st, kDims, p.D, initial)
		if err != nil {
			return Result{}, err
		}
		delivered := make([]token.Token, kDims)
		for idx, u := range chosen {
			delivered[idx] = token.Token{UID: token.UID(u), Payload: payloads[idx]}
		}
		st.deliver(delivered)
	}

	if err := st.verify(dist); err != nil {
		return Result{}, err
	}
	m := s.Metrics()
	return Result{Rounds: m.Rounds, Bits: m.Bits, Messages: m.Messages, Iterations: iters}, nil
}

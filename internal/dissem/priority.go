package dissem

import (
	"fmt"

	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// priorityValue packs (random priority, owner, block index) so that
// uint64 ordering selects uniformly random blocks while staying unique
// and decodable to the owning node.
func priorityValue(prio uint32, owner, idx int) uint64 {
	return uint64(prio&0xffffff)<<40 | uint64(uint16(owner))<<24 | uint64(idx&0xffffff)
}

func priorityOwnerIdx(v uint64) (owner, idx int) {
	return int(uint16(v >> 24)), int(v & 0xffffff)
}

// PriorityForward is the Theorem 7.5 algorithm. Each iteration:
// gather with random-forward; if some node gathered a full b^2/d batch,
// do a greedy broadcast; otherwise every node groups its unbroadcast
// tokens into blocks of ~b/2 bits, assigns each block a random priority,
// the network floods the numBlocks smallest priorities to select and
// index Theta(b) random blocks, and the selected blocks are broadcast
// with network-coded indexed broadcast. The random selection guarantees
// every token's copy count decays geometrically (Lemma 7.4).
func PriorityForward(dist token.Distribution, p Params, adv dynnet.Adversary) (Result, error) {
	n := len(dist)
	st := newState(dist, p.Seed)
	s := dynnet.NewSession(n, adv, dynnet.Config{BitBudget: p.B})

	plan, err := planBlocks(p.B, p.D)
	if err != nil {
		return Result{}, err
	}
	c, err := forwarding.TokensPerMessage(p.B, p.D)
	if err != nil {
		return Result{}, err
	}
	perMsg := (p.B - token.CountBits) / 64
	if perMsg < 1 {
		return Result{}, fmt.Errorf("dissem: budget b=%d cannot flood 64-bit priorities", p.B)
	}

	iters := 0
	for st.remaining() > 0 {
		if iters++; iters > p.maxIterations(st.k) {
			return Result{}, fmt.Errorf("dissem: priority exceeded %d iterations", p.maxIterations(st.k))
		}
		res, err := forwarding.RandomForward(s, st.sets, st.eligible, c, 2*n, st.rngs)
		if err != nil {
			return Result{}, err
		}
		if res.Count == 0 {
			break
		}
		if res.Count >= plan.capacity() {
			// Gathering still works: use the greedy step.
			blocks := plan.usedBlocks(res.Count)
			initial := make([][]rlnc.Coded, n)
			leaderInit, _, err := packLeaderBlocks(st.sets[res.Identified], st, plan, blocks)
			if err != nil {
				return Result{}, err
			}
			initial[res.Identified] = leaderInit
			if err := broadcastAndDeliver(s, st, plan, blocks, p.D, initial); err != nil {
				return Result{}, err
			}
			continue
		}

		// Priority step. Every node chunks its eligible tokens into
		// blocks of m and draws a random priority per block.
		blocks := make([][][]token.Token, n) // node -> block idx -> tokens
		own := make([][]uint64, n)
		for i := range st.sets {
			var eligibleTokens []token.Token
			for _, t := range st.sets[i].Tokens() {
				if st.eligible(t.UID) {
					eligibleTokens = append(eligibleTokens, t)
				}
			}
			for lo := 0; lo < len(eligibleTokens); lo += plan.m {
				hi := lo + plan.m
				if hi > len(eligibleTokens) {
					hi = len(eligibleTokens)
				}
				idx := len(blocks[i])
				blocks[i] = append(blocks[i], eligibleTokens[lo:hi])
				own[i] = append(own[i], priorityValue(st.rngs[i].Uint32(), i, idx))
			}
		}

		chosen, err := forwarding.FloodSmallestMulti(s, own, plan.numBlocks, perMsg, 64, n)
		if err != nil {
			return Result{}, err
		}
		if len(chosen) == 0 {
			return Result{}, fmt.Errorf("dissem: priority: tokens remain but no blocks selected")
		}

		// Selected blocks are indexed by their position in the chosen
		// list; owners inject them.
		kDims := len(chosen)
		initial := make([][]rlnc.Coded, n)
		for slot, v := range chosen {
			owner, idx := priorityOwnerIdx(v)
			if owner >= n || idx >= len(blocks[owner]) {
				return Result{}, fmt.Errorf("dissem: priority: chosen value decodes to unknown block (%d,%d)", owner, idx)
			}
			packed, err := token.PackBlock(blocks[owner][idx], plan.m, p.D)
			if err != nil {
				return Result{}, err
			}
			initial[owner] = append(initial[owner], rlnc.Encode(slot, kDims, packed))
		}
		payloads, err := codedBroadcast(s, st, kDims, plan.blockBits, initial)
		if err != nil {
			return Result{}, err
		}
		var delivered []token.Token
		for _, pb := range payloads {
			ts, err := token.UnpackBlock(pb, plan.m, p.D)
			if err != nil {
				return Result{}, fmt.Errorf("dissem: priority: decoded block corrupt: %w", err)
			}
			delivered = append(delivered, ts...)
		}
		st.deliver(delivered)
	}

	if err := st.verify(dist); err != nil {
		return Result{}, err
	}
	m := s.Metrics()
	return Result{Rounds: m.Rounds, Bits: m.Bits, Messages: m.Messages, Iterations: iters}, nil
}

// broadcastAndDeliver runs a coded broadcast of pre-packed leader blocks
// over the given coefficient dimension and delivers the decoded tokens
// (the greedy step shared by both gathering-based algorithms).
func broadcastAndDeliver(s *dynnet.Session, st *state, plan blockPlan, blocks, d int, initial [][]rlnc.Coded) error {
	payloads, err := codedBroadcast(s, st, blocks, plan.blockBits, initial)
	if err != nil {
		return err
	}
	var delivered []token.Token
	for _, pb := range payloads {
		ts, err := token.UnpackBlock(pb, plan.m, d)
		if err != nil {
			return fmt.Errorf("dissem: decoded block corrupt: %w", err)
		}
		delivered = append(delivered, ts...)
	}
	st.deliver(delivered)
	return nil
}

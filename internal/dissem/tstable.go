package dissem

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/stable"
	"repro/internal/token"
)

// TStableDisseminate is the Theorem 2.4 algorithm (first variant):
// k-token dissemination on a T-stable network. Tokens are gathered with
// random-forward exactly as in greedy-forward, but each broadcast epoch
// uses the Section 8 share-pass-share machinery, whose per-epoch
// capacity scales as (bT)^2 bits instead of b^2 — the source of the
// quadratic stability speedup.
func TStableDisseminate(dist token.Distribution, p Params, t int, inner dynnet.Adversary) (Result, error) {
	n := len(dist)
	tadv := adversary.NewTStable(inner, t)
	st := newState(dist, p.Seed)
	s := dynnet.NewSession(n, tadv, dynnet.Config{BitBudget: p.B})

	fullGeo, err := stable.PlanGeometry(n, p.B, t)
	if err != nil {
		return Result{}, err
	}
	c, err := forwarding.TokensPerMessage(p.B, p.D)
	if err != nil {
		return Result{}, err
	}

	iters := 0
	for st.remaining() > 0 {
		if iters++; iters > p.maxIterations(st.k) {
			return Result{}, fmt.Errorf("dissem: T-stable exceeded %d iterations", p.maxIterations(st.k))
		}
		res, err := forwarding.RandomForward(s, st.sets, st.eligible, c, 2*n, st.rngs)
		if err != nil {
			return Result{}, err
		}
		if res.Count == 0 {
			break
		}
		// Size the coded vector to the remaining workload (smaller
		// vectors mean cheaper meta-rounds; the full geometry is the
		// (bT)^2 capacity ceiling). Capacity scales as L^2, so the
		// needed vector length scales as the square root of the
		// remaining bits.
		remBits := st.remaining() * (token.UIDBits + p.D + token.CountBits)
		needBits := 2*intSqrt(remBits) + 256
		geo := fullGeo.Shrink(needBits)
		m := token.TokensPerBlock(geo.Payload, p.D)
		if m < 1 {
			return Result{}, fmt.Errorf("dissem: T-stable geometry payload %d bits cannot hold a d=%d token", geo.Payload, p.D)
		}
		capacity := geo.Blocks * m

		// The leader packs up to capacity tokens into geo.Blocks padded
		// blocks of geo.Payload bits each.
		var chosen []token.Token
		for _, tk := range st.sets[res.Identified].Tokens() {
			if st.eligible(tk.UID) {
				chosen = append(chosen, tk)
				if len(chosen) == capacity {
					break
				}
			}
		}
		initial := make([][]rlnc.Coded, n)
		for blk := 0; blk < geo.Blocks; blk++ {
			lo, hi := blk*m, (blk+1)*m
			if lo > len(chosen) {
				lo = len(chosen)
			}
			if hi > len(chosen) {
				hi = len(chosen)
			}
			packed, err := token.PackBlock(chosen[lo:hi], m, p.D)
			if err != nil {
				return Result{}, err
			}
			// Blocks of geo.Payload bits: PackBlock yields BlockBits(m, d)
			// bits, padded up to the geometry payload.
			vec := rlnc.Encode(blk, geo.Blocks, padTo(packed, geo.Payload))
			initial[res.Identified] = append(initial[res.Identified], vec)
		}
		payloads, err := stable.Broadcast(s, tadv, geo, initial, st.rngs, 0)
		if err != nil {
			return Result{}, err
		}
		var delivered []token.Token
		for _, pb := range payloads[0] {
			ts, err := token.UnpackBlock(pb.Slice(0, token.BlockBits(m, p.D)), m, p.D)
			if err != nil {
				return Result{}, fmt.Errorf("dissem: T-stable decoded block corrupt: %w", err)
			}
			delivered = append(delivered, ts...)
		}
		st.deliver(delivered)
	}

	if err := st.verify(dist); err != nil {
		return Result{}, err
	}
	met := s.Metrics()
	return Result{Rounds: met.Rounds, Bits: met.Bits, Messages: met.Messages, Iterations: iters}, nil
}

// intSqrt returns floor(sqrt(x)) for x >= 0.
func intSqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// padTo extends v with zero bits to exactly n bits.
func padTo(v gf.BitVec, n int) gf.BitVec {
	if v.Len() == n {
		return v
	}
	out := gf.NewBitVec(n)
	v.CopyInto(out, 0)
	return out
}

package dissem

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/stable"
	"repro/internal/token"
)

// TestTStableDisseminate runs the Theorem 2.4 algorithm end to end on a
// per-window-random T-stable network.
func TestTStableDisseminate(t *testing.T) {
	const n, d, b, T = 12, 8, 512, 192
	tests := []struct {
		name string
		dist token.Distribution
	}{
		{"at-one", token.AtOne(n, 20, d, rand.New(rand.NewSource(1)))},
		{"one-per-node", token.OnePerNode(n, d, rand.New(rand.NewSource(2)))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := TStableDisseminate(tt.dist, Params{B: b, D: d, Seed: 3},
				T, adversary.NewRandomConnected(n, n, 4))
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds <= 0 {
				t.Errorf("implausible result %+v", res)
			}
		})
	}
}

// TestTStableTooSmallWindow checks the driver reports unusable windows.
func TestTStableTooSmallWindow(t *testing.T) {
	dist := token.AtOne(8, 4, 8, rand.New(rand.NewSource(5)))
	_, err := TStableDisseminate(dist, Params{B: 512, D: 8, Seed: 1}, 2, adversary.NewRandomConnected(8, 4, 6))
	if err == nil {
		t.Error("T=2 should be rejected")
	}
}

// TestTStableBeatsBaselineShape is the E5 claim at a single point:
// with everything at one node and a long window, the coded T-stable
// algorithm delivers in fewer rounds than the forwarding baseline run
// with T=1 would (sanity anchor for the benchmark sweep).
func TestTStableBeatsBaselineShape(t *testing.T) {
	const n, d, T = 12, 8, 192
	const k = 40
	b := 512
	dist := token.AtOne(n, k, d, rand.New(rand.NewSource(7)))
	res, err := TStableDisseminate(dist, Params{B: b, D: d, Seed: 8},
		T, adversary.NewRandomConnected(n, n, 9))
	if err != nil {
		t.Fatal(err)
	}
	baseRounds, err := stable.RunFlood(dist, k, b, d, 1,
		adversary.NewRandomConnected(n, n, 9))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coded T-stable: %d rounds; forwarding T=1 baseline: %d rounds", res.Rounds, baseRounds)
	// At this tiny scale constants dominate; just require both completed
	// and record the ratio for the benchmark to quantify.
	if res.Rounds <= 0 || baseRounds <= 0 {
		t.Error("runs did not complete")
	}
}

// Package dynnet implements the dynamic network model of Kuhn, Lynch and
// Oshman (STOC 2010) that the paper's algorithms run in: n nodes with
// unique IDs proceed in synchronized rounds; in every round an adversary
// picks a fresh connected topology; each node then broadcasts one O(b)-bit
// message chosen without knowledge of who its neighbours for the round
// will be, and receives the messages of all its neighbours.
//
// The engine enforces the model's two teeth: the adversary is consulted
// before nodes speak (adaptive adversary, Section 4.1), and every message
// is charged against the b-bit budget, which is what makes the paper's
// message-size trade-offs measurable.
package dynnet

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/shard"
)

// NodeID identifies a node; IDs are 0..n-1. The model gives nodes unique
// O(log n)-bit UIDs, which we realize as their index.
type NodeID = int

// Message is anything a node broadcasts in a round. Bits reports the
// message's size, which the engine checks against the round budget.
type Message interface {
	Bits() int
}

// Node is one protocol participant. The engine calls Send exactly once
// per round on every non-terminated node and then Receive exactly once
// with the (possibly empty) set of neighbour messages.
type Node interface {
	// Send returns the broadcast message for the round, or nil to stay
	// silent. Send is called without any information about the round's
	// topology (anonymous broadcast).
	Send(round int) Message
	// Receive delivers the messages of all neighbours for the round.
	// The slice is engine-owned scratch, valid only for the duration of
	// the call: implementations must copy what they keep.
	Receive(round int, msgs []Message)
	// Done reports whether the node has terminated.
	Done() bool
}

// Adversary chooses the topology for each round. The adaptive adversary
// of the paper may inspect the full node state (it is handed the nodes)
// but not the still-unchosen random messages of the round.
type Adversary interface {
	// Graph returns the connected communication graph for the round.
	Graph(round int, nodes []Node) *graph.Graph
}

// OmniscientAdversary is the Section 6 adversary that additionally sees
// the messages the nodes are about to send (it "knows all randomness in
// advance"). When an Engine's adversary implements this interface the
// engine collects all messages first and lets the adversary pick the
// topology afterwards.
type OmniscientAdversary interface {
	Adversary
	// GraphAfterMessages is like Graph but also receives the round's
	// already-fixed messages, indexed by node.
	GraphAfterMessages(round int, nodes []Node, msgs []Message) *graph.Graph
}

// Config configures an Engine.
type Config struct {
	// BitBudget is the per-message size bound b in bits; 0 disables
	// enforcement.
	BitBudget int
	// MaxRounds aborts the run after this many rounds; 0 means the
	// package default (DefaultMaxRounds).
	MaxRounds int
	// ValidateConnectivity makes the engine reject rounds whose topology
	// is disconnected, which the model forbids the adversary from
	// serving. It costs O(n + m) per round, so it is off by default and
	// enabled in tests.
	ValidateConnectivity bool
	// Observer, when non-nil, is invoked after every round with the
	// round's topology and messages (nil entries for silent nodes).
	// Observers must not retain or mutate their arguments.
	Observer Observer
	// Shards partitions the node table into contiguous worker ranges for
	// the engine's per-node phases (Send collection and Receive
	// delivery); 0 or 1 runs serially. The adversary, connectivity
	// validation and the Observer always run serially between the
	// parallel phases, and metrics are reduced in shard order, so a
	// sharded round is observationally identical to a serial one. At
	// Shards>1 the engine calls Send/Receive/Done concurrently for
	// DISTINCT nodes — node implementations sharing mutable state (a
	// common rng, say) are not shardable.
	Shards int
}

// Observer receives a callback after each executed round; the trace
// package uses it to record spreading dynamics without touching the
// protocols.
type Observer interface {
	ObserveRound(round int, g *graph.Graph, msgs []Message, nodes []Node)
}

// DefaultMaxRounds is the safety cap on a single Run when the caller does
// not provide one.
const DefaultMaxRounds = 1 << 20

// Metrics accumulates cost counters across phases.
type Metrics struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Messages is the number of non-nil broadcasts.
	Messages int
	// Bits is the total size of all broadcasts. A broadcast is charged
	// once regardless of neighbour count, matching the model's "one
	// message per node per round".
	Bits int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int
}

// Engine drives a set of nodes against an adversary. Engines are not safe
// for concurrent use.
type Engine struct {
	nodes   []Node
	adv     Adversary
	cfg     Config
	metrics Metrics
	round   int
	// exec partitions the node table for the sharded per-node phases; at
	// one shard every phase runs inline on the calling goroutine.
	exec *shard.Executor
	// msgs and inbufs are per-round scratch reused across Steps so the
	// engine's own bookkeeping allocates nothing in steady state. Both
	// are only valid within a Step: Receive implementations and
	// Observers must not retain the slices they are handed. inbufs holds
	// one delivery scratch per shard (workers never share one).
	msgs   []Message
	inbufs [][]Message
	// deltas is the per-shard metrics/error scratch of the collect
	// phase, reduced serially in shard order after the barrier.
	deltas []collectDelta
}

// collectDelta is one shard's private view of a collect phase: the
// metric increments for its node range, and the first budget error it
// hit (the shard stops collecting there, exactly like the serial loop).
type collectDelta struct {
	metrics Metrics
	err     error
}

// ErrBudgetExceeded is wrapped by errors returned when a node broadcasts
// a message larger than the configured bit budget.
var ErrBudgetExceeded = errors.New("message over bit budget")

// ErrMaxRounds is wrapped by errors returned when a run hits the round cap
// before every node terminated.
var ErrMaxRounds = errors.New("round limit reached")

// ErrDisconnected is wrapped by errors returned when connectivity
// validation is enabled and the adversary serves a disconnected graph,
// which the model forbids.
var ErrDisconnected = errors.New("adversary graph disconnected")

// NewEngine returns an engine over the given nodes and adversary.
func NewEngine(nodes []Node, adv Adversary, cfg Config) *Engine {
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	exec := shard.New(len(nodes), cfg.Shards)
	return &Engine{
		nodes:  nodes,
		adv:    adv,
		cfg:    cfg,
		exec:   exec,
		inbufs: make([][]Message, exec.Shards()),
		deltas: make([]collectDelta, exec.Shards()),
	}
}

// Nodes returns the engine's nodes.
func (e *Engine) Nodes() []Node { return e.nodes }

// Round returns the global round counter (rounds executed so far).
func (e *Engine) Round() int { return e.round }

// Metrics returns the accumulated cost counters.
func (e *Engine) Metrics() Metrics { return e.metrics }

// Step executes one round: topology choice, message choice, delivery.
func (e *Engine) Step() error {
	omni, isOmni := e.adv.(OmniscientAdversary)

	var g *graph.Graph
	if len(e.msgs) != len(e.nodes) {
		e.msgs = make([]Message, len(e.nodes))
	}
	msgs := e.msgs
	for i := range msgs {
		msgs[i] = nil
	}

	// collect gathers every non-terminated node's broadcast, sharded:
	// each worker writes only its own msgs[i] slots and accumulates a
	// private metrics delta, which the serial reduction below folds in
	// ascending shard order. A budget violation stops that shard's loop
	// where the serial loop would have stopped, and the reduction
	// discards every later shard's delta, so the metrics on the error
	// path match the serial engine bit for bit.
	collect := func() error {
		e.exec.Run(func(s, lo, hi int) {
			d := &e.deltas[s]
			*d = collectDelta{}
			for i := lo; i < hi; i++ {
				n := e.nodes[i]
				if n.Done() {
					continue
				}
				m := n.Send(e.round)
				if m == nil {
					continue
				}
				if e.cfg.BitBudget > 0 && m.Bits() > e.cfg.BitBudget {
					d.err = fmt.Errorf("dynnet: round %d node %d sent %d bits > budget %d: %w",
						e.round, i, m.Bits(), e.cfg.BitBudget, ErrBudgetExceeded)
					return
				}
				msgs[i] = m
				d.metrics.Messages++
				d.metrics.Bits += int64(m.Bits())
				if m.Bits() > d.metrics.MaxMessageBits {
					d.metrics.MaxMessageBits = m.Bits()
				}
			}
		})
		for s := 0; s < e.exec.Shards(); s++ {
			d := &e.deltas[s]
			e.metrics.Messages += d.metrics.Messages
			e.metrics.Bits += d.metrics.Bits
			if d.metrics.MaxMessageBits > e.metrics.MaxMessageBits {
				e.metrics.MaxMessageBits = d.metrics.MaxMessageBits
			}
			if d.err != nil {
				return d.err
			}
		}
		return nil
	}

	if isOmni {
		// Section 6 order: messages are fixed first, then the omniscient
		// adversary rewires with full knowledge of them.
		if err := collect(); err != nil {
			return err
		}
		g = omni.GraphAfterMessages(e.round, e.nodes, msgs)
	} else {
		// Section 4.1 order: the adaptive adversary fixes the topology
		// based on node state, then nodes draw their messages without
		// knowing it.
		g = e.adv.Graph(e.round, e.nodes)
		if err := collect(); err != nil {
			return err
		}
	}

	if g.N() != len(e.nodes) {
		return fmt.Errorf("dynnet: round %d adversary graph has %d vertices, want %d", e.round, g.N(), len(e.nodes))
	}
	if e.cfg.ValidateConnectivity && !g.IsConnected() {
		return fmt.Errorf("dynnet: round %d adversary served a disconnected graph: %w", e.round, ErrDisconnected)
	}

	e.exec.Run(func(s, lo, hi int) {
		in := e.inbufs[s]
		for i := lo; i < hi; i++ {
			n := e.nodes[i]
			if n.Done() {
				continue
			}
			in = in[:0]
			for _, v := range g.Neighbors(i) {
				if msgs[v] != nil {
					in = append(in, msgs[v])
				}
			}
			n.Receive(e.round, in)
		}
		e.inbufs[s] = in[:0]
	})
	if e.cfg.Observer != nil {
		e.cfg.Observer.ObserveRound(e.round, g, msgs, e.nodes)
	}
	e.round++
	e.metrics.Rounds++
	return nil
}

// AllDone reports whether every node has terminated.
func (e *Engine) AllDone() bool {
	for _, n := range e.nodes {
		if !n.Done() {
			return false
		}
	}
	return true
}

// Run steps until every node is done, returning the total rounds executed
// by this call. It fails with ErrMaxRounds if the cap is hit first.
func (e *Engine) Run() (int, error) {
	start := e.round
	for !e.AllDone() {
		if e.round-start >= e.cfg.MaxRounds {
			return e.round - start, fmt.Errorf("dynnet: %d rounds without termination: %w", e.cfg.MaxRounds, ErrMaxRounds)
		}
		if err := e.Step(); err != nil {
			return e.round - start, err
		}
	}
	return e.round - start, nil
}

// RunRounds executes exactly r rounds regardless of node termination
// state (used by fixed-schedule phases).
func (e *Engine) RunRounds(r int) error {
	for i := 0; i < r; i++ {
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

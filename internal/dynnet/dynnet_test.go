package dynnet

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// bitMsg is a message that is just a size.
type bitMsg int

func (m bitMsg) Bits() int { return int(m) }

// floodNode learns a bit and rebroadcasts it; terminates after a fixed
// number of rounds.
type floodNode struct {
	informed bool
	rounds   int
	maxRound int
}

type floodMsg struct{}

func (floodMsg) Bits() int { return 1 }

func (n *floodNode) Send(round int) Message {
	if n.informed {
		return floodMsg{}
	}
	return nil
}

func (n *floodNode) Receive(round int, msgs []Message) {
	if len(msgs) > 0 {
		n.informed = true
	}
	n.rounds++
}

func (n *floodNode) Done() bool { return n.rounds >= n.maxRound }

type staticAdv struct{ g *graph.Graph }

func (a staticAdv) Graph(int, []Node) *graph.Graph { return a.g }

func TestFloodOnPathTakesDiameterRounds(t *testing.T) {
	const n = 8
	nodes := make([]Node, n)
	impls := make([]*floodNode, n)
	for i := range nodes {
		impls[i] = &floodNode{maxRound: n}
		nodes[i] = impls[i]
	}
	impls[0].informed = true
	e := NewEngine(nodes, staticAdv{g: graph.Path(n)}, Config{BitBudget: 8})
	rounds, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rounds != n {
		t.Errorf("ran %d rounds, want %d", rounds, n)
	}
	for i, fn := range impls {
		if !fn.informed {
			t.Errorf("node %d not informed after flooding", i)
		}
	}
	// Node at distance d learns the bit in exactly d rounds; metrics
	// should reflect one message per informed node per round.
	if e.Metrics().Messages == 0 || e.Metrics().Bits == 0 {
		t.Error("metrics not recorded")
	}
}

func TestBudgetEnforced(t *testing.T) {
	nodes := []Node{&fixedSender{size: 100, life: 3}, &fixedSender{size: 5, life: 3}}
	e := NewEngine(nodes, staticAdv{g: graph.Path(2)}, Config{BitBudget: 50})
	_, err := e.Run()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

type fixedSender struct {
	size  int
	life  int
	round int
}

func (s *fixedSender) Send(int) Message       { return bitMsg(s.size) }
func (s *fixedSender) Receive(int, []Message) { s.round++ }
func (s *fixedSender) Done() bool             { return s.round >= s.life }

func TestZeroBudgetDisablesEnforcement(t *testing.T) {
	nodes := []Node{&fixedSender{size: 1 << 20, life: 1}, &fixedSender{size: 1, life: 1}}
	e := NewEngine(nodes, staticAdv{g: graph.Path(2)}, Config{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRounds(t *testing.T) {
	// A node that never terminates must trip the cap.
	nodes := []Node{&fixedSender{size: 1, life: 1 << 30}}
	e := NewEngine(nodes, staticAdv{g: graph.New(1)}, Config{MaxRounds: 10})
	rounds, err := e.Run()
	if !errors.Is(err, ErrMaxRounds) {
		t.Errorf("err = %v, want ErrMaxRounds", err)
	}
	if rounds != 10 {
		t.Errorf("rounds = %d, want 10", rounds)
	}
}

func TestAdversaryGraphSizeChecked(t *testing.T) {
	nodes := []Node{&fixedSender{size: 1, life: 5}}
	e := NewEngine(nodes, staticAdv{g: graph.New(3)}, Config{})
	if _, err := e.Run(); err == nil {
		t.Error("mismatched graph size not rejected")
	}
}

func TestConnectivityValidation(t *testing.T) {
	disc := graph.New(3)
	disc.AddEdge(0, 1) // vertex 2 isolated
	mk := func() []Node {
		return []Node{
			&fixedSender{size: 1, life: 5},
			&fixedSender{size: 1, life: 5},
			&fixedSender{size: 1, life: 5},
		}
	}
	e := NewEngine(mk(), staticAdv{g: disc}, Config{ValidateConnectivity: true})
	if _, err := e.Run(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
	// Without validation the same topology is tolerated.
	e = NewEngine(mk(), staticAdv{g: disc}, Config{})
	if _, err := e.Run(); err != nil {
		t.Errorf("unexpected error without validation: %v", err)
	}
}

// omniProbe records whether GraphAfterMessages saw the round's messages.
type omniProbe struct {
	sawMsgs bool
}

func (o *omniProbe) Graph(int, []Node) *graph.Graph { return graph.New(1) }

func (o *omniProbe) GraphAfterMessages(round int, nodes []Node, msgs []Message) *graph.Graph {
	for _, m := range msgs {
		if m != nil {
			o.sawMsgs = true
		}
	}
	return graph.New(1)
}

func TestOmniscientOrdering(t *testing.T) {
	probe := &omniProbe{}
	nodes := []Node{&fixedSender{size: 1, life: 2}}
	e := NewEngine(nodes, probe, Config{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !probe.sawMsgs {
		t.Error("omniscient adversary did not observe messages before topology choice")
	}
}

func TestDoneNodesStaySilent(t *testing.T) {
	done := &fixedSender{size: 1, life: 0} // immediately done
	live := &fixedSender{size: 1, life: 2}
	e := NewEngine([]Node{done, live}, staticAdv{g: graph.Path(2)}, Config{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// done had life 0: it must never have sent or received.
	if done.round != 0 {
		t.Errorf("done node received %d times, want 0", done.round)
	}
	if got := e.Metrics().Messages; got != 2 {
		t.Errorf("messages = %d, want 2 (live node only)", got)
	}
}

func TestSessionPhases(t *testing.T) {
	const n = 4
	s := NewSession(n, staticAdv{g: graph.Cycle(n)}, Config{BitBudget: 8})
	mk := func(life int) []Node {
		out := make([]Node, n)
		for i := range out {
			out[i] = &fixedSender{size: 2, life: life}
		}
		return out
	}
	if err := s.RunFixed(mk(1000), 5); err != nil {
		t.Fatal(err)
	}
	if s.Round() != 5 {
		t.Errorf("round = %d, want 5", s.Round())
	}
	if err := s.RunUntilDone(mk(3)); err != nil {
		t.Fatal(err)
	}
	if s.Round() != 8 {
		t.Errorf("round = %d, want 8", s.Round())
	}
	m := s.Metrics()
	if m.Rounds != 8 || m.Messages != 8*n {
		t.Errorf("metrics = %+v", m)
	}
	if m.Bits != int64(8*n*2) {
		t.Errorf("bits = %d, want %d", m.Bits, 8*n*2)
	}
}

func TestSessionWrongSize(t *testing.T) {
	s := NewSession(3, staticAdv{g: graph.Path(3)}, Config{})
	if err := s.RunFixed([]Node{&fixedSender{}}, 1); err == nil {
		t.Error("phase with wrong node count accepted")
	}
}

package dynnet

import "fmt"

// Session runs a multi-phase protocol: each phase supplies its own node
// implementations (sharing per-node state owned by the caller) while the
// global round counter, adversary and cost metrics carry across phases.
// This matches the paper's algorithms, which interleave flooding phases,
// random-forwarding phases and coded-broadcast phases on fixed round
// schedules known to all nodes.
type Session struct {
	n       int
	adv     Adversary
	cfg     Config
	round   int
	metrics Metrics
}

// NewSession returns a session for n nodes against adv.
func NewSession(n int, adv Adversary, cfg Config) *Session {
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	return &Session{n: n, adv: adv, cfg: cfg}
}

// N returns the node count.
func (s *Session) N() int { return s.n }

// Round returns the global round counter.
func (s *Session) Round() int { return s.round }

// Metrics returns the accumulated metrics across all phases.
func (s *Session) Metrics() Metrics { return s.metrics }

// BitBudget returns the configured per-message budget.
func (s *Session) BitBudget() int { return s.cfg.BitBudget }

func (s *Session) engine(nodes []Node) *Engine {
	e := NewEngine(nodes, s.adv, s.cfg)
	e.round = s.round
	return e
}

func (s *Session) absorb(e *Engine) {
	s.round = e.round
	s.metrics.Rounds += e.metrics.Rounds
	s.metrics.Messages += e.metrics.Messages
	s.metrics.Bits += e.metrics.Bits
	if e.metrics.MaxMessageBits > s.metrics.MaxMessageBits {
		s.metrics.MaxMessageBits = e.metrics.MaxMessageBits
	}
}

// RunFixed runs nodes for exactly rounds rounds (a fixed-schedule phase).
func (s *Session) RunFixed(nodes []Node, rounds int) error {
	if len(nodes) != s.n {
		return errPhaseSize(len(nodes), s.n)
	}
	e := s.engine(nodes)
	err := e.RunRounds(rounds)
	s.absorb(e)
	return err
}

// RunUntilDone runs nodes until all terminate, subject to the session's
// round cap for the phase.
func (s *Session) RunUntilDone(nodes []Node) error {
	if len(nodes) != s.n {
		return errPhaseSize(len(nodes), s.n)
	}
	e := s.engine(nodes)
	_, err := e.Run()
	s.absorb(e)
	return err
}

func errPhaseSize(got, want int) error {
	return fmt.Errorf("dynnet: phase has %d nodes, session has %d", got, want)
}

package dynnet

// Bit-equality of the sharded synchronous engine against the serial
// one. The engine's parallel phases (Send collection, Receive
// delivery) only ever touch per-node state, the adversary and the
// metrics reduction stay serial, so a sharded round must be
// observationally identical — including error-path metrics, which the
// serial engine truncates at the offending node.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/graph"
)

// gossipNode is a deterministic per-node-rng protocol rich enough to
// expose ordering bugs: each node accumulates the ids it has heard,
// broadcasts a variable-size digest whose bits depend on its private
// rng stream, and terminates once it has heard everyone or its round
// budget expires.
type gossipNode struct {
	id     int
	n      int
	rng    *rand.Rand
	heard  map[int]bool
	rounds int
	life   int
	bits   int64 // total bits this node broadcast (fingerprinted)
}

type gossipMsg struct {
	from int
	ids  []int
	size int
}

func (m *gossipMsg) Bits() int { return m.size }

func (g *gossipNode) Send(round int) Message {
	if g.rng.Intn(8) == 0 {
		return nil // occasionally silent, sequenced by the private rng
	}
	ids := make([]int, 0, len(g.heard))
	for id := range g.heard {
		ids = append(ids, id)
	}
	size := 8 + g.rng.Intn(8) + len(ids)
	g.bits += int64(size)
	return &gossipMsg{from: g.id, ids: ids, size: size}
}

func (g *gossipNode) Receive(round int, msgs []Message) {
	for _, m := range msgs {
		gm := m.(*gossipMsg)
		g.heard[gm.from] = true
		for _, id := range gm.ids {
			g.heard[id] = true
		}
	}
	g.rounds++
}

func (g *gossipNode) Done() bool {
	return g.rounds >= g.life || len(g.heard) == g.n
}

// roundAdv serves a different deterministic connected topology each
// round, cycling shapes so neighbourhoods keep changing.
type roundAdv struct{ n int }

func (a roundAdv) Graph(round int, _ []Node) *graph.Graph {
	switch round % 3 {
	case 0:
		return graph.Cycle(a.n)
	case 1:
		return graph.Path(a.n)
	default:
		return graph.Star(a.n)
	}
}

// engineFingerprint runs the gossip protocol at the given shard count
// and flattens metrics plus every node's end state into a string.
func engineFingerprint(t *testing.T, seed int64, n, shards int) string {
	t.Helper()
	nodes := make([]Node, n)
	impls := make([]*gossipNode, n)
	for i := range nodes {
		impls[i] = &gossipNode{
			id: i, n: n, life: 4 * n,
			rng:   rand.New(rand.NewSource(seed + 31*int64(i))),
			heard: map[int]bool{i: true},
		}
		nodes[i] = impls[i]
	}
	e := NewEngine(nodes, roundAdv{n: n}, Config{
		BitBudget: 64 + n, ValidateConnectivity: true, Shards: shards,
	})
	rounds, err := e.Run()
	if err != nil {
		t.Fatalf("seed %d shards %d: %v", seed, shards, err)
	}
	m := e.Metrics()
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d msgs=%d bits=%d max=%d\n", rounds, m.Messages, m.Bits, m.MaxMessageBits)
	for i, g := range impls {
		fmt.Fprintf(&b, "node %d: heard=%d rounds=%d bits=%d done=%v\n",
			i, len(g.heard), g.rounds, g.bits, g.Done())
	}
	return b.String()
}

// TestShardedEngineBitIdentical checks serial-vs-sharded equality of
// the full observable run state across seeds and shard counts,
// including ragged partitions.
func TestShardedEngineBitIdentical(t *testing.T) {
	const n = 13
	counts := []int{3, 4, n, runtime.GOMAXPROCS(0)}
	for seed := int64(1); seed <= 5; seed++ {
		serial := engineFingerprint(t, seed, n, 1)
		for _, shards := range counts {
			if got := engineFingerprint(t, seed, n, shards); got != serial {
				t.Fatalf("seed %d shards %d diverges:\n--- serial ---\n%s--- shards=%d ---\n%s",
					seed, shards, serial, shards, got)
			}
		}
	}
}

// TestShardedBudgetErrorMatchesSerial pins the error path: when a node
// overruns the budget, the sharded engine must report the same node
// and charge exactly the metrics the serial loop would have charged —
// nodes before the offender counted, nodes after it not.
func TestShardedBudgetErrorMatchesSerial(t *testing.T) {
	mk := func(shards int) (*Engine, error) {
		nodes := []Node{
			&fixedSender{size: 5, life: 3},
			&fixedSender{size: 5, life: 3},
			&fixedSender{size: 100, life: 3}, // offender at index 2
			&fixedSender{size: 5, life: 3},
		}
		e := NewEngine(nodes, staticAdv{g: graph.Path(4)}, Config{BitBudget: 50, Shards: shards})
		_, err := e.Run()
		return e, err
	}
	serial, serr := mk(1)
	for _, shards := range []int{2, 4} {
		e, err := mk(shards)
		if !errors.Is(err, ErrBudgetExceeded) || !strings.Contains(err.Error(), "node 2") {
			t.Fatalf("shards=%d: err = %v", shards, err)
		}
		if !errors.Is(serr, ErrBudgetExceeded) {
			t.Fatalf("serial err = %v", serr)
		}
		if e.Metrics() != serial.Metrics() {
			t.Errorf("shards=%d error-path metrics %+v, serial %+v", shards, e.Metrics(), serial.Metrics())
		}
	}
}

package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/cluster"
	"repro/internal/dynnet"
	"repro/internal/hostile"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// e14Mutations is the hostile-packet cell's mutation mix: every op in
// the internal/hostile arsenal at rates that keep the run decodable
// while exercising each rejection/absorption path. The same spec backs
// the CI adversarial-smoke job.
var e14Mutations = hostile.MutationSpec{Dup: 0.05, Stale: 0.05, Trunc: 0.03, Flip: 0.02, Xgen: 0.03}

// advTrial is one seeded E14 data point: both gossip modes through one
// dynamics × packets cell at identical seeds.
type advTrial struct {
	codedTicks, fwdTicks float64
}

// runAdversarialTrial runs coded and forwarding gossip through one
// cell. Both modes face the same loss, the same targeted-crash
// schedule, identically-seeded packet mutations, and the same adversary
// construction — though the adaptive adversary reacts to each run's own
// telemetry, which is the point: it reads per-node decoding rank every
// tick and serves the rank-sorted path, so whatever the protocol
// achieves shapes what the topology permits next.
func runAdversarialTrial(cfg Config, n, k, d int, adaptive, hostilePkts bool, seed int64) (advTrial, error) {
	const fanout = 2
	const loss = 0.1
	sched, err := cluster.ParseChurn("crashmax:40:1,restart:90:1")
	if err != nil {
		return advTrial{}, err
	}
	toks := token.RandomSet(k, d, rand.New(rand.NewSource(seed)))
	run := func(mode cluster.Mode) (*cluster.Result, error) {
		// The recorder exists in every cell, not just the adaptive ones:
		// it is the adaptive adversary's rank oracle, and keeping it in
		// the benign cells too means the cells differ only in the faults
		// injected, never in the instrumentation.
		rec := telemetry.New(telemetry.Config{Nodes: n})
		var tr cluster.Transport = cluster.WithLoss(
			cluster.NewChanTransport(n, cluster.InboxBuffer(n, fanout+1)), loss, seed*977+31)
		if hostilePkts {
			tr = hostile.WithMutator(tr, e14Mutations, seed+105, rec)
		}
		var adv dynnet.Adversary
		if adaptive {
			adv = hostile.NewAdaptive(n, seed+104, rec)
		} else {
			adv = adversary.NewRandomConnected(n, n/2, seed+104)
		}
		tr = hostile.WithAdversary(tr, adv, hostile.TopoConfig{Telemetry: rec})
		res, err := cluster.Run(cfg.ctx(), cluster.Config{
			N: n, Fanout: fanout, Mode: mode, Seed: seed, Transport: tr,
			Lockstep: true, MaxTicks: 500000, Churn: sched, Telemetry: rec,
		}, toks)
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("exp: %v gossip incomplete under adversarial dynamics (adaptive %v, hostile %v) after %d ticks (seed %d)",
				mode, adaptive, hostilePkts, res.Ticks, seed)
		}
		return res, nil
	}
	coded, err := run(cluster.Coded)
	if err != nil {
		return advTrial{}, err
	}
	fwd, err := run(cluster.Forward)
	if err != nil {
		return advTrial{}, err
	}
	return advTrial{codedTicks: float64(coded.Ticks), fwdTicks: float64(fwd.Ticks)}, nil
}

// E14 caps the fault-injection suite: coded vs store-and-forward
// gossip under {random, adaptive-adversarial} topology dynamics ×
// {benign, hostile} packets, at equal loss and an equal targeted-crash
// schedule in every cell. The paper's central claim is that coding's
// advantage comes from making every packet fungible — the adversary
// cannot identify a "missing" token to suppress — so the margin over
// forwarding must WIDEN as the adversary sharpens: the adaptive
// adversary concentrates connectivity among equal-knowledge nodes and
// crashmax beheads the best-decoded node, both of which starve
// forwarding's coupon collection strictly more than coded gossip's
// any-k-innovative rank collection. Hostile packets (duplicates, stale
// replays, truncations, bit flips, cross-generation reordering) must
// shift absolute cost without erasing that separation.
func E14(cfg Config) (*sim.Table, error) {
	n, k, d := 16, 16, 64
	if cfg.Quick {
		n, k = 10, 8
	}
	cells := []struct {
		dynamics string
		packets  string
		adaptive bool
		hostile  bool
	}{
		{"random", "benign", false, false},
		{"random", "hostile", false, true},
		{"adaptive", "benign", true, false},
		{"adaptive", "hostile", true, true},
	}
	t := &sim.Table{
		Caption: fmt.Sprintf("E14: coded vs store-and-forward gossip under adversarial dynamics × hostile packets (lockstep cluster, n=%d, k=%d, d=%d, loss=0.1, churn crashmax+restart)", n, k, d),
		Header:  []string{"dynamics", "packets", "coded(ticks)", "fwd(ticks)", "fwd/coded"},
	}
	ratios := map[string]float64{}
	for _, cell := range cells {
		cell := cell
		trials, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (advTrial, error) {
			return runAdversarialTrial(cfg, n, k, d, cell.adaptive, cell.hostile, cfg.Seed+seed)
		})
		if err != nil {
			return nil, err
		}
		var g advTrial
		for _, tr := range trials {
			g.codedTicks += tr.codedTicks
			g.fwdTicks += tr.fwdTicks
		}
		m := float64(len(trials))
		ratio := g.fwdTicks / g.codedTicks
		ratios[cell.dynamics+"/"+cell.packets] = ratio
		t.AddRow(cell.dynamics, cell.packets, sim.F(g.codedTicks/m), sim.F(g.fwdTicks/m), sim.F(ratio))
	}
	verdict := "PASS"
	if ratios["adaptive/benign"] <= ratios["random/benign"] || ratios["adaptive/hostile"] <= ratios["random/hostile"] {
		verdict = "FAIL"
	}
	t.AddNote("require: fwd/coded strictly larger under adaptive than random dynamics at equal churn × loss, for benign and hostile packets alike: %s (benign %.2f -> %.2f, hostile %.2f -> %.2f)",
		verdict, ratios["random/benign"], ratios["adaptive/benign"], ratios["random/hostile"], ratios["adaptive/hostile"])
	t.AddNote("hostile packet mix: %s (per-Send rates; stale replays draw from a seeded reservoir of genuinely sent packets)", e14Mutations.String())
	t.AddNote("every run decode-verified on completion; crashmax kills the highest-rank live node, restart revives it")
	return t, nil
}

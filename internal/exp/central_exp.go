package exp

import (
	"repro/internal/adversary"
	"repro/internal/central"
	"repro/internal/sim"
)

// E10 measures the Corollary 2.6 centralized algorithm: with b = d
// (messages exactly one token wide, no room for coefficient headers)
// dissemination of n tokens completes in O(n) rounds, a regime in which
// Theorem 2.2 proves no token-forwarding algorithm — even centralized —
// can be linear-time.
func E10(cfg Config) (*sim.Table, error) {
	ns := []int{16, 32, 64, 128}
	if cfg.Quick {
		ns = []int{16, 32, 64}
	}
	const d = 8
	t := &sim.Table{
		Caption: "E10: centralized coding with b = d = 8 (Corollary 2.6)",
		Header:  []string{"n=k", "rounds(mean)", "rounds/n", "message bits"},
	}
	var xs, ys []float64
	for _, n := range ns {
		n := n
		got, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			r, err := central.Run(n, n, d, adversary.NewRandomConnected(n, n/2, cfg.Seed+seed), cfg.Seed+seed)
			return float64(r), err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.I(n), sim.F(got.Mean), sim.F(got.Mean/float64(n)), sim.I(d))
		xs = append(xs, float64(n))
		ys = append(ys, got.Mean)
	}
	slope, err := sim.FitLogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.AddNote("slope vs n = %.2f (Cor 2.6 predicts 1.0: order-optimal Theta(n))", slope)
	t.AddNote("distributed coding needs k + d bits per message; forwarding is Omega(n log k) here (Thm 2.2)")
	return t, nil
}

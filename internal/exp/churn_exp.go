package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/token"
)

// churnTrial is one seeded E13 data point: the same token set pushed
// through the lockstep cluster runtime in both gossip modes, over an
// identically-seeded lossy transport and an identically-seeded churn
// schedule (joins, crashes, a leave).
type churnTrial struct {
	codedTicks, fwdTicks float64
}

// runChurnGossipTrial runs both modes at one (schedule, loss, seed)
// triple. Victim selection, joins and every coin derive from the seed,
// so E13 rides the deterministic parallel trial engine like E11.
func runChurnGossipTrial(cfg Config, n, k, d int, churnSpec string, loss float64, seed int64) (churnTrial, error) {
	const fanout = 2
	sched, err := cluster.ParseChurn(churnSpec)
	if err != nil {
		return churnTrial{}, err
	}
	maxN := n + sched.Joins()
	toks := token.RandomSet(k, d, rand.New(rand.NewSource(seed)))
	run := func(mode cluster.Mode) (*cluster.Result, error) {
		tr := cluster.WithLoss(cluster.NewChanTransport(maxN, cluster.InboxBuffer(maxN, fanout+1)), loss, seed*977+31)
		res, err := cluster.Run(cfg.ctx(), cluster.Config{
			N: n, Fanout: fanout, Mode: mode, Seed: seed, Transport: tr,
			Lockstep: true, MaxTicks: 200000, Churn: sched,
		}, toks)
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("exp: %v gossip incomplete under churn %q after %d ticks (loss %.2f, seed %d)",
				mode, churnSpec, res.Ticks, loss, seed)
		}
		return res, nil
	}
	coded, err := run(cluster.Coded)
	if err != nil {
		return churnTrial{}, err
	}
	fwd, err := run(cluster.Forward)
	if err != nil {
		return churnTrial{}, err
	}
	return churnTrial{codedTicks: float64(coded.Ticks), fwdTicks: float64(fwd.Ticks)}, nil
}

// joinerTrial is one seeded stream data point for E13's catch-up
// claim: a node joins mid-stream and must reach the cluster watermark.
type joinerTrial struct {
	catchUp  float64 // ticks from join to first delivery
	startGen float64 // frontier learned at join
}

// runStreamJoinerTrial streams gens generations while one node joins
// mid-run, and reports how long the joiner took to catch up to the
// watermark it learned from gossip.
func runStreamJoinerTrial(cfg Config, loss float64, seed int64) (joinerTrial, error) {
	const n, k, d, gens, w, joinAt = 12, 6, 64, 10, 4, 30
	sched, err := cluster.ParseChurn(fmt.Sprintf("join:%d:1", joinAt))
	if err != nil {
		return joinerTrial{}, err
	}
	maxN := n + 1
	var tr cluster.Transport = cluster.NewChanTransport(maxN, stream.InboxBuffer(maxN, 3))
	if loss > 0 {
		tr = cluster.WithLoss(tr, loss, seed*977+31)
	}
	res, err := stream.Run(cfg.ctx(), stream.Config{
		N: n, K: k, PayloadBits: d, Window: w, Generations: gens, Fanout: 2,
		Seed: seed, Lockstep: true, Transport: tr, MaxTicks: 500000,
		Churn: sched, SuspectTicks: 12,
	})
	if err != nil {
		return joinerTrial{}, err
	}
	if !res.Completed {
		return joinerTrial{}, fmt.Errorf("exp: joiner stream incomplete after %d ticks (loss %.2f, seed %d)", res.Ticks, loss, seed)
	}
	j := res.Nodes[n]
	if !j.Done || j.CaughtUpTick < j.JoinTick {
		return joinerTrial{}, fmt.Errorf("exp: joiner did not catch up (done %v, caught up %d, joined %d, seed %d)",
			j.Done, j.CaughtUpTick, j.JoinTick, seed)
	}
	return joinerTrial{catchUp: float64(j.CaughtUpTick - j.JoinTick), startGen: float64(j.StartGen)}, nil
}

// E13 measures dissemination under churn: the adversary no longer just
// rewires the topology every round (the paper's model, E1–E10) or
// drops packets (E11/E12) — it now removes and adds the *nodes
// themselves* mid-run, the dynamic-participation setting the
// cluster/stream membership subsystem exists for. Coded gossip should
// keep its E11 separation over store-and-forward under every churn
// rate × loss cell: a joiner needs any k innovative packets while a
// forwarding joiner pays the full coupon-collector tail from zero, and
// crash victims cost coded gossip only rank (any recoded packet
// replaces it) while forwarding must re-collect the victim's exact
// unspread tokens. The streaming runtime's mid-stream joiner must
// additionally reach the cluster watermark it learned from gossip —
// the catch-up figures land in the notes.
func E13(cfg Config) (*sim.Table, error) {
	n, k, d := 16, 16, 64
	schedules := []struct{ name, spec string }{
		{"none", ""},
		{"light", "crash:10:1,join:14:1"},
		{"heavy", "crash:8:1,join:10:2,leave:16:1,restart:22:1"},
	}
	losses := []float64{0, 0.2}
	if cfg.Quick {
		n, k = 10, 10
		schedules = schedules[:2]
		losses = []float64{0.2}
	}
	t := &sim.Table{
		Caption: fmt.Sprintf("E13: coded vs store-and-forward gossip under churn × loss (lockstep cluster, n=%d, k=%d, d=%d)", n, k, d),
		Header:  []string{"churn", "loss", "coded(ticks)", "fwd(ticks)", "fwd/coded"},
	}
	minRatio := -1.0
	for _, schedule := range schedules {
		for _, loss := range losses {
			schedule, loss := schedule, loss
			trials, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (churnTrial, error) {
				return runChurnGossipTrial(cfg, n, k, d, schedule.spec, loss, cfg.Seed+seed)
			})
			if err != nil {
				return nil, err
			}
			var g churnTrial
			for _, tr := range trials {
				g.codedTicks += tr.codedTicks
				g.fwdTicks += tr.fwdTicks
			}
			m := float64(len(trials))
			ratio := g.fwdTicks / g.codedTicks
			if minRatio < 0 || ratio < minRatio {
				minRatio = ratio
			}
			t.AddRow(schedule.name, fmt.Sprintf("%.1f", loss), sim.F(g.codedTicks/m), sim.F(g.fwdTicks/m), sim.F(ratio))
		}
	}
	// Stream joiner catch-up at the same loss points.
	for _, loss := range losses {
		loss := loss
		trials, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (joinerTrial, error) {
			return runStreamJoinerTrial(cfg, loss, cfg.Seed+seed)
		})
		if err != nil {
			return nil, err
		}
		var sumCatch, sumStart float64
		for _, tr := range trials {
			sumCatch += tr.catchUp
			sumStart += tr.startGen
		}
		m := float64(len(trials))
		t.AddNote("mid-stream joiner (stream runtime, n=12, k=6, 10 generations, join@tick 30, loss %.1f): learned frontier at gen %.1f, caught up to the cluster watermark in %.1f ticks (mean of %d trials)",
			loss, sumStart/m, sumCatch/m, len(trials))
	}
	verdict := "PASS"
	if minRatio < 2 {
		verdict = "FAIL"
	}
	t.AddNote("require: fwd/coded >= 2x in every churn × loss cell, every run complete with all live nodes verified, every joiner caught up: %s (min ratio %.2f)", verdict, minRatio)
	for _, schedule := range schedules[1:] {
		t.AddNote("churn %q = %q (kind:tick:count grammar)", schedule.name, schedule.spec)
	}
	return t, nil
}

package exp

import (
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dissem"
	"repro/internal/forwarding"
	"repro/internal/sim"
	"repro/internal/token"
)

// E2 sweeps n (with k = n, d = 8, fixed b) and compares the Theorem 2.1
// pipelined-flooding baseline against greedy-forward coding. The paper
// predicts the coding advantage grows with n once nk dominates the
// additive terms (for b = d = Theta(log n) the ratio is Theta(log n);
// at implementable message sizes the trend, not the constant, is the
// reproduction target).
func E2(cfg Config) (*sim.Table, error) {
	ns := []int{16, 32, 64, 128}
	if cfg.Quick {
		ns = []int{16, 32, 64}
	}
	const d, b = 8, 512
	t := &sim.Table{
		Caption: "E2: n-token dissemination, forwarding vs coding (d = 8, b = 512)",
		Header:  []string{"n=k", "forward", "coded(greedy)", "ratio"},
	}
	prevRatio := 0.0
	grew := true
	for i, n := range ns {
		n := n
		fwd, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			dist := token.OnePerNode(n, d, rand.New(rand.NewSource(cfg.Seed+seed)))
			r, err := forwarding.RunPipelinedFlood(dist, n, b, d, adversary.NewRandomConnected(n, n/2, cfg.Seed+seed))
			return float64(r), err
		})
		if err != nil {
			return nil, err
		}
		cod, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			dist := token.OnePerNode(n, d, rand.New(rand.NewSource(cfg.Seed+seed)))
			res, err := dissem.GreedyForward(dist, dissem.Params{B: b, D: d, Seed: cfg.Seed + seed},
				adversary.NewRandomConnected(n, n/2, cfg.Seed+seed))
			return float64(res.Rounds), err
		})
		if err != nil {
			return nil, err
		}
		ratio := fwd.Mean / cod.Mean
		t.AddRow(sim.I(n), sim.F(fwd.Mean), sim.F(cod.Mean), sim.F(ratio))
		if i > 0 && ratio < prevRatio {
			grew = false
		}
		prevRatio = ratio
	}
	t.AddNote("coding advantage grows monotonically with n: %v (Thm 2.3 vs Thm 2.1)", grew)
	return t, nil
}

// E3 fixes n = k and sweeps the message budget b. Forwarding rounds must
// fall like 1/b (Theorem 2.1); coded rounds like 1/b^2 while the
// b^2-throughput term dominates (Theorem 2.3), flattening into the
// additive terms afterwards.
func E3(cfg Config) (*sim.Table, error) {
	n := 128
	bs := []int{96, 128, 192, 256, 384}
	if cfg.Quick {
		n = 64
		bs = []int{96, 128, 192, 256}
	}
	const d = 8
	t := &sim.Table{
		Caption: "E3: rounds vs message size b (n = k = " + sim.I(n) + ", d = 8)",
		Header:  []string{"b", "forward", "coded(greedy)", "coded iters"},
	}
	var xs, yf, yc []float64
	for _, b := range bs {
		b := b
		fwd, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			dist := token.OnePerNode(n, d, rand.New(rand.NewSource(cfg.Seed+seed)))
			r, err := forwarding.RunPipelinedFlood(dist, n, b, d, adversary.NewRandomConnected(n, n/2, cfg.Seed+seed))
			return float64(r), err
		})
		if err != nil {
			return nil, err
		}
		runs, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (dissem.Result, error) {
			dist := token.OnePerNode(n, d, rand.New(rand.NewSource(cfg.Seed+seed)))
			return dissem.GreedyForward(dist, dissem.Params{B: b, D: d, Seed: cfg.Seed + seed},
				adversary.NewRandomConnected(n, n/2, cfg.Seed+seed))
		})
		if err != nil {
			return nil, err
		}
		cod := sim.Summarize(roundsOf(runs))
		iters := runs[len(runs)-1].Iterations
		t.AddRow(sim.I(b), sim.F(fwd.Mean), sim.F(cod.Mean), sim.I(iters))
		xs = append(xs, float64(b))
		yf = append(yf, fwd.Mean)
		yc = append(yc, cod.Mean)
	}
	sf, err := sim.FitLogLogSlope(xs, yf)
	if err != nil {
		return nil, err
	}
	sc, err := sim.FitLogLogSlope(xs, yc)
	if err != nil {
		return nil, err
	}
	t.AddNote("forwarding slope vs b = %.2f (Thm 2.1 predicts -1)", sf)
	t.AddNote("coding slope vs b    = %.2f (Thm 2.3 predicts -2 until additive floor)", sc)
	return t, nil
}

// E4 compares greedy-forward and priority-forward in the large-b regime
// where gathering becomes the bottleneck (k < b^3/d). At laptop scale
// the crossover itself is asymptotic; the table reports both curves and
// each algorithm's iteration count so the trend toward priority's fewer
// iterations is visible.
func E4(cfg Config) (*sim.Table, error) {
	n := 96
	bs := []int{192, 256, 384, 512}
	if cfg.Quick {
		n = 48
		bs = []int{192, 256, 384}
	}
	const d = 8
	t := &sim.Table{
		Caption: "E4: greedy vs priority across b (n = k = " + sim.I(n) + ", d = 8)",
		Header:  []string{"b", "greedy", "greedy iters", "priority", "priority iters"},
	}
	for _, b := range bs {
		b := b
		gRuns, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (dissem.Result, error) {
			dist := token.OnePerNode(n, d, rand.New(rand.NewSource(cfg.Seed+seed)))
			return dissem.GreedyForward(dist, dissem.Params{B: b, D: d, Seed: cfg.Seed + seed},
				adversary.NewRandomConnected(n, n/2, cfg.Seed+seed))
		})
		if err != nil {
			return nil, err
		}
		pRuns, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (dissem.Result, error) {
			dist := token.OnePerNode(n, d, rand.New(rand.NewSource(cfg.Seed+seed)))
			return dissem.PriorityForward(dist, dissem.Params{B: b, D: d, Seed: cfg.Seed + seed},
				adversary.NewRandomConnected(n, n/2, cfg.Seed+seed))
		})
		if err != nil {
			return nil, err
		}
		g, p := sim.Summarize(roundsOf(gRuns)), sim.Summarize(roundsOf(pRuns))
		gIters := gRuns[len(gRuns)-1].Iterations
		pIters := pRuns[len(pRuns)-1].Iterations
		t.AddRow(sim.I(b), sim.F(g.Mean), sim.I(gIters), sim.F(p.Mean), sim.I(pIters))
	}
	t.AddNote("Thm 7.3 vs 7.5: priority trades the +nb gathering tail for an indexing log factor;")
	t.AddNote("our priority selection floods 64-bit values naively (log-factor variant, see DESIGN.md)")
	return t, nil
}

// E6 measures the Lemma 7.2 gathering bound: after R = O(n) rounds of
// random-forward with c = b/d tokens per message, the identified node
// knows at least sqrt(c*k) tokens (or everything). The sweep includes
// short horizons (R = n/8) where gathering has not yet saturated at k,
// so the sqrt floor is exercised non-trivially, and the rotating-path
// adversary so no topology is ever reused.
func E6(cfg Config) (*sim.Table, error) {
	ns := []int{64, 128}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	const d, c = 8, 2
	fractions := []struct {
		name string
		num  int
		den  int
	}{{"n/8", 1, 8}, {"n/2", 1, 2}, {"n", 1, 1}}
	t := &sim.Table{
		Caption: "E6: random-forward gathering vs Lemma 7.2's sqrt(bk/d) (c = 2, rotating path)",
		Header:  []string{"n=k", "rounds", "gathered(min)", "gathered(mean)", "bound sqrt(ck)", "ok"},
	}
	allOK := true
	for _, n := range ns {
		for _, fr := range fractions {
			n, fr := n, fr
			rounds := n * fr.num / fr.den
			got, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
				rng := rand.New(rand.NewSource(cfg.Seed + seed))
				dist := token.OnePerNode(n, d, rng)
				sets := make([]*token.Set, n)
				rngs := make([]*rand.Rand, n)
				for i := range sets {
					sets[i] = token.NewSet()
					for _, tk := range dist[i] {
						sets[i].Add(tk)
					}
					rngs[i] = rand.New(rand.NewSource(cfg.Seed + seed + int64(i)*31 + 1))
				}
				s := newSession(n, adversary.NewRotatingPath(n, cfg.Seed+seed))
				res, err := forwarding.RandomForward(s, sets, nil, c, rounds, rngs)
				if err != nil {
					return 0, err
				}
				return float64(res.Count), nil
			})
			if err != nil {
				return nil, err
			}
			bound := math.Sqrt(float64(c * n))
			minGather := got.Min
			ok := minGather >= bound
			if !ok {
				allOK = false
			}
			t.AddRow(sim.I(n), fr.name+"="+sim.I(rounds), sim.F(minGather), sim.F(got.Mean), sim.F(bound), boolStr(ok))
		}
	}
	t.AddNote("all configurations met the bound: %v (the lemma allows saturation at k)", allOK)
	return t, nil
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// roundsOf projects the Rounds field of seed-ordered dissemination runs
// for summarizing.
func roundsOf(rs []dissem.Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(r.Rounds)
	}
	return out
}

// Package exp defines the repository's experiments E1..E14 — the paper's
// "tables and figures". The paper itself is analysis-only, so each
// experiment turns one quantitative theorem into a measured table whose
// shape (scaling exponent, ratio trend, crossover, separation) must
// match the analysis; DESIGN.md carries the index and implementation
// notes. Every experiment is a pure function from a Config
// to a sim.Table so the CLI and the benchmark suite share one
// implementation.
package exp

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/sim"
)

// Config scales an experiment run.
type Config struct {
	// Trials is the number of seeds per data point.
	Trials int
	// Quick shrinks sweeps to benchmark-friendly sizes.
	Quick bool
	// Seed offsets all randomness.
	Seed int64
	// Workers bounds the per-sweep trial worker pool; 0 means
	// GOMAXPROCS, 1 forces serial execution. Results are identical at
	// every worker count — trials are seeded and merged in seed order.
	Workers int
	// Ctx cancels in-flight sweeps; nil means context.Background().
	Ctx context.Context
	// Progress, when non-nil, observes trial completions per sweep.
	Progress func(done, total int)
}

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return 2
	}
	return 5
}

func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c Config) pcfg() sim.ParallelConfig {
	return sim.ParallelConfig{Workers: c.Workers, Progress: c.Progress}
}

// sweep runs n seeded trials on the worker pool and summarizes them.
func (c Config) sweep(n int, fn sim.TrialFunc) (sim.Summary, error) {
	return sim.ParallelTrials(c.ctx(), c.pcfg(), n, fn)
}

// sweepSeeded runs n seeded trials that produce a structured result
// (rounds plus side metrics), returned in seed order.
func sweepSeeded[T any](c Config, n int, fn func(seed int64) (T, error)) ([]T, error) {
	return sim.ParallelSeeded(c.ctx(), c.pcfg(), n, fn)
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*sim.Table, error)
}

// All returns the full experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "indexed broadcast finishes in O(n+k) rounds (Lemma 5.3)", E1},
		{"E2", "coding vs forwarding advantage grows with n (Thm 2.3 vs 2.1)", E2},
		{"E3", "rounds scale ~1/b for forwarding, ~1/b^2 for coding (Thm 2.1 vs 2.3)", E3},
		{"E4", "greedy-forward vs priority-forward across b (Thm 7.3 vs 7.5)", E4},
		{"E5", "T-stability: coding gains ~T^2, forwarding ~T (Thm 2.4 vs 2.1)", E5},
		{"E6", "random-forward gathers sqrt(bk/d) tokens (Lemma 7.2)", E6},
		{"E7", "counting by estimate doubling costs ~2x final phase (Sec 4.1)", E7},
		{"E8", "omniscient adversary vs field size (Thm 6.1)", E8},
		{"E9", "end-game: one XOR replaces ~k/2 forwarding rounds (Sec 5.2)", E9},
		{"E10", "centralized coding is linear-time at b = d (Cor 2.6)", E10},
		{"E11", "async coded gossip beats store-and-forward under loss (Thm 2.3, cluster runtime)", E11},
		{"E12", "pipelined generation windows beat sequential streaming under loss (perfect pipelining, stream runtime)", E12},
		{"E13", "coded gossip keeps its edge under node churn; mid-stream joiners catch up (membership subsystem)", E13},
		{"E14", "coding's margin widens under adaptive dynamics and survives hostile packets (fault-injection suite)", E14},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// RunIndexedUntilDecoded runs Lemma 5.3 nodes step by step and returns
// the first round after which every node can decode (the quantity whose
// n-scaling E1 fits). The adversary is rebuilt per trial from the seed.
func RunIndexedUntilDecoded(n, k, d int, adv dynnet.Adversary, seed int64) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]dynnet.Node, n)
	impls := make([]*rlnc.BroadcastNode, n)
	cap := 64 * (n + k)
	for i := 0; i < n; i++ {
		payload := gf.RandomBitVec(d, rng.Uint64)
		var initial []rlnc.Coded
		if i < k {
			initial = []rlnc.Coded{rlnc.Encode(i, k, payload)}
		}
		nrng := rand.New(rand.NewSource(seed + 100 + int64(i)))
		impls[i] = rlnc.NewBroadcastNode(k, d, cap, initial, nrng)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{BitBudget: k + d})
	for r := 1; r <= cap; r++ {
		if err := e.Step(); err != nil {
			return 0, err
		}
		all := true
		for _, impl := range impls {
			if !impl.Span().CanDecode() {
				all = false
				break
			}
		}
		if all {
			return r, nil
		}
	}
	return 0, fmt.Errorf("exp: indexed broadcast not decoded in %d rounds", cap)
}

// E1 sweeps n with k = n and measures rounds until all nodes decode
// under a fully dynamic random adversary and the rotating path. The
// log-log slope vs n must be ~1 (Lemma 5.3's O(n + k) with k = n).
func E1(cfg Config) (*sim.Table, error) {
	ns := []int{16, 32, 64, 128}
	if cfg.Quick {
		ns = []int{16, 32, 64}
	}
	const d = 8
	t := &sim.Table{
		Caption: "E1: coded indexed broadcast, rounds to full decode (k = n, d = 8)",
		Header:  []string{"n", "random(mean)", "random(max)", "rotpath(mean)"},
	}
	var xs, ys []float64
	for _, n := range ns {
		n := n
		randomSum, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			adv := adversary.NewRandomConnected(n, n/2, cfg.Seed+seed)
			r, err := RunIndexedUntilDecoded(n, n, d, adv, cfg.Seed+seed)
			return float64(r), err
		})
		if err != nil {
			return nil, err
		}
		rotSum, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			adv := adversary.NewRotatingPath(n, cfg.Seed+seed)
			r, err := RunIndexedUntilDecoded(n, n, d, adv, cfg.Seed+seed)
			return float64(r), err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.I(n), sim.F(randomSum.Mean), sim.F(randomSum.Max), sim.F(rotSum.Mean))
		xs = append(xs, float64(n))
		ys = append(ys, rotSum.Mean)
	}
	slope, err := sim.FitLogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.AddNote("rotating-path slope vs n = %.2f (Lemma 5.3 predicts ~1.0, i.e. O(n+k))", slope)
	return t, nil
}

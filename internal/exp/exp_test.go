package exp

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick smoke-runs every experiment at Quick scale
// and checks each produces a non-empty, well-formed table. The
// quantitative shape assertions live in each experiment's notes and in
// the focused package tests; this guards the harness plumbing end to
// end.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(Config{Quick: true, Trials: 1, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %v does not match header %v", row, tbl.Header)
				}
			}
			if !strings.Contains(tbl.Caption, e.ID) {
				t.Errorf("caption %q does not name the experiment", tbl.Caption)
			}
			if out := tbl.String(); len(out) == 0 {
				t.Error("empty rendering")
			}
		})
	}
}

func TestFind(t *testing.T) {
	for _, e := range All() {
		got, err := Find(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("Find(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := Find("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestEndgameCodedDecodes(t *testing.T) {
	for _, k := range []int{2, 8, 64} {
		for seed := int64(0); seed < 5; seed++ {
			if !EndgameCodedDecodes(k, 8, seed) {
				t.Errorf("k=%d seed=%d: coded end-game failed to decode", k, seed)
			}
		}
	}
}

func TestEndgameForwardMeanNearHalfK(t *testing.T) {
	const k = 64
	sum := 0.0
	const trials = 2000
	for seed := int64(0); seed < trials; seed++ {
		sum += endgameForwardRounds(k, seed)
	}
	mean := sum / trials
	if mean < float64(k)/2-4 || mean > float64(k)/2+4 {
		t.Errorf("mean forwarding rounds %.1f, expected ~(k+1)/2 = %.1f", mean, float64(k+1)/2)
	}
}

func TestExperimentIDsAreSequential(t *testing.T) {
	for i, e := range All() {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
	}
}

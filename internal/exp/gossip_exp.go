package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/token"
)

// gossipTrial is one seeded E11 data point: the same token set pushed
// through the lockstep cluster runtime in both gossip modes over an
// identically-seeded lossy transport.
type gossipTrial struct {
	codedTicks, fwdTicks float64
	codedBits, fwdBits   float64
}

// runGossipTrial runs both modes at one (loss, seed) pair. Lockstep
// mode makes each run a pure function of its seed, which is what lets
// E11 ride the deterministic parallel trial engine like every other
// experiment.
func runGossipTrial(cfg Config, n, k, d int, loss float64, seed int64) (gossipTrial, error) {
	const fanout = 2
	toks := token.RandomSet(k, d, rand.New(rand.NewSource(seed)))
	run := func(mode cluster.Mode) (*cluster.Result, error) {
		tr := cluster.WithLoss(cluster.NewChanTransport(n, cluster.InboxBuffer(n, fanout)), loss, seed*977+31)
		res, err := cluster.Run(cfg.ctx(), cluster.Config{
			N: n, Fanout: fanout, Mode: mode, Seed: seed, Transport: tr, Lockstep: true, MaxTicks: 100000,
		}, toks)
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("exp: %v gossip incomplete after %d ticks (loss %.2f, seed %d)", mode, res.Ticks, loss, seed)
		}
		if loss == 0 && res.Dropped != 0 {
			// The inbox is sized so lockstep cannot overflow; a drop on
			// the lossless row would silently skew the baseline.
			return nil, fmt.Errorf("exp: %d drops on the lossless row (%v, seed %d)", res.Dropped, mode, seed)
		}
		return res, nil
	}
	coded, err := run(cluster.Coded)
	if err != nil {
		return gossipTrial{}, err
	}
	fwd, err := run(cluster.Forward)
	if err != nil {
		return gossipTrial{}, err
	}
	return gossipTrial{
		codedTicks: float64(coded.Ticks), fwdTicks: float64(fwd.Ticks),
		codedBits: float64(coded.BitsOut), fwdBits: float64(fwd.BitsOut),
	}, nil
}

// E11 compares asynchronous coded gossip against store-and-forward
// gossip across packet loss rates on the cluster runtime. It is the
// async restatement of the paper's core separation (Thm 2.3 vs 2.1):
// a forwarding node must collect k distinct tokens from random pushes —
// a coupon-collector tail that loss stretches further — while a coded
// node only needs k innovative packets, and under recoding almost every
// surviving packet is innovative. The fwd/coded tick ratio should be
// well above 1 and not shrink as loss grows; coded should also win on
// total protocol bits despite its k-bit coefficient headers.
func E11(cfg Config) (*sim.Table, error) {
	n, k, d := 24, 24, 64
	losses := []float64{0, 0.2, 0.4, 0.6}
	if cfg.Quick {
		n, k = 12, 12
		losses = []float64{0, 0.4}
	}
	t := &sim.Table{
		Caption: fmt.Sprintf("E11: coded vs store-and-forward gossip under loss (lockstep cluster, n=%d, k=%d, d=%d)", n, k, d),
		Header:  []string{"loss", "coded(ticks)", "fwd(ticks)", "fwd/coded", "coded(Mbit)", "fwd(Mbit)"},
	}
	var ratios []float64
	for _, loss := range losses {
		loss := loss
		trials, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (gossipTrial, error) {
			return runGossipTrial(cfg, n, k, d, loss, cfg.Seed+seed)
		})
		if err != nil {
			return nil, err
		}
		var g gossipTrial
		for _, tr := range trials {
			g.codedTicks += tr.codedTicks
			g.fwdTicks += tr.fwdTicks
			g.codedBits += tr.codedBits
			g.fwdBits += tr.fwdBits
		}
		m := float64(len(trials))
		ratio := g.fwdTicks / g.codedTicks
		ratios = append(ratios, ratio)
		t.AddRow(fmt.Sprintf("%.1f", loss), sim.F(g.codedTicks/m), sim.F(g.fwdTicks/m),
			sim.F(ratio), sim.F(g.codedBits/m/1e6), sim.F(g.fwdBits/m/1e6))
	}
	first, last := ratios[0], ratios[len(ratios)-1]
	// The claim is a clear separation that loss does not erode: the
	// ratio at the highest loss must stay well above 1 (2x leaves slack
	// under trial noise; the measured value is ~5x) and must not have
	// collapsed relative to the lossless ratio.
	verdict := "PASS"
	if last < 2 || last < 0.5*first {
		verdict = "FAIL"
	}
	t.AddNote("fwd/coded ticks: %.2f at loss %.1f -> %.2f at loss %.1f (require >= 2x and no collapse vs lossless: %s)",
		first, losses[0], last, losses[len(losses)-1], verdict)
	t.AddNote("coded needs ~k innovative packets per node; forwarding pays the coupon-collector tail, compounded by loss")
	return t, nil
}

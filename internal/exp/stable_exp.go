package exp

import (
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/count"
	"repro/internal/derand"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
	"repro/internal/sim"
	"repro/internal/stable"
	"repro/internal/token"
)

func newSession(n int, adv dynnet.Adversary) *dynnet.Session {
	return dynnet.NewSession(n, adv, dynnet.Config{})
}

// E5 measures the Lemma 8.1 / Theorem 2.4 stability claim in its
// throughput form: one full share-pass-share broadcast ships
// Blocks*Payload ~ T^2 bits from a single node to everyone in roughly
// T-independent round counts (the O(n log n) regime with bT^2 <~ n), so
// the coded bits-per-round grows ~quadratically with T; the forwarding
// baseline's throughput grows only ~linearly (Theorem 2.1, tight for
// knowledge-based forwarding). The paper's asymptotic regime bT^2 <= n
// is unreachable with realistic message sizes at laptop n, so the
// coded vector is scaled as Blocks = T/8, Payload = 3T/8 (both ~T,
// product ~T^2) with the block count held under the n/D meta-round
// budget — the same proportions the proof of Lemma 8.1 uses.
func E5(cfg Config) (*sim.Table, error) {
	n := 64
	ts := []int{48, 96, 192}
	if cfg.Quick {
		n = 48
		ts = []int{48, 96}
	}
	const (
		b         = 160 // chunk = b - 128 header = 32 bits
		kFwd      = 64  // forwarding workload (tokens at one node)
		d         = 8
		chunkBits = 32
	)
	t := &sim.Table{
		Caption: "E5: T-stable throughput, coded broadcast vs forwarding (n = " + sim.I(n) + ", b = 160)",
		Header:  []string{"T", "capacity(bT^2)", "coded bits", "coded rounds", "coded bits/rnd", "fwd rounds", "fwd bits/rnd"},
	}
	var xs, ycap, yc, yf []float64
	for _, T := range ts {
		T := T
		blocks := T / 8
		payload := 3 * T / 8
		geo := stable.Geometry{
			D:           maxInt(1, T/96),
			ChunkBits:   chunkBits,
			Chunks:      (blocks + payload + chunkBits - 1) / chunkBits,
			Blocks:      blocks,
			Payload:     payload,
			BuildBudget: T / 2,
		}
		bits := float64(blocks * payload)
		coded, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			rng := rand.New(rand.NewSource(cfg.Seed + seed))
			initial := make([][]rlnc.Coded, n)
			for j := 0; j < blocks; j++ {
				initial[0] = append(initial[0], rlnc.Encode(j, blocks, gf.RandomBitVec(payload, rng.Uint64)))
			}
			rngs := make([]*rand.Rand, n)
			for i := range rngs {
				rngs[i] = rand.New(rand.NewSource(cfg.Seed + seed + int64(i)*17 + 3))
			}
			tadv := adversary.NewTStable(adversary.NewRandomConnected(n, n, cfg.Seed+seed), T)
			s := dynnet.NewSession(n, tadv, dynnet.Config{BitBudget: b})
			if _, err := stable.Broadcast(s, tadv, geo, initial, rngs, 0); err != nil {
				return 0, err
			}
			return float64(s.Metrics().Rounds), nil
		})
		if err != nil {
			return nil, err
		}
		fwd, err := cfg.sweep(cfg.trials(), func(seed int64) (float64, error) {
			dist := token.AtOne(n, kFwd, d, rand.New(rand.NewSource(cfg.Seed+seed)))
			r, err := stable.RunFlood(dist, kFwd, b, d, T,
				adversary.NewTStable(adversary.NewRandomConnected(n, n, cfg.Seed+seed), T))
			return float64(r), err
		})
		if err != nil {
			return nil, err
		}
		fwdBits := float64(kFwd * (token.UIDBits + d))
		fullGeo, err := stable.PlanGeometry(n, b, T)
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.I(T), sim.I(fullGeo.Capacity()), sim.F(bits), sim.F(coded.Mean),
			sim.F(bits/coded.Mean), sim.F(fwd.Mean), sim.F(fwdBits/fwd.Mean))
		xs = append(xs, float64(T))
		ycap = append(ycap, float64(fullGeo.Capacity()))
		yc = append(yc, bits/coded.Mean)
		yf = append(yf, fwdBits/fwd.Mean)
	}
	scap, err := sim.FitLogLogSlope(xs, ycap)
	if err != nil {
		return nil, err
	}
	sc, err := sim.FitLogLogSlope(xs, yc)
	if err != nil {
		return nil, err
	}
	sf, err := sim.FitLogLogSlope(xs, yf)
	if err != nil {
		return nil, err
	}
	t.AddNote("per-window capacity slope vs T = %.2f (the (bT)^2 mechanism; Lemma 8.1)", scap)
	t.AddNote("measured coded throughput slope vs T = %.2f; forwarding = %.2f", sc, sf)
	t.AddNote("the full T^2-vs-T separation needs the paper's regime bT^2 <~ n (kd >~ b^2 T^3 log n),")
	t.AddNote("beyond laptop scale at byte-sized b; the mechanism and whp completion are what we verify")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E7 sweeps n and measures the counting application: total rounds across
// all doubling phases versus the final successful phase alone. The
// geometric schedule bounds the ratio by a constant near 2.
func E7(cfg Config) (*sim.Table, error) {
	ns := []int{8, 16, 32, 64}
	if cfg.Quick {
		ns = []int{8, 16, 32}
	}
	const b = 1024
	t := &sim.Table{
		Caption: "E7: counting by estimate doubling (b = 1024)",
		Header:  []string{"n", "estimate", "phases", "total rounds", "final phase", "ratio"},
	}
	maxRatio := 0.0
	for _, n := range ns {
		n := n
		runs, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (count.Result, error) {
			return count.Run(n, b, adversary.NewRandomConnected(n, n/2, cfg.Seed+seed), cfg.Seed+seed)
		})
		if err != nil {
			return nil, err
		}
		res := runs[len(runs)-1]
		ratio := float64(res.TotalRounds) / float64(res.FinalPhaseRounds)
		if ratio > maxRatio {
			maxRatio = ratio
		}
		t.AddRow(sim.I(n), sim.I(res.Estimate), sim.I(res.Phases),
			sim.I(res.TotalRounds), sim.I(res.FinalPhaseRounds), sim.F(ratio))
	}
	t.AddNote("max total/final ratio = %.2f (Section 4.1's geometric-sum argument predicts <= ~2)", maxRatio)
	return t, nil
}

// E8 sweeps the field size against the omniscient stalling adversary of
// Theorem 6.1 and reports the stall fraction, whether an O(n) schedule
// decoded, and the coefficient-header cost k*lg(q) — the price of
// omniscient-resilience that Corollary 6.2 pays.
func E8(cfg Config) (*sim.Table, error) {
	n := 16
	if cfg.Quick {
		n = 12
	}
	const pe = 4
	schedule := 20 * n
	fields := []gf.Field{gf.GF2{}, gf.MustGF2e(4), gf.MustGF2e(8), gf.MustPrime(257), gf.MustPrime(65537)}
	t := &sim.Table{
		Caption: "E8: omniscient adversary vs field size (n = k = " + sim.I(n) + ", schedule 20n)",
		Header:  []string{"field", "stall frac", "decoded", "header bits (k lg q)"},
	}
	var fracs []float64
	for _, f := range fields {
		f := f
		type stallTrial struct {
			frac    float64
			decoded bool
		}
		runs, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (stallTrial, error) {
			ok, stalls, rounds, err := derand.RunOmniscientBroadcast(f, n, pe, schedule, cfg.Seed+seed)
			if err != nil {
				return stallTrial{}, err
			}
			st := stallTrial{decoded: ok}
			if rounds > 0 {
				st.frac = float64(stalls) / float64(rounds)
			}
			return st, nil
		})
		if err != nil {
			return nil, err
		}
		decodedAll := true
		xs := make([]float64, len(runs))
		for i, r := range runs {
			xs[i] = r.frac
			decodedAll = decodedAll && r.decoded
		}
		frac := sim.Summarize(xs)
		t.AddRow(f.String(), sim.F(frac.Mean), boolStr(decodedAll), sim.I(n*f.Bits()))
		fracs = append(fracs, frac.Mean)
	}
	t.AddNote("stall fraction must fall with q (GF(2) near 1, large fields near 0): %v",
		fracs[0] > 0.5 && fracs[len(fracs)-1] < 0.1)
	t.AddNote("required lg q for the Thm 6.1 union bound at this size: %.0f bits",
		derand.RequiredFieldBits(n, n, schedule, 1))
	return t, nil
}

// E9 is the Section 5.2 end-game scenario: node A knows all k tokens,
// node B misses one (A does not know which). Random forwarding needs
// ~k/2 expected rounds; a single XOR of all tokens finishes in one.
func E9(cfg Config) (*sim.Table, error) {
	ks := []int{16, 64, 256}
	if cfg.Quick {
		ks = []int{16, 64}
	}
	t := &sim.Table{
		Caption: "E9: end-game — B misses one of A's k tokens",
		Header:  []string{"k", "forward rounds (mean)", "k/2", "coded rounds"},
	}
	for _, k := range ks {
		k := k
		fwd, err := cfg.sweep(cfg.trials()*4, func(seed int64) (float64, error) {
			return endgameForwardRounds(k, cfg.Seed+seed), nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(sim.I(k), sim.F(fwd.Mean), sim.F(float64(k)/2), "1")
	}
	t.AddNote("one coded message always suffices; forwarding averages ~k/2 (Section 5.2)")
	return t, nil
}

// endgameForwardRounds simulates the best randomized forwarding
// strategy: A sends its tokens in a uniformly random order (never
// repeating) until B's missing token arrives. The expected round count
// is (k+1)/2, the paper's "randomized strategies can improve the
// expected number of rounds only to k/2".
func endgameForwardRounds(k int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(k)
	missing := rng.Intn(k)
	for r, tok := range perm {
		if tok == missing {
			return float64(r + 1)
		}
	}
	return float64(k)
}

// EndgameCodedDecodes verifies the coded side of E9 deterministically:
// B, holding all tokens but one, decodes from a single XOR of all k.
// It is used by tests and the quickstart example.
func EndgameCodedDecodes(k, d int, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	span := rlnc.NewSpan(k, d)
	all := gf.NewBitVec(k + d)
	missing := rng.Intn(k)
	for i := 0; i < k; i++ {
		c := rlnc.Encode(i, k, gf.RandomBitVec(d, rng.Uint64))
		all.Xor(c.Vec)
		if i != missing {
			span.Add(c)
		}
	}
	span.Add(rlnc.Coded{K: k, Vec: all})
	return span.CanDecode()
}

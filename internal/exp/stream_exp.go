package exp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stream"
)

// streamTrial is one seeded E12 data point: the same generation stream
// pushed through the lockstep streaming runtime at one window size over
// an identically-seeded lossy transport.
type streamTrial struct {
	ticks    float64
	bits     float64
	spanPeak float64
}

// runStreamTrial streams gens generations of k tokens across n nodes at
// window w. Lockstep mode makes the run a pure function of its seed, so
// E12 rides the deterministic parallel trial engine like E11.
func runStreamTrial(cfg Config, n, k, d, gens, w int, loss float64, seed int64) (streamTrial, error) {
	const fanout = 2
	var tr cluster.Transport = cluster.NewChanTransport(n, stream.InboxBuffer(n, fanout))
	if loss > 0 {
		tr = cluster.WithLoss(tr, loss, seed*977+31)
	}
	res, err := stream.Run(cfg.ctx(), stream.Config{
		N: n, K: k, PayloadBits: d, Window: w, Generations: gens, Fanout: fanout,
		Seed: seed, Lockstep: true, Transport: tr, MaxTicks: 500000,
	})
	if err != nil {
		return streamTrial{}, err
	}
	if !res.Completed {
		return streamTrial{}, fmt.Errorf("exp: stream W=%d incomplete after %d ticks (loss %.2f, seed %d)", w, res.Ticks, loss, seed)
	}
	return streamTrial{
		ticks:    float64(res.Ticks),
		bits:     float64(res.BitsOut),
		spanPeak: float64(res.MaxSpanBytes),
	}, nil
}

// E12 measures what pipelining buys: the same token stream disseminated
// with a sliding window of W concurrent generations versus sequential
// one-generation-at-a-time dissemination (W = 1), across loss rates.
// The paper's perfect-pipelining claim is that RLNC keeps new
// information flowing while old tokens are still spreading; sequential
// dissemination forfeits exactly that, paying a dead interval per
// generation (the straggler tail plus an ack round-trip before the next
// generation may start) that a W >= 2 window overlaps with useful
// traffic. Sustained throughput — stream tokens delivered per tick — must
// therefore be strictly higher for every pipelined window than for the
// sequential baseline, and the gap must survive loss, which lengthens
// precisely the straggler tails that pipelining hides.
func E12(cfg Config) (*sim.Table, error) {
	n, k, d, gens := 16, 8, 64, 8
	windows := []int{1, 2, 4, 8}
	losses := []float64{0, 0.2, 0.4}
	if cfg.Quick {
		n, k, gens = 8, 4, 4
		windows = []int{1, 4}
		losses = []float64{0, 0.2}
	}
	t := &sim.Table{
		Caption: fmt.Sprintf("E12: pipelined windows vs sequential streaming under loss (lockstep stream, n=%d, k=%d, d=%d, %d generations)", n, k, d, gens),
		Header:  []string{"loss", "window", "ticks", "tok/tick", "vs W=1", "Kbit/token", "peak span B"},
	}
	tokens := float64(k * gens)
	pass := true
	for _, loss := range losses {
		var seqTput float64
		for _, w := range windows {
			loss, w := loss, w
			trials, err := sweepSeeded(cfg, cfg.trials(), func(seed int64) (streamTrial, error) {
				return runStreamTrial(cfg, n, k, d, gens, w, loss, cfg.Seed+seed)
			})
			if err != nil {
				return nil, err
			}
			var s streamTrial
			for _, tr := range trials {
				s.ticks += tr.ticks
				s.bits += tr.bits
				s.spanPeak += tr.spanPeak
			}
			m := float64(len(trials))
			tput := tokens / (s.ticks / m)
			if w == 1 {
				seqTput = tput
			} else if loss >= 0.2 && tput <= seqTput {
				pass = false
			}
			// Kbit/token charges the protocol bits spent getting each
			// stream token to all n nodes.
			t.AddRow(fmt.Sprintf("%.1f", loss), sim.I(w), sim.F(s.ticks/m), sim.F(tput),
				sim.F(tput/seqTput), sim.F(s.bits/m/tokens/1e3), sim.F(s.spanPeak/m))
		}
	}
	verdict := "PASS"
	if !pass {
		verdict = "FAIL"
	}
	t.AddNote("require: every pipelined window (W >= 2) sustains strictly higher tok/tick than sequential W=1 at loss >= 0.2: %s", verdict)
	t.AddNote("W=1 pays a dead interval per generation (straggler tail + ack propagation); a window overlaps it with the next generations' traffic")
	return t, nil
}

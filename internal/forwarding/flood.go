package forwarding

import (
	"sort"

	"repro/internal/dynnet"
)

// MaxFloodNode floods the maximum of a 64-bit value across the network:
// every round it broadcasts the largest value it has seen. After n-1
// rounds on always-connected dynamics every node knows the global
// maximum. Callers pack (count, id) or similar orderings into the value.
type MaxFloodNode struct {
	best     uint64
	width    int
	schedule int
	elapsed  int
}

var _ dynnet.Node = (*MaxFloodNode)(nil)

// NewMaxFloodNode returns a node starting with value own, flooding for
// schedule rounds, charging width bits per message.
func NewMaxFloodNode(own uint64, width, schedule int) *MaxFloodNode {
	return &MaxFloodNode{best: own, width: width, schedule: schedule}
}

// Best returns the largest value seen so far.
func (m *MaxFloodNode) Best() uint64 { return m.best }

// Send broadcasts the current maximum.
func (m *MaxFloodNode) Send(int) dynnet.Message {
	return ValuesMsg{Width: m.width, Values: []uint64{m.best}}
}

// Receive keeps the maximum over all heard values.
func (m *MaxFloodNode) Receive(_ int, msgs []dynnet.Message) {
	for _, msg := range msgs {
		vm, ok := msg.(ValuesMsg)
		if !ok {
			continue
		}
		for _, v := range vm.Values {
			if v > m.best {
				m.best = v
			}
		}
	}
	m.elapsed++
}

// Done reports whether the schedule elapsed.
func (m *MaxFloodNode) Done() bool { return m.elapsed >= m.schedule }

// SmallestFloodNode floods the s globally smallest values: every round
// it broadcasts the (up to) perMsg smallest values it knows; each of the
// s globally smallest values is always among any node's s smallest, so
// for perMsg >= s each floods within n-1 rounds. It is the indexing
// subroutine of Corollary 7.1 (token UIDs as values) and of
// priority-forward (block priorities as values).
type SmallestFloodNode struct {
	keep     int
	perMsg   int
	width    int
	schedule int
	elapsed  int
	known    []uint64
	seen     map[uint64]bool
}

var _ dynnet.Node = (*SmallestFloodNode)(nil)

// NewSmallestFloodNode returns a node that starts knowing own, keeps the
// keep smallest values, broadcasts at most perMsg of them per round at
// width bits each, and runs for schedule rounds.
func NewSmallestFloodNode(own []uint64, keep, perMsg, width, schedule int) *SmallestFloodNode {
	n := &SmallestFloodNode{
		keep:     keep,
		perMsg:   perMsg,
		width:    width,
		schedule: schedule,
		seen:     make(map[uint64]bool),
	}
	for _, v := range own {
		n.add(v)
	}
	return n
}

func (s *SmallestFloodNode) add(v uint64) {
	if s.seen[v] {
		return
	}
	s.seen[v] = true
	s.known = append(s.known, v)
	sort.Slice(s.known, func(i, j int) bool { return s.known[i] < s.known[j] })
	if len(s.known) > s.keep {
		delete(s.seen, s.known[len(s.known)-1])
		s.known = s.known[:s.keep]
	}
}

// Smallest returns the currently known smallest values, ascending.
func (s *SmallestFloodNode) Smallest() []uint64 {
	out := make([]uint64, len(s.known))
	copy(out, s.known)
	return out
}

// Send broadcasts the perMsg smallest known values.
func (s *SmallestFloodNode) Send(int) dynnet.Message {
	if len(s.known) == 0 {
		return nil
	}
	m := s.perMsg
	if m > len(s.known) {
		m = len(s.known)
	}
	vals := make([]uint64, m)
	copy(vals, s.known[:m])
	return ValuesMsg{Width: s.width, Values: vals}
}

// Receive merges heard values.
func (s *SmallestFloodNode) Receive(_ int, msgs []dynnet.Message) {
	for _, msg := range msgs {
		vm, ok := msg.(ValuesMsg)
		if !ok {
			continue
		}
		for _, v := range vm.Values {
			s.add(v)
		}
	}
	s.elapsed++
}

// Done reports whether the schedule elapsed.
func (s *SmallestFloodNode) Done() bool { return s.elapsed >= s.schedule }

// PackCountID packs a (count, node ID) pair so that uint64 ordering is
// "higher count wins; ties to the lower ID", as used to identify the
// node with the maximum token count after random-forward.
func PackCountID(count, id, n int) uint64 {
	return uint64(count)<<32 | uint64(uint32(n-1-id))
}

// UnpackCountID reverses PackCountID.
func UnpackCountID(v uint64, n int) (count, id int) {
	return int(v >> 32), n - 1 - int(uint32(v))
}

package forwarding

import (
	"fmt"

	"repro/internal/dynnet"
)

// FloodSmallestMulti floods the selectCount globally smallest values
// across the network when they do not all fit in one message: it runs
// ceil(selectCount/perMsg) phases of n rounds, each flooding (and then
// finalizing) the perMsg smallest not-yet-finalized values. This is the
// "naive indexing algorithm via flooding" the paper describes, whose
// log-factor overhead priority-forward inherits in our implementation
// (the paper's recursive O(n)-time refinement is deferred to its full
// version; see DESIGN.md).
//
// own[i] holds node i's initial values. phaseLen is the per-phase round
// count — n for a network of known size, or the current size estimate in
// the counting application. The returned slice is the ascending list of
// at most selectCount global minima, identical at all nodes when
// phaseLen >= n (the driver cross-checks).
func FloodSmallestMulti(s *dynnet.Session, own [][]uint64, selectCount, perMsg, width, phaseLen int) ([]uint64, error) {
	n := s.N()
	if len(own) != n {
		return nil, fmt.Errorf("forwarding: %d value sets for %d nodes", len(own), n)
	}
	if perMsg < 1 {
		return nil, fmt.Errorf("forwarding: perMsg must be >= 1")
	}
	if phaseLen < 1 {
		return nil, fmt.Errorf("forwarding: phaseLen must be >= 1")
	}
	finalized := make([]uint64, 0, selectCount)
	inFinal := make(map[uint64]bool, selectCount)

	for len(finalized) < selectCount {
		nodes := make([]dynnet.Node, n)
		impls := make([]*SmallestFloodNode, n)
		for i := range nodes {
			var vals []uint64
			for _, v := range own[i] {
				if !inFinal[v] {
					vals = append(vals, v)
				}
			}
			impls[i] = NewSmallestFloodNode(vals, perMsg, perMsg, width, phaseLen)
			nodes[i] = impls[i]
		}
		if err := s.RunFixed(nodes, phaseLen); err != nil {
			return nil, err
		}
		chosen := impls[0].Smallest()
		for i := 1; i < n; i++ {
			other := impls[i].Smallest()
			if len(other) != len(chosen) {
				return nil, fmt.Errorf("forwarding: flood phase disagreement on value count")
			}
			for j := range chosen {
				if other[j] != chosen[j] {
					return nil, fmt.Errorf("forwarding: flood phase disagreement on values")
				}
			}
		}
		if len(chosen) == 0 {
			break
		}
		for _, v := range chosen {
			if len(finalized) == selectCount {
				break
			}
			finalized = append(finalized, v)
			inFinal[v] = true
		}
		if len(chosen) < perMsg {
			// The network is exhausted: nothing more to select.
			break
		}
	}
	return finalized, nil
}

package forwarding

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
)

func multiSession(n int, seed int64) *dynnet.Session {
	return dynnet.NewSession(n, adversary.NewRotatingPath(n, seed), dynnet.Config{})
}

func TestFloodSmallestMultiSelectsGlobalMinima(t *testing.T) {
	const n = 10
	own := make([][]uint64, n)
	for i := range own {
		// Node i holds values i+1 and 100+i.
		own[i] = []uint64{uint64(i + 1), uint64(100 + i)}
	}
	s := multiSession(n, 1)
	// Select 7 smallest with only 2 values per message: needs 4 phases.
	got, err := FloodSmallestMulti(s, own, 7, 2, 32, n)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Cost: 4 phases of n rounds.
	if rounds := s.Metrics().Rounds; rounds != 4*n {
		t.Errorf("rounds = %d, want %d", rounds, 4*n)
	}
}

func TestFloodSmallestMultiExhaustsNetwork(t *testing.T) {
	const n = 6
	own := make([][]uint64, n)
	own[2] = []uint64{7}
	own[4] = []uint64{3}
	s := multiSession(n, 2)
	got, err := FloodSmallestMulti(s, own, 10, 4, 32, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("got %v, want [3 7]", got)
	}
}

func TestFloodSmallestMultiEmptyNetwork(t *testing.T) {
	const n = 4
	s := multiSession(n, 3)
	got, err := FloodSmallestMulti(s, make([][]uint64, n), 5, 2, 32, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v from empty network", got)
	}
}

func TestFloodSmallestMultiValidation(t *testing.T) {
	s := multiSession(4, 4)
	if _, err := FloodSmallestMulti(s, make([][]uint64, 3), 1, 1, 32, 4); err == nil {
		t.Error("wrong own size accepted")
	}
	if _, err := FloodSmallestMulti(s, make([][]uint64, 4), 1, 0, 32, 4); err == nil {
		t.Error("perMsg=0 accepted")
	}
	if _, err := FloodSmallestMulti(s, make([][]uint64, 4), 1, 1, 32, 0); err == nil {
		t.Error("phaseLen=0 accepted")
	}
}

// TestFloodSmallestMultiDuplicateValues: the same value held by several
// nodes must be selected once.
func TestFloodSmallestMultiDuplicateValues(t *testing.T) {
	const n = 5
	own := make([][]uint64, n)
	for i := range own {
		own[i] = []uint64{42, uint64(50 + i)}
	}
	s := multiSession(n, 5)
	got, err := FloodSmallestMulti(s, own, 3, 3, 32, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 42 || got[1] != 50 || got[2] != 51 {
		t.Fatalf("got %v, want [42 50 51]", got)
	}
}

// Package forwarding implements the token-forwarding side of the paper:
// the knowledge-based pipelined flooding algorithm of Theorem 2.1 (the
// baseline network coding is measured against), the random-forward
// gathering primitive of Section 7, and the flooding building blocks
// (max aggregation, smallest-values dissemination) that the paper's
// composite algorithms use for identification and indexing.
package forwarding

import (
	"fmt"

	"repro/internal/dynnet"
	"repro/internal/token"
)

// TokensMsg is a broadcast carrying whole tokens, the only message type
// token-forwarding algorithms use. Its wire size is what Theorem 2.1
// charges: each token costs its payload plus its O(log n)-bit UID.
type TokensMsg struct {
	Tokens []token.Token
}

// Bits returns the message size: a count field plus each token's UID and
// payload.
func (m TokensMsg) Bits() int {
	bits := token.CountBits
	for _, t := range m.Tokens {
		bits += t.Bits()
	}
	return bits
}

// ValuesMsg is a broadcast carrying fixed-width opaque values (UIDs,
// priorities, counts) used by the flooding subroutines.
type ValuesMsg struct {
	// Width is the per-value size in bits.
	Width  int
	Values []uint64
}

// Bits returns the message size.
func (m ValuesMsg) Bits() int { return token.CountBits + m.Width*len(m.Values) }

// TokensPerMessage returns how many (UID + payload) tokens fit into a
// b-bit message for payload size d. It errors if not even one fits,
// which corresponds to violating the model requirement b >= d + log n.
func TokensPerMessage(b, d int) (int, error) {
	c := token.TokensPerBlock(b, d)
	if c < 1 {
		return 0, fmt.Errorf("forwarding: budget %d bits cannot carry a d=%d token with its UID", b, d)
	}
	return c, nil
}

// knownTokens collects all tokens a node knows as a sorted slice filtered
// by a predicate.
func smallestUnfinished(set *token.Set, finished map[token.UID]bool, limit int) []token.Token {
	all := set.Tokens() // sorted by UID
	out := make([]token.Token, 0, limit)
	for _, t := range all {
		if finished[t.UID] {
			continue
		}
		out = append(out, t)
		if len(out) == limit {
			break
		}
	}
	return out
}

// PipelinedFloodNode is the deterministic knowledge-based token
// forwarding algorithm of Theorem 2.1: dissemination proceeds in phases
// of n rounds; within a phase every node broadcasts the c = b/(d+log n)
// smallest not-yet-finished tokens it knows, and at the end of the phase
// all nodes mark the c smallest tokens they know as finished. Because
// the c globally smallest unfinished tokens are always among the c
// smallest at every node that knows them, they flood completely within a
// phase, so all nodes finish consistently. Total time: ceil(k/c) phases.
type PipelinedFloodNode struct {
	set      *token.Set
	finished map[token.UID]bool
	n        int
	k        int
	c        int
	round    int
	total    int
}

var _ dynnet.Node = (*PipelinedFloodNode)(nil)

// NewPipelinedFloodNode returns a node for an n-node network
// disseminating k tokens, c tokens per message, starting with the given
// tokens. The set is owned by the node afterwards.
func NewPipelinedFloodNode(n, k, c int, initial []token.Token) *PipelinedFloodNode {
	set := token.NewSet()
	for _, t := range initial {
		set.Add(t)
	}
	phases := (k + c - 1) / c
	return &PipelinedFloodNode{
		set:      set,
		finished: make(map[token.UID]bool, k),
		n:        n,
		k:        k,
		c:        c,
		total:    phases * n,
	}
}

// Set exposes the node's token knowledge.
func (p *PipelinedFloodNode) Set() *token.Set { return p.set }

// Send broadcasts the c smallest unfinished tokens the node knows.
func (p *PipelinedFloodNode) Send(int) dynnet.Message {
	ts := smallestUnfinished(p.set, p.finished, p.c)
	if len(ts) == 0 {
		return nil
	}
	return TokensMsg{Tokens: ts}
}

// Receive merges neighbour tokens; at phase end it finalizes the c
// smallest known unfinished tokens.
func (p *PipelinedFloodNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		tm, ok := m.(TokensMsg)
		if !ok {
			continue
		}
		for _, t := range tm.Tokens {
			p.set.Add(t)
		}
	}
	p.round++
	if p.round%p.n == 0 {
		for _, t := range smallestUnfinished(p.set, p.finished, p.c) {
			p.finished[t.UID] = true
		}
	}
}

// Done reports whether all phases have elapsed.
func (p *PipelinedFloodNode) Done() bool { return p.round >= p.total }

// RunPipelinedFlood executes the Theorem 2.1 baseline end to end for a
// distribution of k tokens and verifies every node learned every token.
// It returns the number of rounds executed.
func RunPipelinedFlood(dist token.Distribution, k, b, d int, adv dynnet.Adversary) (int, error) {
	n := len(dist)
	c, err := TokensPerMessage(b, d)
	if err != nil {
		return 0, err
	}
	nodes := make([]dynnet.Node, n)
	impls := make([]*PipelinedFloodNode, n)
	for i := range nodes {
		impls[i] = NewPipelinedFloodNode(n, k, c, dist[i])
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{BitBudget: b})
	rounds, err := e.Run()
	if err != nil {
		return rounds, err
	}
	want := dist.All()
	for i, impl := range impls {
		if impl.Set().Len() < k {
			return rounds, fmt.Errorf("forwarding: node %d knows %d of %d tokens", i, impl.Set().Len(), k)
		}
		for _, t := range want {
			got, ok := impl.Set().Get(t.UID)
			if !ok || !got.Equal(t) {
				return rounds, fmt.Errorf("forwarding: node %d missing token %v", i, t.UID)
			}
		}
	}
	return rounds, nil
}

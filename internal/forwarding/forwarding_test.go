package forwarding

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/graph"
	"repro/internal/token"
)

func TestTokensPerMessage(t *testing.T) {
	if _, err := TokensPerMessage(10, 8); err == nil {
		t.Error("tiny budget should fail")
	}
	c, err := TokensPerMessage(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := (1000 - token.CountBits) / (token.UIDBits + 8); c != want {
		t.Errorf("c = %d, want %d", c, want)
	}
}

func TestTokensMsgBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := TokensMsg{Tokens: token.RandomSet(3, 10, rng)}
	want := token.CountBits + 3*(token.UIDBits+10)
	if m.Bits() != want {
		t.Errorf("Bits = %d, want %d", m.Bits(), want)
	}
}

func TestValuesMsgBits(t *testing.T) {
	m := ValuesMsg{Width: 32, Values: []uint64{1, 2}}
	if got, want := m.Bits(), token.CountBits+64; got != want {
		t.Errorf("Bits = %d, want %d", got, want)
	}
}

// TestPipelinedFloodDisseminates runs the Theorem 2.1 baseline under
// several adversaries and distributions.
func TestPipelinedFloodDisseminates(t *testing.T) {
	const n, d = 12, 8
	b := 2 * (token.UIDBits + d + token.CountBits) // two tokens per message
	tests := []struct {
		name string
		dist token.Distribution
		k    int
		adv  dynnet.Adversary
	}{
		{"one-per-node/random", token.OnePerNode(n, d, rand.New(rand.NewSource(1))), n, adversary.NewRandomConnected(n, 4, 1)},
		{"one-per-node/rotating", token.OnePerNode(n, d, rand.New(rand.NewSource(2))), n, adversary.NewRotatingPath(n, 2)},
		{"spread/random", token.Spread(n, 7, d, rand.New(rand.NewSource(3))), 7, adversary.NewRandomConnected(n, 4, 3)},
		{"at-one/path", token.AtOne(n, 5, d, rand.New(rand.NewSource(4))), 5, adversary.NewStatic(graph.Path(n))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rounds, err := RunPipelinedFlood(tt.dist, tt.k, b, d, tt.adv)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := TokensPerMessage(b, d)
			wantRounds := (tt.k + c - 1) / c * n
			if rounds != wantRounds {
				t.Errorf("rounds = %d, want %d", rounds, wantRounds)
			}
		})
	}
}

// TestPipelinedFloodScalesWithBudget checks the Theorem 2.1 linear-in-b
// behaviour: doubling b halves the round count.
func TestPipelinedFloodScalesWithBudget(t *testing.T) {
	const n, d, k = 10, 8, 10
	rng := rand.New(rand.NewSource(5))
	dist := token.OnePerNode(n, d, rng)
	b1 := 2 * (token.UIDBits + d + token.CountBits)
	b2 := 2 * b1
	r1, err := RunPipelinedFlood(dist, k, b1, d, adversary.NewRandomConnected(n, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunPipelinedFlood(dist, k, b2, d, adversary.NewRandomConnected(n, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r2 >= r1 {
		t.Errorf("rounds did not drop with larger budget: %d -> %d", r1, r2)
	}
}

func TestPipelinedFloodBudgetTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dist := token.OnePerNode(4, 64, rng)
	_, err := RunPipelinedFlood(dist, 4, 32, 64, adversary.NewRandomConnected(4, 0, 1))
	if err == nil {
		t.Error("expected error for b < d + log n")
	}
}

func TestMaxFloodAgreesOnPath(t *testing.T) {
	const n = 9
	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6, 5}
	nodes := make([]dynnet.Node, n)
	impls := make([]*MaxFloodNode, n)
	for i := range nodes {
		impls[i] = NewMaxFloodNode(vals[i], 64, n)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adversary.NewStatic(graph.Path(n)), dynnet.Config{BitBudget: 64 + token.CountBits})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, impl := range impls {
		if impl.Best() != 9 {
			t.Errorf("node %d best = %d, want 9", i, impl.Best())
		}
	}
}

func TestSmallestFloodConvergesToGlobalSmallest(t *testing.T) {
	const n, keep = 10, 3
	nodes := make([]dynnet.Node, n)
	impls := make([]*SmallestFloodNode, n)
	for i := range nodes {
		impls[i] = NewSmallestFloodNode([]uint64{uint64(100 - i)}, keep, keep, 32, n)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adversary.NewRotatingPath(n, 7), dynnet.Config{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{91, 92, 93}
	for i, impl := range impls {
		got := impl.Smallest()
		if len(got) != keep {
			t.Fatalf("node %d knows %d values", i, len(got))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("node %d smallest = %v, want %v", i, got, want)
			}
		}
	}
}

func TestPackCountID(t *testing.T) {
	const n = 16
	// Higher count wins.
	if PackCountID(3, 10, n) <= PackCountID(2, 0, n) {
		t.Error("higher count must dominate")
	}
	// Equal counts: lower ID wins.
	if PackCountID(3, 2, n) <= PackCountID(3, 7, n) {
		t.Error("lower ID must win ties")
	}
	c, id := UnpackCountID(PackCountID(5, 11, n), n)
	if c != 5 || id != 11 {
		t.Errorf("round trip = (%d,%d), want (5,11)", c, id)
	}
}

// TestRandomForwardIdentifiesAgreedMax runs the Section 7 primitive and
// checks the identified node really has the maximum count.
func TestRandomForwardIdentifiesAgreedMax(t *testing.T) {
	const n, k, d = 10, 10, 8
	rng := rand.New(rand.NewSource(8))
	dist := token.OnePerNode(n, d, rng)
	sets := make([]*token.Set, n)
	rngs := make([]*rand.Rand, n)
	for i := range sets {
		sets[i] = token.NewSet()
		for _, tk := range dist[i] {
			sets[i].Add(tk)
		}
		rngs[i] = rand.New(rand.NewSource(int64(i + 100)))
	}
	s := dynnet.NewSession(n, adversary.NewRandomConnected(n, 4, 9), dynnet.Config{})
	res, err := RandomForward(s, sets, nil, 2, 3*n, rngs)
	if err != nil {
		t.Fatal(err)
	}
	maxCount := 0
	for _, set := range sets {
		if set.Len() > maxCount {
			maxCount = set.Len()
		}
	}
	if res.Count != maxCount {
		t.Errorf("identified count %d, true max %d", res.Count, maxCount)
	}
	if sets[res.Identified].Len() != maxCount {
		t.Error("identified node does not hold the max")
	}
}

// TestRandomForwardGatheringLowerBound is a lightweight Lemma 7.2 check:
// with k tokens spread one per node, after O(n) rounds of random-forward
// the max count reaches either k or sqrt(bk/d) = sqrt(ck).
func TestRandomForwardGatheringLowerBound(t *testing.T) {
	const n, d = 24, 8
	const c = 2 // tokens per message => b/d ~ 2
	rng := rand.New(rand.NewSource(10))
	dist := token.OnePerNode(n, d, rng)
	sets := make([]*token.Set, n)
	rngs := make([]*rand.Rand, n)
	for i := range sets {
		sets[i] = token.NewSet()
		for _, tk := range dist[i] {
			sets[i].Add(tk)
		}
		rngs[i] = rand.New(rand.NewSource(int64(i + 7)))
	}
	s := dynnet.NewSession(n, adversary.NewRandomConnected(n, n, 11), dynnet.Config{})
	res, err := RandomForward(s, sets, nil, c, 4*n, rngs)
	if err != nil {
		t.Fatal(err)
	}
	// M = sqrt(c*k) with k = n.
	want := 6 // floor(sqrt(2*24)) = 6
	if res.Count < want {
		t.Errorf("gathered %d tokens, Lemma 7.2 predicts >= %d", res.Count, want)
	}
}

func TestRandomForwardEligibleFilter(t *testing.T) {
	const n, d = 6, 8
	rng := rand.New(rand.NewSource(12))
	dist := token.OnePerNode(n, d, rng)
	sets := make([]*token.Set, n)
	rngs := make([]*rand.Rand, n)
	for i := range sets {
		sets[i] = token.NewSet()
		for _, tk := range dist[i] {
			sets[i].Add(tk)
		}
		rngs[i] = rand.New(rand.NewSource(int64(i)))
	}
	// Only tokens owned by node 0 are eligible; everyone else's never move.
	eligible := func(u token.UID) bool { return u.Owner() == 0 }
	s := dynnet.NewSession(n, adversary.NewRandomConnected(n, 2, 13), dynnet.Config{})
	if _, err := RandomForward(s, sets, eligible, 2, 2*n, rngs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		for _, tk := range sets[i].Tokens() {
			if tk.UID.Owner() != 0 && tk.UID.Owner() != i {
				t.Errorf("ineligible token %v moved to node %d", tk.UID, i)
			}
		}
	}
}

func TestPipelinedFloodRespectsBudgetStrictly(t *testing.T) {
	// The engine itself enforces the budget: a run whose message size is
	// computed correctly never errors.
	const n, d = 8, 16
	rng := rand.New(rand.NewSource(14))
	dist := token.OnePerNode(n, d, rng)
	b := token.CountBits + 3*(token.UIDBits+d)
	_, err := RunPipelinedFlood(dist, n, b, d, adversary.NewRandomConnected(n, 3, 15))
	if err != nil && errors.Is(err, dynnet.ErrBudgetExceeded) {
		t.Fatalf("budget violated by correctly-sized messages: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
}

package forwarding

import (
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/token"
)

// RandomForwardNode is the random-forward primitive of Section 7: every
// round the node broadcasts b/d tokens chosen uniformly at random from
// those it knows (restricted to the caller's "still in consideration"
// filter). Lemma 7.2 shows that after O(n) rounds either some node knows
// everything or some node knows at least sqrt(bk/d) tokens.
type RandomForwardNode struct {
	set      *token.Set
	eligible func(token.UID) bool
	c        int
	rng      *rand.Rand
	schedule int
	elapsed  int
}

var _ dynnet.Node = (*RandomForwardNode)(nil)

// NewRandomForwardNode returns a node forwarding c random eligible
// tokens per round for schedule rounds. The set is shared state owned by
// the caller (dissemination drivers keep one token.Set per node across
// phases); eligible filters which tokens are still in consideration
// (nil means all).
func NewRandomForwardNode(set *token.Set, eligible func(token.UID) bool, c, schedule int, rng *rand.Rand) *RandomForwardNode {
	if eligible == nil {
		eligible = func(token.UID) bool { return true }
	}
	return &RandomForwardNode{set: set, eligible: eligible, c: c, rng: rng, schedule: schedule}
}

// Send broadcasts c random eligible tokens.
func (r *RandomForwardNode) Send(int) dynnet.Message {
	var pool []token.Token
	for _, t := range r.set.Tokens() {
		if r.eligible(t.UID) {
			pool = append(pool, t)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	r.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	m := r.c
	if m > len(pool) {
		m = len(pool)
	}
	return TokensMsg{Tokens: pool[:m]}
}

// Receive merges every heard token into the shared set.
func (r *RandomForwardNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		tm, ok := m.(TokensMsg)
		if !ok {
			continue
		}
		for _, t := range tm.Tokens {
			r.set.Add(t)
		}
	}
	r.elapsed++
}

// Done reports whether the schedule elapsed.
func (r *RandomForwardNode) Done() bool { return r.elapsed >= r.schedule }

// RandomForwardResult reports the outcome of one random-forward +
// identify execution.
type RandomForwardResult struct {
	// Identified is the node with the maximum eligible-token count
	// (ties to the lower ID), as agreed by flooding.
	Identified int
	// Count is that node's eligible-token count.
	Count int
}

// RandomForward runs the Section 7 "random-forward" algorithm as a
// phase of an existing session: forwardRounds rounds of random token
// forwarding over the shared per-node sets, then n rounds of max-count
// flooding to identify a node with the maximum eligible count. All nodes
// agree on the result.
func RandomForward(
	s *dynnet.Session,
	sets []*token.Set,
	eligible func(token.UID) bool,
	c, forwardRounds int,
	rngs []*rand.Rand,
) (RandomForwardResult, error) {
	n := s.N()
	nodes := make([]dynnet.Node, n)
	for i := range nodes {
		nodes[i] = NewRandomForwardNode(sets[i], eligible, c, forwardRounds, rngs[i])
	}
	if err := s.RunFixed(nodes, forwardRounds); err != nil {
		return RandomForwardResult{}, err
	}

	counts := make([]int, n)
	for i, set := range sets {
		for _, t := range set.Tokens() {
			if eligible == nil || eligible(t.UID) {
				counts[i]++
			}
		}
	}
	id, err := IdentifyMaxCount(s, counts)
	if err != nil {
		return RandomForwardResult{}, err
	}
	return RandomForwardResult{Identified: id, Count: counts[id]}, nil
}

// IdentifyMaxCount floods (count, id) maxima for n rounds so every node
// learns which node holds the maximum count (ties to the lowest ID); it
// returns that node's ID.
func IdentifyMaxCount(s *dynnet.Session, counts []int) (int, error) {
	n := s.N()
	nodes := make([]dynnet.Node, n)
	impls := make([]*MaxFloodNode, n)
	for i := range nodes {
		impls[i] = NewMaxFloodNode(PackCountID(counts[i], i, n), 64, n)
		nodes[i] = impls[i]
	}
	if err := s.RunFixed(nodes, n); err != nil {
		return 0, err
	}
	_, id := UnpackCountID(impls[0].Best(), n)
	return id, nil
}

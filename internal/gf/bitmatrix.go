package gf

import (
	"fmt"
	"sort"
)

// BitMatrix maintains a set of GF(2) row vectors in reduced row echelon
// form, supporting incremental insertion. It is the decoder state for
// network coding over GF(2): each received message is Reduced against
// the current basis and inserted when it carries new information
// (increases the rank).
//
// Rows are kept ordered by their leading (lowest-index) set bit; every
// leading bit is unique, and — the RREF invariant — every pivot column
// has exactly one set bit across all rows. Insert maintains the
// invariant by back-eliminating the existing rows against each new
// pivot, so rank/decodability queries never have to clone the matrix or
// redo elimination: they are O(rank) scans of the stored rows.
//
// Storage is a single contiguous []uint64 slab of stride-word rows.
// Echelon order is an indirection (order[i] names the slab row holding
// echelon row i), so Insert never moves row data — it reduces the
// candidate in place in the next free slab row and, on success, splices
// one index. The slab grows by doubling; Reset keeps it, so a decoder
// slot reused across coding generations (the streaming layer's span
// pool) performs no steady-state allocation.
type BitMatrix struct {
	cols   int
	stride int // words per row; len(slab) is a multiple of stride
	slab   []uint64
	// order maps echelon position -> slab row index. len(order) is the
	// rank; slab row order[len(order)] onward is free space, and the
	// first free row doubles as the Insert reduction scratch.
	order []int32
	lead  []int
}

// NewBitMatrix returns an empty echelon matrix with the given column
// count. No row storage is allocated until the first Insert.
func NewBitMatrix(cols int) *BitMatrix {
	if cols < 0 {
		panic("gf: negative BitMatrix column count")
	}
	return &BitMatrix{cols: cols, stride: (cols + 63) / 64}
}

// Cols returns the number of columns.
func (m *BitMatrix) Cols() int { return m.cols }

// Rank returns the current rank (number of stored rows).
func (m *BitMatrix) Rank() int { return len(m.order) }

// rowAt returns a view of the slab row at the given slab index. The
// view aliases the slab: it is invalidated by slab growth (Insert) and
// mutated by back-elimination.
func (m *BitMatrix) rowAt(idx int32) BitVec {
	off := int(idx) * m.stride
	return BitVec{n: m.cols, w: m.slab[off : off+m.stride : off+m.stride]}
}

// Row returns the i-th stored row (in echelon order). The returned
// vector is a view of the internal slab; callers must not modify it and
// must not hold it across Insert (growth may move the slab).
func (m *BitMatrix) Row(i int) BitVec { return m.rowAt(m.order[i]) }

// Lead returns the pivot column of the i-th stored row.
func (m *BitMatrix) Lead(i int) int { return m.lead[i] }

// Reduce eliminates v against the stored rows and returns the remainder.
// The input is not modified; the remainder is freshly allocated.
func (m *BitMatrix) Reduce(v BitVec) BitVec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf: BitMatrix reduce of %d-bit vector against %d columns", v.Len(), m.cols))
	}
	r := v.Clone()
	m.reduceInPlace(r)
	return r
}

func (m *BitMatrix) reduceInPlace(r BitVec) {
	for i, idx := range m.order {
		l := m.lead[i]
		if r.Bit(l) {
			// row is zero below its leading bit, so the xor can start
			// at the pivot word.
			r.XorRange(m.rowAt(idx), l, m.cols)
		}
	}
}

// grow ensures the slab has room for one more row, doubling on demand.
func (m *BitMatrix) grow() {
	if m.stride == 0 {
		return
	}
	need := (len(m.order) + 1) * m.stride
	if need <= len(m.slab) {
		return
	}
	newLen := len(m.slab) * 2
	if newLen < need {
		newLen = need
	}
	fresh := make([]uint64, newLen)
	copy(fresh, m.slab)
	m.slab = fresh
}

// Insert reduces v against the basis and, if the remainder is nonzero,
// adds it as a new row, back-eliminating the older rows against the new
// pivot so the matrix stays in reduced row echelon form. It reports
// whether the rank grew. The reduction happens in place in the next
// free slab row, so a rejected (dependent) vector costs no allocation
// and an accepted one costs none either once the slab has grown to the
// working rank.
func (m *BitMatrix) Insert(v BitVec) bool {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf: BitMatrix insert of %d-bit vector into %d columns", v.Len(), m.cols))
	}
	m.grow()
	free := int32(len(m.order))
	r := m.rowAt(free)
	r.CopyFrom(v)
	m.reduceInPlace(r)
	lb := r.LeadingBit()
	if lb < 0 {
		return false
	}
	pos := sort.SearchInts(m.lead, lb)
	// Only rows before pos can see column lb: every later row's leading
	// bit exceeds lb, so its bits at and below lb are already zero.
	for j := 0; j < pos; j++ {
		if row := m.rowAt(m.order[j]); row.Bit(lb) {
			row.XorRange(r, lb, m.cols)
		}
	}
	m.order = append(m.order, 0)
	copy(m.order[pos+1:], m.order[pos:])
	m.order[pos] = free
	m.lead = append(m.lead, 0)
	copy(m.lead[pos+1:], m.lead[pos:])
	m.lead[pos] = lb
	return true
}

// Contains reports whether v lies in the row span.
func (m *BitMatrix) Contains(v BitVec) bool {
	return m.Reduce(v).IsZero()
}

// RREF is a no-op kept for API compatibility: Insert maintains reduced
// row echelon form incrementally, so the matrix is always fully
// back-eliminated. After any sequence of Inserts, if the matrix spans
// all k unit vectors on the first k coordinates, Row(i) directly reveals
// coordinate block i.
func (m *BitMatrix) RREF() {}

// RowWithLead returns the index of the row whose pivot column is exactly
// c, or -1 if no row pivots there. Rows are sorted by pivot, so this is
// a binary search.
func (m *BitMatrix) RowWithLead(c int) int {
	i := sort.SearchInts(m.lead, c)
	if i < len(m.lead) && m.lead[i] == c {
		return i
	}
	return -1
}

// UnitRow returns the row whose leading bit is exactly column c and
// which, within the first prefix columns, has no other set bit. It
// reports whether such a row exists. For a coding matrix whose first
// prefix columns are coefficients, UnitRow(c, prefix) is the decoded
// vector for token c. Because the matrix is kept in RREF, this is a
// binary search plus a word-level popcount — no elimination happens.
func (m *BitMatrix) UnitRow(c, prefix int) (BitVec, bool) {
	i := m.RowWithLead(c)
	if i < 0 {
		return BitVec{}, false
	}
	row := m.Row(i)
	want := 0
	if c < prefix {
		want = 1
	}
	if row.OnesCountPrefix(prefix) != want {
		return BitVec{}, false
	}
	return row, true
}

// SpansUnitPrefix reports whether the row span restricted to the first
// prefix columns spans all prefix unit vectors, i.e. whether a decoder
// can recover every one of the prefix coordinate blocks.
func (m *BitMatrix) SpansUnitPrefix(prefix int) bool {
	// The projection spans F_2^prefix iff there are `prefix` pivots among
	// the first `prefix` columns. Leads are sorted, so count the prefix.
	pivots := sort.SearchInts(m.lead, prefix)
	return pivots == prefix
}

// Reset clears the matrix back to rank zero while keeping the column
// count and the slab, so a decoder slot can be reused for a new coding
// generation without reallocating row storage or the pivot bookkeeping.
func (m *BitMatrix) Reset() {
	m.order = m.order[:0]
	m.lead = m.lead[:0]
}

// MemoryBytes returns the approximate heap bytes held by the matrix:
// the slab plus the order/pivot bookkeeping slices. It is the
// per-generation memory figure the streaming layer reports.
func (m *BitMatrix) MemoryBytes() int {
	return 8*cap(m.slab) + 8*cap(m.lead) + 4*cap(m.order)
}

// Clone returns a deep copy of the matrix. The clone's slab is sized to
// the clone's rank, not the original's capacity.
func (m *BitMatrix) Clone() *BitMatrix {
	c := &BitMatrix{
		cols:   m.cols,
		stride: m.stride,
		slab:   make([]uint64, len(m.order)*m.stride),
		order:  make([]int32, len(m.order)),
		lead:   make([]int, len(m.lead)),
	}
	for i, idx := range m.order {
		copy(c.slab[i*m.stride:(i+1)*m.stride], m.slab[int(idx)*m.stride:(int(idx)+1)*m.stride])
		c.order[i] = int32(i)
	}
	copy(c.lead, m.lead)
	return c
}

package gf

import "fmt"

// BitMatrix maintains a set of GF(2) row vectors in row echelon form,
// supporting incremental insertion. It is the decoder state for network
// coding over GF(2): each received message is Reduced against the current
// basis and inserted when it carries new information (increases the rank).
//
// Rows are kept ordered by their leading (lowest-index) set bit; every
// leading bit is unique.
type BitMatrix struct {
	cols int
	rows []BitVec
	lead []int
}

// NewBitMatrix returns an empty echelon matrix with the given column count.
func NewBitMatrix(cols int) *BitMatrix {
	if cols < 0 {
		panic("gf: negative BitMatrix column count")
	}
	return &BitMatrix{cols: cols}
}

// Cols returns the number of columns.
func (m *BitMatrix) Cols() int { return m.cols }

// Rank returns the current rank (number of stored rows).
func (m *BitMatrix) Rank() int { return len(m.rows) }

// Row returns the i-th stored row (in echelon order). The returned vector
// is the internal storage; callers must not modify it.
func (m *BitMatrix) Row(i int) BitVec { return m.rows[i] }

// Lead returns the pivot column of the i-th stored row.
func (m *BitMatrix) Lead(i int) int { return m.lead[i] }

// Reduce eliminates v against the stored rows and returns the remainder.
// The input is not modified; the remainder is freshly allocated.
func (m *BitMatrix) Reduce(v BitVec) BitVec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf: BitMatrix reduce of %d-bit vector against %d columns", v.Len(), m.cols))
	}
	r := v.Clone()
	m.reduceInPlace(r)
	return r
}

func (m *BitMatrix) reduceInPlace(r BitVec) {
	for i, row := range m.rows {
		if r.Bit(m.lead[i]) {
			r.Xor(row)
		}
	}
}

// Insert reduces v against the basis and, if the remainder is nonzero,
// adds it as a new row. It reports whether the rank grew.
func (m *BitMatrix) Insert(v BitVec) bool {
	r := m.Reduce(v)
	lb := r.LeadingBit()
	if lb < 0 {
		return false
	}
	// Insert keeping rows sorted by leading bit.
	pos := len(m.rows)
	for i, l := range m.lead {
		if lb < l {
			pos = i
			break
		}
	}
	m.rows = append(m.rows, BitVec{})
	copy(m.rows[pos+1:], m.rows[pos:])
	m.rows[pos] = r
	m.lead = append(m.lead, 0)
	copy(m.lead[pos+1:], m.lead[pos:])
	m.lead[pos] = lb
	return true
}

// Contains reports whether v lies in the row span.
func (m *BitMatrix) Contains(v BitVec) bool {
	return m.Reduce(v).IsZero()
}

// RREF back-eliminates so that each pivot column has a single set bit
// across all rows (reduced row echelon form). After RREF, if the matrix
// spans all k unit vectors on the first k coordinates, Row(i) directly
// reveals coordinate block i.
func (m *BitMatrix) RREF() {
	for i := len(m.rows) - 1; i >= 0; i-- {
		for j := 0; j < i; j++ {
			if m.rows[j].Bit(m.lead[i]) {
				m.rows[j].Xor(m.rows[i])
			}
		}
	}
}

// UnitRow returns the row whose leading bit is exactly column c and which,
// within the first prefix columns, has no other set bit. It reports
// whether such a row exists. Call RREF first; then, for a coding matrix
// whose first prefix columns are coefficients, UnitRow(c, prefix) is the
// decoded vector for token c.
func (m *BitMatrix) UnitRow(c, prefix int) (BitVec, bool) {
	for i, l := range m.lead {
		if l != c {
			continue
		}
		row := m.rows[i]
		for j := 0; j < prefix; j++ {
			if j != c && row.Bit(j) {
				return BitVec{}, false
			}
		}
		return row, true
	}
	return BitVec{}, false
}

// SpansUnitPrefix reports whether the row span restricted to the first
// prefix columns spans all prefix unit vectors, i.e. whether a decoder
// can recover every one of the prefix coordinate blocks.
func (m *BitMatrix) SpansUnitPrefix(prefix int) bool {
	// The projection spans F_2^prefix iff there are `prefix` pivots among
	// the first `prefix` columns.
	pivots := 0
	for _, l := range m.lead {
		if l < prefix {
			pivots++
		}
	}
	return pivots == prefix
}

// Clone returns a deep copy of the matrix.
func (m *BitMatrix) Clone() *BitMatrix {
	c := &BitMatrix{
		cols: m.cols,
		rows: make([]BitVec, len(m.rows)),
		lead: make([]int, len(m.lead)),
	}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	copy(c.lead, m.lead)
	return c
}

package gf

import (
	"fmt"
	"sort"
)

// BitMatrix maintains a set of GF(2) row vectors in reduced row echelon
// form, supporting incremental insertion. It is the decoder state for
// network coding over GF(2): each received message is Reduced against
// the current basis and inserted when it carries new information
// (increases the rank).
//
// Rows are kept ordered by their leading (lowest-index) set bit; every
// leading bit is unique, and — the RREF invariant — every pivot column
// has exactly one set bit across all rows. Insert maintains the
// invariant by back-eliminating the existing rows against each new
// pivot, so rank/decodability queries never have to clone the matrix or
// redo elimination: they are O(rank) scans of the stored rows.
type BitMatrix struct {
	cols int
	rows []BitVec
	lead []int
}

// NewBitMatrix returns an empty echelon matrix with the given column count.
func NewBitMatrix(cols int) *BitMatrix {
	if cols < 0 {
		panic("gf: negative BitMatrix column count")
	}
	return &BitMatrix{cols: cols}
}

// Cols returns the number of columns.
func (m *BitMatrix) Cols() int { return m.cols }

// Rank returns the current rank (number of stored rows).
func (m *BitMatrix) Rank() int { return len(m.rows) }

// Row returns the i-th stored row (in echelon order). The returned vector
// is the internal storage; callers must not modify it.
func (m *BitMatrix) Row(i int) BitVec { return m.rows[i] }

// Lead returns the pivot column of the i-th stored row.
func (m *BitMatrix) Lead(i int) int { return m.lead[i] }

// Reduce eliminates v against the stored rows and returns the remainder.
// The input is not modified; the remainder is freshly allocated.
func (m *BitMatrix) Reduce(v BitVec) BitVec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf: BitMatrix reduce of %d-bit vector against %d columns", v.Len(), m.cols))
	}
	r := v.Clone()
	m.reduceInPlace(r)
	return r
}

func (m *BitMatrix) reduceInPlace(r BitVec) {
	for i, row := range m.rows {
		l := m.lead[i]
		if r.Bit(l) {
			// row is zero below its leading bit, so the xor can start
			// at the pivot word.
			r.XorRange(row, l, m.cols)
		}
	}
}

// Insert reduces v against the basis and, if the remainder is nonzero,
// adds it as a new row, back-eliminating the older rows against the new
// pivot so the matrix stays in reduced row echelon form. It reports
// whether the rank grew.
func (m *BitMatrix) Insert(v BitVec) bool {
	r := m.Reduce(v)
	lb := r.LeadingBit()
	if lb < 0 {
		return false
	}
	pos := sort.SearchInts(m.lead, lb)
	// Only rows before pos can see column lb: every later row's leading
	// bit exceeds lb, so its bits at and below lb are already zero.
	for j := 0; j < pos; j++ {
		if m.rows[j].Bit(lb) {
			m.rows[j].XorRange(r, lb, m.cols)
		}
	}
	m.rows = append(m.rows, BitVec{})
	copy(m.rows[pos+1:], m.rows[pos:])
	m.rows[pos] = r
	m.lead = append(m.lead, 0)
	copy(m.lead[pos+1:], m.lead[pos:])
	m.lead[pos] = lb
	return true
}

// Contains reports whether v lies in the row span.
func (m *BitMatrix) Contains(v BitVec) bool {
	return m.Reduce(v).IsZero()
}

// RREF is a no-op kept for API compatibility: Insert maintains reduced
// row echelon form incrementally, so the matrix is always fully
// back-eliminated. After any sequence of Inserts, if the matrix spans
// all k unit vectors on the first k coordinates, Row(i) directly reveals
// coordinate block i.
func (m *BitMatrix) RREF() {}

// RowWithLead returns the index of the row whose pivot column is exactly
// c, or -1 if no row pivots there. Rows are sorted by pivot, so this is
// a binary search.
func (m *BitMatrix) RowWithLead(c int) int {
	i := sort.SearchInts(m.lead, c)
	if i < len(m.lead) && m.lead[i] == c {
		return i
	}
	return -1
}

// UnitRow returns the row whose leading bit is exactly column c and
// which, within the first prefix columns, has no other set bit. It
// reports whether such a row exists. For a coding matrix whose first
// prefix columns are coefficients, UnitRow(c, prefix) is the decoded
// vector for token c. Because the matrix is kept in RREF, this is a
// binary search plus a word-level popcount — no elimination happens.
func (m *BitMatrix) UnitRow(c, prefix int) (BitVec, bool) {
	i := m.RowWithLead(c)
	if i < 0 {
		return BitVec{}, false
	}
	row := m.rows[i]
	want := 0
	if c < prefix {
		want = 1
	}
	if row.OnesCountPrefix(prefix) != want {
		return BitVec{}, false
	}
	return row, true
}

// SpansUnitPrefix reports whether the row span restricted to the first
// prefix columns spans all prefix unit vectors, i.e. whether a decoder
// can recover every one of the prefix coordinate blocks.
func (m *BitMatrix) SpansUnitPrefix(prefix int) bool {
	// The projection spans F_2^prefix iff there are `prefix` pivots among
	// the first `prefix` columns. Leads are sorted, so count the prefix.
	pivots := sort.SearchInts(m.lead, prefix)
	return pivots == prefix
}

// Reset clears the matrix back to rank zero while keeping the column
// count, so a decoder slot can be reused for a new coding generation
// without reallocating the row and pivot slices.
func (m *BitMatrix) Reset() {
	for i := range m.rows {
		m.rows[i] = BitVec{} // release row storage to the GC
	}
	m.rows = m.rows[:0]
	m.lead = m.lead[:0]
}

// MemoryBytes returns the approximate heap bytes held by the matrix:
// the packed row words plus the row/pivot bookkeeping slices. It is the
// per-generation memory figure the streaming layer reports.
func (m *BitMatrix) MemoryBytes() int {
	b := 8*cap(m.lead) + 24*cap(m.rows)
	for _, r := range m.rows {
		b += 8 * len(r.w)
	}
	return b
}

// Clone returns a deep copy of the matrix.
func (m *BitMatrix) Clone() *BitMatrix {
	c := &BitMatrix{
		cols: m.cols,
		rows: make([]BitVec, len(m.rows)),
		lead: make([]int, len(m.lead)),
	}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	copy(c.lead, m.lead)
	return c
}

package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitMatrixInsertRank(t *testing.T) {
	m := NewBitMatrix(4)
	rows := []string{"1100", "0110", "1010", "0001"}
	wantGrow := []bool{true, true, false, true}
	for i, s := range rows {
		if got := m.Insert(bvFromString(t, s)); got != wantGrow[i] {
			t.Errorf("insert %s: grew=%v, want %v", s, got, wantGrow[i])
		}
	}
	if m.Rank() != 3 {
		t.Errorf("rank = %d, want 3", m.Rank())
	}
}

func TestBitMatrixContains(t *testing.T) {
	m := NewBitMatrix(5)
	m.Insert(bvFromString(t, "11000"))
	m.Insert(bvFromString(t, "00110"))
	tests := []struct {
		v    string
		want bool
	}{
		{"11000", true},
		{"00110", true},
		{"11110", true},
		{"00000", true},
		{"10000", false},
		{"00001", false},
	}
	for _, tt := range tests {
		if got := m.Contains(bvFromString(t, tt.v)); got != tt.want {
			t.Errorf("Contains(%s) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

// TestBitMatrixRankMatchesNaive compares the incremental rank against a
// from-scratch Gaussian elimination on random instances.
func TestBitMatrixRankMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 1 + rng.Intn(40)
		nrows := rng.Intn(50)
		raw := make([]BitVec, nrows)
		m := NewBitMatrix(cols)
		for i := range raw {
			raw[i] = randBV(cols, rng)
			m.Insert(raw[i])
		}
		return m.Rank() == naiveRank(raw, cols)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func naiveRank(rows []BitVec, cols int) int {
	work := make([]BitVec, len(rows))
	for i, r := range rows {
		work[i] = r.Clone()
	}
	rank := 0
	for c := 0; c < cols; c++ {
		pivot := -1
		for i := rank; i < len(work); i++ {
			if work[i].Bit(c) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		for i := 0; i < len(work); i++ {
			if i != rank && work[i].Bit(c) {
				work[i].Xor(work[rank])
			}
		}
		rank++
	}
	return rank
}

// TestBitMatrixEchelonInvariant checks that stored rows always have
// strictly increasing unique leading bits.
func TestBitMatrixEchelonInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		cols := 1 + rng.Intn(60)
		m := NewBitMatrix(cols)
		for i := 0; i < 2*cols; i++ {
			m.Insert(randBV(cols, rng))
		}
		prev := -1
		for i := 0; i < m.Rank(); i++ {
			l := m.Lead(i)
			if l <= prev {
				t.Fatalf("leads not strictly increasing: %d after %d", l, prev)
			}
			if m.Row(i).LeadingBit() != l {
				t.Fatalf("stored lead %d != row leading bit %d", l, m.Row(i).LeadingBit())
			}
			prev = l
		}
	}
}

// TestBitMatrixDecode exercises the full coding round trip: encode k
// payloads with unit-prefix vectors, mix them randomly, decode via RREF.
func TestBitMatrixDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const k, d = 8, 16
	payloads := make([]BitVec, k)
	src := make([]BitVec, k)
	for i := range src {
		payloads[i] = randBV(d, rng)
		v := NewBitVec(k + d)
		v.Set(i, true)
		payloads[i].CopyInto(v, k)
		src[i] = v
	}
	// Feed random combinations until full rank.
	m := NewBitMatrix(k + d)
	for m.Rank() < k {
		mix := NewBitVec(k + d)
		for i := range src {
			if rng.Intn(2) == 1 {
				mix.Xor(src[i])
			}
		}
		m.Insert(mix)
	}
	m.RREF()
	if !m.SpansUnitPrefix(k) {
		t.Fatal("full-rank matrix does not span unit prefix")
	}
	for i := 0; i < k; i++ {
		row, ok := m.UnitRow(i, k)
		if !ok {
			t.Fatalf("no unit row for token %d", i)
		}
		got := row.Slice(k, k+d)
		if !got.Equal(payloads[i]) {
			t.Fatalf("token %d decoded wrong payload", i)
		}
	}
}

func TestBitMatrixSpansUnitPrefixPartial(t *testing.T) {
	m := NewBitMatrix(6) // prefix 3 + payload 3
	m.Insert(bvFromString(t, "100101"))
	m.Insert(bvFromString(t, "010011"))
	if m.SpansUnitPrefix(3) {
		t.Error("rank-2 prefix reported as spanning 3 dims")
	}
	m.Insert(bvFromString(t, "111111"))
	if !m.SpansUnitPrefix(3) {
		t.Error("full prefix rank not detected")
	}
}

func TestBitMatrixClone(t *testing.T) {
	m := NewBitMatrix(4)
	m.Insert(bvFromString(t, "1010"))
	c := m.Clone()
	c.Insert(bvFromString(t, "0101"))
	if m.Rank() != 1 || c.Rank() != 2 {
		t.Errorf("clone not independent: ranks %d, %d", m.Rank(), c.Rank())
	}
}

func TestBitMatrixReduceDoesNotMutate(t *testing.T) {
	m := NewBitMatrix(4)
	m.Insert(bvFromString(t, "1100"))
	v := bvFromString(t, "1110")
	_ = m.Reduce(v)
	if !v.Equal(bvFromString(t, "1110")) {
		t.Error("Reduce mutated its input")
	}
}

// TestBitMatrixResetReuse pins the lifecycle primitive the streaming
// layer's span pool relies on: Reset returns the matrix to rank zero
// and a reset matrix is indistinguishable from a fresh one.
func TestBitMatrixResetReuse(t *testing.T) {
	m := NewBitMatrix(4)
	for _, s := range []string{"1100", "0110", "0001"} {
		m.Insert(bvFromString(t, s))
	}
	if m.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", m.Rank())
	}
	if m.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes = %d for a rank-3 matrix", m.MemoryBytes())
	}

	m.Reset()
	if m.Rank() != 0 || m.Cols() != 4 {
		t.Fatalf("after Reset: rank %d cols %d, want 0 and 4", m.Rank(), m.Cols())
	}
	if v := bvFromString(t, "1100"); m.Contains(v) {
		t.Error("reset matrix still contains an old row")
	}

	// A reset matrix must accept a fresh basis exactly like a new one.
	fresh := NewBitMatrix(4)
	for _, s := range []string{"1010", "0101", "1111", "0011"} {
		if got, want := m.Insert(bvFromString(t, s)), fresh.Insert(bvFromString(t, s)); got != want {
			t.Errorf("insert %s after reset: grew=%v, fresh matrix says %v", s, got, want)
		}
	}
	if m.Rank() != fresh.Rank() {
		t.Errorf("rank %d after reuse, fresh matrix has %d", m.Rank(), fresh.Rank())
	}
	for i := 0; i < m.Rank(); i++ {
		if !m.Row(i).Equal(fresh.Row(i)) || m.Lead(i) != fresh.Lead(i) {
			t.Errorf("row %d differs between reused and fresh matrix", i)
		}
	}
}

// refMatrix is the pre-slab reference implementation: one heap
// allocation per echelon row, identical insert/back-eliminate logic.
// The slab-backed BitMatrix must agree with it on every observable.
type refMatrix struct {
	cols int
	rows []BitVec
	lead []int
}

func newRefMatrix(cols int) *refMatrix { return &refMatrix{cols: cols} }

func (m *refMatrix) insert(v BitVec) bool {
	r := v.Clone()
	for i, row := range m.rows {
		if r.Bit(m.lead[i]) {
			r.XorRange(row, m.lead[i], m.cols)
		}
	}
	lb := r.LeadingBit()
	if lb < 0 {
		return false
	}
	pos := 0
	for pos < len(m.lead) && m.lead[pos] < lb {
		pos++
	}
	for j := 0; j < pos; j++ {
		if m.rows[j].Bit(lb) {
			m.rows[j].XorRange(r, lb, m.cols)
		}
	}
	m.rows = append(m.rows, BitVec{})
	copy(m.rows[pos+1:], m.rows[pos:])
	m.rows[pos] = r
	m.lead = append(m.lead, 0)
	copy(m.lead[pos+1:], m.lead[pos:])
	m.lead[pos] = lb
	return true
}

// TestBitMatrixSlabMatchesPerRow drives the slab-backed matrix and the
// per-row reference through identical random insert sequences and
// requires identical grow decisions, leads and row contents (identical
// RREF) at every step.
func TestBitMatrixSlabMatchesPerRow(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 1 + rng.Intn(200)
		m := NewBitMatrix(cols)
		ref := newRefMatrix(cols)
		for i := 0; i < 3*cols/2; i++ {
			v := randBV(cols, rng)
			if m.Insert(v) != ref.insert(v) {
				t.Logf("seed %d: grow decision diverged at insert %d", seed, i)
				return false
			}
		}
		if m.Rank() != len(ref.rows) {
			return false
		}
		for i := 0; i < m.Rank(); i++ {
			if m.Lead(i) != ref.lead[i] || !m.Row(i).Equal(ref.rows[i]) {
				t.Logf("seed %d: row %d diverged", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBitMatrixSlabDoublingBoundary inserts unit vectors one at a time
// and checks ranks, leads and previously inserted rows exactly at and
// around every slab-doubling boundary (rank 1, 2, 4, 8, ...), where a
// growth bug (stale views, bad copy) would corrupt existing rows.
func TestBitMatrixSlabDoublingBoundary(t *testing.T) {
	const cols = 130 // three words per row, not word-aligned
	m := NewBitMatrix(cols)
	for i := 0; i < cols; i++ {
		v := NewBitVec(cols)
		v.Set(i, true)
		if !m.Insert(v) {
			t.Fatalf("unit vector %d rejected", i)
		}
		if m.Rank() != i+1 {
			t.Fatalf("rank %d after %d inserts", m.Rank(), i+1)
		}
		// Verify every row inserted so far survived the growth.
		for j := 0; j <= i; j++ {
			row := m.Row(j)
			if row.LeadingBit() != j || row.OnesCount() != 1 {
				t.Fatalf("after insert %d: row %d = %s", i, j, row.String())
			}
		}
	}
}

// TestBitMatrixResetReuseAfterGrowth grows a matrix through several
// slab doublings, Resets it, and refills it with a different basis; the
// refill must not observe any stale state and must not grow the slab.
func TestBitMatrixResetReuseAfterGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const cols = 257
	m := NewBitMatrix(cols)
	for m.Rank() < cols {
		m.Insert(randBV(cols, rng))
	}
	memAtFull := m.MemoryBytes()
	for round := 0; round < 3; round++ {
		m.Reset()
		if m.Rank() != 0 {
			t.Fatalf("rank %d after Reset", m.Rank())
		}
		ref := newRefMatrix(cols)
		for i := 0; i < 2*cols; i++ {
			v := randBV(cols, rng)
			if m.Insert(v) != ref.insert(v) {
				t.Fatalf("round %d: diverged from reference at insert %d", round, i)
			}
		}
		for i := 0; i < m.Rank(); i++ {
			if !m.Row(i).Equal(ref.rows[i]) {
				t.Fatalf("round %d: row %d corrupted after reuse", round, i)
			}
		}
		if got := m.MemoryBytes(); got != memAtFull {
			t.Fatalf("round %d: slab reallocated after Reset: %d -> %d bytes", round, memAtFull, got)
		}
	}
}

// TestBitMatrixInsertZeroAllocAtCapacity pins the steady-state claim:
// once the slab has grown to the working rank, further Inserts (both
// rejected duplicates and a Reset/refill cycle) allocate nothing.
func TestBitMatrixInsertZeroAllocAtCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const cols = 192
	m := NewBitMatrix(cols)
	vecs := make([]BitVec, cols)
	for i := range vecs {
		vecs[i] = randBV(cols, rng)
	}
	for _, v := range vecs {
		m.Insert(v)
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.Reset()
		for _, v := range vecs {
			m.Insert(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset+refill at capacity allocated %.1f times per run, want 0", allocs)
	}
}

package gf

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitVec is a fixed-length vector over GF(2), packed 64 bits per word.
// It is the message/vector representation used by the q = 2 coding fast
// path: addition is word-wise XOR and a dot product is a popcount parity.
type BitVec struct {
	n int
	w []uint64
}

// NewBitVec returns the zero vector of length n bits.
func NewBitVec(n int) BitVec {
	if n < 0 {
		panic("gf: negative BitVec length")
	}
	return BitVec{n: n, w: make([]uint64, (n+63)/64)}
}

// BitVecFromBytes packs the first n bits of data (LSB-first within each
// byte) into a BitVec of length n.
func BitVecFromBytes(data []byte, n int) BitVec {
	var v BitVec
	v.SetFromBytes(data, n)
	return v
}

// SetFromBytes reshapes v to n bits and fills it from the first
// ceil(n/8) bytes of data (LSB-first within each byte), reusing v's
// word storage when its capacity allows. Bits of data beyond n are
// ignored. It is the zero-allocation decode primitive behind
// wire.UnmarshalInto.
func (v *BitVec) SetFromBytes(data []byte, n int) {
	if n < 0 {
		panic("gf: negative BitVec length")
	}
	need := (n + 7) / 8
	if len(data) < need {
		panic(fmt.Sprintf("gf: %d bytes cannot hold %d bits", len(data), n))
	}
	// Reshape without clearing: the loops below overwrite every word
	// (the tail branch assigns the whole final word), so zeroing first
	// would double the write traffic of the per-packet decode path.
	words := (n + 63) / 64
	if cap(v.w) >= words {
		v.w = v.w[:words]
	} else {
		v.w = make([]uint64, words)
	}
	v.n = n
	full := need / 8
	for i := 0; i < full; i++ {
		v.w[i] = uint64(data[8*i]) | uint64(data[8*i+1])<<8 |
			uint64(data[8*i+2])<<16 | uint64(data[8*i+3])<<24 |
			uint64(data[8*i+4])<<32 | uint64(data[8*i+5])<<40 |
			uint64(data[8*i+6])<<48 | uint64(data[8*i+7])<<56
	}
	if full < len(v.w) {
		var w uint64
		for i := 8 * full; i < need; i++ {
			w |= uint64(data[i]) << (8 * uint(i-8*full))
		}
		v.w[full] = w
	}
	v.maskTail()
}

// Resize reshapes v to n bits, all zero, reusing the word storage when
// its capacity allows. It is the in-place counterpart of NewBitVec for
// scratch vectors that live across iterations of a hot loop.
func (v *BitVec) Resize(n int) {
	if n < 0 {
		panic("gf: negative BitVec length")
	}
	words := (n + 63) / 64
	if cap(v.w) >= words {
		v.w = v.w[:words]
		v.Zero()
	} else {
		v.w = make([]uint64, words)
	}
	v.n = n
}

// Zero clears every bit in place.
func (v BitVec) Zero() {
	for i := range v.w {
		v.w[i] = 0
	}
}

// CopyFrom overwrites v with u in place. The lengths must match.
func (v BitVec) CopyFrom(u BitVec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf: BitVec length mismatch %d vs %d", v.n, u.n))
	}
	copy(v.w, u.w)
}

// Len returns the vector length in bits.
func (v BitVec) Len() int { return v.n }

// Bit reports bit i.
func (v BitVec) Bit(i int) bool {
	v.check(i)
	return v.w[i>>6]>>(uint(i)&63)&1 == 1
}

// Set sets bit i to b.
func (v BitVec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.w[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.w[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip toggles bit i.
func (v BitVec) Flip(i int) {
	v.check(i)
	v.w[i>>6] ^= 1 << (uint(i) & 63)
}

func (v BitVec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf: BitVec index %d out of range [0,%d)", i, v.n))
	}
}

// Xor adds u into v in place (v += u over GF(2)). The lengths must match.
func (v BitVec) Xor(u BitVec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf: BitVec length mismatch %d vs %d", v.n, u.n))
	}
	for i, uw := range u.w {
		v.w[i] ^= uw
	}
}

// XorRange xors into v the whole 64-bit words of u that cover bits
// [lo, hi); words entirely outside the range are skipped. Bits of u that
// share a word with the range boundary are xored too, so callers must
// know u is zero outside [lo, hi) — the echelon fast path qualifies: a
// basis row is zero below its leading bit, so reducing against it can
// start at the pivot word.
func (v BitVec) XorRange(u BitVec, lo, hi int) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf: BitVec length mismatch %d vs %d", v.n, u.n))
	}
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("gf: BitVec xor range [%d,%d) out of range [0,%d)", lo, hi, v.n))
	}
	if lo == hi {
		return
	}
	for i, end := lo>>6, (hi+63)>>6; i < end; i++ {
		v.w[i] ^= u.w[i]
	}
}

// Dot returns the GF(2) inner product of v and u (the parity of the
// popcount of v AND u). The lengths must match.
func (v BitVec) Dot(u BitVec) uint64 {
	if v.n != u.n {
		panic(fmt.Sprintf("gf: BitVec length mismatch %d vs %d", v.n, u.n))
	}
	var acc uint64
	for i, uw := range u.w {
		acc ^= v.w[i] & uw
	}
	return uint64(bits.OnesCount64(acc)) & 1
}

// DotPrefix returns the GF(2) inner product of v's first u.Len() bits
// with u, without materializing the prefix as a slice. It relies on the
// package invariant that u's tail bits beyond u.Len() are zero.
func (v BitVec) DotPrefix(u BitVec) uint64 {
	if u.n > v.n {
		panic(fmt.Sprintf("gf: BitVec prefix dot of %d bits against %d", u.n, v.n))
	}
	var acc uint64
	for i, uw := range u.w {
		acc ^= v.w[i] & uw
	}
	return uint64(bits.OnesCount64(acc)) & 1
}

// OnesCountPrefix returns the number of set bits among the first prefix
// bits of v.
func (v BitVec) OnesCountPrefix(prefix int) int {
	if prefix < 0 || prefix > v.n {
		panic(fmt.Sprintf("gf: BitVec prefix %d out of range [0,%d]", prefix, v.n))
	}
	c := 0
	full := prefix >> 6
	for i := 0; i < full; i++ {
		c += bits.OnesCount64(v.w[i])
	}
	if prefix&63 != 0 {
		c += bits.OnesCount64(v.w[full] & (1<<(uint(prefix)&63) - 1))
	}
	return c
}

// IsZero reports whether every bit is zero.
func (v BitVec) IsZero() bool {
	for _, w := range v.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// LeadingBit returns the index of the first (lowest-index) set bit, or -1
// if the vector is zero. Echelon forms in this package pivot on the
// lowest-index bit.
func (v BitVec) LeadingBit() int {
	for i, w := range v.w {
		if w != 0 {
			b := i*64 + bits.TrailingZeros64(w)
			if b >= v.n {
				return -1
			}
			return b
		}
	}
	return -1
}

// OnesCount returns the number of set bits.
func (v BitVec) OnesCount() int {
	c := 0
	for _, w := range v.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of v.
func (v BitVec) Clone() BitVec {
	c := BitVec{n: v.n, w: make([]uint64, len(v.w))}
	copy(c.w, v.w)
	return c
}

// Slice copies bits [lo, hi) of v into a fresh BitVec of length hi-lo.
// It works a word at a time: each output word is assembled from at most
// two input words via shifts.
func (v BitVec) Slice(lo, hi int) BitVec {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("gf: BitVec slice [%d,%d) out of range [0,%d)", lo, hi, v.n))
	}
	out := NewBitVec(hi - lo)
	shift := uint(lo & 63)
	wlo := lo >> 6
	for i := range out.w {
		w := v.w[wlo+i] >> shift
		if shift != 0 && wlo+i+1 < len(v.w) {
			w |= v.w[wlo+i+1] << (64 - shift)
		}
		out.w[i] = w
	}
	out.maskTail()
	return out
}

// CopyInto copies v into bits [off, off+v.Len()) of dst.
func (v BitVec) CopyInto(dst BitVec, off int) {
	if off < 0 || off+v.n > dst.n {
		panic(fmt.Sprintf("gf: BitVec copy of %d bits at offset %d into %d bits", v.n, off, dst.n))
	}
	for i := 0; i < v.n; i++ {
		dst.Set(off+i, v.Bit(i))
	}
}

// Equal reports whether v and u have identical length and bits.
func (v BitVec) Equal(u BitVec) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range v.w {
		if w != u.w[i] {
			return false
		}
	}
	return true
}

// Bytes returns the vector packed LSB-first into ceil(n/8) bytes.
func (v BitVec) Bytes() []byte {
	return v.AppendBytes(make([]byte, 0, (v.n+7)/8))
}

// AppendBytes appends the vector packed LSB-first (ceil(n/8) bytes) to
// buf and returns the extended slice. It works a word at a time and
// performs no allocation when buf has capacity — the marshalling
// primitive behind wire.Packet.AppendTo.
func (v BitVec) AppendBytes(buf []byte) []byte {
	total := (v.n + 7) / 8
	full := total / 8
	for i := 0; i < full; i++ {
		w := v.w[i]
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	if full*8 < total {
		w := v.w[full]
		for b := 8 * full; b < total; b++ {
			buf = append(buf, byte(w>>(8*uint(b-8*full))))
		}
	}
	return buf
}

// String renders the vector as a bit string, lowest index first.
func (v BitVec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// RandomBitVec returns a uniformly random vector of length n using the
// given random word source.
func RandomBitVec(n int, rnd func() uint64) BitVec {
	v := NewBitVec(n)
	for i := range v.w {
		v.w[i] = rnd()
	}
	v.maskTail()
	return v
}

// maskTail clears the unused high bits of the last word so that Equal,
// IsZero and Dot can operate word-wise.
func (v BitVec) maskTail() {
	if v.n%64 != 0 && len(v.w) > 0 {
		v.w[len(v.w)-1] &= (1 << (uint(v.n) % 64)) - 1
	}
}

package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBV(n int, rng *rand.Rand) BitVec {
	return RandomBitVec(n, rng.Uint64)
}

func TestBitVecSetGet(t *testing.T) {
	v := NewBitVec(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i, true)
	}
	for i := 0; i < 130; i++ {
		want := false
		for _, j := range idx {
			if i == j {
				want = true
			}
		}
		if v.Bit(i) != want {
			t.Errorf("bit %d = %v, want %v", i, v.Bit(i), want)
		}
	}
	if got := v.OnesCount(); got != len(idx) {
		t.Errorf("OnesCount = %d, want %d", got, len(idx))
	}
	for _, i := range idx {
		v.Set(i, false)
	}
	if !v.IsZero() {
		t.Error("vector not zero after clearing all bits")
	}
}

func TestBitVecFlip(t *testing.T) {
	v := NewBitVec(70)
	v.Flip(69)
	if !v.Bit(69) {
		t.Error("Flip did not set bit")
	}
	v.Flip(69)
	if v.Bit(69) {
		t.Error("double Flip did not clear bit")
	}
}

func TestBitVecXorIsAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		a, b := randBV(n, rng), randBV(n, rng)
		sum := a.Clone()
		sum.Xor(b)
		for i := 0; i < n; i++ {
			want := a.Bit(i) != b.Bit(i)
			if sum.Bit(i) != want {
				t.Fatalf("n=%d bit %d: xor=%v want %v", n, i, sum.Bit(i), want)
			}
		}
		// x + x = 0.
		sum.Xor(b)
		if !sum.Equal(a) {
			t.Fatalf("n=%d: (a^b)^b != a", n)
		}
	}
}

func TestBitVecDot(t *testing.T) {
	tests := []struct {
		a, b string
		want uint64
	}{
		{"0000", "0000", 0},
		{"1000", "1000", 1},
		{"1100", "1100", 0},
		{"1110", "1011", 0},
		{"1110", "1111", 1},
	}
	for _, tt := range tests {
		a := bvFromString(t, tt.a)
		b := bvFromString(t, tt.b)
		if got := a.Dot(b); got != tt.want {
			t.Errorf("Dot(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func bvFromString(t *testing.T, s string) BitVec {
	t.Helper()
	v := NewBitVec(len(s))
	for i, c := range s {
		v.Set(i, c == '1')
	}
	return v
}

// TestBitVecDotBilinear checks <a+b, c> = <a,c> + <b,c> over random vectors.
func TestBitVecDotBilinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b, c := randBV(n, rng), randBV(n, rng), randBV(n, rng)
		ab := a.Clone()
		ab.Xor(b)
		return ab.Dot(c) == (a.Dot(c)+b.Dot(c))%2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitVecLeadingBit(t *testing.T) {
	tests := []struct {
		n    int
		set  []int
		want int
	}{
		{10, nil, -1},
		{10, []int{3}, 3},
		{10, []int{9, 3}, 3},
		{200, []int{150}, 150},
		{200, []int{64}, 64},
		{65, []int{64}, 64},
	}
	for _, tt := range tests {
		v := NewBitVec(tt.n)
		for _, i := range tt.set {
			v.Set(i, true)
		}
		if got := v.LeadingBit(); got != tt.want {
			t.Errorf("n=%d set=%v: LeadingBit = %d, want %d", tt.n, tt.set, got, tt.want)
		}
	}
}

func TestBitVecSliceAndCopyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randBV(150, rng)
	s := v.Slice(40, 110)
	if s.Len() != 70 {
		t.Fatalf("slice length %d, want 70", s.Len())
	}
	for i := 0; i < 70; i++ {
		if s.Bit(i) != v.Bit(40+i) {
			t.Fatalf("slice bit %d mismatch", i)
		}
	}
	dst := NewBitVec(150)
	s.CopyInto(dst, 40)
	for i := 0; i < 150; i++ {
		want := i >= 40 && i < 110 && v.Bit(i)
		if dst.Bit(i) != want {
			t.Fatalf("CopyInto bit %d = %v, want %v", i, dst.Bit(i), want)
		}
	}
}

func TestBitVecBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 200} {
		v := randBV(n, rng)
		got := BitVecFromBytes(v.Bytes(), n)
		if !got.Equal(v) {
			t.Errorf("n=%d: bytes round trip mismatch", n)
		}
	}
}

func TestBitVecString(t *testing.T) {
	v := NewBitVec(5)
	v.Set(1, true)
	v.Set(4, true)
	if got, want := v.String(), "01001"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestBitVecPanicsOnMismatch(t *testing.T) {
	a, b := NewBitVec(5), NewBitVec(6)
	assertPanics(t, "Xor", func() { a.Xor(b) })
	assertPanics(t, "Dot", func() { _ = a.Dot(b) })
	assertPanics(t, "Bit out of range", func() { _ = a.Bit(5) })
	assertPanics(t, "Set out of range", func() { a.Set(-1, true) })
	assertPanics(t, "Slice out of range", func() { _ = a.Slice(2, 9) })
	assertPanics(t, "negative length", func() { _ = NewBitVec(-1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestRandomBitVecTailMasked(t *testing.T) {
	// The tail mask matters for word-wise Equal/IsZero.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		v := randBV(65, rng)
		u := v.Clone()
		u.Xor(v)
		if !u.IsZero() {
			t.Fatal("v^v != 0 — tail bits leaked")
		}
	}
}

// Package gf implements the finite-field arithmetic that random linear
// network coding is built on: GF(2) with bit-packed vectors, binary
// extension fields GF(2^e) via log/exp tables, and prime fields F_p.
//
// All arithmetic is hand-rolled on uint64 element representations; no
// external dependencies. The package also provides dense vectors and
// matrices over an arbitrary Field together with incremental Gaussian
// elimination, which is the decoder used by the coding layer.
package gf

import (
	"fmt"
	"math/bits"
)

// Field is a finite field with elements represented as uint64 values in
// [0, Q). Implementations must be safe for concurrent use (they are
// stateless after construction).
type Field interface {
	// Q returns the field size q.
	Q() uint64
	// Bits returns ceil(log2 q), the cost in bits of one element.
	Bits() int
	// Add returns a + b.
	Add(a, b uint64) uint64
	// Sub returns a - b.
	Sub(a, b uint64) uint64
	// Neg returns -a.
	Neg(a uint64) uint64
	// Mul returns a * b.
	Mul(a, b uint64) uint64
	// Inv returns the multiplicative inverse of a.
	// Inv panics if a == 0; callers must guard, as with integer division.
	Inv(a uint64) uint64
	// String returns a short name such as "GF(2)" or "F_65537".
	String() string
}

// GF2 is the two-element field. It is the field the paper uses for almost
// all of its algorithms ("for most of this paper one can choose q = 2").
type GF2 struct{}

var _ Field = GF2{}

// Q returns 2.
func (GF2) Q() uint64 { return 2 }

// Bits returns 1.
func (GF2) Bits() int { return 1 }

// Add returns a XOR b.
func (GF2) Add(a, b uint64) uint64 { return (a ^ b) & 1 }

// Sub returns a XOR b (subtraction and addition coincide in GF(2)).
func (GF2) Sub(a, b uint64) uint64 { return (a ^ b) & 1 }

// Neg returns a (negation is the identity in GF(2)).
func (GF2) Neg(a uint64) uint64 { return a & 1 }

// Mul returns a AND b.
func (GF2) Mul(a, b uint64) uint64 { return a & b & 1 }

// Inv returns 1 for a == 1 and panics for a == 0.
func (GF2) Inv(a uint64) uint64 {
	if a&1 == 0 {
		panic("gf: inverse of zero in GF(2)")
	}
	return 1
}

// String returns "GF(2)".
func (GF2) String() string { return "GF(2)" }

// primitive polynomials (low bits, including the leading term) for the
// supported binary extension degrees.
var primitivePoly = map[int]uint64{
	2:  0x7,     // x^2 + x + 1
	3:  0xb,     // x^3 + x + 1
	4:  0x13,    // x^4 + x + 1
	8:  0x11d,   // x^8 + x^4 + x^3 + x^2 + 1 (the AES-adjacent Rijndael poly)
	16: 0x1100b, // x^16 + x^12 + x^3 + x + 1
}

// GF2e is the binary extension field GF(2^e) for e in {2, 3, 4, 8, 16},
// implemented with log/exp tables for O(1) multiplication.
type GF2e struct {
	e    int
	q    uint64
	log  []uint16
	exp  []uint16
	mask uint64
}

var _ Field = (*GF2e)(nil)

// NewGF2e constructs GF(2^e). Supported degrees are 2, 3, 4, 8 and 16.
func NewGF2e(e int) (*GF2e, error) {
	poly, ok := primitivePoly[e]
	if !ok {
		return nil, fmt.Errorf("gf: unsupported extension degree %d (want 2, 3, 4, 8 or 16)", e)
	}
	q := uint64(1) << e
	f := &GF2e{
		e:    e,
		q:    q,
		log:  make([]uint16, q),
		exp:  make([]uint16, 2*q),
		mask: q - 1,
	}
	// Generate the cyclic group by repeated multiplication by x.
	x := uint64(1)
	for i := uint64(0); i < q-1; i++ {
		f.exp[i] = uint16(x)
		f.exp[i+q-1] = uint16(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&q != 0 {
			x ^= poly
		}
	}
	return f, nil
}

// MustGF2e is NewGF2e but panics on an unsupported degree. It is intended
// for package-level defaults with known-good arguments.
func MustGF2e(e int) *GF2e {
	f, err := NewGF2e(e)
	if err != nil {
		panic(err)
	}
	return f
}

// Q returns 2^e.
func (f *GF2e) Q() uint64 { return f.q }

// Bits returns e.
func (f *GF2e) Bits() int { return f.e }

// Add returns a XOR b.
func (f *GF2e) Add(a, b uint64) uint64 { return (a ^ b) & f.mask }

// Sub returns a XOR b.
func (f *GF2e) Sub(a, b uint64) uint64 { return (a ^ b) & f.mask }

// Neg returns a.
func (f *GF2e) Neg(a uint64) uint64 { return a & f.mask }

// Mul multiplies via the log/exp tables.
func (f *GF2e) Mul(a, b uint64) uint64 {
	a &= f.mask
	b &= f.mask
	if a == 0 || b == 0 {
		return 0
	}
	return uint64(f.exp[uint64(f.log[a])+uint64(f.log[b])])
}

// Inv returns a^(q-2) via the log table. Inv panics if a == 0.
func (f *GF2e) Inv(a uint64) uint64 {
	a &= f.mask
	if a == 0 {
		panic("gf: inverse of zero in " + f.String())
	}
	return uint64(f.exp[(f.q-1)-uint64(f.log[a])])
}

// String returns "GF(2^e)".
func (f *GF2e) String() string { return fmt.Sprintf("GF(2^%d)", f.e) }

// Prime is the prime field F_p for a prime p < 2^32 (so products fit in a
// uint64 without overflow).
type Prime struct {
	p uint64
}

var _ Field = Prime{}

// NewPrime constructs F_p. It validates that p is a prime below 2^32.
func NewPrime(p uint64) (Prime, error) {
	if p >= 1<<32 {
		return Prime{}, fmt.Errorf("gf: prime %d too large (need p < 2^32)", p)
	}
	if !isPrime(p) {
		return Prime{}, fmt.Errorf("gf: %d is not prime", p)
	}
	return Prime{p: p}, nil
}

// MustPrime is NewPrime but panics on invalid input. It is intended for
// package-level defaults with known-good arguments.
func MustPrime(p uint64) Prime {
	f, err := NewPrime(p)
	if err != nil {
		panic(err)
	}
	return f
}

// Q returns p.
func (f Prime) Q() uint64 { return f.p }

// Bits returns ceil(log2 p).
func (f Prime) Bits() int { return bits.Len64(f.p - 1) }

// Add returns (a + b) mod p.
func (f Prime) Add(a, b uint64) uint64 {
	s := a + b
	if s >= f.p {
		s -= f.p
	}
	return s
}

// Sub returns (a - b) mod p.
func (f Prime) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + f.p - b
}

// Neg returns (-a) mod p.
func (f Prime) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.p - a
}

// Mul returns (a * b) mod p.
func (f Prime) Mul(a, b uint64) uint64 { return a * b % f.p }

// Inv returns a^(p-2) mod p by binary exponentiation. Inv panics if a == 0.
func (f Prime) Inv(a uint64) uint64 {
	if a%f.p == 0 {
		panic("gf: inverse of zero in " + f.String())
	}
	return f.pow(a%f.p, f.p-2)
}

func (f Prime) pow(a, e uint64) uint64 {
	r := uint64(1)
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = f.Mul(r, a)
		}
		a = f.Mul(a, a)
	}
	return r
}

// String returns "F_p".
func (f Prime) String() string { return fmt.Sprintf("F_%d", f.p) }

// isPrime is a deterministic Miller-Rabin test valid for all n < 2^32.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d * 2^s.
	d, s := n-1, 0
	for d%2 == 0 {
		d /= 2
		s++
	}
	// Bases {2, 7, 61} are sufficient for n < 2^32.
witness:
	for _, a := range []uint64{2, 7, 61} {
		if a%n == 0 {
			continue
		}
		x := powMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < s-1; i++ {
			x = x * x % n
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

func powMod(a, e, m uint64) uint64 {
	r := uint64(1)
	a %= m
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = r * a % m
		}
		a = a * a % m
	}
	return r
}

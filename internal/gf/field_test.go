package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allFields(t *testing.T) map[string]Field {
	t.Helper()
	return map[string]Field{
		"GF(2)":    GF2{},
		"GF(2^2)":  MustGF2e(2),
		"GF(2^3)":  MustGF2e(3),
		"GF(2^4)":  MustGF2e(4),
		"GF(2^8)":  MustGF2e(8),
		"GF(2^16)": MustGF2e(16),
		"F_2":      MustPrime(2),
		"F_3":      MustPrime(3),
		"F_257":    MustPrime(257),
		"F_65537":  MustPrime(65537),
	}
}

func TestFieldBits(t *testing.T) {
	tests := []struct {
		f    Field
		want int
	}{
		{GF2{}, 1},
		{MustGF2e(2), 2},
		{MustGF2e(8), 8},
		{MustGF2e(16), 16},
		{MustPrime(2), 1},
		{MustPrime(3), 2},
		{MustPrime(257), 9},
		{MustPrime(65537), 17},
	}
	for _, tt := range tests {
		if got := tt.f.Bits(); got != tt.want {
			t.Errorf("%v.Bits() = %d, want %d", tt.f, got, tt.want)
		}
	}
}

// TestFieldAxioms exhaustively checks the field axioms on all element
// pairs for small fields and on random samples for large ones.
func TestFieldAxioms(t *testing.T) {
	for name, f := range allFields(t) {
		f := f
		t.Run(name, func(t *testing.T) {
			q := f.Q()
			rng := rand.New(rand.NewSource(1))
			sample := func() uint64 {
				if q <= 64 {
					return rng.Uint64() % q
				}
				return rng.Uint64() % q
			}
			iters := 2000
			if q <= 16 {
				// Exhaustive over all pairs.
				for a := uint64(0); a < q; a++ {
					for b := uint64(0); b < q; b++ {
						checkPair(t, f, a, b)
					}
				}
				return
			}
			for i := 0; i < iters; i++ {
				checkPair(t, f, sample(), sample())
			}
		})
	}
}

func checkPair(t *testing.T, f Field, a, b uint64) {
	t.Helper()
	q := f.Q()
	if got := f.Add(a, b); got >= q {
		t.Fatalf("%v: Add(%d,%d) = %d out of range", f, a, b, got)
	}
	if f.Add(a, b) != f.Add(b, a) {
		t.Fatalf("%v: Add not commutative at (%d,%d)", f, a, b)
	}
	if f.Mul(a, b) != f.Mul(b, a) {
		t.Fatalf("%v: Mul not commutative at (%d,%d)", f, a, b)
	}
	if f.Add(a, 0) != a%q {
		t.Fatalf("%v: %d + 0 = %d", f, a, f.Add(a, 0))
	}
	if f.Mul(a, 1) != a%q {
		t.Fatalf("%v: %d * 1 = %d", f, a, f.Mul(a, 1))
	}
	if f.Mul(a, 0) != 0 {
		t.Fatalf("%v: %d * 0 = %d", f, a, f.Mul(a, 0))
	}
	if f.Add(a, f.Neg(a)) != 0 {
		t.Fatalf("%v: %d + (-%d) = %d", f, a, a, f.Add(a, f.Neg(a)))
	}
	if f.Sub(a, b) != f.Add(a, f.Neg(b)) {
		t.Fatalf("%v: Sub(%d,%d) != Add(a, Neg(b))", f, a, b)
	}
	if a != 0 {
		inv := f.Inv(a)
		if f.Mul(a, inv) != 1 {
			t.Fatalf("%v: %d * Inv(%d)=%d != 1", f, a, a, inv)
		}
	}
}

// TestFieldDistributive verifies a*(b+c) == a*b + a*c via testing/quick.
func TestFieldDistributive(t *testing.T) {
	for name, f := range allFields(t) {
		f := f
		t.Run(name, func(t *testing.T) {
			q := f.Q()
			prop := func(a, b, c uint64) bool {
				a, b, c = a%q, b%q, c%q
				return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestFieldAssociative verifies (a*b)*c == a*(b*c) via testing/quick.
func TestFieldAssociative(t *testing.T) {
	for name, f := range allFields(t) {
		f := f
		t.Run(name, func(t *testing.T) {
			q := f.Q()
			prop := func(a, b, c uint64) bool {
				a, b, c = a%q, b%q, c%q
				return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c)) &&
					f.Add(f.Add(a, b), c) == f.Add(a, f.Add(b, c))
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGF2eMultiplicativeGroupOrder(t *testing.T) {
	for _, e := range []int{2, 3, 4, 8} {
		f := MustGF2e(e)
		// x (element 2) must generate the full multiplicative group since
		// the polynomial is primitive.
		seen := make(map[uint64]bool)
		x := uint64(1)
		for i := uint64(0); i < f.Q()-1; i++ {
			if seen[x] {
				t.Fatalf("GF(2^%d): generator cycles after %d < q-1 steps", e, i)
			}
			seen[x] = true
			x = f.Mul(x, 2)
		}
		if x != 1 {
			t.Fatalf("GF(2^%d): generator order is not q-1", e)
		}
	}
}

func TestNewGF2eUnsupported(t *testing.T) {
	for _, e := range []int{0, 1, 5, 7, 32} {
		if _, err := NewGF2e(e); err == nil {
			t.Errorf("NewGF2e(%d) succeeded, want error", e)
		}
	}
}

func TestNewPrimeRejects(t *testing.T) {
	tests := []struct {
		p    uint64
		want bool // want success
	}{
		{2, true},
		{3, true},
		{65537, true},
		{4, false},
		{1, false},
		{0, false},
		{1 << 33, false},
		{561, false}, // Carmichael number
	}
	for _, tt := range tests {
		_, err := NewPrime(tt.p)
		if (err == nil) != tt.want {
			t.Errorf("NewPrime(%d): err=%v, want success=%v", tt.p, err, tt.want)
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	// Check against trial division for small values.
	trial := func(n uint64) bool {
		if n < 2 {
			return false
		}
		for d := uint64(2); d*d <= n; d++ {
			if n%d == 0 {
				return false
			}
		}
		return true
	}
	for n := uint64(0); n < 2000; n++ {
		if got, want := isPrime(n), trial(n); got != want {
			t.Fatalf("isPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestGF2e8InverseExhaustive checks a * Inv(a) == 1 for every nonzero
// element of GF(2^8).
func TestGF2e8InverseExhaustive(t *testing.T) {
	f := MustGF2e(8)
	for a := uint64(1); a < 256; a++ {
		if got := f.Mul(a, f.Inv(a)); got != 1 {
			t.Fatalf("%d * Inv(%d) = %d", a, a, got)
		}
	}
}

// TestFrobenius checks the freshman's dream (a+b)^2 = a^2 + b^2 in
// characteristic-2 fields.
func TestFrobenius(t *testing.T) {
	for _, e := range []int{2, 4, 8} {
		f := MustGF2e(e)
		for a := uint64(0); a < f.Q(); a++ {
			for b := uint64(0); b < f.Q(); b++ {
				lhs := f.Mul(f.Add(a, b), f.Add(a, b))
				rhs := f.Add(f.Mul(a, a), f.Mul(b, b))
				if lhs != rhs {
					t.Fatalf("GF(2^%d): (a+b)^2 != a^2+b^2 at (%d,%d)", e, a, b)
				}
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	for name, f := range allFields(t) {
		f := f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: Inv(0) did not panic", f)
				}
			}()
			f.Inv(0)
		})
	}
}

package gf

import (
	"testing"
)

// FuzzBitMatrixInsert feeds arbitrary row batches into a BitMatrix and
// asserts the echelon invariants the decoder depends on:
//
//   - leading bits are unique and strictly increasing,
//   - the matrix stays in reduced row echelon form (each pivot column
//     has exactly one set bit across all rows),
//   - rank never decreases and grows exactly when Insert reports it,
//   - every inserted vector is contained in the span afterwards,
//   - rank matches a from-scratch Gaussian elimination.
func FuzzBitMatrixInsert(f *testing.F) {
	f.Add(uint8(8), []byte{0b10110000, 0b01100000, 0b10110000, 0b00000001})
	f.Add(uint8(1), []byte{0x01, 0x00, 0xff})
	f.Add(uint8(65), []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
	f.Add(uint8(200), []byte{})
	f.Fuzz(func(t *testing.T, colsByte uint8, data []byte) {
		cols := int(colsByte)%96 + 1
		bytesPerRow := (cols + 7) / 8
		m := NewBitMatrix(cols)
		var inserted []BitVec
		for off := 0; off+bytesPerRow <= len(data) && len(inserted) < 64; off += bytesPerRow {
			v := BitVecFromBytes(data[off:off+bytesPerRow], cols)
			before := m.Rank()
			grew := m.Insert(v)
			inserted = append(inserted, v)

			if grew && m.Rank() != before+1 {
				t.Fatalf("Insert reported growth but rank went %d -> %d", before, m.Rank())
			}
			if !grew && m.Rank() != before {
				t.Fatalf("Insert reported no growth but rank went %d -> %d", before, m.Rank())
			}
			if !m.Contains(v) {
				t.Fatalf("span does not contain inserted vector %v", v)
			}
			checkRREFInvariants(t, m)
		}
		if got, want := m.Rank(), naiveRank(inserted, cols); got != want {
			t.Fatalf("rank = %d, naive Gaussian elimination says %d", got, want)
		}
	})
}

// checkRREFInvariants asserts unique sorted leads and the reduced-form
// property: a pivot column is zero in every row except its own.
func checkRREFInvariants(t *testing.T, m *BitMatrix) {
	t.Helper()
	prev := -1
	for i := 0; i < m.Rank(); i++ {
		l := m.Lead(i)
		if l <= prev {
			t.Fatalf("leads not strictly increasing: %d after %d", l, prev)
		}
		prev = l
		if got := m.Row(i).LeadingBit(); got != l {
			t.Fatalf("row %d: stored lead %d != leading bit %d", i, l, got)
		}
		for j := 0; j < m.Rank(); j++ {
			if j != i && m.Row(j).Bit(l) {
				t.Fatalf("not in RREF: row %d has a set bit in pivot column %d of row %d", j, l, i)
			}
		}
	}
}

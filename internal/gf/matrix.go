package gf

import "fmt"

// Matrix maintains rows over an arbitrary Field in row echelon form with
// incremental insertion, mirroring BitMatrix for general q. Pivot entries
// are normalized to 1 on insertion.
type Matrix struct {
	f    Field
	cols int
	rows []Vec
	lead []int
}

// NewMatrix returns an empty echelon matrix over f with the given column
// count.
func NewMatrix(f Field, cols int) *Matrix {
	if cols < 0 {
		panic("gf: negative Matrix column count")
	}
	return &Matrix{f: f, cols: cols}
}

// Field returns the underlying field.
func (m *Matrix) Field() Field { return m.f }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Rank returns the number of stored rows.
func (m *Matrix) Rank() int { return len(m.rows) }

// Row returns the i-th stored row. The returned slice is internal
// storage; callers must not modify it.
func (m *Matrix) Row(i int) Vec { return m.rows[i] }

// Lead returns the pivot column of the i-th stored row.
func (m *Matrix) Lead(i int) int { return m.lead[i] }

// Reduce eliminates v against the stored rows and returns the freshly
// allocated remainder.
func (m *Matrix) Reduce(v Vec) Vec {
	if len(v) != m.cols {
		panic(fmt.Sprintf("gf: Matrix reduce of %d-vector against %d columns", len(v), m.cols))
	}
	r := v.Clone()
	for i, row := range m.rows {
		c := r[m.lead[i]]
		if c != 0 {
			// Pivot is normalized to 1, so subtract c*row.
			r.AddScaled(m.f, m.f.Neg(c), row)
		}
	}
	return r
}

// Insert reduces v and adds the remainder as a new (normalized) row if it
// is nonzero. It reports whether the rank grew.
func (m *Matrix) Insert(v Vec) bool {
	r := m.Reduce(v)
	lb := r.Leading()
	if lb < 0 {
		return false
	}
	r.Scale(m.f, m.f.Inv(r[lb]))
	pos := len(m.rows)
	for i, l := range m.lead {
		if lb < l {
			pos = i
			break
		}
	}
	m.rows = append(m.rows, nil)
	copy(m.rows[pos+1:], m.rows[pos:])
	m.rows[pos] = r
	m.lead = append(m.lead, 0)
	copy(m.lead[pos+1:], m.lead[pos:])
	m.lead[pos] = lb
	return true
}

// Contains reports whether v lies in the row span.
func (m *Matrix) Contains(v Vec) bool {
	return m.Reduce(v).IsZero()
}

// RREF back-eliminates to reduced row echelon form.
func (m *Matrix) RREF() {
	for i := len(m.rows) - 1; i >= 0; i-- {
		for j := 0; j < i; j++ {
			c := m.rows[j][m.lead[i]]
			if c != 0 {
				m.rows[j].AddScaled(m.f, m.f.Neg(c), m.rows[i])
			}
		}
	}
}

// UnitRow returns the row with pivot column c whose first prefix
// coordinates are zero except coordinate c (which is 1). Call RREF first.
func (m *Matrix) UnitRow(c, prefix int) (Vec, bool) {
	for i, l := range m.lead {
		if l != c {
			continue
		}
		row := m.rows[i]
		for j := 0; j < prefix; j++ {
			if j != c && row[j] != 0 {
				return nil, false
			}
		}
		return row, true
	}
	return nil, false
}

// SpansUnitPrefix reports whether the projection onto the first prefix
// columns has full rank prefix.
func (m *Matrix) SpansUnitPrefix(prefix int) bool {
	pivots := 0
	for _, l := range m.lead {
		if l < prefix {
			pivots++
		}
	}
	return pivots == prefix
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		f:    m.f,
		cols: m.cols,
		rows: make([]Vec, len(m.rows)),
		lead: make([]int, len(m.lead)),
	}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	copy(c.lead, m.lead)
	return c
}

package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixInsertRank(t *testing.T) {
	f := MustPrime(7)
	m := NewMatrix(f, 3)
	if !m.Insert(Vec{1, 2, 3}) {
		t.Error("first insert should grow rank")
	}
	if !m.Insert(Vec{2, 4, 0}) {
		t.Error("independent insert should grow rank")
	}
	if m.Insert(Vec{3, 6, 3}) { // = row1 + row2 over F_7? 1+2=3, 2+4=6, 3+0=3 — dependent
		t.Error("dependent insert should not grow rank")
	}
	if m.Rank() != 2 {
		t.Errorf("rank = %d, want 2", m.Rank())
	}
}

func TestMatrixPivotNormalized(t *testing.T) {
	f := MustPrime(11)
	m := NewMatrix(f, 3)
	m.Insert(Vec{5, 1, 2})
	if got := m.Row(0)[m.Lead(0)]; got != 1 {
		t.Errorf("pivot = %d, want 1", got)
	}
}

// TestMatrixRankMatchesBitMatrix cross-checks the generic matrix against
// the GF(2) specialization on the same random instances.
func TestMatrixRankMatchesBitMatrix(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 1 + rng.Intn(30)
		nrows := rng.Intn(40)
		gm := NewMatrix(GF2{}, cols)
		bm := NewBitMatrix(cols)
		for i := 0; i < nrows; i++ {
			bv := randBV(cols, rng)
			v := NewVec(cols)
			for j := 0; j < cols; j++ {
				if bv.Bit(j) {
					v[j] = 1
				}
			}
			g1 := gm.Insert(v)
			g2 := bm.Insert(bv)
			if g1 != g2 {
				return false
			}
		}
		return gm.Rank() == bm.Rank()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMatrixDecode runs the coding round trip over several fields.
func TestMatrixDecode(t *testing.T) {
	for _, f := range []Field{MustGF2e(4), MustGF2e(8), MustPrime(257)} {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			const k, d = 6, 10
			payloads := make([]Vec, k)
			src := make([]Vec, k)
			for i := range src {
				payloads[i] = RandomVec(f, d, rng.Uint64)
				v := NewVec(k + d)
				v[i] = 1
				copy(v[k:], payloads[i])
				src[i] = v
			}
			m := NewMatrix(f, k+d)
			guard := 0
			for m.Rank() < k {
				if guard++; guard > 1000 {
					t.Fatal("failed to reach full rank in 1000 random combinations")
				}
				mix := NewVec(k + d)
				for i := range src {
					mix.AddScaled(f, uniformMod(f.Q(), rng.Uint64), src[i])
				}
				m.Insert(mix)
			}
			m.RREF()
			if !m.SpansUnitPrefix(k) {
				t.Fatal("full rank but unit prefix not spanned")
			}
			for i := 0; i < k; i++ {
				row, ok := m.UnitRow(i, k)
				if !ok {
					t.Fatalf("no unit row for %d", i)
				}
				if !Vec(row[k:]).Equal(payloads[i]) {
					t.Fatalf("payload %d mismatch", i)
				}
			}
		})
	}
}

func TestMatrixContains(t *testing.T) {
	f := MustPrime(5)
	m := NewMatrix(f, 3)
	m.Insert(Vec{1, 1, 0})
	m.Insert(Vec{0, 1, 1})
	tests := []struct {
		v    Vec
		want bool
	}{
		{Vec{1, 1, 0}, true},
		{Vec{2, 2, 0}, true},
		{Vec{1, 2, 1}, true}, // row1 + row2
		{Vec{0, 0, 0}, true},
		{Vec{1, 0, 0}, false},
	}
	for _, tt := range tests {
		if got := m.Contains(tt.v); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestMatrixClone(t *testing.T) {
	f := GF2{}
	m := NewMatrix(f, 2)
	m.Insert(Vec{1, 0})
	c := m.Clone()
	c.Insert(Vec{0, 1})
	if m.Rank() != 1 || c.Rank() != 2 {
		t.Errorf("clone not independent: ranks %d, %d", m.Rank(), c.Rank())
	}
}

func TestVecOps(t *testing.T) {
	f := MustPrime(7)
	v := Vec{1, 2, 3}
	v.AddScaled(f, 2, Vec{3, 0, 1})
	if !v.Equal(Vec{0, 2, 5}) {
		t.Errorf("AddScaled result %v, want [0 2 5]", v)
	}
	v.Scale(f, 3)
	if !v.Equal(Vec{0, 6, 1}) {
		t.Errorf("Scale result %v, want [0 6 1]", v)
	}
	if got := (Vec{1, 2}).Dot(f, Vec{3, 4}); got != (3+8)%7 {
		t.Errorf("Dot = %d, want %d", got, (3+8)%7)
	}
	if (Vec{0, 0}).Leading() != -1 {
		t.Error("Leading of zero vec should be -1")
	}
	if (Vec{0, 5, 0}).Leading() != 1 {
		t.Error("Leading index wrong")
	}
}

func TestUniformModUnbiasedSupport(t *testing.T) {
	// All residues of a non-power-of-two modulus must be reachable.
	rng := rand.New(rand.NewSource(2))
	const q = 5
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[uniformMod(q, rng.Uint64)] = true
	}
	for r := uint64(0); r < q; r++ {
		if !seen[r] {
			t.Errorf("residue %d never drawn", r)
		}
	}
}

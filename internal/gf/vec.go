package gf

import "fmt"

// Vec is a dense vector over an arbitrary Field, one uint64 element per
// coordinate. It is the general-q counterpart to BitVec, used by the
// derandomization experiments where large fields are required.
type Vec []uint64

// NewVec returns the zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns an independent copy.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// AddScaled adds s*u into v in place: v[i] += s*u[i].
func (v Vec) AddScaled(f Field, s uint64, u Vec) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("gf: Vec length mismatch %d vs %d", len(v), len(u)))
	}
	if s == 0 {
		return
	}
	for i, ui := range u {
		v[i] = f.Add(v[i], f.Mul(s, ui))
	}
}

// Scale multiplies v by s in place.
func (v Vec) Scale(f Field, s uint64) {
	for i := range v {
		v[i] = f.Mul(v[i], s)
	}
}

// Dot returns the inner product of v and u.
func (v Vec) Dot(f Field, u Vec) uint64 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("gf: Vec length mismatch %d vs %d", len(v), len(u)))
	}
	var acc uint64
	for i, ui := range u {
		acc = f.Add(acc, f.Mul(v[i], ui))
	}
	return acc
}

// IsZero reports whether every coordinate is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Leading returns the index of the first nonzero coordinate, or -1.
func (v Vec) Leading() int {
	for i, x := range v {
		if x != 0 {
			return i
		}
	}
	return -1
}

// Equal reports element-wise equality.
func (v Vec) Equal(u Vec) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range v {
		if x != u[i] {
			return false
		}
	}
	return true
}

// RandomVec returns a vector of length n with coordinates drawn uniformly
// from the field using the given random word source.
func RandomVec(f Field, n int, rnd func() uint64) Vec {
	v := NewVec(n)
	q := f.Q()
	for i := range v {
		v[i] = uniformMod(q, rnd)
	}
	return v
}

// uniformMod draws a uniform value in [0, q) by rejection sampling, which
// avoids modulo bias for non-power-of-two q.
func uniformMod(q uint64, rnd func() uint64) uint64 {
	if q&(q-1) == 0 {
		return rnd() & (q - 1)
	}
	limit := (^uint64(0) / q) * q
	for {
		x := rnd()
		if x < limit {
			return x % q
		}
	}
}

package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the n-cycle (for n >= 3; smaller n degrade to a path).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star returns the star with center 0.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// BinaryTree returns the complete binary tree with vertex i having
// children 2i+1 and 2i+2.
func BinaryTree(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		if c := 2*i + 1; c < n {
			g.AddEdge(i, c)
		}
		if c := 2*i + 2; c < n {
			g.AddEdge(i, c)
		}
	}
	return g
}

// RandomTree returns a uniform-ish random spanning tree: each vertex
// i >= 1 attaches to a uniformly random earlier vertex.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	RandomTreeInto(g, n, rng)
	return g
}

// RandomTreeInto rebuilds g in place as a random spanning tree, drawing
// exactly the same edge sequence as RandomTree (seeded runs are
// identical whichever entry point they use). Reusing one graph across
// rounds is what keeps a per-round topology churn allocation-free.
func RandomTreeInto(g *Graph, n int, rng *rand.Rand) {
	g.Reset(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
}

// RandomConnected returns a connected graph with roughly extra additional
// random edges on top of a random spanning tree.
func RandomConnected(n, extra int, rng *rand.Rand) *Graph {
	g := New(n)
	RandomConnectedInto(g, n, extra, rng)
	return g
}

// RandomConnectedInto rebuilds g in place as a random connected graph,
// drawing exactly the same edge sequence as RandomConnected.
func RandomConnectedInto(g *Graph, n, extra int, rng *rand.Rand) {
	RandomTreeInto(g, n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		g.AddEdge(u, v)
	}
}

// RandomRegularish returns a connected graph where every vertex gets deg
// random outgoing edge proposals (so degrees concentrate around 2*deg).
// For deg >= 2 this is an expander with high probability, which is the
// "easy" regime for dissemination; a spanning cycle guarantees
// connectivity.
func RandomRegularish(n, deg int, rng *rand.Rand) *Graph {
	g := Cycle(n)
	for u := 0; u < n; u++ {
		for j := 0; j < deg; j++ {
			g.AddEdge(u, rng.Intn(n))
		}
	}
	return g
}

// Grid returns the rows x cols grid graph (vertex r*cols+c).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			g.AddEdge(v, v^(1<<b))
		}
	}
	return g
}

// squarishGrid returns a near-square grid on exactly n vertices: a
// floor(sqrt(n)) x (n/rows) grid, with any remainder vertices attached
// as a path tail so the graph stays connected on all n vertices.
func squarishGrid(n int) *Graph {
	rows := 1
	for (rows+1)*(rows+1) <= n {
		rows++
	}
	cols := n / rows
	g := Grid(rows, cols)
	// Attach any remainder vertices as a path hanging off the last cell.
	full := rows * cols
	if full == n {
		return g
	}
	out := New(n)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	for v := full; v < n; v++ {
		out.AddEdge(v-1, v)
	}
	return out
}

// Named builds one of the fixed topology families by name; it is the
// topology flag behind cmd/dissem. Supported names: path, cycle, star,
// complete, tree, random, expander, grid, hypercube (rounded down to a
// power of two).
func Named(name string, n int, rng *rand.Rand) (*Graph, error) {
	switch name {
	case "path":
		return Path(n), nil
	case "cycle":
		return Cycle(n), nil
	case "star":
		return Star(n), nil
	case "complete":
		return Complete(n), nil
	case "tree":
		return BinaryTree(n), nil
	case "random":
		return RandomConnected(n, n, rng), nil
	case "expander":
		return RandomRegularish(n, 3, rng), nil
	case "grid":
		return squarishGrid(n), nil
	case "hypercube":
		dim := 0
		for 1<<(dim+1) <= n {
			dim++
		}
		return Hypercube(dim), nil
	default:
		return nil, fmt.Errorf("graph: unknown topology %q", name)
	}
}

// Package graph provides the static-graph machinery the dynamic network
// model is built from: adjacency structures, generators for the topologies
// adversaries serve, BFS primitives, graph powers, Luby's maximal
// independent set, and the patch decomposition of Section 8.1 of the paper.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..n-1.
type Graph struct {
	n   int
	adj [][]int
	has map[edge]struct{}
}

type edge struct{ u, v int }

func normEdge(u, v int) edge {
	if u > v {
		u, v = v, u
	}
	return edge{u: u, v: v}
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:   n,
		adj: make([][]int, n),
		has: make(map[edge]struct{}),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Reset empties g and resizes it to n vertices, keeping the adjacency
// slices' capacity and the edge map's buckets so a generator that
// rebuilds a similarly-sized topology into g every round (the dynamic
// network adversaries) allocates nothing in steady state.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if n <= cap(g.adj) {
		g.adj = g.adj[:n]
	} else {
		fresh := make([][]int, n)
		copy(fresh, g.adj[:cap(g.adj)])
		g.adj = fresh
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	clear(g.has)
	g.n = n
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.has) }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.checkVertex(u)
	g.checkVertex(v)
	e := normEdge(u, v)
	if _, ok := g.has[e]; ok {
		return
	}
	g.has[e] = struct{}{}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	_, ok := g.has[normEdge(u, v)]
	return ok
}

// Neighbors returns the adjacency list of u. The returned slice is
// internal storage; callers must not modify it.
func (g *Graph) Neighbors(u int) []int {
	g.checkVertex(u)
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	g.checkVertex(u)
	return len(g.adj[u])
}

func (g *Graph) checkVertex(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for e := range g.has {
		c.AddEdge(e.u, e.v)
	}
	return c
}

// Edges returns all edges in a deterministic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.has))
	for e := range g.has {
		out = append(out, [2]int{e.u, e.v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// BFS returns the distance from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	g.checkVertex(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// IsConnected reports whether g is connected. The empty graph and the
// one-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the largest finite BFS distance over all sources, or
// -1 if the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for s := 0; s < g.n; s++ {
		for _, d := range g.BFS(s) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Power returns the D-th power of g: vertices are adjacent iff their
// distance in g is between 1 and D.
func (g *Graph) Power(d int) *Graph {
	if d < 1 {
		panic("graph: power must be >= 1")
	}
	p := New(g.n)
	for s := 0; s < g.n; s++ {
		for v, dist := range g.BFS(s) {
			if dist >= 1 && dist <= d && v > s {
				p.AddEdge(s, v)
			}
		}
	}
	return p
}

// BFSTree returns the parent of every vertex in a BFS tree rooted at
// root (parent[root] = -1; unreachable vertices also get -1). Ties are
// broken toward the lowest-numbered parent, matching the paper's
// "lowest ID node the broadcast was received from".
func (g *Graph) BFSTree(root int) []int {
	g.checkVertex(root)
	parent := make([]int, g.n)
	dist := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		// Visit neighbours in sorted order for deterministic low-ID parents.
		nb := append([]int(nil), g.adj[u]...)
		sort.Ints(nb)
		for _, v := range nb {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// MIS returns a maximal independent set computed by Luby's randomized
// permutation algorithm: repeatedly add the vertex whose random priority
// beats all its active neighbours, then deactivate its neighbourhood.
func (g *Graph) MIS(rng *rand.Rand) []int {
	active := make([]bool, g.n)
	for i := range active {
		active[i] = true
	}
	inMIS := make([]bool, g.n)
	remaining := g.n
	for remaining > 0 {
		prio := make([]float64, g.n)
		for i := range prio {
			prio[i] = rng.Float64()
		}
		// A vertex joins when its priority is a strict local maximum among
		// active closed-neighbourhood rivals.
		var join []int
		for u := 0; u < g.n; u++ {
			if !active[u] {
				continue
			}
			best := true
			for _, v := range g.adj[u] {
				if active[v] && (prio[v] > prio[u] || (prio[v] == prio[u] && v < u)) {
					best = false
					break
				}
			}
			if best {
				join = append(join, u)
			}
		}
		for _, u := range join {
			if !active[u] {
				continue
			}
			inMIS[u] = true
			active[u] = false
			remaining--
			for _, v := range g.adj[u] {
				if active[v] {
					active[v] = false
					remaining--
				}
			}
		}
	}
	var out []int
	for u, in := range inMIS {
		if in {
			out = append(out, u)
		}
	}
	return out
}

// IsIndependentSet reports whether no two vertices of set are adjacent.
func (g *Graph) IsIndependentSet(set []int) bool {
	in := make(map[int]bool, len(set))
	for _, u := range set {
		in[u] = true
	}
	for e := range g.has {
		if in[e.u] && in[e.v] {
			return false
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is independent and every
// vertex outside it has a neighbour inside it.
func (g *Graph) IsMaximalIndependentSet(set []int) bool {
	if !g.IsIndependentSet(set) {
		return false
	}
	in := make(map[int]bool, len(set))
	for _, u := range set {
		in[u] = true
	}
	for u := 0; u < g.n; u++ {
		if in[u] {
			continue
		}
		covered := false
		for _, v := range g.adj[u] {
			if in[v] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Error("degree wrong")
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		wantEdges int
		wantDiam  int
	}{
		{"path5", Path(5), 4, 4},
		{"cycle5", Cycle(5), 5, 2},
		{"cycle2", Cycle(2), 1, 1},
		{"star6", Star(6), 5, 2},
		{"complete4", Complete(4), 6, 1},
		{"tree7", BinaryTree(7), 6, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.M(); got != tt.wantEdges {
				t.Errorf("edges = %d, want %d", got, tt.wantEdges)
			}
			if !tt.g.IsConnected() {
				t.Error("not connected")
			}
			if got := tt.g.Diameter(); got != tt.wantDiam {
				t.Errorf("diameter = %d, want %d", got, tt.wantDiam)
			}
		})
	}
}

func TestRandomGeneratorsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 50} {
		if !RandomTree(n, rng).IsConnected() {
			t.Errorf("RandomTree(%d) disconnected", n)
		}
		if !RandomConnected(n, n/2, rng).IsConnected() {
			t.Errorf("RandomConnected(%d) disconnected", n)
		}
		if n >= 3 && !RandomRegularish(n, 3, rng).IsConnected() {
			t.Errorf("RandomRegularish(%d) disconnected", n)
		}
	}
}

func TestRandomTreeEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 5, 40} {
		g := RandomTree(n, rng)
		want := n - 1
		if n == 0 {
			want = 0
		}
		if g.M() != want {
			t.Errorf("RandomTree(%d) has %d edges, want %d", n, g.M(), want)
		}
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := Path(6)
	dist := g.BFS(2)
	want := []int{2, 1, 0, 1, 2, 3}
	for i, d := range dist {
		if d != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d, want[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 {
		t.Errorf("unreachable vertex has dist %d, want -1", dist[2])
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
}

func TestPower(t *testing.T) {
	g := Path(5)
	p2 := g.Power(2)
	wantEdges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}}
	if p2.M() != len(wantEdges) {
		t.Fatalf("P^2 of path has %d edges, want %d", p2.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !p2.HasEdge(e[0], e[1]) {
			t.Errorf("P^2 missing edge %v", e)
		}
	}
	// Power >= diameter gives the complete graph.
	pAll := g.Power(4)
	if pAll.M() != 10 {
		t.Errorf("P^4 of path-5 has %d edges, want 10 (complete)", pAll.M())
	}
}

func TestBFSTree(t *testing.T) {
	g := Cycle(6)
	parent := g.BFSTree(0)
	if parent[0] != -1 {
		t.Error("root should have parent -1")
	}
	// Every non-root vertex must have a parent strictly closer to the root.
	dist := g.BFS(0)
	for v := 1; v < 6; v++ {
		p := parent[v]
		if p < 0 {
			t.Fatalf("vertex %d has no parent", v)
		}
		if dist[p] != dist[v]-1 {
			t.Errorf("vertex %d: parent %d not one step closer", v, p)
		}
	}
}

// TestMISProperties checks Luby's output is a maximal independent set on
// random graphs.
func TestMISProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := RandomConnected(n, rng.Intn(2*n), rng)
		mis := g.MIS(rng)
		return g.IsMaximalIndependentSet(mis)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMISCompleteGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mis := Complete(10).MIS(rng)
	if len(mis) != 1 {
		t.Errorf("MIS of K_10 has size %d, want 1", len(mis))
	}
}

func TestMISEmptyEdgeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mis := New(7).MIS(rng)
	if len(mis) != 7 {
		t.Errorf("MIS of edgeless graph has size %d, want 7", len(mis))
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
	if g.M() != 17 {
		t.Errorf("M = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Error("grid disconnected")
	}
	if got, want := g.Diameter(), 2+3; got != want {
		t.Errorf("diameter = %d, want %d", got, want)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 16*4/2 {
		t.Errorf("M = %d, want 32", g.M())
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
}

func TestSquarishGridAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 1; n <= 40; n++ {
		g, err := Named("grid", n, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.N() != n {
			t.Errorf("n=%d: got %d vertices", n, g.N())
		}
		if n > 1 && !g.IsConnected() {
			t.Errorf("n=%d: disconnected", n)
		}
	}
}

func TestNamed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"path", "cycle", "star", "complete", "tree", "random", "expander", "grid"} {
		g, err := Named(name, 12, rng)
		if err != nil {
			t.Errorf("Named(%q): %v", name, err)
			continue
		}
		if g.N() != 12 || !g.IsConnected() {
			t.Errorf("Named(%q): n=%d connected=%v", name, g.N(), g.IsConnected())
		}
	}
	if _, err := Named("nope", 5, rng); err == nil {
		t.Error("Named(nope) should fail")
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	want := [][2]int{{0, 2}, {1, 2}, {1, 3}}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("clone shares storage with original")
	}
}

// TestRandomConnectedIntoMatchesAllocating pins that the in-place
// generators draw the same edge sequence as the allocating ones and
// that Reset fully clears stale adjacency between rebuilds.
func TestRandomConnectedIntoMatchesAllocating(t *testing.T) {
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	scratch := New(0)
	for round := 0; round < 30; round++ {
		n := 2 + round%17
		extra := round % 7
		want := RandomConnected(n, extra, rngA)
		RandomConnectedInto(scratch, n, extra, rngB)
		if scratch.N() != want.N() || scratch.M() != want.M() {
			t.Fatalf("round %d: size diverged: %d/%d vs %d/%d", round, scratch.N(), scratch.M(), want.N(), want.M())
		}
		we, ge := want.Edges(), scratch.Edges()
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("round %d: edge %d diverged", round, i)
			}
		}
		for u := 0; u < n; u++ {
			if scratch.Degree(u) != want.Degree(u) {
				t.Fatalf("round %d: degree of %d diverged (stale adjacency?)", round, u)
			}
		}
	}
}

// TestGraphResetSteadyStateZeroAlloc pins that rebuilding a same-sized
// random topology into a warmed scratch graph allocates nothing.
func TestGraphResetSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := New(64)
	for i := 0; i < 10; i++ {
		RandomConnectedInto(g, 64, 32, rng) // warm capacities and map buckets
	}
	allocs := testing.AllocsPerRun(50, func() {
		RandomConnectedInto(g, 64, 32, rng)
	})
	if allocs != 0 {
		t.Fatalf("warmed rebuild allocated %.1f times per round, want 0", allocs)
	}
}

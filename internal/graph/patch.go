package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Patching is the Section 8.1 decomposition of a (stable) graph into
// connected patches of radius at most D around the vertices of a maximal
// independent set of G^D. Each patch carries a shortest-path tree rooted
// at its leader, which the T-stable share-pass-share protocol pipelines
// over.
type Patching struct {
	// D is the patching radius parameter.
	D int
	// Leaders lists the MIS vertices, one per patch, in increasing order.
	Leaders []int
	// PatchOf maps each vertex to its leader.
	PatchOf []int
	// Parent is the tree parent of each vertex within its patch
	// (-1 for leaders).
	Parent []int
	// Depth is the tree depth of each vertex (0 for leaders).
	Depth []int
}

// ComputePatches decomposes a connected graph into patches with radius
// parameter D >= 1: it takes a maximal independent set of G^D and assigns
// every vertex to its closest leader (ties broken toward the lowest
// leader ID), yielding connected patches of diameter at most 2D in which
// any two leaders are more than D apart.
func ComputePatches(g *Graph, d int, rng *rand.Rand) (*Patching, error) {
	if d < 1 {
		return nil, fmt.Errorf("graph: patch radius %d must be >= 1", d)
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("graph: cannot patch the empty graph")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("graph: cannot patch a disconnected graph")
	}
	leaders := g.Power(d).MIS(rng)
	sort.Ints(leaders)
	p := &Patching{
		D:       d,
		Leaders: leaders,
		PatchOf: make([]int, g.N()),
		Parent:  make([]int, g.N()),
		Depth:   make([]int, g.N()),
	}
	for i := range p.PatchOf {
		p.PatchOf[i] = -1
		p.Parent[i] = -1
		p.Depth[i] = -1
	}
	// Multi-source BFS from all leaders. A vertex adopts the patch of the
	// first wave to reach it; simultaneous waves break ties toward the
	// lowest leader ID, and the parent is the lowest-ID same-patch
	// neighbour one step closer — this mirrors the paper's "lowest ID node
	// the broadcast was received from" rule and keeps patches connected.
	type qe struct{ v, leader, depth, parent int }
	queue := make([]qe, 0, g.N())
	for _, l := range leaders {
		queue = append(queue, qe{v: l, leader: l, depth: 0, parent: -1})
	}
	for len(queue) > 0 {
		var next []qe
		// Within a BFS level, deliver claims in (leader, parent) order so
		// the lowest leader/parent wins deterministically.
		sort.Slice(queue, func(i, j int) bool {
			if queue[i].leader != queue[j].leader {
				return queue[i].leader < queue[j].leader
			}
			return queue[i].parent < queue[j].parent
		})
		for _, e := range queue {
			if p.PatchOf[e.v] != -1 {
				continue
			}
			p.PatchOf[e.v] = e.leader
			p.Parent[e.v] = e.parent
			p.Depth[e.v] = e.depth
			for _, w := range g.Neighbors(e.v) {
				if p.PatchOf[w] == -1 {
					next = append(next, qe{v: w, leader: e.leader, depth: e.depth + 1, parent: e.v})
				}
			}
		}
		queue = next
	}
	return p, nil
}

// Members returns the vertices of the patch led by leader, in increasing
// order.
func (p *Patching) Members(leader int) []int {
	var out []int
	for v, l := range p.PatchOf {
		if l == leader {
			out = append(out, v)
		}
	}
	return out
}

// Children returns each vertex's tree children, indexed by vertex.
func (p *Patching) Children() [][]int {
	ch := make([][]int, len(p.Parent))
	for v, par := range p.Parent {
		if par >= 0 {
			ch[par] = append(ch[par], v)
		}
	}
	return ch
}

// MaxDepth returns the deepest tree depth over all patches.
func (p *Patching) MaxDepth() int {
	m := 0
	for _, d := range p.Depth {
		if d > m {
			m = d
		}
	}
	return m
}

// Validate checks the structural invariants Section 8.1 promises:
// every vertex is assigned, depths are at most D, parents stay within the
// patch, and distinct leaders are more than D apart in g.
func (p *Patching) Validate(g *Graph) error {
	for v, l := range p.PatchOf {
		if l < 0 {
			return fmt.Errorf("graph: vertex %d unassigned", v)
		}
		if p.Depth[v] > p.D {
			return fmt.Errorf("graph: vertex %d at depth %d > D=%d", v, p.Depth[v], p.D)
		}
		if par := p.Parent[v]; par >= 0 {
			if p.PatchOf[par] != l {
				return fmt.Errorf("graph: vertex %d parent %d is in another patch", v, par)
			}
			if !g.HasEdge(v, par) {
				return fmt.Errorf("graph: vertex %d parent %d not adjacent", v, par)
			}
			if p.Depth[par] != p.Depth[v]-1 {
				return fmt.Errorf("graph: vertex %d depth %d but parent depth %d", v, p.Depth[v], p.Depth[par])
			}
		} else if v != l {
			return fmt.Errorf("graph: non-leader %d has no parent", v)
		}
	}
	for i, a := range p.Leaders {
		dist := g.BFS(a)
		for _, b := range p.Leaders[i+1:] {
			if dist[b] <= p.D {
				return fmt.Errorf("graph: leaders %d and %d at distance %d <= D=%d", a, b, dist[b], p.D)
			}
		}
	}
	return nil
}

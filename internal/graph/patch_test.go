package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputePatchesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Path(20)
	p, err := ComputePatches(g, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(p.Leaders) == 0 {
		t.Fatal("no leaders")
	}
	// On a path with D=3, leaders are > 3 apart, so at most ceil(20/4)=5.
	if len(p.Leaders) > 5 {
		t.Errorf("too many leaders: %d", len(p.Leaders))
	}
}

// TestComputePatchesInvariants property-tests the Section 8.1 guarantees
// on random connected graphs: connectivity of patches, diameter <= 2D,
// and patch size >= D/2 when n is large enough.
func TestComputePatchesInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		g := RandomConnected(n, rng.Intn(n), rng)
		p, err := ComputePatches(g, d, rng)
		if err != nil {
			return false
		}
		if err := p.Validate(g); err != nil {
			return false
		}
		for _, l := range p.Leaders {
			members := p.Members(l)
			// Size bound: every vertex within distance D/2 of a leader
			// joins its patch (property 3 in Section 8.1). In a connected
			// graph with n > D/2 the ball has >= D/2 vertices.
			if len(members) < d/2 {
				return false
			}
			if !patchConnected(g, members) {
				return false
			}
			// Depth bound implies diameter <= 2D via the leader.
			for _, v := range members {
				if p.Depth[v] > d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func patchConnected(g *Graph, members []int) bool {
	if len(members) == 0 {
		return false
	}
	in := make(map[int]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	seen := map[int]bool{members[0]: true}
	queue := []int{members[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if in[w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(seen) == len(members)
}

func TestComputePatchesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := ComputePatches(Path(5), 0, rng); err == nil {
		t.Error("D=0 should fail")
	}
	if _, err := ComputePatches(New(0), 1, rng); err == nil {
		t.Error("empty graph should fail")
	}
	disc := New(4)
	disc.AddEdge(0, 1)
	if _, err := ComputePatches(disc, 1, rng); err == nil {
		t.Error("disconnected graph should fail")
	}
}

func TestPatchingChildrenAndDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Path(10)
	p, err := ComputePatches(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	ch := p.Children()
	// Every child relationship must mirror Parent.
	for v, par := range p.Parent {
		if par < 0 {
			continue
		}
		found := false
		for _, c := range ch[par] {
			if c == v {
				found = true
			}
		}
		if !found {
			t.Errorf("vertex %d missing from children of %d", v, par)
		}
	}
	if p.MaxDepth() > 2 {
		t.Errorf("max depth %d > D", p.MaxDepth())
	}
}

func TestPatchingSingleVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := ComputePatches(New(1), 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Leaders) != 1 || p.Leaders[0] != 0 || p.Depth[0] != 0 {
		t.Errorf("unexpected patching of K_1: %+v", p)
	}
}

package hostile

import (
	"math/rand"
	"sort"

	"repro/internal/dynnet"
	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Adaptive is the paper-shaped adaptive adversary for the asynchronous
// runtimes: each round it reads every node's decoding progress from the
// telemetry rank scoreboard (Recorder.LiveRank) and serves the
// connectivity-preserving worst case — a path over the nodes sorted by
// rank. Neighbours then have near-identical knowledge, so innovation
// can only trickle across the rank boundary one edge per round,
// generalizing adversary.IsolateInformed from an informed/uninformed
// bipartition to the full rank order. Ties are shuffled with the
// adversary's own seeded RNG; ids the recorder has not seen (or has
// seen crash/leave) are chained onto the tail, keeping the served graph
// connected over the whole id space without ever placing a dead node as
// a cut vertex between live ones.
//
// The recorder is the adversary's only window into the run, so runs
// that face an Adaptive must record telemetry (Config.Telemetry);
// without events the scoreboard is empty and the adversary degrades to
// a fixed id-order path.
type Adaptive struct {
	n      int
	rng    *rand.Rand
	rec    *telemetry.Recorder
	g      *graph.Graph
	ranked []rankedID // scratch: snapshot of the live scoreboard
	idle   []int      // scratch: unseen/dead ids
	order  []int      // scratch: the round's final path order
}

type rankedID struct {
	id   int
	rank int64
}

var _ dynnet.Adversary = (*Adaptive)(nil)

// NewAdaptive returns the rank-path adversary over an id space of n,
// reading rec's scoreboard each round. rec must not be nil.
func NewAdaptive(n int, seed int64, rec *telemetry.Recorder) *Adaptive {
	if rec == nil {
		panic("hostile: Adaptive needs a telemetry recorder")
	}
	return &Adaptive{n: n, rng: rand.New(rand.NewSource(seed)), rec: rec, g: graph.New(n)}
}

// Graph serves the round's rank-sorted path, valid until the next call.
func (a *Adaptive) Graph(int, []dynnet.Node) *graph.Graph {
	a.ranked, a.idle = a.ranked[:0], a.idle[:0]
	for id := 0; id < a.n; id++ {
		// Snapshot the atomics before sorting: a comparator that re-read
		// them mid-sort could observe an inconsistent order.
		if rank, ok := a.rec.LiveRank(id); ok {
			a.ranked = append(a.ranked, rankedID{id: id, rank: rank})
		} else {
			a.idle = append(a.idle, id)
		}
	}
	sort.Slice(a.ranked, func(i, j int) bool {
		if a.ranked[i].rank != a.ranked[j].rank {
			return a.ranked[i].rank < a.ranked[j].rank
		}
		return a.ranked[i].id < a.ranked[j].id
	})
	// Shuffle within equal-rank runs so the path is not exploitable as
	// stable, while staying a pure function of the seed and the
	// scoreboard history.
	for lo := 0; lo < len(a.ranked); {
		hi := lo + 1
		for hi < len(a.ranked) && a.ranked[hi].rank == a.ranked[lo].rank {
			hi++
		}
		a.rng.Shuffle(hi-lo, func(i, j int) {
			a.ranked[lo+i], a.ranked[lo+j] = a.ranked[lo+j], a.ranked[lo+i]
		})
		lo = hi
	}
	a.order = a.order[:0]
	for _, r := range a.ranked {
		a.order = append(a.order, r.id)
	}
	a.order = append(a.order, a.idle...)
	a.g.Reset(a.n)
	for i := 0; i+1 < len(a.order); i++ {
		a.g.AddEdge(a.order[i], a.order[i+1])
	}
	return a.g
}

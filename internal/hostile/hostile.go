// Package hostile is the seeded fault-injection layer for the
// asynchronous runtimes: it lifts the synchronous engine's topology
// adversaries (internal/adversary) into cluster.Transport middleware,
// adds an adaptive adversary that reads the telemetry rank scoreboard,
// replays recorded mobility traces, and mutates packets in flight
// (duplication, stale-epoch replay, truncation, bit flips,
// cross-generation reordering). Every layer draws from its own seeded
// RNG, so under the lockstep drivers a hostile run is — like churn and
// loss — a pure function of the run seed.
//
// The layers compose with the existing middlewares (WithLoss,
// WithReorder, WithDelay, WithPartition) but must sit ABOVE them in the
// stack (closer to the sender): both WithAdversary and WithMutator run
// on the sender's goroutine and attribute their telemetry events to the
// sender's ring, which WithDelay's timer goroutines would break. The
// cliutil stacking helpers preserve this order.
//
// Clock: the lockstep drivers push their tick into the stack via
// cluster.TickObserver. The async and multi-process runtimes instead
// set TopoConfig.Interval, and the layer derives the tick from wall
// time — identically-seeded processes then see approximately the same
// topology schedule, exactly as churn events map to At×Interval wall
// offsets.
package hostile

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dynnet"
	"repro/internal/graph"
	"repro/internal/telemetry"
)

// TopoConfig tunes the WithAdversary middleware.
type TopoConfig struct {
	// Interval, when positive, derives the adversary's round clock from
	// wall time (elapsed / Interval) — the async and udpnet runtimes'
	// mode. Zero means the clock advances only via ObserveTick (the
	// lockstep drivers).
	Interval time.Duration
	// Telemetry, when non-nil, traces every blocked Send as a
	// KindAdvCut event on the sender's ring.
	Telemetry *telemetry.Recorder
}

// advTransport filters Sends through a per-tick adversary topology.
type advTransport struct {
	cluster.Transport
	adv dynnet.Adversary
	cfg TopoConfig

	mu      sync.Mutex
	tick    int64
	cur     *graph.Graph // the tick's topology, valid until the next query
	curTick int64        // tick the cached graph was computed for (-1 = none)
	start   time.Time
}

// WithAdversary decorates t so a Send is dropped unless the adversary's
// topology for the current tick has the (from, to) edge: the
// synchronous model's "the adversary chooses each round's graph",
// replayed against the asynchronous runtimes. The adversary is queried
// once per tick (its returned graph is held for the tick, compatible
// with scratch-reusing adversaries like RandomConnected); ids outside
// the graph's vertex range are always blocked. A nil adversary returns
// t unchanged.
func WithAdversary(t cluster.Transport, adv dynnet.Adversary, cfg TopoConfig) cluster.Transport {
	if adv == nil {
		return t
	}
	return &advTransport{Transport: t, adv: adv, cfg: cfg, curTick: -1, start: time.Now()}
}

// ObserveTick implements cluster.TickObserver: the lockstep drivers'
// clock. Forwarded down the stack so lower tick-aware layers advance
// too.
func (a *advTransport) ObserveTick(tick int64) {
	a.mu.Lock()
	if tick > a.tick {
		a.tick = tick
	}
	a.mu.Unlock()
	cluster.ObserveTick(a.Transport, tick)
}

// edgeUp consults (and lazily recomputes) the tick's topology. Callers
// hold a.mu.
func (a *advTransport) edgeUp(from, to int) bool {
	if a.cfg.Interval > 0 {
		if t := int64(time.Since(a.start) / a.cfg.Interval); t > a.tick {
			a.tick = t
		}
	}
	if a.cur == nil || a.curTick != a.tick {
		// Query exactly once per tick and hold the result for the whole
		// tick: scratch-reusing adversaries (RandomConnected) invalidate
		// their previous graph on every Graph call.
		a.cur = a.adv.Graph(int(a.tick), nil)
		a.curTick = a.tick
	}
	g := a.cur
	n := g.N()
	if from < 0 || from >= n || to < 0 || to >= n {
		return false
	}
	return g.HasEdge(from, to)
}

func (a *advTransport) Send(from, to int, pkt []byte) bool {
	a.mu.Lock()
	up := a.edgeUp(from, to)
	tick := a.tick
	a.mu.Unlock()
	if !up {
		a.cfg.Telemetry.Event(from, tick, telemetry.KindAdvCut, int64(to), 0, 0)
		return false
	}
	return a.Transport.Send(from, to, pkt)
}

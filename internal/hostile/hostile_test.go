package hostile_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dynnet"
	"repro/internal/graph"
	"repro/internal/hostile"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// --- mutation spec grammar -------------------------------------------------

func TestParseMutationsRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want hostile.MutationSpec
	}{
		{"", hostile.MutationSpec{}},
		{"dup:0.05", hostile.MutationSpec{Dup: 0.05}},
		{"dup:0.05,stale:0.1,trunc:0.02,flip:0.01,xgen:0.03",
			hostile.MutationSpec{Dup: 0.05, Stale: 0.1, Trunc: 0.02, Flip: 0.01, Xgen: 0.03}},
		{"all:0.1", hostile.MutationSpec{Dup: 0.1, Stale: 0.1, Trunc: 0.1, Flip: 0.1, Xgen: 0.1}},
		{" stale:0.2 , xgen:0.4 ", hostile.MutationSpec{Stale: 0.2, Xgen: 0.4}},
	}
	for _, tc := range cases {
		got, err := hostile.ParseMutations(tc.in)
		if err != nil {
			t.Errorf("ParseMutations(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMutations(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// The String render must re-parse to the same spec.
		again, err := hostile.ParseMutations(got.String())
		if err != nil || again != got {
			t.Errorf("round trip of %q via %q = %+v, %v", tc.in, got.String(), again, err)
		}
	}
}

func TestParseMutationsErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"melt:0.1", "unknown op"},
		{"dup", "want op:rate"},
		{"dup:0.1:0.2", "want op:rate"},
		{"dup:1.0", "rate must be in [0,1)"},
		{"dup:-0.1", "rate must be in [0,1)"},
		{"dup:zero", "rate must be in [0,1)"},
	}
	for _, tc := range cases {
		_, err := hostile.ParseMutations(tc.in)
		if err == nil {
			t.Errorf("ParseMutations(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseMutations(%q) error %q does not contain %q", tc.in, err, tc.want)
		}
	}
	// The unknown-op error must name every valid op, or the flag is
	// undiscoverable from the CLI.
	_, err := hostile.ParseMutations("melt:0.1")
	for _, op := range hostile.Ops() {
		if !strings.Contains(err.Error(), op.String()) {
			t.Errorf("unknown-op error %q does not list valid op %q", err, op)
		}
	}
}

// --- mutation byte recipes -------------------------------------------------

// validPacket marshals a real protocol packet with a nonzero epoch.
func validPacket(t *testing.T) []byte {
	t.Helper()
	return wire.NewHello(3, 7, wire.Hello{Peers: []uint32{1, 2}}).Marshal()
}

func TestMutateTruncAlwaysShorter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pkt := validPacket(t)
	for i := 0; i < 200; i++ {
		out := hostile.Mutate(hostile.OpTrunc, append([]byte(nil), pkt...), rng)
		if len(out) >= len(pkt) {
			t.Fatalf("trunc produced %d bytes from %d", len(out), len(pkt))
		}
	}
}

func TestMutateStaleRegressesEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pkt := validPacket(t)
	orig, err := wire.Unmarshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		out := hostile.Mutate(hostile.OpStale, pkt, rng)
		got, err := wire.Unmarshal(out)
		if err != nil {
			t.Fatalf("stale packet no longer parses: %v", err)
		}
		if got.Env.Epoch >= orig.Env.Epoch {
			t.Fatalf("stale epoch %d not below original %d", got.Env.Epoch, orig.Env.Epoch)
		}
	}
}

// TestMutateFlipAlwaysRejected pins the no-checksum compensation: a
// bit-flipped packet must never parse, whatever bits the seeded rng
// picks — the wire format cannot detect a flip that lands in payload
// bytes, so the mutator re-corrupts the version byte when needed.
func TestMutateFlipAlwaysRejected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			out := hostile.Mutate(hostile.OpFlip, validPacket(t), rng)
			if _, err := wire.Unmarshal(out); err == nil {
				t.Fatalf("flipped packet parsed (seed %d, iter %d)", seed, i)
			}
		}
	}
}

func TestMutateDupXgenAreByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pkt := validPacket(t)
	for _, op := range []hostile.Op{hostile.OpDup, hostile.OpXgen} {
		out := hostile.Mutate(op, pkt, rng)
		if &out[0] != &pkt[0] || len(out) != len(pkt) {
			t.Errorf("%v is not byte-identity at the recipe layer", op)
		}
	}
}

// --- mutator transport -----------------------------------------------------

// sendRec is one captured Send.
type sendRec struct {
	from, to int
	pkt      []byte
}

// capTransport records every Send (copying the bytes, like a real
// consumer) and accepts all of them.
type capTransport struct{ sends []sendRec }

func (c *capTransport) Send(from, to int, pkt []byte) bool {
	c.sends = append(c.sends, sendRec{from, to, append([]byte(nil), pkt...)})
	return true
}
func (c *capTransport) Recv(int) <-chan []byte { return nil }
func (c *capTransport) Close()                 {}

func TestWithMutatorDisabledIsIdentity(t *testing.T) {
	inner := &capTransport{}
	if got := hostile.WithMutator(inner, hostile.MutationSpec{}, 1, nil); got != cluster.Transport(inner) {
		t.Fatal("disabled mutator wrapped the transport")
	}
}

// TestWithMutatorStaleReplaysHistory pins the replay semantics: every
// extra packet a stale-only mutator emits is byte-identical to some
// packet previously offered to Send — never a forged epoch, which
// would poison generation spans undetectably (no integrity tag).
func TestWithMutatorStaleReplaysHistory(t *testing.T) {
	inner := &capTransport{}
	rec := telemetry.New(telemetry.Config{Nodes: 4})
	tr := hostile.WithMutator(inner, hostile.MutationSpec{Stale: 0.5}, 42, rec)
	sent := map[string]bool{}
	for i := 0; i < 200; i++ {
		pkt := wire.NewHello(i%4, i+1, wire.Hello{}).Marshal()
		sent[string(pkt)] = true
		tr.Send(i%4, (i+1)%4, pkt)
	}
	if len(inner.sends) <= 200 {
		t.Fatalf("stale mutator at rate 0.5 added no replays in 200 sends (%d reached the wire)", len(inner.sends))
	}
	for _, s := range inner.sends {
		if !sent[string(s.pkt)] {
			t.Fatalf("wire carried a packet that was never sent: % x", s.pkt)
		}
	}
	if rec.Counters()["events_mutate"] == 0 {
		t.Error("no KindMutate telemetry recorded")
	}
}

func TestWithMutatorDupSendsIdenticalExtra(t *testing.T) {
	inner := &capTransport{}
	tr := hostile.WithMutator(inner, hostile.MutationSpec{Dup: 1 - 1e-9}, 7, nil)
	pkt := validPacket(t)
	tr.Send(0, 1, append([]byte(nil), pkt...))
	if len(inner.sends) != 2 {
		t.Fatalf("dup at rate ~1 produced %d sends, want 2", len(inner.sends))
	}
	if string(inner.sends[0].pkt) != string(pkt) || string(inner.sends[1].pkt) != string(pkt) {
		t.Fatal("dup copies differ from the original")
	}
}

func TestWithMutatorXgenHoldsBackOneSlot(t *testing.T) {
	inner := &capTransport{}
	tr := hostile.WithMutator(inner, hostile.MutationSpec{Xgen: 1 - 1e-9}, 7, nil)
	a, b := wire.NewHello(0, 1, wire.Hello{}).Marshal(), wire.NewHello(0, 2, wire.Hello{}).Marshal()
	if !tr.Send(0, 1, a) {
		t.Fatal("parked send reported false")
	}
	if len(inner.sends) != 0 {
		t.Fatalf("first xgen send reached the wire immediately (%d sends)", len(inner.sends))
	}
	tr.Send(0, 1, b)
	if len(inner.sends) != 1 || string(inner.sends[0].pkt) != string(a) {
		t.Fatalf("second send did not release the first parked packet (%d sends)", len(inner.sends))
	}
}

// --- adversary transport ---------------------------------------------------

// pathAdversary serves a fixed path 0-1-...-n-1 every round, recording
// how many distinct rounds were queried.
type pathAdversary struct {
	g       *graph.Graph
	queries int
}

func newPathAdversary(n int) *pathAdversary {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return &pathAdversary{g: g}
}

func (p *pathAdversary) Graph(round int, _ []dynnet.Node) *graph.Graph {
	p.queries++
	return p.g
}

func TestWithAdversaryNilIsIdentity(t *testing.T) {
	inner := &capTransport{}
	if got := hostile.WithAdversary(inner, nil, hostile.TopoConfig{}); got != cluster.Transport(inner) {
		t.Fatal("nil adversary wrapped the transport")
	}
}

func TestWithAdversaryFiltersEdges(t *testing.T) {
	inner := &capTransport{}
	rec := telemetry.New(telemetry.Config{Nodes: 4})
	tr := hostile.WithAdversary(inner, newPathAdversary(4), hostile.TopoConfig{Telemetry: rec})
	if !tr.Send(0, 1, validPacket(t)) {
		t.Error("path edge 0-1 blocked")
	}
	if tr.Send(0, 2, validPacket(t)) {
		t.Error("non-edge 0-2 allowed")
	}
	if tr.Send(0, 3, validPacket(t)) {
		t.Error("non-edge 0-3 allowed")
	}
	if len(inner.sends) != 1 {
		t.Fatalf("%d sends reached the wire, want 1", len(inner.sends))
	}
	cuts := 0
	for _, ev := range rec.Events(0) {
		if ev.Kind == telemetry.KindAdvCut {
			cuts++
		}
	}
	if cuts != 2 {
		t.Errorf("recorded %d adv_cut events, want 2", cuts)
	}
}

// TestWithAdversaryQueriesOncePerTick pins the scratch-reuse contract:
// however many Sends land in a tick, the adversary's Graph method runs
// exactly once per distinct tick, so adversaries that rebuild (and
// draw rng) per call stay deterministic.
func TestWithAdversaryQueriesOncePerTick(t *testing.T) {
	inner := &capTransport{}
	adv := newPathAdversary(4)
	tr := hostile.WithAdversary(inner, adv, hostile.TopoConfig{})
	cluster.ObserveTick(tr, 0)
	for i := 0; i < 10; i++ {
		tr.Send(0, 1, validPacket(t))
	}
	if adv.queries != 1 {
		t.Fatalf("adversary queried %d times in one tick, want 1", adv.queries)
	}
	cluster.ObserveTick(tr, 1)
	tr.Send(1, 2, validPacket(t))
	if adv.queries != 2 {
		t.Fatalf("adversary queried %d times across two ticks, want 2", adv.queries)
	}
}

// --- adaptive adversary ----------------------------------------------------

// TestAdaptiveServesRankSortedPath feeds a scoreboard by hand and
// checks the served topology is a connected path whose interior edges
// join rank-neighbours, with dead and unseen nodes chained at the tail.
func TestAdaptiveServesRankSortedPath(t *testing.T) {
	const n = 6
	rec := telemetry.New(telemetry.Config{Nodes: n})
	// Ranks: node 0 -> 5, node 1 -> 2, node 2 -> 9, node 3 crashed,
	// node 4 unseen, node 5 -> 2.
	rec.Event(0, 1, telemetry.KindInsert, 0, 5, 1)
	rec.Event(1, 1, telemetry.KindInsert, 0, 2, 1)
	rec.Event(2, 1, telemetry.KindInsert, 0, 9, 1)
	rec.Event(3, 1, telemetry.KindInsert, 0, 7, 1)
	rec.Event(3, 2, telemetry.KindCrash, 0, 0, 0)
	rec.Event(5, 1, telemetry.KindInsert, 0, 2, 1)
	adv := hostile.NewAdaptive(n, 1, rec)
	g := adv.Graph(0, nil)
	if !g.IsConnected() {
		t.Fatal("adaptive graph not connected")
	}
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > 2 {
			t.Fatalf("node %d has degree %d in a path", u, d)
		}
	}
	if g.M() != n-1 {
		t.Fatalf("adaptive graph has %d edges, want %d (a path)", g.M(), n-1)
	}
	// Node 2 (highest live rank 9) borders the idle tail {3, 4}: the
	// path is ranked-ascending then idle, so 2 must touch an idle node.
	if !g.HasEdge(2, 3) && !g.HasEdge(2, 4) {
		t.Error("highest-rank node does not border the idle tail")
	}
	// The two rank-2 nodes (1 and 5) must be adjacent in the sorted
	// path (the shuffle permutes within the tie, not across it).
	if !g.HasEdge(1, 5) {
		t.Error("equal-rank nodes 1 and 5 not adjacent in the rank path")
	}
}

func TestAdaptiveDeterministicPerSeed(t *testing.T) {
	const n = 8
	build := func(seed int64) [][2]int {
		rec := telemetry.New(telemetry.Config{Nodes: n})
		for id := 0; id < n; id++ {
			rec.Event(id, 1, telemetry.KindInsert, 0, int64(id%3), 1)
		}
		adv := hostile.NewAdaptive(n, seed, rec)
		var edges [][2]int
		for round := 0; round < 5; round++ {
			edges = append(edges, adv.Graph(round, nil).Edges()...)
		}
		return edges
	}
	a, b := build(11), build(11)
	if len(a) != len(b) {
		t.Fatalf("same seed, different edge counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different edge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// --- trace adversary -------------------------------------------------------

func TestParseTraceAndReplay(t *testing.T) {
	trace := `# mobility trace
5 0 1 down

10 1 2 down
10 0 1 up
`
	ta, err := hostile.ParseTrace(strings.NewReader(trace), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Events() != 3 {
		t.Fatalf("parsed %d events, want 3", ta.Events())
	}
	if g := ta.Graph(0, nil); !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Error("round 0 should be the complete graph")
	}
	if g := ta.Graph(5, nil); g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("round 5 should have 0-1 down only")
	}
	if g := ta.Graph(10, nil); !g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Error("round 10 should have 0-1 back up and 1-2 down")
	}
	// Backward query replays from the start.
	if g := ta.Graph(6, nil); g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("backward query to round 6 did not reset the replay")
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"5 0 1", "want \"tick src dst up|down\""},
		{"x 0 1 up", "non-numeric"},
		{"-1 0 1 up", "must be non-negative"},
		{"5 0 3 up", "node ids must be in"},
		{"5 1 1 up", "self edge"},
		{"5 0 1 sideways", "state must be up or down"},
	}
	for _, tc := range cases {
		if _, err := hostile.ParseTrace(strings.NewReader(tc.in), 3); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseTrace(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
}

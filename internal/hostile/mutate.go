package hostile

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Op identifies one hostile-packet mutation. The codes are stable:
// they appear as telemetry KindMutate.B values and as the fuzz
// corpus's op selector.
type Op int

const (
	// OpDup sends an extra byte-identical copy before the original —
	// the network delivering one datagram twice.
	OpDup Op = iota
	// OpStale replays an earlier packet from a bounded seeded history —
	// a datagram whose epoch has since gone stale, which the stream
	// layer must account as Stale (retired generation) or absorb as
	// non-innovative rather than re-deliver. The transport replays
	// genuine history instead of forging the epoch field in place: the
	// wire format carries no integrity tag binding payload to epoch, so
	// a forged epoch would be absorbed into the wrong generation's span
	// and silently poison RLNC decoding — an attack the protocol cannot
	// detect, documented in DESIGN.md. (The fuzz-facing Mutate primitive
	// still rewrites the epoch bytes: the datagram layer must survive
	// arbitrary epochs.)
	OpStale
	// OpTrunc truncates the packet to a random shorter prefix; the
	// canonical decoder must reject it into exactly one drop bucket.
	OpTrunc
	// OpFlip flips 1–3 random bits. Because the wire format carries no
	// integrity checksum, a flip that still parses would silently
	// poison RLNC decoding or corrupt ack watermarks — so after
	// flipping, the mutator re-parses the bytes and, if they still
	// decode, additionally corrupts the version byte to guarantee
	// rejection. The honest lesson (a checksum would catch what the
	// envelope cannot) is documented in DESIGN.md.
	OpFlip
	// OpXgen reorders across generations with a one-slot hold-back: a
	// selected packet is parked and released only when the next
	// selected packet replaces it, so packets of later epochs overtake
	// it (cf. cluster.WithReorder, which reorders without epoch gaps).
	OpXgen

	numOps
)

var opNames = [numOps]string{"dup", "stale", "trunc", "flip", "xgen"}

// String returns the op's spec-grammar name.
func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// MutationSpec sets the per-Send application rate of each mutation.
// Ops are evaluated in code order (dup, stale, trunc, flip, xgen) and
// at most one fires per Send, so a later op's effective rate is scaled
// by the earlier ops' complements.
type MutationSpec struct {
	Dup, Stale, Trunc, Flip, Xgen float64
}

// rates returns the spec in canonical op order.
func (s MutationSpec) rates() [numOps]float64 {
	return [numOps]float64{s.Dup, s.Stale, s.Trunc, s.Flip, s.Xgen}
}

// Enabled reports whether any mutation has a positive rate.
func (s MutationSpec) Enabled() bool {
	for _, r := range s.rates() {
		if r > 0 {
			return true
		}
	}
	return false
}

// Validate rejects rates outside [0,1).
func (s MutationSpec) Validate() error {
	for op, r := range s.rates() {
		if r < 0 || r >= 1 {
			return fmt.Errorf("hostile: %s rate must be in [0,1), got %g", Op(op), r)
		}
	}
	return nil
}

// String renders the spec in the ParseMutations grammar (only the
// positive rates, in canonical op order); empty for the zero spec.
func (s MutationSpec) String() string {
	var parts []string
	for op, r := range s.rates() {
		if r > 0 {
			parts = append(parts, fmt.Sprintf("%s:%g", Op(op), r))
		}
	}
	return strings.Join(parts, ",")
}

// ParseMutations parses the -mutate grammar: a comma-separated list of
// op:rate pairs, e.g. "dup:0.05,stale:0.1,trunc:0.02". Ops are dup,
// stale, trunc, flip and xgen; the shorthand "all:rate" sets every op
// at once. An empty string is the zero (disabled) spec.
func ParseMutations(spec string) (MutationSpec, error) {
	var s MutationSpec
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 2 {
			return s, fmt.Errorf("hostile: mutation %q: want op:rate", part)
		}
		rate, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || rate < 0 || rate >= 1 {
			return s, fmt.Errorf("hostile: mutation %q: rate must be in [0,1)", part)
		}
		switch fields[0] {
		case "dup":
			s.Dup = rate
		case "stale":
			s.Stale = rate
		case "trunc":
			s.Trunc = rate
		case "flip":
			s.Flip = rate
		case "xgen":
			s.Xgen = rate
		case "all":
			s = MutationSpec{Dup: rate, Stale: rate, Trunc: rate, Flip: rate, Xgen: rate}
		default:
			return s, fmt.Errorf("hostile: mutation %q: unknown op %q (want dup|stale|trunc|flip|xgen|all)", part, fields[0])
		}
	}
	return s, nil
}

// Mutate applies op to pkt using draws from rng and returns the bytes
// to put on the wire: pkt itself (possibly bit-flipped in place), a
// shorter prefix of it (OpTrunc), or a fresh copy with a regressed
// envelope epoch (OpStale — the decoder-facing byte recipe; the
// transport's OpStale replays genuine history instead, see the op
// docs). OpDup and OpXgen are byte-identity here — their effect (an
// extra send, a reordered send) lives in the transport layer — so the
// fuzz targets exercising decoder survival share the byte recipes
// WithMutator puts on the wire.
func Mutate(op Op, pkt []byte, rng *rand.Rand) []byte {
	switch op {
	case OpStale:
		if cp := mutateStale(pkt, rng); cp != nil {
			return cp
		}
		return pkt
	case OpTrunc:
		return mutateTrunc(pkt, rng)
	case OpFlip:
		var scratch wire.Packet
		return mutateFlip(pkt, &scratch, rng)
	default:
		return pkt
	}
}

// mutateStale clones pkt with its envelope epoch rewritten to a
// strictly earlier value, or returns nil when the packet has no epoch
// to regress (short header or epoch zero).
func mutateStale(pkt []byte, rng *rand.Rand) []byte {
	if len(pkt) < wire.HeaderBytes {
		return nil
	}
	epoch := binary.LittleEndian.Uint32(pkt[6:10])
	if epoch == 0 {
		return nil
	}
	cp := append([]byte(nil), pkt...)
	binary.LittleEndian.PutUint32(cp[6:10], uint32(rng.Int63n(int64(epoch))))
	return cp
}

// mutateTrunc returns a random strictly-shorter prefix of pkt.
func mutateTrunc(pkt []byte, rng *rand.Rand) []byte {
	if len(pkt) == 0 {
		return pkt
	}
	return pkt[:rng.Intn(len(pkt))]
}

// mutateFlip flips 1–3 random bits of pkt in place, then guarantees
// the result is rejected by the canonical decoder: the wire format has
// no integrity checksum, so a flip that still parses would silently
// corrupt protocol state (poisoned RLNC decode, wrong watermarks)
// instead of exercising the drop accounting. If the flipped bytes
// still unmarshal, the version byte is corrupted too.
func mutateFlip(pkt []byte, scratch *wire.Packet, rng *rand.Rand) []byte {
	if len(pkt) == 0 {
		return pkt
	}
	for i, flips := 0, 1+rng.Intn(3); i < flips; i++ {
		bit := rng.Intn(len(pkt) * 8)
		pkt[bit/8] ^= 1 << uint(bit%8)
	}
	if err := wire.UnmarshalInto(scratch, pkt); err == nil {
		pkt[0] ^= 0x80
	}
	return pkt
}

// mutTransport injects hostile packets on the Send path.
type mutTransport struct {
	cluster.Transport
	spec  MutationSpec
	rates [numOps]float64
	tel   *telemetry.Recorder

	mu      sync.Mutex
	rng     *rand.Rand
	tick    int64
	held    *heldSend // OpXgen's one-slot hold-back
	history [][]byte  // OpStale's replay source: seeded reservoir of past packets
	scratch wire.Packet
}

// staleHistory bounds OpStale's replay reservoir. Inserts land at a
// seeded random slot once full, so entry ages follow a geometric
// distribution: some entries stay ancient, which is what makes the
// replayed epochs genuinely stale.
const staleHistory = 32

type heldSend struct {
	from, to int
	pkt      []byte
}

// WithMutator decorates t so each Send is, with the spec's seeded
// probabilities, duplicated, replayed with a stale epoch, truncated,
// bit-flipped, or reordered across generations. Copies are fresh
// allocations (the inner transport owns what it accepts); in-place
// mutations reuse the sender's buffer, which the ring recycling does
// not mind. Like the other hostile layers it must sit above WithDelay
// so mutation draws and telemetry stay on the sender's goroutine. A
// disabled spec returns t unchanged; an invalid one panics (callers
// validate via MutationSpec.Validate / ParseMutations).
func WithMutator(t cluster.Transport, spec MutationSpec, seed int64, tel *telemetry.Recorder) cluster.Transport {
	if !spec.Enabled() {
		return t
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	mt := &mutTransport{
		Transport: t, spec: spec, rates: spec.rates(), tel: tel,
		rng: rand.New(rand.NewSource(seed)),
	}
	if spec.Stale > 0 {
		mt.history = make([][]byte, 0, staleHistory)
	}
	return mt
}

// ObserveTick implements cluster.TickObserver (the tick only stamps
// KindMutate events; mutation draws are tick-independent).
func (m *mutTransport) ObserveTick(tick int64) {
	m.mu.Lock()
	if tick > m.tick {
		m.tick = tick
	}
	m.mu.Unlock()
	cluster.ObserveTick(m.Transport, tick)
}

func (m *mutTransport) Send(from, to int, pkt []byte) bool {
	m.mu.Lock()
	op := Op(-1)
	for o, rate := range m.rates {
		if rate > 0 && m.rng.Float64() < rate {
			op = Op(o)
			break
		}
	}
	// The replay reservoir captures originals before any in-place
	// mutation, so a replayed packet is always one that was genuinely
	// on the wire.
	if m.history != nil && len(pkt) > 0 {
		cp := append([]byte(nil), pkt...)
		if len(m.history) < cap(m.history) {
			m.history = append(m.history, cp)
		} else {
			m.history[m.rng.Intn(len(m.history))] = cp
		}
	}
	var extra []byte      // an additional packet to send before the original
	var release *heldSend // a parked packet OpXgen is letting go
	parked := false
	switch op {
	case OpDup:
		extra = append([]byte(nil), pkt...)
	case OpStale:
		if len(m.history) > 0 {
			extra = append([]byte(nil), m.history[m.rng.Intn(len(m.history))]...)
		}
	case OpTrunc:
		pkt = mutateTrunc(pkt, m.rng)
	case OpFlip:
		pkt = mutateFlip(pkt, &m.scratch, m.rng)
	case OpXgen:
		release = m.held
		m.held = &heldSend{from: from, to: to, pkt: pkt}
		parked = true
	}
	tick := m.tick
	m.mu.Unlock()

	if op >= 0 {
		m.tel.Event(from, tick, telemetry.KindMutate, int64(to), int64(op), 0)
	}
	if release != nil {
		m.Transport.Send(release.from, release.to, release.pkt)
	}
	if parked {
		// Like WithReorder, a parked packet reports true optimistically:
		// its eventual fate belongs to a later delivery.
		return true
	}
	if extra != nil {
		m.Transport.Send(from, to, extra)
	}
	return m.Transport.Send(from, to, pkt)
}

// Ops returns every mutation op in canonical order — the fuzz targets
// iterate it so a new op cannot be forgotten.
func Ops() []Op {
	ops := make([]Op, 0, numOps)
	for o := Op(0); o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

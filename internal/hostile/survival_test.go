package hostile_test

// Survivability and determinism of the full fault-injection stack,
// driven through the real runtimes: the hostile layers exist to
// pressure-test the protocols, so these tests assert the protocols'
// invariants (ordered no-dup delivery, decode-verified completion)
// survive the worst the layers can legally do, and that lockstep runs
// under the full stack stay a pure function of the seed.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/cluster"
	"repro/internal/hostile"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// deliveryTracker asserts the stream consumer contract under fire:
// every node's generations arrive in strictly increasing order — no
// duplicate, no regression. Gaps are legal: a crashed node that
// restarts re-enters at the frontier it learns from watermark gossip,
// skipping generations that retired while it was down.
type deliveryTracker struct {
	mu   sync.Mutex
	next map[int]int
	errs []string
}

func newDeliveryTracker() *deliveryTracker {
	return &deliveryTracker{next: make(map[int]int)}
}

func (d *deliveryTracker) deliver(node, gen int, _ []token.Token) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if want, seen := d.next[node]; seen && gen < want {
		d.errs = append(d.errs, fmt.Sprintf("node %d delivered generation %d after %d (dup or out of order)", node, gen, want-1))
		return
	}
	d.next[node] = gen + 1
}

func (d *deliveryTracker) check(t *testing.T) {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range d.errs {
		t.Error(e)
	}
}

// streamSurvivalMutations is the satellite-3 hostile mix: stale-epoch
// replays plus duplicates and cross-generation reordering, the three
// ops that attack the retirement frontier and in-order delivery.
var streamSurvivalMutations = hostile.MutationSpec{Dup: 0.05, Stale: 0.1, Xgen: 0.05}

// TestStreamSurvivesCrashFrontierAndStaleReplay is the stream
// survivability gate: under a crashfrontier churn schedule (the churner
// beheads the node blocking the retirement frontier) and a mutator
// replaying retired-generation packets, every live node must still
// retire generations and deliver the whole stream strictly in order —
// no frontier deadlock, no duplicate delivery.
func TestStreamSurvivesCrashFrontierAndStaleReplay(t *testing.T) {
	for _, mode := range []string{"lockstep", "async"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			const n, k, gens = 8, 4, 6
			lockstep := mode == "lockstep"
			sched, err := cluster.ParseChurn("crashfrontier:25:1,restart:60:1")
			if err != nil {
				t.Fatal(err)
			}
			tracker := newDeliveryTracker()
			var tr cluster.Transport = cluster.NewChanTransport(n, 4*stream.InboxBuffer(n, 3))
			tr = cluster.WithLoss(tr, 0.1, 103)
			tr = hostile.WithMutator(tr, streamSurvivalMutations, 105, nil)
			cfg := stream.Config{
				N: n, K: k, PayloadBits: 32, Window: 3, Generations: gens, Fanout: 2,
				Seed: 5, Transport: tr, Lockstep: lockstep, MaxTicks: 200000,
				Interval: 200 * time.Microsecond, Timeout: 30 * time.Second,
				Churn: sched, Deliver: tracker.deliver,
			}
			res, err := stream.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("stream incomplete under crashfrontier + stale replay (%s)", mode)
			}
			tracker.check(t)
			var stale int64
			for _, m := range res.Nodes {
				stale += m.Stale
			}
			if stale == 0 {
				t.Error("no packet accounted Stale: the replay injection exercised nothing")
			}
		})
	}
}

// TestClusterSurvivesRotatingPathAdversary is the cluster
// survivability gate: dissemination over a topology the rotating-path
// adversary re-wires every tick must still complete, with cluster.Run's
// built-in decode verification passing on every live node.
func TestClusterSurvivesRotatingPathAdversary(t *testing.T) {
	const n, k = 10, 8
	toks := token.RandomSet(k, 32, rand.New(rand.NewSource(9)))
	var tr cluster.Transport = cluster.NewChanTransport(n, cluster.InboxBuffer(n, 3))
	tr = hostile.WithAdversary(tr, adversary.NewRotatingPath(n, 9), hostile.TopoConfig{})
	res, err := cluster.Run(context.Background(), cluster.Config{
		N: n, Fanout: 2, Mode: cluster.Coded, Seed: 9, Transport: tr,
		Lockstep: true, MaxTicks: 200000,
	}, toks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("cluster incomplete under rotating-path adversary after %d ticks", res.Ticks)
	}
}

// hostileClusterFingerprint runs the full stack — loss, every mutation
// op, the adaptive adversary, targeted churn — under the lockstep
// driver at the given shard count and fingerprints everything
// observable.
func hostileClusterFingerprint(t *testing.T, seed int64, shards int) string {
	t.Helper()
	const n, k = 10, 8
	sched, err := cluster.ParseChurn("crashmax:30:1,restart:70:1")
	if err != nil {
		t.Fatal(err)
	}
	toks := token.RandomSet(k, 32, rand.New(rand.NewSource(seed)))
	rec := telemetry.New(telemetry.Config{Nodes: n})
	var tr cluster.Transport = cluster.NewChanTransport(n, cluster.InboxBuffer(n, 3))
	tr = cluster.WithLoss(tr, 0.1, seed+103)
	tr = hostile.WithMutator(tr, hostile.MutationSpec{Dup: 0.05, Stale: 0.05, Trunc: 0.03, Flip: 0.02, Xgen: 0.03}, seed+105, rec)
	tr = hostile.WithAdversary(tr, hostile.NewAdaptive(n, seed+104, rec), hostile.TopoConfig{Telemetry: rec})
	res, err := cluster.Run(context.Background(), cluster.Config{
		N: n, Fanout: 2, Mode: cluster.Coded, Seed: seed, Transport: tr,
		Lockstep: true, Shards: shards, MaxTicks: 200000, Churn: sched, Telemetry: rec,
	}, toks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("hostile cluster run incomplete (seed %d)", seed)
	}
	c := rec.Counters()
	if c["events_adv_cut"] == 0 || c["events_mutate"] == 0 {
		t.Fatalf("hostile layers recorded no telemetry (adv_cut %d, mutate %d, seed %d)",
			c["events_adv_cut"], c["events_mutate"], seed)
	}
	return fmt.Sprintf("ticks=%d out=%d in=%d dropped=%d bits=%d cuts=%d mutates=%d",
		res.Ticks, res.PacketsOut, res.PacketsIn, res.Dropped, res.BitsOut,
		c["events_adv_cut"], c["events_mutate"])
}

// TestHostileLockstepBitReproducible is the determinism gate from the
// issue: with every fault layer engaged, a lockstep run is a pure
// function of the seed — same ticks, same packet counts, same cut and
// mutation tallies — checked at two different seeds, which must also
// disagree with each other (the layers actually draw from the seed).
func TestHostileLockstepBitReproducible(t *testing.T) {
	seeds := []int64{3, 17}
	prints := make(map[int64]string)
	for _, seed := range seeds {
		first := hostileClusterFingerprint(t, seed, 1)
		second := hostileClusterFingerprint(t, seed, 1)
		if first != second {
			t.Fatalf("seed %d not reproducible:\n  %s\n  %s", seed, first, second)
		}
		prints[seed] = first
	}
	if prints[seeds[0]] == prints[seeds[1]] {
		t.Errorf("different seeds produced identical runs (%s): the stack ignores the seed", prints[seeds[0]])
	}
}

// TestHostileShardedBitIdentical runs the full hostile stack — loss,
// every mutation op, the adaptive adversary, targeted churn — under
// the sharded lockstep engine and checks the transcript is
// byte-identical to serial at every shard count. The adversary and
// mutator draw from middleware rngs in Send-call order, so this is the
// strictest ordering test the sharding refactor faces.
func TestHostileShardedBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		serial := hostileClusterFingerprint(t, seed, 1)
		for _, shards := range []int{4, runtime.GOMAXPROCS(0)} {
			if got := hostileClusterFingerprint(t, seed, shards); got != serial {
				t.Errorf("seed %d shards %d diverges:\n  serial: %s\n  sharded: %s", seed, shards, serial, got)
			}
		}
	}
}

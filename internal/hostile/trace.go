package hostile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dynnet"
	"repro/internal/graph"
)

// traceEvent is one parsed mobility line: at Tick, the Src–Dst edge
// comes up or goes down.
type traceEvent struct {
	tick, src, dst int
	up             bool
}

// TraceAdversary replays a recorded mobility trace as the topology
// schedule: every edge starts up (a complete graph), and each trace
// line "tick src dst up|down" toggles one edge from its tick onward.
// Rounds may be queried out of order — a backward query replays the
// trace from the start — though the transports only ever move forward.
//
// Unlike the synthetic adversaries a trace may disconnect the graph
// (real mobility does); that is fine for transport filtering, where a
// partition just manifests as drops, but a disconnected trace must not
// be fed to the synchronous dynnet engine, whose model requires
// connectivity every round.
type TraceAdversary struct {
	n    int
	evs  []traceEvent
	next int
	last int
	down map[[2]int]bool // currently-down edges (sparse vs the complete base)
	g    *graph.Graph
}

var _ dynnet.Adversary = (*TraceAdversary)(nil)

// ParseTrace reads a mobility trace for an id space of n: one
// "tick src dst up|down" event per line, '#' comments and blank lines
// ignored. Events are sorted by tick; same-tick events apply in input
// order.
func ParseTrace(r io.Reader, n int) (*TraceAdversary, error) {
	if n < 1 {
		return nil, fmt.Errorf("hostile: trace needs a positive node count, got %d", n)
	}
	ta := &TraceAdversary{n: n, last: -1, down: make(map[[2]int]bool), g: graph.New(n)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("hostile: trace line %d: want \"tick src dst up|down\", got %q", lineNo, line)
		}
		tick, err1 := strconv.Atoi(f[0])
		src, err2 := strconv.Atoi(f[1])
		dst, err3 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("hostile: trace line %d: non-numeric field in %q", lineNo, line)
		}
		switch {
		case tick < 0:
			return nil, fmt.Errorf("hostile: trace line %d: tick %d must be non-negative", lineNo, tick)
		case src < 0 || src >= n || dst < 0 || dst >= n:
			return nil, fmt.Errorf("hostile: trace line %d: node ids must be in [0,%d), got %d and %d", lineNo, n, src, dst)
		case src == dst:
			return nil, fmt.Errorf("hostile: trace line %d: self edge %d-%d", lineNo, src, dst)
		}
		var up bool
		switch f[3] {
		case "up":
			up = true
		case "down":
			up = false
		default:
			return nil, fmt.Errorf("hostile: trace line %d: state must be up or down, got %q", lineNo, f[3])
		}
		ta.evs = append(ta.evs, traceEvent{tick: tick, src: src, dst: dst, up: up})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hostile: reading trace: %w", err)
	}
	sort.SliceStable(ta.evs, func(i, j int) bool { return ta.evs[i].tick < ta.evs[j].tick })
	return ta, nil
}

// ParseTraceFile reads a mobility trace file (see ParseTrace).
func ParseTraceFile(path string, n int) (*TraceAdversary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hostile: %w", err)
	}
	defer f.Close()
	ta, err := ParseTrace(f, n)
	if err != nil {
		return nil, fmt.Errorf("hostile: trace %s: %w", path, err)
	}
	return ta, nil
}

// Events returns the number of parsed trace events.
func (ta *TraceAdversary) Events() int { return len(ta.evs) }

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Graph serves the trace's topology at the given round, valid until
// the next call.
func (ta *TraceAdversary) Graph(round int, _ []dynnet.Node) *graph.Graph {
	if round < ta.last {
		ta.next = 0
		clear(ta.down)
	}
	ta.last = round
	for ta.next < len(ta.evs) && ta.evs[ta.next].tick <= round {
		e := ta.evs[ta.next]
		ta.next++
		if e.up {
			delete(ta.down, edgeKey(e.src, e.dst))
		} else {
			ta.down[edgeKey(e.src, e.dst)] = true
		}
	}
	ta.g.Reset(ta.n)
	for u := 0; u < ta.n; u++ {
		for v := u + 1; v < ta.n; v++ {
			if !ta.down[edgeKey(u, v)] {
				ta.g.AddEdge(u, v)
			}
		}
	}
	return ta.g
}

package rlnc

import (
	"fmt"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/gf"
)

// BroadcastNode is the k-indexed-broadcast algorithm of Lemma 5.3 as a
// dynnet.Node: every round it broadcasts a fresh random linear
// combination of everything received so far and inserts whatever it
// hears. It runs for a fixed schedule of rounds — the paper's algorithms
// are Las Vegas with deterministic stopping schedules of Theta(n + k)
// rounds — after which the caller decodes.
type BroadcastNode struct {
	span     *Span
	rng      *rand.Rand
	schedule int
	elapsed  int
	// scratch is the reused Send combination: the engine collects every
	// node's message before any delivery, and receivers copy the vector
	// into their span, so one buffer per node is safe for a round.
	scratch Coded
}

var _ dynnet.Node = (*BroadcastNode)(nil)

// NewBroadcastNode returns a node for k tokens with payloadBits payload,
// holding the given initial coded vectors (one per token it starts
// with), running for schedule rounds.
func NewBroadcastNode(k, payloadBits, schedule int, initial []Coded, rng *rand.Rand) *BroadcastNode {
	n := &BroadcastNode{
		span:     NewSpan(k, payloadBits),
		rng:      rng,
		schedule: schedule,
	}
	for _, c := range initial {
		n.span.Add(c)
	}
	return n
}

// Span exposes the node's coding state (used by decoders and the
// adaptive adversaries that inspect node knowledge).
func (n *BroadcastNode) Span() *Span { return n.span }

// Send broadcasts a random combination of the received subspace, or
// nothing if the node has heard nothing yet. The returned message
// points at a per-node scratch buffer that is valid until the node's
// next Send; the engine's collect-then-deliver round structure
// guarantees every receiver has copied it by then.
func (n *BroadcastNode) Send(int) dynnet.Message {
	if !n.span.CombineInto(&n.scratch, n.rng) {
		return nil
	}
	return &n.scratch
}

// Receive inserts every received combination into the span. Both Coded
// values and the *Coded scratch views produced by Send are accepted.
func (n *BroadcastNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		switch c := m.(type) {
		case Coded:
			n.span.Add(c)
		case *Coded:
			n.span.Add(*c)
		}
	}
	n.elapsed++
}

// Done reports whether the schedule has elapsed.
func (n *BroadcastNode) Done() bool { return n.elapsed >= n.schedule }

// DefaultSchedule returns the Theta(n + k) stopping schedule used by
// Lemma 5.3. The constant is an implementation artifact; correctness is
// checked by the tests, which fail if the schedule is too aggressive.
func DefaultSchedule(n, k int) int { return 4*(n+k) + 16 }

// RunIndexedBroadcast wires up one complete Lemma 5.3 execution: node i
// starts with the coded vectors initial[i], all nodes run the schedule
// against the adversary, and every node must decode all k payloads.
// It returns the rounds executed and each node's k decoded payloads.
func RunIndexedBroadcast(
	initial [][]Coded,
	k, payloadBits, schedule int,
	adv dynnet.Adversary,
	budget int,
	seed int64,
) (int, [][]gf.BitVec, error) {
	nNodes := len(initial)
	nodes := make([]dynnet.Node, nNodes)
	impls := make([]*BroadcastNode, nNodes)
	for i := range nodes {
		rng := rand.New(rand.NewSource(seed + int64(i)*1664525 + 1013904223))
		impls[i] = NewBroadcastNode(k, payloadBits, schedule, initial[i], rng)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{BitBudget: budget, MaxRounds: 4 * schedule})
	rounds, err := e.Run()
	if err != nil {
		return rounds, nil, err
	}
	decoded := make([][]gf.BitVec, nNodes)
	for i, impl := range impls {
		payloads, err := impl.Span().Decode()
		if err != nil {
			return rounds, nil, fmt.Errorf("rlnc: node %d: %w", i, err)
		}
		decoded[i] = payloads
	}
	return rounds, decoded, nil
}

package rlnc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/graph"
)

// oneTokenPerNode builds the canonical Lemma 5.3 instance: node i starts
// with token i.
func oneTokenPerNode(n, d int, rng *rand.Rand) ([][]Coded, []gf.BitVec) {
	initial := make([][]Coded, n)
	payloads := make([]gf.BitVec, n)
	for i := 0; i < n; i++ {
		payloads[i] = gf.RandomBitVec(d, rng.Uint64)
		initial[i] = []Coded{Encode(i, n, payloads[i])}
	}
	return initial, payloads
}

// TestIndexedBroadcastLemma53 runs the full Lemma 5.3 algorithm under
// several adversaries and checks every node decodes every token within
// the O(n+k) schedule.
func TestIndexedBroadcastLemma53(t *testing.T) {
	const n, d = 24, 8
	tests := []struct {
		name string
		adv  dynnet.Adversary
	}{
		{"random", adversary.NewRandomConnected(n, n/2, 1)},
		{"rotating-path", adversary.NewRotatingPath(n, 2)},
		{"static-path", adversary.NewStatic(graph.Path(n))},
		{"static-star", adversary.NewStatic(graph.Star(n))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			initial, payloads := oneTokenPerNode(n, d, rng)
			schedule := DefaultSchedule(n, n)
			rounds, decoded, err := RunIndexedBroadcast(initial, n, d, schedule, tt.adv, n+d, 11)
			if err != nil {
				t.Fatal(err)
			}
			if rounds != schedule {
				t.Errorf("rounds = %d, want schedule %d", rounds, schedule)
			}
			for node := range decoded {
				for tok := range payloads {
					if !decoded[node][tok].Equal(payloads[tok]) {
						t.Fatalf("node %d decoded token %d wrong", node, tok)
					}
				}
			}
		})
	}
}

// TestIndexedBroadcastAgainstIsolation runs Lemma 5.3 against the
// adaptive adversary that minimizes informed/uninformed contact. The
// lemma's guarantee is adversary-independent: O(n + k) still suffices
// because every crossing edge transfers sensing with probability 1/2.
func TestIndexedBroadcastAgainstIsolation(t *testing.T) {
	const n, d = 16, 8
	rng := rand.New(rand.NewSource(8))
	initial, payloads := oneTokenPerNode(n, d, rng)

	adv := adversary.NewIsolateInformed(n, 3, func(i int, nodes []dynnet.Node) bool {
		bn, ok := nodes[i].(*BroadcastNode)
		if !ok {
			return false
		}
		return bn.Span().Rank() > 1 // more than its own token
	})
	schedule := 8 * (n + n) // isolation forces a near-worst-case constant
	rounds, decoded, err := RunIndexedBroadcast(initial, n, d, schedule, adv, n+d, 13)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != schedule {
		t.Errorf("rounds = %d", rounds)
	}
	for node := range decoded {
		for tok := range payloads {
			if !decoded[node][tok].Equal(payloads[tok]) {
				t.Fatalf("node %d decoded token %d wrong", node, tok)
			}
		}
	}
}

// TestIndexedBroadcastBudget checks the engine rejects the run when the
// k + d message no longer fits in b.
func TestIndexedBroadcastBudget(t *testing.T) {
	const n, d = 8, 8
	rng := rand.New(rand.NewSource(9))
	initial, _ := oneTokenPerNode(n, d, rng)
	_, _, err := RunIndexedBroadcast(initial, n, d, DefaultSchedule(n, n),
		adversary.NewRandomConnected(n, 2, 1), n+d-1 /* one bit short */, 5)
	if !errors.Is(err, dynnet.ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestBroadcastNodeLifecycle checks Done gating and silent start.
func TestBroadcastNodeLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewBroadcastNode(4, 4, 2, nil, rng)
	if n.Done() {
		t.Error("fresh node done")
	}
	if n.Send(0) != nil {
		t.Error("node with empty span must stay silent")
	}
	n.Receive(0, nil)
	n.Receive(1, nil)
	if !n.Done() {
		t.Error("node not done after schedule rounds")
	}
}

// TestBroadcastNodeIgnoresForeignMessages ensures non-Coded messages are
// skipped rather than crashing the decoder.
func TestBroadcastNodeIgnoresForeignMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewBroadcastNode(4, 4, 5, nil, rng)
	n.Receive(0, []dynnet.Message{fakeMsg{}})
	if n.Span().Rank() != 0 {
		t.Error("foreign message changed span")
	}
}

type fakeMsg struct{}

func (fakeMsg) Bits() int { return 1 }

package rlnc

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// FuzzSpanAddDecode drives a Span with pseudo-random linear combinations
// of fuzz-chosen source tokens and asserts the decoder contract:
//
//   - rank never decreases and Add reports growth exactly when it does,
//   - DecodableCount is monotone and consistent with DecodablePayload,
//   - every payload reported decodable equals the encoded original
//     (Decode round-trips Encode, also before full rank),
//   - once CanDecode, Decode returns all k original payloads.
//
// The corpus bytes select k, d, a payload seed, and one combination
// mask per added message.
func FuzzSpanAddDecode(f *testing.F) {
	f.Add(uint8(4), uint8(8), int64(1), []byte{0x01, 0x02, 0x04, 0x08, 0x0f})
	f.Add(uint8(1), uint8(1), int64(7), []byte{0x01, 0x01})
	f.Add(uint8(8), uint8(16), int64(42), []byte{0xff, 0x80, 0x41, 0x23, 0x55, 0xaa, 0x99, 0x01, 0x02})
	f.Add(uint8(16), uint8(3), int64(-3), []byte{})
	f.Fuzz(func(t *testing.T, kByte, dByte uint8, payloadSeed int64, masks []byte) {
		k := int(kByte)%16 + 1
		d := int(dByte)%24 + 1
		rng := rand.New(rand.NewSource(payloadSeed))
		payloads := make([]gf.BitVec, k)
		src := make([]Coded, k)
		for i := range src {
			payloads[i] = gf.RandomBitVec(d, rng.Uint64)
			src[i] = Encode(i, k, payloads[i])
		}

		s := NewSpan(k, d)
		prevCount := 0
		for mi := 0; mi < len(masks) && mi < 64; mi++ {
			// Combine the sources selected by the mask bits (byte mi
			// picks among the first 8 tokens, shifted by position so
			// later tokens participate too).
			mix := gf.NewBitVec(k + d)
			for b := 0; b < 8; b++ {
				if masks[mi]>>uint(b)&1 == 1 {
					mix.Xor(src[(mi+b)%k].Vec)
				}
			}
			before := s.Rank()
			grew := s.Add(Coded{K: k, Vec: mix})
			if grew != (s.Rank() == before+1) || s.Rank() < before {
				t.Fatalf("Add growth report %v inconsistent: rank %d -> %d", grew, before, s.Rank())
			}

			count := s.DecodableCount()
			if count < prevCount {
				t.Fatalf("DecodableCount decreased: %d -> %d", prevCount, count)
			}
			prevCount = count
			got := 0
			for i := 0; i < k; i++ {
				p, ok := s.DecodablePayload(i)
				if !ok {
					continue
				}
				got++
				if !p.Equal(payloads[i]) {
					t.Fatalf("token %d decoded to %v, want %v", i, p, payloads[i])
				}
			}
			if got != count {
				t.Fatalf("DecodableCount = %d but %d payloads decodable", count, got)
			}
		}

		if s.CanDecode() {
			decoded, err := s.Decode()
			if err != nil {
				t.Fatalf("CanDecode but Decode failed: %v", err)
			}
			for i := range decoded {
				if !decoded[i].Equal(payloads[i]) {
					t.Fatalf("full decode: token %d = %v, want %v", i, decoded[i], payloads[i])
				}
			}
		} else if _, err := s.Decode(); err == nil {
			t.Fatal("Decode succeeded below full coefficient rank")
		}
	})
}

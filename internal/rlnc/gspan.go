package rlnc

import (
	"fmt"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/gf"
)

// GCoded is a network-coded message over an arbitrary field, used by the
// Section 6 derandomization results where the field size q must grow to
// defeat stronger adversaries. The coefficient header costs k*lg(q) bits.
type GCoded struct {
	// F is the field the combination lives in.
	F gf.Field
	// K is the coefficient dimension.
	K int
	// Vec holds K coefficients followed by the payload elements.
	Vec gf.Vec
}

// Bits returns the wire size: every coefficient and payload element
// costs lg(q) bits.
func (c GCoded) Bits() int { return len(c.Vec) * c.F.Bits() }

// PayloadElems returns the number of payload field elements.
func (c GCoded) PayloadElems() int { return len(c.Vec) - c.K }

// GEncode builds the initial vector for token index i of k with the
// given payload elements.
func GEncode(f gf.Field, i, k int, payload gf.Vec) GCoded {
	if i < 0 || i >= k {
		panic(fmt.Sprintf("rlnc: token index %d out of range [0,%d)", i, k))
	}
	v := gf.NewVec(k + len(payload))
	v[i] = 1
	copy(v[k:], payload)
	return GCoded{F: f, K: k, Vec: v}
}

// GSpan is the general-field coding state, mirroring Span.
type GSpan struct {
	f       gf.Field
	k       int
	payload int
	mat     *gf.Matrix
}

// NewGSpan returns an empty span over f for k coefficients and
// payloadElems payload field elements.
func NewGSpan(f gf.Field, k, payloadElems int) *GSpan {
	return &GSpan{f: f, k: k, payload: payloadElems, mat: gf.NewMatrix(f, k+payloadElems)}
}

// Field returns the span's field.
func (s *GSpan) Field() gf.Field { return s.f }

// K returns the coefficient dimension.
func (s *GSpan) K() int { return s.k }

// Rank returns the dimension of the received subspace.
func (s *GSpan) Rank() int { return s.mat.Rank() }

// Add inserts a message, reporting whether the rank grew.
func (s *GSpan) Add(c GCoded) bool {
	if c.K != s.k || len(c.Vec) != s.k+s.payload {
		panic(fmt.Sprintf("rlnc: message dims (k=%d,len=%d) do not match span (k=%d,len=%d)",
			c.K, len(c.Vec), s.k, s.k+s.payload))
	}
	return s.mat.Insert(c.Vec)
}

// Combine returns a uniformly random combination of the span, or false
// if it is empty.
func (s *GSpan) Combine(rng *rand.Rand) (GCoded, bool) {
	return s.CombineWith(func(int) uint64 {
		return gf.RandomVec(s.f, 1, rng.Uint64)[0]
	})
}

// CombineWith combines the basis rows using coeff(i) as the scalar for
// row i. It is the hook the deterministic (advice-based) algorithms of
// Section 6 use: they draw their scalars from a fixed schedule instead
// of fresh randomness.
func (s *GSpan) CombineWith(coeff func(row int) uint64) (GCoded, bool) {
	r := s.mat.Rank()
	if r == 0 {
		return GCoded{}, false
	}
	v := gf.NewVec(s.k + s.payload)
	for i := 0; i < r; i++ {
		v.AddScaled(s.f, coeff(i), s.mat.Row(i))
	}
	return GCoded{F: s.f, K: s.k, Vec: v}, true
}

// Senses reports Definition 5.1 over the general field.
func (s *GSpan) Senses(mu gf.Vec) bool {
	if len(mu) != s.k {
		panic(fmt.Sprintf("rlnc: sensing vector has %d elems, want k=%d", len(mu), s.k))
	}
	for i := 0; i < s.mat.Rank(); i++ {
		if gf.Vec(s.mat.Row(i)[:s.k]).Dot(s.f, mu) != 0 {
			return true
		}
	}
	return false
}

// CanDecode reports full coefficient rank.
func (s *GSpan) CanDecode() bool { return s.mat.SpansUnitPrefix(s.k) }

// Decode recovers all k payload vectors.
func (s *GSpan) Decode() ([]gf.Vec, error) {
	if !s.CanDecode() {
		return nil, fmt.Errorf("rlnc: rank %d of %d, cannot decode", s.Rank(), s.k)
	}
	m := s.mat.Clone()
	m.RREF()
	out := make([]gf.Vec, s.k)
	for i := 0; i < s.k; i++ {
		row, ok := m.UnitRow(i, s.k)
		if !ok {
			return nil, fmt.Errorf("rlnc: internal: no unit row for index %d after RREF", i)
		}
		out[i] = gf.Vec(row[s.k:]).Clone()
	}
	return out, nil
}

// GBroadcastNode is BroadcastNode over an arbitrary field. Coefficients
// may come from node randomness or, via NewScheduledBroadcastNode, from
// a deterministic schedule.
type GBroadcastNode struct {
	span     *GSpan
	combine  func(round int) (GCoded, bool)
	schedule int
	elapsed  int
}

var _ dynnet.Node = (*GBroadcastNode)(nil)

// NewGBroadcastNode returns a randomized general-field broadcast node.
func NewGBroadcastNode(f gf.Field, k, payloadElems, schedule int, initial []GCoded, rng *rand.Rand) *GBroadcastNode {
	n := &GBroadcastNode{span: NewGSpan(f, k, payloadElems), schedule: schedule}
	n.combine = func(int) (GCoded, bool) { return n.span.Combine(rng) }
	for _, c := range initial {
		n.span.Add(c)
	}
	return n
}

// NewScheduledBroadcastNode returns a deterministic broadcast node whose
// combination scalars come from schedule coeff(round, row) — the
// "pseudo-random advice matrix" construction of Corollary 6.2.
func NewScheduledBroadcastNode(f gf.Field, k, payloadElems, schedule int, initial []GCoded, coeff func(round, row int) uint64) *GBroadcastNode {
	n := &GBroadcastNode{span: NewGSpan(f, k, payloadElems), schedule: schedule}
	n.combine = func(round int) (GCoded, bool) {
		return n.span.CombineWith(func(row int) uint64 { return coeff(round, row) })
	}
	for _, c := range initial {
		n.span.Add(c)
	}
	return n
}

// Span exposes the node's coding state.
func (n *GBroadcastNode) Span() *GSpan { return n.span }

// Send broadcasts the round's combination, or nothing on an empty span.
func (n *GBroadcastNode) Send(round int) dynnet.Message {
	c, ok := n.combine(round)
	if !ok {
		return nil
	}
	return c
}

// Receive inserts every received combination.
func (n *GBroadcastNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		if c, ok := m.(GCoded); ok {
			n.span.Add(c)
		}
	}
	n.elapsed++
}

// Done reports whether the schedule has elapsed.
func (n *GBroadcastNode) Done() bool { return n.elapsed >= n.schedule }

package rlnc

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
)

func TestGSpanDecodeAcrossFields(t *testing.T) {
	for _, f := range []gf.Field{gf.GF2{}, gf.MustGF2e(4), gf.MustGF2e(8), gf.MustPrime(257)} {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			const k, pe = 5, 7
			payloads := make([]gf.Vec, k)
			source := NewGSpan(f, k, pe)
			for i := range payloads {
				payloads[i] = gf.RandomVec(f, pe, rng.Uint64)
				source.Add(GEncode(f, i, k, payloads[i]))
			}
			sink := NewGSpan(f, k, pe)
			for tries := 0; tries < 500 && !sink.CanDecode(); tries++ {
				c, ok := source.Combine(rng)
				if !ok {
					t.Fatal("empty source")
				}
				sink.Add(c)
			}
			got, err := sink.Decode()
			if err != nil {
				t.Fatal(err)
			}
			for i := range payloads {
				if !got[i].Equal(payloads[i]) {
					t.Errorf("payload %d mismatch", i)
				}
			}
		})
	}
}

func TestGCodedBits(t *testing.T) {
	f := gf.MustGF2e(8)
	c := GEncode(f, 0, 4, gf.NewVec(6))
	if got, want := c.Bits(), (4+6)*8; got != want {
		t.Errorf("Bits = %d, want %d", got, want)
	}
	if c.PayloadElems() != 6 {
		t.Errorf("PayloadElems = %d, want 6", c.PayloadElems())
	}
}

// TestGSensingLemmaLargeField verifies the 1 - 1/q bound tightens with
// field size: over F_257 the transfer probability should be near 1.
func TestGSensingLemmaLargeField(t *testing.T) {
	f := gf.MustPrime(257)
	rng := rand.New(rand.NewSource(2))
	const k, pe = 6, 4
	const trials = 2000
	passed := 0
	for trial := 0; trial < trials; trial++ {
		s := NewGSpan(f, k, pe)
		for i := 0; i < 1+rng.Intn(k); i++ {
			s.Add(GEncode(f, rng.Intn(k), k, gf.RandomVec(f, pe, rng.Uint64)))
		}
		var mu gf.Vec
		for {
			mu = gf.RandomVec(f, k, rng.Uint64)
			if !mu.IsZero() && s.Senses(mu) {
				break
			}
		}
		c, ok := s.Combine(rng)
		if !ok {
			t.Fatal("empty span")
		}
		if gf.Vec(c.Vec[:k]).Dot(f, mu) != 0 {
			passed++
		}
	}
	if frac := float64(passed) / trials; frac < 0.98 {
		t.Errorf("sensing transfer rate %.3f < 0.98 over F_257 (lemma predicts 1 - 1/257)", frac)
	}
}

// TestGBroadcastEndToEnd runs the general-field indexed broadcast on a
// dynamic network.
func TestGBroadcastEndToEnd(t *testing.T) {
	f := gf.MustGF2e(4)
	const n, pe = 10, 4
	rng := rand.New(rand.NewSource(3))
	payloads := make([]gf.Vec, n)
	nodes := make([]dynnet.Node, n)
	impls := make([]*GBroadcastNode, n)
	schedule := DefaultSchedule(n, n)
	for i := 0; i < n; i++ {
		payloads[i] = gf.RandomVec(f, pe, rng.Uint64)
		nrng := rand.New(rand.NewSource(int64(100 + i)))
		impls[i] = NewGBroadcastNode(f, n, pe, schedule, []GCoded{GEncode(f, i, n, payloads[i])}, nrng)
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adversary.NewRandomConnected(n, n/2, 4), dynnet.Config{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, impl := range impls {
		got, err := impl.Span().Decode()
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		for j := range payloads {
			if !got[j].Equal(payloads[j]) {
				t.Fatalf("node %d token %d mismatch", i, j)
			}
		}
	}
}

// TestScheduledBroadcastDeterministic checks that two runs with the same
// coefficient schedule and adversary produce identical spans — the
// determinism Corollary 6.2 relies on.
func TestScheduledBroadcastDeterministic(t *testing.T) {
	f := gf.MustPrime(65537)
	const n, pe = 8, 3
	coeff := func(node int) func(round, row int) uint64 {
		return func(round, row int) uint64 {
			// A fixed splitmix-style hash: the "advice matrix".
			x := uint64(node)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9 + uint64(row)*0x94d049bb133111eb
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			return x % f.Q()
		}
	}
	run := func() []int {
		rng := rand.New(rand.NewSource(5))
		nodes := make([]dynnet.Node, n)
		impls := make([]*GBroadcastNode, n)
		schedule := DefaultSchedule(n, n)
		for i := 0; i < n; i++ {
			payload := gf.RandomVec(f, pe, rng.Uint64)
			impls[i] = NewScheduledBroadcastNode(f, n, pe, schedule, []GCoded{GEncode(f, i, n, payload)}, coeff(i))
			nodes[i] = impls[i]
		}
		e := dynnet.NewEngine(nodes, adversary.NewRandomConnected(n, 2, 9), dynnet.Config{})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		ranks := make([]int, n)
		for i, impl := range impls {
			ranks[i] = impl.Span().Rank()
		}
		return ranks
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("deterministic runs diverged at node %d: %d vs %d", i, r1[i], r2[i])
		}
		if r1[i] != n {
			t.Errorf("node %d rank %d, want %d", i, r1[i], n)
		}
	}
}

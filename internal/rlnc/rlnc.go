// Package rlnc implements the paper's core contribution: random linear
// network coding for information dissemination in dynamic networks
// (Section 5). Tokens are interpreted as vectors over a finite field;
// instead of forwarding tokens, nodes broadcast random linear
// combinations of every vector they have received, prefixed by the
// combination's coefficient vector. A node that has gathered a
// full-rank set of combinations recovers all tokens by Gaussian
// elimination.
//
// The package provides the GF(2) fast path (coefficients are single
// bits, combining is XOR) used by almost all of the paper's algorithms,
// a general-field variant used by the derandomization experiments of
// Section 6, and the indexed-broadcast node of Lemma 5.3.
package rlnc

import (
	"fmt"
	"math/rand"

	"repro/internal/gf"
)

// Coded is a network-coded message over GF(2): the concatenation of a
// k-bit coefficient vector and a payload. It is also the vector
// representation stored by spans.
type Coded struct {
	// K is the coefficient dimension (number of tokens coded together).
	K int
	// Vec is the full (K + payload)-bit vector; bits [0,K) are the
	// coefficients, the rest is the coded payload.
	Vec gf.BitVec
}

// Bits returns the wire size: one bit per coefficient plus the payload.
func (c Coded) Bits() int { return c.Vec.Len() }

// PayloadBits returns the payload length.
func (c Coded) PayloadBits() int { return c.Vec.Len() - c.K }

// Coeff returns a copy of the coefficient prefix.
func (c Coded) Coeff() gf.BitVec { return c.Vec.Slice(0, c.K) }

// Payload returns a copy of the payload suffix.
func (c Coded) Payload() gf.BitVec { return c.Vec.Slice(c.K, c.Vec.Len()) }

// Encode builds the initial coded vector for token index i of k: the
// i-th unit coefficient vector concatenated with the payload
// ("we concatenate the ith basis vector e_i to t_i").
func Encode(i, k int, payload gf.BitVec) Coded {
	if i < 0 || i >= k {
		panic(fmt.Sprintf("rlnc: token index %d out of range [0,%d)", i, k))
	}
	v := gf.NewBitVec(k + payload.Len())
	v.Set(i, true)
	payload.CopyInto(v, k)
	return Coded{K: k, Vec: v}
}

// Span is a node's coding state over GF(2): the row space of every coded
// message received so far, kept in echelon form. The paper's node state
// is exactly this subspace ("the message only depends on ... the subspace
// spanned by the received vectors").
type Span struct {
	k       int
	payload int
	mat     *gf.BitMatrix
}

// NewSpan returns an empty span for k coefficients and payloadBits of
// payload.
func NewSpan(k, payloadBits int) *Span {
	return &Span{k: k, payload: payloadBits, mat: gf.NewBitMatrix(k + payloadBits)}
}

// K returns the coefficient dimension.
func (s *Span) K() int { return s.k }

// PayloadBits returns the payload length.
func (s *Span) PayloadBits() int { return s.payload }

// Rank returns the dimension of the received subspace.
func (s *Span) Rank() int { return s.mat.Rank() }

// Add inserts a coded message, reporting whether it increased the rank
// (carried new information).
func (s *Span) Add(c Coded) bool {
	if c.K != s.k || c.Vec.Len() != s.k+s.payload {
		panic(fmt.Sprintf("rlnc: message dims (k=%d,len=%d) do not match span (k=%d,len=%d)",
			c.K, c.Vec.Len(), s.k, s.k+s.payload))
	}
	return s.mat.Insert(c.Vec)
}

// CombineInto draws a uniformly random linear combination of the span
// (equivalently, of all received vectors — they generate the same
// subspace, and the sensing lemma only depends on the subspace) into
// the caller-owned dst, reusing dst.Vec's storage when its capacity
// allows. It returns false, leaving dst untouched, if the span is
// empty, in which case the node stays silent. Coefficient coins are
// drawn 64 at a time and each basis row is xored starting at its pivot
// word, so the steady-state cost is pure word-level XOR with zero
// allocation. The coin sequence is identical to Combine's: given equal
// rng states the two produce bit-identical combinations.
func (s *Span) CombineInto(dst *Coded, rng *rand.Rand) bool {
	r := s.mat.Rank()
	if r == 0 {
		return false
	}
	dst.K = s.k
	dst.Vec.Resize(s.k + s.payload)
	var coins uint64
	for i := 0; i < r; i++ {
		if i&63 == 0 {
			coins = rng.Uint64()
		}
		if coins&1 == 1 {
			dst.Vec.XorRange(s.mat.Row(i), s.mat.Lead(i), s.k+s.payload)
		}
		coins >>= 1
	}
	return true
}

// Combine is the allocating wrapper around CombineInto: it returns a
// fresh combination the caller owns.
func (s *Span) Combine(rng *rand.Rand) (Coded, bool) {
	var c Coded
	if !s.CombineInto(&c, rng) {
		return Coded{}, false
	}
	return c, true
}

// RandomCombinationInto draws a uniformly random *nonzero* element of
// the span into the caller-owned dst. It is the recoding primitive of
// asynchronous gossip: a relay re-randomizes its whole received
// subspace into one fresh packet instead of forwarding any particular
// message. CombineInto already draws uniformly from the span, but 1 in
// 2^rank of its draws is the zero vector — a wasted packet on a real
// wire — so RandomCombinationInto rejection-samples the zero draw,
// which makes the output uniform over the 2^rank - 1 nonzero span
// elements (expected < 2 draws even at rank 1). It returns false,
// leaving dst untouched, if the span is empty.
func (s *Span) RandomCombinationInto(dst *Coded, rng *rand.Rand) bool {
	if !s.CombineInto(dst, rng) {
		return false
	}
	for dst.Vec.IsZero() {
		s.CombineInto(dst, rng)
	}
	return true
}

// RandomCombination is the allocating wrapper around
// RandomCombinationInto: it returns a fresh nonzero combination the
// caller owns.
func (s *Span) RandomCombination(rng *rand.Rand) (Coded, bool) {
	var c Coded
	if !s.RandomCombinationInto(&c, rng) {
		return Coded{}, false
	}
	return c, true
}

// Senses reports Definition 5.1: whether the node has received a vector
// whose coefficient part is not orthogonal to mu. Because sensing only
// depends on the received subspace, it is evaluated on the basis.
func (s *Span) Senses(mu gf.BitVec) bool {
	if mu.Len() != s.k {
		panic(fmt.Sprintf("rlnc: sensing vector has %d bits, want k=%d", mu.Len(), s.k))
	}
	for i := 0; i < s.mat.Rank(); i++ {
		if s.mat.Row(i).DotPrefix(mu) == 1 {
			return true
		}
	}
	return false
}

// CanDecode reports whether all k tokens are recoverable, i.e. the
// coefficient projection of the span has full rank k.
func (s *Span) CanDecode() bool { return s.mat.SpansUnitPrefix(s.k) }

// Decode recovers all k payloads. It fails if the span does not yet
// have full coefficient rank. Because the basis is maintained in
// reduced row echelon form, decoding is a straight read of the stored
// rows — no clone, no elimination.
func (s *Span) Decode() ([]gf.BitVec, error) {
	if !s.CanDecode() {
		return nil, fmt.Errorf("rlnc: rank %d of %d, cannot decode", s.Rank(), s.k)
	}
	out := make([]gf.BitVec, s.k)
	for i := 0; i < s.k; i++ {
		row, ok := s.mat.UnitRow(i, s.k)
		if !ok {
			return nil, fmt.Errorf("rlnc: internal: no unit row for index %d in RREF basis", i)
		}
		out[i] = row.Slice(s.k, s.k+s.payload)
	}
	return out, nil
}

// DecodablePayload returns the payload of token i if it is already
// recoverable from the current span (possible before full rank: any
// basis vector whose coefficient part reduces to exactly e_i reveals
// token i). This is the early-decoding behaviour real RLNC
// implementations expose; the paper's algorithms only use full decodes.
func (s *Span) DecodablePayload(i int) (gf.BitVec, bool) {
	if i < 0 || i >= s.k {
		return gf.BitVec{}, false
	}
	row, ok := s.mat.UnitRow(i, s.k)
	if !ok {
		return gf.BitVec{}, false
	}
	return row.Slice(s.k, s.k+s.payload), true
}

// DecodableCount returns how many token indices are currently
// recoverable. It is an O(rank) word-level scan of the maintained RREF
// basis with zero allocation, cheap enough to call every round.
func (s *Span) DecodableCount() int {
	count := 0
	for i := 0; i < s.mat.Rank(); i++ {
		l := s.mat.Lead(i)
		if l >= s.k {
			break // leads are sorted; the rest pivot in the payload
		}
		if s.mat.Row(i).OnesCountPrefix(s.k) == 1 {
			count++
		}
	}
	return count
}

// Clone returns an independent copy of the span.
func (s *Span) Clone() *Span {
	return &Span{k: s.k, payload: s.payload, mat: s.mat.Clone()}
}

// Reset empties the span for reuse with a fresh coding generation of
// the same dimensions, keeping the basis bookkeeping allocated. It is
// the lifecycle primitive behind the streaming layer's span pool: a
// retired generation's span is Reset and handed to the next generation
// instead of being reallocated.
func (s *Span) Reset() { s.mat.Reset() }

// MemoryBytes returns the approximate heap bytes held by the span's
// basis — the quantity a windowed streaming node must bound by retiring
// decoded generations.
func (s *Span) MemoryBytes() int { return s.mat.MemoryBytes() }

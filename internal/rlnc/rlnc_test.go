package rlnc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

func TestEncodeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := gf.RandomBitVec(10, rng.Uint64)
	c := Encode(2, 5, payload)
	if c.Bits() != 15 {
		t.Errorf("Bits = %d, want 15", c.Bits())
	}
	if c.PayloadBits() != 10 {
		t.Errorf("PayloadBits = %d, want 10", c.PayloadBits())
	}
	coeff := c.Coeff()
	for i := 0; i < 5; i++ {
		if coeff.Bit(i) != (i == 2) {
			t.Errorf("coeff bit %d = %v", i, coeff.Bit(i))
		}
	}
	if !c.Payload().Equal(payload) {
		t.Error("payload mismatch")
	}
}

func TestEncodePanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Encode(5, 5, gf.NewBitVec(4))
}

func TestSpanRankAndDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const k, d = 6, 12
	payloads := make([]gf.BitVec, k)
	s := NewSpan(k, d)
	for i := range payloads {
		payloads[i] = gf.RandomBitVec(d, rng.Uint64)
		s.Add(Encode(i, k, payloads[i]))
	}
	if s.Rank() != k {
		t.Fatalf("rank = %d, want %d", s.Rank(), k)
	}
	if !s.CanDecode() {
		t.Fatal("cannot decode at full rank")
	}
	got, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if !got[i].Equal(payloads[i]) {
			t.Errorf("payload %d mismatch", i)
		}
	}
}

func TestSpanDecodeFailsBelowRank(t *testing.T) {
	s := NewSpan(3, 4)
	s.Add(Encode(0, 3, gf.NewBitVec(4)))
	if s.CanDecode() {
		t.Error("CanDecode with rank 1 of 3")
	}
	if _, err := s.Decode(); err == nil {
		t.Error("Decode should fail below full rank")
	}
}

// TestDecodeFromRandomCombinations is the core coding property: mixing
// random combinations of combinations still decodes.
func TestDecodeFromRandomCombinations(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		d := 1 + rng.Intn(20)
		payloads := make([]gf.BitVec, k)
		source := NewSpan(k, d)
		for i := range payloads {
			payloads[i] = gf.RandomBitVec(d, rng.Uint64)
			source.Add(Encode(i, k, payloads[i]))
		}
		// A second node hears only random combinations.
		sink := NewSpan(k, d)
		for tries := 0; tries < 100*k && !sink.CanDecode(); tries++ {
			c, ok := source.Combine(rng)
			if !ok {
				return false
			}
			sink.Add(c)
		}
		got, err := sink.Decode()
		if err != nil {
			return false
		}
		for i := range payloads {
			if !got[i].Equal(payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSensingLemma statistically verifies Lemma 5.2: if a node senses mu
// and generates a message, the recipient senses mu with probability at
// least 1 - 1/q = 1/2 over GF(2).
func TestSensingLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, d = 8, 8
	const trials = 4000
	passed := 0
	for trial := 0; trial < trials; trial++ {
		// Build a random nonempty span and a mu it senses.
		s := NewSpan(k, d)
		for i := 0; i < 1+rng.Intn(k); i++ {
			s.Add(Encode(rng.Intn(k), k, gf.RandomBitVec(d, rng.Uint64)))
		}
		var mu gf.BitVec
		for {
			mu = gf.RandomBitVec(k, rng.Uint64)
			if !mu.IsZero() && s.Senses(mu) {
				break
			}
		}
		c, ok := s.Combine(rng)
		if !ok {
			t.Fatal("empty span")
		}
		if c.Coeff().Dot(mu) == 1 {
			passed++
		}
	}
	// Expect >= 1/2; allow statistical slack.
	if frac := float64(passed) / trials; frac < 0.45 {
		t.Errorf("sensing transfer rate %.3f < 0.45 (lemma predicts >= 0.5)", frac)
	}
}

func TestSensesMonotoneUnderAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k, d = 6, 6
	s := NewSpan(k, d)
	s.Add(Encode(0, k, gf.RandomBitVec(d, rng.Uint64)))
	mu := gf.NewBitVec(k)
	mu.Set(0, true)
	if !s.Senses(mu) {
		t.Fatal("span with e_0 must sense e_0")
	}
	for i := 0; i < 20; i++ {
		s.Add(Encode(rng.Intn(k), k, gf.RandomBitVec(d, rng.Uint64)))
		if !s.Senses(mu) {
			t.Fatal("sensing is monotone; lost after Add")
		}
	}
}

func TestSensesRequiresCoefficientOverlap(t *testing.T) {
	const k, d = 4, 4
	s := NewSpan(k, d)
	s.Add(Encode(1, k, gf.NewBitVec(d)))
	mu := gf.NewBitVec(k)
	mu.Set(0, true) // e_0 is orthogonal to e_1
	if s.Senses(mu) {
		t.Error("span {e_1} must not sense e_0")
	}
}

func TestCombineEmptySpan(t *testing.T) {
	s := NewSpan(3, 3)
	if _, ok := s.Combine(rand.New(rand.NewSource(5))); ok {
		t.Error("empty span produced a combination")
	}
}

func TestSpanAddDimensionMismatchPanics(t *testing.T) {
	s := NewSpan(3, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Add(Encode(0, 4, gf.NewBitVec(2)))
}

func TestPartialDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k, d = 4, 8
	s := NewSpan(k, d)
	p0 := gf.RandomBitVec(d, rng.Uint64)
	p1 := gf.RandomBitVec(d, rng.Uint64)
	s.Add(Encode(0, k, p0))
	if got := s.DecodableCount(); got != 1 {
		t.Errorf("DecodableCount = %d, want 1", got)
	}
	got, ok := s.DecodablePayload(0)
	if !ok || !got.Equal(p0) {
		t.Error("token 0 not decodable from its own unit vector")
	}
	if _, ok := s.DecodablePayload(1); ok {
		t.Error("token 1 decodable without information")
	}
	// A mixed vector e1+e2 reveals neither individually.
	mix := Encode(1, k, p1)
	v2 := Encode(2, k, gf.RandomBitVec(d, rng.Uint64))
	mixed := mix.Vec.Clone()
	mixed.Xor(v2.Vec)
	s.Add(Coded{K: k, Vec: mixed})
	if _, ok := s.DecodablePayload(1); ok {
		t.Error("token 1 decodable from a 2-mix")
	}
	// Adding e2 alone untangles the mix: token 1 becomes decodable.
	s.Add(v2)
	got1, ok := s.DecodablePayload(1)
	if !ok || !got1.Equal(p1) {
		t.Error("token 1 not decodable after untangling")
	}
	if got := s.DecodableCount(); got != 3 {
		t.Errorf("DecodableCount = %d, want 3", got)
	}
	if _, ok := s.DecodablePayload(-1); ok {
		t.Error("negative index decodable")
	}
	if _, ok := s.DecodablePayload(k); ok {
		t.Error("out-of-range index decodable")
	}
}

func TestSpanCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewSpan(4, 4)
	s.Add(Encode(0, 4, gf.RandomBitVec(4, rng.Uint64)))
	c := s.Clone()
	c.Add(Encode(1, 4, gf.RandomBitVec(4, rng.Uint64)))
	if s.Rank() != 1 || c.Rank() != 2 {
		t.Error("clone not independent")
	}
}

// TestRandomCombinationInSpanAndNonzero checks the cluster recoding
// primitive: every draw is a nonzero vector that lies in the span (so
// adding it to a clone cannot grow the rank).
func TestRandomCombinationInSpanAndNonzero(t *testing.T) {
	const k, d = 8, 16
	rng := rand.New(rand.NewSource(11))
	s := NewSpan(k, d)
	for i := 0; i < 5; i++ {
		s.Add(Encode(i, k, gf.RandomBitVec(d, rng.Uint64)))
	}
	for trial := 0; trial < 200; trial++ {
		c, ok := s.RandomCombination(rng)
		if !ok {
			t.Fatal("nonempty span produced no combination")
		}
		if c.Vec.IsZero() {
			t.Fatal("RandomCombination returned the zero vector")
		}
		if c.K != k || c.Vec.Len() != k+d {
			t.Fatalf("combination dims k=%d len=%d", c.K, c.Vec.Len())
		}
		if s.Clone().Add(c) {
			t.Fatal("combination lies outside the span (rank grew)")
		}
	}
	empty := NewSpan(k, d)
	if _, ok := empty.RandomCombination(rng); ok {
		t.Error("empty span produced a combination")
	}
}

// TestRandomCombinationDecodable feeds a fresh span exclusively from
// RandomCombination packets of a full-rank source span: the receiver
// must reach full rank and decode the original payloads — the
// decodable-compatibility the cluster recoder relies on.
func TestRandomCombinationDecodable(t *testing.T) {
	const k, d = 12, 24
	rng := rand.New(rand.NewSource(12))
	payloads := make([]gf.BitVec, k)
	src := NewSpan(k, d)
	for i := range payloads {
		payloads[i] = gf.RandomBitVec(d, rng.Uint64)
		src.Add(Encode(i, k, payloads[i]))
	}
	dst := NewSpan(k, d)
	for step := 0; !dst.CanDecode(); step++ {
		if step > 64*k {
			t.Fatal("receiver did not reach full rank from random combinations")
		}
		c, ok := src.RandomCombination(rng)
		if !ok {
			t.Fatal("source span empty")
		}
		dst.Add(c)
	}
	got, err := dst.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if !got[i].Equal(payloads[i]) {
			t.Errorf("payload %d mismatch after recoded transfer", i)
		}
	}
}

// TestSpanResetReuse pins the span lifecycle used by the streaming
// layer: a span that decoded one generation is Reset and reused for the
// next generation's vectors, with no state leaking across generations.
func TestSpanResetReuse(t *testing.T) {
	const k, d = 4, 16
	rng := rand.New(rand.NewSource(11))
	s := NewSpan(k, d)

	fill := func(seed int64) []gf.BitVec {
		prng := rand.New(rand.NewSource(seed))
		payloads := make([]gf.BitVec, k)
		for i := range payloads {
			payloads[i] = gf.RandomBitVec(d, prng.Uint64)
			s.Add(Encode(i, k, payloads[i]))
		}
		return payloads
	}

	first := fill(1)
	if !s.CanDecode() {
		t.Fatal("span not decodable after k unit inserts")
	}
	if s.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes = %d for a full-rank span", s.MemoryBytes())
	}

	s.Reset()
	if s.Rank() != 0 || s.CanDecode() {
		t.Fatalf("after Reset: rank %d decodable %v", s.Rank(), s.CanDecode())
	}
	if s.K() != k || s.PayloadBits() != d {
		t.Fatalf("Reset changed dimensions to k=%d d=%d", s.K(), s.PayloadBits())
	}
	if _, ok := s.RandomCombination(rng); ok {
		t.Error("empty reset span emitted a combination")
	}

	second := fill(2)
	got, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(second[i]) {
			t.Errorf("token %d decoded to the wrong payload after reuse", i)
		}
		if got[i].Equal(first[i]) {
			t.Errorf("token %d leaked the previous generation's payload", i)
		}
	}
}

// TestCombineIntoMatchesCombine pins the tentpole equivalence: given
// identical rng states, the in-place CombineInto/RandomCombinationInto
// hot path and the allocating wrappers draw bit-identical combinations,
// and a reused dst never leaks state between draws.
func TestCombineIntoMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(40)
		d := 1 + rng.Intn(80)
		s := NewSpan(k, d)
		adds := rng.Intn(2 * k)
		for i := 0; i < adds; i++ {
			j := rng.Intn(k)
			s.Add(Encode(j, k, gf.RandomBitVec(d, rng.Uint64)))
		}
		seed := rng.Int63()
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		var dst Coded
		// Poison dst with unrelated content to prove Resize clears it.
		dst.Vec = gf.RandomBitVec(k+d+17, rng.Uint64)
		for draw := 0; draw < 50; draw++ {
			want, okW := s.Combine(rngA)
			okG := s.CombineInto(&dst, rngB)
			if okW != okG {
				t.Fatalf("trial %d draw %d: ok %v vs %v", trial, draw, okW, okG)
			}
			if !okW {
				break
			}
			if dst.K != want.K || !dst.Vec.Equal(want.Vec) {
				t.Fatalf("trial %d draw %d: CombineInto diverged from Combine", trial, draw)
			}
		}
		rngA = rand.New(rand.NewSource(seed + 1))
		rngB = rand.New(rand.NewSource(seed + 1))
		for draw := 0; draw < 50; draw++ {
			want, okW := s.RandomCombination(rngA)
			okG := s.RandomCombinationInto(&dst, rngB)
			if okW != okG {
				t.Fatalf("trial %d draw %d: nonzero ok %v vs %v", trial, draw, okW, okG)
			}
			if !okW {
				break
			}
			if dst.Vec.IsZero() {
				t.Fatalf("trial %d draw %d: RandomCombinationInto produced zero", trial, draw)
			}
			if dst.K != want.K || !dst.Vec.Equal(want.Vec) {
				t.Fatalf("trial %d draw %d: RandomCombinationInto diverged", trial, draw)
			}
		}
	}
}

// TestCombineIntoSteadyStateZeroAlloc pins the zero-allocation claim
// for the emission hot path: repeated draws into a warmed dst allocate
// nothing.
func TestCombineIntoSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const k, d = 64, 192
	s := NewSpan(k, d)
	for i := 0; i < k; i++ {
		s.Add(Encode(i, k, gf.RandomBitVec(d, rng.Uint64)))
	}
	var dst Coded
	s.RandomCombinationInto(&dst, rng) // warm dst
	allocs := testing.AllocsPerRun(100, func() {
		s.RandomCombinationInto(&dst, rng)
	})
	if allocs != 0 {
		t.Fatalf("RandomCombinationInto allocated %.1f times per draw, want 0", allocs)
	}
}

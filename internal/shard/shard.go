// Package shard partitions node ids into contiguous ranges and fans a
// phase function out over them, one worker goroutine per shard. It is
// the parallel half of the sharded lockstep engine: drivers run the
// per-node phases of a tick (sample, drain, emit-into-outbox) through
// Executor.Run and keep everything order-sensitive (churn, transport
// sends, completion checks) in the serial barrier between phases.
//
// The partition is a pure function of (n, shards): shard s owns the
// contiguous id range [lo, hi) with sizes differing by at most one,
// lower shards taking the larger ranges. Contiguity matters — the
// serial merge that reconciles per-shard outboxes walks shards in
// order and nodes in id order within each shard, which reproduces the
// serial driver's ascending-id emission order exactly.
package shard

import "sync"

// Executor fans a phase over a fixed partition of n items into
// contiguous shard ranges. The zero value is not useful; construct
// with New. An Executor is stateless between Run calls and safe to
// reuse for every tick of a run.
type Executor struct {
	n      int
	shards int
}

// New returns an executor partitioning ids [0, n) into the given
// number of contiguous shards. Shards is clamped to [1, max(n, 1)]:
// more shards than items would only mint empty ranges, and every
// driver treats shards <= 1 as "serial".
func New(n, shards int) *Executor {
	if shards < 1 {
		shards = 1
	}
	if n > 0 && shards > n {
		shards = n
	}
	return &Executor{n: n, shards: shards}
}

// N returns the number of partitioned items.
func (e *Executor) N() int { return e.n }

// Shards returns the effective (clamped) shard count.
func (e *Executor) Shards() int { return e.shards }

// Range returns shard s's contiguous half-open id range [lo, hi).
// The first n%shards shards hold one extra item each.
func (e *Executor) Range(s int) (lo, hi int) {
	size, rem := e.n/e.shards, e.n%e.shards
	if s < rem {
		lo = s * (size + 1)
		return lo, lo + size + 1
	}
	lo = rem*(size+1) + (s-rem)*size
	return lo, lo + size
}

// ShardOf returns the shard owning id. It inverts Range: for every
// shard s and id in [Range(s)), ShardOf(id) == s.
func (e *Executor) ShardOf(id int) int {
	size, rem := e.n/e.shards, e.n%e.shards
	if id < rem*(size+1) {
		return id / (size + 1)
	}
	if size == 0 {
		return e.shards - 1
	}
	return rem + (id-rem*(size+1))/size
}

// Run executes phase(s, lo, hi) for every shard and returns after all
// have finished. With one shard the phase runs inline on the caller's
// goroutine — the serial engine pays no synchronization and no
// goroutine switch, which keeps shards=1 byte-identical in timing
// behavior to the pre-sharding drivers. With more shards each phase
// runs on its own goroutine; Run is the barrier.
//
// The phase must confine itself to state owned by its id range (plus
// read-only shared state): Run provides the fan-out and the join, not
// isolation.
func (e *Executor) Run(phase func(s, lo, hi int)) {
	if e.shards == 1 {
		phase(0, 0, e.n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.shards)
	for s := 0; s < e.shards; s++ {
		go func(s int) {
			defer wg.Done()
			lo, hi := e.Range(s)
			phase(s, lo, hi)
		}(s)
	}
	wg.Wait()
}

package shard

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestPartitionCoversEveryID checks, across a grid of (n, shards)
// shapes including clamping cases, that the ranges are contiguous,
// ascending, disjoint, cover [0, n) exactly, and differ in size by at
// most one.
func TestPartitionCoversEveryID(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 1000} {
		for _, shards := range []int{-1, 0, 1, 2, 3, 4, 7, 8, 64, 2000} {
			e := New(n, shards)
			if e.Shards() < 1 {
				t.Fatalf("New(%d,%d): %d shards", n, shards, e.Shards())
			}
			if n > 0 && e.Shards() > n {
				t.Fatalf("New(%d,%d): %d shards exceed items", n, shards, e.Shards())
			}
			next, minSize, maxSize := 0, n+1, -1
			for s := 0; s < e.Shards(); s++ {
				lo, hi := e.Range(s)
				if lo != next || hi < lo {
					t.Fatalf("New(%d,%d) shard %d: range [%d,%d) after %d", n, shards, s, lo, hi, next)
				}
				if hi-lo < minSize {
					minSize = hi - lo
				}
				if hi-lo > maxSize {
					maxSize = hi - lo
				}
				next = hi
			}
			if next != n {
				t.Fatalf("New(%d,%d): ranges end at %d, want %d", n, shards, next, n)
			}
			for s := 0; s < e.Shards(); s++ {
				lo, hi := e.Range(s)
				for id := lo; id < hi; id++ {
					if got := e.ShardOf(id); got != s {
						t.Fatalf("New(%d,%d): ShardOf(%d) = %d, Range says %d", n, shards, id, got, s)
					}
				}
			}
			if maxSize-minSize > 1 {
				t.Fatalf("New(%d,%d): shard sizes span %d..%d", n, shards, minSize, maxSize)
			}
		}
	}
}

// TestRunVisitsEveryIDOnce marks every id from its owning phase and
// checks single coverage, with the shard argument matching Range.
func TestRunVisitsEveryIDOnce(t *testing.T) {
	const n = 257
	for _, shards := range []int{1, 2, 4, 16} {
		e := New(n, shards)
		seen := make([]int32, n)
		e.Run(func(s, lo, hi int) {
			wantLo, wantHi := e.Range(s)
			if lo != wantLo || hi != wantHi {
				t.Errorf("shards=%d phase %d got [%d,%d), Range says [%d,%d)", shards, s, lo, hi, wantLo, wantHi)
			}
			for id := lo; id < hi; id++ {
				atomic.AddInt32(&seen[id], 1)
			}
		})
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("shards=%d: id %d visited %d times", shards, id, c)
			}
		}
	}
}

// TestRunSingleShardInline pins the serial fast path: with one shard
// the phase runs on the calling goroutine (no spawn, no barrier), so
// shards=1 is exactly the pre-sharding serial driver.
func TestRunSingleShardInline(t *testing.T) {
	caller := goroutineID()
	var phaseGo string
	New(10, 1).Run(func(s, lo, hi int) {
		phaseGo = goroutineID()
		if s != 0 || lo != 0 || hi != 10 {
			t.Errorf("single-shard phase got (%d, %d, %d)", s, lo, hi)
		}
	})
	if phaseGo == "" {
		t.Fatal("phase never ran")
	}
	if phaseGo != caller {
		t.Errorf("single-shard Run ran on goroutine %s, caller is %s", phaseGo, caller)
	}
}

// goroutineID returns the "goroutine N" prefix of the current stack,
// which identifies the running goroutine for equality checks.
func goroutineID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	if i := bytes.IndexByte(buf, '['); i > 0 {
		return string(bytes.TrimSpace(buf[:i]))
	}
	return string(buf)
}

// TestRunParallelActuallyOverlaps only makes sense with >1 core; with
// GOMAXPROCS=1 goroutines still interleave at the barrier, so instead
// of timing we assert all phases ran before Run returned even when
// each phase blocks until every other phase has started — which can
// only finish if the phases run concurrently, not sequentially.
func TestRunParallelActuallyOverlaps(t *testing.T) {
	const shards = 4
	e := New(shards*8, shards)
	started := make(chan int, shards)
	release := make(chan struct{})
	var order []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Run(func(s, lo, hi int) {
			started <- s
			<-release
		})
	}()
	for i := 0; i < shards; i++ {
		order = append(order, <-started)
	}
	close(release)
	<-done
	if len(order) != shards {
		t.Fatalf("%d phases started, want %d", len(order), shards)
	}
}

package sim

import (
	"runtime"
	"time"
)

// Measurement is the cost profile of one measured run, captured via
// runtime.ReadMemStats around the run. It is what the performance
// observatory (cmd/repobench) records per sweep point.
type Measurement struct {
	// Runtime is the wall clock of the run.
	Runtime time.Duration
	// Allocs / Bytes are the heap allocation count and cumulative
	// allocated bytes attributable to the run (Mallocs / TotalAlloc
	// deltas).
	Allocs uint64
	Bytes  uint64
	// HeapHighWater is HeapAlloc immediately after the run, before any
	// collection: live heap plus the garbage the run left behind. The
	// heap is collected before the run starts, so this approximates
	// the run's peak footprint without the sampling overhead of a
	// watcher goroutine (which would also break lockstep determinism).
	HeapHighWater uint64
}

// Measure runs fn with the memory profiler bracketing it and returns
// the cost profile. A GC runs first so previous measurements' garbage
// is not charged to fn. fn's error passes through with the (partial)
// measurement.
//
// Measure snapshots the runtime stats exactly once, around the whole
// run — never per worker — so a run that fans out across goroutines
// (the sharded lockstep engine, the async runtime) is charged exactly
// once for everything its workers allocate. For such multi-worker runs
// the deltas are process-global: they include every goroutine that
// allocated during the bracket, so they are an upper bound on the
// run's own cost, exact when nothing else in the process allocates
// concurrently. HeapHighWater keeps the same meaning at any worker
// count — live heap plus uncollected garbage at run end — which is
// what the large-n memory smokes pin. Single-threaded (serial
// lockstep) runs remain the exact, seed-reproducible case.
func Measure(fn func() error) (Measurement, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Measurement{
		Runtime:       elapsed,
		Allocs:        after.Mallocs - before.Mallocs,
		Bytes:         after.TotalAlloc - before.TotalAlloc,
		HeapHighWater: after.HeapAlloc,
	}, err
}

package sim

import (
	"errors"
	"testing"
)

func TestMeasureCountsAllocations(t *testing.T) {
	var sink [][]byte
	m, err := Measure(func() error {
		for i := 0; i < 100; i++ {
			sink = append(sink, make([]byte, 4096))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Allocs < 100 {
		t.Errorf("Allocs = %d, want >= 100", m.Allocs)
	}
	if m.Bytes < 100*4096 {
		t.Errorf("Bytes = %d, want >= %d", m.Bytes, 100*4096)
	}
	if m.HeapHighWater < 100*4096 {
		t.Errorf("HeapHighWater = %d, want >= %d (the slices are live)", m.HeapHighWater, 100*4096)
	}
	if m.Runtime <= 0 {
		t.Errorf("Runtime = %v, want > 0", m.Runtime)
	}
	_ = sink
}

func TestMeasurePassesErrorThrough(t *testing.T) {
	want := errors.New("boom")
	if _, err := Measure(func() error { return want }); !errors.Is(err, want) {
		t.Errorf("Measure error = %v, want %v", err, want)
	}
}

package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// TrialFunc is one seeded trial. It must be a pure function of the seed
// (construct all randomness from the seed inside the function) so that
// serial and parallel sweeps produce identical results.
type TrialFunc func(seed int64) (float64, error)

// ParallelConfig tunes a parallel sweep.
type ParallelConfig struct {
	// Workers is the worker-pool width; <= 0 means GOMAXPROCS. Workers
	// only changes wall-clock time, never results: trials are merged in
	// seed order.
	Workers int
	// Progress, when non-nil, is called after each completed trial with
	// the running completion count and the total. Calls are serialized
	// and done counts are strictly increasing.
	Progress func(done, total int)
}

func (c ParallelConfig) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ParallelSeeded runs fn for seeds 0..n-1 on a bounded worker pool and
// returns the results in seed order. On failure the sweep aborts early
// (workers stop claiming seeds) and the error of the lowest failing
// seed among the trials that ran is reported, in the serial sweep's
// "sim: trial %d" format. Cancelling ctx likewise stops workers from
// claiming new seeds; in-flight trials finish and the context error is
// returned.
func ParallelSeeded[T any](ctx context.Context, cfg ParallelConfig, n int, fn func(seed int64) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	var (
		next      atomic.Int64
		completed atomic.Int64
		failed    atomic.Bool
		mu        sync.Mutex
		done      int
		wg        sync.WaitGroup
	)
	for w := cfg.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed := next.Add(1) - 1
				if seed >= int64(n) || failed.Load() || ctx.Err() != nil {
					return
				}
				out[seed], errs[seed] = fn(seed)
				if errs[seed] != nil {
					failed.Store(true)
				}
				completed.Add(1)
				if cfg.Progress != nil {
					mu.Lock()
					done++
					cfg.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for seed, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: trial %d: %w", seed, err)
		}
	}
	if completed.Load() < int64(n) {
		// Only possible via cancellation: workers stopped claiming seeds.
		return nil, ctx.Err()
	}
	return out, nil
}

// ParallelTrials is the concurrent counterpart of Trials: it runs fn for
// seeds 0..n-1 on a bounded worker pool and summarizes the results.
// Because results are merged in seed order and trials derive all
// randomness from their seed, the Summary is bit-identical to the one
// Trials returns for the same n and fn, at any worker count.
func ParallelTrials(ctx context.Context, cfg ParallelConfig, n int, fn TrialFunc) (Summary, error) {
	xs, err := ParallelSeeded(ctx, cfg, n, fn)
	if err != nil {
		return Summary{}, err
	}
	return Summarize(xs), nil
}

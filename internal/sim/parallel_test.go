package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// trialFn is a deterministic, intentionally uneven workload: trials
// finish at different speeds so parallel completion order differs from
// seed order, which is exactly what the seed-ordered merge must hide.
func trialFn(seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	steps := 100 + rng.Intn(int(seed)%7*300+1)
	acc := 0.0
	for i := 0; i < steps; i++ {
		acc += rng.Float64()
	}
	return acc, nil
}

// TestParallelTrialsMatchesSerial is the differential property test: for
// the same seed set, ParallelTrials must produce a Summary bit-identical
// to the serial Trials at every worker count.
func TestParallelTrialsMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 3, 17, 64} {
		want, err := Trials(n, trialFn)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			got, err := ParallelTrials(context.Background(), ParallelConfig{Workers: workers}, n, trialFn)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("n=%d workers=%d: parallel summary %+v != serial %+v", n, workers, got, want)
			}
		}
	}
}

// TestParallelSeededOrder checks that results land at their seed index
// regardless of completion order.
func TestParallelSeededOrder(t *testing.T) {
	const n = 100
	out, err := ParallelSeeded(context.Background(), ParallelConfig{Workers: 8}, n,
		func(seed int64) (int64, error) { return seed * seed, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != int64(i)*int64(i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestParallelTrialsErrorIsLowestSeed checks the serial-compatible error
// contract: the reported failure is the lowest failing seed even when a
// later worker fails first.
func TestParallelTrialsErrorIsLowestSeed(t *testing.T) {
	boom := errors.New("boom")
	_, err := ParallelTrials(context.Background(), ParallelConfig{Workers: 4}, 20,
		func(seed int64) (float64, error) {
			if seed%2 == 1 {
				return 0, fmt.Errorf("seed %d: %w", seed, boom)
			}
			return float64(seed), nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := "sim: trial 1:"; !strings.HasPrefix(err.Error(), want) {
		t.Fatalf("err = %q, want prefix %q (lowest failing seed)", err, want)
	}
}

// TestParallelTrialsFailFast checks that a failing trial stops the
// sweep from running all remaining seeds.
func TestParallelTrialsFailFast(t *testing.T) {
	const n = 100000
	var ran atomic.Int64
	_, err := ParallelTrials(context.Background(), ParallelConfig{Workers: 4}, n,
		func(seed int64) (float64, error) {
			ran.Add(1)
			if seed == 0 {
				return 0, errors.New("boom")
			}
			return float64(seed), nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got >= n {
		t.Errorf("all %d trials ran despite an early failure", got)
	}
}

// TestParallelTrialsCancellation checks that cancelling the context
// aborts the sweep with the context error instead of partial results.
func TestParallelTrialsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := ParallelTrials(ctx, ParallelConfig{Workers: 2}, 10000,
		func(seed int64) (float64, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			return float64(seed), nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelTrialsProgress checks progress reporting is serialized,
// strictly increasing, and complete.
func TestParallelTrialsProgress(t *testing.T) {
	const n = 50
	last := 0
	_, err := ParallelTrials(context.Background(), ParallelConfig{
		Workers: 8,
		Progress: func(done, total int) {
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			if done != last+1 {
				t.Errorf("done = %d after %d, want strictly increasing by 1", done, last)
			}
			last = done
		},
	}, n, trialFn)
	if err != nil {
		t.Fatal(err)
	}
	if last != n {
		t.Errorf("final progress %d, want %d", last, n)
	}
}

// TestParallelTrialsEmpty mirrors Trials on n = 0.
func TestParallelTrialsEmpty(t *testing.T) {
	got, err := ParallelTrials(context.Background(), ParallelConfig{}, 0, trialFn)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Trials(0, trialFn)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("empty sweep: parallel %+v != serial %+v", got, want)
	}
}

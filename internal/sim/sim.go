// Package sim is the experiment harness shared by cmd/experiments and
// the benchmark suite: repeated seeded trials, summary statistics,
// log-log slope fitting (for the paper's polynomial scaling claims), and
// aligned-column table rendering.
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics over repeated trials.
type Summary struct {
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	N      int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, x := range sorted {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Trials runs fn for seeds 0..n-1 and summarizes the results. Errors
// abort the sweep. ParallelTrials is the concurrent equivalent; both
// produce identical Summaries for the same n and fn.
func Trials(n int, fn TrialFunc) (Summary, error) {
	xs := make([]float64, 0, n)
	for seed := int64(0); seed < int64(n); seed++ {
		x, err := fn(seed)
		if err != nil {
			return Summary{}, fmt.Errorf("sim: trial %d: %w", seed, err)
		}
		xs = append(xs, x)
	}
	return Summarize(xs), nil
}

// FitLogLogSlope fits y = c * x^slope by least squares in log-log space.
// It is how the harness turns measured round counts into scaling
// exponents comparable to the paper's bounds (e.g. slope -2 vs b for
// Theorem 2.3, slope -1 for Theorem 2.1).
func FitLogLogSlope(xs, ys []float64) (slope float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("sim: need >= 2 paired points, got %d and %d", len(xs), len(ys))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("sim: log-log fit requires positive values (point %d: %g, %g)", i, xs[i], ys[i])
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("sim: degenerate x values")
	}
	return (n*sxy - sx*sy) / den, nil
}

// Table is an aligned-column result table with a caption, rendered the
// same way by the CLI and the benchmark suite (see DESIGN.md for the
// experiment index).
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
	// Notes are free-form lines printed after the table (fitted slopes,
	// pass/fail verdicts).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Caption)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("  note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MarshalTable returns the table as a JSON-ready structure (caption,
// header, rows, notes) for machine consumption of experiment results.
func (t *Table) MarshalTable() map[string]any {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	notes := t.Notes
	if notes == nil {
		notes = []string{}
	}
	return map[string]any{
		"caption": t.Caption,
		"header":  t.Header,
		"rows":    rows,
		"notes":   notes,
	}
}

// F formats a float compactly for table cells.
func F(x float64) string {
	switch {
	case x == math.Trunc(x) && math.Abs(x) < 1e9:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }

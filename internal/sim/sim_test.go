package sim

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{5}, Summary{Mean: 5, Median: 5, Min: 5, Max: 5, N: 1}},
		{"odd", []float64{3, 1, 2}, Summary{Mean: 2, Median: 2, Min: 1, Max: 3, N: 3}},
		{"even", []float64{4, 1, 3, 2}, Summary{Mean: 2.5, Median: 2.5, Min: 1, Max: 4, N: 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.xs)
			if got != tt.want {
				t.Errorf("Summarize(%v) = %+v, want %+v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestTrials(t *testing.T) {
	s, err := Trials(5, func(seed int64) (float64, error) { return float64(seed), nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 2 {
		t.Errorf("summary = %+v", s)
	}
	wantErr := errors.New("boom")
	if _, err := Trials(3, func(seed int64) (float64, error) {
		if seed == 1 {
			return 0, wantErr
		}
		return 0, nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
}

// TestFitLogLogSlopeExact recovers exponents from exact power laws.
func TestFitLogLogSlopeExact(t *testing.T) {
	prop := func(rawSlope int8, rawC uint8) bool {
		slope := float64(rawSlope%4) + 0.5 // in [-3.5, 3.5]
		c := float64(rawC%16) + 1
		xs := []float64{1, 2, 4, 8, 16}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, slope)
		}
		got, err := FitLogLogSlope(xs, ys)
		return err == nil && math.Abs(got-slope) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitLogLogSlopeErrors(t *testing.T) {
	if _, err := FitLogLogSlope([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLogLogSlope([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("non-positive value accepted")
	}
	if _, err := FitLogLogSlope([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, err := FitLogLogSlope([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Caption: "E0: demo",
		Header:  []string{"n", "rounds"},
	}
	tbl.AddRow("8", "123")
	tbl.AddRow("16", "4567")
	tbl.AddNote("slope %.2f", 1.0)
	out := tbl.String()
	for _, want := range []string{"E0: demo", "n   rounds", "--", "16  4567", "note: slope 1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestMarshalTable(t *testing.T) {
	tbl := Table{Caption: "c", Header: []string{"a"}}
	tbl.AddRow("1")
	tbl.AddNote("n")
	m := tbl.MarshalTable()
	if m["caption"] != "c" {
		t.Error("caption missing")
	}
	if rows, ok := m["rows"].([][]string); !ok || len(rows) != 1 {
		t.Error("rows malformed")
	}
	empty := (&Table{Caption: "x"}).MarshalTable()
	if rows, ok := empty["rows"].([][]string); !ok || rows == nil {
		t.Error("empty rows should be non-nil for JSON")
	}
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		x    float64
		want string
	}{
		{5, "5"},
		{123456, "123456"},
		{1.5, "1.500"},
		{123.456, "123.5"},
	}
	for _, tt := range tests {
		if got := F(tt.x); got != tt.want {
			t.Errorf("F(%v) = %q, want %q", tt.x, got, tt.want)
		}
	}
	if I(42) != "42" {
		t.Error("I(42)")
	}
}

package stable

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/graph"
	"repro/internal/rlnc"
)

// AblationMetaRounds measures the role of the second share step in the
// share-pass-share meta-round (the design choice DESIGN.md calls out):
// it runs repeated meta-rounds over a fixed patching of a static graph,
// with all blocks initially at node 0, until every node can decode, and
// returns the total rounds consumed. Finding: disabling the second
// share is a net win (~30% fewer total rounds) because consecutive
// meta-rounds fuse — the next meta-round's first share distributes what
// the pass delivered, doing the second share's job. The paper's
// three-step form buys a per-meta-round-independent analysis, not
// per-round progress.
func AblationMetaRounds(g *graph.Graph, d, blocks, payload, chunkBits int, secondShare bool, seed int64, maxMeta int) (int, error) {
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	s := dynnet.NewSession(n, adversary.NewStatic(g), dynnet.Config{})
	patches, err := BuildPatches(s, d, rng)
	if err != nil {
		return 0, err
	}
	if err := patches.Validate(g); err != nil {
		return 0, err
	}
	spans := make([]*rlnc.Span, n)
	rngs := make([]*rand.Rand, n)
	for i := range spans {
		spans[i] = rlnc.NewSpan(blocks, payload)
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*131 + 1))
	}
	for j := 0; j < blocks; j++ {
		spans[0].Add(rlnc.Encode(j, blocks, gf.RandomBitVec(payload, rng.Uint64)))
	}
	decoded := func() bool {
		for _, sp := range spans {
			if !sp.CanDecode() {
				return false
			}
		}
		return true
	}
	for meta := 0; meta < maxMeta; meta++ {
		if _, err := metaRoundOpt(s, patches, spans, rngs, chunkBits, secondShare); err != nil {
			return 0, err
		}
		if decoded() {
			return s.Metrics().Rounds, nil
		}
	}
	return 0, fmt.Errorf("stable: ablation did not decode in %d meta-rounds (secondShare=%v)", maxMeta, secondShare)
}

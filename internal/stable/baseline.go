package stable

import (
	"fmt"

	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/token"
)

// The T-stable token-forwarding baseline (the Theorem 2.1 algorithm
// generalized to exploit stability the way Kuhn et al.'s T-interval
// algorithm does): tokens are processed in batches of cT/2, where c is
// the tokens-per-message capacity. Within each stability window, nodes
// pipeline the current batch smallest-first, resending from the start of
// the batch whenever the window (and hence possibly the topology)
// changes. Because every batch token reaches distance T - batch rank
// within one window, the set of nodes knowing the whole batch grows by
// Theta(T) per window, so a batch completes in O(n/T) windows = O(n)
// rounds, and all k tokens take O(nk/(cT) + ...) rounds — the linear-in-T
// speedup that Theorem 2.1 proves optimal for knowledge-based token
// forwarding.

// FloodNode is one participant in the batched baseline.
type FloodNode struct {
	set       *token.Set
	finished  map[token.UID]bool
	sentBatch map[token.UID]bool
	c         int
	t         int
	batchSize int
	period    int // rounds per batch
	total     int
	round     int
}

var _ dynnet.Node = (*FloodNode)(nil)

// NewFloodNode returns a baseline node for an n-node network and k
// tokens, sending c tokens per message with stability parameter t.
func NewFloodNode(n, k, c, t int, initial []token.Token) *FloodNode {
	set := token.NewSet()
	for _, tk := range initial {
		set.Add(tk)
	}
	batchSize := c * t / 2
	if batchSize < c {
		batchSize = c
	}
	// ceil(2n/T)+2 windows of T rounds each: enough for the know-all
	// frontier to cross the network at Theta(T) nodes per window.
	windows := (2*n+t-1)/t + 2
	period := windows * t
	batches := (k + batchSize - 1) / batchSize
	return &FloodNode{
		set:       set,
		finished:  make(map[token.UID]bool, k),
		sentBatch: make(map[token.UID]bool, batchSize),
		c:         c,
		t:         t,
		batchSize: batchSize,
		period:    period,
		total:     batches * period,
	}
}

// Set exposes the node's knowledge.
func (f *FloodNode) Set() *token.Set { return f.set }

// Schedule returns the node's total round schedule.
func (f *FloodNode) Schedule() int { return f.total }

// batch returns the current batch: the batchSize smallest unfinished
// tokens the node knows.
func (f *FloodNode) batch() []token.Token {
	var out []token.Token
	for _, tk := range f.set.Tokens() {
		if f.finished[tk.UID] {
			continue
		}
		out = append(out, tk)
		if len(out) == f.batchSize {
			break
		}
	}
	return out
}

// Send broadcasts the next c batch tokens not yet sent this window.
func (f *FloodNode) Send(int) dynnet.Message {
	var out []token.Token
	for _, tk := range f.batch() {
		if f.sentBatch[tk.UID] {
			continue
		}
		out = append(out, tk)
		if len(out) == f.c {
			break
		}
	}
	if len(out) == 0 {
		return nil
	}
	for _, tk := range out {
		f.sentBatch[tk.UID] = true
	}
	return forwarding.TokensMsg{Tokens: out}
}

// Receive merges tokens; at window boundaries the resend filter resets,
// and at batch boundaries the batch is finalized.
func (f *FloodNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		tm, ok := m.(forwarding.TokensMsg)
		if !ok {
			continue
		}
		for _, tk := range tm.Tokens {
			f.set.Add(tk)
		}
	}
	f.round++
	if f.round%f.period == 0 {
		for _, tk := range f.batch() {
			f.finished[tk.UID] = true
		}
		f.sentBatch = make(map[token.UID]bool, f.batchSize)
		return
	}
	if f.round%f.t == 0 {
		f.sentBatch = make(map[token.UID]bool, f.batchSize)
	}
}

// Done reports whether all batches have elapsed.
func (f *FloodNode) Done() bool { return f.round >= f.total }

// RunFlood runs the T-stable forwarding baseline to completion on its
// deterministic schedule and verifies every node learned all k tokens.
func RunFlood(dist token.Distribution, k, b, d, t int, adv dynnet.Adversary) (int, error) {
	n := len(dist)
	c, err := forwarding.TokensPerMessage(b, d)
	if err != nil {
		return 0, err
	}
	nodes := make([]dynnet.Node, n)
	impls := make([]*FloodNode, n)
	for i := range nodes {
		impls[i] = NewFloodNode(n, k, c, t, dist[i])
		nodes[i] = impls[i]
	}
	e := dynnet.NewEngine(nodes, adv, dynnet.Config{BitBudget: b, MaxRounds: impls[0].Schedule() + 1})
	rounds, err := e.Run()
	if err != nil {
		return rounds, err
	}
	for i, impl := range impls {
		if impl.Set().Len() < k {
			return rounds, fmt.Errorf("stable: baseline node %d knows %d of %d tokens", i, impl.Set().Len(), k)
		}
	}
	return rounds, nil
}

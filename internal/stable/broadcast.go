package stable

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
)

// Geometry fixes the Section 8.2 parameters for a T-stable broadcast:
// how large the patches are, how coded vectors are chunked into b-bit
// messages, and how the vector is split between block coefficients and
// block payload. The paper's throughput claim is that Blocks*Payload —
// the information delivered per broadcast — scales as (bT)^2.
type Geometry struct {
	// D is the patch radius (the paper's D = Theta(T / log n)).
	D int
	// ChunkBits is the vector piece carried per message.
	ChunkBits int
	// Chunks is the number of pieces per coded vector.
	Chunks int
	// Blocks is the coefficient dimension (number of blocks coded).
	Blocks int
	// Payload is the per-block size in bits.
	Payload int
	// BuildBudget is the rounds reserved per window for patch building.
	BuildBudget int
}

// VectorBits returns the coded vector length Blocks + Payload.
func (g Geometry) VectorBits() int { return g.Blocks + g.Payload }

// MetaCost returns the rounds one share-pass-share meta-round consumes:
// two share steps of 2(C+D) rounds around one pass step of C rounds.
func (g Geometry) MetaCost() int { return 5*g.Chunks + 4*g.D }

// Capacity returns the total bits delivered by one full broadcast.
func (g Geometry) Capacity() int { return g.Blocks * g.Payload }

// PlanGeometry derives a Geometry for an n-node network with b-bit
// messages and T-stable windows. It reserves half of each window for
// distributed patch building and spends the rest on meta-rounds,
// scaling the coded vector so one meta-round fits. It errors when T is
// too small for even a single-chunk meta-round, the regime in which
// Section 8's machinery cannot help.
func PlanGeometry(n, b, t int) (Geometry, error) {
	chunkBits := b - chunkHeaderBits
	if chunkBits < 8 {
		return Geometry{}, fmt.Errorf("stable: budget b=%d leaves no room for chunk headers (%d bits)", b, chunkHeaderBits)
	}
	log2n := 1
	for m := n; m > 2; m /= 2 {
		log2n++
	}
	d := t / (16 * log2n)
	if d < 1 {
		d = 1
	}
	build := t / 2
	c := (t - build - 4*d) / 5
	if c < 1 {
		return Geometry{}, fmt.Errorf("stable: window T=%d too small for patch radius D=%d (needs %d rounds per meta-round)", t, d, 5+4*d+build)
	}
	l := c * chunkBits
	return Geometry{
		D:           d,
		ChunkBits:   chunkBits,
		Chunks:      c,
		Blocks:      l / 2,
		Payload:     l - l/2,
		BuildBudget: build,
	}, nil
}

// Shrink returns a geometry whose coded vector holds at most
// maxVectorBits bits (but at least one chunk). Workloads smaller than
// the window's full capacity use it to keep meta-rounds and decoding
// proportional to the data actually shipped; window feasibility is
// preserved because the meta-round only gets cheaper.
func (g Geometry) Shrink(maxVectorBits int) Geometry {
	c := maxVectorBits / g.ChunkBits
	if c < 1 {
		c = 1
	}
	if c >= g.Chunks {
		return g
	}
	l := c * g.ChunkBits
	g.Chunks = c
	g.Blocks = l / 2
	g.Payload = l - l/2
	return g
}

// idleNode burns rounds silently (used to align to window boundaries).
type idleNode struct{ left int }

func (i *idleNode) Send(int) dynnet.Message       { return nil }
func (i *idleNode) Receive(int, []dynnet.Message) { i.left-- }
func (i *idleNode) Done() bool                    { return i.left <= 0 }

func idle(s *dynnet.Session, roundsToIdle int) error {
	if roundsToIdle <= 0 {
		return nil
	}
	nodes := make([]dynnet.Node, s.N())
	for i := range nodes {
		nodes[i] = &idleNode{left: roundsToIdle}
	}
	return s.RunFixed(nodes, roundsToIdle)
}

// Broadcast runs the Lemma 8.1 T-stable indexed broadcast over an
// existing session driven by a T-stable adversary: node i injects the
// coded vectors initial[i] (Blocks coefficients, Payload bits each);
// windows alternate patch building and share-pass-share meta-rounds
// until every node can decode all blocks. It returns each node's
// decoded payloads.
func Broadcast(
	s *dynnet.Session,
	tadv *adversary.TStable,
	geo Geometry,
	initial [][]rlnc.Coded,
	rngs []*rand.Rand,
	maxWindows int,
) ([][]gf.BitVec, error) {
	n := s.N()
	if len(initial) != n {
		return nil, fmt.Errorf("stable: %d initial vector sets for %d nodes", len(initial), n)
	}
	t := tadv.T()
	spans := make([]*rlnc.Span, n)
	for i := range spans {
		spans[i] = rlnc.NewSpan(geo.Blocks, geo.Payload)
		for _, c := range initial[i] {
			spans[i].Add(c)
		}
	}
	if maxWindows <= 0 {
		maxWindows = 4*(n/geo.D+geo.Blocks) + 64
	}

	// Decodability is monotone (spans only gain rank), so the check
	// resumes at the first node not yet known to decode instead of
	// rescanning the whole network every meta-round.
	firstUndecoded := 0
	decoded := func() bool {
		for firstUndecoded < len(spans) {
			if !spans[firstUndecoded].CanDecode() {
				return false
			}
			firstUndecoded++
		}
		return true
	}

	for w := 0; w < maxWindows && !decoded(); w++ {
		// Align to the next window boundary.
		if mod := s.Round() % t; mod != 0 {
			if err := idle(s, t-mod); err != nil {
				return nil, err
			}
		}
		windowEnd := s.Round() + t

		// Distributed patch building; it must fit in its budget.
		buildStart := s.Round()
		patches, err := BuildPatches(s, geo.D, rngs[0])
		if err != nil {
			return nil, err
		}
		if s.Round() > buildStart+geo.BuildBudget || s.Round() >= windowEnd {
			return nil, fmt.Errorf("stable: patch building took %d rounds, budget %d (window T=%d too tight)",
				s.Round()-buildStart, geo.BuildBudget, t)
		}
		if cur := tadv.Current(); cur != nil {
			if err := patches.Validate(cur); err != nil {
				return nil, fmt.Errorf("stable: patch invariants violated: %w", err)
			}
		}

		// Meta-rounds while they fit in the window.
		for s.Round()+geo.MetaCost() <= windowEnd {
			if _, err := metaRound(s, patches, spans, rngs, geo.ChunkBits); err != nil {
				return nil, err
			}
			if decoded() {
				break
			}
		}
	}

	if !decoded() {
		return nil, fmt.Errorf("stable: broadcast did not complete in %d windows", maxWindows)
	}
	out := make([][]gf.BitVec, n)
	for i, sp := range spans {
		payloads, err := sp.Decode()
		if err != nil {
			return nil, fmt.Errorf("stable: node %d: %w", i, err)
		}
		out[i] = payloads
	}
	return out, nil
}

package stable

import (
	"fmt"

	"repro/internal/gf"
)

// splitChunks cuts v into ceil(len/chunkBits) pieces of chunkBits bits
// (the last padded implicitly by Slice semantics: it is shorter).
func splitChunks(v gf.BitVec, chunkBits int) []gf.BitVec {
	if chunkBits < 1 {
		panic("stable: chunkBits must be >= 1")
	}
	var out []gf.BitVec
	for lo := 0; lo < v.Len(); lo += chunkBits {
		hi := lo + chunkBits
		if hi > v.Len() {
			hi = v.Len()
		}
		out = append(out, v.Slice(lo, hi))
	}
	return out
}

// joinChunks reassembles chunks produced by splitChunks into a vector of
// total bits.
func joinChunks(chunks []gf.BitVec, total int) (gf.BitVec, error) {
	v := gf.NewBitVec(total)
	off := 0
	for _, c := range chunks {
		if off+c.Len() > total {
			return gf.BitVec{}, fmt.Errorf("stable: chunks exceed %d bits", total)
		}
		c.CopyInto(v, off)
		off += c.Len()
	}
	if off != total {
		return gf.BitVec{}, fmt.Errorf("stable: chunks cover %d of %d bits", off, total)
	}
	return v, nil
}

// numChunks returns how many chunks a vector of total bits needs.
func numChunks(total, chunkBits int) int {
	return (total + chunkBits - 1) / chunkBits
}

// Package stable implements Section 8 of the paper: exploiting T-stable
// dynamic networks (the topology changes only every T rounds) for a
// quadratic T^2 speedup via network coding. It contains the distributed
// patch-building protocol of Section 8.1 (Luby's MIS on the powered
// graph, simulated with hop-limited flooding), the share-pass-share
// coded broadcast of Section 8.2 (Lemma 8.1), the T-stable k-token
// dissemination driver of Section 8.3 (Theorem 2.4), and the
// token-forwarding baseline it is compared against.
package stable

import (
	"fmt"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/forwarding"
	"repro/internal/graph"
)

// maxLubyIterations bounds the Luby loop; the expected iteration count
// is O(log n) with high probability.
func maxLubyIterations(n int) int {
	iters := 8
	for m := n; m > 1; m /= 2 {
		iters += 4
	}
	return iters
}

// BuildPatchesCostBound returns a conservative upper bound on the rounds
// BuildPatches may consume for an n-node network with patch radius d.
// Callers use it to size stability windows.
func BuildPatchesCostBound(n, d int) int {
	return maxLubyIterations(n)*2*d + (2*d + 2)
}

// BuildPatches runs the distributed Section 8.1 patch construction as
// phases of the session (whose adversary must be serving a stable
// connected graph for the duration):
//
//  1. Luby iterations on G^d: active nodes draw unique random
//     priorities; flooding the maximum for d rounds computes each node's
//     maximum active priority within distance d; local maxima join the
//     MIS; flooding a deactivation bit for d rounds removes their
//     d-neighbourhoods.
//  2. A claim wave: leaders flood (leader, distance) claims for 2d+2
//     rounds; every node adopts the closest (ties: lowest-ID) leader and
//     records the neighbour that delivered the winning claim as its
//     tree parent.
//
// The returned Patching satisfies the Section 8.1 invariants (validated
// by the caller against the actual graph in tests).
func BuildPatches(s *dynnet.Session, d int, rng *rand.Rand) (*graph.Patching, error) {
	n := s.N()
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	inMIS := make([]bool, n)
	remaining := n

	for iter := 0; remaining > 0; iter++ {
		if iter >= maxLubyIterations(n) {
			return nil, fmt.Errorf("stable: Luby did not converge in %d iterations", iter)
		}
		// Unique positive priorities for active nodes; zero for inactive
		// nodes, which then act purely as relays.
		prio := make([]uint64, n)
		for i := range prio {
			if active[i] {
				prio[i] = (uint64(rng.Uint32())+1)<<32 | uint64(uint32(i))
			}
		}
		maxNodes := make([]*forwarding.MaxFloodNode, n)
		nodes := make([]dynnet.Node, n)
		for i := range nodes {
			maxNodes[i] = forwarding.NewMaxFloodNode(prio[i], 64, d)
			nodes[i] = maxNodes[i]
		}
		if err := s.RunFixed(nodes, d); err != nil {
			return nil, err
		}
		joined := make([]bool, n)
		for i := range joined {
			joined[i] = active[i] && maxNodes[i].Best() == prio[i]
		}
		// Deactivation wave: a 1-bit flood from fresh MIS members for d
		// rounds deactivates their d-neighbourhoods.
		deact := make([]*forwarding.MaxFloodNode, n)
		for i := range nodes {
			own := uint64(0)
			if joined[i] {
				own = 1
			}
			deact[i] = forwarding.NewMaxFloodNode(own, 1, d)
			nodes[i] = deact[i]
		}
		if err := s.RunFixed(nodes, d); err != nil {
			return nil, err
		}
		for i := range active {
			if joined[i] {
				inMIS[i] = true
			}
			if active[i] && deact[i].Best() == 1 {
				active[i] = false
				remaining--
			}
		}
	}

	// Claim wave.
	claims := make([]*claimNode, n)
	nodes := make([]dynnet.Node, n)
	rounds := 2*d + 2
	for i := range nodes {
		claims[i] = newClaimNode(i, inMIS[i], rounds)
		nodes[i] = claims[i]
	}
	if err := s.RunFixed(nodes, rounds); err != nil {
		return nil, err
	}

	p := &graph.Patching{
		D:       d,
		PatchOf: make([]int, n),
		Parent:  make([]int, n),
		Depth:   make([]int, n),
	}
	for i := range claims {
		if inMIS[i] {
			p.Leaders = append(p.Leaders, i)
		}
		if claims[i].bestLeader < 0 {
			return nil, fmt.Errorf("stable: node %d received no claim (graph disconnected or d too small)", i)
		}
		p.PatchOf[i] = claims[i].bestLeader
		p.Parent[i] = claims[i].parent
		p.Depth[i] = claims[i].bestDist
	}
	return p, nil
}

// claimMsg carries a leader claim: "I am at distance Dist from Leader".
type claimMsg struct {
	Leader int
	Dist   int
	Sender int
}

// Bits charges three O(log n)-bit fields.
func (claimMsg) Bits() int { return 96 }

// claimNode adopts the best (lowest distance, then lowest leader) claim
// it hears and rebroadcasts it, recording the delivering neighbour as
// its tree parent.
type claimNode struct {
	id         int
	bestLeader int
	bestDist   int
	parent     int
	schedule   int
	elapsed    int
}

var _ dynnet.Node = (*claimNode)(nil)

func newClaimNode(id int, leader bool, schedule int) *claimNode {
	c := &claimNode{id: id, bestLeader: -1, bestDist: 1 << 30, parent: -1, schedule: schedule}
	if leader {
		c.bestLeader = id
		c.bestDist = 0
	}
	return c
}

func (c *claimNode) Send(int) dynnet.Message {
	if c.bestLeader < 0 {
		return nil
	}
	return claimMsg{Leader: c.bestLeader, Dist: c.bestDist, Sender: c.id}
}

func (c *claimNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		cm, ok := m.(claimMsg)
		if !ok {
			continue
		}
		dist := cm.Dist + 1
		better := dist < c.bestDist ||
			(dist == c.bestDist && cm.Leader < c.bestLeader) ||
			(dist == c.bestDist && cm.Leader == c.bestLeader && cm.Sender < c.parent)
		if better {
			c.bestLeader = cm.Leader
			c.bestDist = dist
			c.parent = cm.Sender
		}
	}
	c.elapsed++
}

func (c *claimNode) Done() bool { return c.elapsed >= c.schedule }

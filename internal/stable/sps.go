package stable

import (
	"fmt"
	"math/rand"

	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/graph"
	"repro/internal/rlnc"
)

// Section 8.2's share-pass-share meta-round operates on coded vectors of
// L = B + S bits (B block coefficients plus an S-bit block payload),
// far larger than one b-bit message. Vectors move through three
// pipelined phases per meta-round, each exchanging chunkBits-bit pieces:
//
//	share: every patch computes one random linear combination of the
//	       union of its members' received vectors (pipelined tree sum
//	       to the leader), and distributes it to all members
//	       (pipelined tree broadcast);
//	pass:  every node broadcasts its patch's combination to its
//	       neighbours, which may be in other patches;
//	share: repeated, folding in the passed vectors.

// chunkHeaderBits is the per-chunk header: kind, sender, leader and
// chunk index at O(log n) bits each.
const chunkHeaderBits = 4 * 32

// chunkMsg carries one piece of a coded vector through a pipeline phase.
type chunkMsg struct {
	Sender int
	Leader int
	Idx    int
	Data   gf.BitVec
}

// Bits charges the header plus the piece.
func (m chunkMsg) Bits() int { return chunkHeaderBits + m.Data.Len() }

// sumUpNode implements the pipelined converge-cast of the share step:
// node at depth delta sends its accumulated chunk i at local round
// i + (D - delta), by which time all children (depth delta+1, sending at
// i + D - delta - 1) have contributed. After C + D rounds the leader
// holds the patch-wide XOR.
type sumUpNode struct {
	id       int
	depth    int
	maxDepth int
	children map[int]bool
	chunks   []gf.BitVec
	elapsed  int
}

var _ dynnet.Node = (*sumUpNode)(nil)

func newSumUpNode(id int, p *graph.Patching, children map[int]bool, local gf.BitVec, chunkBits, maxDepth int) *sumUpNode {
	return &sumUpNode{
		id:       id,
		depth:    p.Depth[id],
		maxDepth: maxDepth,
		children: children,
		chunks:   splitChunks(local, chunkBits),
	}
}

func (u *sumUpNode) schedule() int { return len(u.chunks) + u.maxDepth }

func (u *sumUpNode) Send(int) dynnet.Message {
	i := u.elapsed - (u.maxDepth - u.depth)
	if i < 0 || i >= len(u.chunks) || u.depth == 0 {
		return nil // leaders never send upward
	}
	return chunkMsg{Sender: u.id, Idx: i, Data: u.chunks[i]}
}

func (u *sumUpNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		cm, ok := m.(chunkMsg)
		if !ok || !u.children[cm.Sender] {
			continue
		}
		u.chunks[cm.Idx].Xor(cm.Data)
	}
	u.elapsed++
}

func (u *sumUpNode) Done() bool { return u.elapsed >= u.schedule() }

// downNode implements the pipelined tree broadcast: the leader emits
// chunk i at local round i; a node at depth delta relays chunk i at
// round i + delta, having received it from its parent one round earlier.
type downNode struct {
	id       int
	depth    int
	parent   int
	maxDepth int
	chunks   []gf.BitVec // nil until received (leader starts full)
	elapsed  int
}

var _ dynnet.Node = (*downNode)(nil)

func newDownNode(id int, p *graph.Patching, chunks []gf.BitVec, nChunks, maxDepth int) *downNode {
	d := &downNode{
		id:       id,
		depth:    p.Depth[id],
		parent:   p.Parent[id],
		maxDepth: maxDepth,
	}
	if d.depth == 0 {
		d.chunks = chunks
	} else {
		d.chunks = make([]gf.BitVec, nChunks)
	}
	return d
}

func (d *downNode) schedule() int { return len(d.chunks) + d.maxDepth }

func (d *downNode) Send(int) dynnet.Message {
	i := d.elapsed - d.depth
	if i < 0 || i >= len(d.chunks) || d.chunks[i].Len() == 0 {
		return nil
	}
	return chunkMsg{Sender: d.id, Idx: i, Data: d.chunks[i]}
}

func (d *downNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		cm, ok := m.(chunkMsg)
		if !ok || cm.Sender != d.parent {
			continue
		}
		if d.chunks[cm.Idx].Len() == 0 {
			d.chunks[cm.Idx] = cm.Data.Clone()
		}
	}
	d.elapsed++
}

func (d *downNode) Done() bool { return d.elapsed >= d.schedule() }

// passNode broadcasts its patch's vector in C chunks and reassembles
// every complete foreign vector it hears, keyed by sender.
type passNode struct {
	id      int
	leader  int
	chunks  []gf.BitVec
	heard   map[int][]gf.BitVec
	total   int
	elapsed int
}

var _ dynnet.Node = (*passNode)(nil)

func newPassNode(id, leader int, vec gf.BitVec, chunkBits int) *passNode {
	return &passNode{
		id:     id,
		leader: leader,
		chunks: splitChunks(vec, chunkBits),
		heard:  make(map[int][]gf.BitVec),
		total:  vec.Len(),
	}
}

func (p *passNode) Send(int) dynnet.Message {
	if p.elapsed >= len(p.chunks) {
		return nil
	}
	return chunkMsg{Sender: p.id, Leader: p.leader, Idx: p.elapsed, Data: p.chunks[p.elapsed]}
}

func (p *passNode) Receive(_ int, msgs []dynnet.Message) {
	for _, m := range msgs {
		cm, ok := m.(chunkMsg)
		if !ok {
			continue
		}
		buf := p.heard[cm.Sender]
		if buf == nil {
			buf = make([]gf.BitVec, len(p.chunks))
			p.heard[cm.Sender] = buf
		}
		if cm.Idx < len(buf) {
			buf[cm.Idx] = cm.Data
		}
	}
	p.elapsed++
}

func (p *passNode) Done() bool { return p.elapsed >= len(p.chunks) }

// received returns every completely reassembled foreign vector.
func (p *passNode) received() ([]gf.BitVec, error) {
	var out []gf.BitVec
	for _, buf := range p.heard {
		complete := true
		for _, c := range buf {
			if c.Len() == 0 {
				complete = false
				break
			}
		}
		if !complete {
			continue // a pass cut short by phase boundaries; drop it
		}
		v, err := joinChunks(buf, p.total)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// metaRound executes one share-pass-share cycle over the given patches:
// spans[i] is node i's coding state; every patch combination computed in
// either share step is inserted into every member's span, and passed
// vectors are inserted at their recipients. Returns the rounds consumed.
func metaRound(
	s *dynnet.Session,
	p *graph.Patching,
	spans []*rlnc.Span,
	rngs []*rand.Rand,
	chunkBits int,
) (int, error) {
	return metaRoundOpt(s, p, spans, rngs, chunkBits, true)
}

// metaRoundOpt optionally skips the second share step. The paper's
// Lemma 8.1 analysis uses both shares so each meta-round independently
// satisfies its two-case progress guarantee. Operationally, however,
// consecutive meta-rounds fuse: meta-round i+1's first share performs
// exactly the distribution job of meta-round i's second share, so
// dropping the second share (a share-pass pipeline) preserves progress
// per round and saves ~40% of the meta-round cost. The ablation in
// AblationMetaRounds measures this; the repository keeps the paper's
// three-step form as the default for fidelity.
func metaRoundOpt(
	s *dynnet.Session,
	p *graph.Patching,
	spans []*rlnc.Span,
	rngs []*rand.Rand,
	chunkBits int,
	secondShare bool,
) (int, error) {
	start := rounds(s)
	vecs, err := sharePhase(s, p, spans, rngs, chunkBits)
	if err != nil {
		return 0, err
	}
	if err := passPhase(s, p, spans, vecs, chunkBits); err != nil {
		return 0, err
	}
	if secondShare {
		if _, err := sharePhase(s, p, spans, rngs, chunkBits); err != nil {
			return 0, err
		}
	}
	return rounds(s) - start, nil
}

func rounds(s *dynnet.Session) int { return s.Metrics().Rounds }

// sharePhase runs sum-up then broadcast-down, inserting the patch
// combination into every member's span, and returns each node's patch
// vector for a subsequent pass.
func sharePhase(
	s *dynnet.Session,
	p *graph.Patching,
	spans []*rlnc.Span,
	rngs []*rand.Rand,
	chunkBits int,
) ([]gf.BitVec, error) {
	n := s.N()
	vecLen := spans[0].K() + spans[0].PayloadBits()
	maxDepth := p.MaxDepth()
	childSets := make([]map[int]bool, n)
	children := p.Children()
	for i := range childSets {
		childSets[i] = make(map[int]bool, len(children[i]))
		for _, c := range children[i] {
			childSets[i][c] = true
		}
	}

	// Local random combinations (zero vector when a span is empty — it
	// contributes nothing to the patch sum).
	local := make([]gf.BitVec, n)
	for i := range local {
		if c, ok := spans[i].Combine(rngs[i]); ok {
			local[i] = c.Vec
		} else {
			local[i] = gf.NewBitVec(vecLen)
		}
	}

	// Sum up.
	ups := make([]*sumUpNode, n)
	nodes := make([]dynnet.Node, n)
	for i := range nodes {
		ups[i] = newSumUpNode(i, p, childSets[i], local[i], chunkBits, maxDepth)
		nodes[i] = ups[i]
	}
	nC := numChunks(vecLen, chunkBits)
	if err := s.RunFixed(nodes, nC+maxDepth); err != nil {
		return nil, err
	}

	// Broadcast down from each leader.
	downs := make([]*downNode, n)
	for i := range nodes {
		var chunks []gf.BitVec
		if p.Depth[i] == 0 {
			chunks = ups[i].chunks
		}
		downs[i] = newDownNode(i, p, chunks, nC, maxDepth)
		nodes[i] = downs[i]
	}
	if err := s.RunFixed(nodes, nC+maxDepth); err != nil {
		return nil, err
	}

	out := make([]gf.BitVec, n)
	for i := range downs {
		v, err := joinChunks(downs[i].chunks, vecLen)
		if err != nil {
			return nil, fmt.Errorf("stable: share: node %d incomplete patch vector: %w", i, err)
		}
		out[i] = v
		spans[i].Add(rlnc.Coded{K: spans[i].K(), Vec: v})
	}
	return out, nil
}

// passPhase has every node broadcast its patch vector; completed foreign
// vectors join the recipients' spans.
func passPhase(
	s *dynnet.Session,
	p *graph.Patching,
	spans []*rlnc.Span,
	vecs []gf.BitVec,
	chunkBits int,
) error {
	n := s.N()
	passes := make([]*passNode, n)
	nodes := make([]dynnet.Node, n)
	for i := range nodes {
		passes[i] = newPassNode(i, p.PatchOf[i], vecs[i], chunkBits)
		nodes[i] = passes[i]
	}
	vecLen := vecs[0].Len()
	if err := s.RunFixed(nodes, numChunks(vecLen, chunkBits)); err != nil {
		return err
	}
	for i := range passes {
		got, err := passes[i].received()
		if err != nil {
			return err
		}
		for _, v := range got {
			spans[i].Add(rlnc.Coded{K: spans[i].K(), Vec: v})
		}
	}
	return nil
}

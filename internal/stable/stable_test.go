package stable

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/graph"
	"repro/internal/rlnc"
	"repro/internal/token"
)

func TestChunksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, total := range []int{1, 7, 8, 9, 100, 255, 256} {
		for _, cb := range []int{1, 3, 8, 64, 300} {
			v := gf.RandomBitVec(total, rng.Uint64)
			chunks := splitChunks(v, cb)
			if len(chunks) != numChunks(total, cb) {
				t.Fatalf("total=%d cb=%d: %d chunks, want %d", total, cb, len(chunks), numChunks(total, cb))
			}
			got, err := joinChunks(chunks, total)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(v) {
				t.Fatalf("total=%d cb=%d: round trip mismatch", total, cb)
			}
		}
	}
}

func TestJoinChunksErrors(t *testing.T) {
	chunks := splitChunks(gf.NewBitVec(10), 4)
	if _, err := joinChunks(chunks, 8); err == nil {
		t.Error("overlong chunks accepted")
	}
	if _, err := joinChunks(chunks[:1], 10); err == nil {
		t.Error("short chunks accepted")
	}
}

// TestBuildPatchesInvariants runs the distributed patch protocol on
// random stable graphs and validates the Section 8.1 invariants against
// the true topology.
func TestBuildPatchesInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		d := 1 + rng.Intn(3)
		g := graph.RandomConnected(n, rng.Intn(n), rng)
		s := dynnet.NewSession(n, adversary.NewStatic(g), dynnet.Config{})
		p, err := BuildPatches(s, d, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("seed %d (n=%d d=%d): %v", seed, n, d, err)
		}
		if got := s.Metrics().Rounds; got <= 0 {
			t.Errorf("seed %d: patch building consumed no rounds", seed)
		}
	}
}

// TestBuildPatchesStructuredTopologies runs the distributed patching on
// grid and hypercube topologies, whose regular structure exercises the
// tie-breaking paths differently from random graphs.
func TestBuildPatchesStructuredTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tests := []struct {
		name string
		g    *graph.Graph
		d    int
	}{
		{"grid6x6", graph.Grid(6, 6), 2},
		{"hypercube4", graph.Hypercube(4), 1},
		{"cycle30", graph.Cycle(30), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := dynnet.NewSession(tt.g.N(), adversary.NewStatic(tt.g), dynnet.Config{})
			p, err := BuildPatches(s, tt.d, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(tt.g); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBuildPatchesPathD1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 12
	s := dynnet.NewSession(n, adversary.NewStatic(graph.Path(n)), dynnet.Config{})
	p, err := BuildPatches(s, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(graph.Path(n)); err != nil {
		t.Fatal(err)
	}
	// On a path with D=1, an MIS of G has at least n/3 leaders.
	if len(p.Leaders) < n/3 {
		t.Errorf("%d leaders, want >= %d", len(p.Leaders), n/3)
	}
}

// TestMetaRoundSpreadsAcrossPatches checks one share-pass-share cycle
// moves information from a patch holding all blocks to its neighbours.
func TestMetaRoundSpreadsAcrossPatches(t *testing.T) {
	const n = 16
	const blocks, payload = 4, 16
	rng := rand.New(rand.NewSource(5))
	g := graph.Path(n)
	s := dynnet.NewSession(n, adversary.NewStatic(g), dynnet.Config{})
	patches, err := BuildPatches(s, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	spans := make([]*rlnc.Span, n)
	rngs := make([]*rand.Rand, n)
	for i := range spans {
		spans[i] = rlnc.NewSpan(blocks, payload)
		rngs[i] = rand.New(rand.NewSource(int64(i + 10)))
	}
	for j := 0; j < blocks; j++ {
		spans[0].Add(rlnc.Encode(j, blocks, gf.RandomBitVec(payload, rng.Uint64)))
	}
	for meta := 0; meta < 30; meta++ {
		if _, err := metaRound(s, patches, spans, rngs, 64); err != nil {
			t.Fatal(err)
		}
		all := true
		for _, sp := range spans {
			if !sp.CanDecode() {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	for i, sp := range spans {
		if !sp.CanDecode() {
			t.Errorf("node %d rank %d of %d after 30 meta-rounds", i, sp.Rank(), blocks)
		}
	}
}

func TestPlanGeometry(t *testing.T) {
	geo, err := PlanGeometry(32, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	if geo.ChunkBits != 512-chunkHeaderBits {
		t.Errorf("chunk bits = %d", geo.ChunkBits)
	}
	if geo.MetaCost() > 128/2+4*geo.D {
		t.Errorf("meta cost %d exceeds half window", geo.MetaCost())
	}
	if geo.VectorBits() != geo.Blocks+geo.Payload {
		t.Error("vector bits inconsistent")
	}
	if _, err := PlanGeometry(32, 128, 128); err == nil {
		t.Error("budget smaller than header accepted")
	}
	if _, err := PlanGeometry(32, 512, 4); err == nil {
		t.Error("tiny window accepted")
	}
}

// TestPlanGeometryCapacityQuadraticInT is the Lemma 8.1 throughput
// shape: doubling T roughly quadruples Blocks*Payload.
func TestPlanGeometryCapacityQuadraticInT(t *testing.T) {
	const n, b = 64, 512
	g1, err := PlanGeometry(n, b, 256)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := PlanGeometry(n, b, 512)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(g2.Capacity()) / float64(g1.Capacity())
	if ratio < 3.0 || ratio > 5.5 {
		t.Errorf("capacity ratio for 2x T = %.2f, want ~4", ratio)
	}
}

// TestBroadcastLemma81 runs the full windowed T-stable broadcast with a
// dynamic (per-window random) topology and checks all nodes decode.
func TestBroadcastLemma81(t *testing.T) {
	const n, b, T = 12, 512, 192
	geo, err := PlanGeometry(n, b, T)
	if err != nil {
		t.Fatal(err)
	}
	geo = geo.Shrink(768) // keep decoding cheap at test scale
	rng := rand.New(rand.NewSource(7))
	payloads := make([]gf.BitVec, geo.Blocks)
	initial := make([][]rlnc.Coded, n)
	for j := range payloads {
		payloads[j] = gf.RandomBitVec(geo.Payload, rng.Uint64)
		owner := j % n
		initial[owner] = append(initial[owner], rlnc.Encode(j, geo.Blocks, payloads[j]))
	}
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i + 50)))
	}
	tadv := adversary.NewTStable(adversary.NewRandomConnected(n, n, 8), T)
	s := dynnet.NewSession(n, tadv, dynnet.Config{BitBudget: b})
	decoded, err := Broadcast(s, tadv, geo, initial, rngs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		for j := range payloads {
			if !decoded[i][j].Equal(payloads[j]) {
				t.Fatalf("node %d block %d mismatch", i, j)
			}
		}
	}
	if s.Metrics().MaxMessageBits > b {
		t.Errorf("message of %d bits exceeded budget %d", s.Metrics().MaxMessageBits, b)
	}
}

// TestRunFloodBaseline checks the T-stable forwarding baseline
// disseminates and benefits from stability.
func TestRunFloodBaseline(t *testing.T) {
	const n, d, k = 16, 8, 16
	b := 2 * (token.UIDBits + d + token.CountBits)
	mk := func(seed int64) token.Distribution {
		return token.OnePerNode(n, d, rand.New(rand.NewSource(seed)))
	}
	r1, err := RunFlood(mk(1), k, b, d, 1, adversary.NewTStable(adversary.NewRotatingPath(n, 2), 1))
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := RunFlood(mk(1), k, b, d, 64, adversary.NewTStable(adversary.NewRotatingPath(n, 2), 64))
	if err != nil {
		t.Fatal(err)
	}
	if rBig > r1 {
		t.Errorf("stability slowed the baseline: T=1 %d rounds, T=64 %d rounds", r1, rBig)
	}
}

func TestRunFloodTooSmallBudget(t *testing.T) {
	dist := token.OnePerNode(4, 64, rand.New(rand.NewSource(4)))
	if _, err := RunFlood(dist, 4, 16, 64, 1, adversary.NewRotatingPath(4, 1)); err == nil {
		t.Error("tiny budget accepted")
	}
}

// TestAblationSecondShare records the DESIGN.md ablation: dropping the
// second share step of the meta-round still decodes everywhere (the next
// meta-round's first share does its distribution job) and costs fewer
// total rounds — the paper's three-step form exists for the analysis,
// not for per-round progress.
func TestAblationSecondShare(t *testing.T) {
	g := graph.Path(24)
	const d, blocks, payload, chunkBits = 2, 4, 16, 64
	with, err := AblationMetaRounds(g, d, blocks, payload, chunkBits, true, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	without, err := AblationMetaRounds(g, d, blocks, payload, chunkBits, false, 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with second share: %d rounds; without: %d rounds", with, without)
	// The fused pipeline must not be drastically worse; empirically it
	// is ~30% cheaper.
	if without > 2*with {
		t.Errorf("share-pass pipeline unexpectedly slow: with=%d without=%d", with, without)
	}
}

func TestGeometryShrink(t *testing.T) {
	geo, err := PlanGeometry(64, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	small := geo.Shrink(500)
	if small.VectorBits() > geo.VectorBits() && small.Chunks != 1 {
		t.Errorf("shrink grew the vector: %d -> %d", geo.VectorBits(), small.VectorBits())
	}
	if small.MetaCost() > geo.MetaCost() {
		t.Error("shrink increased meta cost")
	}
	if geo.Shrink(1<<30) != geo {
		t.Error("shrink with huge cap changed geometry")
	}
	one := geo.Shrink(0)
	if one.Chunks != 1 {
		t.Errorf("shrink to zero should clamp to one chunk, got %d", one.Chunks)
	}
}

package stream

import (
	"context"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
)

// churnStreamRun is the canonical seeded lockstep churn stream shared
// by the determinism and completion tests.
func churnStreamRun(t *testing.T, seed int64, schedule string, loss float64) *Result {
	t.Helper()
	sched, err := cluster.ParseChurn(schedule)
	if err != nil {
		t.Fatal(err)
	}
	const n, k, d, gens, w = 12, 6, 48, 10, 4
	maxN := n + sched.Joins()
	var tr cluster.Transport = cluster.NewChanTransport(maxN, InboxBuffer(maxN, 3))
	if loss > 0 {
		tr = cluster.WithLoss(tr, loss, seed*17+1)
	}
	res, err := Run(context.Background(), Config{
		N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
		Seed: seed, Lockstep: true, Transport: tr, MaxTicks: 200000,
		Churn: sched, SuspectTicks: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Elapsed = 0 // wall clock is the one legitimately impure field
	return res
}

// TestLockstepStreamChurnDeterministic is the acceptance-criteria
// property for the streaming runtime: a lockstep churn run — joins,
// crashes, restarts, suspicion, orphan adoption, loss — is a pure
// function of the seed.
func TestLockstepStreamChurnDeterministic(t *testing.T) {
	const schedule = "crash:15:1,join:25:1,leave:35:1,restart:45:1"
	pure := func(s uint16) bool {
		seed := int64(s) + 1
		a := churnStreamRun(t, seed, schedule, 0.2)
		b := churnStreamRun(t, seed, schedule, 0.2)
		return reflect.DeepEqual(a, b)
	}
	cfg := &quick.Config{MaxCount: 5, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(pure, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStreamJoinerCatchesUpUnderLoss is the joiner-catch-up contract:
// a node that joins mid-stream learns the retirement frontier from
// watermark gossip (StartGen > 0 when it joins after deliveries
// began), requests only live generations, and reaches the cluster
// watermark — all under 20% loss.
func TestStreamJoinerCatchesUpUnderLoss(t *testing.T) {
	res := churnStreamRun(t, 5, "join:30:1", 0.2)
	if !res.Completed {
		t.Fatalf("stream with a mid-run joiner incomplete after %d ticks", res.Ticks)
	}
	const n, gens = 12, 10
	j := &res.Nodes[n]
	if !j.Spawned || !j.Live || !j.Done {
		t.Fatalf("joiner state: %+v", j)
	}
	if j.JoinTick != 30 {
		t.Errorf("joiner JoinTick = %d, want 30", j.JoinTick)
	}
	if j.StartGen < 1 {
		t.Errorf("joiner StartGen = %d: joined at tick 30 but learned no frontier", j.StartGen)
	}
	if j.StartGen >= gens {
		t.Errorf("joiner StartGen = %d: nothing left to deliver in a %d-generation stream", j.StartGen, gens)
	}
	if j.Delivered != gens-j.StartGen {
		t.Errorf("joiner delivered %d generations, want %d (gens %d - StartGen %d)",
			j.Delivered, gens-j.StartGen, gens, j.StartGen)
	}
	if j.CaughtUpTick <= j.JoinTick {
		t.Errorf("joiner CaughtUpTick %d not after JoinTick %d", j.CaughtUpTick, j.JoinTick)
	}
	if j.DoneTick < j.CaughtUpTick {
		t.Errorf("joiner DoneTick %d before CaughtUpTick %d", j.DoneTick, j.CaughtUpTick)
	}
	// Founding nodes deliver the whole stream regardless of the join.
	for id := 0; id < n; id++ {
		if m := &res.Nodes[id]; m.Live && m.Delivered != gens {
			t.Errorf("node %d delivered %d of %d generations", id, m.Delivered, gens)
		}
	}
}

// TestStreamSurvivesOriginCrash pins the orphan-adoption path: crash
// nodes early — likely including origins of not-yet-opened
// generations — and the stream must still complete because the lowest
// live node re-sources tokens whose origin fell out of the view. The
// retirement frontier must likewise drop the crashed nodes (via
// suspicion) instead of deadlocking on their stale watermarks.
func TestStreamSurvivesOriginCrash(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res := churnStreamRun(t, seed, "crash:8:2", 0.1)
		if !res.Completed {
			t.Fatalf("seed %d: stream incomplete after %d ticks with 2 crashed origins", seed, res.Ticks)
		}
		if res.FinalLive != 10 {
			t.Errorf("seed %d: FinalLive = %d, want 10", seed, res.FinalLive)
		}
		for id, m := range res.Nodes {
			if m.Live && m.Delivered != 10 {
				t.Errorf("seed %d: live node %d delivered %d of 10", seed, id, m.Delivered)
			}
		}
	}
}

// TestStreamRestartResumesBehindFrontier pins the persisted-restart
// semantics: a node that crashes and restarts re-learns the frontier
// before resuming, forfeiting generations the cluster retired while it
// was down instead of deadlocking the watermark minimum on them.
func TestStreamRestartResumesBehindFrontier(t *testing.T) {
	res := churnStreamRun(t, 7, "crash:10:1,restart:60:1", 0.1)
	if !res.Completed {
		t.Fatalf("stream incomplete after %d ticks across a crash-restart", res.Ticks)
	}
	if res.FinalLive != 12 {
		t.Errorf("FinalLive = %d, want 12", res.FinalLive)
	}
	restarted := -1
	for id, m := range res.Nodes {
		if m.JoinTick == 60 {
			restarted = id
		}
	}
	if restarted < 0 {
		t.Fatal("no node restarted at tick 60")
	}
	m := &res.Nodes[restarted]
	if !m.Done || !m.Live {
		t.Errorf("restarted node %d: %+v", restarted, m)
	}
}

// TestStreamChurnlessUnchanged pins that a nil schedule leaves the
// static pipeline untouched (the golden-transcript test is the strong
// bit-level version of this).
func TestStreamChurnlessUnchanged(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N: 8, K: 4, PayloadBits: 32, Window: 2, Generations: 4, Seed: 4, Lockstep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.FinalLive != 8 {
		t.Errorf("FinalLive = %d, want 8", res.FinalLive)
	}
	for id, m := range res.Nodes {
		if !m.Spawned || !m.Live || m.HellosOut != 0 || m.StartGen != 0 || m.CaughtUpTick != 0 {
			t.Errorf("node %d: churn fields touched without churn: %+v", id, m)
		}
	}
}

// TestAsyncStreamChurnCrashJoin is the async churn integration test
// for the streaming runtime: a node crashes mid-stream, a fresh node
// joins and catches up to the watermark, under loss, -race clean. The
// run must complete with every live node's deliveries source-verified
// (Run verifies every delivery inline).
func TestAsyncStreamChurnCrashJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("stream integration test skipped with -short")
	}
	const n, k, d, gens, w = 12, 6, 64, 10, 4
	sched, err := cluster.ParseChurn("crash:25:1,join:40:1")
	if err != nil {
		t.Fatal(err)
	}
	maxN := n + sched.Joins()
	var tr cluster.Transport = cluster.NewChanTransport(maxN, 8*maxN)
	tr = cluster.WithLoss(tr, 0.15, 21)
	res, err := Run(context.Background(), Config{
		N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
		Seed: 9, Transport: tr, Timeout: 20 * time.Second,
		Interval: 200 * time.Microsecond, Churn: sched, SuspectTicks: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("async churn stream did not complete")
	}
	if res.FinalLive != n {
		t.Errorf("FinalLive = %d, want %d", res.FinalLive, n)
	}
	j := &res.Nodes[n]
	if !j.Spawned || !j.Live || !j.Done {
		t.Errorf("joiner state: %+v", j)
	}
	if j.JoinAt <= 0 || j.DoneAt < j.JoinAt {
		t.Errorf("joiner done at %v before joining at %v", j.DoneAt, j.JoinAt)
	}
	// A joiner that still had generations to deliver must have recorded
	// its catch-up after the join. (Under -race the scheduler can slow
	// the run enough that the join lands after the stream finished —
	// StartGen == gens — in which case there is nothing to catch up to.)
	if j.StartGen > 0 && j.StartGen < gens && j.CaughtUpAt < j.JoinAt {
		t.Errorf("joiner caught up at %v before joining at %v", j.CaughtUpAt, j.JoinAt)
	}
	if j.Delivered != gens-j.StartGen {
		t.Errorf("joiner delivered %d, want %d", j.Delivered, gens-j.StartGen)
	}
}

// TestStreamRejectsEpochOverflow pins the generation/epoch aliasing
// regression: a stream longer than the 32-bit wire epoch space must be
// rejected up front instead of silently aliasing generation g with
// g+2^32 on the wire.
func TestStreamRejectsEpochOverflow(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("a stream longer than the wire epoch space is unrepresentable in int on this platform")
	}
	var over64 int64 = 1 << 33 // runtime-computed so 32-bit builds still compile
	_, err := Run(context.Background(), Config{
		N: 2, K: 1, PayloadBits: 1, Generations: int(over64), Lockstep: true,
	})
	if err == nil {
		t.Fatal("2^33 generations accepted")
	}
}

// TestLockstepStreamChurnGridCompletes sweeps a grid of churn
// schedules × seeds through the lockstep driver and requires every run
// to complete: with catch-up serving, orphan adoption and clock-driven
// frontier re-evaluation, no schedule that leaves at least two nodes
// alive may stall the stream. (Each stall mode this PR fixed —
// stale-stamp refresh, sampling suspicion, packet-only advance — first
// showed up as a hang a sweep like this one would have caught.)
func TestLockstepStreamChurnGridCompletes(t *testing.T) {
	schedules := []string{
		"crash:15:1",
		"crash:15:1,leave:40:1",
		"leave:10:1,crash:20:1,join:30:1",
		"crash:8:2,restart:50:1",
		"join:5:2,crash:25:1,rejoin:60:1",
		"crash:15:1,crash:45:1,join:70:1",
	}
	for _, schedule := range schedules {
		for seed := int64(1); seed <= 3; seed++ {
			res := churnStreamRun(t, seed, schedule, 0.2)
			if !res.Completed {
				t.Errorf("schedule %q seed %d stalled after %d ticks", schedule, seed, res.Ticks)
			}
		}
	}
}

// TestLockstepStreamChurnAggregateMetrics pins the stream Result
// aggregate math across a churned run: aggregates equal the per-node
// sums with each id counted exactly once (restart/rejoin reuse their
// slot, so pre-outage traffic is not double-counted; leavers and
// crashers keep their final counters), TokensDelivered is the
// K-scaled sum of per-node generation deliveries, unspawned ids stay
// zero, and FinalLive matches the Live flags.
func TestLockstepStreamChurnAggregateMetrics(t *testing.T) {
	const schedule = "join:5:1,crash:8:1,leave:12:1,restart:15:1,join:18:2,rejoin:25:1"
	sched, err := cluster.ParseChurn(schedule)
	if err != nil {
		t.Fatal(err)
	}
	res := churnStreamRun(t, 11, schedule, 0.2)
	if !res.Completed {
		t.Fatalf("churn run incomplete after %d ticks", res.Ticks)
	}
	const k = 6 // churnStreamRun's K
	if want := 12 + sched.Joins(); len(res.Nodes) != want {
		t.Fatalf("%d node slots, want %d (restart/rejoin must reuse slots)", len(res.Nodes), want)
	}
	var out, in, acks, bits, dropped, tokens int64
	live, departed := 0, 0
	for id, m := range res.Nodes {
		if !m.Spawned {
			if m.PacketsOut != 0 || m.PacketsIn != 0 || m.AcksOut != 0 || m.BitsOut != 0 || m.Dropped != 0 || m.Delivered != 0 || m.Live {
				t.Errorf("unspawned id %d has nonzero metrics %+v", id, m)
			}
			continue
		}
		out += m.PacketsOut
		in += m.PacketsIn
		acks += m.AcksOut
		bits += m.BitsOut
		dropped += m.Dropped
		tokens += int64(m.Delivered) * k
		if m.Live {
			live++
		} else if m.PacketsOut > 0 {
			departed++ // leaver/crasher whose traffic stays counted
		}
	}
	if res.PacketsOut != out || res.PacketsIn != in || res.AcksOut != acks || res.BitsOut != bits || res.Dropped != dropped {
		t.Errorf("aggregates (%d,%d,%d,%d,%d) != per-node sums (%d,%d,%d,%d,%d)",
			res.PacketsOut, res.PacketsIn, res.AcksOut, res.BitsOut, res.Dropped, out, in, acks, bits, dropped)
	}
	if res.TokensDelivered != tokens {
		t.Errorf("TokensDelivered = %d, want %d (K-scaled per-node sum)", res.TokensDelivered, tokens)
	}
	if res.FinalLive != live {
		t.Errorf("FinalLive = %d, want %d live flags", res.FinalLive, live)
	}
	if departed == 0 {
		t.Error("schedule has a leave and a crash but no departed node kept its counters")
	}
}

package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// streamRun is the shared run state of both drivers: the node table
// (indexed by id over the whole id space, nil until spawned), the live
// set, and the churner applying the membership script.
type streamRun struct {
	cfg   Config
	src   Source
	tr    cluster.Transport
	res   *Result
	maxN  int
	nodes []*node
	live  []bool
	ch    *cluster.Churner
	// ranks backs the targeted-crash oracle (crashfrontier): each node
	// publishes its delivery watermark here, and the churner reads it
	// atomically when selecting victims. Nil unless the schedule
	// HasTargeted.
	ranks []atomic.Int64
	// exec partitions the id space for the lockstep driver's parallel
	// phases (nil in async mode); outs holds one private outbox per
	// shard, nil when exec has a single shard (serial engine, inline
	// sends). See cluster.Outbox for the merge-order contract.
	exec *shard.Executor
	outs []*cluster.Outbox
}

// attach wires nd into the run's shared machinery: its slot of the
// targeted-crash scoreboard (a no-op in untargeted runs, publishing
// the current watermark otherwise) and its shard's outbox on sharded
// lockstep runs.
func (sr *streamRun) attach(nd *node) {
	if sr.outs != nil {
		nd.out = sr.outs[sr.exec.ShardOf(nd.id)]
	}
	if sr.ranks == nil {
		return
	}
	nd.rank = &sr.ranks[nd.id]
	nd.rank.Store(int64(nd.delivered))
}

func (sr *streamRun) firstErr() error {
	for _, nd := range sr.nodes {
		if nd != nil && nd.err != nil {
			return nd.err
		}
	}
	return nil
}

// applyLockstep executes one churn operation under the lockstep
// driver. The churner has already flipped sr.live.
func (sr *streamRun) applyLockstep(op cluster.ChurnOp, tick int) {
	m := &sr.res.Nodes[op.ID]
	tel := sr.cfg.Telemetry
	switch op.Kind {
	case cluster.ChurnJoin, cluster.ChurnRejoin:
		nd := newNode(op.ID, sr.cfg, sr.src, m, sr.live, int64(tick), true)
		sr.attach(nd)
		sr.nodes[op.ID] = nd
		m.Done = false
		m.DoneTick = 0
		m.JoinTick = tick
		tel.Event(op.ID, int64(tick), telemetry.KindJoin, 0, 0, 0)
		nd.helloAll(sr.tr, false)
	case cluster.ChurnRestart:
		nd := sr.nodes[op.ID]
		nd.now = int64(tick)
		// Re-learn the frontier before resuming: the cluster may have
		// retired generations past this node's persisted watermark
		// while it was down.
		nd.bootstrapped = false
		m.Live = true
		m.Done = false
		m.JoinTick = tick
		tel.Event(op.ID, int64(tick), telemetry.KindRestart, 0, 0, 0)
		nd.helloAll(sr.tr, false)
	case cluster.ChurnLeave:
		nd := sr.nodes[op.ID]
		nd.now = int64(tick)
		tel.Event(op.ID, int64(tick), telemetry.KindLeave, 0, 0, 0)
		nd.helloAll(sr.tr, true)
		m.Live = false
	case cluster.ChurnCrash:
		tel.Event(op.ID, int64(tick), telemetry.KindCrash, 0, 0, 0)
		m.Live = false
	}
}

// runLockstep is the deterministic driver: per tick, churn events
// apply, every live node drains its inbox in id order, completion is
// recorded, then every live node pushes fanout data packets plus one
// ack (and, in churn runs, adopts tokens orphaned by dead origins).
// With a seeded Config the whole run — middleware coin flips, churn
// victims, everything — is a pure function of the seed; context
// cancellation (checked once per tick) only ever cuts a run short, it
// cannot change the ticks that did execute.
func (sr *streamRun) runLockstep(ctx context.Context) error {
	cfg, res := sr.cfg, sr.res
	complete := func(tick int) bool {
		all := true
		for id, nd := range sr.nodes {
			if nd == nil {
				continue
			}
			if !nd.m.Done && nd.done() {
				nd.m.Done = true
				nd.m.DoneTick = tick
			}
			if sr.live[id] {
				all = all && nd.m.Done
			}
		}
		return all && !sr.ch.PendingAdds()
	}

	for _, nd := range sr.nodes {
		if nd != nil {
			nd.prime()
		}
	}
	if err := sr.firstErr(); err != nil {
		return err
	}
	if complete(0) {
		res.Completed = true
		return nil
	}
	for tick := 1; tick <= cfg.maxTicks(); tick++ {
		select {
		case <-ctx.Done():
			res.Ticks = tick - 1
			return nil
		default:
		}
		cluster.ObserveTick(sr.tr, int64(tick))
		for _, op := range sr.ch.PopUntil(tick, sr.live) {
			sr.applyLockstep(op, tick)
		}
		sr.exec.Run(func(_, lo, hi int) {
			if sr.cfg.Telemetry != nil {
				// Sample before the drain so inbox depth shows the backlog
				// queued by the previous emit phase.
				for id := lo; id < hi; id++ {
					if nd := sr.nodes[id]; nd != nil && sr.live[id] {
						nd.now = int64(tick)
						nd.sample(sr.tr)
					}
				}
			}
			for id := lo; id < hi; id++ {
				nd := sr.nodes[id]
				if nd == nil || !sr.live[id] {
					continue
				}
				nd.now = int64(tick)
				inbox := sr.tr.Recv(id)
				for drained := false; !drained; {
					select {
					case raw := <-inbox:
						nd.recv(raw)
					default:
						drained = true
					}
				}
			}
		})
		if err := sr.firstErr(); err != nil {
			return err
		}
		if complete(tick) {
			res.Completed = true
			res.Ticks = tick
			return nil
		}
		sr.exec.Run(func(_, lo, hi int) {
			for id := lo; id < hi; id++ {
				nd := sr.nodes[id]
				if nd == nil || !sr.live[id] {
					continue
				}
				nd.adoptOrphans()
				nd.pushData(sr.tr)
				nd.pushAck(sr.tr)
			}
		})
		sr.flushOutboxes()
		if err := sr.firstErr(); err != nil {
			return err
		}
	}
	res.Ticks = cfg.maxTicks()
	return nil
}

// flushOutboxes is the exchange barrier of a sharded tick: it replays
// every shard's deferred emissions against the real transport in
// (shard, node id, emission order) order — ascending node id, exactly
// the serial driver's send order — performing the middleware-visible
// Send, the send/drop telemetry, and the drop accounting that could
// not run in parallel. A no-op on the serial engine (outs is nil).
func (sr *streamRun) flushOutboxes() {
	for _, ob := range sr.outs {
		for _, e := range ob.Entries() {
			nd := sr.nodes[e.From]
			switch e.Kind {
			case cluster.OutData:
				nd.tel.Event(e.From, nd.now, telemetry.KindSend, int64(e.To), e.Arg, e.Bits)
			case cluster.OutAck:
				nd.tel.Event(e.From, nd.now, telemetry.KindSendAck, int64(e.To), e.Arg, 0)
			case cluster.OutHello:
				nd.tel.Event(e.From, nd.now, telemetry.KindSendHello, int64(e.To), e.Arg, 0)
			}
			if !sr.tr.Send(e.From, e.To, e.Buf) {
				nd.m.Dropped++
				nd.tel.Event(e.From, nd.now, telemetry.KindDrop, int64(e.To), 0, 0)
				nd.ring.Put(e.Buf)
			}
		}
		ob.Reset()
	}
}

// batchAdds reports whether a popped churn batch contains any
// membership-adding operation (join, restart, rejoin).
func batchAdds(ops []cluster.ChurnOp) bool {
	for _, op := range ops {
		switch op.Kind {
		case cluster.ChurnJoin, cluster.ChurnRestart, cluster.ChurnRejoin:
			return true
		}
	}
	return false
}

// tracker is the async driver's completion accounting, redesigned for
// a changing population (mirroring the cluster runtime): one mutex
// guards "is every live node done, with no membership additions
// pending", updated by node goroutines on completion and by the churn
// controller on every membership change.
type tracker struct {
	mu          sync.Mutex
	res         *Result
	live        []bool
	addsPending bool
	allDone     chan struct{}
	closed      bool
}

func (t *tracker) markDone(id int, nd *node, at time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := &t.res.Nodes[id]
	if m.Done || !nd.done() {
		return
	}
	m.Done = true
	m.DoneAt = at
	t.check()
}

// check closes allDone when the run is complete. Callers hold mu.
func (t *tracker) check() {
	if t.closed || t.addsPending {
		return
	}
	for id, l := range t.live {
		if l && !t.res.Nodes[id].Done {
			return
		}
	}
	t.closed = true
	close(t.allDone)
}

// runAsync is the goroutine-per-node execution: ticker-paced data and
// ack emission plus an immediate data push after every packet that
// made progress, with a churn controller applying membership events at
// At×Interval wall offsets. Crashing or leaving nodes are canceled and
// fully joined before liveness flips, so node state never has two
// owners across a restart.
func (sr *streamRun) runAsync(ctx context.Context, start time.Time) error {
	cfg := sr.cfg
	ctx, cancel := context.WithTimeout(ctx, cfg.timeout())
	defer cancel()

	tk := &tracker{res: sr.res, live: sr.live, addsPending: sr.ch.PendingAdds(), allDone: make(chan struct{})}
	errCh := make(chan error, sr.maxN)
	cancels := make([]context.CancelFunc, sr.maxN)
	exited := make([]chan struct{}, sr.maxN)
	var leaving []atomic.Bool
	if sr.ch != nil {
		leaving = make([]atomic.Bool, sr.maxN)
	}

	var wg sync.WaitGroup
	spawnNode := func(id int, announce bool) {
		nodeCtx, nodeCancel := context.WithCancel(ctx)
		cancels[id] = nodeCancel
		stop := make(chan struct{})
		exited[id] = stop
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(stop)
			nd := sr.nodes[id]
			tick := func() { nd.now = int64(time.Since(start)) }
			tick()
			fail := func() bool {
				if nd.err == nil {
					return false
				}
				errCh <- nd.err
				cancel()
				return true
			}
			markDone := func() { tk.markDone(id, nd, time.Since(start)) }
			if announce {
				nd.helloAll(sr.tr, false)
			}
			nd.prime()
			if fail() {
				return
			}
			markDone() // n == 1, or a window the node sources alone
			ticker := time.NewTicker(cfg.interval())
			defer ticker.Stop()
			for {
				select {
				case <-nodeCtx.Done():
					if leaving != nil && leaving[id].Load() {
						tick()
						nd.helloAll(sr.tr, true)
					}
					return
				case raw := <-sr.tr.Recv(id):
					tick()
					if nd.recv(raw) {
						if fail() {
							return
						}
						markDone()
						nd.pushData(sr.tr)
					}
				case <-ticker.C:
					tick()
					nd.sample(sr.tr)
					nd.adoptOrphans()
					if fail() {
						return
					}
					markDone() // adoption can finish the stream
					nd.pushData(sr.tr)
					nd.pushAck(sr.tr)
				}
			}
		}()
	}
	for id := 0; id < cfg.N; id++ {
		spawnNode(id, false)
	}

	if sr.ch != nil {
		wg.Add(1)
		go func() { // churn controller
			defer wg.Done()
			for {
				at, ok := sr.ch.NextAt()
				if !ok {
					return
				}
				timer := time.NewTimer(time.Until(start.Add(time.Duration(at) * cfg.interval())))
				select {
				case <-ctx.Done():
					timer.Stop()
					return
				case <-timer.C:
				}
				tk.mu.Lock()
				ops := append([]cluster.ChurnOp(nil), sr.ch.PopUntil(at, tk.live)...)
				// Completion stays blocked until this batch's adds are
				// applied too: PopUntil already flipped liveness, but a
				// restart/rejoin below must reset its node's stale Done
				// before any check() may trust the live set.
				tk.addsPending = sr.ch.PendingAdds() || batchAdds(ops)
				tk.mu.Unlock()
				for _, op := range ops {
					m := &sr.res.Nodes[op.ID]
					// Churn events are recorded here, where the node's
					// goroutine is provably not running (after its exit, or
					// before its spawn), preserving single-owner rings.
					tel := cfg.Telemetry
					switch op.Kind {
					case cluster.ChurnCrash, cluster.ChurnLeave:
						if op.Kind == cluster.ChurnLeave {
							leaving[op.ID].Store(true)
						}
						cancels[op.ID]()
						<-exited[op.ID]
						leaving[op.ID].Store(false)
						if op.Kind == cluster.ChurnLeave {
							tel.Event(op.ID, int64(time.Since(start)), telemetry.KindLeave, 0, 0, 0)
						} else {
							tel.Event(op.ID, int64(time.Since(start)), telemetry.KindCrash, 0, 0, 0)
						}
						tk.mu.Lock()
						m.Live = false
						tk.check()
						tk.mu.Unlock()
					case cluster.ChurnJoin, cluster.ChurnRejoin:
						tk.mu.Lock()
						sr.nodes[op.ID] = newNode(op.ID, cfg, sr.src, m, tk.live, int64(time.Since(start)), true)
						sr.attach(sr.nodes[op.ID])
						m.Done = false
						m.JoinAt = time.Since(start)
						tk.mu.Unlock()
						tel.Event(op.ID, int64(time.Since(start)), telemetry.KindJoin, 0, 0, 0)
						spawnNode(op.ID, true)
					case cluster.ChurnRestart:
						tk.mu.Lock()
						// Re-learn the frontier before resuming; see the
						// lockstep restart path.
						sr.nodes[op.ID].bootstrapped = false
						m.Live = true
						m.Done = false
						m.JoinAt = time.Since(start)
						tk.mu.Unlock()
						tel.Event(op.ID, int64(time.Since(start)), telemetry.KindRestart, 0, 0, 0)
						spawnNode(op.ID, true)
					}
				}
				tk.mu.Lock()
				tk.addsPending = sr.ch.PendingAdds()
				tk.check()
				tk.mu.Unlock()
			}
		}()
	}

	var err error
	select {
	case <-tk.allDone:
		sr.res.Completed = true
	case err = <-errCh:
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
	if err == nil {
		select {
		case err = <-errCh:
		default:
		}
	}
	return err
}

package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// runLockstep is the deterministic driver: per tick, every node drains
// its inbox in id order, completion is recorded, then every node pushes
// fanout data packets plus one ack. With a seeded Config the whole run
// — including middleware coin flips — is a pure function of the seed;
// context cancellation (checked once per tick) only ever cuts a run
// short, it cannot change the ticks that did execute.
func runLockstep(ctx context.Context, cfg Config, tr cluster.Transport, nodes []*node, res *Result) error {
	firstErr := func() error {
		for _, nd := range nodes {
			if nd.err != nil {
				return nd.err
			}
		}
		return nil
	}
	complete := func(tick int) bool {
		all := true
		for _, nd := range nodes {
			if !nd.m.Done && nd.done() {
				nd.m.Done = true
				nd.m.DoneTick = tick
			}
			all = all && nd.m.Done
		}
		return all
	}

	for _, nd := range nodes {
		nd.prime()
	}
	if err := firstErr(); err != nil {
		return err
	}
	if complete(0) {
		res.Completed = true
		return nil
	}
	for tick := 1; tick <= cfg.maxTicks(); tick++ {
		select {
		case <-ctx.Done():
			res.Ticks = tick - 1
			return nil
		default:
		}
		for _, nd := range nodes {
			inbox := tr.Recv(nd.id)
			for drained := false; !drained; {
				select {
				case raw := <-inbox:
					nd.recv(raw)
				default:
					drained = true
				}
			}
		}
		if err := firstErr(); err != nil {
			return err
		}
		if complete(tick) {
			res.Completed = true
			res.Ticks = tick
			return nil
		}
		for _, nd := range nodes {
			nd.pushData(tr)
			nd.pushAck(tr)
		}
	}
	res.Ticks = cfg.maxTicks()
	return nil
}

// runAsync is the goroutine-per-node execution: ticker-paced data and
// ack emission plus an immediate data push after every packet that made
// progress (an innovative combination or a watermark advance, either of
// which can open new window generations).
func runAsync(ctx context.Context, cfg Config, tr cluster.Transport, nodes []*node, res *Result, start time.Time) error {
	ctx, cancel := context.WithTimeout(ctx, cfg.timeout())
	defer cancel()

	var remaining atomic.Int64
	remaining.Store(int64(cfg.N))
	allDone := make(chan struct{})
	errCh := make(chan error, cfg.N)

	var wg sync.WaitGroup
	for id := 0; id < cfg.N; id++ {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			fail := func() bool {
				if nd.err == nil {
					return false
				}
				errCh <- nd.err
				cancel()
				return true
			}
			markDone := func() {
				if nd.m.Done || !nd.done() {
					return
				}
				nd.m.Done = true
				nd.m.DoneAt = time.Since(start)
				if remaining.Add(-1) == 0 {
					close(allDone)
				}
			}
			nd.prime()
			if fail() {
				return
			}
			markDone() // n == 1, or a window the node sources alone
			ticker := time.NewTicker(cfg.interval())
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case raw := <-tr.Recv(nd.id):
					if nd.recv(raw) {
						if fail() {
							return
						}
						markDone()
						nd.pushData(tr)
					}
				case <-ticker.C:
					nd.pushData(tr)
					nd.pushAck(tr)
				}
			}
		}(nodes[id])
	}

	var err error
	select {
	case <-allDone:
		res.Completed = true
	case err = <-errCh:
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
	if err == nil {
		select {
		case err = <-errCh:
		default:
		}
	}
	return err
}

package stream

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// FuzzStreamLockstep throws random (seed, loss, window, generations)
// combinations at the deterministic driver and checks the invariants
// that hold for every run: the run is a pure function of its inputs, a
// completed run delivered the whole stream in order at every node, and
// per-node span memory was bounded whenever the run retired anything.
func FuzzStreamLockstep(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2), uint8(3))
	f.Add(int64(7), uint8(100), uint8(1), uint8(4))
	f.Add(int64(42), uint8(200), uint8(4), uint8(2))

	run := func(seed int64, lossByte, windowByte, gensByte uint8) *Result {
		const n, k, d = 6, 3, 16
		loss := float64(lossByte%128) / 256 // [0, 0.5)
		w := 1 + int(windowByte)%4
		gens := 1 + int(gensByte)%4
		var tr cluster.Transport = cluster.NewChanTransport(n, InboxBuffer(n, 2))
		if loss > 0 {
			tr = cluster.WithLoss(tr, loss, seed*31+7)
		}
		res, err := Run(context.Background(), Config{
			N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
			Seed: seed, Lockstep: true, Transport: tr, MaxTicks: 50000,
		})
		if err != nil {
			panic(err) // decode corruption — always a bug
		}
		res.Elapsed = 0
		return res
	}

	f.Fuzz(func(t *testing.T, seed int64, lossByte, windowByte, gensByte uint8) {
		a := run(seed, lossByte, windowByte, gensByte)
		b := run(seed, lossByte, windowByte, gensByte)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same inputs, different runs:\n%+v\n%+v", a, b)
		}
		gens := 1 + int(gensByte)%4
		if !a.Completed {
			t.Fatalf("run did not complete in 50000 ticks (loss %d, window %d, gens %d)",
				lossByte%128, 1+int(windowByte)%4, gens)
		}
		for id, m := range a.Nodes {
			if m.Delivered != gens {
				t.Errorf("node %d delivered %d of %d generations on a completed run", id, m.Delivered, gens)
			}
		}
	})
}

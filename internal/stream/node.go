package stream

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/rlnc"
	"repro/internal/token"
	"repro/internal/wire"
)

// newGenRand returns the PRNG for generation g of a seeded stream. The
// multiplier just separates the per-generation streams.
func newGenRand(seed int64, g int) *rand.Rand {
	return rand.New(rand.NewSource(seed + 1000003*int64(g) + 1))
}

// genOwner returns the node where token j of generation g originates.
// Origins rotate across the cluster so every node takes sourcing turns.
func genOwner(g, k, j, n int) int { return (g*k + j) % n }

// genState is one live generation at one node.
type genState struct {
	span *rlnc.Span
	// decoded is set once the span reaches full coefficient rank; the
	// span stays live for recoding to stragglers until the generation
	// retires below the cluster-wide watermark frontier.
	decoded bool
	// ackedFull[i] records that node i's ack reported full rank for
	// this generation; ackedCount counts them. Once every peer has,
	// emitting the generation is pure waste and it leaves the emission
	// rotation early, ahead of the watermark frontier retiring it.
	ackedFull  []bool
	ackedCount int
}

// node is the per-node streaming protocol state, shared by the lockstep
// and async drivers. All methods are single-threaded per node: the
// lockstep driver calls them from one goroutine, the async driver from
// the node's own goroutine.
type node struct {
	id      int
	n       int
	k       int
	d       int // payload bits
	vecBits int // k + UIDBits + d, the span's column count
	window  int
	gens    int
	fanout  int
	src     Source
	rng     *rand.Rand
	deliver DeliverFunc

	// base is the retirement frontier: the oldest generation not yet
	// known to be decoded by every node (== min over marks). Spans
	// below base are GC'd.
	base int
	// spans holds the live generations, keyed by generation number.
	spans map[int]*genState
	// pool holds Reset spans for reuse by future generations.
	pool []*rlnc.Span
	// marks[i] is the highest delivery watermark learned for node i
	// (marks[id] is maintained locally as delivered).
	marks []int
	// delivered is the number of generations decoded and handed to the
	// consumer, in order.
	delivered int
	// cursor round-robins data emissions across the active window.
	cursor int
	// cands is the emission candidate scratch buffer.
	cands []int

	// tx/rx are the node's reusable packet scratches (emitInto /
	// UnmarshalInto targets) and ring recycles wire buffers between the
	// node's receive and send sides; all three are only ever touched by
	// the goroutine driving this node.
	tx   wire.Packet
	rx   wire.Packet
	ring *cluster.BufRing

	m *NodeMetrics
	// err records a delivery verification failure; the drivers abort
	// the run when set.
	err error
}

func newNode(id int, cfg Config, src Source, m *NodeMetrics) *node {
	return &node{
		id:      id,
		n:       cfg.N,
		k:       cfg.K,
		d:       cfg.PayloadBits,
		vecBits: cfg.K + token.UIDBits + cfg.PayloadBits,
		window:  cfg.window(),
		gens:    cfg.Generations,
		fanout:  cfg.fanout(),
		src:     src,
		rng:     rand.New(rand.NewSource(cfg.Seed + 7919*int64(id) + 1)),
		deliver: cfg.Deliver,
		spans:   make(map[int]*genState),
		marks:   make([]int, cfg.N),
		ring:    cluster.NewBufRing(cluster.DefaultRingCap),
		m:       m,
	}
}

// recv decodes one drained inbox buffer into the rx scratch, absorbs
// it, and recycles the buffer into the node's ring. It reports whether
// the packet changed the node's state.
func (nd *node) recv(raw []byte) bool {
	return cluster.DecodeRecycle(&nd.rx, nd.ring, raw) && nd.absorb(&nd.rx)
}

// ensureGen returns generation g's state, creating the span (from the
// pool when possible) and injecting this node's source tokens on first
// touch. It must only be called for g in [base, gens).
func (nd *node) ensureGen(g int) *genState {
	if gs, ok := nd.spans[g]; ok {
		return gs
	}
	var span *rlnc.Span
	if len(nd.pool) > 0 {
		span = nd.pool[len(nd.pool)-1]
		nd.pool = nd.pool[:len(nd.pool)-1]
	} else {
		span = rlnc.NewSpan(nd.k, token.UIDBits+nd.d)
	}
	gs := &genState{span: span}
	nd.spans[g] = gs

	owned := false
	for j := 0; j < nd.k; j++ {
		if genOwner(g, nd.k, j, nd.n) == nd.id {
			owned = true
			break
		}
	}
	if owned {
		toks := nd.src.Generation(g)
		for j := 0; j < nd.k; j++ {
			if genOwner(g, nd.k, j, nd.n) == nd.id {
				gs.span.Add(rlnc.Encode(j, nd.k, cluster.TokenVec(toks[j])))
			}
		}
		nd.checkDecoded(g, gs)
	}
	if len(nd.spans) > nd.m.MaxActiveGens {
		nd.m.MaxActiveGens = len(nd.spans)
	}
	return gs
}

// checkDecoded marks g decoded once its span has full coefficient rank
// and pushes the in-order delivery frontier as far as it now reaches.
func (nd *node) checkDecoded(g int, gs *genState) {
	if !gs.decoded && gs.span.CanDecode() {
		gs.decoded = true
	}
	nd.deliverReady()
}

// deliverReady decodes, verifies and delivers generations in order,
// advancing this node's watermark.
func (nd *node) deliverReady() {
	for nd.delivered < nd.gens {
		gs, ok := nd.spans[nd.delivered]
		if !ok || !gs.decoded {
			return
		}
		g := nd.delivered
		vecs, err := gs.span.Decode()
		if err != nil {
			nd.err = fmt.Errorf("stream: node %d generation %d: %w", nd.id, g, err)
			return
		}
		toks := make([]token.Token, len(vecs))
		for j, v := range vecs {
			toks[j] = cluster.VecToken(v)
		}
		for j, want := range nd.src.Generation(g) {
			if !toks[j].Equal(want) {
				nd.err = fmt.Errorf("stream: node %d generation %d token %d decoded to %v, want %v",
					nd.id, g, j, toks[j].UID, want.UID)
				return
			}
		}
		nd.delivered++
		nd.marks[nd.id] = nd.delivered
		nd.m.Delivered = nd.delivered
		if nd.deliver != nil {
			nd.deliver(nd.id, g, toks)
		}
	}
}

// gc retires every generation below the cluster-wide watermark
// frontier: their spans are Reset into the pool and the window slides.
func (nd *node) gc() {
	floor := nd.marks[0]
	for _, w := range nd.marks[1:] {
		if w < floor {
			floor = w
		}
	}
	for g := nd.base; g < floor; g++ {
		if gs, ok := nd.spans[g]; ok {
			gs.span.Reset()
			nd.pool = append(nd.pool, gs.span)
			delete(nd.spans, g)
		}
	}
	if floor > nd.base {
		nd.base = floor
	}
}

// advance retires what the frontier allows and opens every generation
// the window now admits, looping until the state is stable: opening a
// window generation can decode and deliver it on the spot (a node that
// sources a whole generation, or n = 1), which moves the frontier and
// admits the next one.
func (nd *node) advance() {
	for {
		prevBase, prevDelivered := nd.base, nd.delivered
		nd.gc()
		hi := nd.base + nd.window
		if hi > nd.gens {
			hi = nd.gens
		}
		for g := nd.base; g < hi; g++ {
			nd.ensureGen(g)
		}
		if nd.base == prevBase && nd.delivered == prevDelivered {
			break
		}
	}
	nd.noteMemory()
}

// noteMemory samples the current span footprint into the peak metrics.
func (nd *node) noteMemory() {
	bytes := 0
	for _, gs := range nd.spans {
		bytes += gs.span.MemoryBytes()
	}
	if bytes > nd.m.MaxSpanBytes {
		nd.m.MaxSpanBytes = bytes
	}
	if len(nd.spans) > nd.m.MaxActiveGens {
		nd.m.MaxActiveGens = len(nd.spans)
	}
}

// prime opens the node's initial window so origins have something to
// say before any packet arrives, and delivers whatever is
// self-contained (the n = 1 case decodes everything right here).
func (nd *node) prime() { nd.advance() }

// done reports whether the node has delivered the whole stream.
func (nd *node) done() bool { return nd.delivered >= nd.gens }

// absorb ingests one packet, reporting whether it changed this node's
// state (grew a span or advanced a watermark) — the async driver's
// emit-on-progress trigger. The packet is the caller's reused scratch:
// everything retained (span rows, watermarks, rank bits) is copied.
func (nd *node) absorb(p *wire.Packet) bool {
	switch p.Env.Type {
	case wire.TypeCoded:
		nd.m.PacketsIn++
		g := int(p.Env.Epoch)
		if g < nd.base || g >= nd.gens {
			nd.m.Stale++
			return false
		}
		cd := p.Coded
		if cd.K != nd.k || cd.Vec.Len() != nd.vecBits {
			return false
		}
		gs := nd.ensureGen(g)
		if gs.decoded || !gs.span.Add(cd) {
			return false
		}
		nd.m.Innovative++
		nd.checkDecoded(g, gs)
		nd.advance()
		return true
	case wire.TypeAck:
		nd.m.AcksIn++
		changed := nd.mergeMark(int(p.Env.Sender), int(p.Ack.Watermark))
		for _, pm := range p.Ack.Peers {
			changed = nd.mergeMark(int(pm.Node), int(pm.Watermark)) || changed
		}
		for _, gr := range p.Ack.Ranks {
			nd.markRank(int(p.Env.Sender), int(gr.Gen), int(gr.Rank))
		}
		if changed {
			nd.advance()
		}
		return changed
	}
	return false
}

// markRank folds one first-person rank summary entry into the
// generation's full-rank tally. Ranks never regress, so a set bit is
// permanent; only live spans are updated (the hint is worthless once
// the generation retired, and not worth opening a span for).
func (nd *node) markRank(sender, g, rank int) {
	if rank < nd.k || sender < 0 || sender >= nd.n || sender == nd.id {
		return
	}
	gs, ok := nd.spans[g]
	if !ok {
		return
	}
	if gs.ackedFull == nil {
		gs.ackedFull = make([]bool, nd.n)
	}
	if !gs.ackedFull[sender] {
		gs.ackedFull[sender] = true
		gs.ackedCount++
	}
}

// mergeMark folds one learned watermark into the view (pointwise max).
func (nd *node) mergeMark(id, w int) bool {
	if id < 0 || id >= nd.n || id == nd.id {
		return false
	}
	if w > nd.gens {
		w = nd.gens
	}
	if w <= nd.marks[id] {
		return false
	}
	nd.marks[id] = w
	return true
}

// emitDataInto draws one fresh coded packet from the active window into
// the node's tx scratch, round-robining across the generations that
// have anything to say. A decoded generation keeps recoding for
// stragglers until it retires.
func (nd *node) emitDataInto(p *wire.Packet) bool {
	hi := nd.base + nd.window
	if hi > nd.gens {
		hi = nd.gens
	}
	nd.cands = nd.cands[:0]
	for g := nd.base; g < hi; g++ {
		gs := nd.ensureGen(g)
		// A generation every peer has acked at full rank has no
		// audience left; skip it without waiting for retirement.
		if gs.span.Rank() > 0 && gs.ackedCount < nd.n-1 {
			nd.cands = append(nd.cands, g)
		}
	}
	if len(nd.cands) == 0 {
		return false
	}
	g := nd.cands[nd.cursor%len(nd.cands)]
	nd.cursor++
	if !nd.spans[g].span.RandomCombinationInto(&p.Coded, nd.rng) {
		return false
	}
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeCoded, Sender: uint32(nd.id), Epoch: uint32(g)}
	return true
}

// emitAckInto summarizes this node's progress into the tx scratch: its
// watermark, the span ranks of its active window, and its full gossip
// view of peer watermarks. The scratch's entry slices are truncated and
// refilled, so steady-state acks allocate nothing.
func (nd *node) emitAckInto(p *wire.Packet) {
	hi := nd.base + nd.window
	if hi > nd.gens {
		hi = nd.gens
	}
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeAck, Sender: uint32(nd.id), Epoch: uint32(nd.delivered)}
	ack := &p.Ack
	ack.Watermark = uint32(nd.delivered)
	ack.Ranks = ack.Ranks[:0]
	ack.Peers = ack.Peers[:0]
	for g := nd.base; g < hi; g++ {
		if gs, ok := nd.spans[g]; ok {
			ack.Ranks = append(ack.Ranks, wire.GenRank{Gen: uint32(g), Rank: uint32(gs.span.Rank())})
		}
	}
	for i, w := range nd.marks {
		if i == nd.id {
			w = nd.delivered
		}
		if w > 0 {
			ack.Peers = append(ack.Peers, wire.PeerMark{Node: uint32(i), Watermark: uint32(w)})
		}
	}
}

// randPeer picks a uniform peer other than the node itself.
func (nd *node) randPeer() int {
	p := nd.rng.Intn(nd.n - 1)
	if p >= nd.id {
		p++
	}
	return p
}

// pushData sends up to fanout fresh coded packets to random peers,
// marshalling each through a recycled ring buffer.
func (nd *node) pushData(tr cluster.Transport) {
	if nd.n < 2 {
		return
	}
	for f := 0; f < nd.fanout; f++ {
		if !nd.emitDataInto(&nd.tx) {
			return
		}
		peer := nd.randPeer()
		nd.m.PacketsOut++
		nd.m.BitsOut += int64(nd.tx.Bits())
		buf := nd.tx.AppendTo(nd.ring.Get()[:0])
		if !tr.Send(nd.id, peer, buf) {
			nd.m.Dropped++
			nd.ring.Put(buf)
		}
	}
}

// pushAck sends one progress ack to a random peer.
func (nd *node) pushAck(tr cluster.Transport) {
	if nd.n < 2 {
		return
	}
	nd.emitAckInto(&nd.tx)
	peer := nd.randPeer()
	nd.m.AcksOut++
	nd.m.BitsOut += int64(nd.tx.Bits())
	buf := nd.tx.AppendTo(nd.ring.Get()[:0])
	if !tr.Send(nd.id, peer, buf) {
		nd.m.Dropped++
		nd.ring.Put(buf)
	}
}

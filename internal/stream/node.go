package stream

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/rlnc"
	"repro/internal/telemetry"
	"repro/internal/token"
	"repro/internal/wire"
)

// newGenRand returns the PRNG for generation g of a seeded stream. The
// multiplier just separates the per-generation streams.
func newGenRand(seed int64, g int) *rand.Rand {
	return rand.New(rand.NewSource(seed + 1000003*int64(g) + 1))
}

// genOwner returns the node where token j of generation g originates.
// Origins rotate across the initial membership so every founding node
// takes sourcing turns; joiners never source primarily but may adopt
// the tokens of a departed origin (see adoptOrphans).
func genOwner(g, k, j, n int) int { return (g*k + j) % n }

// genState is one live generation at one node.
type genState struct {
	span *rlnc.Span
	// decoded is set once the span reaches full coefficient rank; the
	// span stays live for recoding to stragglers until the generation
	// retires below the cluster-wide watermark frontier.
	decoded bool
	// ackedFull[i] records that node i's ack reported full rank for
	// this generation; ackedCount counts them. Once every peer has,
	// emitting the generation is pure waste and it leaves the emission
	// rotation early, ahead of the watermark frontier retiring it.
	ackedFull  []bool
	ackedCount int
	// adopted[j] records that this node already injected token j on
	// behalf of a departed origin (see adoptOrphans), so the adoption
	// sweep does not re-encode the same rows every tick.
	adopted []bool
}

// node is the per-node streaming protocol state, shared by the lockstep
// and async drivers. All methods are single-threaded per node: the
// lockstep driver calls them from one goroutine, the async driver from
// the node's own goroutine (and across a crash/restart the drivers
// sequence the handoff, so state never has two owners).
type node struct {
	id       int
	n        int // initial membership (origin rotation modulus)
	maxN     int // node id space: n + churn joins
	k        int
	d        int // payload bits
	vecBits  int // k + UIDBits + d, the span's column count
	window   int
	gens     int
	fanout   int
	churn    bool
	lockstep bool
	src      Source
	rng      *rand.Rand
	deliver  DeliverFunc

	// view is the node's membership view; peer sampling, hello
	// bookkeeping and — crucially — the retirement frontier run over
	// it, so a crashed node's stale watermark stops holding the
	// frontier once suspicion evicts it.
	view *cluster.View
	// now is the node's current clock in view-stamp units (lockstep
	// tick / async nanoseconds), set by the driver before it hands the
	// node packets or emission slots.
	now int64

	// base is the retirement frontier: the oldest generation not yet
	// known to be decoded by every frontier member. Spans below base
	// are GC'd.
	base int
	// spans holds the live generations, keyed by generation number.
	spans map[int]*genState
	// pool holds Reset spans for reuse by future generations.
	pool []*rlnc.Span
	// marks[i] is the highest delivery watermark learned for node i
	// (marks[id] is maintained locally as delivered).
	marks []int
	// delivered is the absolute watermark: generations in
	// [startGen, delivered) were decoded, verified and handed to the
	// consumer in order.
	delivered int
	// startGen is where this node's delivery obligation starts: 0 for
	// founding members, the retirement frontier learned at join time
	// for joiners (generations before it were already cluster-delivered
	// and may be unobtainable; a joiner does not re-deliver them).
	startGen int
	// bootstrapped is false for a joiner until it learns the frontier
	// from its first watermark gossip; until then it opens no
	// generations and sends no acks, only hello announcements.
	bootstrapped bool
	// cursor round-robins data emissions across the active window.
	cursor int
	// cands is the emission candidate scratch buffer.
	cands []int
	// serveQ queues catch-up requests discovered in acks: a peer
	// reporting partial rank for a generation this node already
	// retired is behind the frontier (a joiner whose bootstrap lost a
	// race, or a restarted node); the generations are re-derivable
	// from the pure Source, so the next emission slot serves them back
	// directly. Only ever non-empty in churn runs.
	serveQ []serveReq

	// tx/rx are the node's reusable packet scratches (emitInto /
	// UnmarshalInto targets) and ring recycles wire buffers between the
	// node's receive and send sides; all three are only ever touched by
	// the goroutine driving this node.
	tx   wire.Packet
	rx   wire.Packet
	ring *cluster.BufRing

	m *NodeMetrics
	// err records a delivery verification failure; the drivers abort
	// the run when set.
	err error

	// tel traces the node's protocol events; nil is the disabled state
	// (every recording call is a nil-receiver no-op). Owned by the same
	// goroutine/lockstep slot as the rest of the node.
	tel *telemetry.Recorder
	// eligPrev tracks each peer's frontier eligibility between gc
	// passes, so suspicion transitions (eligible → not) can be traced.
	// Lazily allocated only when tracing a churn run; nil otherwise.
	eligPrev []bool

	// known optionally gates peer sampling on routability: a transport
	// with an address book (udpnet) may know fewer peers than the view
	// believes live. Nil (every in-process run) keeps randPeer a single
	// Pick draw, which the lockstep golden transcripts pin.
	known func(int) bool

	// rank, when non-nil, publishes the node's delivery watermark for
	// the targeted-crash oracle (crashfrontier kills the straggler).
	rank *atomic.Int64

	// out, when non-nil, routes this node's emissions into its shard's
	// private outbox instead of the transport: the sharded lockstep
	// driver replays outboxes serially at the tick's exchange barrier so
	// middleware rng draws happen in serial-driver order. Cleared
	// around churn-phase helloAll, whose sends must land inline (the
	// serial driver drains them the same tick).
	out *cluster.Outbox
}

// newNode builds the runtime state for one node. live is the current
// membership snapshot (the node's initial view / a joiner's contact
// list); joiner marks the node as needing frontier bootstrap.
func newNode(id int, cfg Config, src Source, m *NodeMetrics, live []bool, now int64, joiner bool) *node {
	maxN := cfg.maxNodes()
	nd := &node{
		id:           id,
		n:            cfg.N,
		maxN:         maxN,
		k:            cfg.K,
		d:            cfg.PayloadBits,
		vecBits:      cfg.K + token.UIDBits + cfg.PayloadBits,
		window:       cfg.window(),
		gens:         cfg.Generations,
		fanout:       cfg.fanout(),
		churn:        cfg.Churn != nil,
		lockstep:     cfg.Lockstep,
		src:          src,
		rng:          rand.New(rand.NewSource(cfg.Seed + 7919*int64(id) + 1)),
		deliver:      cfg.Deliver,
		spans:        make(map[int]*genState),
		marks:        make([]int, maxN),
		view:         cluster.NewView(id, maxN),
		now:          now,
		bootstrapped: !joiner,
		ring:         cluster.NewBufRing(cluster.DefaultRingCap),
		m:            m,
		tel:          cfg.Telemetry,
	}
	for pid, l := range live {
		if l {
			nd.view.Mark(pid, now)
		}
	}
	nd.view.SuspectAfter = cfg.suspectAfter()
	m.Spawned = true
	m.Live = true
	return nd
}

// recv decodes one drained inbox buffer into the rx scratch, absorbs
// it, and recycles the buffer into the node's ring. It reports whether
// the packet changed the node's state.
func (nd *node) recv(raw []byte) bool {
	return cluster.DecodeRecycle(&nd.rx, nd.ring, raw) && nd.absorb(&nd.rx)
}

// ensureGen returns generation g's state, creating the span (from the
// pool when possible) and injecting this node's source tokens on first
// touch. It must only be called for g in [base, gens).
func (nd *node) ensureGen(g int) *genState {
	if gs, ok := nd.spans[g]; ok {
		return gs
	}
	var span *rlnc.Span
	if len(nd.pool) > 0 {
		span = nd.pool[len(nd.pool)-1]
		nd.pool = nd.pool[:len(nd.pool)-1]
	} else {
		span = rlnc.NewSpan(nd.k, token.UIDBits+nd.d)
	}
	gs := &genState{span: span}
	nd.spans[g] = gs

	owned := false
	for j := 0; j < nd.k; j++ {
		if genOwner(g, nd.k, j, nd.n) == nd.id {
			owned = true
			break
		}
	}
	if owned {
		toks := nd.src.Generation(g)
		for j := 0; j < nd.k; j++ {
			if genOwner(g, nd.k, j, nd.n) == nd.id {
				gs.span.Add(rlnc.Encode(j, nd.k, cluster.TokenVec(toks[j])))
			}
		}
		nd.checkDecoded(g, gs)
	}
	if len(nd.spans) > nd.m.MaxActiveGens {
		nd.m.MaxActiveGens = len(nd.spans)
	}
	return gs
}

// checkDecoded marks g decoded once its span has full coefficient rank
// and pushes the in-order delivery frontier as far as it now reaches.
func (nd *node) checkDecoded(g int, gs *genState) {
	if !gs.decoded && gs.span.CanDecode() {
		gs.decoded = true
	}
	nd.deliverReady()
}

// deliverReady decodes, verifies and delivers generations in order,
// advancing this node's watermark.
func (nd *node) deliverReady() {
	for nd.delivered < nd.gens {
		gs, ok := nd.spans[nd.delivered]
		if !ok || !gs.decoded {
			return
		}
		g := nd.delivered
		vecs, err := gs.span.Decode()
		if err != nil {
			nd.err = fmt.Errorf("stream: node %d generation %d: %w", nd.id, g, err)
			return
		}
		toks := make([]token.Token, len(vecs))
		for j, v := range vecs {
			toks[j] = cluster.VecToken(v)
		}
		for j, want := range nd.src.Generation(g) {
			if !toks[j].Equal(want) {
				nd.err = fmt.Errorf("stream: node %d generation %d token %d decoded to %v, want %v",
					nd.id, g, j, toks[j].UID, want.UID)
				return
			}
		}
		if nd.delivered == nd.startGen && nd.startGen > 0 && nd.m.CaughtUpTick == 0 && nd.m.CaughtUpAt == 0 {
			// First delivery of a mid-stream joiner: it has reached the
			// cluster watermark it learned at join time.
			if nd.lockstep {
				nd.m.CaughtUpTick = int(nd.now)
			} else {
				nd.m.CaughtUpAt = time.Duration(nd.now)
			}
		}
		nd.delivered++
		nd.marks[nd.id] = nd.delivered
		if nd.rank != nil {
			nd.rank.Store(int64(nd.delivered))
		}
		nd.m.Delivered++
		nd.tel.Event(nd.id, nd.now, telemetry.KindDeliver, int64(g), int64(nd.delivered), 0)
		if nd.deliver != nil {
			nd.deliver(nd.id, g, toks)
		}
	}
}

// gc retires every generation below the cluster-wide watermark
// frontier: their spans are Reset into the pool and the window slides.
// The frontier is the minimum watermark over this node plus every
// *eligible* view member — dead or suspected nodes drop out, so a
// crashed node's forever-stale watermark cannot deadlock retirement;
// an unsuspected silent node still holds the frontier, which only
// delays retirement, never corrupts it.
func (nd *node) gc() {
	// Suspicion transitions are traced by diffing eligibility between
	// gc passes; the first pass only snapshots (no transitions yet).
	trackSusp := nd.tel != nil && nd.churn
	if trackSusp && nd.eligPrev == nil {
		nd.eligPrev = make([]bool, nd.maxN)
		for id := range nd.eligPrev {
			nd.eligPrev[id] = nd.view.Eligible(id, nd.now)
		}
		trackSusp = false
	}
	floor := nd.delivered
	for id := 0; id < nd.maxN; id++ {
		if id == nd.id {
			continue
		}
		elig := nd.view.Eligible(id, nd.now)
		if trackSusp {
			if nd.eligPrev[id] && !elig {
				nd.tel.Event(nd.id, nd.now, telemetry.KindSuspect, int64(id), 0, 0)
			}
			nd.eligPrev[id] = elig
		}
		if !elig {
			continue
		}
		if nd.marks[id] < floor {
			floor = nd.marks[id]
		}
	}
	for g := nd.base; g < floor; g++ {
		if gs, ok := nd.spans[g]; ok {
			gs.span.Reset()
			nd.pool = append(nd.pool, gs.span)
			delete(nd.spans, g)
			nd.tel.Event(nd.id, nd.now, telemetry.KindRetire, int64(g), 0, 0)
		}
	}
	if floor > nd.base {
		nd.base = floor
		nd.tel.Event(nd.id, nd.now, telemetry.KindFrontier, int64(floor), 0, 0)
	}
}

// advance retires what the frontier allows and opens every generation
// the window now admits, looping until the state is stable: opening a
// window generation can decode and deliver it on the spot (a node that
// sources a whole generation, or n = 1), which moves the frontier and
// admits the next one. A joiner that has not yet learned the frontier
// opens nothing.
func (nd *node) advance() {
	if !nd.bootstrapped {
		return
	}
	for {
		prevBase, prevDelivered := nd.base, nd.delivered
		nd.gc()
		hi := nd.base + nd.window
		if hi > nd.gens {
			hi = nd.gens
		}
		for g := nd.base; g < hi; g++ {
			nd.ensureGen(g)
		}
		if nd.base == prevBase && nd.delivered == prevDelivered {
			break
		}
	}
	nd.noteMemory()
}

// noteMemory samples the current span footprint into the peak metrics.
func (nd *node) noteMemory() {
	bytes := 0
	for _, gs := range nd.spans {
		bytes += gs.span.MemoryBytes()
	}
	if bytes > nd.m.MaxSpanBytes {
		nd.m.MaxSpanBytes = bytes
	}
	if len(nd.spans) > nd.m.MaxActiveGens {
		nd.m.MaxActiveGens = len(nd.spans)
	}
}

// prime opens the node's initial window so origins have something to
// say before any packet arrives, and delivers whatever is
// self-contained (the n = 1 case decodes everything right here).
func (nd *node) prime() { nd.advance() }

// done reports whether the node has delivered the whole stream (from
// its startGen onward; a joiner's obligation starts at the frontier it
// learned at join time).
func (nd *node) done() bool { return nd.bootstrapped && nd.delivered >= nd.gens }

// bootstrap consumes the first watermark gossip a joiner (or a
// restarted node re-learning the frontier) sees: the highest watermark
// it knows is the most conservative safe starting point — any
// generation at or above it cannot have been retired anywhere
// (retirement needs every member's watermark to exceed it), and once
// this node's own startGen watermark circulates, the frontier cannot
// pass it. Generations below startGen were already delivered
// cluster-wide and may be unobtainable: a joiner skips them, and a
// persisted-restart node forfeits whatever the cluster retired while
// it was down (its own persisted watermark is in marks, so it never
// skips something it could still deliver).
func (nd *node) bootstrap() {
	start := 0
	for _, w := range nd.marks {
		if w > start {
			start = w
		}
	}
	if d := nd.delivered; d > start {
		start = d
	}
	if start > nd.gens {
		start = nd.gens
	}
	nd.startGen = start
	nd.delivered = start
	nd.marks[nd.id] = start
	nd.m.StartGen = start
	// Sweep persisted spans the cluster retired while this node was
	// down; base only ever moves forward.
	for g, gs := range nd.spans {
		if g < start {
			gs.span.Reset()
			nd.pool = append(nd.pool, gs.span)
			delete(nd.spans, g)
		}
	}
	if start > nd.base {
		nd.base = start
	}
	nd.bootstrapped = true
	nd.advance()
}

// absorb ingests one packet, reporting whether it changed this node's
// state (grew a span, advanced a watermark, or bootstrapped a joiner)
// — the async driver's emit-on-progress trigger. The packet is the
// caller's reused scratch: everything retained (span rows, watermarks,
// rank bits, view entries) is copied.
func (nd *node) absorb(p *wire.Packet) bool {
	sender := int(p.Env.Sender)
	switch p.Env.Type {
	case wire.TypeHello:
		if p.Hello.Leaving {
			nd.tel.Event(nd.id, nd.now, telemetry.KindRecvHello, int64(sender), 1, 0)
			nd.view.Remove(sender)
			return false
		}
		nd.tel.Event(nd.id, nd.now, telemetry.KindRecvHello, int64(sender), 0, 0)
		nd.view.Mark(sender, nd.now)
		for _, pid := range p.Hello.Peers {
			// Third-party introductions never refresh a known peer's
			// stamp (see View.Introduce), or suspicion could never evict
			// a crashed node that peers keep listing.
			nd.view.Introduce(int(pid), nd.now)
		}
		return false
	case wire.TypeCoded:
		nd.m.PacketsIn++
		nd.tel.Event(nd.id, nd.now, telemetry.KindRecv, int64(sender), int64(p.Env.Epoch), 0)
		nd.view.Mark(sender, nd.now)
		if !nd.bootstrapped {
			nd.m.Stale++
			return false
		}
		g := int(p.Env.Epoch)
		if g < nd.base || g >= nd.gens {
			nd.m.Stale++
			return false
		}
		cd := p.Coded
		if cd.K != nd.k || cd.Vec.Len() != nd.vecBits {
			return false
		}
		gs := nd.ensureGen(g)
		if gs.decoded || !gs.span.Add(cd) {
			if nd.tel != nil {
				nd.tel.Event(nd.id, nd.now, telemetry.KindInsert, int64(g), int64(gs.span.Rank()), 0)
			}
			return false
		}
		nd.m.Innovative++
		if nd.tel != nil {
			nd.tel.Event(nd.id, nd.now, telemetry.KindInsert, int64(g), int64(gs.span.Rank()), 1)
		}
		nd.checkDecoded(g, gs)
		nd.advance()
		return true
	case wire.TypeAck:
		nd.m.AcksIn++
		nd.tel.Event(nd.id, nd.now, telemetry.KindRecvAck, int64(sender), int64(p.Ack.Watermark), 0)
		nd.view.Mark(sender, nd.now)
		changed := nd.mergeMark(sender, int(p.Ack.Watermark))
		for _, pm := range p.Ack.Peers {
			changed = nd.mergeMark(int(pm.Node), int(pm.Watermark)) || changed
		}
		if !nd.bootstrapped {
			nd.bootstrap()
			return true
		}
		for _, gr := range p.Ack.Ranks {
			nd.markRank(sender, int(gr.Gen), int(gr.Rank))
			if nd.churn && int(gr.Rank) < nd.k && int(gr.Gen) < nd.base {
				// The sender is behind the retirement frontier: it still
				// needs a generation this node retired. Without churn this
				// cannot happen (retirement requires every watermark to
				// have passed the generation), but a joiner can bootstrap
				// from a stale watermark view that trails what the cluster
				// has already retired — queue a catch-up serve, or it
				// would be starved forever (every span is gone and the
				// origin, being alive, never re-sources).
				nd.queueServe(sender, int(gr.Gen))
			}
		}
		if changed {
			nd.advance()
		}
		return changed
	}
	return false
}

// serveReq is one queued catch-up serve: re-source generation gen
// directly to peer.
type serveReq struct {
	peer, gen int
}

// queueServe records a catch-up request, deduplicating until the next
// emission slot drains the queue.
func (nd *node) queueServe(peer, gen int) {
	for _, rq := range nd.serveQ {
		if rq.peer == peer && rq.gen == gen {
			return
		}
	}
	nd.serveQ = append(nd.serveQ, serveReq{peer: peer, gen: gen})
}

// serveCatchup re-sources queued retired generations straight from the
// Source (a pure function, so no span is needed) as plain unit-row
// coded packets addressed to the straggler. Losses heal themselves:
// the straggler's next ack still shows partial rank and re-queues the
// serve.
func (nd *node) serveCatchup(tr cluster.Transport) {
	if len(nd.serveQ) == 0 {
		return
	}
	for _, rq := range nd.serveQ {
		toks := nd.src.Generation(rq.gen)
		for j := 0; j < nd.k; j++ {
			nd.tx.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeCoded, Sender: uint32(nd.id), Epoch: uint32(rq.gen)}
			nd.tx.Coded = rlnc.Encode(j, nd.k, cluster.TokenVec(toks[j]))
			nd.m.PacketsOut++
			bits := int64(nd.tx.Bits())
			nd.m.BitsOut += bits
			buf := nd.tx.AppendTo(nd.ring.Get()[:0])
			if nd.out != nil {
				nd.out.Add(cluster.OutEntry{From: nd.id, To: rq.peer, Kind: cluster.OutData, Arg: int64(rq.gen), Bits: bits, Buf: buf})
				continue
			}
			nd.tel.Event(nd.id, nd.now, telemetry.KindSend, int64(rq.peer), int64(rq.gen), bits)
			if !tr.Send(nd.id, rq.peer, buf) {
				nd.m.Dropped++
				nd.tel.Event(nd.id, nd.now, telemetry.KindDrop, int64(rq.peer), 0, 0)
				nd.ring.Put(buf)
			}
		}
	}
	nd.serveQ = nd.serveQ[:0]
}

// markRank folds one first-person rank summary entry into the
// generation's full-rank tally. Ranks never regress, so a set bit is
// permanent; only live spans are updated (the hint is worthless once
// the generation retired, and not worth opening a span for).
func (nd *node) markRank(sender, g, rank int) {
	if rank < nd.k || sender < 0 || sender >= nd.maxN || sender == nd.id {
		return
	}
	gs, ok := nd.spans[g]
	if !ok {
		return
	}
	if gs.ackedFull == nil {
		gs.ackedFull = make([]bool, nd.maxN)
	}
	if !gs.ackedFull[sender] {
		gs.ackedFull[sender] = true
		gs.ackedCount++
	}
}

// mergeMark folds one learned watermark into the view (pointwise max).
func (nd *node) mergeMark(id, w int) bool {
	if id < 0 || id >= nd.maxN || id == nd.id {
		return false
	}
	if w > nd.gens {
		w = nd.gens
	}
	if w <= nd.marks[id] {
		return false
	}
	nd.marks[id] = w
	return true
}

// adoptOrphans re-sources tokens whose origin has left the view or
// fallen under suspicion: the lowest-id eligible node injects them
// from the (pure) Source so a generation can never be starved by its
// origin crashing before it shared anything. Several nodes may
// transiently disagree about who is lowest and double-inject, which
// costs nothing (identical rows are non-innovative); what matters is
// that at least one live node injects. Drivers call this once per
// tick/interval in churn runs.
func (nd *node) adoptOrphans() {
	if !nd.churn || !nd.bootstrapped {
		return
	}
	// Re-evaluate the frontier on the clock, not just on packets:
	// suspicion is a function of time, so a crashed peer's eviction can
	// unblock retirement (and open new window generations) at a moment
	// when no received packet changes any mark — without this, a fully
	// decoded window with saturated watermarks stalls forever the tick
	// the frontier's last blocker goes silent.
	nd.advance()
	if !nd.lowestEligible() {
		return
	}
	hi := nd.base + nd.window
	if hi > nd.gens {
		hi = nd.gens
	}
	progressed := false
	for g := nd.base; g < hi; g++ {
		gs, ok := nd.spans[g]
		if !ok || gs.decoded {
			continue
		}
		var toks []token.Token
		injected := false
		for j := 0; j < nd.k; j++ {
			owner := genOwner(g, nd.k, j, nd.n)
			if owner == nd.id || nd.view.Eligible(owner, nd.now) {
				continue
			}
			if gs.adopted == nil {
				gs.adopted = make([]bool, nd.k)
			}
			if gs.adopted[j] {
				continue
			}
			gs.adopted[j] = true
			if toks == nil {
				toks = nd.src.Generation(g)
			}
			if gs.span.Add(rlnc.Encode(j, nd.k, cluster.TokenVec(toks[j]))) {
				injected = true
			}
		}
		if injected {
			nd.checkDecoded(g, gs)
			progressed = true
		}
	}
	if progressed {
		nd.advance()
	}
}

// lowestEligible reports whether this node has the smallest id among
// the currently eligible view members — the deterministic adopter of
// orphaned origins.
func (nd *node) lowestEligible() bool {
	for id := 0; id < nd.id; id++ {
		if nd.view.Eligible(id, nd.now) {
			return false
		}
	}
	return true
}

// emitDataInto draws one fresh coded packet from the active window into
// the node's tx scratch, round-robining across the generations that
// have anything to say. A decoded generation keeps recoding for
// stragglers until it retires.
func (nd *node) emitDataInto(p *wire.Packet) bool {
	if !nd.bootstrapped {
		return false
	}
	hi := nd.base + nd.window
	if hi > nd.gens {
		hi = nd.gens
	}
	audience := nd.view.LiveCount() - 1
	nd.cands = nd.cands[:0]
	for g := nd.base; g < hi; g++ {
		gs := nd.ensureGen(g)
		// A generation every peer has acked at full rank has no
		// audience left; skip it without waiting for retirement.
		if gs.span.Rank() > 0 && gs.ackedCount < audience {
			nd.cands = append(nd.cands, g)
		}
	}
	if len(nd.cands) == 0 {
		return false
	}
	g := nd.cands[nd.cursor%len(nd.cands)]
	nd.cursor++
	if !nd.spans[g].span.RandomCombinationInto(&p.Coded, nd.rng) {
		return false
	}
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeCoded, Sender: uint32(nd.id), Epoch: uint32(g)}
	return true
}

// emitAckInto summarizes this node's progress into the tx scratch: its
// watermark, the span ranks of its active window, and its full gossip
// view of peer watermarks. The scratch's entry slices are truncated and
// refilled, so steady-state acks allocate nothing.
func (nd *node) emitAckInto(p *wire.Packet) {
	hi := nd.base + nd.window
	if hi > nd.gens {
		hi = nd.gens
	}
	p.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeAck, Sender: uint32(nd.id), Epoch: uint32(nd.delivered)}
	ack := &p.Ack
	ack.Watermark = uint32(nd.delivered)
	ack.Ranks = ack.Ranks[:0]
	ack.Peers = ack.Peers[:0]
	for g := nd.base; g < hi; g++ {
		if gs, ok := nd.spans[g]; ok {
			ack.Ranks = append(ack.Ranks, wire.GenRank{Gen: uint32(g), Rank: uint32(gs.span.Rank())})
		}
	}
	if nd.churn && nd.delivered < nd.gens && (nd.delivered < nd.base || nd.delivered >= hi) {
		// Always advertise the generation this node is actually stuck
		// on: a straggler whose base lags (it never learned a crashed
		// peer's watermark, say) would otherwise only report the lagging
		// window, and the peers that already retired its missing
		// generation would never learn to serve it back.
		rank := 0
		if gs, ok := nd.spans[nd.delivered]; ok {
			rank = gs.span.Rank()
		}
		ack.Ranks = append(ack.Ranks, wire.GenRank{Gen: uint32(nd.delivered), Rank: uint32(rank)})
	}
	for i, w := range nd.marks {
		if i == nd.id {
			w = nd.delivered
		}
		if w > 0 {
			ack.Peers = append(ack.Peers, wire.PeerMark{Node: uint32(i), Watermark: uint32(w)})
		}
	}
}

// randPeer picks a uniform live, unsuspected peer, or -1 when there is
// none. With a full view it draws exactly as the static runtime did,
// keeping churnless transcripts bit-identical. With a known gate it
// redraws a bounded number of times to land on a routable peer.
func (nd *node) randPeer() int {
	peer := nd.view.Pick(nd.rng, nd.now)
	if nd.known == nil {
		return peer
	}
	for tries := 0; tries < 4 && peer >= 0 && !nd.known(peer); tries++ {
		peer = nd.view.Pick(nd.rng, nd.now)
	}
	if peer >= 0 && !nd.known(peer) {
		return -1
	}
	return peer
}

// pushData sends up to fanout fresh coded packets to random peers,
// marshalling each through a recycled ring buffer. A node with nothing
// to gossip yet (a joiner awaiting bootstrap) instead announces itself
// to one random peer in churn runs, so peers keep learning it exists
// even if its join-time hello burst was lost.
func (nd *node) pushData(tr cluster.Transport) {
	if nd.view.LiveCount() < 2 {
		return
	}
	nd.serveCatchup(tr)
	sent := false
	for f := 0; f < nd.fanout; f++ {
		if !nd.emitDataInto(&nd.tx) {
			break
		}
		peer := nd.randPeer()
		if peer < 0 {
			return
		}
		sent = true
		nd.m.PacketsOut++
		bits := int64(nd.tx.Bits())
		nd.m.BitsOut += bits
		buf := nd.tx.AppendTo(nd.ring.Get()[:0])
		if nd.out != nil {
			nd.out.Add(cluster.OutEntry{From: nd.id, To: peer, Kind: cluster.OutData, Arg: int64(nd.tx.Env.Epoch), Bits: bits, Buf: buf})
			continue
		}
		nd.tel.Event(nd.id, nd.now, telemetry.KindSend, int64(peer), int64(nd.tx.Env.Epoch), bits)
		if !tr.Send(nd.id, peer, buf) {
			nd.m.Dropped++
			nd.tel.Event(nd.id, nd.now, telemetry.KindDrop, int64(peer), 0, 0)
			nd.ring.Put(buf)
		}
	}
	if !sent && nd.churn {
		if peer := nd.randPeer(); peer >= 0 {
			nd.buildHello(false)
			nd.sendHello(tr, peer)
		}
	}
}

// pushAck sends one progress ack to a random peer. A joiner holds its
// acks until it has bootstrapped: it has no watermark to report yet.
func (nd *node) pushAck(tr cluster.Transport) {
	if nd.view.LiveCount() < 2 || !nd.bootstrapped {
		return
	}
	nd.emitAckInto(&nd.tx)
	peer := nd.randPeer()
	if peer < 0 {
		return
	}
	nd.m.AcksOut++
	nd.m.BitsOut += int64(nd.tx.Bits())
	buf := nd.tx.AppendTo(nd.ring.Get()[:0])
	if nd.out != nil {
		nd.out.Add(cluster.OutEntry{From: nd.id, To: peer, Kind: cluster.OutAck, Arg: int64(nd.delivered), Buf: buf})
		return
	}
	nd.tel.Event(nd.id, nd.now, telemetry.KindSendAck, int64(peer), int64(nd.delivered), 0)
	if !tr.Send(nd.id, peer, buf) {
		nd.m.Dropped++
		nd.tel.Event(nd.id, nd.now, telemetry.KindDrop, int64(peer), 0, 0)
		nd.ring.Put(buf)
	}
}

// buildHello fills the tx scratch with a membership announcement
// carrying the node's current live view.
func (nd *node) buildHello(leaving bool) {
	nd.tx.Env = wire.Envelope{Version: wire.Version, Type: wire.TypeHello, Sender: uint32(nd.id), Epoch: 0}
	nd.tx.Hello.Leaving = leaving
	nd.tx.Hello.Peers = nd.view.AppendPeers(nd.tx.Hello.Peers[:0])
}

// sendHello marshals the tx scratch (built by buildHello) to one peer.
func (nd *node) sendHello(tr cluster.Transport, peer int) {
	nd.m.HellosOut++
	nd.m.BitsOut += int64(nd.tx.Bits())
	leaving := int64(0)
	if nd.tx.Hello.Leaving {
		leaving = 1
	}
	buf := nd.tx.AppendTo(nd.ring.Get()[:0])
	if nd.out != nil {
		nd.out.Add(cluster.OutEntry{From: nd.id, To: peer, Kind: cluster.OutHello, Arg: leaving, Buf: buf})
		return
	}
	nd.tel.Event(nd.id, nd.now, telemetry.KindSendHello, int64(peer), leaving, 0)
	if !tr.Send(nd.id, peer, buf) {
		nd.m.Dropped++
		nd.tel.Event(nd.id, nd.now, telemetry.KindDrop, int64(peer), 0, 0)
		nd.ring.Put(buf)
	}
}

// sample records one telemetry time-series point for the node: the
// rank of the generation at the delivery watermark (the one the node
// is working on), the watermark itself, inbox backlog and live-view
// size. A no-op without a recorder.
func (nd *node) sample(tr cluster.Transport) {
	if nd.tel == nil {
		return
	}
	rank := 0
	if gs, ok := nd.spans[nd.delivered]; ok {
		rank = gs.span.Rank()
	} else if nd.delivered >= nd.gens {
		rank = nd.k // stream finished
	}
	inbox := len(tr.Recv(nd.id))
	if nd.lockstep {
		nd.tel.SampleTick(nd.id, nd.now, rank, nd.delivered, inbox, nd.view.LiveCount())
	} else {
		nd.tel.Sample(nd.id, nd.now, rank, nd.delivered, inbox, nd.view.LiveCount())
	}
}

// helloAll announces to every peer currently in the view: the
// join/restart introduction burst, or the graceful-leave goodbye.
// Churn-phase hellos bypass the shard outbox and send inline: the
// serial driver delivers them to inboxes drained the same tick, so
// deferring them to the exchange barrier would delay delivery a tick
// and diverge from the serial transcript.
func (nd *node) helloAll(tr cluster.Transport, leaving bool) {
	out := nd.out
	nd.out = nil
	defer func() { nd.out = out }()
	nd.buildHello(leaving)
	for _, pid := range nd.tx.Hello.Peers {
		if int(pid) != nd.id {
			nd.sendHello(tr, int(pid))
		}
	}
}

package stream

// Bit-equality of the sharded lockstep stream driver against the
// serial one: the windowed pipeline, catch-up serving, ack gossip and
// churn bookkeeping must all replay identically at any shard count.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// shardedStreamFingerprint runs one seeded churn×loss lockstep stream
// run at the given shard count and flattens everything observable —
// aggregates, per-node metrics, the consumer delivery log, telemetry
// counters — into a string. The Deliver tracker takes a mutex: at
// shards>1 it is invoked concurrently from shard workers.
func shardedStreamFingerprint(t *testing.T, seed int64, shards int) string {
	t.Helper()
	const n, k, d, gens, w = 10, 4, 32, 5, 2
	sched, err := cluster.ParseChurn("crash:8:1,join:11:1,leave:15:1,restart:19:1")
	if err != nil {
		t.Fatal(err)
	}
	maxN := n + sched.Joins()
	rec := telemetry.New(telemetry.Config{Nodes: maxN})
	tr := cluster.WithLoss(cluster.NewChanTransport(maxN, InboxBuffer(maxN, 3)), 0.15, seed+103)
	var mu sync.Mutex
	deliveries := make(map[string]int)
	res, err := Run(context.Background(), Config{
		N: n, K: k, PayloadBits: d, Window: w, Generations: gens, Fanout: 2,
		Seed: seed, Transport: tr, Lockstep: true, Shards: shards,
		MaxTicks: 100000, Churn: sched, Telemetry: rec,
		Deliver: func(node, gen int, toks []token.Token) {
			mu.Lock()
			deliveries[fmt.Sprintf("n%d/g%d/%d", node, gen, len(toks))]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("seed %d shards %d: %v", seed, shards, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v ticks=%d live=%d out=%d in=%d acks=%d bits=%d dropped=%d toks=%d\n",
		res.Completed, res.Ticks, res.FinalLive, res.PacketsOut, res.PacketsIn,
		res.AcksOut, res.BitsOut, res.Dropped, res.TokensDelivered)
	for id, m := range res.Nodes {
		fmt.Fprintf(&b, "node %d: out=%d in=%d acksOut=%d acksIn=%d hellos=%d bits=%d dropped=%d innov=%d stale=%d delivered=%d done=%v@%d start=%d spawned=%v live=%v join=%d\n",
			id, m.PacketsOut, m.PacketsIn, m.AcksOut, m.AcksIn, m.HellosOut, m.BitsOut,
			m.Dropped, m.Innovative, m.Stale, m.Delivered, m.Done, m.DoneTick,
			m.StartGen, m.Spawned, m.Live, m.JoinTick)
	}
	lines := make([]string, 0, len(deliveries))
	for key, c := range deliveries {
		lines = append(lines, fmt.Sprintf("deliver %s x%d", key, c))
	}
	c := rec.Counters()
	for key, v := range c {
		lines = append(lines, fmt.Sprintf("%s=%d", key, v))
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// TestShardedStreamBitIdentical is the quick.Check property for the
// stream driver: arbitrary seeds, churn and loss engaged, sharded runs
// byte-identical to serial at ragged (3), even (4) and host-width
// shard counts.
func TestShardedStreamBitIdentical(t *testing.T) {
	counts := []int{3, 4, runtime.GOMAXPROCS(0)}
	prop := func(rawSeed int64) bool {
		seed := rawSeed%10000 + 1
		serial := shardedStreamFingerprint(t, seed, 1)
		for _, shards := range counts {
			if sharded := shardedStreamFingerprint(t, seed, shards); sharded != serial {
				t.Logf("seed %d shards %d diverges:\n--- serial ---\n%s\n--- shards=%d ---\n%s",
					seed, shards, serial, shards, sharded)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStreamShardsRequireLockstep pins the library-level validation:
// the async stream driver is already one-goroutine-per-node, so
// Shards>1 without Lockstep is a configuration error.
func TestStreamShardsRequireLockstep(t *testing.T) {
	_, err := Run(context.Background(), Config{
		N: 4, K: 2, PayloadBits: 16, Generations: 2, Shards: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "Lockstep") {
		t.Fatalf("async Shards=2 accepted: %v", err)
	}
}

package stream

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SingleConfig parameterizes one node of a multi-process streaming run:
// the cmd/node process body for -mode stream. The other N-1 nodes are
// separate processes reachable only through the Transport; every
// process must agree on N, K, PayloadBits, Window, Generations and
// Seed so the independently derived Sources line up.
type SingleConfig struct {
	// ID is this node's id in [0, N).
	ID int
	// N is the cluster size (the origin rotation modulus).
	N int
	// K is the generation size in tokens.
	K int
	// PayloadBits is the token payload size d.
	PayloadBits int
	// Window is the maximum number of concurrent generations (default 4).
	Window int
	// Generations is the stream length for this run.
	Generations int
	// Fanout is the number of peers contacted per data emission
	// (default 2).
	Fanout int
	// Seed derives the node's randomness and the default Source.
	Seed int64
	// Source feeds the stream; nil means NewSeededSource(K, PayloadBits,
	// Seed) — which every process derives identically from the seed.
	Source Source
	// Transport carries the packets (required). RunSingle does NOT close
	// it: it is the process's socket, owned by the caller.
	Transport cluster.Transport
	// Known optionally gates peer sampling on routability. Nil falls
	// back to the Transport's own cluster.AddressedTransport.Known when
	// it has one, else sampling is ungated.
	Known func(id int) bool
	// Deliver observes decoded generations (optional).
	Deliver DeliverFunc
	// Interval paces ticker emissions (default 500µs).
	Interval time.Duration
	// Timeout caps the whole run including linger (default 30s).
	Timeout time.Duration
	// Linger keeps the node gossiping after its own completion so
	// slower peers can finish too (default 2s).
	Linger time.Duration
	// Telemetry optionally traces this node's run (nil = disabled). In
	// the multi-process shape each process records only its own id's
	// ring.
	Telemetry *telemetry.Recorder
}

func (c SingleConfig) fanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	return 2
}

func (c SingleConfig) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 4
}

func (c SingleConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 500 * time.Microsecond
}

func (c SingleConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c SingleConfig) linger() time.Duration {
	if c.Linger > 0 {
		return c.Linger
	}
	return 2 * time.Second
}

// config lowers the single-node parameters onto the shared Config so
// newNode and the node methods see exactly the in-process shape
// (churnless, async clocking).
func (c SingleConfig) config() Config {
	return Config{
		N:           c.N,
		K:           c.K,
		PayloadBits: c.PayloadBits,
		Window:      c.Window,
		Generations: c.Generations,
		Fanout:      c.Fanout,
		Seed:        c.Seed,
		Source:      c.Source,
		Deliver:     c.Deliver,
		Interval:    c.Interval,
		Timeout:     c.Timeout,
		Telemetry:   c.Telemetry,
	}
}

// RunSingle runs ONE node of an N-node streaming run over the caller's
// Transport: it sources its share of every window generation, gossips
// coded packets and watermark acks until it has delivered the whole
// stream in order (each delivery verified against the Source), keeps
// emitting for the linger window so peers can finish, and returns the
// node's metrics. A timeout or cancellation before completion returns
// Done == false and a nil error; the error reports misconfiguration or
// delivery verification failure.
func RunSingle(ctx context.Context, cfg SingleConfig) (NodeMetrics, error) {
	var m NodeMetrics
	switch {
	case cfg.N < 1:
		return m, fmt.Errorf("stream: need at least 1 node, got %d", cfg.N)
	case cfg.ID < 0 || cfg.ID >= cfg.N:
		return m, fmt.Errorf("stream: node id %d outside [0, %d)", cfg.ID, cfg.N)
	case cfg.K < 1:
		return m, fmt.Errorf("stream: need at least 1 token per generation, got %d", cfg.K)
	case cfg.PayloadBits < 1:
		return m, fmt.Errorf("stream: need at least 1 payload bit, got %d", cfg.PayloadBits)
	case cfg.Generations < 1:
		return m, fmt.Errorf("stream: need at least 1 generation, got %d", cfg.Generations)
	case uint64(cfg.Generations) > wire.MaxEpoch:
		return m, fmt.Errorf("stream: %d generations exceed the 32-bit wire epoch space (%d)", cfg.Generations, uint64(wire.MaxEpoch))
	case cfg.Window < 0:
		return m, fmt.Errorf("stream: negative window %d", cfg.Window)
	case cfg.Fanout < 0:
		return m, fmt.Errorf("stream: negative fanout %d", cfg.Fanout)
	case cfg.Transport == nil:
		return m, fmt.Errorf("stream: RunSingle needs a Transport (the process's socket)")
	}
	lowered := cfg.config()
	src := lowered.source()
	if toks := src.Generation(0); len(toks) != cfg.K {
		return m, fmt.Errorf("stream: source produced %d tokens per generation, want K=%d", len(toks), cfg.K)
	}

	live := make([]bool, cfg.N)
	for i := range live {
		live[i] = true
	}
	nd := newNode(cfg.ID, lowered, src, &m, live, 0, false)
	nd.known = cfg.Known
	if nd.known == nil {
		if at, ok := cfg.Transport.(cluster.AddressedTransport); ok {
			nd.known = at.Known
		}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.timeout())
	defer cancel()

	start := time.Now()
	tick := func() { nd.now = int64(time.Since(start)) }
	markDone := func() bool {
		if !m.Done && nd.done() {
			m.Done = true
			m.DoneAt = time.Since(start)
		}
		return m.Done
	}

	nd.prime()
	if nd.err != nil {
		return m, nd.err
	}
	var lingerC <-chan time.Time
	startLinger := func() {
		lt := time.NewTimer(cfg.linger())
		lingerC = lt.C
	}
	if markDone() { // n == 1, or a window the node sources alone
		startLinger()
	}

	tr := cfg.Transport
	inbox := tr.Recv(cfg.ID)
	ticker := time.NewTicker(cfg.interval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return m, nil
		case <-lingerC:
			return m, nil
		case raw := <-inbox:
			tick()
			if nd.recv(raw) {
				if nd.err != nil {
					return m, nd.err
				}
				if markDone() && lingerC == nil {
					startLinger()
				}
				nd.pushData(tr)
			}
		case <-ticker.C:
			tick()
			nd.sample(tr)
			nd.pushData(tr)
			nd.pushAck(tr)
		}
	}
}

package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestStreamRunSingleCrossProcess runs N independent RunSingle bodies
// — the cmd/node -mode stream process shape — over one shared
// ChanTransport and requires every node to deliver the whole stream in
// order, with every generation verified against the shared seeded
// Source each process derives independently.
func TestStreamRunSingleCrossProcess(t *testing.T) {
	const n, k, d, gens, window = 4, 6, 32, 6, 3
	tr := cluster.NewChanTransport(n, InboxBuffer(n, 2))
	defer tr.Close()

	var delivered atomic.Int64
	var wg sync.WaitGroup
	results := make([]NodeMetrics, n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = RunSingle(context.Background(), SingleConfig{
				ID: id, N: n, K: k, PayloadBits: d, Window: window,
				Generations: gens, Seed: 33, Transport: tr,
				Timeout: 30 * time.Second, Linger: 500 * time.Millisecond,
			})
			delivered.Add(int64(results[id].Delivered))
		}(id)
	}
	wg.Wait()
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("node %d: %v", id, errs[id])
		}
		if !results[id].Done {
			t.Errorf("node %d delivered %d/%d generations", id, results[id].Delivered, gens)
		}
	}
	if got, want := delivered.Load(), int64(n*gens); got != want {
		t.Errorf("total deliveries %d, want %d", got, want)
	}
}

// TestStreamRunSingleValidation pins the misconfiguration errors.
func TestStreamRunSingleValidation(t *testing.T) {
	tr := cluster.NewChanTransport(2, 1)
	defer tr.Close()
	base := SingleConfig{ID: 0, N: 2, K: 2, PayloadBits: 8, Generations: 2, Transport: tr}
	cases := []struct {
		name string
		mut  func(c SingleConfig) SingleConfig
	}{
		{"no transport", func(c SingleConfig) SingleConfig { c.Transport = nil; return c }},
		{"id out of range", func(c SingleConfig) SingleConfig { c.ID = 2; return c }},
		{"negative id", func(c SingleConfig) SingleConfig { c.ID = -1; return c }},
		{"zero k", func(c SingleConfig) SingleConfig { c.K = 0; return c }},
		{"zero payload", func(c SingleConfig) SingleConfig { c.PayloadBits = 0; return c }},
		{"zero generations", func(c SingleConfig) SingleConfig { c.Generations = 0; return c }},
		{"negative window", func(c SingleConfig) SingleConfig { c.Window = -1; return c }},
	}
	for _, tc := range cases {
		if _, err := RunSingle(context.Background(), tc.mut(base)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

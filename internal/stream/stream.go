// Package stream turns one-shot k-token dissemination into an
// unbounded, pipelined stream — the "perfect pipelining" behaviour the
// paper proves for RLNC gossip: new information keeps flowing while
// older tokens are still spreading.
//
// A Source feeds a token sequence that the layer chunks into
// generations of K tokens, keyed on the wire by wire.Envelope.Epoch.
// Each generation is one independent RLNC span (recoding happens within
// a generation, never across), and every node gossips a sliding window
// of at most Window concurrent generations: random nonzero span
// combinations of each active generation are pushed to Fanout random
// peers over a cluster.Transport, exactly as in internal/cluster.
//
// Control traffic is the wire.TypeAck body: each node gossips its
// delivery watermark (generations fully decoded and handed to the
// consumer, in order) together with its current view of every peer's
// watermark. Views merge by pointwise maximum, so the cluster-wide
// minimum watermark — the retirement frontier — converges at gossip
// speed. A generation below the frontier is globally decoded: its span
// is Reset, returned to a per-node pool, and the window slides forward,
// which is what bounds each node's memory to O(Window) spans no matter
// how long the stream runs.
//
// Decoded generations are delivered to Config.Deliver strictly in
// generation order per node, and every delivery is verified against the
// Source before the callback sees it.
//
// Like internal/cluster, the package ships two drivers over the same
// node logic: an async goroutine-per-node runtime (wall-clock metrics,
// context shutdown) and a deterministic lockstep driver whose runs are
// a pure function of Config.Seed.
package stream

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/token"
	"repro/internal/wire"
)

// Source produces the token stream, one generation of K tokens at a
// time. Generation must be a pure function of g: nodes fetch the same
// generation independently (origins inject their share, verifiers
// compare deliveries against it), and lockstep determinism relies on
// repeated calls agreeing. Implementations must be safe for concurrent
// use in async mode.
type Source interface {
	// Generation returns generation g's tokens. All payloads must have
	// the same bit length across every generation.
	Generation(g int) []token.Token
}

// seededSource derives generation g's tokens purely from (seed, g):
// token j of generation g has UID owner j, sequence g, and a random
// payload drawn from a generation-local PRNG.
//
// Because every node consults the source several times per generation
// (origins inject their share, verifiers check deliveries), the source
// memoizes a bounded window of recently built generations; entries are
// rebuilt on demand if evicted, so the cache is purely a hot-path
// allocation saver and never changes what Generation returns. Returned
// slices are shared and must be treated as immutable, which the
// stream's consumers (read-only injection and verification) obey.
type seededSource struct {
	k, d int
	seed int64

	mu    sync.Mutex
	cache map[int][]token.Token
}

// sourceCacheCap bounds the memoized generations; it comfortably covers
// the active windows of every node (spread over at most a few
// generations around the cluster-wide frontier) without growing with
// stream length.
const sourceCacheCap = 32

// NewSeededSource returns the default deterministic stream: k tokens of
// d payload bits per generation, all randomness derived from the seed
// and the generation number alone.
func NewSeededSource(k, d int, seed int64) Source {
	return &seededSource{k: k, d: d, seed: seed, cache: make(map[int][]token.Token)}
}

func (s *seededSource) Generation(g int) []token.Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	if out, ok := s.cache[g]; ok {
		return out
	}
	out := s.buildUncached(g)
	if len(s.cache) >= sourceCacheCap {
		// Evict the cached generation farthest from g: consumers cluster
		// around the advancing frontier, so distance from the current
		// request is the best staleness signal — and unlike "evict the
		// minimum" it bounds the cache even when a straggler walks
		// backward through generations older than everything cached.
		victim, dist := g, -1
		for have := range s.cache {
			d := have - g
			if d < 0 {
				d = -d
			}
			if d > dist {
				victim, dist = have, d
			}
		}
		delete(s.cache, victim)
	}
	s.cache[g] = out
	return out
}

// buildUncached constructs generation g's tokens from the seed alone —
// the pure function the cache memoizes.
func (s *seededSource) buildUncached(g int) []token.Token {
	rng := newGenRand(s.seed, g)
	out := make([]token.Token, s.k)
	for j := range out {
		out[j] = token.Random(token.NewUID(j, g), s.d, rng)
	}
	return out
}

// DeliverFunc consumes one decoded generation. Per node, calls arrive
// strictly in generation order; the token slice is freshly decoded and
// owned by the callee. In async mode — and in lockstep mode with
// Config.Shards > 1, where the drain phase runs nodes on parallel
// shard workers — it is called from multiple goroutines and must be
// safe for concurrent use.
type DeliverFunc func(node, gen int, toks []token.Token)

// Config parameterizes a streaming run.
type Config struct {
	// N is the number of nodes.
	N int
	// K is the generation size in tokens.
	K int
	// PayloadBits is the token payload size d.
	PayloadBits int
	// Window is the maximum number of generations a node sources
	// concurrently (default 4). Window 1 is sequential dissemination:
	// one generation at a time, the E12 baseline.
	Window int
	// Generations is the stream length for this run — the experiment
	// horizon; the protocol itself has no such bound.
	Generations int
	// Fanout is the number of peers contacted per data emission
	// (default 2).
	Fanout int
	// Seed derives all node randomness. In lockstep mode it fully
	// determines the run.
	Seed int64
	// Source feeds the stream; nil means NewSeededSource(K,
	// PayloadBits, Seed).
	Source Source
	// Transport carries the packets; nil means a fresh ChanTransport
	// sized so lockstep backpressure drops cannot occur. Run closes the
	// transport before returning.
	Transport cluster.Transport
	// Deliver observes decoded generations (optional).
	Deliver DeliverFunc
	// Lockstep runs the deterministic single-threaded driver instead of
	// goroutines.
	Lockstep bool
	// Shards splits the lockstep driver's per-node phases across that
	// many workers over contiguous node-id ranges, with a serial
	// exchange barrier replaying emissions in id order so transcripts
	// stay bit-identical to the serial driver at every shard count (see
	// cluster.Outbox and DESIGN.md "Sharded lockstep engine"). 0 and 1
	// both mean the serial engine; >1 requires Lockstep. On sharded runs
	// Deliver is called concurrently from shard workers (distinct nodes
	// only — per-node calls stay strictly ordered) and must be safe for
	// concurrent use, exactly as in async mode.
	Shards int
	// MaxTicks caps a lockstep run (default 20000).
	MaxTicks int
	// Interval paces each node's ticker emissions in async mode
	// (default 500µs).
	Interval time.Duration
	// Timeout caps the async run's wall clock (default 30s).
	Timeout time.Duration
	// Churn optionally scripts dynamic membership (see
	// cluster.ChurnSchedule / cluster.ParseChurn). Nil means the fixed
	// always-alive membership. Joiners catch up from the retirement
	// frontier they learn from watermark gossip; the frontier itself
	// ignores nodes silent for longer than the suspicion threshold so
	// crashes cannot deadlock retirement.
	Churn *cluster.ChurnSchedule
	// SuspectTicks is the silence threshold (in lockstep ticks; async
	// runs scale it by Interval) after which a peer is dropped from the
	// retirement frontier and peer sampling. Only used with Churn;
	// default 50.
	SuspectTicks int
	// Telemetry optionally traces the run (nil = disabled, zero
	// overhead). Size it for maxNodes (N + Churn.Joins()). Recording
	// only observes — a traced lockstep run produces the same transcript
	// as an untraced one.
	Telemetry *telemetry.Recorder
}

// maxNodes is the run's node id space: the initial membership plus
// every id the churn schedule can create.
func (c Config) maxNodes() int { return c.N + c.Churn.Joins() }

func (c Config) suspectTicks() int {
	if c.SuspectTicks > 0 {
		return c.SuspectTicks
	}
	return 50
}

// suspectAfter is the suspicion threshold in view-stamp units: ticks
// under the lockstep driver, nanoseconds under the async one. Zero
// (churnless) disables suspicion.
func (c Config) suspectAfter() int64 {
	if c.Churn == nil {
		return 0
	}
	if c.Lockstep {
		return int64(c.suspectTicks())
	}
	return int64(time.Duration(c.suspectTicks()) * c.interval())
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 4
}

func (c Config) fanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	return 2
}

func (c Config) shards() int {
	if c.Shards > 1 {
		return c.Shards
	}
	return 1
}

func (c Config) maxTicks() int {
	if c.MaxTicks > 0 {
		return c.MaxTicks
	}
	return 20000
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 500 * time.Microsecond
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c Config) source() Source {
	if c.Source != nil {
		return c.Source
	}
	return NewSeededSource(c.K, c.PayloadBits, c.Seed)
}

// InboxBuffer returns the per-node inbox size at which lockstep
// backpressure drops are impossible: one tick's worst case is every
// node targeting the same inbox with fanout data packets plus one ack
// each.
func InboxBuffer(n, fanout int) int { return cluster.InboxBuffer(n, fanout+1) }

// DefaultInboxBuffer is the sizing the driver (and the CLI's buffer
// auto-sizing) uses when no transport is supplied: the exact
// InboxBuffer bound below cluster.LargeClusterNodes, capped at a
// constant slot count above it — see cluster.DefaultInboxBuffer for
// the overflow analysis.
func DefaultInboxBuffer(n, fanout int) int { return cluster.DefaultInboxBuffer(n, fanout+1) }

// NodeMetrics are one node's counters for a streaming run.
type NodeMetrics struct {
	// PacketsOut / PacketsIn count coded data packets only; acks are
	// counted separately.
	PacketsOut int64
	PacketsIn  int64
	AcksOut    int64
	AcksIn     int64
	// BitsOut is protocol bits sent (data and acks) under the
	// simulator's Bits() accounting, wire framing excluded.
	BitsOut int64
	// Dropped counts Sends the transport reported undelivered.
	Dropped int64
	// Innovative counts received coded packets that grew a span.
	Innovative int64
	// Stale counts received coded packets for generations already
	// retired locally (or arriving before a joiner bootstrapped).
	Stale int64
	// HellosOut counts membership announcements sent (bits included in
	// BitsOut). Always zero without churn.
	HellosOut int64
	// Delivered is the number of generations handed to the consumer
	// (from StartGen onward for joiners).
	Delivered int
	Done      bool
	// DoneTick / DoneAt mark delivery of the final generation
	// (lockstep tick, async wall time).
	DoneTick int
	DoneAt   time.Duration
	// Spawned marks ids that actually entered the run; Live is the
	// node's membership at the end (false after a crash or leave).
	Spawned bool
	Live    bool
	// JoinTick / JoinAt stamp the node's latest (re)entry: zero for
	// founding members.
	JoinTick int
	JoinAt   time.Duration
	// StartGen is where the node's delivery obligation started: 0 for
	// founding members, the frontier learned at join time for joiners.
	StartGen int
	// CaughtUpTick / CaughtUpAt stamp a mid-stream joiner's first
	// delivery — the moment it reached the cluster watermark it
	// learned at join time. Zero for founding members. Subtract
	// JoinTick / JoinAt for the time-to-catch-up.
	CaughtUpTick int
	CaughtUpAt   time.Duration
	// MaxSpanBytes is the peak heap held in live spans — the memory a
	// node needs no matter how long the stream is; window retirement is
	// what keeps it bounded.
	MaxSpanBytes int
	// MaxActiveGens is the peak number of concurrently live spans.
	MaxActiveGens int
}

// Result reports a finished streaming run.
type Result struct {
	// Completed is true when every live node delivered the stream
	// through Generations (from its StartGen onward) and every
	// scheduled join/restart was applied, before the timeout/tick cap.
	Completed bool
	// FinalLive counts the nodes live at the end of the run.
	FinalLive int
	// Elapsed is the async wall clock (also set, informationally, for
	// lockstep runs).
	Elapsed time.Duration
	// Ticks is the lockstep tick count at completion (0 for async).
	Ticks int
	// TokensDelivered totals consumer deliveries across all nodes
	// (N·K·Generations on a completed run).
	TokensDelivered int64
	Nodes           []NodeMetrics

	// Aggregates over Nodes.
	PacketsOut int64
	PacketsIn  int64
	AcksOut    int64
	BitsOut    int64
	Dropped    int64
	// MaxSpanBytes is the largest per-node span footprint observed.
	MaxSpanBytes int
}

// DoneTicks returns each completed node's DoneTick as float64s.
func (r *Result) DoneTicks() []float64 {
	out := make([]float64, 0, len(r.Nodes))
	for _, m := range r.Nodes {
		if m.Done {
			out = append(out, float64(m.DoneTick))
		}
	}
	return out
}

// DoneTimes returns each completed node's DoneAt in seconds.
func (r *Result) DoneTimes() []float64 {
	out := make([]float64, 0, len(r.Nodes))
	for _, m := range r.Nodes {
		if m.Done {
			out = append(out, m.DoneAt.Seconds())
		}
	}
	return out
}

// Run streams cfg.Generations generations of cfg.K tokens across an
// n-node gossip cluster until every live node has decoded and
// delivered the whole stream in order (joiners from the frontier they
// learned at join time), the context is canceled, the timeout expires,
// or the lockstep tick cap is hit. Every delivered generation is
// verified against the Source before Run returns it to the consumer.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	switch {
	case cfg.N < 1:
		return nil, fmt.Errorf("stream: need at least 1 node, got %d", cfg.N)
	case cfg.K < 1:
		return nil, fmt.Errorf("stream: need at least 1 token per generation, got %d", cfg.K)
	case cfg.PayloadBits < 1:
		return nil, fmt.Errorf("stream: need at least 1 payload bit, got %d", cfg.PayloadBits)
	case cfg.Generations < 1:
		return nil, fmt.Errorf("stream: need at least 1 generation, got %d", cfg.Generations)
	case uint64(cfg.Generations) > wire.MaxEpoch: // Generations >= 1 here; uint64 keeps 32-bit builds compiling
		// The generation number rides the 32-bit wire epoch; beyond it,
		// generation g and g+2^32 would alias in ack/rank bookkeeping
		// (the constructors panic rather than wrap — shard the stream).
		return nil, fmt.Errorf("stream: %d generations exceed the 32-bit wire epoch space (%d)", cfg.Generations, uint64(wire.MaxEpoch))
	case cfg.Window < 0:
		return nil, fmt.Errorf("stream: negative window %d", cfg.Window)
	case cfg.Fanout < 0:
		return nil, fmt.Errorf("stream: negative fanout %d", cfg.Fanout)
	}
	if err := cfg.Churn.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if cfg.Shards > 1 && !cfg.Lockstep {
		return nil, fmt.Errorf("stream: Shards=%d requires Lockstep (the async driver is already concurrent)", cfg.Shards)
	}

	src := cfg.source()
	if toks := src.Generation(0); len(toks) != cfg.K {
		return nil, fmt.Errorf("stream: source produced %d tokens per generation, want K=%d", len(toks), cfg.K)
	}

	maxN := cfg.maxNodes()
	tr := cfg.Transport
	if tr == nil {
		extra := 0
		if cfg.Churn != nil {
			extra = 1 // hello headroom; see cluster.InboxBuffer
		}
		tr = cluster.NewChanTransport(maxN, DefaultInboxBuffer(maxN, cfg.fanout()+extra))
	}
	defer tr.Close()

	res := &Result{Nodes: make([]NodeMetrics, maxN)}
	sr := &streamRun{
		cfg:   cfg,
		src:   src,
		tr:    tr,
		res:   res,
		maxN:  maxN,
		nodes: make([]*node, maxN),
		live:  make([]bool, maxN),
		ch:    cluster.NewChurner(cfg.Churn, cfg.N, maxN, cfg.Seed),
	}
	if cfg.Churn.HasTargeted() {
		sr.ranks = make([]atomic.Int64, maxN)
		sr.ch.SetRank(func(id int) int { return int(sr.ranks[id].Load()) })
	}
	if cfg.Lockstep {
		sr.exec = shard.New(maxN, cfg.shards())
		if sr.exec.Shards() > 1 {
			sr.outs = make([]*cluster.Outbox, sr.exec.Shards())
			for i := range sr.outs {
				sr.outs[i] = &cluster.Outbox{}
			}
		}
	}
	for i := 0; i < cfg.N; i++ {
		sr.live[i] = true
	}
	for i := 0; i < cfg.N; i++ {
		sr.nodes[i] = newNode(i, cfg, src, &res.Nodes[i], sr.live, 0, false)
		sr.attach(sr.nodes[i])
	}

	start := time.Now()
	var err error
	if cfg.Lockstep {
		err = sr.runLockstep(ctx)
	} else {
		err = sr.runAsync(ctx, start)
	}
	res.Elapsed = time.Since(start)

	for _, m := range res.Nodes {
		res.PacketsOut += m.PacketsOut
		res.PacketsIn += m.PacketsIn
		res.AcksOut += m.AcksOut
		res.BitsOut += m.BitsOut
		res.Dropped += m.Dropped
		res.TokensDelivered += int64(m.Delivered) * int64(cfg.K)
		if m.MaxSpanBytes > res.MaxSpanBytes {
			res.MaxSpanBytes = m.MaxSpanBytes
		}
		if m.Live {
			res.FinalLive++
		}
	}
	return res, err
}

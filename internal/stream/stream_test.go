package stream

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/token"
)

func TestSeededSourceDeterministic(t *testing.T) {
	src := NewSeededSource(4, 32, 7)
	a, b := src.Generation(3), src.Generation(3)
	for j := range a {
		if !a[j].Equal(b[j]) {
			t.Fatalf("generation 3 token %d differs between calls", j)
		}
		if a[j].UID != token.NewUID(j, 3) {
			t.Errorf("token %d has UID %v, want %v", j, a[j].UID, token.NewUID(j, 3))
		}
	}
	c := src.Generation(4)
	same := true
	for j := range a {
		same = same && a[j].Payload.Equal(c[j].Payload)
	}
	if same {
		t.Error("generations 3 and 4 have identical payloads")
	}
}

func TestLockstepStreamCompletesUnderLoss(t *testing.T) {
	const n, k, d, gens, w = 12, 6, 64, 6, 4
	tr := cluster.WithLoss(cluster.NewChanTransport(n, InboxBuffer(n, 2)), 0.3, 99)
	res, err := Run(context.Background(), Config{
		N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
		Seed: 5, Lockstep: true, Transport: tr, MaxTicks: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not completed in %d ticks", res.Ticks)
	}
	if res.Dropped == 0 {
		t.Error("loss middleware dropped nothing at rate 0.3")
	}
	if res.PacketsOut == 0 || res.AcksOut == 0 || res.BitsOut == 0 {
		t.Error("metrics not recorded")
	}
	if want := int64(n * k * gens); res.TokensDelivered != want {
		t.Errorf("TokensDelivered = %d, want %d", res.TokensDelivered, want)
	}
	for id, m := range res.Nodes {
		if !m.Done || m.Delivered != gens {
			t.Errorf("node %d: done=%v delivered=%d of %d", id, m.Done, m.Delivered, gens)
		}
		if m.DoneTick < 1 || m.DoneTick > res.Ticks {
			t.Errorf("node %d: DoneTick %d outside (0,%d]", id, m.DoneTick, res.Ticks)
		}
		if m.MaxSpanBytes <= 0 || m.MaxActiveGens < 1 {
			t.Errorf("node %d: memory metrics not recorded (%dB, %d gens)", id, m.MaxSpanBytes, m.MaxActiveGens)
		}
	}
}

func TestSequentialWindowCompletes(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N: 8, K: 4, PayloadBits: 32, Window: 1, Generations: 5, Seed: 3, Lockstep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("sequential stream not completed in %d ticks", res.Ticks)
	}
	// Window 1 means one sourced generation at a time; receive-side skew
	// can keep a straggler's span briefly alive alongside the next
	// generation, but the count must stay O(1), not O(generations).
	for id, m := range res.Nodes {
		if m.MaxActiveGens > 3 {
			t.Errorf("node %d held %d concurrent generations at window 1", id, m.MaxActiveGens)
		}
	}
}

// runSeeded is the canonical deterministic run the purity property
// checks: every bit of randomness (node coins, transport losses)
// derives from the one seed.
func runSeeded(t *testing.T, seed int64, w int) *Result {
	t.Helper()
	const n, k, d, gens = 10, 5, 48, 5
	tr := cluster.WithLoss(cluster.NewChanTransport(n, InboxBuffer(n, 2)), 0.25, seed*17+1)
	res, err := Run(context.Background(), Config{
		N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
		Seed: seed, Lockstep: true, Transport: tr, MaxTicks: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("seed %d did not complete", seed)
	}
	res.Elapsed = 0 // wall clock is the one legitimately impure field
	return res
}

// TestLockstepPureFunctionOfSeed is the reproducibility contract of the
// acceptance criteria: a lockstep stream run is a pure function of the
// seed, tick for tick, counter for counter, across every node.
func TestLockstepPureFunctionOfSeed(t *testing.T) {
	pure := func(s uint16, wbits uint8) bool {
		seed := int64(s) + 1
		w := 1 + int(wbits)%4
		a, b := runSeeded(t, seed, w), runSeeded(t, seed, w)
		return reflect.DeepEqual(a, b)
	}
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(pure, cfg); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(runSeeded(t, 11, 2), runSeeded(t, 12, 2)) {
		t.Log("different seeds produced identical runs (possible but unlikely)")
	}
}

// TestPipeliningBeatsSequentialUnderLoss is the E12 claim at unit size:
// a window of concurrent generations sustains strictly higher token
// throughput than one-generation-at-a-time dissemination when packets
// are being lost.
func TestPipeliningBeatsSequentialUnderLoss(t *testing.T) {
	const n, k, d, gens = 16, 8, 64, 8
	ticks := func(w int) int {
		tr := cluster.WithLoss(cluster.NewChanTransport(n, InboxBuffer(n, 2)), 0.3, 77)
		res, err := Run(context.Background(), Config{
			N: n, K: k, PayloadBits: d, Window: w, Generations: gens,
			Seed: 9, Lockstep: true, Transport: tr, MaxTicks: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("W=%d did not complete", w)
		}
		return res.Ticks
	}
	seq, pipe := ticks(1), ticks(4)
	if pipe >= seq {
		t.Errorf("W=4 took %d ticks, sequential W=1 took %d: no pipelining gain", pipe, seq)
	}
}

// TestWindowBoundsMemory pins the GC contract: peak span memory is set
// by the window, not by the stream length, and doubling the stream does
// not grow it.
func TestWindowBoundsMemory(t *testing.T) {
	peak := func(gens int) int {
		res, err := Run(context.Background(), Config{
			N: 8, K: 4, PayloadBits: 32, Window: 2, Generations: gens, Seed: 4, Lockstep: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("gens=%d did not complete", gens)
		}
		for id, m := range res.Nodes {
			if m.MaxActiveGens > 2+3 {
				t.Errorf("gens=%d node %d: %d concurrent generations for window 2", gens, id, m.MaxActiveGens)
			}
		}
		return res.MaxSpanBytes
	}
	short, long := peak(4), peak(16)
	if long > 2*short {
		t.Errorf("peak span memory grew from %dB to %dB when the stream got longer", short, long)
	}
}

func TestDeliveryInOrderAndComplete(t *testing.T) {
	const n, k, d, gens = 6, 3, 16, 7
	var mu sync.Mutex
	got := make([][]int, n)
	res, err := Run(context.Background(), Config{
		N: n, K: k, PayloadBits: d, Window: 3, Generations: gens, Seed: 8, Lockstep: true,
		Deliver: func(node, gen int, toks []token.Token) {
			mu.Lock()
			defer mu.Unlock()
			got[node] = append(got[node], gen)
			if len(toks) != k {
				t.Errorf("node %d generation %d delivered %d tokens, want %d", node, gen, len(toks), k)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	for id, gensGot := range got {
		if len(gensGot) != gens {
			t.Fatalf("node %d delivered %d generations, want %d", id, len(gensGot), gens)
		}
		for g, v := range gensGot {
			if v != g {
				t.Fatalf("node %d delivery %d was generation %d: out of order", id, g, v)
			}
		}
	}
}

func TestAsyncStreamSmall(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N: 8, K: 4, PayloadBits: 64, Window: 4, Generations: 5, Seed: 2, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("async stream did not complete")
	}
	for id, m := range res.Nodes {
		if !m.Done || m.DoneAt <= 0 || m.Delivered != 5 {
			t.Errorf("node %d: done=%v at %v, delivered %d", id, m.Done, m.DoneAt, m.Delivered)
		}
	}
}

// TestAsyncStreamUnderHostileTransport drives the full middleware stack
// concurrently over the streaming runtime; it is the -race workout for
// the window/ack machinery and is skipped under -short.
func TestAsyncStreamUnderHostileTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("stream integration test skipped with -short")
	}
	const n = 16
	var tr cluster.Transport = cluster.NewChanTransport(n, 8*n)
	tr = cluster.WithDelay(tr, 50*time.Microsecond, 2*time.Millisecond, 20)
	tr = cluster.WithReorder(tr, 0.3, 21)
	tr = cluster.WithLoss(tr, 0.2, 22)
	res, err := Run(context.Background(), Config{
		N: n, K: 8, PayloadBits: 128, Window: 4, Generations: 6,
		Seed: 6, Transport: tr, Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("stream did not complete under loss+delay+reorder")
	}
	if res.Dropped == 0 {
		t.Error("no drops recorded at loss 0.2")
	}
}

func TestStreamValidation(t *testing.T) {
	ctx := context.Background()
	bad := []Config{
		{N: 0, K: 1, PayloadBits: 1, Generations: 1},
		{N: 2, K: 0, PayloadBits: 1, Generations: 1},
		{N: 2, K: 1, PayloadBits: 0, Generations: 1},
		{N: 2, K: 1, PayloadBits: 1, Generations: 0},
		{N: 2, K: 1, PayloadBits: 1, Generations: 1, Window: -1},
		{N: 2, K: 1, PayloadBits: 1, Generations: 1, Fanout: -1},
	}
	for i, cfg := range bad {
		cfg.Lockstep = true
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSingleNodeStreams(t *testing.T) {
	res, err := Run(context.Background(), Config{
		N: 1, K: 3, PayloadBits: 8, Window: 2, Generations: 4, Seed: 1, Lockstep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("single node did not complete (ticks %d)", res.Ticks)
	}
	if res.Nodes[0].Delivered != 4 {
		t.Errorf("delivered %d generations, want 4", res.Nodes[0].Delivered)
	}
}

func TestStreamCapReportsIncomplete(t *testing.T) {
	const n = 8
	tr := cluster.WithLoss(cluster.NewChanTransport(n, InboxBuffer(n, 2)), 0.999, 1)
	res, err := Run(context.Background(), Config{
		N: n, K: 4, PayloadBits: 32, Window: 2, Generations: 4,
		Seed: 1, Lockstep: true, Transport: tr, MaxTicks: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("completed at 99.9% loss in 20 ticks")
	}
	if res.Ticks != 20 {
		t.Errorf("ticks = %d, want the 20-tick cap", res.Ticks)
	}
}

func TestStreamObservesContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 8
	tr := cluster.WithLoss(cluster.NewChanTransport(n, InboxBuffer(n, 2)), 0.999, 1)
	res, err := Run(ctx, Config{
		N: n, K: 4, PayloadBits: 32, Window: 2, Generations: 4,
		Seed: 1, Lockstep: true, Transport: tr, MaxTicks: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("completed under a pre-canceled context at 99.9% loss")
	}
	if res.Ticks != 0 {
		t.Errorf("ticks = %d, want 0 for a pre-canceled context", res.Ticks)
	}
}

// TestStreamLockstepGoldenTranscripts pins exact lockstep streaming run
// fingerprints under loss. Like the cluster goldens, the values come
// from the pre-pooling (allocating) pipeline, proving the pooled
// zero-allocation path — ring-recycled buffers, scratch packets, the
// memoized source — reproduces it bit for bit.
func TestStreamLockstepGoldenTranscripts(t *testing.T) {
	ctx := context.Background()
	goldens := []struct {
		seed                      int64
		ticks                     int
		out, in, acks, bits, drop int64
		delivered                 int64
	}{
		{1, 61, 960, 767, 480, 393408, 300, 288},
		{2, 57, 896, 729, 448, 372928, 268, 288},
		{3, 59, 928, 759, 464, 379008, 279, 288},
		{4, 57, 896, 720, 448, 355200, 262, 288},
		{5, 59, 928, 735, 464, 373504, 297, 288},
	}
	for _, g := range goldens {
		// Each transcript is pinned with telemetry both off and on:
		// tracing only observes, so it must not shift a single coin draw
		// or counter.
		for _, traced := range []bool{false, true} {
			var rec *telemetry.Recorder
			if traced {
				rec = telemetry.New(telemetry.Config{Nodes: 8})
			}
			tr := cluster.WithLoss(cluster.NewChanTransport(8, InboxBuffer(8, 2)), 0.2, g.seed+3)
			res, err := Run(ctx, Config{
				N: 8, K: 6, PayloadBits: 48, Window: 3, Generations: 6,
				Seed: g.seed, Transport: tr, Lockstep: true, MaxTicks: 200000,
				Telemetry: rec,
			})
			if err != nil {
				t.Fatalf("seed %d traced=%v: %v", g.seed, traced, err)
			}
			if !res.Completed {
				t.Fatalf("seed %d traced=%v: incomplete", g.seed, traced)
			}
			got := [7]int64{int64(res.Ticks), res.PacketsOut, res.PacketsIn, res.AcksOut, res.BitsOut, res.Dropped, res.TokensDelivered}
			want := [7]int64{int64(g.ticks), g.out, g.in, g.acks, g.bits, g.drop, g.delivered}
			if got != want {
				t.Errorf("seed %d traced=%v: transcript diverged from allocating pipeline: got %v, want %v", g.seed, traced, got, want)
			}
			if traced {
				// The trace must reconcile with the pinned counters.
				c := rec.Counters()
				if c["events_send"] != res.PacketsOut {
					t.Errorf("seed %d: traced %d sends, metrics say %d", g.seed, c["events_send"], res.PacketsOut)
				}
				if c["events_send_ack"] != res.AcksOut {
					t.Errorf("seed %d: traced %d acks, metrics say %d", g.seed, c["events_send_ack"], res.AcksOut)
				}
				if c["events_drop"] != res.Dropped {
					t.Errorf("seed %d: traced %d drops, metrics say %d", g.seed, c["events_drop"], res.Dropped)
				}
				// Every generation delivered on every node leaves a deliver
				// event (8 nodes × 6 generations).
				if c["events_deliver"] != 48 {
					t.Errorf("seed %d: traced %d delivers, want 48", g.seed, c["events_deliver"])
				}
				if c["samples"] == 0 {
					t.Errorf("seed %d: traced run recorded no samples", g.seed)
				}
			}
		}
	}
}

// TestSeededSourceCacheBounded walks generation requests in adversarial
// orders — including strictly backward below everything cached, the
// pattern that defeated evict-the-minimum — and requires the memo cache
// to stay within its cap while still returning correct tokens.
func TestSeededSourceCacheBounded(t *testing.T) {
	src := NewSeededSource(4, 16, 99).(*seededSource)
	fresh := NewSeededSource(4, 16, 99)
	check := func(g int) {
		got := src.Generation(g)
		wantToks := fresh.(*seededSource).buildUncached(g)
		for j := range wantToks {
			if !got[j].Equal(wantToks[j]) {
				t.Fatalf("generation %d token %d diverged under eviction", g, j)
			}
		}
		if len(src.cache) > sourceCacheCap {
			t.Fatalf("cache grew to %d entries (cap %d) at generation %d", len(src.cache), sourceCacheCap, g)
		}
	}
	for g := 0; g < 3*sourceCacheCap; g++ { // forward
		check(g)
	}
	for g := 3 * sourceCacheCap; g >= 0; g-- { // strictly backward
		check(g)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ { // random jumps
		check(rng.Intn(10 * sourceCacheCap))
	}
}

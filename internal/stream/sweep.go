package stream

import (
	"context"

	"repro/internal/cluster"
)

// SweepParams is one lockstep measurement point for the performance
// observatory (cmd/repobench), mirroring cluster.SweepParams with the
// streaming axes (window, stream length) added.
type SweepParams struct {
	N, K, PayloadBits, Window, Generations, Fanout int
	Loss                                           float64
	Churn                                          *cluster.ChurnSchedule
	Seed                                           int64
	// MaxTicks caps the run (default 500000, matching the stream
	// benchmarks).
	MaxTicks int
	// Shards is the sharded-lockstep worker count (0/1 = serial engine).
	// Transcripts are shard-count invariant, so this is a pure
	// performance axis.
	Shards int
}

// SweepRun executes one deterministic lockstep streaming run for a
// sweep point and returns its Result — a pure function of the params,
// like cluster.SweepRun.
func SweepRun(p SweepParams) (*Result, error) {
	maxN := p.N + p.Churn.Joins()
	var tr cluster.Transport = cluster.NewChanTransport(maxN, InboxBuffer(maxN, p.Fanout+1))
	if p.Loss > 0 {
		tr = cluster.WithLoss(tr, p.Loss, p.Seed+103)
	}
	maxTicks := p.MaxTicks
	if maxTicks == 0 {
		maxTicks = 500000
	}
	return Run(context.Background(), Config{
		N: p.N, K: p.K, PayloadBits: p.PayloadBits, Window: p.Window,
		Generations: p.Generations, Fanout: p.Fanout, Seed: p.Seed,
		Transport: tr, Lockstep: true, Shards: p.Shards,
		MaxTicks: maxTicks, Churn: p.Churn,
	})
}

package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a dense matrix as a colored cell grid — the
// node × tick rank-progression view of the telemetry layer. Like
// Chart, the output is deterministic for a given input (fixed
// sequential ramp, fixed float formatting), so the markup is
// golden-testable.
//
// Values[row][col] maps row → y (row 0 at the bottom, matching node
// ids growing upward) and col → x. Rows may have differing lengths;
// missing cells are left blank. The color scale is a single-hue
// light→dark ramp (magnitude encoding), annotated by a labeled
// colorbar.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// Width/Height are the SVG viewport in px (default 720×480).
	Width, Height int
	// Values holds the cell magnitudes.
	Values [][]float64
	// X0/XStep map column index to data x (tick); defaults 0/1.
	X0, XStep float64
	// Min/Max fix the color scale; both zero means auto from the data.
	Min, Max float64
}

// rampLo..rampHi is the sequential single-hue ramp (light→dark blue),
// anchored on the palette's first categorical hue so the observatory's
// charts read as one family.
var (
	rampLo = [3]int{0xf7, 0xfb, 0xff}
	rampHi = [3]int{0x08, 0x30, 0x6b}
)

// rampColor interpolates the ramp at t in [0,1].
func rampColor(t float64) string {
	if math.IsNaN(t) {
		t = 0
	}
	t = math.Max(0, math.Min(1, t))
	var c [3]int
	for i := range c {
		c[i] = rampLo[i] + int(math.Round(t*float64(rampHi[i]-rampLo[i])))
	}
	return fmt.Sprintf("#%02x%02x%02x", c[0], c[1], c[2])
}

// SVG renders the heatmap as a complete SVG document.
func (h *Heatmap) SVG() string {
	w, ht := h.Width, h.Height
	if w <= 0 {
		w = 720
	}
	if ht <= 0 {
		ht = 480
	}
	const barW = 14 // colorbar width inside the legend margin
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(ht - marginTop - marginBottom)

	rows := len(h.Values)
	cols := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Values {
		if len(row) > cols {
			cols = len(row)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if h.Min != 0 || h.Max != 0 {
		lo, hi = h.Min, h.Max
	}
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		lo, hi = 0, 1
	}
	if lo == hi {
		hi = lo + 1
	}
	xstep := h.XStep
	if xstep == 0 {
		xstep = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, ht, w, ht)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, ht)
	fmt.Fprintf(&b, `<text x="%s" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		fpx(float64(marginLeft)), esc(h.Title))

	if rows == 0 || cols == 0 {
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="13" text-anchor="middle">no data</text>`+"\n",
			fpx(marginLeft+plotW/2), fpx(marginTop+plotH/2))
	} else {
		cw := plotW / float64(cols)
		ch := plotH / float64(rows)
		for ri, row := range h.Values {
			// Row 0 at the bottom: y decreases as the row index grows.
			y := marginTop + plotH - float64(ri+1)*ch
			for ci, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				t := (v - lo) / (hi - lo)
				fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`+"\n",
					fpx(marginLeft+float64(ci)*cw), fpx(y), fpx(cw), fpx(ch), rampColor(t))
			}
		}
		// X ticks on bucket boundaries, at most ~6 labels.
		every := cols / 6
		if every < 1 {
			every = 1
		}
		for ci := 0; ci <= cols; ci += every {
			x := marginLeft + float64(ci)*cw
			fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
				fpx(x), fpx(marginTop+plotH+16), fnum(h.X0+float64(ci)*xstep))
		}
		// Y ticks on row boundaries, at most ~8 labels.
		revery := rows / 8
		if revery < 1 {
			revery = 1
		}
		for ri := 0; ri < rows; ri += revery {
			y := marginTop + plotH - (float64(ri)+0.5)*ch
			fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
				fpx(marginLeft-6), fpx(y+4), fnum(float64(ri)))
		}
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black" stroke-width="1"/>`+"\n",
		fpx(marginLeft), fpx(marginTop), fpx(marginLeft), fpx(marginTop+plotH))
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black" stroke-width="1"/>`+"\n",
		fpx(marginLeft), fpx(marginTop+plotH), fpx(marginLeft+plotW), fpx(marginTop+plotH))
	fmt.Fprintf(&b, `<text x="%s" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		fpx(marginLeft+plotW/2), ht-12, esc(h.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%s" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %s)">%s</text>`+"\n",
		fpx(marginTop+plotH/2), fpx(marginTop+plotH/2), esc(h.YLabel))

	// Colorbar: 16 vertical slabs of the ramp, min/max labels.
	bx := float64(w - marginRight + 12)
	const slabs = 16
	for i := 0; i < slabs; i++ {
		t := (float64(i) + 0.5) / slabs
		y := marginTop + plotH - (float64(i)+1)*plotH/slabs
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%d" height="%s" fill="%s"/>`+"\n",
			fpx(bx), fpx(y), barW, fpx(plotH/slabs), rampColor(t))
	}
	fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%d" height="%s" fill="none" stroke="black" stroke-width="0.5"/>`+"\n",
		fpx(bx), fpx(float64(marginTop)), barW, fpx(plotH))
	fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="11">%s</text>`+"\n",
		fpx(bx+barW+4), fpx(marginTop+plotH), fnum(lo))
	fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="11">%s</text>`+"\n",
		fpx(bx+barW+4), fpx(float64(marginTop)+10), fnum(hi))
	b.WriteString("</svg>\n")
	return b.String()
}

package svgplot

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeatmap() *Heatmap {
	return &Heatmap{
		Title:  "rank progression",
		XLabel: "tick",
		YLabel: "node",
		Values: [][]float64{
			{0, 1, 3, 6, 6},
			{0, 0, 2, 5, 6},
			{0, 2, 4, 6, 6},
		},
		X0:    0,
		XStep: 2,
	}
}

// TestHeatmapGoldenMarkup pins the exact markup, like the Chart golden:
// the renderer is an encoder and its output is part of the contract.
func TestHeatmapGoldenMarkup(t *testing.T) {
	got := testHeatmap().SVG()
	golden := filepath.Join("testdata", "heatmap.svg.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/svgplot -update` to generate)", err)
	}
	if got != string(want) {
		t.Errorf("heatmap markup drifted from golden file %s:\ngot:\n%s", golden, got)
	}
}

func TestHeatmapWellFormedXML(t *testing.T) {
	maps := map[string]*Heatmap{
		"normal":   testHeatmap(),
		"empty":    {Title: "empty"},
		"one cell": {Values: [][]float64{{5}}},
		"flat":     {Values: [][]float64{{2, 2}, {2, 2}}},
		"escapes":  {Title: `a<b>&"c"`, Values: [][]float64{{1}}},
	}
	for name, h := range maps {
		s := h.SVG()
		dec := xml.NewDecoder(strings.NewReader(s))
		for {
			if _, err := dec.Token(); err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("%s: invalid XML: %v\n%s", name, err, s)
			}
		}
	}
}

// TestHeatmapRamp pins the sequential ramp's endpoints and midpoint
// ordering: one hue, light to dark, monotone in all three channels.
func TestHeatmapRamp(t *testing.T) {
	if got := rampColor(0); got != "#f7fbff" {
		t.Errorf("rampColor(0) = %s", got)
	}
	if got := rampColor(1); got != "#08306b" {
		t.Errorf("rampColor(1) = %s", got)
	}
	if got := rampColor(-5); got != rampColor(0) {
		t.Errorf("rampColor clamps low: %s", got)
	}
	if got := rampColor(7); got != rampColor(1) {
		t.Errorf("rampColor clamps high: %s", got)
	}
}

// TestHeatmapScale checks that fixed Min/Max override the data range:
// the same cell value must map to the same color across frames when
// the caller pins the scale.
func TestHeatmapScale(t *testing.T) {
	auto := &Heatmap{Values: [][]float64{{0, 10}}}
	pinned := &Heatmap{Values: [][]float64{{0, 10}}, Min: 0, Max: 20}
	a, p := auto.SVG(), pinned.SVG()
	if !strings.Contains(a, rampColor(1)) {
		t.Error("auto scale: max cell should be full-dark")
	}
	if strings.Contains(p, rampColor(1)) {
		t.Error("pinned scale 0..20: cell at 10 must not be full-dark")
	}
	if !strings.Contains(p, rampColor(0.5)) {
		t.Error("pinned scale 0..20: cell at 10 should be mid-ramp")
	}
}

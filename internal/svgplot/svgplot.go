// Package svgplot renders line charts as standalone SVG documents in
// pure Go — no gnuplot or cgo dependency — for the performance
// observatory (cmd/repobench). Output is deterministic for a given
// chart (fixed palette, fixed tick algorithm, fixed float formatting),
// so chart markup can be golden-tested like any other encoder.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve: points (X[i], Y[i]) drawn in order.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a titled line chart over one or more series.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width/Height are the SVG viewport in px (default 720×480).
	Width, Height int
	Series        []Series
}

// palette cycles per series; the colors stay readable on white.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
	"#9467bd", "#8c564b", "#e377c2", "#17becf",
}

const (
	marginLeft   = 72
	marginRight  = 180 // legend column
	marginTop    = 44
	marginBottom = 52
)

// fnum formats a data value the same way everywhere (ticks, labels):
// shortest round-trippable %g capped at 6 significant digits.
func fnum(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	// Normalize negative zero, which %g can produce from tick math.
	if s == "-0" {
		return "0"
	}
	return s
}

// fpx formats a pixel coordinate.
func fpx(v float64) string { return fmt.Sprintf("%.2f", v) }

// niceStep rounds raw up to a 1/2/5 × 10^k step.
func niceStep(raw float64) float64 {
	if raw <= 0 || math.IsNaN(raw) || math.IsInf(raw, 0) {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch frac := raw / mag; {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// ticks returns ~n tick positions covering [lo, hi] on nice values.
func ticks(lo, hi float64, n int) []float64 {
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	step := niceStep((hi - lo) / float64(n))
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e6; v += step {
		out = append(out, v)
	}
	return out
}

// dataRange finds the extent of all series along one axis.
func dataRange(c *Chart, y bool) (lo, hi float64, any bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		vals := s.X
		if y {
			vals = s.Y
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			any = true
		}
	}
	if !any {
		return 0, 1, false
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	return lo, hi, true
}

// SVG renders the chart as a complete SVG document.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 480
	}
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	xlo, xhi, _ := dataRange(c, false)
	ylo, yhi, hasData := dataRange(c, true)
	sx := func(v float64) float64 { return marginLeft + (v-xlo)/(xhi-xlo)*plotW }
	sy := func(v float64) float64 { return marginTop + plotH - (v-ylo)/(yhi-ylo)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%s" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		fpx(float64(marginLeft)), esc(c.Title))

	// Gridlines and tick labels.
	for _, tv := range ticks(ylo, yhi, 5) {
		y := sy(tv)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#dddddd" stroke-width="1"/>`+"\n",
			fpx(marginLeft), fpx(y), fpx(marginLeft+plotW), fpx(y))
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			fpx(marginLeft-6), fpx(y+4), fnum(tv))
	}
	for _, tv := range ticks(xlo, xhi, 6) {
		x := sx(tv)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#dddddd" stroke-width="1"/>`+"\n",
			fpx(x), fpx(marginTop), fpx(x), fpx(marginTop+plotH))
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			fpx(x), fpx(marginTop+plotH+16), fnum(tv))
	}

	// Axes on top of the grid.
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black" stroke-width="1"/>`+"\n",
		fpx(marginLeft), fpx(marginTop), fpx(marginLeft), fpx(marginTop+plotH))
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="black" stroke-width="1"/>`+"\n",
		fpx(marginLeft), fpx(marginTop+plotH), fpx(marginLeft+plotW), fpx(marginTop+plotH))
	fmt.Fprintf(&b, `<text x="%s" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		fpx(marginLeft+plotW/2), h-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%s" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %s)">%s</text>`+"\n",
		fpx(marginTop+plotH/2), fpx(marginTop+plotH/2), esc(c.YLabel))

	if !hasData {
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="13" text-anchor="middle">no data</text>`+"\n",
			fpx(marginLeft+plotW/2), fpx(marginTop+plotH/2))
	}

	// Curves, points, legend.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			if j >= len(s.Y) || math.IsNaN(s.Y[j]) || math.IsInf(s.Y[j], 0) {
				continue
			}
			pts = append(pts, fpx(sx(s.X[j]))+","+fpx(sy(s.Y[j])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range pts {
			xy := strings.SplitN(p, ",", 2)
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
		}
		ly := float64(marginTop + 14 + 18*i)
		lx := float64(w - marginRight + 12)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="2"/>`+"\n",
			fpx(lx), fpx(ly-4), fpx(lx+20), fpx(ly-4), color)
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			fpx(lx+26), fpx(ly), esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// esc escapes the XML-reserved characters in user-supplied labels.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

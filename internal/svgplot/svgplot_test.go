package svgplot

import (
	"encoding/xml"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func testChart() *Chart {
	return &Chart{
		Title:  "runtime vs n",
		XLabel: "n (nodes)",
		YLabel: "runtime (ms)",
		Series: []Series{
			{Name: "abc1234", X: []float64{8, 16, 24, 32}, Y: []float64{1.5, 4.2, 9.8, 18.3}},
			{Name: "def5678", X: []float64{8, 16, 24, 32}, Y: []float64{1.4, 3.9, 8.1, 15.0}},
		},
	}
}

// TestGoldenMarkup pins the exact SVG byte stream: the renderer is an
// encoder, and like the wire codec its output is part of the contract
// (CI archives these files; diffs must mean data changes).
func TestGoldenMarkup(t *testing.T) {
	got := testChart().SVG()
	golden := filepath.Join("testdata", "chart.svg.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/svgplot -update` to generate)", err)
	}
	if got != string(want) {
		t.Errorf("SVG markup drifted from golden file %s:\ngot:\n%s", golden, got)
	}
}

// TestWellFormedXML parses the output with encoding/xml: every chart,
// including degenerate ones, must be a well-formed document.
func TestWellFormedXML(t *testing.T) {
	charts := map[string]*Chart{
		"normal":       testChart(),
		"empty":        {Title: "empty"},
		"single point": {Series: []Series{{Name: "p", X: []float64{3}, Y: []float64{7}}}},
		"flat line":    {Series: []Series{{Name: "f", X: []float64{1, 2}, Y: []float64{5, 5}}}},
		"escapes":      {Title: `a<b>&"c"`, Series: []Series{{Name: "x<y&z", X: []float64{0, 1}, Y: []float64{0, 1}}}},
	}
	for name, c := range charts {
		s := c.SVG()
		dec := xml.NewDecoder(strings.NewReader(s))
		for {
			if _, err := dec.Token(); err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("%s: invalid XML: %v\n%s", name, err, s)
			}
		}
		if !strings.HasPrefix(s, "<svg ") || !strings.HasSuffix(s, "</svg>\n") {
			t.Errorf("%s: not a standalone svg document", name)
		}
	}
}

func TestSeriesRendered(t *testing.T) {
	s := testChart().SVG()
	for _, want := range []string{"abc1234", "def5678", "<polyline", "<circle", "runtime vs n"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Two series -> two distinct palette colors.
	if !strings.Contains(s, palette[0]) || !strings.Contains(s, palette[1]) {
		t.Error("series do not use distinct palette colors")
	}
}

func TestTicksCoverRange(t *testing.T) {
	tk := ticks(0, 100, 5)
	if len(tk) < 3 {
		t.Fatalf("ticks(0,100,5) = %v, want >= 3 ticks", tk)
	}
	if tk[0] < 0 || tk[len(tk)-1] > 100+1e-9 {
		t.Errorf("ticks %v escape the range [0,100]", tk)
	}
	if got := ticks(5, 5, 5); len(got) < 2 {
		t.Errorf("degenerate range produced %v, want an expanded window", got)
	}
}

// Package telemetry gives the gossip runtimes in-flight visibility:
// a per-node, fixed-capacity ring buffer of protocol events (packet
// send/recv/drop, span inserts with their innovative-or-not verdict,
// generation retirement, frontier moves, membership churn) plus a
// tick-bucketed time series of each node's protocol state (rank,
// delivery watermark, inbox depth, live-view size) and, for the
// socket runtime, the udpnet datagram accounting buckets.
//
// The package is built around one invariant: a nil *Recorder is the
// disabled state, and every recording method is a nil-receiver no-op
// that performs no allocation and draws no randomness. Instrumentation
// points in internal/cluster and internal/stream therefore call the
// methods unconditionally; with telemetry off the cost is one
// predictable branch per call site, which keeps the lockstep golden
// transcripts and the benchguard allocation baselines byte-identical
// whether the recorder is attached or not (recording only observes —
// it never touches the protocol's RNG streams or emission order).
//
// Per-node storage is owned by whatever goroutine drives the node (the
// lockstep thread, a node goroutine, the cmd/node process body), the
// same ownership rule the buffer rings follow, so recording needs no
// locks. Ring and sample storage is allocated lazily on a node's first
// event, so a Recorder sized for a 1024-process id space costs memory
// only for the nodes this process actually runs. Cross-thread readers
// (the expvar surface in cmd/node) see only the atomic aggregate
// counters, never the rings.
//
// # Quick start
//
// The CLIs expose recording behind two flags; no code is needed to go
// from a run to pictures. Trace a lossy lockstep dissemination and
// render its rank-progression heatmap (node × time, light→dark as
// each node's span fills), frontier timeline and packet-flow summary:
//
//	go run ./cmd/cluster -transport lockstep -loss 0.25 -trace out/
//	open out/cluster-heatmap.svg     # rank heatmap
//	open out/cluster-timeline.svg    # per-node rank curves
//	cat  out/cluster-telemetry.txt   # the v1 text export
//
// cmd/stream writes the same set under the stream- prefix (its
// timeline plots delivery watermarks, the paper's frontier), and
// cmd/node traces one process's ring per process. -telemetry FILE
// writes just the text export; -debug-addr serves the live aggregate
// counters over expvar alongside pprof.
//
// Programmatic use is the same shape the CLIs wrap:
//
//	rec := telemetry.New(telemetry.Config{Nodes: n})
//	res, err := cluster.Run(ctx, cluster.Config{..., Telemetry: rec}, toks)
//	err = rec.WriteFiles("out", "cluster", false)
//
// See DESIGN.md ("Runtime telemetry") for the event taxonomy, the
// ownership rules and the export schema.
package telemetry

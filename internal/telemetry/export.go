package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// The text export schema, version 1, written by WriteText. One
// telemetry file describes one run, next to the run's metrics files:
//
//	telemetry v1
//	meta <key> <value>            # run parameters, insertion order
//	s <node> <tick> <rank> <watermark> <inbox> <view>
//	e <node> <tick> <kind> <a> <b> <c>
//	net <tick> <datagrams> <gossip> <announces> <drop_oversize>
//	    <drop_truncated> <drop_version> <drop_type> <drop_malformed>
//	    <drop_inbox_full> <drop_unknown_peer> <write_errors>
//	end
//
// Samples come first (grouped by node id, ascending), then events
// (same grouping, oldest first per node — a ring that overflowed has
// lost its oldest events), then the socket accounting series. Every
// value is a base-10 integer except the meta values and event kind
// names; the line order is deterministic for a given recorder, so the
// schema is golden-testable and diff-stable across runs of the same
// seed. Consumers must ignore unknown line prefixes (schema growth
// adds prefixes, never reorders).

// WriteText writes the recorder's full contents in the v1 text
// schema. Call it after the run: per-node storage is single-owner
// while nodes are still being driven. A nil receiver writes an empty
// document (header and end line only).
func (r *Recorder) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "telemetry v1\n")
	if r != nil {
		for _, kv := range r.meta {
			fmt.Fprintf(bw, "meta %s %s\n", kv[0], kv[1])
		}
		for id := range r.recs {
			for _, s := range r.recs[id].samples {
				fmt.Fprintf(bw, "s %d %d %d %d %d %d\n", id, s.Tick, s.Rank, s.Watermark, s.Inbox, s.View)
			}
		}
		for id := range r.recs {
			for _, e := range r.Events(id) {
				fmt.Fprintf(bw, "e %d %d %s %d %d %d\n", id, e.Tick, e.Kind, e.A, e.B, e.C)
			}
		}
		for _, ns := range r.netSamples {
			n := ns.Net
			fmt.Fprintf(bw, "net %d %d %d %d %d %d %d %d %d %d %d %d\n",
				ns.Tick, n.Datagrams, n.Gossip, n.Announces,
				n.DropOversize, n.DropTruncated, n.DropVersion, n.DropType,
				n.DropMalformed, n.DropInboxFull, n.DropUnknownPeer, n.WriteErrors)
		}
	}
	fmt.Fprintf(bw, "end\n")
	return bw.Flush()
}

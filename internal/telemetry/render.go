package telemetry

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/svgplot"
)

// This file turns a recorded run into the three standard views: the
// rank-progression heatmap (node × tick), the watermark/rank frontier
// timeline, and the packet-flow summary. All three are pure functions
// of the recorder's contents, so the SVGs are deterministic for a
// deterministic run.

// tickRange scans every sample for the run's tick span. ok is false
// when no samples were recorded.
func (r *Recorder) tickRange() (lo, hi int64, ok bool) {
	if r == nil {
		return 0, 0, false
	}
	for id := range r.recs {
		for _, s := range r.recs[id].samples {
			if !ok {
				lo, hi, ok = s.Tick, s.Tick, true
				continue
			}
			if s.Tick < lo {
				lo = s.Tick
			}
			if s.Tick > hi {
				hi = s.Tick
			}
		}
	}
	return lo, hi, ok
}

// bucketOf maps a tick into [0, buckets).
func bucketOf(tick, lo, hi int64, buckets int) int {
	if hi == lo {
		return 0
	}
	b := int((tick - lo) * int64(buckets) / (hi - lo + 1))
	if b >= buckets {
		b = buckets - 1
	}
	return b
}

// RankHeatmap renders decoding progress as a node × time heatmap: row
// y is node id, column x is a tick bucket, cell darkness is the node's
// rank (its last sample in or before the bucket, carried forward).
// Cells before a node's first sample stay blank — a late joiner shows
// as a blank prefix. A nil recorder or a run with no samples renders
// the "no data" placeholder.
func (r *Recorder) RankHeatmap(buckets int) *svgplot.Heatmap {
	h := &svgplot.Heatmap{
		Title:  "rank progression (node × time)",
		XLabel: "tick",
		YLabel: "node",
	}
	lo, hi, ok := r.tickRange()
	if !ok {
		return h
	}
	if buckets < 1 {
		buckets = 1
	}
	if span := int(hi-lo) + 1; buckets > span {
		buckets = span
	}
	h.X0 = float64(lo)
	h.XStep = float64(hi-lo+1) / float64(buckets)
	h.Values = make([][]float64, len(r.recs))
	for id := range r.recs {
		row := make([]float64, buckets)
		for i := range row {
			row[i] = math.NaN()
		}
		for _, s := range r.recs[id].samples {
			row[bucketOf(s.Tick, lo, hi, buckets)] = float64(s.Rank)
		}
		// Carry the last seen rank forward through empty buckets so
		// sparse sampling doesn't punch holes mid-run.
		last := math.NaN()
		for i := range row {
			if math.IsNaN(row[i]) {
				row[i] = last
			} else {
				last = row[i]
			}
		}
		h.Values[id] = row
	}
	return h
}

// timelineStat selects which per-node series Timeline draws.
type timelineStat int

const (
	statRank timelineStat = iota
	statWatermark
)

// maxTimelineSeries is the per-node curve limit: beyond it the
// timeline switches to min/mean/max envelopes (fixed palette order,
// never cycled).
const maxTimelineSeries = 8

// Timeline renders the frontier's advance over time: per-node curves
// for small runs, a min/mean/max envelope for large ones (the min
// curve is the frontier — the straggler the protocol waits on).
func (r *Recorder) timeline(stat timelineStat, title, ylabel string) *svgplot.Chart {
	c := &svgplot.Chart{Title: title, XLabel: "tick", YLabel: ylabel}
	lo, hi, ok := r.tickRange()
	if !ok {
		return c
	}
	value := func(s Sample) float64 {
		if stat == statWatermark {
			return float64(s.Watermark)
		}
		return float64(s.Rank)
	}
	active := 0
	for id := range r.recs {
		if len(r.recs[id].samples) > 0 {
			active++
		}
	}
	if active <= maxTimelineSeries {
		for id := range r.recs {
			samples := r.recs[id].samples
			if len(samples) == 0 {
				continue
			}
			s := svgplot.Series{Name: fmt.Sprintf("node %d", id)}
			for _, sm := range samples {
				s.X = append(s.X, float64(sm.Tick))
				s.Y = append(s.Y, value(sm))
			}
			c.Series = append(c.Series, s)
		}
		return c
	}
	// Envelope: bucket the ticks, aggregate across nodes.
	buckets := int(hi-lo) + 1
	if buckets > 200 {
		buckets = 200
	}
	mins := make([]float64, buckets)
	maxs := make([]float64, buckets)
	sums := make([]float64, buckets)
	ns := make([]int, buckets)
	for i := range mins {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	for id := range r.recs {
		for _, sm := range r.recs[id].samples {
			b := bucketOf(sm.Tick, lo, hi, buckets)
			v := value(sm)
			mins[b] = math.Min(mins[b], v)
			maxs[b] = math.Max(maxs[b], v)
			sums[b] += v
			ns[b]++
		}
	}
	sMin := svgplot.Series{Name: "min (frontier)"}
	sMean := svgplot.Series{Name: "mean"}
	sMax := svgplot.Series{Name: "max"}
	step := float64(hi-lo+1) / float64(buckets)
	for b := 0; b < buckets; b++ {
		if ns[b] == 0 {
			continue
		}
		x := float64(lo) + (float64(b)+0.5)*step
		sMin.X, sMin.Y = append(sMin.X, x), append(sMin.Y, mins[b])
		sMean.X, sMean.Y = append(sMean.X, x), append(sMean.Y, sums[b]/float64(ns[b]))
		sMax.X, sMax.Y = append(sMax.X, x), append(sMax.Y, maxs[b])
	}
	c.Series = []svgplot.Series{sMin, sMean, sMax}
	return c
}

// RankTimeline is the rank view of the frontier timeline (cluster
// runs, where there is no delivery watermark).
func (r *Recorder) RankTimeline() *svgplot.Chart {
	return r.timeline(statRank, "rank frontier", "rank")
}

// WatermarkTimeline is the delivery-watermark view (stream runs).
func (r *Recorder) WatermarkTimeline() *svgplot.Chart {
	return r.timeline(statWatermark, "delivery watermark frontier", "watermark (generations)")
}

// PacketFlow renders the run's traffic shape: packets sent, received,
// and dropped per tick bucket, summed across nodes. Ring overflow
// trims the oldest events, so long runs show the tail of the story —
// the aggregate counters (Counters) keep the full totals.
func (r *Recorder) PacketFlow(buckets int) *svgplot.Chart {
	c := &svgplot.Chart{Title: "packet flow", XLabel: "tick", YLabel: "packets / bucket"}
	if r == nil {
		return c
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	any := false
	for id := range r.recs {
		nr := &r.recs[id]
		for i := 0; i < nr.n; i++ {
			t := nr.ring[i].Tick
			if !any {
				lo, hi, any = t, t, true
				continue
			}
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
	}
	if !any {
		return c
	}
	if buckets < 1 {
		buckets = 1
	}
	if span := int(hi-lo) + 1; buckets > span {
		buckets = span
	}
	sent := make([]float64, buckets)
	recv := make([]float64, buckets)
	drop := make([]float64, buckets)
	for id := range r.recs {
		nr := &r.recs[id]
		for i := 0; i < nr.n; i++ {
			e := nr.ring[i]
			b := bucketOf(e.Tick, lo, hi, buckets)
			switch e.Kind {
			case KindSend, KindSendAck, KindSendHello:
				sent[b]++
			case KindRecv, KindRecvAck, KindRecvHello:
				recv[b]++
			case KindDrop:
				drop[b]++
			}
		}
	}
	step := float64(hi-lo+1) / float64(buckets)
	mk := func(name string, ys []float64) svgplot.Series {
		s := svgplot.Series{Name: name}
		for b, y := range ys {
			s.X = append(s.X, float64(lo)+(float64(b)+0.5)*step)
			s.Y = append(s.Y, y)
		}
		return s
	}
	c.Series = []svgplot.Series{mk("sent", sent), mk("received", recv), mk("dropped", drop)}
	return c
}

// renderBuckets is the default time resolution of the rendered views.
const renderBuckets = 120

// WriteFiles exports a recorded run into dir as the standard file
// set: <prefix>-telemetry.txt (the v1 text schema), plus the heatmap,
// timeline, and packet-flow SVGs. watermark selects the timeline stat
// (true for stream runs). Call after the run completes.
func (r *Recorder) WriteFiles(dir, prefix string, watermark bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, prefix+"-telemetry.txt"))
	if err != nil {
		return err
	}
	if err := r.WriteText(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	tl := r.RankTimeline()
	if watermark {
		tl = r.WatermarkTimeline()
	}
	for name, svg := range map[string]string{
		prefix + "-heatmap.svg":    r.RankHeatmap(renderBuckets).SVG(),
		prefix + "-timeline.svg":   tl.SVG(),
		prefix + "-packetflow.svg": r.PacketFlow(renderBuckets).SVG(),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(svg), 0o644); err != nil {
			return err
		}
	}
	return nil
}

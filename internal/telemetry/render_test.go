package telemetry

import (
	"encoding/xml"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func recordedRun() *Recorder {
	r := New(Config{Nodes: 3, EventCap: 32})
	for tick := int64(0); tick < 10; tick++ {
		for id := 0; id < 3; id++ {
			rank := int(tick) + id
			if rank > 9 {
				rank = 9
			}
			r.Sample(id, tick, rank, rank/2, 1, 3)
			r.Event(id, tick, KindSend, int64((id+1)%3), 0, 96)
			r.Event(id, tick, KindRecv, int64((id+2)%3), 0, 0)
		}
	}
	r.Event(0, 5, KindDrop, 1, 0, 0)
	return r
}

func TestRankHeatmapCarryForward(t *testing.T) {
	r := New(Config{Nodes: 2, SampleEvery: 1})
	r.Sample(0, 0, 1, 0, 0, 2)
	r.Sample(0, 4, 5, 0, 0, 2)
	r.Sample(1, 2, 3, 0, 0, 2)
	h := r.RankHeatmap(5) // one bucket per tick 0..4
	if len(h.Values) != 2 {
		t.Fatalf("rows = %d", len(h.Values))
	}
	want0 := []float64{1, 1, 1, 1, 5} // carried forward through 1..3
	for i, w := range want0 {
		if h.Values[0][i] != w {
			t.Errorf("row0[%d] = %v, want %v", i, h.Values[0][i], w)
		}
	}
	if !math.IsNaN(h.Values[1][0]) || !math.IsNaN(h.Values[1][1]) {
		t.Error("row1 pre-join buckets should be blank (NaN)")
	}
	if h.Values[1][2] != 3 || h.Values[1][4] != 3 {
		t.Errorf("row1 = %v", h.Values[1])
	}
}

func TestTimelinePerNodeVsEnvelope(t *testing.T) {
	small := recordedRun()
	c := small.RankTimeline()
	if len(c.Series) != 3 {
		t.Fatalf("small run: %d series, want one per node", len(c.Series))
	}
	if c.Series[0].Name != "node 0" {
		t.Errorf("series name %q", c.Series[0].Name)
	}

	big := New(Config{Nodes: maxTimelineSeries + 5})
	for id := 0; id < big.Nodes(); id++ {
		for tick := int64(0); tick < 4; tick++ {
			big.Sample(id, tick, int(tick)+id%3, 0, 0, 1)
		}
	}
	c = big.WatermarkTimeline()
	if len(c.Series) != 3 {
		t.Fatalf("big run: %d series, want min/mean/max envelope", len(c.Series))
	}
	if !strings.Contains(c.Series[0].Name, "min") {
		t.Errorf("envelope first series %q, want the frontier (min)", c.Series[0].Name)
	}
}

func TestPacketFlowCounts(t *testing.T) {
	r := recordedRun()
	c := r.PacketFlow(1) // single bucket: totals
	if len(c.Series) != 3 {
		t.Fatalf("series = %d", len(c.Series))
	}
	totals := map[string]float64{}
	for _, s := range c.Series {
		sum := 0.0
		for _, y := range s.Y {
			sum += y
		}
		totals[s.Name] = sum
	}
	if totals["sent"] != 30 || totals["received"] != 30 || totals["dropped"] != 1 {
		t.Errorf("totals = %v, want sent 30 received 30 dropped 1", totals)
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	r := recordedRun()
	r.SetMeta("driver", "test")
	if err := r.WriteFiles(dir, "run", true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"run-telemetry.txt", "run-heatmap.svg", "run-timeline.svg", "run-packetflow.svg",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing export file: %v", err)
		}
		if strings.HasSuffix(name, ".svg") {
			dec := xml.NewDecoder(strings.NewReader(string(data)))
			for {
				if _, err := dec.Token(); err != nil {
					if err.Error() == "EOF" {
						break
					}
					t.Fatalf("%s: invalid XML: %v", name, err)
				}
			}
		}
	}
	txt, _ := os.ReadFile(filepath.Join(dir, "run-telemetry.txt"))
	if !strings.HasPrefix(string(txt), "telemetry v1\nmeta driver test\n") {
		t.Errorf("export header:\n%s", string(txt)[:60])
	}
}

// Rendering a run with no samples must not panic and must still
// produce complete documents (the "no data" placeholder).
func TestRenderEmptyRun(t *testing.T) {
	r := New(Config{Nodes: 4})
	if svg := r.RankHeatmap(renderBuckets).SVG(); !strings.Contains(svg, "no data") {
		t.Error("empty heatmap missing placeholder")
	}
	_ = r.RankTimeline().SVG()
	_ = r.PacketFlow(renderBuckets).SVG()
	if err := r.WriteFiles(t.TempDir(), "empty", false); err != nil {
		t.Fatal(err)
	}
}

package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Kind labels one protocol event. The names are part of the text
// export schema (see WriteText) and must stay stable.
type Kind uint8

const (
	// KindSend is a data packet emission: A=peer, B=generation/epoch,
	// C=protocol bits.
	KindSend Kind = iota
	// KindSendAck is an ack emission (stream): A=peer, B=watermark.
	KindSendAck
	// KindSendHello is a membership announcement: A=peer, B=1 if
	// leaving.
	KindSendHello
	// KindRecv is a data packet receipt: A=sender, B=generation/epoch.
	KindRecv
	// KindRecvAck is an ack receipt (stream): A=sender, B=the sender's
	// watermark.
	KindRecvAck
	// KindRecvHello is a membership announcement receipt: A=sender,
	// B=1 if leaving.
	KindRecvHello
	// KindDrop is a Send the transport refused: A=peer.
	KindDrop
	// KindInsert is a span insert attempt: A=generation/epoch, B=rank
	// after the insert, C=1 if the packet was innovative.
	KindInsert
	// KindDeliver is an in-order generation delivery (stream):
	// A=generation, B=watermark after.
	KindDeliver
	// KindRetire is a generation retiring below the frontier (stream):
	// A=generation.
	KindRetire
	// KindFrontier is a retirement-frontier move (stream): A=new base.
	KindFrontier
	// KindJoin / KindLeave / KindCrash / KindRestart are membership
	// events recorded on the affected node's ring at the tick the
	// driver applied them.
	KindJoin
	KindLeave
	KindCrash
	KindRestart
	// KindSuspect is a local suspicion verdict: the recording node
	// dropped peer A from its retirement frontier for silence.
	KindSuspect
	// KindAdvCut is a Send the adversarial topology layer blocked:
	// recorded on the sender, A=peer. The tick is the adversary's round
	// clock, which under the lockstep drivers equals the driver tick.
	KindAdvCut
	// KindMutate is a hostile-packet mutation applied to an outgoing
	// Send: recorded on the sender, A=peer, B=the mutation op code
	// (hostile.Op).
	KindMutate

	numKinds
)

// kindNames are the stable export names, indexed by Kind.
var kindNames = [numKinds]string{
	"send", "send_ack", "send_hello",
	"recv", "recv_ack", "recv_hello",
	"drop", "insert", "deliver", "retire", "frontier",
	"join", "leave", "crash", "restart", "suspect",
	"adv_cut", "mutate",
}

// String returns the kind's stable export name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one traced protocol event. Tick is the driver's clock:
// lockstep tick numbers under the deterministic drivers, nanosecond
// wall offsets under the async ones. A, B, C are kind-specific (see
// the Kind constants).
type Event struct {
	Tick    int64
	Kind    Kind
	A, B, C int64
}

// Sample is one time-series point of a node's protocol state.
type Sample struct {
	Tick int64
	// Rank is the node's decoding progress: span rank (cluster), or
	// the rank of the generation at the delivery watermark (stream).
	Rank int32
	// Watermark is the node's delivery watermark (stream; zero for
	// cluster runs).
	Watermark int32
	// Inbox is the queued-packet depth of the node's inbox at sample
	// time.
	Inbox int32
	// View is the node's live-view size.
	View int32
}

// NetCounters mirror the udpnet datagram accounting buckets without
// importing udpnet (which sits above this package). All values are
// cumulative at sample time.
type NetCounters struct {
	Datagrams, Gossip, Announces                       int64
	DropOversize, DropTruncated, DropVersion, DropType int64
	DropMalformed, DropInboxFull, DropUnknownPeer      int64
	WriteErrors                                        int64
}

// NetSample is one time-bucketed snapshot of the socket accounting.
type NetSample struct {
	Tick int64
	Net  NetCounters
}

// Config sizes a Recorder.
type Config struct {
	// Nodes is the run's node id space (Config.N plus churn joins).
	Nodes int
	// EventCap is the per-node event ring capacity (default 4096).
	// Once full, the oldest events are overwritten; Dropped counts the
	// overwrites.
	EventCap int
	// MaxSamples caps the per-node time series (default 65536); beyond
	// it new samples are discarded (the series covers the run's start,
	// the ring covers its end).
	MaxSamples int
	// SampleEvery thins lockstep sampling: SampleTick records only
	// ticks divisible by it (default 1 = every tick). Async sampling
	// (Sample) is already paced by the emission interval and ignores
	// it.
	SampleEvery int
}

func (c Config) eventCap() int {
	if c.EventCap > 0 {
		return c.EventCap
	}
	return 4096
}

func (c Config) maxSamples() int {
	if c.MaxSamples > 0 {
		return c.MaxSamples
	}
	return 65536
}

func (c Config) sampleEvery() int64 {
	if c.SampleEvery > 1 {
		return int64(c.SampleEvery)
	}
	return 1
}

// nodeRec is one node's storage: an overwrite-oldest event ring and an
// append-only sample series, both lazily allocated and owned by the
// goroutine driving the node.
type nodeRec struct {
	ring    []Event
	head    int // next write slot
	n       int // events currently held
	samples []Sample
}

// nodeStat is the recorder's live per-node scoreboard, maintained as a
// side effect of Event/Sample recording. Unlike the rings and series it
// is written and read with atomics, so an adversary (internal/hostile)
// may consult it concurrently with recording.
type nodeStat struct {
	rank atomic.Int64 // latest decoding progress / delivery watermark
	seen atomic.Bool  // any event or sample recorded for this id
	dead atomic.Bool  // last membership event was a crash or leave
}

// Recorder collects events and samples for one run. The zero value is
// not usable; construct with New. A nil *Recorder is the disabled
// state: every method below is a nil-receiver no-op.
type Recorder struct {
	cfg  Config
	recs []nodeRec
	meta [][2]string

	// Aggregate counters, safe to read concurrently (the expvar
	// surface); everything else is single-owner per node.
	kindCounts     [numKinds]atomic.Int64
	sampleCount    atomic.Int64
	eventsDropped  atomic.Int64
	samplesDropped atomic.Int64

	stats []nodeStat // live rank scoreboard; see LiveRank

	netSamples []NetSample // owned by the net sampler goroutine
}

// New returns a Recorder for a run over cfg.Nodes node ids.
func New(cfg Config) *Recorder {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	return &Recorder{cfg: cfg, recs: make([]nodeRec, cfg.Nodes), stats: make([]nodeStat, cfg.Nodes)}
}

// Nodes returns the recorder's node id space.
func (r *Recorder) Nodes() int {
	if r == nil {
		return 0
	}
	return len(r.recs)
}

// SetMeta records one run parameter for the export header (driver,
// n, k, seed, ...). Pairs export in insertion order.
func (r *Recorder) SetMeta(key, value string) {
	if r == nil {
		return
	}
	r.meta = append(r.meta, [2]string{key, value})
}

// Event appends one event to node's ring, overwriting the oldest once
// the fixed capacity is reached. A nil receiver or out-of-range node
// is a no-op.
func (r *Recorder) Event(node int, tick int64, k Kind, a, b, c int64) {
	if r == nil || node < 0 || node >= len(r.recs) {
		return
	}
	nr := &r.recs[node]
	if nr.ring == nil {
		nr.ring = make([]Event, r.cfg.eventCap())
	}
	nr.ring[nr.head] = Event{Tick: tick, Kind: k, A: a, B: b, C: c}
	nr.head++
	if nr.head == len(nr.ring) {
		nr.head = 0
	}
	if nr.n < len(nr.ring) {
		nr.n++
	} else {
		r.eventsDropped.Add(1)
	}
	r.kindCounts[k].Add(1)

	// Maintain the live scoreboard: rank moves on insert/deliver,
	// liveness flips on membership events, any event proves the id is
	// part of the run.
	st := &r.stats[node]
	st.seen.Store(true)
	switch k {
	case KindInsert, KindDeliver:
		st.rank.Store(b)
	case KindCrash, KindLeave:
		st.dead.Store(true)
	case KindJoin, KindRestart:
		st.dead.Store(false)
	}
}

// LiveRank reads the scoreboard Event/Sample recording maintains: node's
// latest decoding progress (cluster: span rank / token count, via
// KindInsert) or delivery watermark (stream, via KindDeliver), and
// whether the node has been observed at all without a subsequent
// crash/leave. It is the adaptive adversary's window into the run
// (internal/hostile) and is safe to call concurrently with recording. A
// nil receiver or out-of-range id reports ok=false.
func (r *Recorder) LiveRank(node int) (rank int64, ok bool) {
	if r == nil || node < 0 || node >= len(r.stats) {
		return 0, false
	}
	st := &r.stats[node]
	if !st.seen.Load() || st.dead.Load() {
		return 0, false
	}
	return st.rank.Load(), true
}

// Sample appends one time-series point for node unconditionally (the
// async drivers pace it by their emission interval).
func (r *Recorder) Sample(node int, tick int64, rank, watermark, inbox, view int) {
	if r == nil || node < 0 || node >= len(r.recs) {
		return
	}
	nr := &r.recs[node]
	if len(nr.samples) >= r.cfg.maxSamples() {
		r.samplesDropped.Add(1)
		return
	}
	if nr.samples == nil {
		nr.samples = make([]Sample, 0, 256)
	}
	nr.samples = append(nr.samples, Sample{
		Tick: tick, Rank: int32(rank), Watermark: int32(watermark),
		Inbox: int32(inbox), View: int32(view),
	})
	r.sampleCount.Add(1)
	st := &r.stats[node]
	st.seen.Store(true)
	st.rank.Store(int64(rank))
}

// SampleTick is Sample under the lockstep drivers: it thins to every
// Config.SampleEvery-th tick so long deterministic runs stay cheap.
func (r *Recorder) SampleTick(node int, tick int64, rank, watermark, inbox, view int) {
	if r == nil || tick%r.cfg.sampleEvery() != 0 {
		return
	}
	r.Sample(node, tick, rank, watermark, inbox, view)
}

// SampleNet appends one socket accounting snapshot. It is owned by the
// caller's sampling loop (cmd/node runs one); not safe for concurrent
// SampleNet calls.
func (r *Recorder) SampleNet(tick int64, net NetCounters) {
	if r == nil {
		return
	}
	r.netSamples = append(r.netSamples, NetSample{Tick: tick, Net: net})
}

// Events returns node's traced events, oldest first. The slice is
// freshly allocated; call after the run (single-owner storage).
func (r *Recorder) Events(node int) []Event {
	if r == nil || node < 0 || node >= len(r.recs) {
		return nil
	}
	nr := &r.recs[node]
	out := make([]Event, 0, nr.n)
	start := nr.head - nr.n
	if start < 0 {
		start += len(nr.ring)
	}
	for i := 0; i < nr.n; i++ {
		out = append(out, nr.ring[(start+i)%len(nr.ring)])
	}
	return out
}

// Samples returns node's time series in recording order. The returned
// slice aliases recorder storage; treat as read-only.
func (r *Recorder) Samples(node int) []Sample {
	if r == nil || node < 0 || node >= len(r.recs) {
		return nil
	}
	return r.recs[node].samples
}

// NetSamples returns the socket accounting series in recording order.
func (r *Recorder) NetSamples() []NetSample {
	if r == nil {
		return nil
	}
	return r.netSamples
}

// Counters snapshots the aggregate counters (events recorded per kind,
// samples, ring overwrites, discarded samples) keyed by stable export
// names. Safe to call concurrently with recording — it is the live
// surface behind cmd/node's expvar endpoint. A nil receiver returns
// nil.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64, numKinds+3)
	for k := Kind(0); k < numKinds; k++ {
		if v := r.kindCounts[k].Load(); v != 0 {
			out["events_"+k.String()] = v
		}
	}
	out["samples"] = r.sampleCount.Load()
	out["events_overwritten"] = r.eventsDropped.Load()
	out["samples_discarded"] = r.samplesDropped.Load()
	return out
}

package telemetry

import (
	"strings"
	"testing"
)

func TestKindNamesStable(t *testing.T) {
	want := []string{
		"send", "send_ack", "send_hello",
		"recv", "recv_ack", "recv_hello",
		"drop", "insert", "deliver", "retire", "frontier",
		"join", "leave", "crash", "restart", "suspect",
		"adv_cut", "mutate",
	}
	if int(numKinds) != len(want) {
		t.Fatalf("numKinds = %d, want %d", numKinds, len(want))
	}
	for i, w := range want {
		if got := Kind(i).String(); got != w {
			t.Errorf("Kind(%d).String() = %q, want %q", i, got, w)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestEventRingOverwrite(t *testing.T) {
	r := New(Config{Nodes: 2, EventCap: 4})
	for i := 0; i < 7; i++ {
		r.Event(0, int64(i), KindSend, int64(i), 0, 0)
	}
	ev := r.Events(0)
	if len(ev) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(3 + i); e.Tick != want {
			t.Errorf("Events[%d].Tick = %d, want %d (oldest-first after overwrite)", i, e.Tick, want)
		}
	}
	if got := r.Counters()["events_overwritten"]; got != 3 {
		t.Errorf("events_overwritten = %d, want 3", got)
	}
	if got := r.Counters()["events_send"]; got != 7 {
		t.Errorf("events_send = %d, want 7", got)
	}
	if ev := r.Events(1); len(ev) != 0 {
		t.Errorf("untouched node has %d events", len(ev))
	}
}

func TestEventOutOfRangeIgnored(t *testing.T) {
	r := New(Config{Nodes: 1})
	r.Event(-1, 0, KindSend, 0, 0, 0)
	r.Event(5, 0, KindSend, 0, 0, 0)
	if got := r.Counters()["events_send"]; got != 0 {
		t.Errorf("out-of-range events counted: %d", got)
	}
}

func TestSampleTickThinning(t *testing.T) {
	r := New(Config{Nodes: 1, SampleEvery: 4})
	for tick := int64(0); tick < 10; tick++ {
		r.SampleTick(0, tick, int(tick), 0, 0, 3)
	}
	s := r.Samples(0)
	if len(s) != 3 { // ticks 0, 4, 8
		t.Fatalf("len(Samples) = %d, want 3", len(s))
	}
	for i, want := range []int64{0, 4, 8} {
		if s[i].Tick != want {
			t.Errorf("Samples[%d].Tick = %d, want %d", i, s[i].Tick, want)
		}
	}
}

func TestSampleCap(t *testing.T) {
	r := New(Config{Nodes: 1, MaxSamples: 3})
	for tick := int64(0); tick < 5; tick++ {
		r.Sample(0, tick, 0, 0, 0, 0)
	}
	if got := len(r.Samples(0)); got != 3 {
		t.Errorf("len(Samples) = %d, want 3 (capped)", got)
	}
	if got := r.Counters()["samples_discarded"]; got != 2 {
		t.Errorf("samples_discarded = %d, want 2", got)
	}
}

func TestWriteTextSchema(t *testing.T) {
	r := New(Config{Nodes: 2, EventCap: 8})
	r.SetMeta("driver", "lockstep")
	r.SetMeta("n", "2")
	r.Sample(0, 0, 1, 0, 2, 2)
	r.Sample(1, 0, 0, 0, 0, 2)
	r.Sample(0, 1, 3, 0, 0, 2)
	r.Event(0, 0, KindSend, 1, 0, 96)
	r.Event(1, 0, KindRecv, 0, 0, 0)
	r.Event(1, 0, KindInsert, 0, 1, 1)
	r.SampleNet(5, NetCounters{Datagrams: 10, Gossip: 8, Announces: 2, DropInboxFull: 1})

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `telemetry v1
meta driver lockstep
meta n 2
s 0 0 1 0 2 2
s 0 1 3 0 0 2
s 1 0 0 0 0 2
e 0 0 send 1 0 96
e 1 0 recv 0 0 0
e 1 0 insert 0 1 1
net 5 10 8 2 0 0 0 0 0 1 0 0
end
`
	if got := sb.String(); got != want {
		t.Errorf("WriteText output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteTextNilRecorder(t *testing.T) {
	var r *Recorder
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "telemetry v1\nend\n" {
		t.Errorf("nil recorder export = %q", got)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Event(0, 0, KindSend, 0, 0, 0)
	r.Sample(0, 0, 0, 0, 0, 0)
	r.SampleTick(0, 0, 0, 0, 0, 0)
	r.SampleNet(0, NetCounters{})
	r.SetMeta("k", "v")
	if r.Nodes() != 0 || r.Events(0) != nil || r.Samples(0) != nil ||
		r.NetSamples() != nil || r.Counters() != nil {
		t.Error("nil recorder accessors not empty")
	}
}

// TestDisabledPathZeroAlloc proves the tentpole invariant: with
// telemetry disabled (nil recorder) every instrumentation call site
// costs zero allocations.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		r.Event(3, 17, KindInsert, 1, 2, 1)
		r.Sample(3, 17, 4, 2, 1, 8)
		r.SampleTick(3, 17, 4, 2, 1, 8)
		r.SampleNet(17, NetCounters{})
	}); n != 0 {
		t.Errorf("disabled path allocates %.1f allocs/op, want 0", n)
	}
}

// TestEnabledSteadyStateZeroAlloc proves that once a node's ring is
// warm, recording events allocates nothing (overwrite-oldest, no
// growth).
func TestEnabledSteadyStateZeroAlloc(t *testing.T) {
	r := New(Config{Nodes: 4, EventCap: 64})
	r.Event(1, 0, KindSend, 0, 0, 0) // warm the ring
	if n := testing.AllocsPerRun(1000, func() {
		r.Event(1, 1, KindSend, 2, 0, 96)
	}); n != 0 {
		t.Errorf("steady-state Event allocates %.1f allocs/op, want 0", n)
	}
}

func BenchmarkEventDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Event(3, int64(i), KindInsert, 1, 2, 1)
	}
}

func BenchmarkEventEnabled(b *testing.B) {
	r := New(Config{Nodes: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Event(3, int64(i), KindInsert, 1, 2, 1)
	}
}

package token

import (
	"fmt"

	"repro/internal/gf"
)

// Block packing: Section 7 groups many d-bit tokens into larger
// "meta-tokens" so that fewer coding coefficients are needed. A block's
// wire format is a count field followed by count (UID, payload) records;
// blocks padded with zero records unpack to fewer tokens.

// CountBits is the size of the per-block token-count field.
const CountBits = 16

// BlockBits returns the wire size of a block holding cap tokens of
// payload size d.
func BlockBits(capTokens, d int) int {
	return CountBits + capTokens*(UIDBits+d)
}

// TokensPerBlock returns how many (UID+payload) records of payload size d
// fit in a block of at most maxBits, at least 0.
func TokensPerBlock(maxBits, d int) int {
	per := UIDBits + d
	m := (maxBits - CountBits) / per
	if m < 0 {
		m = 0
	}
	return m
}

// PackBlock serializes up to capTokens tokens (all of payload size d)
// into a BitVec of exactly BlockBits(capTokens, d) bits.
func PackBlock(ts []Token, capTokens, d int) (gf.BitVec, error) {
	if len(ts) > capTokens {
		return gf.BitVec{}, fmt.Errorf("token: %d tokens exceed block capacity %d", len(ts), capTokens)
	}
	if len(ts) >= 1<<CountBits {
		return gf.BitVec{}, fmt.Errorf("token: %d tokens exceed count field", len(ts))
	}
	out := gf.NewBitVec(BlockBits(capTokens, d))
	writeUint(out, 0, CountBits, uint64(len(ts)))
	off := CountBits
	for _, t := range ts {
		if t.D() != d {
			return gf.BitVec{}, fmt.Errorf("token: payload size %d in block of d=%d", t.D(), d)
		}
		writeUint(out, off, UIDBits, uint64(t.UID))
		off += UIDBits
		t.Payload.CopyInto(out, off)
		off += d
	}
	return out, nil
}

// UnpackBlock parses a block produced by PackBlock with the same
// capacity and payload size.
func UnpackBlock(v gf.BitVec, capTokens, d int) ([]Token, error) {
	want := BlockBits(capTokens, d)
	if v.Len() != want {
		return nil, fmt.Errorf("token: block is %d bits, want %d", v.Len(), want)
	}
	count := int(readUint(v, 0, CountBits))
	if count > capTokens {
		return nil, fmt.Errorf("token: block claims %d tokens, capacity %d", count, capTokens)
	}
	out := make([]Token, 0, count)
	off := CountBits
	for i := 0; i < count; i++ {
		uid := UID(readUint(v, off, UIDBits))
		off += UIDBits
		payload := v.Slice(off, off+d)
		off += d
		out = append(out, Token{UID: uid, Payload: payload})
	}
	return out, nil
}

func writeUint(v gf.BitVec, off, bits int, x uint64) {
	for i := 0; i < bits; i++ {
		v.Set(off+i, x>>uint(i)&1 == 1)
	}
}

func readUint(v gf.BitVec, off, bits int) uint64 {
	var x uint64
	for i := 0; i < bits; i++ {
		if v.Bit(off + i) {
			x |= 1 << uint(i)
		}
	}
	return x
}

package token

import (
	"fmt"
	"math/rand"
)

// Distribution assigns each node its initial tokens; index is node ID.
type Distribution [][]Token

// K returns the total number of distinct tokens across all nodes.
func (d Distribution) K() int {
	seen := make(map[UID]struct{})
	for _, ts := range d {
		for _, t := range ts {
			seen[t.UID] = struct{}{}
		}
	}
	return len(seen)
}

// All returns one copy of every distinct token, sorted by UID.
func (d Distribution) All() []Token {
	seen := make(map[UID]Token)
	for _, ts := range d {
		for _, t := range ts {
			seen[t.UID] = t
		}
	}
	out := make([]Token, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	SortByUID(out)
	return out
}

// OnePerNode gives node i the single token with UID i:0 — the canonical
// n-token dissemination instance (k = n).
func OnePerNode(n, d int, rng *rand.Rand) Distribution {
	out := make(Distribution, n)
	for i := range out {
		out[i] = []Token{Random(NewUID(i, 0), d, rng)}
	}
	return out
}

// Spread places k tokens on nodes chosen uniformly at random; a node may
// receive several or none. Token UIDs are owner:seq for the node that
// starts with them.
func Spread(n, k, d int, rng *rand.Rand) Distribution {
	out := make(Distribution, n)
	seq := make([]int, n)
	for j := 0; j < k; j++ {
		i := rng.Intn(n)
		out[i] = append(out[i], Random(NewUID(i, seq[i]), d, rng))
		seq[i]++
	}
	return out
}

// AtOne places all k tokens on node 0 (the gathering-free instance, where
// indexing is trivial).
func AtOne(n, k, d int, rng *rand.Rand) Distribution {
	out := make(Distribution, n)
	for j := 0; j < k; j++ {
		out[0] = append(out[0], Random(NewUID(0, j), d, rng))
	}
	return out
}

// NamedDistribution builds a distribution by policy name for the CLI
// tools. Supported: one-per-node, spread, at-one.
func NamedDistribution(name string, n, k, d int, rng *rand.Rand) (Distribution, error) {
	switch name {
	case "one-per-node":
		if k != n {
			return nil, fmt.Errorf("token: one-per-node requires k == n (got k=%d, n=%d)", k, n)
		}
		return OnePerNode(n, d, rng), nil
	case "spread":
		return Spread(n, k, d, rng), nil
	case "at-one":
		return AtOne(n, k, d, rng), nil
	default:
		return nil, fmt.Errorf("token: unknown distribution %q", name)
	}
}

// Package token defines the d-bit tokens of the k-token dissemination
// problem, their unique identifiers, initial distribution policies, and
// the block packing used when many small tokens are grouped into larger
// "meta-tokens" for coding (Section 7 of the paper).
package token

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/gf"
)

// UIDBits is the size of a token's unique identifier in bits. The paper
// takes UIDs to be O(log n) bits formed from the owner's node ID plus a
// sequence number; we use a fixed 64-bit layout (owner << 32 | seq).
const UIDBits = 64

// UID identifies a token network-wide.
type UID uint64

// NewUID builds a UID from the owning node's ID and a local sequence
// number, mirroring the paper's "concatenate a sequence number to the
// node ID" construction.
func NewUID(owner, seq int) UID {
	return UID(uint64(uint32(owner))<<32 | uint64(uint32(seq)))
}

// Owner returns the node ID encoded in the UID.
func (u UID) Owner() int { return int(uint64(u) >> 32) }

// Seq returns the sequence number encoded in the UID.
func (u UID) Seq() int { return int(uint32(uint64(u))) }

// String renders the UID as owner:seq.
func (u UID) String() string { return fmt.Sprintf("%d:%d", u.Owner(), u.Seq()) }

// Token is one unit of disseminated information: a UID plus a d-bit
// payload.
type Token struct {
	UID     UID
	Payload gf.BitVec
}

// D returns the payload size in bits.
func (t Token) D() int { return t.Payload.Len() }

// Bits returns the token's wire size: UID plus payload.
func (t Token) Bits() int { return UIDBits + t.Payload.Len() }

// Equal reports whether two tokens have the same UID and payload.
func (t Token) Equal(o Token) bool {
	return t.UID == o.UID && t.Payload.Equal(o.Payload)
}

// Random returns a token with the given UID and a uniformly random d-bit
// payload.
func Random(uid UID, d int, rng *rand.Rand) Token {
	return Token{UID: uid, Payload: gf.RandomBitVec(d, rng.Uint64)}
}

// RandomSet returns k tokens with distinct UIDs (owner i, seq 0 for
// i < k; wraparound uses seq) and random d-bit payloads.
func RandomSet(k, d int, rng *rand.Rand) []Token {
	out := make([]Token, k)
	for i := range out {
		out[i] = Random(NewUID(i%1000000, i/1000000), d, rng)
	}
	return out
}

// SortByUID sorts tokens in increasing UID order in place.
func SortByUID(ts []Token) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].UID < ts[j].UID })
}

// RandomUIDs realizes the Section 4.1 remark that O(log n)-bit unique
// IDs are without loss of generality for randomized algorithms: it
// draws n IDs uniformly from [1, 2^bits) and reports whether they are
// in fact distinct (which fails with probability about n^2 / 2^bits,
// the birthday bound — negligible for bits >= 4 lg n).
func RandomUIDs(n, bits int, rng *rand.Rand) ([]UID, bool) {
	if bits < 1 || bits > 63 {
		panic(fmt.Sprintf("token: UID bits %d out of range [1,63]", bits))
	}
	out := make([]UID, n)
	seen := make(map[UID]bool, n)
	distinct := true
	for i := range out {
		id := UID(rng.Int63n(1<<uint(bits)-1) + 1)
		if seen[id] {
			distinct = false
		}
		seen[id] = true
		out[i] = id
	}
	return out, distinct
}

// Set is a UID-keyed collection of tokens, the "knowledge" of a
// knowledge-based node. It maintains UID order incrementally because the
// forwarding algorithms read the sorted view every round.
type Set struct {
	byUID  map[UID]Token
	sorted []Token
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{byUID: make(map[UID]Token)} }

// Add inserts t, reporting whether it was new.
func (s *Set) Add(t Token) bool {
	if _, ok := s.byUID[t.UID]; ok {
		return false
	}
	s.byUID[t.UID] = t
	pos := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i].UID >= t.UID })
	s.sorted = append(s.sorted, Token{})
	copy(s.sorted[pos+1:], s.sorted[pos:])
	s.sorted[pos] = t
	return true
}

// Remove deletes the token with the given UID if present.
func (s *Set) Remove(uid UID) {
	if _, ok := s.byUID[uid]; !ok {
		return
	}
	delete(s.byUID, uid)
	pos := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i].UID >= uid })
	s.sorted = append(s.sorted[:pos], s.sorted[pos+1:]...)
}

// Has reports whether the set contains uid.
func (s *Set) Has(uid UID) bool {
	_, ok := s.byUID[uid]
	return ok
}

// Get returns the token with the given UID.
func (s *Set) Get(uid UID) (Token, bool) {
	t, ok := s.byUID[uid]
	return t, ok
}

// Len returns the number of tokens.
func (s *Set) Len() int { return len(s.byUID) }

// Tokens returns all tokens sorted by UID. The returned slice is the
// set's internal storage: callers must not modify it and must not hold
// it across Add or Remove calls.
func (s *Set) Tokens() []Token { return s.sorted }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet()
	c.sorted = append([]Token(nil), s.sorted...)
	for _, t := range s.sorted {
		c.byUID[t.UID] = t
	}
	return c
}

package token

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUIDLayout(t *testing.T) {
	tests := []struct {
		owner, seq int
	}{
		{0, 0}, {1, 0}, {0, 1}, {42, 7}, {1 << 20, 1 << 20},
	}
	for _, tt := range tests {
		u := NewUID(tt.owner, tt.seq)
		if u.Owner() != tt.owner || u.Seq() != tt.seq {
			t.Errorf("UID(%d,%d) round trips to (%d,%d)", tt.owner, tt.seq, u.Owner(), u.Seq())
		}
	}
}

func TestUIDOrderingByOwner(t *testing.T) {
	if NewUID(1, 99) >= NewUID(2, 0) {
		t.Error("UIDs must order primarily by owner")
	}
	if NewUID(1, 1) >= NewUID(1, 2) {
		t.Error("UIDs must order secondarily by seq")
	}
}

func TestTokenBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tok := Random(NewUID(3, 0), 100, rng)
	if tok.Bits() != UIDBits+100 {
		t.Errorf("Bits = %d, want %d", tok.Bits(), UIDBits+100)
	}
	if tok.D() != 100 {
		t.Errorf("D = %d, want 100", tok.D())
	}
}

func TestRandomSetDistinctUIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ts := RandomSet(500, 8, rng)
	seen := make(map[UID]bool)
	for _, tok := range ts {
		if seen[tok.UID] {
			t.Fatalf("duplicate UID %v", tok.UID)
		}
		seen[tok.UID] = true
	}
}

// TestRandomUIDsBirthdayBound checks the Section 4.1 WLOG remark: with
// bits >= 4 lg n, random IDs collide essentially never; with tiny ID
// spaces they collide essentially always.
func TestRandomUIDsBirthdayBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 64
	okCount := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		ids, distinct := RandomUIDs(n, 40, rng)
		if len(ids) != n {
			t.Fatal("wrong count")
		}
		if distinct {
			okCount++
		}
	}
	if okCount < trials-1 {
		t.Errorf("40-bit IDs collided in %d of %d trials", trials-okCount, trials)
	}
	collisions := 0
	for i := 0; i < trials; i++ {
		if _, distinct := RandomUIDs(n, 8, rng); !distinct {
			collisions++
		}
	}
	if collisions < trials*9/10 {
		t.Errorf("8-bit IDs for 64 nodes collided only %d of %d trials", collisions, trials)
	}
}

func TestRandomUIDsPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandomUIDs(4, 0, rand.New(rand.NewSource(1)))
}

func TestSetBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSet()
	a := Random(NewUID(1, 0), 8, rng)
	b := Random(NewUID(2, 0), 8, rng)
	if !s.Add(a) || !s.Add(b) {
		t.Fatal("fresh adds should report true")
	}
	if s.Add(a) {
		t.Error("duplicate add should report false")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Has(a.UID) {
		t.Error("Has(a) = false")
	}
	got, ok := s.Get(b.UID)
	if !ok || !got.Equal(b) {
		t.Error("Get(b) mismatch")
	}
	ts := s.Tokens()
	if len(ts) != 2 || ts[0].UID != a.UID || ts[1].UID != b.UID {
		t.Errorf("Tokens() not sorted by UID: %v", ts)
	}
	s.Remove(a.UID)
	if s.Has(a.UID) || s.Len() != 1 {
		t.Error("Remove failed")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSet()
	s.Add(Random(NewUID(1, 0), 4, rng))
	c := s.Clone()
	c.Add(Random(NewUID(2, 0), 4, rng))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("clone not independent")
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tests := []struct {
		name  string
		d     Distribution
		wantK int
	}{
		{"one-per-node", OnePerNode(10, 8, rng), 10},
		{"spread", Spread(10, 25, 8, rng), 25},
		{"at-one", AtOne(10, 7, 8, rng), 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if len(tt.d) != 10 {
				t.Fatalf("distribution over %d nodes, want 10", len(tt.d))
			}
			if got := tt.d.K(); got != tt.wantK {
				t.Errorf("K = %d, want %d", got, tt.wantK)
			}
			all := tt.d.All()
			if len(all) != tt.wantK {
				t.Errorf("All() returned %d tokens", len(all))
			}
			for i := 1; i < len(all); i++ {
				if all[i-1].UID >= all[i].UID {
					t.Error("All() not sorted")
				}
			}
		})
	}
}

func TestAtOnePlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := AtOne(5, 9, 8, rng)
	if len(d[0]) != 9 {
		t.Errorf("node 0 has %d tokens, want 9", len(d[0]))
	}
	for i := 1; i < 5; i++ {
		if len(d[i]) != 0 {
			t.Errorf("node %d has tokens", i)
		}
	}
}

func TestNamedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NamedDistribution("one-per-node", 5, 5, 8, rng); err != nil {
		t.Error(err)
	}
	if _, err := NamedDistribution("one-per-node", 5, 3, 8, rng); err == nil {
		t.Error("k != n should fail for one-per-node")
	}
	if _, err := NamedDistribution("bogus", 5, 5, 8, rng); err == nil {
		t.Error("unknown distribution should fail")
	}
}

// TestBlockRoundTrip property-tests PackBlock/UnpackBlock.
func TestBlockRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(64)
		capTokens := 1 + rng.Intn(8)
		count := rng.Intn(capTokens + 1)
		ts := RandomSet(count, d, rng)
		blk, err := PackBlock(ts, capTokens, d)
		if err != nil {
			return false
		}
		if blk.Len() != BlockBits(capTokens, d) {
			return false
		}
		got, err := UnpackBlock(blk, capTokens, d)
		if err != nil || len(got) != count {
			return false
		}
		for i := range got {
			if !got[i].Equal(ts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ts := RandomSet(3, 8, rng)
	if _, err := PackBlock(ts, 2, 8); err == nil {
		t.Error("overfull block accepted")
	}
	if _, err := PackBlock(ts[:1], 2, 16); err == nil {
		t.Error("payload size mismatch accepted")
	}
	blk, err := PackBlock(ts, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnpackBlock(blk, 4, 8); err == nil {
		t.Error("wrong capacity accepted on unpack")
	}
}

func TestTokensPerBlock(t *testing.T) {
	tests := []struct {
		maxBits, d, want int
	}{
		{1000, 8, (1000 - CountBits) / (UIDBits + 8)},
		{CountBits, 8, 0},
		{0, 8, 0},
	}
	for _, tt := range tests {
		if got := TokensPerBlock(tt.maxBits, tt.d); got != tt.want {
			t.Errorf("TokensPerBlock(%d,%d) = %d, want %d", tt.maxBits, tt.d, got, tt.want)
		}
	}
}

// Package trace records the round-by-round spreading dynamics of a run
// through the dynnet Observer hook: per-round rank distributions for
// coding nodes, knowledge-set sizes for forwarding nodes, message
// counts and innovation rates. It powers cmd/spread's visualization and
// the diagnostic assertions in tests (e.g. "rank growth is monotone",
// "most receptions are innovative early and wasted late" — the
// Section 5.2 phenomenon that motivates coding).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/dynnet"
	"repro/internal/graph"
	"repro/internal/rlnc"
	"repro/internal/token"
)

// Sample is one round's aggregate state.
type Sample struct {
	// Round is the engine's round number.
	Round int
	// Messages is the number of non-nil broadcasts this round.
	Messages int
	// Edges is the topology's edge count.
	Edges int
	// MinKnown, MeanKnown and MaxKnown summarize per-node knowledge:
	// span rank for coding nodes, token-set size for forwarding nodes.
	MinKnown  int
	MeanKnown float64
	MaxKnown  int
	// Complete counts nodes at full knowledge (rank k / all tokens),
	// when the target is known.
	Complete int
	// MeanDecodable is the mean number of individually recoverable
	// tokens per coding node (early decoding, ahead of full rank). It is
	// 0 for runs without coding nodes.
	MeanDecodable float64
}

// Recorder is a dynnet.Observer that snapshots knowledge per round.
type Recorder struct {
	// Target is the full-knowledge threshold (k); 0 disables Complete.
	Target  int
	samples []Sample
}

var _ dynnet.Observer = (*Recorder)(nil)

// NewRecorder returns a recorder with the given full-knowledge target.
func NewRecorder(target int) *Recorder { return &Recorder{Target: target} }

// ObserveRound implements dynnet.Observer.
func (r *Recorder) ObserveRound(round int, g *graph.Graph, msgs []dynnet.Message, nodes []dynnet.Node) {
	s := Sample{Round: round, Edges: g.M(), MinKnown: 1 << 30}
	total := 0
	counted := 0
	decodable := 0
	coders := 0
	for _, m := range msgs {
		if m != nil {
			s.Messages++
		}
	}
	for _, n := range nodes {
		known, ok := knowledge(n)
		if !ok {
			continue
		}
		counted++
		total += known
		if known < s.MinKnown {
			s.MinKnown = known
		}
		if known > s.MaxKnown {
			s.MaxKnown = known
		}
		if r.Target > 0 && known >= r.Target {
			s.Complete++
		}
		if bn, ok := n.(*rlnc.BroadcastNode); ok {
			coders++
			decodable += bn.Span().DecodableCount()
		}
	}
	if counted > 0 {
		s.MeanKnown = float64(total) / float64(counted)
	} else {
		s.MinKnown = 0
	}
	if coders > 0 {
		s.MeanDecodable = float64(decodable) / float64(coders)
	}
	r.samples = append(r.samples, s)
}

// knowledge extracts a node's knowledge measure when its type is known.
func knowledge(n dynnet.Node) (int, bool) {
	switch v := n.(type) {
	case *rlnc.BroadcastNode:
		return v.Span().Rank(), true
	case interface{ Set() *token.Set }:
		return v.Set().Len(), true
	default:
		return 0, false
	}
}

// Samples returns the recorded per-round samples.
func (r *Recorder) Samples() []Sample { return r.samples }

// CompletionRound returns the first round at which every observed node
// reached the target, or -1.
func (r *Recorder) CompletionRound() (int, bool) {
	for _, s := range r.samples {
		if r.Target > 0 && s.MinKnown >= r.Target {
			return s.Round, true
		}
	}
	return -1, false
}

// InnovationCurve returns, per round, the increase of the mean knowledge
// — the fraction of communication that carried new information. Its
// early-high late-low shape is the "wasted broadcasts" phenomenon of
// Section 5.2.
func (r *Recorder) InnovationCurve() []float64 {
	out := make([]float64, 0, len(r.samples))
	prev := 0.0
	for i, s := range r.samples {
		if i > 0 {
			out = append(out, s.MeanKnown-prev)
		}
		prev = s.MeanKnown
	}
	return out
}

// DecodableCurve returns, per round, the mean number of individually
// recoverable tokens per coding node. Its long flat start followed by a
// late surge is the dual of the innovation curve: random combinations
// carry information immediately but reveal individual tokens only once
// the span closes in on full rank.
func (r *Recorder) DecodableCurve() []float64 {
	out := make([]float64, len(r.samples))
	for i, s := range r.samples {
		out[i] = s.MeanDecodable
	}
	return out
}

// Sparkline renders values as a unicode bar chart for terminal output.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	// Downsample to width buckets by averaging.
	bucketed := make([]float64, 0, width)
	per := float64(len(values)) / float64(width)
	if per < 1 {
		per = 1
	}
	for i := 0; i < len(values); i = int(float64(i) + per) {
		hi := int(float64(i) + per)
		if hi > len(values) {
			hi = len(values)
		}
		if hi <= i {
			hi = i + 1
		}
		sum := 0.0
		for _, v := range values[i:hi] {
			sum += v
		}
		bucketed = append(bucketed, sum/float64(hi-i))
		if len(bucketed) == width {
			break
		}
	}
	lo, hi := bucketed[0], bucketed[0]
	for _, v := range bucketed {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range bucketed {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(bars)-1))
		}
		sb.WriteRune(bars[idx])
	}
	return sb.String()
}

// Report renders a human-readable summary of the recorded run.
func (r *Recorder) Report() string {
	if len(r.samples) == 0 {
		return "trace: no samples recorded\n"
	}
	var sb strings.Builder
	last := r.samples[len(r.samples)-1]
	fmt.Fprintf(&sb, "rounds observed: %d, final knowledge min/mean/max: %d/%.1f/%d\n",
		len(r.samples), last.MinKnown, last.MeanKnown, last.MaxKnown)
	if round, ok := r.CompletionRound(); ok {
		fmt.Fprintf(&sb, "all nodes complete at round %d\n", round)
	}
	means := make([]float64, len(r.samples))
	for i, s := range r.samples {
		means[i] = s.MeanKnown
	}
	fmt.Fprintf(&sb, "mean knowledge:  %s\n", Sparkline(means, 60))
	fmt.Fprintf(&sb, "innovation rate: %s\n", Sparkline(r.InnovationCurve(), 60))
	if last.MeanDecodable > 0 {
		fmt.Fprintf(&sb, "decodable toks:  %s\n", Sparkline(r.DecodableCurve(), 60))
	}
	return sb.String()
}

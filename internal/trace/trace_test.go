package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/dynnet"
	"repro/internal/gf"
	"repro/internal/rlnc"
)

// runRecorded executes a small coded broadcast with a recorder attached.
func runRecorded(t *testing.T, n int) *Recorder {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	nodes := make([]dynnet.Node, n)
	const d = 8
	schedule := rlnc.DefaultSchedule(n, n)
	for i := 0; i < n; i++ {
		nrng := rand.New(rand.NewSource(int64(i + 10)))
		nodes[i] = rlnc.NewBroadcastNode(n, d, schedule,
			[]rlnc.Coded{rlnc.Encode(i, n, gf.RandomBitVec(d, rng.Uint64))}, nrng)
	}
	rec := NewRecorder(n)
	e := dynnet.NewEngine(nodes, adversary.NewRandomConnected(n, n/2, 2),
		dynnet.Config{Observer: rec})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderSamplesEveryRound(t *testing.T) {
	rec := runRecorded(t, 12)
	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for i, s := range samples {
		if s.Round != i {
			t.Fatalf("sample %d has round %d", i, s.Round)
		}
		if s.MaxKnown < s.MinKnown {
			t.Fatalf("round %d: max < min", i)
		}
		if s.Edges < 11 {
			t.Fatalf("round %d: %d edges for a connected 12-node graph", i, s.Edges)
		}
	}
}

// TestKnowledgeMonotone asserts rank never decreases — the span is
// monotone, so the recorded mean must be too.
func TestKnowledgeMonotone(t *testing.T) {
	rec := runRecorded(t, 12)
	prev := 0.0
	for _, s := range rec.Samples() {
		if s.MeanKnown+1e-9 < prev {
			t.Fatalf("mean knowledge decreased: %f -> %f", prev, s.MeanKnown)
		}
		prev = s.MeanKnown
	}
}

func TestCompletionRound(t *testing.T) {
	rec := runRecorded(t, 12)
	round, ok := rec.CompletionRound()
	if !ok {
		t.Fatal("run never completed")
	}
	if round <= 0 || round > 4*(12+12)+16 {
		t.Errorf("completion round %d out of range", round)
	}
	last := rec.Samples()[len(rec.Samples())-1]
	if last.Complete != 12 {
		t.Errorf("final complete count %d, want 12", last.Complete)
	}
}

// TestInnovationDecays checks the Section 5.2 shape: the first half of
// the run carries at least as much innovation as the second half.
func TestInnovationDecays(t *testing.T) {
	rec := runRecorded(t, 16)
	curve := rec.InnovationCurve()
	if len(curve) < 4 {
		t.Skip("run too short")
	}
	half := len(curve) / 2
	first, second := 0.0, 0.0
	for i, v := range curve {
		if i < half {
			first += v
		} else {
			second += v
		}
	}
	if first < second {
		t.Errorf("innovation grew over time: first=%.2f second=%.2f", first, second)
	}
}

func TestSparkline(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		width  int
		want   int // rune count
	}{
		{"empty", nil, 10, 0},
		{"flat", []float64{1, 1, 1}, 3, 3},
		{"ramp", []float64{0, 1, 2, 3, 4, 5, 6, 7}, 8, 8},
		{"downsample", make([]float64, 100), 10, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Sparkline(tt.values, tt.width)
			if n := len([]rune(got)); n != tt.want {
				t.Errorf("rune count = %d, want %d (%q)", n, tt.want, got)
			}
		})
	}
	// A ramp must end on the tallest bar.
	ramp := Sparkline([]float64{0, 1, 2, 3}, 4)
	if !strings.HasSuffix(ramp, "█") {
		t.Errorf("ramp %q does not end at full height", ramp)
	}
}

func TestReportRenders(t *testing.T) {
	rec := runRecorded(t, 8)
	rep := rec.Report()
	for _, want := range []string{"rounds observed", "complete at round", "mean knowledge", "innovation rate"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if empty := NewRecorder(0).Report(); !strings.Contains(empty, "no samples") {
		t.Error("empty recorder report wrong")
	}
}

// runRecordedN is runRecorded with an explicit node count and fully
// pinned seeds, the fixture for the golden assertions below.
func runRecordedN(t *testing.T, n int) *Recorder {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	nodes := make([]dynnet.Node, n)
	const d = 8
	schedule := rlnc.DefaultSchedule(n, n)
	for i := 0; i < n; i++ {
		nrng := rand.New(rand.NewSource(int64(i + 10)))
		nodes[i] = rlnc.NewBroadcastNode(n, d, schedule,
			[]rlnc.Coded{rlnc.Encode(i, n, gf.RandomBitVec(d, rng.Uint64))}, nrng)
	}
	rec := NewRecorder(n)
	e := dynnet.NewEngine(nodes, adversary.NewRandomConnected(n, n/2, 2),
		dynnet.Config{Observer: rec})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestDecodableCurveGolden pins the round-curve output of a small fully
// deterministic run (n = k = 6, seeds fixed): every derived curve and
// its rendering must reproduce bit for bit. The early decodable values
// and the saturation at k are the Section 5.2 "late reveal" shape the
// curve exists to expose.
func TestDecodableCurveGolden(t *testing.T) {
	rec := runRecordedN(t, 6)
	samples := rec.Samples()
	if len(samples) != 64 {
		t.Fatalf("samples = %d, want the full 64-round schedule", len(samples))
	}
	if round, ok := rec.CompletionRound(); !ok || round != 7 {
		t.Errorf("completion round = %d (ok=%v), want 7", round, ok)
	}

	curve := rec.DecodableCurve()
	if len(curve) != len(samples) {
		t.Fatalf("curve length %d != samples %d", len(curve), len(samples))
	}
	wantHead := []float64{2.5, 2.5, 3, 13.0 / 3, 14.0 / 3, 16.0 / 3, 16.0 / 3, 6}
	for i, want := range wantHead {
		if math.Abs(curve[i]-want) > 1e-9 {
			t.Errorf("decodable[%d] = %.6f, want %.6f", i, curve[i], want)
		}
	}
	// After completion every node decodes all k = 6 tokens, forever.
	for i := 7; i < len(curve); i++ {
		if curve[i] != 6 {
			t.Fatalf("decodable[%d] = %.3f after completion, want 6", i, curve[i])
		}
	}
	// Decodability is monotone: a token recoverable from a span stays
	// recoverable under span growth.
	for i := 1; i < len(curve); i++ {
		if curve[i]+1e-9 < curve[i-1] {
			t.Fatalf("decodable curve decreased at round %d: %.3f -> %.3f", i, curve[i-1], curve[i])
		}
	}

	wantInno := []float64{0, 2.0 / 3, 4.0 / 3, 1.0 / 3, 2.0 / 3, 0, 0.5, 0}
	inno := rec.InnovationCurve()
	if len(inno) != len(samples)-1 {
		t.Fatalf("innovation length %d, want %d", len(inno), len(samples)-1)
	}
	for i, want := range wantInno {
		if math.Abs(inno[i]-want) > 1e-9 {
			t.Errorf("innovation[%d] = %.6f, want %.6f", i, inno[i], want)
		}
	}

	if got, want := Sparkline(curve, 20), "▁▅▇█████████████████"; got != want {
		t.Errorf("decodable sparkline %q, want %q", got, want)
	}
}

// Package udpnet is the real-socket implementation of the
// cluster.Transport contract: one UDP socket per node, so a cluster is
// N OS processes instead of N goroutines. It is the repo's first
// transport where "the network" is the kernel, not a channel — and the
// protocol code cannot tell: the gossip runtimes, the loss/delay/
// reorder middlewares and the wire codec all run unchanged above it.
//
// The shape follows the D7024E Kademlia reference (see SNIPPETS.md):
//
//   - One bound socket, one read loop. The loop never blocks: it
//     parses each datagram through the full canonical wire decoder,
//     dispatches gossip packets to the node's inbox with a
//     non-blocking send (a full inbox drops, exactly like a saturated
//     socket buffer), consumes announce control packets itself, and
//     counts every rejection by wire-sentinel kind (Stats).
//
//   - An address book maps node ids to *net.UDPAddr, learned from a
//     bootstrap peer via announce ping/pong and lookup exchanges over
//     the wire codec (wire.TypeAnnounce). Every announce carries the
//     sender's view of the book, so addresses spread epidemically —
//     the same gossip principle as the payload protocol.
//
//   - No network under locks. The book's RWMutex is held only to read
//     or write table entries; every WriteToUDP happens after release.
//     Request/response pairs (ping, lookup) are correlated by a
//     MsgID-keyed inflight map of waiter channels, so concurrent
//     bootstrap exchanges never collide.
//
// Buffer discipline matches the in-process transports' BufRing
// protocol: Send(true) consumes the caller's buffer (the kernel copied
// it), and the transport recycles it into an internal free list that
// stocks the read loop's inbox copies — the socket path allocates
// nothing in steady state either.
//
// # Quick start
//
// One process body — bind, bootstrap, gossip (cmd/node wraps exactly
// this behind flags, and scripts/localnet.sh launches n of them):
//
//	tr, err := udpnet.Dial(udpnet.Config{
//		ID: id, Nodes: n,
//		Addr:      "127.0.0.1:0",        // or a fixed host:port
//		Bootstrap: "127.0.0.1:17000",    // empty on the bootstrap node
//	})
//	if err != nil { ... }
//	defer tr.Close()
//	go tr.BootstrapLoop(ctx, 0)          // fill the address book
//	if err := tr.WaitReady(ctx); err != nil { ... }
//	metrics, err := cluster.RunSingle(ctx, cluster.SingleConfig{
//		ID: id, N: n, Seed: seed, Transport: tr,
//	}, toks)
//
// For in-process tests that want real sockets without the bootstrap
// dance, NewMesh binds n loopback transports with pre-populated books
// behind one cluster.Transport facade:
//
//	mesh, err := udpnet.NewMesh(n, 0)
//	res, err := cluster.Run(ctx, cluster.Config{N: n, Transport: mesh}, toks)
package udpnet

package udpnet

import (
	"errors"
	"math/rand"
	"net"
	"testing"

	"repro/internal/token"
	"repro/internal/wire"
)

// FuzzUDPIngress feeds raw bytes through the read-loop parser exactly
// as a hostile datagram would arrive: the transport must never panic,
// must classify every rejection under a wire sentinel, and must account
// each datagram in exactly one stats bucket. The transport is built
// without its read loop so the counter assertions are race-free; the
// source address points at the discard port, so announce replies go to
// a blackhole instead of looping back.
func FuzzUDPIngress(f *testing.F) {
	const maxPacket = 512 // small cap so the fuzzer can reach the oversize path
	tr, err := newTransport(Config{ID: 0, Nodes: 4, Addr: "127.0.0.1:0", MaxPacket: maxPacket, InboxBuffer: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(tr.Close)
	src := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}

	tok := token.RandomSet(1, 64, rand.New(rand.NewSource(1)))[0]
	good := wire.NewToken(1, 2, tok).Marshal()
	f.Add(good)
	f.Add(wire.NewHello(2, 0, wire.Hello{Peers: []uint32{0, 3}}).Marshal())
	f.Add(wire.NewAck(3, 1, wire.Ack{Watermark: 1}).Marshal())
	f.Add(wire.NewAnnounce(1, 0, wire.Announce{Op: wire.AnnouncePing, MsgID: 7}).Marshal())
	f.Add(wire.NewAnnounce(2, 0, wire.Announce{Op: wire.AnnouncePong, MsgID: 7, Addrs: []wire.AddrEntry{
		{Node: 3, Addr: "127.0.0.1:9003"},
	}}).Marshal())
	f.Add(wire.NewAnnounce(3, 0, wire.Announce{Op: wire.AnnounceLookup, MsgID: 9}).Marshal())
	f.Add([]byte{})
	f.Add(good[:5])
	f.Add(good[:wire.HeaderBytes])
	f.Add(append(append([]byte(nil), good...), 0x00))                 // trailing byte
	f.Add([]byte{0x7f, byte(wire.TypeToken), 0, 0, 0, 0, 0, 0, 0, 0}) // wrong version
	f.Add([]byte{wire.Version, 0xee, 0, 0, 0, 0, 0, 0, 0, 0})         // unknown type
	f.Add([]byte{wire.Version, byte(wire.TypeAnnounce), 0, 0, 0, 0, 0, 0, 0, 0,
		9, 1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0}) // announce with op 9
	f.Add(make([]byte, maxPacket+1)) // oversize

	var scratch wire.Packet
	f.Fuzz(func(t *testing.T, data []byte) {
		before := tr.Stats()
		err := tr.ingest(data, src, &scratch)
		after := tr.Stats()

		if err != nil &&
			!errors.Is(err, wire.ErrTruncated) && !errors.Is(err, wire.ErrVersion) &&
			!errors.Is(err, wire.ErrType) && !errors.Is(err, wire.ErrMalformed) {
			t.Fatalf("rejection not wrapped in a wire sentinel: %v", err)
		}

		if after.Datagrams != before.Datagrams+1 {
			t.Fatalf("Datagrams advanced by %d, want 1", after.Datagrams-before.Datagrams)
		}
		buckets := []int64{
			after.Gossip - before.Gossip,
			after.Announces - before.Announces,
			after.DropOversize - before.DropOversize,
			after.DropTruncated - before.DropTruncated,
			after.DropVersion - before.DropVersion,
			after.DropType - before.DropType,
			after.DropMalformed - before.DropMalformed,
			after.DropInboxFull - before.DropInboxFull,
		}
		var landed int64
		for _, d := range buckets {
			if d < 0 {
				t.Fatalf("a stats bucket went backwards: %+v -> %+v", before, after)
			}
			landed += d
		}
		if landed != 1 {
			t.Fatalf("datagram landed in %d buckets, want exactly 1: %+v -> %+v", landed, before, after)
		}
		// Rejected datagrams must land in a reject bucket and accepted ones
		// must not.
		rejected := after.DropOversize + after.DropTruncated + after.DropVersion + after.DropType + after.DropMalformed -
			(before.DropOversize + before.DropTruncated + before.DropVersion + before.DropType + before.DropMalformed)
		if (err != nil) != (rejected == 1) {
			t.Fatalf("error %v but reject delta %d", err, rejected)
		}

		// Drain so the bounded inbox doesn't turn every later gossip
		// packet into DropInboxFull.
		for {
			select {
			case b := <-tr.inbox:
				if _, err := wire.Unmarshal(b); err != nil {
					t.Fatalf("inbox surfaced a malformed packet: %v", err)
				}
			default:
				return
			}
		}
	})
}

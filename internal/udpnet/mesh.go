package udpnet

import (
	"fmt"
)

// Mesh is n loopback socket transports behind one cluster.Transport
// facade: Send(from, to, …) writes through node from's socket, Recv(id)
// is node id's inbox. Every address book is fully pre-populated at
// construction, so a Mesh drops straight into tests and in-process
// runs that expect ChanTransport semantics — except the packets now
// really traverse the kernel's UDP stack. The loss/delay/reorder
// middlewares wrap a Mesh exactly as they wrap a ChanTransport, which
// is how the hostile-network suites prove the fault-injection shim
// composes identically on both transports.
type Mesh struct {
	nodes []*Transport
}

// NewMesh binds n loopback sockets (ephemeral ports) with complete
// address books and running read loops.
func NewMesh(n, inboxBuffer int) (*Mesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("udpnet: mesh needs at least 1 node, got %d", n)
	}
	m := &Mesh{nodes: make([]*Transport, n)}
	for i := 0; i < n; i++ {
		tr, err := Dial(Config{ID: i, Nodes: n, Addr: "127.0.0.1:0", InboxBuffer: inboxBuffer})
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("udpnet: mesh node %d: %w", i, err)
		}
		m.nodes[i] = tr
	}
	// Cross-populate every book directly — the mesh is a test fixture;
	// bootstrap exchange is exercised by the multi-process runtime.
	for i, tr := range m.nodes {
		for j, peer := range m.nodes {
			if i != j {
				tr.learn(j, peer.advertiseAddr())
			}
		}
	}
	return m, nil
}

// Node returns node id's underlying socket transport.
func (m *Mesh) Node(id int) *Transport { return m.nodes[id] }

// Send implements cluster.Transport, routing through node from's
// socket.
func (m *Mesh) Send(from, to int, pkt []byte) bool {
	if from < 0 || from >= len(m.nodes) {
		return false
	}
	return m.nodes[from].Send(from, to, pkt)
}

// Recv implements cluster.Transport.
func (m *Mesh) Recv(id int) <-chan []byte {
	if id < 0 || id >= len(m.nodes) {
		return nil
	}
	return m.nodes[id].Recv(id)
}

// Close implements cluster.Transport, closing every socket.
func (m *Mesh) Close() {
	for _, tr := range m.nodes {
		if tr != nil {
			tr.Close()
		}
	}
}

// Stats sums the per-node datagram accounting.
func (m *Mesh) Stats() Stats {
	var out Stats
	for _, tr := range m.nodes {
		s := tr.Stats()
		out.Datagrams += s.Datagrams
		out.Gossip += s.Gossip
		out.Announces += s.Announces
		out.DropOversize += s.DropOversize
		out.DropTruncated += s.DropTruncated
		out.DropVersion += s.DropVersion
		out.DropType += s.DropType
		out.DropMalformed += s.DropMalformed
		out.DropInboxFull += s.DropInboxFull
		out.DropUnknownPeer += s.DropUnknownPeer
		out.WriteErrors += s.WriteErrors
	}
	return out
}

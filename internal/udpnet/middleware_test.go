package udpnet

// The fault-injection middlewares (loss, delay, reorder, partition)
// were written against in-process channel transports. These are the
// cluster package's two composed-stack suites ported to run above a
// loopback socket mesh, proving the shim composes identically on both
// transports — the hostile-network tests are transport-agnostic, as
// the ISSUE's layer diagram demands: middlewares above, sockets below.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// TestFullMiddlewareStackThenHealOverUDP composes all four middlewares
// over a UDP mesh split into halves holding disjoint tokens: while the
// cut is up no run completes; healed, dissemination finishes through
// loss+delay+reorder and real sockets at once.
func TestFullMiddlewareStackThenHealOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	const n, k, d = 12, 12, 64
	cut := func(from, to int) bool { return (from < n/2) != (to < n/2) }
	var partitioned atomic.Bool

	stack := func() cluster.Transport {
		mesh, err := NewMesh(n, 8*n*n)
		if err != nil {
			t.Fatal(err)
		}
		var tr cluster.Transport = mesh
		tr = cluster.WithPartition(tr, func(from, to int) bool {
			return partitioned.Load() && cut(from, to)
		})
		tr = cluster.WithReorder(tr, 0.3, 31)
		tr = cluster.WithDelay(tr, 50*time.Microsecond, time.Millisecond, 32)
		tr = cluster.WithLoss(tr, 0.15, 33)
		return tr
	}

	// Permanent partition under the full stack: must time out incomplete.
	partitioned.Store(true)
	res, err := cluster.Run(context.Background(),
		cluster.Config{N: n, Seed: 2, Transport: stack(), Timeout: 400 * time.Millisecond},
		testTokens(k, d, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("completed across a permanent partition")
	}

	// Heal mid-run: the same stack must then deliver everything.
	partitioned.Store(true)
	heal := time.AfterFunc(100*time.Millisecond, func() { partitioned.Store(false) })
	defer heal.Stop()
	res, err = cluster.Run(context.Background(),
		cluster.Config{N: n, Seed: 2, Transport: stack(), Timeout: 20 * time.Second},
		testTokens(k, d, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete over UDP after the partition healed under loss+delay+reorder")
	}
	if res.Dropped == 0 {
		t.Error("no drops recorded with loss 0.15 plus a temporary partition")
	}
}

// TestStackedMiddlewaresDeliverOverUDP checks the composed stack at
// the transport level above real sockets: a blocked partition stops
// every packet no matter what loss/delay/reorder do above it, and once
// unblocked, every packet the stack accepts arrives intact at its
// addressee, at most once per send. Unlike the channel-transport
// original, payloads are real wire packets — the socket read loop
// parses every datagram and would reject raw bytes.
func TestStackedMiddlewaresDeliverOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	const sends = 400
	stack := func(blocked *atomic.Bool) (cluster.Transport, *Mesh) {
		mesh, err := NewMesh(2, sends+1)
		if err != nil {
			t.Fatal(err)
		}
		var tr cluster.Transport = cluster.WithPartition(mesh, func(from, to int) bool { return blocked.Load() })
		tr = cluster.WithReorder(tr, 0.4, 41)
		tr = cluster.WithDelay(tr, 0, 2*time.Millisecond, 42)
		tr = cluster.WithLoss(tr, 0.25, 43)
		return tr, mesh
	}
	pkt := func(i int) []byte { return wire.NewHello(0, i, wire.Hello{}).Marshal() }

	// Blocked cut: nothing may reach the socket, however long we wait
	// for the delay/reorder layers to flush.
	var blocked atomic.Bool
	blocked.Store(true)
	cutTr, cutMesh := stack(&blocked)
	defer cutTr.Close()
	for i := 0; i < 50; i++ {
		cutTr.Send(0, 1, pkt(i))
	}
	time.Sleep(20 * time.Millisecond)
	select {
	case raw := <-cutMesh.Recv(1):
		p, _ := wire.Unmarshal(raw)
		t.Fatalf("packet %d delivered across a blocked partition", p.Env.Epoch)
	default:
	}

	// Healed cut: the stack delivers what it accepts, without
	// duplicates. (Loopback UDP does not duplicate; a kernel drop under
	// pressure is tolerated the same way the gossip protocol tolerates
	// it, by a small allowed shortfall.)
	var healed atomic.Bool
	tr, _ := stack(&healed)
	defer tr.Close()
	accepted := 0
	for i := 0; i < sends; i++ {
		if tr.Send(0, 1, pkt(i)) {
			accepted++
		}
	}
	deadline := time.After(5 * time.Second)
	counts := make(map[uint32]int)
	got := 0
	for got < accepted-1 { // reorder may park one packet forever
		select {
		case raw := <-tr.Recv(1):
			p, err := wire.Unmarshal(raw)
			if err != nil {
				t.Fatalf("socket surfaced a corrupt packet: %v", err)
			}
			counts[p.Env.Epoch]++
			got++
		case <-deadline:
			t.Fatalf("only %d of %d accepted packets arrived", got, accepted)
		}
	}
	frac := float64(accepted) / sends
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("accepted fraction %.2f at loss 0.25, want ~0.75", frac)
	}
	for e, c := range counts {
		if c > 1 {
			t.Fatalf("packet %d delivered %d times through the stack", e, c)
		}
	}
}

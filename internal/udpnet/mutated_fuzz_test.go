package udpnet

import (
	"errors"
	"math/rand"
	"net"
	"testing"

	"repro/internal/hostile"
	"repro/internal/token"
	"repro/internal/wire"
)

// FuzzMutatedIngress runs every hostile-packet mutation recipe over the
// fuzzer's bytes and feeds each result through the read-loop parser —
// the exact composition a node faces when a peer runs -mutate: the
// datagram layer must never panic, must classify every rejection under
// a wire sentinel, and must account each mutated datagram in exactly
// one stats bucket. Sharing hostile.Mutate (rather than re-rolling
// byte recipes here) means a new mutation op is fuzzed the day it is
// added: hostile.Ops is iterated, not hand-listed.
func FuzzMutatedIngress(f *testing.F) {
	const maxPacket = 512
	tr, err := newTransport(Config{ID: 0, Nodes: 4, Addr: "127.0.0.1:0", MaxPacket: maxPacket, InboxBuffer: 16})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(tr.Close)
	src := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}

	tok := token.RandomSet(1, 64, rand.New(rand.NewSource(1)))[0]
	good := wire.NewToken(1, 2, tok).Marshal()
	f.Add(good, int64(1))
	f.Add(wire.NewHello(2, 5, wire.Hello{Peers: []uint32{0, 3}}).Marshal(), int64(7))
	f.Add(wire.NewAck(3, 9, wire.Ack{Watermark: 1}).Marshal(), int64(42))
	f.Add(wire.NewAnnounce(1, 0, wire.Announce{Op: wire.AnnouncePing, MsgID: 7}).Marshal(), int64(3))
	f.Add([]byte{}, int64(0))
	f.Add(good[:wire.HeaderBytes], int64(11))
	f.Add(make([]byte, maxPacket+1), int64(5)) // oversize survives mutation too

	var scratch wire.Packet
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for _, op := range hostile.Ops() {
			// Mutate a fresh copy: OpTrunc/OpFlip work in place and the
			// fuzz engine owns data.
			mutated := hostile.Mutate(op, append([]byte(nil), data...), rng)

			before := tr.Stats()
			err := tr.ingest(mutated, src, &scratch)
			after := tr.Stats()

			if err != nil &&
				!errors.Is(err, wire.ErrTruncated) && !errors.Is(err, wire.ErrVersion) &&
				!errors.Is(err, wire.ErrType) && !errors.Is(err, wire.ErrMalformed) {
				t.Fatalf("op %v: rejection not wrapped in a wire sentinel: %v", op, err)
			}

			if after.Datagrams != before.Datagrams+1 {
				t.Fatalf("op %v: Datagrams advanced by %d, want 1", op, after.Datagrams-before.Datagrams)
			}
			buckets := []int64{
				after.Gossip - before.Gossip,
				after.Announces - before.Announces,
				after.DropOversize - before.DropOversize,
				after.DropTruncated - before.DropTruncated,
				after.DropVersion - before.DropVersion,
				after.DropType - before.DropType,
				after.DropMalformed - before.DropMalformed,
				after.DropInboxFull - before.DropInboxFull,
			}
			var landed int64
			for _, d := range buckets {
				if d < 0 {
					t.Fatalf("op %v: a stats bucket went backwards: %+v -> %+v", op, before, after)
				}
				landed += d
			}
			if landed != 1 {
				t.Fatalf("op %v: datagram landed in %d buckets, want exactly 1", op, landed)
			}
			rejected := after.DropOversize + after.DropTruncated + after.DropVersion + after.DropType + after.DropMalformed -
				(before.DropOversize + before.DropTruncated + before.DropVersion + before.DropType + before.DropMalformed)
			if (err != nil) != (rejected == 1) {
				t.Fatalf("op %v: error %v but reject delta %d", op, err, rejected)
			}
			// A flipped packet must never be accepted: the recipe
			// guarantees rejection precisely because the wire format has
			// no checksum to catch payload flips on its own.
			if op == hostile.OpFlip && len(mutated) > 0 && err == nil {
				t.Fatalf("bit-flipped packet accepted: % x", mutated)
			}

			// Drain so the bounded inbox doesn't turn every later gossip
			// packet into DropInboxFull.
			for {
				select {
				case b := <-tr.inbox:
					if _, err := wire.Unmarshal(b); err != nil {
						t.Fatalf("inbox surfaced a malformed packet: %v", err)
					}
					continue
				default:
				}
				break
			}
		}
	})
}

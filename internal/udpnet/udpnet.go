package udpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// DefaultMaxPacket is the largest datagram accepted or sent: the UDP
// payload ceiling over IPv4. Oversized receptions are dropped and
// counted, never truncated into a half-parsed packet.
const DefaultMaxPacket = 65507

// DefaultInboxBuffer is the default gossip inbox depth. It mirrors the
// role of the kernel socket buffer: bursts beyond it are dropped and
// counted, and the gossip protocol heals the loss.
const DefaultInboxBuffer = 1024

// Config parameterizes one node's socket transport.
type Config struct {
	// ID is this node's id in [0, Nodes).
	ID int
	// Nodes is the cluster size — the address book's id space.
	Nodes int
	// Addr is the UDP bind address ("127.0.0.1:9000", ":0", …). The
	// advertised address is the bound address with an unspecified host
	// rewritten to the loopback, so ":0" works for single-machine
	// clusters out of the box.
	Addr string
	// Bootstrap is the address of any already-running peer, used by
	// BootstrapLoop to seed the address book. Empty for the first node.
	Bootstrap string
	// InboxBuffer is the gossip inbox depth (default
	// DefaultInboxBuffer).
	InboxBuffer int
	// MaxPacket caps accepted datagram size (default DefaultMaxPacket).
	MaxPacket int
	// ReadBuffer requests SO_RCVBUF bytes on the socket (default 1 MiB;
	// best-effort, the kernel may clamp it).
	ReadBuffer int
}

func (c Config) inboxBuffer() int {
	if c.InboxBuffer > 0 {
		return c.InboxBuffer
	}
	return DefaultInboxBuffer
}

func (c Config) maxPacket() int {
	if c.MaxPacket > 0 {
		return c.MaxPacket
	}
	return DefaultMaxPacket
}

func (c Config) readBuffer() int {
	if c.ReadBuffer > 0 {
		return c.ReadBuffer
	}
	return 1 << 20
}

// Stats is a snapshot of the transport's datagram accounting. Every
// datagram handed to the ingress parser lands in exactly one bucket:
// dispatched to the inbox, consumed as an announce, or dropped under
// exactly one of the drop counters — so the columns always reconcile
// with Datagrams.
type Stats struct {
	// Datagrams counts every datagram handed to the ingress parser.
	Datagrams int64
	// Gossip counts datagrams dispatched to the node's inbox.
	Gossip int64
	// Announces counts announce control packets consumed by the
	// transport (including ones whose entries were all ignored).
	Announces int64
	// DropOversize counts datagrams above MaxPacket.
	DropOversize int64
	// DropTruncated / DropVersion / DropType / DropMalformed count
	// wire-decoder rejections by sentinel kind (errors.Is on
	// wire.ErrTruncated / ErrVersion / ErrType / ErrMalformed).
	DropTruncated int64
	DropVersion   int64
	DropType      int64
	DropMalformed int64
	// DropInboxFull counts parsed gossip packets dropped because the
	// inbox was full — backpressure loss, not rejection.
	DropInboxFull int64
	// DropUnknownPeer counts Sends to ids with no address book entry.
	DropUnknownPeer int64
	// WriteErrors counts failed socket writes.
	WriteErrors int64
}

// stats is the live atomic counterpart of Stats.
type stats struct {
	datagrams       atomic.Int64
	gossip          atomic.Int64
	announces       atomic.Int64
	dropOversize    atomic.Int64
	dropTruncated   atomic.Int64
	dropVersion     atomic.Int64
	dropType        atomic.Int64
	dropMalformed   atomic.Int64
	dropInboxFull   atomic.Int64
	dropUnknownPeer atomic.Int64
	writeErrors     atomic.Int64
}

func (s *stats) snapshot() Stats {
	return Stats{
		Datagrams:       s.datagrams.Load(),
		Gossip:          s.gossip.Load(),
		Announces:       s.announces.Load(),
		DropOversize:    s.dropOversize.Load(),
		DropTruncated:   s.dropTruncated.Load(),
		DropVersion:     s.dropVersion.Load(),
		DropType:        s.dropType.Load(),
		DropMalformed:   s.dropMalformed.Load(),
		DropInboxFull:   s.dropInboxFull.Load(),
		DropUnknownPeer: s.dropUnknownPeer.Load(),
		WriteErrors:     s.writeErrors.Load(),
	}
}

// Transport is one node's socket transport. It implements
// cluster.Transport (and cluster.AddressedTransport via Known), so the
// gossip runtimes and the fault-injection middlewares compose over it
// exactly as over a ChanTransport.
type Transport struct {
	cfg  Config
	conn *net.UDPConn

	inbox chan []byte
	st    stats

	// mu guards the address book only. The no-network-under-locks rule:
	// every conn write happens after mu is released; helpers that need
	// book contents for a packet copy them out under RLock first.
	mu     sync.RWMutex
	book   []*net.UDPAddr
	nKnown int

	// inflight correlates request MsgIDs with response waiters. Each
	// waiter channel is buffered (1) so the read loop never blocks
	// delivering a response.
	ifMu     sync.Mutex
	inflight map[uint64]chan wire.Announce
	msgID    atomic.Uint64

	// free recycles consumed send buffers into inbox copies (see the
	// package comment's buffer discipline).
	free chan []byte

	// bookWire caches the marshaled full-book response (bwMu-guarded),
	// stamped with the bookVer it was built from; learn bumps bookVer
	// to invalidate. Rebuilding the response per ping — an O(n)
	// snapshot, n address strings and a fresh marshal — was the 1k-run
	// collapse mode: the bootstrap node answers every joiner, its
	// per-pong cost exceeded its fair 1/n share of one core, its
	// receive queue overflowed, and joiners that never got a pong kept
	// pinging. With the cache a response is a copy plus an 8-byte
	// msgID patch. bookVer is atomic, not bwMu-guarded, so learn
	// (which holds mu) never takes bwMu — no lock-order cycle with
	// sendBook's bwMu→mu.RLock path.
	bwMu        sync.Mutex
	bookWire    []byte
	bookWireVer uint64
	bookVer     atomic.Uint64

	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Dial binds the node's socket and starts the read loop.
func Dial(cfg Config) (*Transport, error) {
	t, err := newTransport(cfg)
	if err != nil {
		return nil, err
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// newTransport binds the socket and builds the transport without
// starting the read loop — the fuzz harness drives ingest directly so
// its counter assertions are race-free.
func newTransport(cfg Config) (*Transport, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("udpnet: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return nil, fmt.Errorf("udpnet: node id %d outside [0, %d)", cfg.ID, cfg.Nodes)
	}
	bind, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: bind address %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %q: %w", cfg.Addr, err)
	}
	_ = conn.SetReadBuffer(cfg.readBuffer()) // best-effort; kernel may clamp

	t := &Transport{
		cfg:      cfg,
		conn:     conn,
		inbox:    make(chan []byte, cfg.inboxBuffer()),
		book:     make([]*net.UDPAddr, cfg.Nodes),
		inflight: make(map[uint64]chan wire.Announce),
		free:     make(chan []byte, 256),
	}
	t.learn(cfg.ID, t.advertiseAddr())
	return t, nil
}

// advertiseAddr is the address peers should send to: the bound
// address, with an unspecified host rewritten to the loopback.
func (t *Transport) advertiseAddr() *net.UDPAddr {
	la := t.conn.LocalAddr().(*net.UDPAddr)
	out := &net.UDPAddr{IP: la.IP, Port: la.Port, Zone: la.Zone}
	if la.IP == nil || la.IP.IsUnspecified() {
		out.IP = net.IPv4(127, 0, 0, 1)
	}
	return out
}

// LocalAddr returns the advertised host:port.
func (t *Transport) LocalAddr() string { return t.advertiseAddr().String() }

// ID returns the node id this transport was dialed for.
func (t *Transport) ID() int { return t.cfg.ID }

// Stats returns a snapshot of the datagram accounting.
func (t *Transport) Stats() Stats { return t.st.snapshot() }

// learn records an address for id, ignoring out-of-range ids and nil
// addresses. First write wins until the address actually changes
// (a restarted peer on a new port overwrites).
func (t *Transport) learn(id int, addr *net.UDPAddr) {
	if addr == nil || id < 0 || id >= t.cfg.Nodes {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.book[id]
	if old != nil && old.Port == addr.Port && old.Zone == addr.Zone && old.IP.Equal(addr.IP) {
		return // unchanged: don't invalidate the cached book response
	}
	if old == nil {
		t.nKnown++
	}
	t.book[id] = addr
	t.bookVer.Add(1)
}

// learnEntry parses and records one announce address entry. Known ids
// are skipped before the resolve: book entries don't change while a
// run is up (the datagram-source path in handleAnnounce refreshes a
// restarted peer), and re-resolving every entry of every full-book
// pong was a measured CPU storm during 1k-process bootstrap.
func (t *Transport) learnEntry(e wire.AddrEntry) {
	if e.Addr == "" || t.Known(int(e.Node)) {
		return
	}
	ua, err := net.ResolveUDPAddr("udp", e.Addr)
	if err != nil {
		return // a malformed entry poisons nothing but itself
	}
	t.learn(int(e.Node), ua)
}

// addrOf returns id's address, or nil when unknown.
func (t *Transport) addrOf(id int) *net.UDPAddr {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.book) {
		return nil
	}
	return t.book[id]
}

// Known implements cluster.AddressedTransport: it reports whether the
// book can route to id.
func (t *Transport) Known(id int) bool { return t.addrOf(id) != nil }

// BookSize returns the number of known peers (including self).
func (t *Transport) BookSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nKnown
}

// Complete reports whether every node id has a book entry.
func (t *Transport) Complete() bool { return t.BookSize() == t.cfg.Nodes }

// Send implements cluster.Transport: a non-blocking, fire-and-forget
// datagram write. False means dropped — unknown peer, closed
// transport, oversized packet or kernel refusal — with UDP semantics
// either way: a true return is no delivery guarantee.
func (t *Transport) Send(from, to int, pkt []byte) bool {
	if t.closed.Load() || len(pkt) > t.cfg.maxPacket() {
		return false
	}
	addr := t.addrOf(to)
	if addr == nil {
		t.st.dropUnknownPeer.Add(1)
		return false
	}
	if _, err := t.conn.WriteToUDP(pkt, addr); err != nil {
		t.st.writeErrors.Add(1)
		return false
	}
	// The kernel copied the payload; recycle the buffer into the read
	// loop's free list (ownership transferred to us by the true return).
	select {
	case t.free <- pkt[:0]:
	default:
	}
	return true
}

// Recv implements cluster.Transport. Only this node's own inbox
// exists; any other id yields a nil (forever-blocking) channel, the
// same bounds discipline as ChanTransport.
func (t *Transport) Recv(id int) <-chan []byte {
	if id != t.cfg.ID {
		return nil
	}
	return t.inbox
}

// Close stops the read loop and closes the socket. Idempotent.
func (t *Transport) Close() {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		t.conn.Close()
		t.wg.Wait()
	})
}

// readLoop is the transport's single receive goroutine: read a
// datagram, ingest it, repeat. It exits when the socket closes.
func (t *Transport) readLoop() {
	defer t.wg.Done()
	// One spare byte detects datagrams above MaxPacket: the kernel
	// fills maxPacket+1 bytes only if the payload exceeded the cap.
	buf := make([]byte, t.cfg.maxPacket()+1)
	var scratch wire.Packet
	for {
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			if t.closed.Load() {
				return
			}
			// Transient error (e.g. ECONNREFUSED surfaced from a prior
			// write on some platforms): keep serving.
			continue
		}
		_ = t.ingest(buf[:n], src, &scratch)
	}
}

// ingest accounts and dispatches one datagram — the fuzzed surface.
// Returns nil for accepted datagrams (dispatched, consumed, or dropped
// as inbox backpressure) and a wire-sentinel-wrapped error for every
// rejection; each call increments Datagrams once and at most one drop
// counter.
func (t *Transport) ingest(data []byte, src *net.UDPAddr, scratch *wire.Packet) error {
	t.st.datagrams.Add(1)
	if len(data) > t.cfg.maxPacket() {
		t.st.dropOversize.Add(1)
		return fmt.Errorf("%w: %d-byte datagram exceeds %d-byte cap", wire.ErrMalformed, len(data), t.cfg.maxPacket())
	}
	if err := wire.UnmarshalInto(scratch, data); err != nil {
		switch {
		case errors.Is(err, wire.ErrVersion):
			t.st.dropVersion.Add(1)
		case errors.Is(err, wire.ErrType):
			t.st.dropType.Add(1)
		case errors.Is(err, wire.ErrTruncated):
			t.st.dropTruncated.Add(1)
		default:
			t.st.dropMalformed.Add(1)
		}
		return err
	}
	if scratch.Env.Type == wire.TypeAnnounce {
		t.st.announces.Add(1)
		t.handleAnnounce(scratch, src)
		return nil
	}
	// Gossip payload: copy out of the read buffer (recycling a consumed
	// send buffer when one is free) and dispatch without blocking.
	var cp []byte
	select {
	case cp = <-t.free:
	default:
	}
	cp = append(cp[:0], data...)
	select {
	case t.inbox <- cp:
		t.st.gossip.Add(1)
	default:
		t.st.dropInboxFull.Add(1)
	}
	return nil
}

// handleAnnounce consumes one address-book control packet. Every
// announce teaches us the sender's socket address (the datagram source
// is ground truth) plus whatever book entries it carried; requests
// (ping, lookup) are answered with our full book, responses (pong,
// lookup-ok) complete their MsgID's inflight waiter.
func (t *Transport) handleAnnounce(p *wire.Packet, src *net.UDPAddr) {
	a := p.Announce
	t.learn(int(p.Env.Sender), src)
	for _, e := range a.Addrs {
		t.learnEntry(e)
	}
	switch a.Op {
	case wire.AnnouncePing:
		t.sendBook(src, wire.AnnouncePong, a.MsgID)
	case wire.AnnounceLookup:
		t.sendBook(src, wire.AnnounceLookupOK, a.MsgID)
	case wire.AnnouncePong, wire.AnnounceLookupOK:
		t.ifMu.Lock()
		ch := t.inflight[a.MsgID]
		delete(t.inflight, a.MsgID)
		t.ifMu.Unlock()
		if ch != nil {
			// Deep-copy: the scratch packet (and its Addrs backing array)
			// is reused by the next decode.
			cp := wire.Announce{Op: a.Op, MsgID: a.MsgID, Addrs: append([]wire.AddrEntry(nil), a.Addrs...)}
			ch <- cp // buffered; never blocks
		}
	}
}

// appendBook snapshots the address book as announce entries under
// RLock. The caller marshals and writes after release.
func (t *Transport) appendBook(dst []wire.AddrEntry) []wire.AddrEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, addr := range t.book {
		if addr != nil {
			dst = append(dst, wire.AddrEntry{Node: uint32(id), Addr: addr.String()})
		}
	}
	return dst
}

// sendBook writes one announce carrying the full book to dst, from a
// cached marshal when the book hasn't changed. Only the op byte and
// msgID differ between responses, and they live at fixed offsets right
// after the envelope, so a response is one copy and a 9-byte patch.
// Lock ordering: bwMu, then the book's RLock inside appendBook; the
// write happens after both are released.
func (t *Transport) sendBook(dst *net.UDPAddr, op wire.AnnounceOp, msgID uint64) {
	t.bwMu.Lock()
	if ver := t.bookVer.Load(); t.bookWire == nil || ver != t.bookWireVer {
		a := wire.Announce{Op: op, MsgID: msgID, Addrs: t.appendBook(nil)}
		t.bookWire = wire.NewAnnounce(t.cfg.ID, 0, a).Marshal()
		t.bookWireVer = ver
	}
	buf := append([]byte(nil), t.bookWire...)
	t.bwMu.Unlock()
	if len(buf) > t.cfg.maxPacket() {
		// A book too large for one datagram cannot be announced whole;
		// peers still converge through the per-announce sender learning,
		// but flag the write as failed for visibility.
		t.st.writeErrors.Add(1)
		return
	}
	buf[wire.HeaderBytes] = byte(op)
	binary.LittleEndian.PutUint64(buf[wire.HeaderBytes+1:], msgID)
	if _, err := t.conn.WriteToUDP(buf, dst); err != nil {
		t.st.writeErrors.Add(1)
	}
}

// sendSelf writes one announce carrying only our own address — the
// request shape. Requests used to carry the sender's whole book "for
// epidemic spread", which at n=1024 meant every bootstrap round moved
// O(n) entries per node per direction and the marshal+parse storm
// starved one-core runs; the responder learns the sender from the
// datagram source anyway, so requests only need to exist.
func (t *Transport) sendSelf(dst *net.UDPAddr, op wire.AnnounceOp, msgID uint64) {
	self := t.addrOf(t.cfg.ID)
	var addrs []wire.AddrEntry
	if self != nil {
		addrs = []wire.AddrEntry{{Node: uint32(t.cfg.ID), Addr: self.String()}}
	}
	t.sendAnnounce(dst, op, msgID, addrs)
}

func (t *Transport) sendAnnounce(dst *net.UDPAddr, op wire.AnnounceOp, msgID uint64, addrs []wire.AddrEntry) {
	a := wire.Announce{Op: op, MsgID: msgID, Addrs: addrs}
	pkt := wire.NewAnnounce(t.cfg.ID, 0, a)
	if pkt.WireBytes() > t.cfg.maxPacket() {
		t.st.writeErrors.Add(1)
		return
	}
	if _, err := t.conn.WriteToUDP(pkt.Marshal(), dst); err != nil {
		t.st.writeErrors.Add(1)
	}
}

// request sends one announce request to dst and waits for the
// correlated response (or ctx).
func (t *Transport) request(ctx context.Context, dst *net.UDPAddr, op wire.AnnounceOp) error {
	id := t.msgID.Add(1)
	ch := make(chan wire.Announce, 1)
	t.ifMu.Lock()
	t.inflight[id] = ch
	t.ifMu.Unlock()
	defer func() {
		t.ifMu.Lock()
		delete(t.inflight, id)
		t.ifMu.Unlock()
	}()
	t.sendSelf(dst, op, id)
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ch:
		// handleAnnounce already folded the response's entries into the
		// book before completing the waiter.
		return nil
	}
}

// PingAddr announces our book to addr and waits for the pong — the
// bootstrap handshake. The pong carries the peer's whole book, which
// handleAnnounce folds in before this returns.
func (t *Transport) PingAddr(ctx context.Context, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpnet: ping address %q: %w", addr, err)
	}
	return t.request(ctx, ua, wire.AnnouncePing)
}

// Lookup asks the known peer via for its address book — the epidemic
// exchange step that completes books without funneling everything
// through the bootstrap node.
func (t *Transport) Lookup(ctx context.Context, via int) error {
	addr := t.addrOf(via)
	if addr == nil {
		return fmt.Errorf("udpnet: lookup via unknown peer %d", via)
	}
	return t.request(ctx, addr, wire.AnnounceLookup)
}

// BootstrapLoop fills the address book: ping the bootstrap peer, then
// exchange books with known peers round-robin, pausing `every` between
// rounds, until the book is complete or ctx ends. Run it in its own
// goroutine; WaitReady observes the book filling. The loop also serves
// as a liveness heartbeat for late joiners: a complete book ends it,
// and peers that learned us from the pings answer their own laggards.
func (t *Transport) BootstrapLoop(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	// Deterministic phase jitter: spread the nodes' rounds across one
	// period so a large cluster's first pings don't land on the
	// bootstrap peer as one synchronized burst.
	if t.cfg.Nodes > 1 {
		jitter := every * time.Duration(t.cfg.ID%64) / time.Duration(min(64, t.cfg.Nodes))
		select {
		case <-ctx.Done():
			return
		case <-time.After(jitter):
		}
	}
	cursor, round := 0, 0
	for !t.Complete() {
		if ctx.Err() != nil || t.closed.Load() {
			return
		}
		rctx, cancel := context.WithTimeout(ctx, every)
		// Ping the bootstrap peer until its pong has taught us at least
		// one address, then only as an occasional liveness retry: n-1
		// joiners re-pinging one peer every round — each answered with a
		// full-book pong — was the bootstrap-node hot spot at n=1024.
		if t.cfg.Bootstrap != "" && (t.BookSize() <= 1 || round%8 == 0) {
			_ = t.PingAddr(rctx, t.cfg.Bootstrap) // lost pings retry next round
		}
		round++
		// One book exchange with the next known non-self peer.
		for probe := 0; probe < t.cfg.Nodes; probe++ {
			id := cursor % t.cfg.Nodes
			cursor++
			if id != t.cfg.ID && t.Known(id) {
				_ = t.Lookup(rctx, id)
				break
			}
		}
		cancel()
		select {
		case <-ctx.Done():
			return
		case <-time.After(every):
		}
	}
}

// WaitReady blocks until the address book is complete or ctx ends.
// The poll period is coarse on purpose and coarser still for big
// clusters: hundreds of processes polling a mutex at 10ms each was a
// measurable wakeup storm on one core.
func (t *Transport) WaitReady(ctx context.Context) error {
	period := 50 * time.Millisecond
	if t.cfg.Nodes > 256 {
		period = 250 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		if t.Complete() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("udpnet: address book has %d/%d entries: %w", t.BookSize(), t.cfg.Nodes, ctx.Err())
		case <-tick.C:
		}
	}
}

package udpnet

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/stream"
	"repro/internal/token"
	"repro/internal/wire"
)

// The socket transport must be a drop-in for the in-process ones.
var (
	_ cluster.Transport          = (*Transport)(nil)
	_ cluster.AddressedTransport = (*Transport)(nil)
	_ cluster.Transport          = (*Mesh)(nil)
)

func testTokens(k, d int, seed int64) []token.Token {
	return token.RandomSet(k, d, rand.New(rand.NewSource(seed)))
}

func dialT(t *testing.T, cfg Config) *Transport {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	tr, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

// TestSendRecvRoundTrip pushes one wire packet socket-to-socket and
// decodes it intact on the other side.
func TestSendRecvRoundTrip(t *testing.T) {
	a := dialT(t, Config{ID: 0, Nodes: 2})
	b := dialT(t, Config{ID: 1, Nodes: 2})
	a.learn(1, b.advertiseAddr())

	want := wire.NewToken(0, 7, testTokens(1, 64, 1)[0])
	if !a.Send(0, 1, want.Marshal()) {
		t.Fatal("send to known peer refused")
	}
	select {
	case raw := <-b.Recv(1):
		got, err := wire.Unmarshal(raw)
		if err != nil {
			t.Fatalf("received packet rejected: %v", err)
		}
		if got.Env != want.Env || !got.Token.Equal(want.Token) {
			t.Fatalf("packet changed in flight: %+v != %+v", got.Env, want.Env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
	if s := b.Stats(); s.Gossip != 1 || s.Datagrams != 1 {
		t.Errorf("receiver stats %+v, want 1 gossip / 1 datagram", s)
	}
}

// TestSendBounds pins the drop behavior for unroutable sends: unknown
// peers, out-of-range ids and oversized packets all return false
// without touching the socket.
func TestSendBounds(t *testing.T) {
	a := dialT(t, Config{ID: 0, Nodes: 3, MaxPacket: 256})
	if a.Send(0, 1, []byte{1}) {
		t.Error("send to unknown peer accepted")
	}
	if a.Send(0, -1, []byte{1}) || a.Send(0, 3, []byte{1}) {
		t.Error("send to out-of-range id accepted")
	}
	if got := a.Stats().DropUnknownPeer; got != 3 {
		t.Errorf("DropUnknownPeer = %d, want 3", got)
	}
	if a.Send(0, 0, make([]byte, 257)) {
		t.Error("oversized send accepted")
	}
	a.Close()
	if a.Send(0, 0, []byte{1}) {
		t.Error("send after Close accepted")
	}
}

// TestRecvOnlyOwnInbox pins the Recv contract: only this node's id has
// an inbox; every other id gets a nil (forever-blocking) channel.
func TestRecvOnlyOwnInbox(t *testing.T) {
	a := dialT(t, Config{ID: 1, Nodes: 3})
	if a.Recv(1) == nil {
		t.Fatal("own inbox is nil")
	}
	for _, id := range []int{0, 2, -1, 7} {
		if a.Recv(id) != nil {
			t.Errorf("Recv(%d) returned a live channel on node 1's transport", id)
		}
	}
}

// TestBootstrapExchange is the address-book handshake end-to-end over
// real sockets: late joiners learn the whole membership from one
// bootstrap peer's address, without any pre-populated book.
func TestBootstrapExchange(t *testing.T) {
	const n = 4
	boot := dialT(t, Config{ID: 0, Nodes: n})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	trs := []*Transport{boot}
	for id := 1; id < n; id++ {
		tr := dialT(t, Config{ID: id, Nodes: n, Bootstrap: boot.LocalAddr()})
		go tr.BootstrapLoop(ctx, 20*time.Millisecond)
		trs = append(trs, tr)
	}
	for _, tr := range trs[1:] {
		if err := tr.WaitReady(ctx); err != nil {
			t.Fatalf("node %d: %v", tr.ID(), err)
		}
	}
	// The bootstrap node itself converges from the pings it answered.
	if err := boot.WaitReady(ctx); err != nil {
		t.Fatalf("bootstrap node: %v", err)
	}
	for _, tr := range trs {
		for id := 0; id < n; id++ {
			if !tr.Known(id) {
				t.Errorf("node %d does not know node %d after bootstrap", tr.ID(), id)
			}
		}
	}
}

// TestBootstrapConvergenceMidScale runs the real bootstrap exchange —
// announce requests carrying only the sender's own entry, full-book
// responses served from the cached marshal — across 64 sockets. It
// guards the 1k-process scaling fixes: every book must converge even
// though joiners only ever talk to the bootstrap node directly plus
// one round-robin lookup per round.
func TestBootstrapConvergenceMidScale(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale bootstrap run skipped with -short")
	}
	const n = 64
	boot := dialT(t, Config{ID: 0, Nodes: n})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	trs := []*Transport{boot}
	for id := 1; id < n; id++ {
		tr := dialT(t, Config{ID: id, Nodes: n, Bootstrap: boot.LocalAddr()})
		go tr.BootstrapLoop(ctx, 20*time.Millisecond)
		trs = append(trs, tr)
	}
	for _, tr := range trs {
		if err := tr.WaitReady(ctx); err != nil {
			t.Fatalf("node %d: book %d/%d: %v", tr.ID(), tr.BookSize(), n, err)
		}
	}
	// Books must agree on the advertised addresses, not just be full.
	for _, tr := range trs {
		for id := 0; id < n; id++ {
			if got, want := tr.addrOf(id).String(), trs[id].LocalAddr(); got != want {
				t.Fatalf("node %d has %s for node %d, want %s", tr.ID(), got, id, want)
			}
		}
	}
}

// TestClusterRunOverMesh is the drop-in proof for the in-process
// driver: the full goroutine-per-node cluster runtime disseminates and
// verifies over real loopback sockets with no protocol changes.
func TestClusterRunOverMesh(t *testing.T) {
	const n, k, d = 6, 8, 64
	mesh, err := NewMesh(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(context.Background(),
		cluster.Config{N: n, Seed: 3, Transport: mesh, Timeout: 15 * time.Second},
		testTokens(k, d, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("cluster run over UDP mesh did not complete")
	}
	if s := mesh.Stats(); s.Gossip == 0 {
		t.Error("no datagrams dispatched through the mesh")
	}
}

// TestSingleNodesOverSockets is the multi-process shape minus the
// processes: N RunSingle bodies, each owning its own socket transport,
// discover each other through bootstrap exchange and disseminate till
// every node decodes — the cmd/node integration path in one test.
func TestSingleNodesOverSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	const n, k, d = 4, 8, 64
	toks := testTokens(k, d, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	boot := dialT(t, Config{ID: 0, Nodes: n})
	trs := []*Transport{boot}
	for id := 1; id < n; id++ {
		trs = append(trs, dialT(t, Config{ID: id, Nodes: n, Bootstrap: boot.LocalAddr()}))
	}
	results := make([]cluster.NodeMetrics, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for id, tr := range trs {
		go func(id int, tr *Transport) {
			go tr.BootstrapLoop(ctx, 20*time.Millisecond)
			_ = tr.WaitReady(ctx)
			results[id], errs[id] = cluster.RunSingle(ctx, cluster.SingleConfig{
				ID: id, N: n, Seed: 4, Transport: tr,
				Interval: 2 * time.Millisecond,
				Timeout:  15 * time.Second, Linger: time.Second,
			}, toks)
			done <- id
		}(id, tr)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for id := 0; id < n; id++ {
		if errs[id] != nil {
			t.Fatalf("node %d: %v", id, errs[id])
		}
		if !results[id].Done {
			t.Errorf("node %d did not decode (innovative %d)", id, results[id].Innovative)
		}
	}
}

// TestStreamOverMesh drives the streaming runtime over real sockets.
func TestStreamOverMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("socket integration test skipped with -short")
	}
	const n = 4
	mesh, err := NewMesh(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stream.Run(context.Background(), stream.Config{
		N: n, K: 4, PayloadBits: 32, Window: 2, Generations: 4,
		Seed: 5, Transport: mesh, Timeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("stream run over UDP mesh did not complete")
	}
}

// TestDialValidation pins the constructor errors.
func TestDialValidation(t *testing.T) {
	cases := []Config{
		{ID: 0, Nodes: 0, Addr: "127.0.0.1:0"},
		{ID: -1, Nodes: 2, Addr: "127.0.0.1:0"},
		{ID: 2, Nodes: 2, Addr: "127.0.0.1:0"},
		{ID: 0, Nodes: 2, Addr: "not an address"},
	}
	for i, cfg := range cases {
		if tr, err := Dial(cfg); err == nil {
			tr.Close()
			t.Errorf("case %d: no error for %+v", i, cfg)
		}
	}
}

// TestIngressRejectsGarbage feeds malformed datagrams straight through
// a live socket and requires them dropped and accounted, with valid
// traffic still flowing afterwards — the read loop never dies.
func TestIngressRejectsGarbage(t *testing.T) {
	a := dialT(t, Config{ID: 0, Nodes: 2})
	b := dialT(t, Config{ID: 1, Nodes: 2})
	a.learn(1, b.advertiseAddr())

	good := wire.NewToken(0, 1, testTokens(1, 8, 1)[0]).Marshal()
	bad := [][]byte{
		{},
		{0xff},
		{wire.Version, 99, 0, 0, 0, 0, 0, 0, 0, 0},
		good[:5],
		append(append([]byte(nil), good...), 0xcc),
	}
	for _, raw := range bad {
		if _, err := a.conn.WriteToUDP(raw, b.advertiseAddr()); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Send(0, 1, good) {
		t.Fatal("valid send refused")
	}
	select {
	case raw := <-b.Recv(1):
		if _, err := wire.Unmarshal(raw); err != nil {
			t.Fatalf("inbox surfaced a malformed packet: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid packet lost behind garbage")
	}
	// Every garbage datagram (including the legal 0-byte one) must land
	// in exactly one reject counter.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := b.Stats()
		rejects := s.DropTruncated + s.DropVersion + s.DropType + s.DropMalformed
		if rejects == int64(len(bad)) {
			if s.DropType != 1 {
				t.Errorf("DropType = %d, want 1; stats %+v", s.DropType, s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejects %d of %d accounted; stats %+v", rejects, len(bad), s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
